#!/usr/bin/env bash
# CI gate: the tier-1 verify (full build + test suite) plus the tsan
# preset's concurrency suites (StealDeque/ThreadPool/TaskQueue/QueueModes/
# Latch/Barrier/TraceRing/JobHandle/Reentrancy/Serve/SceneCache/
# RebuildParallel), which pin the lock-free executor paths, the
# idempotent-shutdown fix, the trace ring's merge-at-read protocol, the
# re-entrant shared-pool/serve stack and the parallel rebuild pipeline.
set -euo pipefail
cd "$(dirname "$0")"

jobs=${JOBS:-$(nproc)}

echo "== tier-1: configure + build + ctest (default preset) =="
cmake --preset default
cmake --build --preset default --parallel "${jobs}"
ctest --preset default -j "${jobs}"

echo "== bench smoke: locality emitter (tiny sizes) =="
# Keeps the BENCH_*.json perf emitters from rotting: run the locality bench
# at a tiny atom count and validate the JSON it writes has the expected
# metric groups.
cmake --build --preset default --parallel "${jobs}" --target locality
repo_root=$(pwd)
smoke_dir=$(mktemp -d)
(cd "${smoke_dir}" && "${repo_root}/build/bench/locality" 2 600 4 >/dev/null)
python3 - "${smoke_dir}/BENCH_locality.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "locality", doc.get("bench")
# Artifact identity header (schema v2): every BENCH_*.json emitter carries it.
assert doc.get("schema_version") == 2, f"schema_version: {doc.get('schema_version')}"
assert doc.get("git_sha"), "git_sha missing or empty"
assert doc.get("provider") in ("sim", "perf_event", "fallback", "mixed"), \
    f"provider: {doc.get('provider')}"
sim_groups = [k for k in doc if k.startswith("sim.")]
assert len(sim_groups) >= 3, f"expected >=3 sim.* machine groups, got {sim_groups}"
for g in sim_groups:
    keys = doc[g]
    for layout in ("java_objects", "reordered_objects", "packed_soa"):
        for state in ("reorder_off", "reorder_on"):
            for metric in ("l2_miss_pct", "l3_miss_pct", "ms_per_step"):
                k = f"{layout}.{state}.{metric}"
                assert k in keys, f"{g} missing {k}"
native = doc["native"]
for k in ("ns_per_pair_seed", "ns_per_pair_locality", "speedup_locality_vs_seed"):
    assert k in native, f"native missing {k}"
    assert float(native[k]) > 0.0, f"native {k} not positive"
print("BENCH_locality.json OK:", len(sim_groups), "machine groups + native")
EOF
rm -rf "${smoke_dir}"

echo "== counters smoke: PMU conservation + run report =="
# The observability gate: run a short Al-1000 workload through both backends,
# assert the conservation law (per-phase/per-core counter domains must tile
# the machine-global aggregates — mwx_run --check exits nonzero otherwise),
# and exercise the mwx-report joiner end to end.  The native provider is
# allowed to be the labelled "fallback" (perf_event_open is commonly denied
# in containers); only an *unlabelled* or missing provider fails.
cmake --build --preset default --parallel "${jobs}" --target mwx_run
counters_dir=$(mktemp -d)
(cd "${counters_dir}" && "${repo_root}/build/tools/mwx_run" Al-1000 200 4 --name ci --check)
python3 "${repo_root}/tools/mwx-report" --dir "${counters_dir}" --name ci
python3 - "${counters_dir}" <<'EOF'
import json, os, sys
d = sys.argv[1]
with open(os.path.join(d, "REPORT_ci.json")) as f:
    report = json.load(f)
assert report["schema_version"] == 2
assert report["conservation_ok"] is True, "conservation re-verification failed"
assert report["conservation"]["checked"], "conservation was not actually checked"
assert len(report["conservation"]["fields"]) >= 15, "too few fields checked"
native = report["providers"]["native"]
if native == "perf_event":
    print("native provider: perf_event (real hardware counters)")
elif native == "fallback":
    print("native provider: fallback (perf_event denied — acceptable, not a failure)")
else:
    raise AssertionError(f"unlabelled native provider: {native}")
md = open(os.path.join(d, "REPORT_ci.md")).read()
assert "Per-phase memory behaviour" in md and "Conservation" in md
assert len(md) > 500, "markdown report suspiciously small"
print("REPORT_ci OK: conservation holds,", len(report["summary"]), "summary metrics")
EOF
rm -rf "${counters_dir}"

echo "== planner smoke: what-if predictions vs measured extremes =="
# The prescriptive half of the observability stack: one instrumented Al-1000
# run, the full machine x discipline x pinning grid ranked, and the ranked
# extremes validated against actual simulated runs.  mwx_run --plan exits
# nonzero itself when a validated extreme misses --plan-tol, so the tolerance
# gate needs no re-parsing here; the python block asserts the PLAN artifact
# schema and that mwx-report picked the plan section up.
planner_dir=$(mktemp -d)
(cd "${planner_dir}" && "${repo_root}/build/tools/mwx_run" Al-1000 120 4 --name plan --plan --plan-tol 15)
python3 "${repo_root}/tools/mwx-report" --dir "${planner_dir}" --name plan
python3 - "${planner_dir}" <<'EOF'
import json, os, sys
d = sys.argv[1]
with open(os.path.join(d, "PLAN_plan.json")) as f:
    plan = json.load(f)
assert plan["kind"] == "plan" and plan["schema_version"] == 2
assert plan["phase_names"]["4"] == "forces", "phase-name table missing from PLAN"
ref = plan["reference"]
assert ref["benchmark"] == "Al-1000" and ref["self_parallelism"] > 1.0
tags = {(p["tag"], p["rebuild_step"]) for p in plan["profile"]}
assert (4, False) in tags, "forces phase class missing"
assert any(t in tags for t in [(8, True), (9, True)]), "rebuild phase classes missing"
for p in plan["profile"]:
    assert p["work_cycles"] >= 0 and p["self_parallelism"] >= 1.0
configs = plan["configs"]
assert len(configs) >= 12, f"only {len(configs)} configs ranked"
assert [c["rank"] for c in configs] == list(range(1, len(configs) + 1))
seconds = [c["predicted_seconds"] for c in configs]
assert seconds == sorted(seconds), "ranking not sorted by predicted wall time"
validated = [c for c in configs if c["validated"]]
assert len(validated) >= 2, "ranked extremes were not validated"
worst = max(abs(c["error_pct"]) for c in validated)
assert worst <= plan["search"]["tolerance_pct"], f"validated error {worst:.1f}% over tolerance"
assert plan["best"] == configs[0]["config"]
md = open(os.path.join(d, "REPORT_plan.md")).read()
assert "What-if plan" in md and configs[0]["config"] in md
with open(os.path.join(d, "REPORT_plan.json")) as f:
    assert f.read().find('"plan"') >= 0
print(f"PLAN OK: {len(configs)} configs, {len(validated)} validated, worst error {worst:.1f}%")
EOF
rm -rf "${planner_dir}"

echo "== bench smoke: raw_speed ablation emitter (tiny sizes) =="
# The tier-2 speed ablation must keep its bit-identity guarantees (the bench
# exits nonzero on any energy mismatch vs the scalar inline reference) and
# its JSON schema: one variant_* group per cumulative ablation step plus the
# PME micro-timing group.
cmake --build --preset default --parallel "${jobs}" --target raw_speed
raw_dir=$(mktemp -d)
(cd "${raw_dir}" && "${repo_root}/build/bench/raw_speed" 512 6 4 2 >/dev/null)
python3 - "${raw_dir}/BENCH_raw_speed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "raw_speed", doc.get("bench")
assert doc.get("schema_version") == 2, f"schema_version: {doc.get('schema_version')}"
assert doc.get("git_sha"), "git_sha missing or empty"
assert doc.get("provider") == "native", f"provider: {doc.get('provider')}"
variants = ["baseline", "tiled_coulomb", "overlap", "numa"]
for i, v in enumerate(variants):
    g = doc.get("variant_" + v)
    assert g, f"missing variant_{v} group"
    assert int(float(g["order"])) == i, f"variant_{v} out of order"
    assert float(g["seconds_per_step"]) > 0.0, f"variant_{v} has no timing"
    assert float(g["energy_bits_match_scalar"]) == 1.0, \
        f"variant_{v} diverged from the scalar reference"
assert float(doc["variant_baseline"]["speedup_vs_baseline"]) == 1.0
pme = doc["pme"]
assert float(pme["bits_match"]) == 1.0, "PME vectorized path diverged"
assert float(pme["scalar_seconds"]) > 0.0 and float(pme["vectorized_seconds"]) > 0.0
print("BENCH_raw_speed.json OK:", len(variants), "variants + pme micro")
EOF
rm -rf "${raw_dir}"

echo "== serve smoke: multi-tenant scheduler + traffic emitter =="
# The simulation-as-a-service acceptance gate.  mwx_serve runs >=8 concurrent
# jobs from 2 tenants over one shared pool — once uninterrupted and once with
# preempt_slice=7 so every job is checkpointed and resumed mid-run — and
# exits nonzero unless every job's energies are bitwise-identical to a
# dedicated single-engine pool.  serve_traffic then drives a closed-loop
# mixed batch (2 tenants x 4 clients x 2 jobs) through BOTH scheduler phases
# (fair-share vs preempt+deadline) and its BENCH_serve.json is
# schema-validated: per-phase per-tenant p50/p95/p99, preemption counters,
# deadline hit rate, sample-ring drops, cache stats, and the
# energy_bits_match verification flag covering preempted jobs.
cmake --build --preset default --parallel "${jobs}" --target mwx_serve_cli serve_traffic
serve_dir=$(mktemp -d)
(cd "${serve_dir}" && "${repo_root}/build/tools/mwx_serve" Al-1000 8 20 4 2)
(cd "${serve_dir}" && "${repo_root}/build/tools/mwx_serve" Al-1000 8 20 4 2 7)
(cd "${serve_dir}" && "${repo_root}/build/bench/serve_traffic" 2 4 2 4 >/dev/null)
python3 - "${serve_dir}/BENCH_serve.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "serve", doc.get("bench")
assert doc.get("schema_version") == 2, f"schema_version: {doc.get('schema_version')}"
assert doc.get("git_sha"), "git_sha missing or empty"
assert doc.get("provider") == "native", f"provider: {doc.get('provider')}"
for phase in ("fairshare", "preempt"):
    tenants = [k for k in doc if k.startswith(phase + ".tenant.")]
    assert len(tenants) >= 2, f"expected >=2 {phase} tenant groups, got {tenants}"
    for g in tenants:
        keys = doc[g]
        for metric in ("jobs", "weight", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
                       "jobs_per_sec"):
            assert metric in keys, f"{g} missing {metric}"
        assert float(keys["p50_ms"]) <= float(keys["p95_ms"]) <= float(keys["p99_ms"]), \
            f"{g} percentiles not monotone"
assert float(doc["fairshare.sched"]["preemptions"]) == 0.0, \
    "fair-share phase must not preempt"
assert float(doc["preempt.sched"]["preemptions"]) > 0.0, \
    "preempt phase never preempted a bulk job"
th = doc["throughput"]
assert float(th["jobs_total"]) == 32.0, f"jobs_total: {th['jobs_total']}"
assert float(th["jobs_per_sec"]) > 0.0
assert float(th["failed_jobs"]) == 0.0, f"failed jobs: {th['failed_jobs']}"
dl = doc["deadline"]
assert float(dl["jobs"]) > 0.0, "preempt phase submitted no deadline jobs"
assert 0.0 <= float(dl["hit_rate"]) <= 1.0
assert float(doc["samples"]["dropped_total"]) > 0.0, \
    "bulk jobs should overflow the bounded sample ring"
comp = doc["compare"]
assert "small_p99_fairshare_ms" in comp and "small_p99_preempt_ms" in comp
cache = doc["cache"]
assert float(cache["hits"]) + float(cache["misses"]) > 0.0
assert float(doc["verify"]["energy_bits_match"]) == 1.0, \
    "shared-pool energies diverged from the dedicated-pool reference"
assert float(doc["verify"]["preempted_jobs_checked"]) > 0.0, \
    "no preempted-and-resumed job was verified"
print("BENCH_serve.json OK: both phases, preempted jobs bit-checked,"
      " deadline hit rate", doc["deadline"]["hit_rate"])
EOF
rm -rf "${serve_dir}"

echo "== scale smoke: 100k-atom parallel-rebuild determinism gate =="
# The workload-axis gate: a 100k-atom bulk crystal through every parallel
# rebuild pass (bin / prefix scan / Morton radix / chunked scene serializer)
# at 1/2/4/T threads, plus a short native engine run with parallel_rebuild
# off vs on.  scaling_atoms exits nonzero on ANY byte/bit divergence from the
# serial references, so the schema check below only runs on verified output.
cmake --build --preset default --parallel "${jobs}" --target scaling_atoms
scale_dir=$(mktemp -d)
(cd "${scale_dir}" && "${repo_root}/build/bench/scaling_atoms" 100000 2 4 0 >/dev/null)
python3 - "${scale_dir}/BENCH_scaling.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "scaling", doc.get("bench")
assert doc.get("schema_version") == 2, f"schema_version: {doc.get('schema_version')}"
assert doc.get("git_sha"), "git_sha missing or empty"
assert doc.get("provider") == "native", f"provider: {doc.get('provider')}"
for n in (10000, 100000):
    rg = doc[f"rebuild.n{n}"]
    for phase in ("bin", "prefix", "sort", "scene"):
        for mode in ("serial", "parallel"):
            k = f"{phase}_{mode}_ms"
            assert float(rg[k]) >= 0.0, f"rebuild.n{n} missing {k}"
    assert float(rg["scene_bytes"]) > 0.0
    eg = doc[f"engine.n{n}"]
    assert float(eg["serial_rebuild_ms"]) > 0.0 and float(eg["parallel_rebuild_ms"]) > 0.0
verify = doc["verify"]
assert verify, "verify group missing"
for key, flag in verify.items():
    assert float(flag) == 1.0, f"determinism flag {key} = {flag}"
assert "droplet_phases_identical" in verify, "droplet stress case missing"
print("BENCH_scaling.json OK:", len(verify), "determinism flags all 1")
EOF
rm -rf "${scale_dir}"

echo "== forced-scalar: build + ctest with MWX_AVX2=OFF (scalar preset) =="
# The bit-identity suites must hold in both ISAs: the vectorized lane loops
# are value-preserving claims about *expressions*, not about AVX2.
cmake --preset scalar
cmake --build --preset scalar --parallel "${jobs}"
ctest --preset scalar -j "${jobs}"

echo "== tsan: concurrency suites (tsan preset) =="
cmake --preset tsan
cmake --build --preset tsan --parallel "${jobs}"
ctest --preset tsan -j "${jobs}"

echo "CI OK"
