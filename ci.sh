#!/usr/bin/env bash
# CI gate: the tier-1 verify (full build + test suite) plus the tsan
# preset's concurrency suites (StealDeque/ThreadPool/TaskQueue/QueueModes/
# Latch/Barrier/TraceRing), which pin the lock-free executor paths, the
# idempotent-shutdown fix and the trace ring's merge-at-read protocol.
set -euo pipefail
cd "$(dirname "$0")"

jobs=${JOBS:-$(nproc)}

echo "== tier-1: configure + build + ctest (default preset) =="
cmake --preset default
cmake --build --preset default --parallel "${jobs}"
ctest --preset default -j "${jobs}"

echo "== tsan: concurrency suites (tsan preset) =="
cmake --preset tsan
cmake --build --preset tsan --parallel "${jobs}"
ctest --preset tsan -j "${jobs}"

echo "CI OK"
