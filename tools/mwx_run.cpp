// mwx_run — one-shot artifact producer for the run-report pipeline.
//
// Runs one Table I benchmark through BOTH backends and writes, into the
// current directory:
//
//   PMU_<name>_sim.json      per-core/per-phase counters (provider "sim"),
//                            with the machine-global aggregate attached so
//                            consumers can re-verify conservation;
//   PMU_<name>_native.json   per-worker/per-phase counters from
//                            perf_event_open, or the labelled "fallback"
//                            (thread CPU time + soft faults) when denied;
//   TRACE_<name>_sim.json    chrome://tracing view in simulated seconds;
//   TRACE_<name>_native.json chrome://tracing view in wall seconds;
//   BENCH_<name>_run.json    run summary, load imbalance from the
//                            ground-truth event log, and allocation totals.
//
// tools/mwx-report joins these files into the VTune-style Markdown/JSON run
// report.  With --check the tool re-derives the sim conservation law — every
// per-(phase, core) counter domain summed over both axes must reproduce the
// machine-global counters — and exits nonzero on any mismatch, which is what
// the ci.sh counters-smoke stage asserts.
//
// The simulated run is executed from cold (no warmup/reset split): the event
// log spans the machine's whole lifetime, so busy/task attribution and the
// counter window must cover the same steps.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "md/cost_table.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/native_pmu.hpp"
#include "perf/planner.hpp"
#include "perf/pmu.hpp"
#include "perf/trace_ring.hpp"
#include "sim/machine.hpp"
#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

enum class PlanValidate { kNone, kExtremes, kAll };

struct Options {
  std::string benchmark = "Al-1000";
  int steps = 200;
  int threads = 4;
  std::string name;  // artifact stem; defaults to "<benchmark>_<threads>t"
  bool check = false;
  sim::Assignment assignment = sim::Assignment::WorkStealing;
  bool plan = false;
  PlanValidate plan_validate = PlanValidate::kExtremes;
  double plan_tol_pct = 15.0;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <benchmark> <steps> <threads> [--name STEM] [--check]"
               " [--assignment static|queue|steal]\n"
               "       [--plan] [--plan-validate none|extremes|all] [--plan-tol PCT]\n"
               "  benchmark: nanocar | salt | Al-1000\n"
               "  --plan: what-if planner — profile the instrumented sim run and rank\n"
               "          every Table II machine x discipline x pinning config; writes\n"
               "          PLAN_<name>.json.  --plan-validate re-runs the chosen subset\n"
               "          of configs in the simulator and exits nonzero when the best\n"
               "          or worst validated prediction misses by more than --plan-tol.\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  Options opt;
  opt.benchmark = argv[1];
  opt.steps = std::atoi(argv[2]);
  opt.threads = std::atoi(argv[3]);
  if (opt.steps <= 0 || opt.threads <= 0) usage(argv[0]);
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--name" && i + 1 < argc) {
      opt.name = argv[++i];
    } else if (arg == "--assignment" && i + 1 < argc) {
      const std::string a = argv[++i];
      if (a == "static") {
        opt.assignment = sim::Assignment::Static;
      } else if (a == "queue") {
        opt.assignment = sim::Assignment::SharedQueue;
      } else if (a == "steal") {
        opt.assignment = sim::Assignment::WorkStealing;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--plan") {
      opt.plan = true;
    } else if (arg == "--plan-validate" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "none") {
        opt.plan_validate = PlanValidate::kNone;
      } else if (v == "extremes") {
        opt.plan_validate = PlanValidate::kExtremes;
      } else if (v == "all") {
        opt.plan_validate = PlanValidate::kAll;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--plan-tol" && i + 1 < argc) {
      opt.plan_tol_pct = std::atof(argv[++i]);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.name.empty()) {
    opt.name = opt.benchmark + "_" + std::to_string(opt.threads) + "t";
  }
  return opt;
}

md::Engine make_engine(const Options& opt) {
  workloads::BenchmarkSpec spec = workloads::make_benchmark(opt.benchmark);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = opt.threads;
  cfg.assignment = opt.assignment;
  // Dynamic disciplines need more chunks than threads for queueing/stealing
  // to have anything to move.
  cfg.chunks_per_thread = opt.assignment == sim::Assignment::Static ? 1 : 4;
  return md::Engine(std::move(spec.system), cfg);
}

// --- Conservation check ------------------------------------------------------

int g_check_failures = 0;

void check_field(const char* field, double global, double domains, bool exact) {
  const double tol = exact ? 0.0 : 1e-6 * std::max({std::fabs(global), std::fabs(domains), 1.0});
  if (std::fabs(global - domains) > tol) {
    std::cerr << "CONSERVATION VIOLATION: " << field << " global=" << global
              << " sum-of-domains=" << domains << "\n";
    ++g_check_failures;
  }
}

// Sums every per-(phase, core) domain and compares field-by-field with the
// machine-global counters: integer-valued counts must match exactly; the
// cycle-valued doubles accumulate in a different order, so they get a small
// relative tolerance.
void check_conservation(const sim::Machine& machine) {
  sim::MachineCounters sum;
  for (int tag : machine.counter_phases()) sum += machine.phase_counters(tag);
  const sim::MachineCounters& g = machine.counters();

  check_field("l1.hits", double(g.l1.hits), double(sum.l1.hits), true);
  check_field("l1.misses", double(g.l1.misses), double(sum.l1.misses), true);
  check_field("l1.dirty_evictions", double(g.l1.dirty_evictions),
              double(sum.l1.dirty_evictions), true);
  check_field("l2.hits", double(g.l2.hits), double(sum.l2.hits), true);
  check_field("l2.misses", double(g.l2.misses), double(sum.l2.misses), true);
  check_field("l2.dirty_evictions", double(g.l2.dirty_evictions),
              double(sum.l2.dirty_evictions), true);
  check_field("l3.hits", double(g.l3.hits), double(sum.l3.hits), true);
  check_field("l3.misses", double(g.l3.misses), double(sum.l3.misses), true);
  check_field("l3.dirty_evictions", double(g.l3.dirty_evictions),
              double(sum.l3.dirty_evictions), true);
  check_field("dram_line_fetches", double(g.dram_line_fetches),
              double(sum.dram_line_fetches), true);
  check_field("dram_remote_fetches", double(g.dram_remote_fetches),
              double(sum.dram_remote_fetches), true);
  check_field("dram_writebacks", double(g.dram_writebacks), double(sum.dram_writebacks), true);
  check_field("migrations", double(g.migrations), double(sum.migrations), true);
  check_field("steals", double(g.steals), double(sum.steals), true);
  check_field("dram_queue_cycles", g.dram_queue_cycles, sum.dram_queue_cycles, false);
  check_field("steal_overhead_cycles", g.steal_overhead_cycles, sum.steal_overhead_cycles,
              false);
  check_field("noise_stall_cycles", g.noise_stall_cycles, sum.noise_stall_cycles, false);
  check_field("queue_wait_cycles", g.queue_wait_cycles, sum.queue_wait_cycles, false);
  check_field("monitor_wait_cycles", g.monitor_wait_cycles, sum.monitor_wait_cycles, false);
  check_field("barrier_wait_cycles", g.barrier_wait_cycles, sum.barrier_wait_cycles, false);
}

void write_text_file(const std::string& path, const std::string& what,
                     const std::function<void(std::ostream&)>& body) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(1);
  }
  body(out);
  std::cout << "wrote " << path << " (" << what << ")\n";
}

// --- What-if planner ---------------------------------------------------------

// Canonical pinning for a candidate config: thread i on core i (topology-
// major), one PU per core — the same placement the planner's capacity and
// remote-fraction models assume.
std::vector<topo::CpuSet> canonical_pin_masks(const topo::MachineSpec& spec, int n_threads) {
  std::vector<topo::CpuSet> masks;
  for (int i = 0; i < n_threads; ++i) {
    masks.push_back(topo::CpuSet::of({(i % spec.n_cores()) * spec.smt_per_core}));
  }
  return masks;
}

// Validates one prediction by actually running the config in the simulator
// (cold engine, same physics — the backends are bit-identical, so only the
// timing differs).
double run_config_simulated(const Options& opt, const perf::PlanConfig& c) {
  workloads::BenchmarkSpec spec = workloads::make_benchmark(opt.benchmark);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = c.n_threads;
  cfg.assignment = c.assignment;
  cfg.chunks_per_thread = c.chunks_per_thread;
  md::Engine engine(std::move(spec.system), cfg);
  sim::MachineConfig mc;
  mc.spec = c.spec;
  mc.n_threads = c.n_threads;
  mc.record_events = false;
  if (c.pinned) mc.pin_masks = canonical_pin_masks(c.spec, c.n_threads);
  sim::Machine machine(mc);
  engine.run_simulated(machine, opt.steps);
  return machine.now_seconds();
}

// Profiles the already-executed instrumented run, ranks the default search
// grid, validates the requested subset against fresh simulated runs, writes
// PLAN_<name>.json, and gates on predicted-vs-measured divergence.  Returns
// the number of tolerance failures.
int run_planner(const Options& opt, const sim::Machine& machine, const md::Engine& sim_engine,
                const perf::TraceRing& sim_trace, const perf::PmuReport& sim_report) {
  perf::RunMeta meta;
  meta.benchmark = opt.benchmark;
  meta.steps = opt.steps;
  meta.n_threads = opt.threads;
  meta.slots = sim_engine.n_slots();
  meta.measured_seconds = machine.now_seconds();
  meta.spec = topo::core_i7_920();
  meta.assignment = opt.assignment;

  perf::Planner planner(
      perf::Planner::profile_from(sim_trace.snapshot(), sim_report, meta));
  std::vector<perf::Prediction> ranked = planner.rank(perf::Planner::default_grid(opt.threads));

  // The instrumented run IS one of the grid points (reference machine,
  // OS-scheduled, opt.assignment): its measurement is free.
  for (auto& pr : ranked) {
    if (pr.config.spec.name == meta.spec.name && pr.config.assignment == opt.assignment &&
        !pr.config.pinned && pr.config.n_threads == opt.threads) {
      pr.validated = true;
      pr.measured_seconds = meta.measured_seconds;
    }
  }
  if (!ranked.empty()) {
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      const bool extreme = i == 0 || i + 1 == ranked.size();
      const bool want = opt.plan_validate == PlanValidate::kAll ||
                        (opt.plan_validate == PlanValidate::kExtremes && extreme);
      if (want && !ranked[i].validated) {
        ranked[i].measured_seconds = run_config_simulated(opt, ranked[i].config);
        ranked[i].validated = true;
      }
    }
  }

  write_text_file("PLAN_" + opt.name + ".json", "what-if plan",
                  [&](std::ostream& out) {
                    perf::write_plan_json(out, opt.name, perf::build_git_sha(),
                                          planner.profile(), ranked, opt.plan_tol_pct,
                                          md::phase_tag_name_map());
                  });

  const auto& profile = planner.profile();
  std::cout << "plan: " << profile.phases.size() << " phase classes, self-parallelism "
            << profile.self_parallelism() << ", " << ranked.size() << " configs ranked\n";
  int failures = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& pr = ranked[i];
    std::cout << "plan[" << i + 1 << "] " << pr.config.label() << " predicted " << pr.seconds
              << "s speedup " << pr.speedup;
    if (pr.validated) {
      std::cout << " measured " << pr.measured_seconds << "s error " << pr.error_pct() << "%";
      const bool extreme = i == 0 || i + 1 == ranked.size();
      if (extreme && std::fabs(pr.error_pct()) > opt.plan_tol_pct) {
        std::cout << "  TOLERANCE EXCEEDED (" << opt.plan_tol_pct << "%)";
        ++failures;
      }
    }
    std::cout << "\n";
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // --- Simulated backend ------------------------------------------------------
  md::Engine sim_engine = make_engine(opt);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = opt.threads;
  mc.record_events = true;
  perf::TraceRing sim_trace(opt.threads + 1);
  mc.trace = &sim_trace;
  sim::Machine machine(mc);
  sim_engine.run_simulated(machine, opt.steps);

  // The engine's tag->name table rides inside every artifact (satellite of
  // the planner work): consumers join on it instead of hard-coding the
  // phase vocabulary.
  const std::map<int, std::string> phase_names = md::phase_tag_name_map();
  perf::PmuReport sim_report = machine.pmu_report();
  sim_report.phase_names = phase_names;
  const perf::CounterSet machine_total = sim::to_counter_set(machine.counters());
  write_text_file("PMU_" + opt.name + "_sim.json", "sim counter domains",
                  [&](std::ostream& out) {
                    sim_report.write_json(out, opt.name, perf::build_git_sha(),
                                          &machine_total);
                  });
  write_text_file("TRACE_" + opt.name + "_sim.json", "simulated-time trace",
                  [&](std::ostream& out) {
                    perf::write_chrome_trace(sim_trace.snapshot(), out, phase_names);
                  });

  // --- Native backend ---------------------------------------------------------
  md::Engine native_engine = make_engine(opt);
  perf::PmuAccumulator pmu(opt.threads);
  perf::TraceRing native_trace(opt.threads + 1);
  native_engine.attach_pmu(&pmu);
  native_engine.attach_trace(&native_trace);
  {
    parallel::ThreadPoolConfig pc;
    pc.n_threads = opt.threads;
    pc.queue_mode = opt.assignment == sim::Assignment::SharedQueue
                        ? parallel::QueueMode::Single
                        : (opt.assignment == sim::Assignment::WorkStealing
                               ? parallel::QueueMode::WorkStealing
                               : parallel::QueueMode::PerThread);
    parallel::FixedThreadPool pool(pc);
    native_engine.run_native(pool, opt.steps);
    pool.shutdown();
  }
  perf::PmuReport native_report = pmu.report();
  native_report.phase_names = phase_names;
  write_text_file("PMU_" + opt.name + "_native.json",
                  "native counters, provider " + native_report.provider,
                  [&](std::ostream& out) {
                    native_report.write_json(out, opt.name, perf::build_git_sha());
                  });
  write_text_file("TRACE_" + opt.name + "_native.json", "wall-time trace",
                  [&](std::ostream& out) {
                    perf::write_chrome_trace(native_trace.snapshot(), out, phase_names);
                  });

  // --- Run summary ------------------------------------------------------------
  // Backends ran the same physics; assert it before reporting anything.
  if (sim_engine.total_energy() != native_engine.total_energy()) {
    std::cerr << "BACKEND DIVERGENCE: sim total energy " << sim_engine.total_energy()
              << " != native " << native_engine.total_energy() << "\n";
    return 1;
  }

  bench::JsonEmitter json(opt.name + "_run");
  json.set_provider("sim+" + native_report.provider);
  json.note("run", "benchmark", opt.benchmark);
  json.metric("run", "steps", opt.steps);
  json.metric("run", "threads", opt.threads);
  json.metric("run", "sim_seconds", machine.now_seconds());
  json.metric("run", "sim_seconds_per_step", machine.now_seconds() / opt.steps);
  json.metric("run", "rebuilds", double(sim_engine.rebuild_count()));
  json.metric("run", "total_energy", sim_engine.total_energy());

  // Load imbalance from the ground-truth event log (exact busy intervals).
  const auto busy = machine.event_log().busy_per_thread();
  double busy_max = 0.0, busy_sum = 0.0;
  for (std::size_t i = 0; i < busy.size(); ++i) {
    json.metric("imbalance", "busy_seconds_thread_" + std::to_string(i), busy[i]);
    busy_max = std::max(busy_max, busy[i]);
    busy_sum += busy[i];
  }
  const double busy_mean = busy.empty() ? 0.0 : busy_sum / double(busy.size());
  json.metric("imbalance", "max_over_mean", busy_mean > 0 ? busy_max / busy_mean : 1.0);
  json.metric("imbalance", "imbalance_pct",
              busy_mean > 0 ? (busy_max / busy_mean - 1.0) * 100.0 : 0.0);
  json.metric("imbalance", "steals", double(machine.counters().steals));

  // Allocation totals (the VisualVM live-objects substitute) so cache
  // pollution can be cited alongside miss rates.
  long long total_allocs = 0;
  for (const auto& tr : sim_engine.tracker().all_reports()) {
    json.metric("alloc", "total_" + tr.type_name, double(tr.total_allocated));
    total_allocs += tr.total_allocated;
  }
  json.metric("alloc", "total_allocations", double(total_allocs));
  json.metric("alloc", "allocations_per_step", double(total_allocs) / opt.steps);
  if (sim_engine.temp_vec3_type() >= 0) {
    const auto tr = sim_engine.tracker().report(sim_engine.temp_vec3_type());
    json.metric("alloc", "temp_vec3_per_step", double(tr.total_allocated) / opt.steps);
  }
  std::cout << "wrote " << json.write() << " (run summary)\n";

  // --- What-if planner --------------------------------------------------------
  if (opt.plan) {
    const int plan_failures = run_planner(opt, machine, sim_engine, sim_trace, sim_report);
    if (plan_failures > 0) {
      std::cerr << plan_failures << " plan prediction(s) outside the " << opt.plan_tol_pct
                << "% tolerance\n";
      return 1;
    }
  }

  // --- Conservation self-check ------------------------------------------------
  if (opt.check) {
    check_conservation(machine);
    if (g_check_failures > 0) {
      std::cerr << g_check_failures << " conservation failure(s)\n";
      return 1;
    }
    std::cout << "conservation check passed: per-phase/per-core domains tile the "
                 "machine-global counters\n";
  }
  return 0;
}
