// tools/mwx_serve — submit a batch of jobs to an in-process BatchScheduler
// and verify the multi-tenant results against a dedicated-pool reference.
//
// This is the service smoke: N concurrent jobs from T tenants share the
// scheduler's pools, and every job must finish with energies BITWISE equal
// to the same scene + step budget run alone on its own pool.  Exit status is
// nonzero if any job fails, is lost, or diverges — CI's acceptance gate for
// the re-entrant engine + serve stack.
//
// Usage: mwx_serve <benchmark|scene.mws> [jobs] [steps] [pool_threads] [tenants]
//                  [preempt_slice]
//   benchmark: nanocar | salt | Al-1000 (Table I), or a path to a .mws file
//   defaults:  jobs=8 steps=100 pool_threads=4 tenants=2 preempt_slice=0
//   preempt_slice > 0 checkpoints every job each `preempt_slice` steps and
//   resumes it from the checkpoint text — the bitwise gate then also proves
//   preempted-and-resumed jobs indistinguishable from uninterrupted ones.

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

constexpr int kJobThreads = 2;

bool is_scene_file(const std::string& arg) {
  return arg.size() > 4 && arg.compare(arg.size() - 4, 4, ".mws") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mwx_serve <benchmark|scene.mws> [jobs] [steps] "
              << "[pool_threads] [tenants] [preempt_slice]\n  benchmarks:";
    for (const auto& name : workloads::benchmark_names()) std::cerr << " " << name;
    std::cerr << "\n";
    return 2;
  }
  const std::string what = argv[1];
  const int n_jobs = argc > 2 ? std::atoi(argv[2]) : 8;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 100;
  const int pool_threads = argc > 4 ? std::atoi(argv[4]) : 4;
  const int tenants = argc > 5 ? std::atoi(argv[5]) : 2;
  const int preempt_slice = argc > 6 ? std::atoi(argv[6]) : 0;

  // Build the job template: scene text + engine parameters.
  serve::JobRequest base;
  base.steps = steps;
  base.n_threads = kJobThreads;
  if (is_scene_file(what)) {
    std::ifstream in(what);
    if (!in) {
      std::cerr << "mwx_serve: cannot open scene file " << what << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    base.scene_text = text.str();
  } else {
    const workloads::BenchmarkSpec spec = workloads::make_benchmark(what);
    base.scene_text = serve::scene_text(spec.system);
    base.dt_fs = spec.engine.dt_fs;
    base.cutoff = spec.engine.cutoff;
    base.skin = spec.engine.skin;
  }

  // Dedicated-pool reference: the ground truth every shared-pool job must hit.
  serve::SceneCache parse_once(1);
  const std::shared_ptr<const md::MolecularSystem> sys = parse_once.load(base.scene_text);
  md::EngineConfig cfg;
  cfg.n_threads = base.n_threads;
  cfg.chunks_per_thread = base.chunks_per_thread;
  cfg.assignment = base.assignment;
  cfg.dt_fs = base.dt_fs;
  cfg.cutoff = base.cutoff;
  cfg.skin = base.skin;
  md::Engine reference(*sys, cfg);
  parallel::FixedThreadPool dedicated({.n_threads = base.n_threads});
  reference.run_native(dedicated, steps);
  dedicated.shutdown();
  const double ref_pe = reference.potential_energy();
  const double ref_ke = reference.kinetic_energy();

  serve::SchedulerConfig sc;
  sc.threads_per_pool = pool_threads;
  sc.max_drivers = std::max(8, n_jobs);  // all jobs genuinely concurrent
  sc.max_queued_total = std::max(256, n_jobs);
  sc.default_quota.max_queued = std::max(64, n_jobs);
  sc.preempt_slice_steps = preempt_slice;
  serve::BatchScheduler scheduler(sc);

  std::cout << "mwx_serve: " << n_jobs << " jobs x " << steps << " steps of '" << what
            << "' from " << tenants << " tenants over a shared " << pool_threads
            << "-thread pool";
  if (preempt_slice > 0) std::cout << ", preempting every " << preempt_slice << " steps";
  std::cout << "\n";

  std::vector<std::shared_ptr<serve::JobTicket>> tickets;
  tickets.reserve(static_cast<std::size_t>(n_jobs));
  for (int j = 0; j < n_jobs; ++j) {
    serve::JobRequest req = base;
    req.tenant = "tenant-" + std::to_string(j % std::max(1, tenants));
    tickets.push_back(scheduler.submit(std::move(req)));
  }
  scheduler.drain();

  int failures = 0;
  for (int j = 0; j < n_jobs; ++j) {
    const serve::JobTicket& t = *tickets[static_cast<std::size_t>(j)];
    if (t.status() != serve::JobStatus::Done) {
      std::cerr << "  job " << j << " [" << t.request().tenant
                << "]: " << to_string(t.status()) << " — " << t.error() << "\n";
      ++failures;
      continue;
    }
    const bool match = t.potential_energy() == ref_pe && t.kinetic_energy() == ref_ke;
    std::cout << "  job " << j << " [" << t.request().tenant << "]: done in "
              << std::fixed << std::setprecision(1) << t.latency_seconds() * 1e3
              << " ms, " << t.preemptions() << " preemptions, energy bits "
              << (match ? "MATCH" : "MISMATCH") << "\n";
    if (!match) {
      std::cerr << std::setprecision(17) << "    pe=" << t.potential_energy()
                << " ref=" << ref_pe << "\n    ke=" << t.kinetic_energy()
                << " ref=" << ref_ke << "\n";
      ++failures;
    }
  }
  const serve::BatchScheduler::Stats stats = scheduler.stats();
  std::cout << "  scheduler: " << stats.accepted << " accepted, " << stats.completed
            << " completed, " << stats.failed << " failed, " << stats.rejected
            << " rejected, " << stats.preemptions << " preemptions; scene cache "
            << scheduler.scene_cache().hits() << " hits / "
            << scheduler.scene_cache().misses() << " misses\n";

  if (preempt_slice > 0 && steps > preempt_slice && stats.preemptions == 0) {
    std::cerr << "FAIL: preemption requested (slice " << preempt_slice << " < " << steps
              << " steps) but no job was ever preempted\n";
    return 1;
  }
  if (failures != 0) {
    std::cerr << "FAIL: " << failures << "/" << n_jobs
              << " jobs did not reproduce the dedicated-pool energies\n";
    return 1;
  }
  std::cout << "PASS: all " << n_jobs
            << " shared-pool jobs bitwise-identical to the dedicated-pool reference\n";
  return 0;
}
