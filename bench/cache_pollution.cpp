// Section V-B reproduction: cache pollution by short-lived temporaries.
//
// "Using the VisualVM live allocated objects view, we were able to see that
// over 50% of our live memory was being used by one type of temporary
// object, a simple convenience class that wraps together three floating
// point values."  The view could not attribute allocations to threads; our
// tracker can, answering the question the paper left open — and the ablation
// (in-place arithmetic instead of temporaries) quantifies how much of
// Al-1000's poor scaling the churn causes.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 50;

  std::cout << "Cache pollution by temporaries (Section V-B), Al-1000\n\n";
  bench::JsonEmitter json("cache_pollution");

  // --- Live-heap census (VisualVM live-objects view stand-in) --------------
  {
    workloads::BenchmarkSpec spec = workloads::make_benchmark("Al-1000", 7);
    md::EngineConfig cfg = spec.engine;
    cfg.n_threads = 4;
    md::Engine engine(std::move(spec.system), cfg);
    sim::MachineConfig mc;
    mc.spec = topo::core_i7_920();
    mc.n_threads = 4;
    sim::Machine machine(mc);
    engine.run_simulated(machine, steps);

    // Peak fraction: temporaries live until the next GC, so the honest
    // "how much of the heap do they occupy" number is the high-water mark
    // between collections, not a snapshot that may land right after one.
    long long peak_total = 0;
    for (const auto& report : engine.tracker().all_reports()) {
      peak_total += report.peak_live_bytes();
    }
    Table census({"Type", "Live now", "Peak live bytes", "Peak fraction of heap"});
    for (const auto& report : engine.tracker().all_reports()) {
      census.row(report.type_name, report.live_count, report.peak_live_bytes(),
                 Table::fixed(peak_total > 0 ? 100.0 * report.peak_live_bytes() / peak_total
                                             : 0.0,
                              1) +
                     " %");
    }
    census.print(std::cout, "Live heap census (paper: >50% one temporary Vec3 class)");

    Table per_thread({"Worker thread", "Live temporary Vec3s"});
    for (int t = 0; t < 4; ++t) {
      per_thread.row(t, engine.tracker().live_by_thread(engine.temp_vec3_type(), t));
    }
    std::cout << '\n';
    per_thread.print(std::cout,
                     "Per-thread attribution (the view VisualVM could not provide)");
    std::cout << '\n';

    // Allocation totals next to the miss rates they cause: the run-report
    // pipeline cites allocations/step alongside L2 behaviour.
    long long total_allocs = 0;
    for (const auto& report : engine.tracker().all_reports()) {
      total_allocs += report.total_allocated;
    }
    const auto temp = engine.tracker().report(engine.temp_vec3_type());
    const auto& c = machine.counters();
    json.metric("alloc", "allocations_per_step",
                static_cast<double>(total_allocs) / steps);
    json.metric("alloc", "temp_vec3_per_step",
                static_cast<double>(temp.total_allocated) / steps);
    json.metric("alloc", "temp_vec3_peak_live_bytes",
                static_cast<double>(temp.peak_live_bytes()));
    json.metric("alloc", "temp_vec3_peak_heap_fraction",
                peak_total > 0
                    ? static_cast<double>(temp.peak_live_bytes()) / peak_total
                    : 0.0);
    json.metric("alloc", "l1_miss_rate", c.l1.miss_rate());
    json.metric("alloc", "l2_miss_rate", c.l2.miss_rate());
    json.metric("alloc", "dram_mb_per_step", c.dram_bytes(64) / 1e6 / steps);
  }

  // --- Ablation: Java-style temporaries vs in-place arithmetic --------------
  Table table({"Arithmetic style", "Threads", "ms/step", "Speedup", "DRAM MB/step",
               "GC pauses"});
  for (const auto temps : {md::TemporariesMode::JavaStyle, md::TemporariesMode::InPlace}) {
    double t1 = 0.0;
    const std::string style =
        temps == md::TemporariesMode::JavaStyle ? "java_temporaries" : "in_place";
    for (int threads : {1, 4}) {
      bench::RunOptions opt;
      opt.n_threads = threads;
      opt.steps = steps;
      opt.temporaries = temps;
      const auto r = bench::run_simulated("Al-1000", opt);
      if (threads == 1) t1 = r.seconds;
      table.row(temps == md::TemporariesMode::JavaStyle ? "Java temporaries" : "in-place",
                threads, Table::fixed(r.seconds_per_step * 1e3, 3),
                Table::fixed(t1 / r.seconds, 2),
                Table::fixed(r.counters.dram_bytes(64) / 1e6 / steps, 2),
                static_cast<long long>(0));
      const std::string key = style + "_" + std::to_string(threads) + "t";
      json.metric("ablation", key + "_ms_per_step", r.seconds_per_step * 1e3);
      json.metric("ablation", key + "_speedup", t1 / r.seconds);
      json.metric("ablation", key + "_l2_miss_rate", r.counters.l2.miss_rate());
    }
  }
  table.print(std::cout, "Ablation: temporaries vs in-place force arithmetic");
  std::cout << "\n(the in-place variant removes the allocation churn the JVM imposed;\n"
               "its 4-thread speedup shows what Al-1000 could have reached)\n";
  std::cout << "\nJSON written to " << json.write() << "\n";
  return 0;
}
