// False-sharing experiment (motivated by Section V-A's remark that heap
// viewers "do not show the relative spatial locality of the objects, which
// is what is needed to identify false sharing or optimize true sharing").
//
// Four simulated threads increment private counters at high rate.  When
// each counter lives on its own cache line, threads never interact; when
// all four counters share one line, every write invalidates the other
// cores' copies and the line ping-pongs — the classic pathology a Java
// programmer cannot prevent because object placement is not controllable.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"

namespace {

using namespace mwx;

// A phase where each of 4 threads performs `writes` stores to its counter.
sim::PhaseWork counter_phase(bool shared_line, int writes) {
  sim::PhaseWork w;
  w.tag = 1;
  for (int t = 0; t < 4; ++t) {
    sim::SimTask task;
    task.owner = t;
    task.access_begin = static_cast<std::uint32_t>(w.accesses.size());
    // Shared: counters at 8-byte offsets within one line.  Padded: one
    // counter per 64-byte line.
    const std::uint64_t addr = shared_line ? 0x100000ull + 8ull * t
                                           : 0x100000ull + 64ull * t;
    for (int k = 0; k < writes; ++k) w.accesses.push_back({addr, true});
    task.access_end = static_cast<std::uint32_t>(w.accesses.size());
    task.compute_cycles = writes * 2.0;  // the increment itself
    w.tasks.push_back(task);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int writes = argc > 1 ? std::atoi(argv[1]) : 200000;

  std::cout << "False sharing on the simulated quad-core (Section V-A context)\n\n";

  Table table({"Layout", "ms", "L1 miss%", "DRAM line fetches"});
  for (const bool shared : {false, true}) {
    sim::MachineConfig mc;
    mc.spec = topo::core_i7_920();
    mc.sched.noise_bursts_per_second = 0.0;
    mc.n_threads = 4;
    // One thread per core so invalidations cross L1/L2 domains.
    mc.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2}), topo::CpuSet::of({4}),
                    topo::CpuSet::of({6})};
    sim::Machine machine(mc);
    const auto r = machine.run_phase(counter_phase(shared, writes));
    table.row(shared ? "4 counters on ONE line (false sharing)"
                     : "one counter per line (padded)",
              Table::fixed(r.duration_seconds() * 1e3, 2),
              Table::fixed(machine.counters().l1.miss_rate() * 100.0, 2),
              static_cast<long long>(machine.counters().dram_line_fetches));
  }
  table.print(std::cout);
  std::cout << "\nthe shared-line variant's writes keep invalidating the other cores'\n"
               "copies; Java offers no way to pad or place the fields apart.\n";
  return 0;
}
