// Spatial-locality study: Morton-order atom reordering + compacted CSR
// neighbor lists + the tiled LJ kernel.
//
// Part A (simulated): Al-1000 traced on the three Table II machines, for each
// heap layout model with the Morton pass off and on.  JavaObjects shows the
// paper's dead end — permuted atoms still live at their scattered creation
// addresses, so reordering barely moves the miss rates.  ReorderedObjects and
// PackedSoA show what the pass buys once the memory manager cooperates.
//
// Part B (native): wall clock per LJ pair on a deliberately shuffled LJ gas,
// comparing the seed-style path (scalar kernel, no reordering) against the
// tiled kernel alone and tiled + periodic Morton reordering.  All three runs
// share the CSR list and produce bit-identical trajectories per config; only
// the speed differs.
//
// Emits BENCH_locality.json.  Args: [sim_steps] [native_atoms] [native_steps]
// (CI passes tiny values for the smoke run).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

const char* layout_key(mwx::md::Layout layout) {
  switch (layout) {
    case mwx::md::Layout::JavaObjects: return "java_objects";
    case mwx::md::Layout::ReorderedObjects: return "reordered_objects";
    case mwx::md::Layout::PackedSoA: return "packed_soa";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int sim_steps = argc > 1 ? std::atoi(argv[1]) : 40;
  const int native_atoms = argc > 2 ? std::atoi(argv[2]) : 16000;
  const int native_steps = argc > 3 ? std::atoi(argv[3]) : 60;

  bench::JsonEmitter json("locality");
  json.set_provider("mixed");  // part A is simulated, part B native wall clock

  std::cout << "Part A: simulated miss rates, Al-1000, 4 threads, Morton pass off/on\n\n";
  for (const topo::MachineSpec& spec : topo::table2_machines()) {
    std::cout << spec.name << " (" << spec.processor << ")\n";
    Table table({"Layout", "Morton", "ms/step", "L2 miss%", "L3 miss%", "DRAM MB/step"});
    const std::string group = "sim." + spec.name;
    for (md::Layout layout :
         {md::Layout::JavaObjects, md::Layout::ReorderedObjects, md::Layout::PackedSoA}) {
      for (int interval : {0, 1}) {
        bench::RunOptions opt;
        opt.n_threads = 4;
        opt.steps = sim_steps;
        opt.warmup_steps = 3;
        opt.spec = spec;
        opt.layout = layout;
        opt.reorder_interval = interval;
        const bench::RunResult r = bench::run_simulated("Al-1000", opt);
        const double l2 = r.counters.l2.miss_rate() * 100.0;
        const double l3 = r.counters.l3.miss_rate() * 100.0;
        const double ms = r.seconds_per_step * 1e3;
        const double dram_mb = r.counters.dram_bytes(64) / 1e6 / sim_steps;
        const std::string key =
            std::string(layout_key(layout)) + (interval > 0 ? ".reorder_on" : ".reorder_off");
        json.metric(group, key + ".ms_per_step", ms);
        json.metric(group, key + ".l2_miss_pct", l2);
        json.metric(group, key + ".l3_miss_pct", l3);
        json.metric(group, key + ".dram_mb_per_step", dram_mb);
        table.row(layout_key(layout), interval > 0 ? "on" : "off", Table::fixed(ms, 3),
                  Table::fixed(l2, 2), Table::fixed(l3, 2), Table::fixed(dram_mb, 2));
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Part B: native wall clock, shuffled LJ gas of " << native_atoms
            << " atoms, single thread\n\n";

  // Shuffle creation order so the gas starts with worst-case index locality —
  // the state a long-running interactive MW session degrades into.
  auto make_shuffled_gas = [&] {
    md::MolecularSystem sys = workloads::make_lj_gas(native_atoms, 0.02, 260.0, 19);
    std::vector<int> perm(static_cast<std::size_t>(sys.n_atoms()));
    std::iota(perm.begin(), perm.end(), 0);
    std::mt19937_64 rng(1234);
    std::shuffle(perm.begin(), perm.end(), rng);
    sys.permute(perm);
    return sys;
  };

  // Each config is timed over kReps interleaved repetitions (best-of) so a
  // noisy scheduling quantum on one run cannot masquerade as a speedup.
  constexpr int kReps = 3;
  double pairs_per_step_out = 0.0;
  auto time_case = [&](bool tiled, int reorder_interval) {
    md::MolecularSystem sys = make_shuffled_gas();
    md::EngineConfig cfg;
    cfg.n_threads = 1;
    cfg.temporaries = md::TemporariesMode::InPlace;
    cfg.tiled_lj = tiled;
    cfg.reorder_interval = reorder_interval;
    md::Engine engine(std::move(sys), cfg);
    engine.run_inline(5);  // warmup: first rebuild (and first Morton pass)
    const auto t0 = std::chrono::steady_clock::now();
    engine.run_inline(native_steps);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double pairs_per_step =
        static_cast<double>(engine.neighbor_list().total_entries());
    pairs_per_step_out = pairs_per_step;
    return seconds * 1e9 / (static_cast<double>(native_steps) * pairs_per_step);
  };

  double ns_seed = 0.0, ns_tiled = 0.0, ns_morton = 0.0, ns_locality = 0.0;
  double pairs_seed = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto best = [rep](double& acc, double v) { acc = rep == 0 ? v : std::min(acc, v); };
    best(ns_seed, time_case(false, 0));
    pairs_seed = pairs_per_step_out;
    best(ns_tiled, time_case(true, 0));
    best(ns_morton, time_case(false, 2));
    best(ns_locality, time_case(true, 2));
  }

  Table native({"Config", "ns/pair", "speedup vs seed"});
  native.row("seed path (scalar LJ, no reorder)", Table::fixed(ns_seed, 3), Table::fixed(1.0, 3));
  native.row("tiled LJ only", Table::fixed(ns_tiled, 3), Table::fixed(ns_seed / ns_tiled, 3));
  native.row("Morton every 2 rebuilds only", Table::fixed(ns_morton, 3),
             Table::fixed(ns_seed / ns_morton, 3));
  native.row("tiled LJ + Morton every 2 rebuilds", Table::fixed(ns_locality, 3),
             Table::fixed(ns_seed / ns_locality, 3));
  native.print(std::cout);

  json.metric("native", "atoms", native_atoms);
  json.metric("native", "steps", native_steps);
  json.metric("native", "pairs_per_step", pairs_seed);
  json.metric("native", "ns_per_pair_seed", ns_seed);
  json.metric("native", "ns_per_pair_tiled", ns_tiled);
  json.metric("native", "ns_per_pair_morton", ns_morton);
  json.metric("native", "ns_per_pair_locality", ns_locality);
  json.metric("native", "speedup_tiled_vs_seed", ns_seed / ns_tiled);
  json.metric("native", "speedup_morton_vs_seed", ns_seed / ns_morton);
  json.metric("native", "speedup_locality_vs_seed", ns_seed / ns_locality);

  std::cout << "\nwrote " << json.write() << "\n";
  return 0;
}
