// Planner validation: predicted-vs-measured over the full what-if grid.
//
// One instrumented Al-1000 run on the reference machine feeds perf::Planner;
// every (Table II machine x queue discipline x pinning) candidate is then
// BOTH predicted (from that single profile) and actually executed in the
// simulator.  The bench prints the ranked table with per-config error and
// exits nonzero when the best- or worst-ranked prediction misses its
// measurement by more than the tolerance — the same gate ci.sh's
// planner-smoke stage asserts through mwx_run --plan.
//
// Usage: planner_validation [steps=120] [threads=4] [tolerance_pct=15]
// Emits BENCH_planner.json.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/cost_table.hpp"
#include "md/engine.hpp"
#include "perf/planner.hpp"
#include "perf/trace_ring.hpp"
#include "sim/machine.hpp"
#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

md::Engine make_engine(const std::string& benchmark, const perf::PlanConfig& c) {
  workloads::BenchmarkSpec spec = workloads::make_benchmark(benchmark);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = c.n_threads;
  cfg.assignment = c.assignment;
  cfg.chunks_per_thread = c.chunks_per_thread;
  return md::Engine(std::move(spec.system), cfg);
}

double run_config(const std::string& benchmark, int steps, const perf::PlanConfig& c) {
  md::Engine engine = make_engine(benchmark, c);
  sim::MachineConfig mc;
  mc.spec = c.spec;
  mc.n_threads = c.n_threads;
  mc.record_events = false;
  if (c.pinned) {
    for (int i = 0; i < c.n_threads; ++i) {
      mc.pin_masks.push_back(topo::CpuSet::of({(i % c.spec.n_cores()) * c.spec.smt_per_core}));
    }
  }
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);
  return machine.now_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 120;
  const int threads = argc > 2 ? std::max(1, std::atoi(argv[2])) : 4;
  const double tol_pct = argc > 3 ? std::atof(argv[3]) : 15.0;
  const std::string benchmark = "Al-1000";

  // --- Instrumented reference run -------------------------------------------
  perf::PlanConfig ref;
  ref.spec = topo::core_i7_920();
  ref.assignment = sim::Assignment::WorkStealing;
  ref.pinned = false;
  ref.n_threads = threads;
  ref.chunks_per_thread = 4;

  md::Engine engine = make_engine(benchmark, ref);
  sim::MachineConfig mc;
  mc.spec = ref.spec;
  mc.n_threads = threads;
  mc.record_events = true;
  perf::TraceRing trace(threads + 1);
  mc.trace = &trace;
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);

  perf::RunMeta meta;
  meta.benchmark = benchmark;
  meta.steps = steps;
  meta.n_threads = threads;
  meta.slots = engine.n_slots();
  meta.measured_seconds = machine.now_seconds();
  meta.spec = ref.spec;
  meta.assignment = ref.assignment;

  perf::Planner planner(
      perf::Planner::profile_from(trace.snapshot(), machine.pmu_report(), meta));
  const auto& profile = planner.profile();
  std::cout << "Planner validation: " << benchmark << ", " << steps << " steps, " << threads
            << " threads\nreference " << ref.label() << " measured " << meta.measured_seconds
            << "s; profile: " << profile.phases.size() << " phase classes, self-parallelism "
            << profile.self_parallelism() << "\n\n";

  // --- Predict + measure the whole grid -------------------------------------
  std::vector<perf::Prediction> ranked = planner.rank(perf::Planner::default_grid(threads));
  bench::JsonEmitter json("planner");
  json.set_provider("sim");
  json.note("reference", "config", ref.label());
  json.metric("reference", "steps", steps);
  json.metric("reference", "measured_seconds", meta.measured_seconds);
  json.metric("reference", "self_parallelism", profile.self_parallelism());
  json.metric("reference", "phase_classes", double(profile.phases.size()));
  json.metric("search", "n_configs", double(ranked.size()));
  json.metric("search", "tolerance_pct", tol_pct);

  Table table({"Rank", "Config", "Predicted ms", "Measured ms", "Error %", "Speedup"});
  double max_abs_err = 0.0, sum_abs_err = 0.0;
  int rank = 1, failures = 0;
  for (auto& pr : ranked) {
    pr.measured_seconds =
        pr.config.label() == ref.label() && pr.config.n_threads == threads
            ? meta.measured_seconds
            : run_config(benchmark, steps, pr.config);
    pr.validated = true;
    const double err = pr.error_pct();
    max_abs_err = std::max(max_abs_err, std::fabs(err));
    sum_abs_err += std::fabs(err);
    table.row(rank, pr.config.label(), Table::fixed(pr.seconds * 1e3, 1),
              Table::fixed(pr.measured_seconds * 1e3, 1), Table::fixed(err, 1),
              Table::fixed(pr.speedup, 2));
    const std::string g = "config." + pr.config.label();
    json.metric(g, "rank", rank);
    json.metric(g, "predicted_seconds", pr.seconds);
    json.metric(g, "measured_seconds", pr.measured_seconds);
    json.metric(g, "error_pct", err);
    json.metric(g, "predicted_speedup", pr.speedup);
    const bool extreme = rank == 1 || rank == static_cast<int>(ranked.size());
    if (extreme && std::fabs(err) > tol_pct) {
      std::cerr << "TOLERANCE EXCEEDED: " << pr.config.label() << " error " << err
                << "% > " << tol_pct << "%\n";
      ++failures;
    }
    ++rank;
  }
  table.print(std::cout);

  // Did the ranking get the ordering right where it matters?  Compare the
  // predicted-best against the measured-best.
  const auto* measured_best = &ranked.front();
  for (const auto& pr : ranked) {
    if (pr.measured_seconds < measured_best->measured_seconds) measured_best = &pr;
  }
  json.metric("search", "max_abs_error_pct", max_abs_err);
  json.metric("search", "mean_abs_error_pct", sum_abs_err / double(ranked.size()));
  json.note("search", "predicted_best", ranked.front().config.label());
  json.note("search", "measured_best", measured_best->config.label());
  json.metric("search", "best_agrees",
              ranked.front().config.label() == measured_best->config.label() ? 1.0 : 0.0);
  std::cout << "\npredicted best: " << ranked.front().config.label()
            << "\nmeasured  best: " << measured_best->config.label()
            << "\nmean |error| " << sum_abs_err / double(ranked.size()) << "%, max |error| "
            << max_abs_err << "%\n";
  std::cout << "wrote " << json.write() << "\n";
  if (failures > 0) {
    std::cerr << failures << " extreme-rank prediction(s) outside " << tol_pct << "%\n";
    return 1;
  }
  return 0;
}
