// Section V-A reproduction: data packing / runtime reordering.
//
// The authors tried to reorder atom objects into spatial order with rapidly
// successive new() calls, saw no improvement in VTune's mid-/last-level miss
// rates, and concluded "the objects were not being reordered and packed in
// memory".  Because our heap layout is a model, we can run all the cases
// they could not distinguish:
//
//   1. java-objects               — creation-order objects (the real MW)
//   2. java-objects + reorder     — the *attempted* reorder: the memory
//                                   manager ignores it (identical addresses)
//   3. reordered-objects          — what they hoped new() would do: objects
//                                   re-laid in cell-traversal order each
//                                   rebuild
//   4. packed-soa                 — the C-style layout Java cannot express
//
// Case 2 must be indistinguishable from case 1 (the paper's observation);
// cases 3 and 4 show what was actually available beyond Java's reach.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 50;

  std::cout << "Data packing (Section V-A), Al-1000 on 4 simulated cores\n\n";

  auto run = [&](md::Layout layout, bool reorder) {
    bench::RunOptions opt;
    opt.n_threads = 4;
    opt.steps = steps;
    opt.layout = layout;
    opt.reorder_on_rebuild = reorder;
    return bench::run_simulated("Al-1000", opt);
  };

  struct Case {
    const char* name;
    md::Layout layout;
    bool reorder;
  };
  const Case cases[] = {
      {"java-objects (baseline MW)", md::Layout::JavaObjects, false},
      {"java-objects + attempted reorder", md::Layout::JavaObjects, true},
      {"reordered-objects (real reorder)", md::Layout::ReorderedObjects, true},
      {"packed-soa", md::Layout::PackedSoA, false},
  };

  Table table({"Layout", "ms/step", "L2 miss%", "L3 miss%", "DRAM MB/step"});
  double base_l2 = 0.0, base_l3 = 0.0, attempted_l2 = 0.0, attempted_l3 = 0.0;
  for (const Case& c : cases) {
    const auto r = run(c.layout, c.reorder);
    const double l2 = r.counters.l2.miss_rate() * 100.0;
    const double l3 = r.counters.l3.miss_rate() * 100.0;
    if (std::string(c.name).find("baseline") != std::string::npos) {
      base_l2 = l2;
      base_l3 = l3;
    }
    if (std::string(c.name).find("attempted") != std::string::npos) {
      attempted_l2 = l2;
      attempted_l3 = l3;
    }
    table.row(c.name, Table::fixed(r.seconds_per_step * 1e3, 3), Table::fixed(l2, 2),
              Table::fixed(l3, 2), Table::fixed(r.counters.dram_bytes(64) / 1e6 / steps, 2));
  }
  table.print(std::cout);

  std::cout << "\npaper's observation reproduced: attempted reorder changes miss rates by "
            << Table::fixed(std::abs(attempted_l2 - base_l2), 3) << " pp (L2) / "
            << Table::fixed(std::abs(attempted_l3 - base_l3), 3)
            << " pp (L3) — \"a strong indicator that the objects were not being "
               "reordered\".\n";
  return 0;
}
