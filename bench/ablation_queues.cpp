// Ablation for the Section II-B design discussion: one shared work queue
// ("any work ... will be picked up by the next available thread", but "all
// threads are contending for access to that single resource") versus one
// queue per thread ("eliminates contention, but can result in ... idle"
// threads), across task granularities.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 40;

  std::cout << "Work-queue configuration ablation (Section II-B), 4 simulated cores\n\n";

  Table table({"Benchmark", "Queue", "Chunks/thread", "ms/step", "Queue wait ms",
               "Imbalance"});
  for (const auto& name : workloads::benchmark_names()) {
    for (const auto assignment : {sim::Assignment::Static, sim::Assignment::SharedQueue}) {
      for (int chunks : {1, 4, 16}) {
        bench::RunOptions opt;
        opt.n_threads = 4;
        opt.steps = steps;
        opt.assignment = assignment;
        opt.chunks_per_thread = chunks;
        const auto r = bench::run_simulated(name, opt);
        table.row(name,
                  assignment == sim::Assignment::Static ? "per-thread" : "single shared",
                  chunks, Table::fixed(r.seconds_per_step * 1e3, 3),
                  Table::fixed(r.counters.queue_wait_cycles /
                                   (topo::core_i7_920().ghz * 1e9) * 1e3,
                               2),
                  Table::fixed(r.imbalance, 3));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nsingle shared queue: dynamic balancing (lower imbalance at fine grain)\n"
               "but measurable contention; per-thread queues: zero contention, static\n"
               "distribution only.\n";
  return 0;
}
