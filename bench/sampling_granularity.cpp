// Section IV-B reproduction: insufficient sampling granularity.
//
// "VisualVM ... was sampling at a rate of one sample per second.  VTune was
// able to sample on the order of 5 to 10 milliseconds apart.  However, the
// typical work load in MW takes between 80 and 5000 microseconds ... At the
// thread state sampling granularity of these tools, we were able to observe
// only the most severe imbalance.  This sampling period also generated
// 'false positives'."
//
// We run Al-1000 on 4 simulated cores, capture the exact per-task event log,
// and replay what a sampler at each period would have displayed.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "md/engine.hpp"
#include "perf/sampling_profiler.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 60;

  std::cout << "Sampling granularity (Section IV-B), Al-1000 on 4 simulated cores\n\n";

  // Run once, keeping the full event log (ground truth).
  workloads::BenchmarkSpec spec = workloads::make_benchmark("Al-1000", 7);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 4;
  md::Engine engine(std::move(spec.system), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 4;
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);

  const perf::EventLog& log = machine.event_log();

  // Task-duration distribution: the paper's "80 to 5000 microseconds".
  std::vector<double> durations;
  for (int t = 0; t < log.n_threads(); ++t) {
    for (const auto& e : log.events_of(t)) durations.push_back((e.end - e.begin) * 1e6);
  }
  Table dist({"Statistic", "Task duration (us)"});
  dist.row("p10", Table::fixed(percentile(durations, 10), 1));
  dist.row("median", Table::fixed(percentile(durations, 50), 1));
  dist.row("p90", Table::fixed(percentile(durations, 90), 1));
  dist.row("max", Table::fixed(percentile(durations, 100), 1));
  dist.print(std::cout, "Work-item durations (paper: 80-5000 us)");
  std::cout << '\n';

  // Replay samplers.
  const double truth = [&] {
    const auto busy = log.busy_per_thread();
    return imbalance_ratio(busy);
  }();

  Table table({"Sampler", "Period", "Displayed imbalance", "True imbalance",
               "Worst busy-time error %", "False windows % (thread 0)"});
  struct Tool {
    const char* name;
    double period;
  };
  const Tool tools[] = {
      {"event log (exact)", 0.0},
      {"ideal 10 us sampler", 10e-6},
      {"VTune-class", 5e-3},
      {"VTune-class", 10e-3},
      {"VisualVM-class", 1.0},
  };
  const auto [t0, t1] = log.span();
  for (const Tool& tool : tools) {
    if (tool.period == 0.0) {
      table.row(tool.name, "-", Table::fixed(truth, 3), Table::fixed(truth, 3), "0.0", "-");
      continue;
    }
    const perf::SamplingReport report = perf::sample(log, tool.period);
    const long long false_w = perf::count_false_windows(log, 0, tool.period);
    const auto windows = static_cast<double>((t1 - t0) / tool.period);
    table.row(tool.name,
              tool.period >= 1.0 ? "1 s"
                                 : (tool.period >= 1e-3
                                        ? Table::fixed(tool.period * 1e3, 0) + " ms"
                                        : Table::fixed(tool.period * 1e6, 0) + " us"),
              Table::fixed(report.displayed_imbalance(), 3), Table::fixed(truth, 3),
              Table::fixed(report.worst_relative_error() * 100.0, 1),
              windows > 0 ? Table::fixed(100.0 * static_cast<double>(false_w) / windows, 1)
                          : std::string("-"));
  }
  table.print(std::cout, "What each tool displays vs ground truth");
  std::cout << "\n(run spans " << Table::fixed((t1 - t0) * 1e3, 1)
            << " ms of simulated time; a 1 s sampler takes at most one sample)\n";
  return 0;
}
