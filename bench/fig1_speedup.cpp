// Figure 1 reproduction: observed speedup of the three Table I benchmarks on
// an Intel Core i7 system, 1-4 cores.
//
// Paper's reported 4-core speedups: salt 3.63x, nanocar 3.03x, Al-1000 1.42x.
// The shape to reproduce: salt scales well, nanocar adequately, Al-1000
// (Lennard-Jones dominated, the repository's most common case) barely at all.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 30;

  std::cout << "Fig. 1 — Observed speedup on an Intel Core i7 system (simulated)\n"
            << "paper reference at 4 cores: salt 3.63x, nanocar 3.03x, Al-1000 1.42x\n\n";

  Table table({"Cores", "salt", "nanocar", "Al-1000"});
  Table detail({"Benchmark", "Cores", "ms/step", "Speedup", "DRAM MB/step",
                "L3 miss%", "Imbalance", "Rebuilds"});

  const std::vector<std::string> benchmarks = {"salt", "nanocar", "Al-1000"};
  std::vector<std::vector<double>> speedups(benchmarks.size());
  std::vector<std::vector<double>> ms_per_step(benchmarks.size());

  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    double t1 = 0.0;
    for (int cores = 1; cores <= 4; ++cores) {
      bench::RunOptions opt;
      opt.n_threads = cores;
      opt.steps = steps;
      const bench::RunResult r = bench::run_simulated(benchmarks[b], opt);
      if (cores == 1) t1 = r.seconds_per_step;
      const double speedup = t1 / r.seconds_per_step;
      speedups[b].push_back(speedup);
      ms_per_step[b].push_back(r.seconds_per_step * 1e3);
      detail.row(benchmarks[b], cores, Table::fixed(r.seconds_per_step * 1e3, 3),
                 Table::fixed(speedup, 2),
                 Table::fixed(r.counters.dram_bytes(64) / 1e6 / steps, 2),
                 Table::fixed(r.counters.l3.miss_rate() * 100.0, 1),
                 Table::fixed(r.imbalance, 3), static_cast<int>(r.rebuilds));
    }
  }

  for (int cores = 1; cores <= 4; ++cores) {
    table.row(cores, Table::fixed(speedups[0][static_cast<std::size_t>(cores - 1)], 2),
              Table::fixed(speedups[1][static_cast<std::size_t>(cores - 1)], 2),
              Table::fixed(speedups[2][static_cast<std::size_t>(cores - 1)], 2));
  }
  table.print(std::cout, "Speedup vs cores (series of Fig. 1)");
  std::cout << '\n';
  detail.print(std::cout, "Per-configuration detail");

  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);
  return 0;
}
