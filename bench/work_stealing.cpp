// Work-stealing executor evaluation on the triangular pair domains.
//
// Section II-B weighs a single shared queue (contention) against per-thread
// queues (stranded work).  The Chase–Lev discipline added here resolves the
// dilemma, and this bench quantifies it three ways:
//   1. a synthetic triangular phase on the simulated machine — the Coulomb
//      cost profile in isolation, contiguous blocks so the static split is
//      maximally imbalanced;
//   2. the salt benchmark end-to-end on a Table II machine across the three
//      simulated queue disciplines;
//   3. the salt benchmark on real threads across the three native pool
//      queue modes (host-dependent; the simulator is the controlled
//      multicore comparison).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "parallel/affinity.hpp"
#include "perf/scoped_timer.hpp"

namespace {

struct PhaseOutcome {
  double ms = 0.0;
  long long steals = 0;
  double steal_overhead_ms = 0.0;
  double queue_wait_ms = 0.0;
};

// One compute-only phase whose task costs fall linearly (task i of n costs
// ~(n - i)): the per-chunk profile of a contiguous split of the triangular
// LJ/Coulomb pair loops.  Owners get contiguous blocks, so under Static the
// first thread holds almost all the work.
PhaseOutcome run_triangular(mwx::sim::Assignment assignment, const mwx::topo::MachineSpec& spec,
                            int n_threads, int n_tasks) {
  using namespace mwx;
  sim::MachineConfig mc;
  mc.spec = spec;
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = n_threads;
  sim::Machine machine(mc);

  sim::PhaseWork work;
  work.tag = 4;
  work.assignment = assignment;
  const double total_cycles = 8e6;
  const double weight_sum = static_cast<double>(n_tasks) * (n_tasks + 1) / 2.0;
  for (int i = 0; i < n_tasks; ++i) {
    sim::SimTask t;
    t.owner = i * n_threads / n_tasks;
    t.compute_cycles = total_cycles * static_cast<double>(n_tasks - i) / weight_sum;
    work.tasks.push_back(t);
  }
  const auto r = machine.run_phase(work);
  const double to_ms = 1e3 / (mc.spec.ghz * 1e9);
  PhaseOutcome out;
  out.ms = r.duration_seconds() * 1e3;
  out.steals = machine.counters().steals;
  out.steal_overhead_ms = machine.counters().steal_overhead_cycles * to_ms;
  out.queue_wait_ms = machine.counters().queue_wait_cycles * to_ms;
  return out;
}

const char* assignment_name(mwx::sim::Assignment a) {
  switch (a) {
    case mwx::sim::Assignment::Static: return "static";
    case mwx::sim::Assignment::SharedQueue: return "shared-queue";
    case mwx::sim::Assignment::WorkStealing: return "work-stealing";
  }
  return "?";
}

const char* mode_name(mwx::parallel::QueueMode m) {
  switch (m) {
    case mwx::parallel::QueueMode::Single: return "single";
    case mwx::parallel::QueueMode::PerThread: return "per-thread";
    case mwx::parallel::QueueMode::WorkStealing: return "work-stealing";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 30;
  bench::JsonEmitter json("work_stealing");

  std::cout << "Queue-discipline comparison on triangular (pair-loop) work\n\n";

  // --- 1. Synthetic triangular phase, two Table II machines -----------------
  // At 4 cores the central queue barely contends and either dynamic
  // discipline reaches balance; at 16 threads on the 4-socket Xeon every pop
  // serializes on one lock while steals touch only the victim — the scaling
  // regime Section II-B's trade-off is about.
  bool synth_ok = true;
  struct SynthSetup {
    const char* label;
    topo::MachineSpec spec;
    int threads;
    int tasks;
  };
  const SynthSetup setups[] = {
      {"core_i7_920 4t x 64 tasks", topo::core_i7_920(), 4, 64},
      {"xeon_x7560_4s 32t x 4096 tasks", topo::xeon_x7560_4s(), 32, 4096},
  };
  for (const auto& s : setups) {
    std::cout << "Synthetic triangular phase, contiguous blocks, " << s.label << ":\n";
    Table synth({"Discipline", "Phase ms", "Steals", "Steal ovh ms", "Queue wait ms"});
    double synth_ms[3] = {0, 0, 0};
    int idx = 0;
    for (const auto a : {sim::Assignment::Static, sim::Assignment::SharedQueue,
                         sim::Assignment::WorkStealing}) {
      const auto r = run_triangular(a, s.spec, s.threads, s.tasks);
      synth_ms[idx++] = r.ms;
      synth.row(assignment_name(a), Table::fixed(r.ms, 4), r.steals,
                Table::fixed(r.steal_overhead_ms, 4), Table::fixed(r.queue_wait_ms, 4));
      json.metric(std::string("synthetic_ms ") + s.label, assignment_name(a), r.ms);
    }
    synth.print(std::cout);
    // The headline ranking is judged at scale (the Xeon row); the 4-core row
    // shows both dynamic disciplines far ahead of the static split.
    const bool row_ok = synth_ms[2] <= synth_ms[0] * 1.001 && synth_ms[2] <= synth_ms[1] * 1.05;
    if (s.threads >= 32) synth_ok = synth_ms[2] <= synth_ms[0] && synth_ms[2] <= synth_ms[1];
    std::cout << (row_ok ? "OK: work stealing matches or beats both alternatives\n\n"
                         : "UNEXPECTED: work stealing lost this ranking\n\n");
  }

  // --- 2. Salt end-to-end on a Table II machine -----------------------------
  std::cout << "salt, 16 threads, chunks/thread=4, simulated 4-socket Xeon X7560:\n";
  Table engine_table({"Discipline", "ms/step", "Imbalance", "Steals", "Queue wait ms"});
  double salt_ms[3] = {0, 0, 0};
  int idx = 0;
  for (const auto a : {sim::Assignment::Static, sim::Assignment::SharedQueue,
                       sim::Assignment::WorkStealing}) {
    bench::RunOptions opt;
    opt.n_threads = 16;
    opt.spec = topo::xeon_x7560_4s();
    opt.steps = steps;
    opt.assignment = a;
    opt.chunks_per_thread = 4;
    const auto r = bench::run_simulated("salt", opt);
    salt_ms[idx++] = r.seconds_per_step * 1e3;
    engine_table.row(assignment_name(a), Table::fixed(r.seconds_per_step * 1e3, 3),
                     Table::fixed(r.imbalance, 3), r.counters.steals,
                     Table::fixed(r.counters.queue_wait_cycles /
                                      (opt.spec.ghz * 1e9) * 1e3,
                                  2));
    json.metric("salt_simulated_ms_per_step", assignment_name(a),
                r.seconds_per_step * 1e3);
    json.metric("salt_simulated_imbalance", assignment_name(a), r.imbalance);
  }
  engine_table.print(std::cout);
  std::cout << "(salt's cyclic static split is already balanced — imbalance ~1.02 —\n"
               " so stealing pays cross-socket buffer migration without a balance win;\n"
               " the shared queue's contention is the clear loser at 16 threads.)\n\n";

  // --- 3. Salt on real threads ----------------------------------------------
  std::cout << "salt, 4 native threads on " << parallel::online_pus()
            << " host PU(s) (wall clock; rankings need >= 4 PUs):\n";
  Table native_table({"Pool queue", "ms/step", "Steals"});
  for (const auto mode : {parallel::QueueMode::Single, parallel::QueueMode::PerThread,
                          parallel::QueueMode::WorkStealing}) {
    auto spec = workloads::make_salt(7);
    auto cfg = spec.engine;
    cfg.n_threads = 4;
    cfg.chunks_per_thread = 4;
    cfg.assignment = sim::Assignment::WorkStealing;  // contiguous, imbalanced chunks
    cfg.temporaries = md::TemporariesMode::InPlace;
    md::Engine engine(std::move(spec.system), cfg);
    parallel::FixedThreadPool pool({.n_threads = 4, .queue_mode = mode});
    engine.run_native(pool, 5);  // warmup
    perf::StopWatch clock;
    engine.run_native(pool, steps);
    const double ms = clock.elapsed_seconds() * 1e3 / steps;
    native_table.row(mode_name(mode), Table::fixed(ms, 3), pool.steals());
    json.metric("salt_native_ms_per_step", mode_name(mode), ms);
  }
  native_table.print(std::cout);

  std::cout << "\nwork stealing pairs contiguous chunks (block-local scatter, see\n"
               "sparse_reduce) with dynamic balance: the triangle's heavy chunks\n"
               "migrate to idle workers instead of serializing on their owner.\n";
  json.note("meta", "machine", "core_i7_920 (simulated)");
  std::cout << "wrote " << json.write() << "\n";
  return synth_ok ? 0 : 1;
}
