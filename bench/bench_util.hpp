// Shared plumbing for the reproduction benches: runs a Table I benchmark on
// a simulated machine configuration and reports timing/counter summaries,
// plus a machine-readable JSON emitter for CI/plot consumption.
#pragma once

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "md/engine.hpp"
#include "perf/pmu.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::bench {

// Collects named metric groups and writes them as BENCH_<name>.json in the
// working directory — so runs can be diffed or plotted without scraping the
// human-readable tables.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

  // Counter provider behind the emitted numbers: "sim" (machine simulator,
  // the default for the reproduction benches), "perf_event"/"fallback"
  // (native PMU accumulator) or "mixed" when a bench joins backends.
  void set_provider(std::string provider) { provider_ = std::move(provider); }

  void metric(const std::string& group, const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    group_of(group).emplace_back(key, os.str());
  }

  void note(const std::string& group, const std::string& key, const std::string& text) {
    group_of(group).emplace_back(key, "\"" + escaped(text) + "\"");
  }

  // Writes BENCH_<name>.json; returns the path written.
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << escaped(name_) << "\",\n"
        << "  \"schema_version\": " << perf::kArtifactSchemaVersion << ",\n"
        << "  \"git_sha\": \"" << escaped(perf::build_git_sha()) << "\",\n"
        << "  \"provider\": \"" << escaped(provider_) << "\"";
    for (const auto& [group, entries] : groups_) {
      out << ",\n  \"" << escaped(group) << "\": {";
      bool first = true;
      for (const auto& [key, rendered] : entries) {
        out << (first ? "\n" : ",\n") << "    \"" << escaped(key) << "\": " << rendered;
        first = false;
      }
      out << "\n  }";
    }
    out << "\n}\n";
    return path;
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  Entries& group_of(const std::string& group) {
    for (auto& [g, entries] : groups_) {
      if (g == group) return entries;
    }
    groups_.emplace_back(group, Entries{});
    return groups_.back().second;
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::string provider_ = "sim";
  std::vector<std::pair<std::string, Entries>> groups_;
};

struct RunOptions {
  int n_threads = 1;
  int steps = 100;
  int warmup_steps = 5;
  topo::MachineSpec spec = topo::core_i7_920();
  std::vector<topo::CpuSet> pin_masks;  // empty = OS scheduled
  sim::SchedulerParams sched;           // defaults: mild noise, migratory
  md::Layout layout = md::Layout::JavaObjects;
  md::TemporariesMode temporaries = md::TemporariesMode::JavaStyle;
  sim::Assignment assignment = sim::Assignment::Static;
  int chunks_per_thread = 1;
  int monitor_updates_per_task = 0;
  int instr_calls_per_task = 0;
  bool instrumentation_agent = false;
  bool record_residency = false;
  bool reorder_on_rebuild = false;
  int reorder_interval = 0;  // Morton pass cadence in rebuilds; 0 = never
  bool tiled_lj = true;
  std::uint64_t workload_seed = 7;
};

struct RunResult {
  double seconds = 0.0;            // simulated seconds for the measured steps
  double seconds_per_step = 0.0;
  double updates_per_second = 0.0; // simulation refresh rate
  sim::MachineCounters counters;   // measured-step counters
  long long rebuilds = 0;
  double imbalance = 1.0;          // max/mean of per-thread busy time
  std::vector<sim::ResidencySegment> residency;
};

// Runs `spec_name` (a Table I benchmark) under the given options on the
// machine simulator.
inline RunResult run_simulated(const std::string& spec_name, const RunOptions& opt) {
  workloads::BenchmarkSpec spec = workloads::make_benchmark(spec_name, opt.workload_seed);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = opt.n_threads;
  cfg.chunks_per_thread = opt.chunks_per_thread;
  cfg.assignment = opt.assignment;
  cfg.heap.layout = opt.layout;
  cfg.temporaries = opt.temporaries;
  cfg.monitor_updates_per_task = opt.monitor_updates_per_task;
  cfg.instr_calls_per_task = opt.instr_calls_per_task;
  cfg.reorder_on_rebuild = opt.reorder_on_rebuild;
  cfg.reorder_interval = opt.reorder_interval;
  cfg.tiled_lj = opt.tiled_lj;
  md::Engine engine(std::move(spec.system), cfg);

  sim::MachineConfig mc;
  mc.spec = opt.spec;
  mc.sched = opt.sched;
  mc.n_threads = opt.n_threads;
  mc.pin_masks = opt.pin_masks;
  mc.record_residency = opt.record_residency;
  mc.instrumentation_agent = opt.instrumentation_agent;
  sim::Machine machine(mc);

  engine.run_simulated(machine, opt.warmup_steps);
  machine.reset_counters();
  const double t0 = machine.now_seconds();
  const long long rebuilds0 = engine.rebuild_count();
  engine.run_simulated(machine, opt.steps);

  RunResult r;
  r.seconds = machine.now_seconds() - t0;
  r.seconds_per_step = r.seconds / opt.steps;
  r.updates_per_second = r.seconds_per_step > 0 ? 1.0 / r.seconds_per_step : 0.0;
  r.counters = machine.counters();
  r.rebuilds = engine.rebuild_count() - rebuilds0;
  const auto busy = machine.event_log().busy_per_thread();
  if (!busy.empty()) {
    double mx = 0.0, sum = 0.0;
    for (double b : busy) {
      mx = std::max(mx, b);
      sum += b;
    }
    r.imbalance = sum > 0 ? mx / (sum / static_cast<double>(busy.size())) : 1.0;
  }
  r.residency = machine.residency();
  return r;
}

}  // namespace mwx::bench
