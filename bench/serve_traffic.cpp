// bench/serve_traffic.cpp — closed-loop multi-tenant traffic against the
// mwx::serve scheduler, run twice: fair-share-only vs preemption + deadline.
//
// The work-inflation lesson (Acar et al., PAPERS.md): shared-pool
// interference must be *measured*, not assumed — so this bench drives the
// serve layer the way a production fleet would and reports per-tenant
// latency distributions, not just aggregate throughput.
//
// Shape: tenant t0 is the *bulk* tenant — its clients submit oversized jobs
// (kBulkSteps of the largest scene, sample_interval=1 so the ticket sample
// ring is exercised) — while every other tenant's clients cycle a menu of
// small jobs.  Each client is a closed loop: submit one job, block on its
// ticket, record the latency, submit the next.  The whole load runs in two
// phases over a deliberately narrow driver pool (2 drivers):
//
//   phase "fairshare": SchedMode::FairShare, preemption off — a bulk job
//     holds its driver for its entire runtime, and small-job tail latency
//     inflates behind it (the job-level irregular-work failure mode);
//   phase "preempt":   SchedMode::Deadline + preempt_slice_steps — bulk jobs
//     are checkpointed every quantum and re-enqueued while small jobs (which
//     carry deadline_ms) jump ahead via EDF; small-job p99 should drop.
//
// Correctness gate, same contract as bench/raw_speed: every completed job's
// final (pe, ke) must be BITWISE equal to the same scene + config run on a
// dedicated single-engine pool — *including every preempted-and-resumed bulk
// job*, whose continuation chain restores from "mws 2" checkpoint text.
// Exit status is nonzero on any mismatch, on any lost job, and on a preempt
// phase that never actually preempted.
//
// Writes BENCH_serve.json: "config", combined "throughput", per-phase
// "<phase>.tenant.<name>" latency groups and "<phase>.sched" counters,
// "deadline" (hit rate, preempt phase), "samples" (ring drops), "compare"
// (small-job p99 across phases), "cache" and "verify" groups.
//
// Usage: serve_traffic [tenants] [clients_per_tenant] [jobs_per_client]
//                      [pool_threads] [n_pools]
//   Defaults give 4 tenants × 8 clients; CI smoke runs 2 4 2 4.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

constexpr double kDensity = 0.006;  // atoms/Å^3
constexpr double kTemperatureK = 300.0;
constexpr int kJobThreads = 2;  // decomposition width of every job

// The small-job menu: scene sizes × step budgets, cycled per client.
constexpr int kSceneAtoms[] = {96, 160, 256};
constexpr int kStepBudgets[] = {12, 24, 48};
// The bulk tenant's oversized job: largest scene, 5× the biggest small
// budget — long enough to monopolize a driver without preemption.
constexpr int kBulkSteps = 240;
constexpr int kPreemptSlice = 24;    // preempt phase quantum
constexpr double kDeadlineMs = 2000.0;  // small-job SLO in the preempt phase
constexpr std::size_t kSampleCap = 64;  // ring cap; bulk jobs stream 240 samples

struct JobOutcome {
  std::string tenant;
  int menu = 0;  // index into the scene/step menu; -1 = bulk job
  double latency_ms = 0.0;
  double pe = 0.0;
  double ke = 0.0;
  long long preemptions = 0;
  long long samples_dropped = 0;
  bool had_deadline = false;
  bool deadline_missed = false;
};

struct PhaseResult {
  std::string name;
  double elapsed = 0.0;
  long long retries = 0;
  std::vector<JobOutcome> outcomes;
  serve::BatchScheduler::Stats stats;
  long long cache_hits = 0;
  long long cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 4;
  const int clients_per_tenant = argc > 2 ? std::atoi(argv[2]) : 8;
  const int jobs_per_client = argc > 3 ? std::atoi(argv[3]) : 2;
  const int pool_threads = argc > 4 ? std::atoi(argv[4]) : 4;
  const int n_pools = argc > 5 ? std::atoi(argv[5]) : 1;
  const int n_clients = tenants * clients_per_tenant;

  // One scene text per menu entry plus the bulk scene, shared by every
  // tenant and client — the dedup regime the scene cache exists for.
  const int n_menu = static_cast<int>(std::size(kSceneAtoms));
  std::vector<std::string> scenes;
  for (int m = 0; m < n_menu; ++m) {
    scenes.push_back(serve::scene_text(
        workloads::make_lj_gas(kSceneAtoms[m], kDensity, kTemperatureK, 77 + m)));
  }
  const std::string bulk_scene = scenes.back();  // largest menu scene, more steps

  // Dedicated single-engine reference energies: the bitwise ground truth
  // every job — preempted or not — must reproduce.  Index n_menu holds the
  // bulk job's reference.
  std::vector<double> ref_pe(static_cast<std::size_t>(n_menu) + 1);
  std::vector<double> ref_ke(static_cast<std::size_t>(n_menu) + 1);
  for (int m = 0; m <= n_menu; ++m) {
    serve::SceneCache parse_once(1);
    const std::string& text = m < n_menu ? scenes[static_cast<std::size_t>(m)] : bulk_scene;
    const int steps = m < n_menu ? kStepBudgets[m] : kBulkSteps;
    md::EngineConfig cfg;
    cfg.n_threads = kJobThreads;
    md::Engine engine(*parse_once.load(text), cfg);
    parallel::FixedThreadPool dedicated({.n_threads = kJobThreads});
    engine.run_native(dedicated, steps);
    ref_pe[static_cast<std::size_t>(m)] = engine.potential_energy();
    ref_ke[static_cast<std::size_t>(m)] = engine.kinetic_energy();
    dedicated.shutdown();
  }

  auto run_phase = [&](const std::string& name, bool preempt) {
    serve::SchedulerConfig sc;
    sc.n_pools = n_pools;
    sc.threads_per_pool = pool_threads;
    // Two drivers on purpose: scarce dispatch slots are what makes an
    // oversized job's monopoly visible in small-job tails.
    sc.max_drivers = 2;
    sc.max_queued_total = std::max(64, 2 * n_clients);
    sc.default_quota.max_queued = std::max(4, clients_per_tenant / 2);
    sc.max_samples_per_job = kSampleCap;
    if (preempt) {
      sc.preempt_slice_steps = kPreemptSlice;
      sc.mode = serve::SchedMode::Deadline;
    }
    serve::BatchScheduler scheduler(sc);
    scheduler.set_quota("t0", {.weight = 2.0, .max_queued = sc.default_quota.max_queued});

    std::vector<std::vector<JobOutcome>> per_client(static_cast<std::size_t>(n_clients));
    std::atomic<long long> retries{0};
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(n_clients));
    for (int c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        const int tenant_idx = c % tenants;
        const bool bulk = tenant_idx == 0;
        const std::string tenant = "t" + std::to_string(tenant_idx);
        for (int j = 0; j < jobs_per_client; ++j) {
          const int menu = bulk ? -1 : (c + j) % n_menu;
          serve::JobRequest req;
          req.tenant = tenant;
          req.n_threads = kJobThreads;
          if (bulk) {
            req.scene_text = bulk_scene;
            req.steps = kBulkSteps;
            req.sample_interval = 1;  // stream hard into the sample ring
          } else {
            req.scene_text = scenes[static_cast<std::size_t>(menu)];
            req.steps = kStepBudgets[menu];
            if (preempt) req.deadline_ms = kDeadlineMs;  // small jobs carry the SLO
          }
          std::shared_ptr<serve::JobTicket> ticket;
          for (;;) {
            ticket = scheduler.submit(req);
            ticket->wait();
            if (ticket->status() != serve::JobStatus::Rejected) break;
            retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          per_client[static_cast<std::size_t>(c)].push_back(
              {tenant, menu, ticket->latency_seconds() * 1e3, ticket->potential_energy(),
               ticket->kinetic_energy(), ticket->preemptions(), ticket->samples_dropped(),
               req.deadline_ms > 0.0, ticket->deadline_missed()});
        }
      });
    }
    for (auto& t : clients) t.join();

    PhaseResult result;
    result.name = name;
    result.elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    result.retries = retries.load();
    for (auto& client : per_client) {
      for (JobOutcome& o : client) result.outcomes.push_back(std::move(o));
    }
    result.stats = scheduler.stats();
    result.cache_hits = scheduler.scene_cache().hits();
    result.cache_misses = scheduler.scene_cache().misses();
    return result;
  };

  std::cout << "serve_traffic: " << tenants << " tenants x " << clients_per_tenant
            << " clients x " << jobs_per_client << " jobs, " << pool_threads
            << " threads x " << n_pools << " pool(s); t0 bulk jobs " << kBulkSteps
            << " steps, small-job menu up to " << kStepBudgets[n_menu - 1] << " steps\n";
  const PhaseResult fairshare = run_phase("fairshare", false);
  const PhaseResult preempt = run_phase("preempt", true);

  // --- Verify: every job bitwise equal to its dedicated reference ------------
  long long jobs_total = 0;
  long long mismatches = 0;
  long long preempted_jobs = 0;
  long long samples_dropped_total = 0;
  long long deadline_jobs = 0, deadline_met = 0;
  for (const PhaseResult* phase : {&fairshare, &preempt}) {
    for (const JobOutcome& o : phase->outcomes) {
      ++jobs_total;
      if (o.preemptions > 0) ++preempted_jobs;
      samples_dropped_total += o.samples_dropped;
      if (o.had_deadline) {
        ++deadline_jobs;
        if (!o.deadline_missed) ++deadline_met;
      }
      const auto m = static_cast<std::size_t>(o.menu < 0 ? n_menu : o.menu);
      if (o.pe != ref_pe[m] || o.ke != ref_ke[m]) {
        ++mismatches;
        std::cerr << "ENERGY MISMATCH phase=" << phase->name << " tenant=" << o.tenant
                  << " menu=" << o.menu << " preemptions=" << o.preemptions
                  << std::setprecision(17) << " pe=" << o.pe << " ref=" << ref_pe[m]
                  << " ke=" << o.ke << " ref=" << ref_ke[m] << "\n";
      }
    }
  }

  bench::JsonEmitter json("serve");
  json.set_provider("native");
  json.metric("config", "tenants", tenants);
  json.metric("config", "clients_per_tenant", clients_per_tenant);
  json.metric("config", "jobs_per_client", jobs_per_client);
  json.metric("config", "pool_threads", pool_threads);
  json.metric("config", "n_pools", n_pools);
  json.metric("config", "max_drivers", 2);
  json.metric("config", "job_threads", kJobThreads);
  json.metric("config", "bulk_steps", kBulkSteps);
  json.metric("config", "preempt_slice_steps", kPreemptSlice);
  json.metric("config", "deadline_ms", kDeadlineMs);
  json.metric("config", "max_samples_per_job", static_cast<double>(kSampleCap));

  const double elapsed = fairshare.elapsed + preempt.elapsed;
  json.metric("throughput", "jobs_total", static_cast<double>(jobs_total));
  json.metric("throughput", "elapsed_seconds", elapsed);
  json.metric("throughput", "jobs_per_sec",
              elapsed > 0 ? static_cast<double>(jobs_total) / elapsed : 0.0);
  json.metric("throughput", "rejects",
              static_cast<double>(fairshare.stats.rejected + preempt.stats.rejected));
  json.metric("throughput", "retries",
              static_cast<double>(fairshare.retries + preempt.retries));
  json.metric("throughput", "failed_jobs",
              static_cast<double>(fairshare.stats.failed + preempt.stats.failed));

  std::map<std::string, double> small_p99_of_phase;
  for (const PhaseResult* phase : {&fairshare, &preempt}) {
    std::map<std::string, std::vector<double>> latency_of_tenant;
    std::vector<double> small_latencies;
    for (const JobOutcome& o : phase->outcomes) {
      latency_of_tenant[o.tenant].push_back(o.latency_ms);
      if (o.menu >= 0) small_latencies.push_back(o.latency_ms);
    }
    std::cout << "  phase " << phase->name << ": " << phase->outcomes.size()
              << " jobs in " << std::fixed << std::setprecision(2) << phase->elapsed
              << " s, " << phase->stats.preemptions << " preemptions, "
              << phase->stats.rejected << " rejected\n";
    for (auto& [tenant, latencies] : latency_of_tenant) {
      double sum = 0.0;
      for (double v : latencies) sum += v;
      const auto n = static_cast<double>(latencies.size());
      const double p50 = percentile(latencies, 50.0);
      const double p95 = percentile(latencies, 95.0);
      const double p99 = percentile(latencies, 99.0);
      const std::string group = phase->name + ".tenant." + tenant;
      const double weight = tenant == "t0" ? 2.0 : 1.0;
      json.metric(group, "jobs", n);
      json.metric(group, "weight", weight);
      json.metric(group, "p50_ms", p50);
      json.metric(group, "p95_ms", p95);
      json.metric(group, "p99_ms", p99);
      json.metric(group, "mean_ms", n > 0 ? sum / n : 0.0);
      json.metric(group, "jobs_per_sec", phase->elapsed > 0 ? n / phase->elapsed : 0.0);
      std::cout << "    " << tenant << (tenant == "t0" ? " (bulk)" : "") << ": p50 "
                << p50 << " ms, p95 " << p95 << " ms, p99 " << p99 << " ms over "
                << latencies.size() << " jobs\n";
    }
    const std::string sched_group = phase->name + ".sched";
    json.metric(sched_group, "mode",
                phase->name == "preempt" ? 1.0 : 0.0);  // 0=FairShare 1=Deadline
    json.metric(sched_group, "preemptions", static_cast<double>(phase->stats.preemptions));
    json.metric(sched_group, "completed", static_cast<double>(phase->stats.completed));
    small_p99_of_phase[phase->name] =
        small_latencies.empty() ? 0.0 : percentile(small_latencies, 99.0);
  }

  const double p99_fair = small_p99_of_phase["fairshare"];
  const double p99_pre = small_p99_of_phase["preempt"];
  json.metric("compare", "small_p99_fairshare_ms", p99_fair);
  json.metric("compare", "small_p99_preempt_ms", p99_pre);
  json.metric("compare", "small_p99_improved", p99_pre < p99_fair ? 1.0 : 0.0);
  std::cout << "  small-job p99: fairshare " << p99_fair << " ms -> preempt+deadline "
            << p99_pre << " ms ("
            << (p99_fair > 0 ? p99_pre / p99_fair : 0.0) << "x)\n";

  json.metric("deadline", "jobs", static_cast<double>(deadline_jobs));
  json.metric("deadline", "met", static_cast<double>(deadline_met));
  json.metric("deadline", "hit_rate",
              deadline_jobs > 0
                  ? static_cast<double>(deadline_met) / static_cast<double>(deadline_jobs)
                  : 1.0);
  json.metric("samples", "dropped_total", static_cast<double>(samples_dropped_total));
  json.metric("samples", "preempted_jobs", static_cast<double>(preempted_jobs));

  const long long hits = fairshare.cache_hits + preempt.cache_hits;
  const long long misses = fairshare.cache_misses + preempt.cache_misses;
  json.metric("cache", "hits", static_cast<double>(hits));
  json.metric("cache", "misses", static_cast<double>(misses));
  json.metric("cache", "hit_rate",
              hits + misses > 0
                  ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                  : 0.0);
  json.metric("cache", "distinct_scenes", n_menu);
  json.metric("verify", "energy_bits_match", mismatches == 0 ? 1.0 : 0.0);
  json.metric("verify", "jobs_checked", static_cast<double>(jobs_total));
  json.metric("verify", "preempted_jobs_checked", static_cast<double>(preempted_jobs));
  const std::string path = json.write();
  std::cout << "  deadline hit rate: " << deadline_met << "/" << deadline_jobs
            << ", sample-ring drops: " << samples_dropped_total << ", cache: " << hits
            << " hits / " << misses << " misses\n";
  std::cout << "  wrote " << path << "\n";

  if (mismatches != 0) {
    std::cerr << "FAIL: " << mismatches << " jobs diverged from the dedicated-pool "
              << "reference\n";
    return 1;
  }
  const long long expected =
      2LL * static_cast<long long>(n_clients) * jobs_per_client;  // two phases
  if (jobs_total != expected) {
    std::cerr << "FAIL: expected " << expected << " jobs, got " << jobs_total << "\n";
    return 1;
  }
  if (preempt.stats.preemptions == 0) {
    std::cerr << "FAIL: preempt phase never preempted a bulk job (slice " << kPreemptSlice
              << " vs " << kBulkSteps << " steps)\n";
    return 1;
  }
  std::cout << "  all " << jobs_total << " job energies bitwise-identical to "
            << "dedicated-pool references (" << preempted_jobs
            << " preempted-and-resumed)\n";
  return 0;
}
