// bench/serve_traffic.cpp — closed-loop multi-tenant traffic against the
// mwx::serve scheduler.
//
// The work-inflation lesson (Acar et al., PAPERS.md): shared-pool
// interference must be *measured*, not assumed — so this bench drives the
// serve layer the way a production fleet would and reports per-tenant
// latency distributions, not just aggregate throughput.
//
// Shape: T tenants × C synthetic clients each, every client a closed loop —
// submit one job, block on its ticket, record the latency, submit the next.
// Jobs mix sizes (three scene sizes × three step budgets, round-robin per
// client) and tenants mix weights (tenant 0 carries fair-share weight 2, the
// rest weight 1), so the run exercises the scheduler's fair-share picker,
// the admission-control backoff path and the content-hash scene cache
// (every client of a tenant group reuses the same three scenes).
//
// Correctness gate, same contract as bench/raw_speed: every completed job's
// final (pe, ke) must be BITWISE equal to the same scene + config run on a
// dedicated single-engine pool.  Exit status is nonzero on any mismatch —
// multi-tenant sharing is required to be invisible in the physics.
//
// Writes BENCH_serve.json: a "config" group, a "throughput" group
// (jobs/sec, rejects, retries), one "tenant.<name>" group per tenant with
// p50/p95/p99/mean latency (ms) and per-tenant jobs/sec, a "cache" group
// (hit rate) and a "verify" group (energy_bits_match).
//
// Usage: serve_traffic [tenants] [clients_per_tenant] [jobs_per_client]
//                      [pool_threads] [n_pools]
//   Defaults give 8 × 25 = 200 concurrent clients; CI smoke runs 2 4 2 4.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

constexpr double kDensity = 0.006;  // atoms/Å^3
constexpr double kTemperatureK = 300.0;
constexpr int kJobThreads = 2;  // decomposition width of every job

// The mixed-size job menu: scene sizes × step budgets, cycled per client.
constexpr int kSceneAtoms[] = {96, 160, 256};
constexpr int kStepBudgets[] = {12, 24, 48};

struct JobOutcome {
  std::string tenant;
  int menu = 0;  // index into the scene/step menu
  double latency_ms = 0.0;
  double pe = 0.0;
  double ke = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 8;
  const int clients_per_tenant = argc > 2 ? std::atoi(argv[2]) : 25;
  const int jobs_per_client = argc > 3 ? std::atoi(argv[3]) : 3;
  const int pool_threads = argc > 4 ? std::atoi(argv[4]) : 4;
  const int n_pools = argc > 5 ? std::atoi(argv[5]) : 1;
  const int n_clients = tenants * clients_per_tenant;

  // One scene text per menu entry, shared by every tenant and client — the
  // dedup regime the scene cache exists for.
  const int n_menu = static_cast<int>(std::size(kSceneAtoms));
  std::vector<std::string> scenes;
  for (int m = 0; m < n_menu; ++m) {
    scenes.push_back(serve::scene_text(
        workloads::make_lj_gas(kSceneAtoms[m], kDensity, kTemperatureK, 77 + m)));
  }

  // Dedicated single-engine reference energies per menu entry: the bitwise
  // ground truth every multi-tenant run must reproduce.
  std::vector<double> ref_pe(static_cast<std::size_t>(n_menu));
  std::vector<double> ref_ke(static_cast<std::size_t>(n_menu));
  for (int m = 0; m < n_menu; ++m) {
    serve::SceneCache parse_once(1);
    md::EngineConfig cfg;
    cfg.n_threads = kJobThreads;
    md::Engine engine(*parse_once.load(scenes[static_cast<std::size_t>(m)]), cfg);
    parallel::FixedThreadPool dedicated({.n_threads = kJobThreads});
    engine.run_native(dedicated, kStepBudgets[m]);
    ref_pe[static_cast<std::size_t>(m)] = engine.potential_energy();
    ref_ke[static_cast<std::size_t>(m)] = engine.kinetic_energy();
    dedicated.shutdown();
  }

  serve::SchedulerConfig sc;
  sc.n_pools = n_pools;
  sc.threads_per_pool = pool_threads;
  sc.max_drivers = std::max(8, 2 * n_pools);
  sc.max_queued_total = std::max(64, n_clients);
  // Admission pressure: cap each tenant well below its client count so the
  // closed-loop retry path actually runs.
  sc.default_quota.max_queued = std::max(4, clients_per_tenant / 2);
  serve::BatchScheduler scheduler(sc);
  scheduler.set_quota("t0", {.weight = 2.0, .max_queued = sc.default_quota.max_queued});

  std::vector<std::vector<JobOutcome>> outcomes(static_cast<std::size_t>(n_clients));
  std::atomic<long long> retries{0};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(n_clients));
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      const int tenant_idx = c % tenants;
      const std::string tenant = "t" + std::to_string(tenant_idx);
      for (int j = 0; j < jobs_per_client; ++j) {
        const int menu = (c + j) % n_menu;
        serve::JobRequest req;
        req.tenant = tenant;
        req.scene_text = scenes[static_cast<std::size_t>(menu)];
        req.steps = kStepBudgets[menu];
        req.n_threads = kJobThreads;
        std::shared_ptr<serve::JobTicket> ticket;
        for (;;) {
          ticket = scheduler.submit(req);
          ticket->wait();
          if (ticket->status() != serve::JobStatus::Rejected) break;
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        outcomes[static_cast<std::size_t>(c)].push_back(
            {tenant, menu, ticket->latency_seconds() * 1e3, ticket->potential_energy(),
             ticket->kinetic_energy()});
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // --- Verify: every job bitwise equal to its dedicated reference ------------
  long long jobs_total = 0;
  long long mismatches = 0;
  std::map<std::string, std::vector<double>> latency_of_tenant;
  for (const auto& client : outcomes) {
    for (const JobOutcome& o : client) {
      ++jobs_total;
      latency_of_tenant[o.tenant].push_back(o.latency_ms);
      const auto m = static_cast<std::size_t>(o.menu);
      if (o.pe != ref_pe[m] || o.ke != ref_ke[m]) {
        ++mismatches;
        std::cerr << "ENERGY MISMATCH tenant=" << o.tenant << " menu=" << o.menu
                  << std::setprecision(17) << " pe=" << o.pe << " ref=" << ref_pe[m]
                  << " ke=" << o.ke << " ref=" << ref_ke[m] << "\n";
      }
    }
  }

  const serve::BatchScheduler::Stats stats = scheduler.stats();
  const long long hits = scheduler.scene_cache().hits();
  const long long misses = scheduler.scene_cache().misses();

  bench::JsonEmitter json("serve");
  json.set_provider("native");
  json.metric("config", "tenants", tenants);
  json.metric("config", "clients_per_tenant", clients_per_tenant);
  json.metric("config", "jobs_per_client", jobs_per_client);
  json.metric("config", "pool_threads", pool_threads);
  json.metric("config", "n_pools", n_pools);
  json.metric("config", "max_drivers", sc.max_drivers);
  json.metric("config", "job_threads", kJobThreads);
  json.metric("throughput", "jobs_total", static_cast<double>(jobs_total));
  json.metric("throughput", "elapsed_seconds", elapsed);
  json.metric("throughput", "jobs_per_sec",
              elapsed > 0 ? static_cast<double>(jobs_total) / elapsed : 0.0);
  json.metric("throughput", "rejects", static_cast<double>(stats.rejected));
  json.metric("throughput", "retries", static_cast<double>(retries.load()));
  json.metric("throughput", "failed_jobs", static_cast<double>(stats.failed));

  std::cout << "serve_traffic: " << tenants << " tenants x " << clients_per_tenant
            << " clients x " << jobs_per_client << " jobs, " << pool_threads
            << " threads x " << n_pools << " pool(s)\n";
  std::cout << "  " << jobs_total << " jobs in " << std::fixed << std::setprecision(2)
            << elapsed << " s  (" << static_cast<double>(jobs_total) / elapsed
            << " jobs/s), " << stats.rejected << " rejected, " << retries.load()
            << " retries\n";
  for (auto& [tenant, latencies] : latency_of_tenant) {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    const auto n = static_cast<double>(latencies.size());
    const double p50 = percentile(latencies, 50.0);
    const double p95 = percentile(latencies, 95.0);
    const double p99 = percentile(latencies, 99.0);
    const std::string group = "tenant." + tenant;
    const double weight = tenant == "t0" ? 2.0 : 1.0;
    json.metric(group, "jobs", n);
    json.metric(group, "weight", weight);
    json.metric(group, "p50_ms", p50);
    json.metric(group, "p95_ms", p95);
    json.metric(group, "p99_ms", p99);
    json.metric(group, "mean_ms", n > 0 ? sum / n : 0.0);
    json.metric(group, "jobs_per_sec", elapsed > 0 ? n / elapsed : 0.0);
    std::cout << "  " << tenant << " (w=" << weight << "): p50 " << p50 << " ms, p95 "
              << p95 << " ms, p99 " << p99 << " ms over " << latencies.size()
              << " jobs\n";
  }
  json.metric("cache", "hits", static_cast<double>(hits));
  json.metric("cache", "misses", static_cast<double>(misses));
  json.metric("cache", "hit_rate",
              hits + misses > 0
                  ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                  : 0.0);
  json.metric("cache", "distinct_scenes", n_menu);
  json.metric("verify", "energy_bits_match", mismatches == 0 ? 1.0 : 0.0);
  json.metric("verify", "jobs_checked", static_cast<double>(jobs_total));
  const std::string path = json.write();
  std::cout << "  cache: " << hits << " hits / " << misses << " misses\n";
  std::cout << "  wrote " << path << "\n";

  if (mismatches != 0) {
    std::cerr << "FAIL: " << mismatches << " jobs diverged from the dedicated-pool "
              << "reference\n";
    return 1;
  }
  if (jobs_total != static_cast<long long>(n_clients) * jobs_per_client) {
    std::cerr << "FAIL: expected " << n_clients * jobs_per_client << " jobs, got "
              << jobs_total << "\n";
    return 1;
  }
  std::cout << "  all job energies bitwise-identical to dedicated-pool references\n";
  return 0;
}
