// Micro-benchmarks (google-benchmark) of the individual substrates: force
// kernels, neighbor rebuild, reduction, synchronization primitives, queues,
// the cache model and the monitors.  These measure the *native* C++ code on
// the host, complementing the simulated end-to-end benches.
#include <benchmark/benchmark.h>

#include "md/engine.hpp"
#include "parallel/barrier.hpp"
#include "parallel/latch.hpp"
#include "parallel/task_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/monitor.hpp"
#include "sim/cache.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

md::Engine make_engine(const std::string& benchmark_name, int threads = 1) {
  auto spec = workloads::make_benchmark(benchmark_name, 7);
  auto cfg = spec.engine;
  cfg.n_threads = threads;
  cfg.temporaries = md::TemporariesMode::InPlace;
  return md::Engine(std::move(spec.system), cfg);
}

void BM_StepSalt(benchmark::State& state) {
  auto eng = make_engine("salt");
  for (auto _ : state) eng.run_inline(1);
  state.SetItemsProcessed(state.iterations() * eng.system().n_atoms());
}
BENCHMARK(BM_StepSalt)->Unit(benchmark::kMillisecond);

void BM_StepNanocar(benchmark::State& state) {
  auto eng = make_engine("nanocar");
  for (auto _ : state) eng.run_inline(1);
  state.SetItemsProcessed(state.iterations() * eng.system().n_atoms());
}
BENCHMARK(BM_StepNanocar)->Unit(benchmark::kMillisecond);

void BM_StepAl1000(benchmark::State& state) {
  auto eng = make_engine("Al-1000");
  for (auto _ : state) eng.run_inline(1);
  state.SetItemsProcessed(state.iterations() * eng.system().n_atoms());
}
BENCHMARK(BM_StepAl1000)->Unit(benchmark::kMillisecond);

void BM_ForcesOnly_LjGas(benchmark::State& state) {
  auto sys = workloads::make_lj_gas(static_cast<int>(state.range(0)), 0.012, 150.0, 3);
  md::EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.temporaries = md::TemporariesMode::InPlace;
  md::Engine eng(std::move(sys), cfg);
  for (auto _ : state) {
    eng.compute_forces_only();
    benchmark::DoNotOptimize(eng.potential_energy());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForcesOnly_LjGas)->Arg(250)->Arg(1000)->Arg(4000)->Unit(benchmark::kMicrosecond);

void BM_NeighborRebuild(benchmark::State& state) {
  auto sys = workloads::make_lj_gas(static_cast<int>(state.range(0)), 0.012, 150.0, 3);
  md::EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.temporaries = md::TemporariesMode::InPlace;
  md::Engine eng(std::move(sys), cfg);
  for (auto _ : state) {
    eng.compute_forces_only();  // unconditional rebuild + forces
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NeighborRebuild)->Arg(1000)->Arg(8000)->Unit(benchmark::kMicrosecond);

void BM_CountDownLatch(benchmark::State& state) {
  for (auto _ : state) {
    parallel::CountDownLatch latch(8);
    for (int i = 0; i < 8; ++i) latch.count_down();
    latch.await();
  }
}
BENCHMARK(BM_CountDownLatch);

void BM_BarrierSingleParty(benchmark::State& state) {
  parallel::CyclicBarrier barrier(1);
  for (auto _ : state) barrier.arrive_and_wait();
}
BENCHMARK(BM_BarrierSingleParty);

void BM_TaskQueuePushPop(benchmark::State& state) {
  parallel::TaskQueue q;
  for (auto _ : state) {
    q.push([] {});
    auto t = q.try_pop();
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TaskQueuePushPop);

void BM_ThreadPoolRoundTrip(benchmark::State& state) {
  parallel::FixedThreadPool pool({.n_threads = 2});
  for (auto _ : state) {
    parallel::CountDownLatch latch(1);
    pool.submit([&] { latch.count_down(); });
    latch.await();
  }
}
BENCHMARK(BM_ThreadPoolRoundTrip);

void BM_JamonMonitorAdd(benchmark::State& state) {
  perf::JamonMonitor monitor;
  for (auto _ : state) monitor.add("hot", 1e-6);
}
BENCHMARK(BM_JamonMonitorAdd);

void BM_ShardedMonitorAdd(benchmark::State& state) {
  perf::ShardedMonitor monitor(4);
  for (auto _ : state) monitor.add(0, "hot", 1e-6);
}
BENCHMARK(BM_ShardedMonitorAdd);

void BM_CacheModelAccess(benchmark::State& state) {
  sim::SetAssocCache cache(256 * 1024, 64, 8);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr += 64;
    if (addr > (1u << 22)) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void BM_SimulatedStepAl1000(benchmark::State& state) {
  // Cost of simulating one Al-1000 step on 4 modelled cores (the harness's
  // own overhead, relevant for reproducing long runs).
  auto spec = workloads::make_benchmark("Al-1000", 7);
  auto cfg = spec.engine;
  cfg.n_threads = 4;
  md::Engine eng(std::move(spec.system), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 4;
  sim::Machine machine(mc);
  for (auto _ : state) eng.run_simulated(machine, 1);
}
BENCHMARK(BM_SimulatedStepAl1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
