// Context experiment from the introduction: "the serial version of MW can
// satisfy [a non-jerky refresh rate] for simulations of at most a few
// hundred atoms ... Ideally, MW would be able to smoothly simulate one
// thousand atoms on a recent quad-core system.  As a result of
// parallelization, this goal has largely been reached."
//
// We sweep atom count for an Al-1000-like LJ solid on the simulated i7 and
// report updates/s for 1 vs 4 threads, marking where each falls below the
// 30 updates/s "smooth display" threshold.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 30;
  constexpr double kSmooth = 300.0;

  std::cout << "Atom-count scaling on the simulated quad-core (paper Section I):\n"
            << "serial MW handles only a few hundred atoms smoothly; the goal is\n"
            << "1000 atoms on a quad core.\n\n";

  Table table({"Atoms", "Updates/s (serial)", "Smooth?", "Updates/s (4 threads)", "Smooth?"});
  for (int n : {250, 500, 1000, 2000, 4000}) {
    double ups[2] = {0, 0};
    int idx = 0;
    for (int threads : {1, 4}) {
      auto sys = workloads::make_lj_gas(n, 0.055, 300.0, 5);  // dense solid-like
      md::EngineConfig cfg;
      cfg.n_threads = threads;
      cfg.dt_fs = 1.0;
      cfg.cutoff = 7.5;
      cfg.skin = 0.8;
      md::Engine engine(std::move(sys), cfg);
      sim::MachineConfig mc;
      mc.spec = topo::core_i7_920();
      mc.n_threads = threads;
      sim::Machine machine(mc);
      engine.run_simulated(machine, 5);  // warmup
      const double t0 = machine.now_seconds();
      engine.run_simulated(machine, steps);
      ups[idx++] = steps / (machine.now_seconds() - t0);
    }
    table.row(n, Table::fixed(ups[0], 1), ups[0] >= kSmooth ? "yes" : "no",
              Table::fixed(ups[1], 1), ups[1] >= kSmooth ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "\n(threshold " << kSmooth
            << " updates/s, scaled to this cost model's absolute speed — our modelled\n"
               "engine is faster than 2009-era Java in absolute terms, so the threshold\n"
               "is placed to preserve the paper's *shape*: parallelization extends the\n"
               "smooth range by roughly 4x in atom count, from a few hundred to ~1000+)\n";
  return 0;
}
