// Workload-axis scaling: 10k -> 1M atoms, serial vs parallel rebuild.
//
// The paper parallelizes the force phases and leaves the housekeeping —
// cell binning, the CSR prefix sum, any reordering pass — serial on the
// master, which is invisible at 1k atoms and an Amdahl wall at 1M.  This
// bench sweeps a bulk fcc argon crystal across {10k, 100k, 1M} atoms and,
// at every size:
//
//   * times each rebuild pass serial vs parallel (bin, prefix scan, Morton
//     sort, scene serialization) and VERIFIES the parallel output is
//     bit/byte-identical to the serial reference at 1/2/4/T threads;
//   * runs the full native engine with parallel_rebuild off vs on
//     (reorder_interval = 1, so every rebuild exercises the radix sort) and
//     verifies the per-step total energies are bitwise equal;
//   * repeats the bin/prefix verification on the solvated-droplet workload,
//     whose wildly uneven cell occupancy is the stress case for the chunk
//     histograms.
//
// Results land in BENCH_scaling.json; any verification failure makes the
// process exit nonzero, so CI can gate on determinism, not just speed.
//
// Usage: scaling_atoms [max_atoms=1000000] [engine_steps=3] [threads=4]
//                      [context_steps=0]
// A positive context_steps additionally prints the original simulated
// quad-core refresh-rate table from the paper's introduction.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/cell_grid.hpp"
#include "md/morton.hpp"
#include "md/neighbor_list.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scene_cache.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool grids_identical(const md::CellGrid& a, const md::CellGrid& b) {
  if (a.n_cells() != b.n_cells() || a.n_binned() != b.n_binned()) return false;
  for (int c = 0; c < a.n_cells(); ++c) {
    if (a.cell_count(c) != b.cell_count(c)) return false;
    if (!std::equal(a.cell_begin(c), a.cell_end(c), b.cell_begin(c))) return false;
  }
  return true;
}

bool offsets_identical(const md::NeighborList& a, const md::NeighborList& b) {
  if (a.n_atoms() != b.n_atoms() || a.total_entries() != b.total_entries()) return false;
  for (int i = 0; i < a.n_atoms(); ++i) {
    if (a.entry_index(i, 0) != b.entry_index(i, 0)) return false;
  }
  return true;
}

// Deterministic irregular row counts (the prefix scan is agnostic to where
// counts come from; this stands in for the count pass without the O(n * 27)
// cell sweep).
void fake_counts(md::NeighborList& nl, int n) {
  for (int i = 0; i < n; ++i) nl.set_count(i, static_cast<int>((i * 7 + 3) % 61));
}

struct PhaseTimings {
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const int max_atoms = argc > 1 ? std::atoi(argv[1]) : 1000000;
  const int engine_steps = argc > 2 ? std::atoi(argv[2]) : 3;
  const int threads = argc > 3 ? std::max(1, std::atoi(argv[3])) : 4;
  const int context_steps = argc > 4 ? std::atoi(argv[4]) : 0;

  bench::JsonEmitter json("scaling");
  json.set_provider("native");
  // Parallel wall-clock gains require real cores; on a 1-CPU host the sweep
  // still proves byte-identity (the point CI gates on) while serial-vs-
  // parallel timings read as overhead-only.  Record the budget so the
  // numbers are interpretable either way.
  json.metric("env", "hardware_concurrency",
              static_cast<double>(std::thread::hardware_concurrency()));
  json.metric("env", "pool_threads", threads);
  bool all_ok = true;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) std::cerr << "VERIFY FAILED: " << what << "\n";
    all_ok = all_ok && ok;
    return ok;
  };

  parallel::FixedThreadPool pool({.n_threads = threads});
  std::vector<int> thread_list{1, 2, 4, threads};

  std::vector<int> sizes;
  for (int n : {10000, 100000, 1000000}) {
    if (n <= max_atoms) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_atoms);

  std::cout << "Workload-axis scaling (bulk fcc argon), serial vs parallel rebuild\n"
            << "pool: " << threads << " threads\n\n";
  Table table({"Atoms", "bin ser/par ms", "prefix ser/par ms", "sort ser/par ms",
               "scene ser/par ms", "identical?"});

  for (int n : sizes) {
    md::MolecularSystem sys = workloads::make_bulk_crystal(n, 120.0, 42);
    const std::string size_tag = "n" + std::to_string(n);
    const double reach = 8.9;  // engine default cutoff + skin
    bool size_ok = true;

    // --- Cell binning ------------------------------------------------------
    md::CellGrid ref_grid(sys.box().lo, sys.box().hi, reach);
    double t0 = now_ms();
    ref_grid.bin(sys.positions());
    PhaseTimings bin_t;
    bin_t.serial_ms = now_ms() - t0;
    md::CellGrid par_grid(sys.box().lo, sys.box().hi, reach);
    for (int t : thread_list) {
      t0 = now_ms();
      par_grid.bin(sys.positions(), &pool, t);
      const double ms = now_ms() - t0;
      if (t == threads) bin_t.parallel_ms = ms;
      size_ok &= check(grids_identical(ref_grid, par_grid),
                       size_tag + " bin @" + std::to_string(t) + " chunks");
    }

    // --- CSR prefix scan ---------------------------------------------------
    md::NeighborList ref_nl(n, 8.0, 0.9), par_nl(n, 8.0, 0.9);
    ref_nl.begin_rebuild(sys.positions());
    fake_counts(ref_nl, n);
    t0 = now_ms();
    ref_nl.finalize_offsets();
    PhaseTimings prefix_t;
    prefix_t.serial_ms = now_ms() - t0;
    for (int t : thread_list) {
      par_nl.begin_rebuild(sys.positions());
      fake_counts(par_nl, n);
      t0 = now_ms();
      par_nl.finalize_offsets(&pool, t);
      const double ms = now_ms() - t0;
      if (t == threads) prefix_t.parallel_ms = ms;
      size_ok &= check(offsets_identical(ref_nl, par_nl),
                       size_tag + " prefix @" + std::to_string(t) + " chunks");
    }

    // --- Morton radix sort -------------------------------------------------
    t0 = now_ms();
    const std::vector<int> ref_order =
        md::morton_order(sys.positions(), sys.box().lo, sys.box().hi, reach);
    PhaseTimings sort_t;
    sort_t.serial_ms = now_ms() - t0;
    for (int t : thread_list) {
      t0 = now_ms();
      const std::vector<int> par_order =
          md::morton_order(sys.positions(), sys.box().lo, sys.box().hi, reach, &pool, t);
      const double ms = now_ms() - t0;
      if (t == threads) sort_t.parallel_ms = ms;
      size_ok &= check(par_order == ref_order,
                       size_tag + " morton @" + std::to_string(t) + " chunks");
    }

    // --- Scene serialization ----------------------------------------------
    t0 = now_ms();
    const std::string ref_text = serve::scene_text(sys);
    PhaseTimings scene_t;
    scene_t.serial_ms = now_ms() - t0;
    const std::uint64_t ref_hash = serve::SceneCache::content_hash(ref_text);
    for (int t : thread_list) {
      t0 = now_ms();
      const std::string par_text = serve::scene_text(sys, &pool, t);
      const double ms = now_ms() - t0;
      if (t == threads) scene_t.parallel_ms = ms;
      size_ok &= check(par_text == ref_text &&
                           serve::SceneCache::content_hash(par_text) == ref_hash,
                       size_tag + " scene @" + std::to_string(t) + " chunks");
    }

    const std::string rg = "rebuild." + size_tag;
    json.metric(rg, "bin_serial_ms", bin_t.serial_ms);
    json.metric(rg, "bin_parallel_ms", bin_t.parallel_ms);
    json.metric(rg, "prefix_serial_ms", prefix_t.serial_ms);
    json.metric(rg, "prefix_parallel_ms", prefix_t.parallel_ms);
    json.metric(rg, "sort_serial_ms", sort_t.serial_ms);
    json.metric(rg, "sort_parallel_ms", sort_t.parallel_ms);
    json.metric(rg, "scene_serial_ms", scene_t.serial_ms);
    json.metric(rg, "scene_parallel_ms", scene_t.parallel_ms);
    json.metric(rg, "scene_bytes", static_cast<double>(ref_text.size()));
    // Modelled-vs-measured anchor for the cost table's scene_format_atom
    // (there is no run_simulated site for serialization — it happens outside
    // the step loop — so the calibration lives here).
    json.metric(rg, "scene_serial_ns_per_atom", scene_t.serial_ms * 1e6 / n);

    auto spair = [](const PhaseTimings& t) {
      std::ostringstream os;
      os << Table::fixed(t.serial_ms, 1) << " / " << Table::fixed(t.parallel_ms, 1);
      return os.str();
    };
    table.row(n, spair(bin_t), spair(prefix_t), spair(sort_t), spair(scene_t),
              size_ok ? "yes" : "NO");
    json.metric("verify", size_tag + "_phases_identical", size_ok ? 1 : 0);

    // --- Engine ablation: parallel_rebuild off vs on -----------------------
    // reorder_interval = 1 puts the Morton sort on every rebuild; the
    // per-step total energies must match bit for bit.
    std::vector<double> energies[2];
    double wall[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      md::MolecularSystem esys = workloads::make_bulk_crystal(n, 120.0, 42);
      md::EngineConfig cfg;
      cfg.n_threads = threads;
      cfg.reorder_interval = 1;
      cfg.parallel_rebuild = mode == 1;
      md::Engine engine(std::move(esys), cfg);
      const double w0 = now_ms();
      for (int s = 0; s < engine_steps; ++s) {
        engine.run_native(pool, 1);
        energies[mode].push_back(engine.total_energy());
      }
      wall[mode] = now_ms() - w0;
    }
    const bool energy_ok =
        std::memcmp(energies[0].data(), energies[1].data(),
                    energies[0].size() * sizeof(double)) == 0;
    check(energy_ok, size_tag + " engine ablation energy bit-equality");
    const std::string eg = "engine." + size_tag;
    json.metric(eg, "steps", engine_steps);
    json.metric(eg, "threads", threads);
    json.metric(eg, "serial_rebuild_ms", wall[0]);
    json.metric(eg, "parallel_rebuild_ms", wall[1]);
    json.metric("verify", size_tag + "_engine_energy_identical", energy_ok ? 1 : 0);
  }
  table.print(std::cout);

  // --- Droplet stress case: irregular cell occupancy -----------------------
  {
    const int n = std::min(100000, max_atoms);
    md::MolecularSystem sys = workloads::make_droplet(std::max(n, 1000), 110.0, 99);
    const double reach = 8.9;
    md::CellGrid ref_grid(sys.box().lo, sys.box().hi, reach);
    ref_grid.bin(sys.positions());
    md::CellGrid par_grid(sys.box().lo, sys.box().hi, reach);
    bool ok = true;
    for (int t : thread_list) {
      par_grid.bin(sys.positions(), &pool, t);
      ok &= grids_identical(ref_grid, par_grid);
    }
    const std::vector<int> ref_order =
        md::morton_order(sys.positions(), sys.box().lo, sys.box().hi, reach);
    for (int t : thread_list) {
      ok &= md::morton_order(sys.positions(), sys.box().lo, sys.box().hi, reach, &pool,
                             t) == ref_order;
    }
    check(ok, "droplet irregular-occupancy bin/morton identity");
    json.metric("verify", "droplet_phases_identical", ok ? 1 : 0);
    std::cout << "\ndroplet (" << sys.n_atoms()
              << " atoms, dense core + sparse vapor): " << (ok ? "identical" : "DIVERGED")
              << "\n";
  }

  // --- Optional: the original simulated refresh-rate context table ---------
  if (context_steps > 0) {
    std::cout << "\nAtom-count context on the simulated quad-core (paper Section I):\n";
    Table ctx({"Atoms", "Updates/s (serial)", "Updates/s (4 threads)"});
    for (int n : {250, 500, 1000, 2000, 4000}) {
      double ups[2] = {0, 0};
      int idx = 0;
      for (int t : {1, 4}) {
        auto sys = workloads::make_lj_gas(n, 0.055, 300.0, 5);
        md::EngineConfig cfg;
        cfg.n_threads = t;
        cfg.dt_fs = 1.0;
        cfg.cutoff = 7.5;
        cfg.skin = 0.8;
        md::Engine engine(std::move(sys), cfg);
        sim::MachineConfig mc;
        mc.spec = topo::core_i7_920();
        mc.n_threads = t;
        sim::Machine machine(mc);
        engine.run_simulated(machine, 5);
        const double t0s = machine.now_seconds();
        engine.run_simulated(machine, context_steps);
        ups[idx++] = context_steps / (machine.now_seconds() - t0s);
      }
      ctx.row(n, Table::fixed(ups[0], 1), Table::fixed(ups[1], 1));
    }
    ctx.print(std::cout);
  }

  json.metric("verify", "all_identical", all_ok ? 1 : 0);
  const std::string path = json.write();
  std::cout << "\nwrote " << path << (all_ok ? "" : "  (WITH FAILURES)") << "\n";
  return all_ok ? 0 : 1;
}
