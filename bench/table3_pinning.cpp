// Table III reproduction: runtime with the same number of threads but
// different pinning topologies, on the 4-socket Xeon X7560 (Table II's
// 32-core machine, the Intel Manycore Testing Lab system).
//
// Paper's rows (runtime in seconds):
//   4 threads : one core per processor 172.2 | 4 cores on one processor
//               154.7 | OS scheduled 147.3
//   8 threads : OS scheduled 164.3 | two cores per processor 132.0 |
//               8 cores on one processor 103.7
//   32 threads: OS scheduled 100.2
//
// Shape to reproduce: with few threads, scheduling freedom wins (the OS can
// dodge cores loaded with other tasks); with 8 threads, pinning — especially
// onto one processor with its shared L3 — wins decisively, and running 8
// pinned threads on one socket is comparable to 32 OS-scheduled threads.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using mwx::topo::CpuSet;

std::vector<CpuSet> one_core_per_processor(const mwx::topo::MachineSpec& m, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) {
    const int core = (i % m.packages) * m.cores_per_package + i / m.packages;
    masks.push_back(CpuSet::of({core * m.smt_per_core}));
  }
  return masks;
}

std::vector<CpuSet> cores_on_one_processor(const mwx::topo::MachineSpec& m, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) masks.push_back(CpuSet::of({i * m.smt_per_core}));
  return masks;
}

std::vector<CpuSet> cores_per_processor(const mwx::topo::MachineSpec& m, int per_pkg, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) {
    const int pkg = i / per_pkg;
    const int core = pkg * m.cores_per_package + i % per_pkg;
    masks.push_back(CpuSet::of({core * m.smt_per_core}));
  }
  return masks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 80;
  const auto machine = topo::xeon_x7560_4s();

  // The Manycore Testing Lab was a shared system: model a noticeable
  // background load that pinned threads cannot dodge.
  sim::SchedulerParams sched;
  sched.noise_bursts_per_second = 70.0;
  sched.noise_burst_seconds = 600e-6;
  // The multi-user lab machine's balancer is under steady load and moves
  // threads less eagerly than an idle desktop's.
  sched.stay_probability = 0.55;

  struct Row {
    int threads;
    std::string topology;
    std::vector<CpuSet> masks;
  };
  const std::vector<Row> rows = {
      {4, "one core per processor", one_core_per_processor(machine, 4)},
      {4, "4 cores on one processor", cores_on_one_processor(machine, 4)},
      {4, "OS scheduled", {}},
      {8, "OS scheduled", {}},
      {8, "two cores per processor", cores_per_processor(machine, 2, 8)},
      {8, "8 cores on one processor", cores_on_one_processor(machine, 8)},
      {32, "OS scheduled", {}},
  };
  const std::vector<double> paper_runtime = {172.2, 154.7, 147.3, 164.3, 132.0, 103.7, 100.2};

  std::cout << "Table III — Differences in runtime with the same number of cores but\n"
            << "different topologies (simulated Xeon X7560, Al-1000-class LJ load)\n\n";

  Table table({"Number of Cores Used", "Topology", "Runtime (ms/"
               + std::to_string(steps) + " steps)", "Paper (s)", "Noise stall ms",
               "Migrations", "DRAM MB/step"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::RunOptions opt;
    opt.spec = machine;
    opt.sched = sched;
    opt.n_threads = rows[i].threads;
    opt.pin_masks = rows[i].masks;
    opt.steps = steps;
    const auto r = bench::run_simulated("Al-1000", opt);
    table.row(rows[i].threads, rows[i].topology, Table::fixed(r.seconds * 1e3, 1),
              Table::fixed(paper_runtime[i], 1),
              Table::fixed(r.counters.noise_stall_cycles / (machine.ghz * 1e9) * 1e3, 1),
              static_cast<long long>(r.counters.migrations),
              Table::fixed(r.counters.dram_bytes(64) / 1e6 / steps, 2));
  }
  table.print(std::cout);
  std::cout << "\n(absolute values are simulator time for " << steps
            << " steps; compare orderings within each thread-count group)\n";
  return 0;
}
