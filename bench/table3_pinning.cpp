// Table III reproduction: runtime with the same number of threads but
// different pinning topologies, on the 4-socket Xeon X7560 (Table II's
// 32-core machine, the Intel Manycore Testing Lab system).
//
// Paper's rows (runtime in seconds):
//   4 threads : one core per processor 172.2 | 4 cores on one processor
//               154.7 | OS scheduled 147.3
//   8 threads : OS scheduled 164.3 | two cores per processor 132.0 |
//               8 cores on one processor 103.7
//   32 threads: OS scheduled 100.2
//
// Shape to reproduce: with few threads, scheduling freedom wins (the OS can
// dodge cores loaded with other tasks); with 8 threads, pinning — especially
// onto one processor with its shared L3 — wins decisively, and running 8
// pinned threads on one socket is comparable to 32 OS-scheduled threads.
//
// Second section (NUMA extension): the same machine with the memory model
// upgraded from "one home package" to a per-address NUMA directory
// (HeapModel implements sim::NumaDirectory).  Three placements at 8 threads:
// single-home unpinned (the JVM-on-node-0 pathology the spec models by
// default), first-touch unpinned (data homed where its owning worker first
// wrote it, but the OS may migrate threads away), and first-touch pinned
// (two cores per processor — workers stay on the package their data lives
// on).  Reported dram_remote_fetches and modelled seconds reproduce the
// pinned-vs-unpinned miss-latency gap of Table III.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/engine.hpp"

namespace {

using mwx::topo::CpuSet;

std::vector<CpuSet> one_core_per_processor(const mwx::topo::MachineSpec& m, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) {
    const int core = (i % m.packages) * m.cores_per_package + i / m.packages;
    masks.push_back(CpuSet::of({core * m.smt_per_core}));
  }
  return masks;
}

std::vector<CpuSet> cores_on_one_processor(const mwx::topo::MachineSpec& m, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) masks.push_back(CpuSet::of({i * m.smt_per_core}));
  return masks;
}

std::vector<CpuSet> cores_per_processor(const mwx::topo::MachineSpec& m, int per_pkg, int n) {
  std::vector<CpuSet> masks;
  for (int i = 0; i < n; ++i) {
    const int pkg = i / per_pkg;
    const int core = pkg * m.cores_per_package + i % per_pkg;
    masks.push_back(CpuSet::of({core * m.smt_per_core}));
  }
  return masks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 80;
  const auto machine = topo::xeon_x7560_4s();

  // The Manycore Testing Lab was a shared system: model a noticeable
  // background load that pinned threads cannot dodge.
  sim::SchedulerParams sched;
  sched.noise_bursts_per_second = 70.0;
  sched.noise_burst_seconds = 600e-6;
  // The multi-user lab machine's balancer is under steady load and moves
  // threads less eagerly than an idle desktop's.
  sched.stay_probability = 0.55;

  struct Row {
    int threads;
    std::string topology;
    std::vector<CpuSet> masks;
  };
  const std::vector<Row> rows = {
      {4, "one core per processor", one_core_per_processor(machine, 4)},
      {4, "4 cores on one processor", cores_on_one_processor(machine, 4)},
      {4, "OS scheduled", {}},
      {8, "OS scheduled", {}},
      {8, "two cores per processor", cores_per_processor(machine, 2, 8)},
      {8, "8 cores on one processor", cores_on_one_processor(machine, 8)},
      {32, "OS scheduled", {}},
  };
  const std::vector<double> paper_runtime = {172.2, 154.7, 147.3, 164.3, 132.0, 103.7, 100.2};

  std::cout << "Table III — Differences in runtime with the same number of cores but\n"
            << "different topologies (simulated Xeon X7560, Al-1000-class LJ load)\n\n";

  Table table({"Number of Cores Used", "Topology", "Runtime (ms/"
               + std::to_string(steps) + " steps)", "Paper (s)", "Noise stall ms",
               "Migrations", "DRAM MB/step"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::RunOptions opt;
    opt.spec = machine;
    opt.sched = sched;
    opt.n_threads = rows[i].threads;
    opt.pin_masks = rows[i].masks;
    opt.steps = steps;
    const auto r = bench::run_simulated("Al-1000", opt);
    table.row(rows[i].threads, rows[i].topology, Table::fixed(r.seconds * 1e3, 1),
              Table::fixed(paper_runtime[i], 1),
              Table::fixed(r.counters.noise_stall_cycles / (machine.ghz * 1e9) * 1e3, 1),
              static_cast<long long>(r.counters.migrations),
              Table::fixed(r.counters.dram_bytes(64) / 1e6 / steps, 2));
  }
  table.print(std::cout);
  std::cout << "\n(absolute values are simulator time for " << steps
            << " steps; compare orderings within each thread-count group)\n";

  // --- NUMA extension: per-address homes vs the single-home heap ------------
  const int numa_threads = 8;
  struct NumaRow {
    std::string placement;
    bool first_touch;  // per-address directory vs MemorySpec::home_package
    std::vector<CpuSet> masks;
  };
  const std::vector<NumaRow> numa_rows = {
      {"single-home, OS scheduled", false, {}},
      {"first-touch, OS scheduled", true, {}},
      {"first-touch, 2 cores/processor", true,
       cores_per_processor(machine, 2, numa_threads)},
  };

  std::cout << "\nNUMA placement (same machine, " << numa_threads
            << " threads; per-address homes via the heap model's first-touch "
               "directory)\n\n";
  Table numa_table({"Placement", "Runtime (ms/" + std::to_string(steps) + " steps)",
                    "DRAM fetches", "Remote fetches", "Remote %"});

  bench::JsonEmitter json("table3_numa");
  json.metric("run", "steps", steps);
  json.metric("run", "threads", numa_threads);

  for (const NumaRow& row : numa_rows) {
    workloads::BenchmarkSpec spec = workloads::make_benchmark("Al-1000");
    md::EngineConfig cfg = spec.engine;
    cfg.n_threads = numa_threads;
    // Static chunk->worker assignment: the first-touch directory derives
    // page homes from the static owner map, so stealing would decorrelate
    // worker from page home and blur what the remote-fetch column measures.
    cfg.assignment = sim::Assignment::Static;
    md::Engine engine(std::move(spec.system), cfg);
    if (row.first_touch) {
      engine.heap().configure_numa(machine.packages, numa_threads,
                                   /*first_touch=*/true);
    }

    sim::MachineConfig mc;
    mc.spec = machine;
    mc.sched = sched;
    mc.n_threads = numa_threads;
    mc.pin_masks = row.masks;
    if (row.first_touch) mc.numa = &engine.heap();
    sim::Machine sim_machine(mc);

    engine.run_simulated(sim_machine, 5);  // warmup: lists built, caches warm
    sim_machine.reset_counters();
    const double t0 = sim_machine.now_seconds();
    engine.run_simulated(sim_machine, steps);
    const double seconds = sim_machine.now_seconds() - t0;
    const auto& c = sim_machine.counters();
    const double remote_pct =
        c.dram_line_fetches > 0
            ? 100.0 * double(c.dram_remote_fetches) / double(c.dram_line_fetches)
            : 0.0;
    numa_table.row(row.placement, Table::fixed(seconds * 1e3, 1),
                   c.dram_line_fetches, c.dram_remote_fetches,
                   Table::fixed(remote_pct, 1));
    const std::string group = row.first_touch
                                  ? (row.masks.empty() ? "first_touch_unpinned"
                                                       : "first_touch_pinned")
                                  : "single_home_unpinned";
    json.metric(group, "seconds", seconds);
    json.metric(group, "dram_line_fetches", double(c.dram_line_fetches));
    json.metric(group, "dram_remote_fetches", double(c.dram_remote_fetches));
    json.metric(group, "remote_pct", remote_pct);
  }
  numa_table.print(std::cout);
  std::cout << "\n(single-home: every fetch from packages 1-3 crosses QPI; "
               "first-touch homes each worker's arrays locally, and pinning "
               "keeps the worker on that package)\nwrote "
            << json.write() << "\n";
  return 0;
}
