// Self-audit of the trace layer (the corrected Section IV-A design).
//
// The paper found that the measurement tools distorted the measurement:
// JaMON's synchronized monitors serialized parallel MW.  TraceRing is our
// always-on replacement, so it must audit its own observer effect as a
// first-class number: run the same 8-thread Al-1000 (Lennard-Jones) workload
// uninstrumented, with TraceRing attached, and with JamonMonitor attached —
// at the same per-task event rate — and report the per-event overhead of
// each layer plus their ratio.  A second, allocation-free record loop
// measures the raw per-call cost of both layers under 8-thread load.
//
// The audit also verifies that attaching the trace layer leaves the engine's
// observables bit-identical (energies compared bitwise), and exports the
// traced run as TRACE_trace_overhead.json for chrome://tracing.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/monitor.hpp"
#include "perf/scoped_timer.hpp"
#include "perf/trace_ring.hpp"

namespace {

constexpr int kThreads = 8;
constexpr int kUpdatesPerTask = 64;  // instrumentation depth (per-atom-ish)

enum class Mode { Uninstrumented, TraceRing, Jamon };

struct AuditRun {
  double seconds = 0.0;
  double pe = 0.0;
  double ke = 0.0;
  unsigned long long events = 0;
};

AuditRun run_native(Mode mode, int steps, mwx::perf::TraceRing* export_ring = nullptr) {
  using namespace mwx;
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = kThreads;
  cfg.monitor_updates_per_task = mode == Mode::Uninstrumented ? 0 : kUpdatesPerTask;
  md::Engine engine(std::move(spec.system), cfg);
  parallel::FixedThreadPool pool(
      {.n_threads = kThreads, .queue_mode = parallel::QueueMode::PerThread});

  perf::TraceRing local_ring(kThreads + 1, std::size_t{1} << 16);
  perf::TraceRing* ring = export_ring != nullptr ? export_ring : &local_ring;
  perf::JamonMonitor monitor;
  engine.run_native(pool, 5);  // warmup before attaching instrumentation
  if (mode == Mode::TraceRing) {
    engine.attach_trace(ring);
    pool.attach_trace(ring);
  } else if (mode == Mode::Jamon) {
    engine.attach_monitor(&monitor);
  }

  perf::StopWatch watch;
  engine.run_native(pool, steps);
  AuditRun r;
  r.seconds = watch.elapsed_seconds();
  r.pe = engine.potential_energy();
  r.ke = engine.kinetic_energy();
  r.events = mode == Mode::Jamon ? static_cast<unsigned long long>(monitor.total_hits())
                                 : ring->total_records();
  pool.shutdown();
  return r;
}

AuditRun best_of(Mode mode, int steps, int reps) {
  AuditRun best = run_native(mode, steps);
  for (int i = 1; i < reps; ++i) {
    const AuditRun r = run_native(mode, steps);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

// Raw per-call cost under 8-thread load: every thread hammers its layer with
// the same number of records, no engine in the way.
template <typename Body>
double loop_seconds(int per_thread, Body&& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  mwx::perf::StopWatch watch;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] { body(w, per_thread); });
  }
  for (auto& t : threads) t.join();
  return watch.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 40;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;

  std::cout << "Trace-layer self-audit: Al-1000 (LJ), " << kThreads
            << " native threads, " << kUpdatesPerTask << " records/task, " << steps
            << " steps, best of " << reps << "\n\n";

  const AuditRun base = best_of(Mode::Uninstrumented, steps, reps);
  perf::TraceRing ring(kThreads + 1, std::size_t{1} << 16);
  AuditRun traced = run_native(Mode::TraceRing, steps, &ring);
  for (int i = 1; i < reps; ++i) {
    ring.clear();
    const AuditRun r = run_native(Mode::TraceRing, steps, &ring);
    if (r.seconds < traced.seconds) traced = r;
  }
  const AuditRun jamon = best_of(Mode::Jamon, steps, reps);

  // Per-event overhead attributed by subtraction; the raw record loop below
  // bounds the trace figure from below when the workload delta drowns in
  // scheduler noise (the trace layer's cost *is* that small).
  const double trace_delta = std::max(0.0, traced.seconds - base.seconds);
  const double jamon_delta = std::max(0.0, jamon.seconds - base.seconds);
  const double trace_event_ns =
      traced.events > 0 ? trace_delta / static_cast<double>(traced.events) * 1e9 : 0.0;
  const double jamon_event_ns =
      jamon.events > 0 ? jamon_delta / static_cast<double>(jamon.events) * 1e9 : 0.0;

  // Each loop body mirrors the engine's actual per-event call verbatim:
  // TraceRing takes integer tags; JaMON is keyed by "phase.<tag>" strings
  // built per event (that string build + map lookup under the global mutex
  // *is* its per-event cost).  Min-of-reps strips scheduler noise.
  constexpr int kLoopReps = 3;
  constexpr int kLoopPerThread = 200000;
  perf::TraceRing loop_ring(kThreads + 1, std::size_t{1} << 12);
  double trace_loop_s = 1e30;
  double jamon_loop_s = 1e30;
  for (int rep = 0; rep < kLoopReps; ++rep) {
    loop_ring.clear();
    trace_loop_s = std::min(trace_loop_s, loop_seconds(kLoopPerThread, [&](int w, int n) {
                     for (int i = 0; i < n; ++i) {
                       loop_ring.record(w, perf::TraceKind::Task, i & 7, 0.0, 1.0, w);
                     }
                   }));
    perf::JamonMonitor loop_monitor;
    jamon_loop_s =
        std::min(jamon_loop_s, loop_seconds(kLoopPerThread / 10, [&](int, int n) {
          for (int i = 0; i < n; ++i) {
            loop_monitor.add("phase." + std::to_string(i & 7), 1e-6);
          }
        }));
  }
  const double trace_loop_ns = trace_loop_s / (double(kLoopPerThread) * kThreads) * 1e9;
  const double jamon_loop_ns =
      jamon_loop_s / (double(kLoopPerThread / 10) * kThreads) * 1e9;

  // The headline ratio compares the two layers under the *same* methodology —
  // the record loop, where each side pays exactly its engine call — because
  // the workload subtraction cannot attribute nanosecond-scale costs on a box
  // whose scheduler noise per step exceeds the whole instrumentation budget
  // (the deltas above are context, not the measurement).
  const double overhead_ratio = trace_loop_ns > 0 ? jamon_loop_ns / trace_loop_ns : 0.0;

  // Observer-effect audit: instrumentation must not change the physics.
  const bool pe_identical = std::memcmp(&base.pe, &traced.pe, sizeof(double)) == 0;
  const bool ke_identical = std::memcmp(&base.ke, &traced.ke, sizeof(double)) == 0;
  const bool jamon_pe_identical = std::memcmp(&base.pe, &jamon.pe, sizeof(double)) == 0;

  Table table({"Configuration", "ms/step", "Slowdown", "events", "ns/event"});
  auto add = [&](const std::string& name, const AuditRun& r, double ns) {
    table.row(name, Table::fixed(r.seconds / steps * 1e3, 3),
              Table::fixed(r.seconds / base.seconds, 3),
              Table::fixed(static_cast<double>(r.events), 0), Table::fixed(ns, 1));
  };
  add("uninstrumented", base, 0.0);
  add("TraceRing", traced, trace_event_ns);
  add("JamonMonitor", jamon, jamon_event_ns);
  table.print(std::cout);
  std::cout << "\nrecord-loop cost: TraceRing " << Table::fixed(trace_loop_ns, 1)
            << " ns/record, JamonMonitor " << Table::fixed(jamon_loop_ns, 1)
            << " ns/add\nobserver-effect ratio (JaMON / TraceRing, record loop): "
            << Table::fixed(overhead_ratio, 1) << "x\nenergies bit-identical: "
            << (pe_identical && ke_identical ? "yes" : "NO") << "\n";

  {
    std::ofstream out("TRACE_trace_overhead.json");
    perf::write_chrome_trace(ring.snapshot(), out);
    std::cout << "chrome://tracing view written to TRACE_trace_overhead.json\n";
  }

  bench::JsonEmitter json("trace_overhead");
  json.metric("workload", "threads", kThreads);
  json.metric("workload", "steps", steps);
  json.metric("workload", "records_per_task", kUpdatesPerTask);
  json.metric("workload", "base_ms_per_step", base.seconds / steps * 1e3);
  json.metric("workload", "trace_ms_per_step", traced.seconds / steps * 1e3);
  json.metric("workload", "jamon_ms_per_step", jamon.seconds / steps * 1e3);
  json.metric("workload", "trace_events", static_cast<double>(traced.events));
  json.metric("workload", "jamon_events", static_cast<double>(jamon.events));
  json.metric("workload", "trace_ns_per_event", trace_event_ns);
  json.metric("workload", "jamon_ns_per_event", jamon_event_ns);
  json.metric("record_loop", "trace_ns_per_record", trace_loop_ns);
  json.metric("record_loop", "jamon_ns_per_add", jamon_loop_ns);
  json.metric("audit", "overhead_ratio_jamon_over_trace", overhead_ratio);
  json.metric("audit", "energies_bit_identical",
              pe_identical && ke_identical ? 1.0 : 0.0);
  json.metric("audit", "jamon_pe_bit_identical", jamon_pe_identical ? 1.0 : 0.0);
  json.note("audit", "chrome_trace", "TRACE_trace_overhead.json");
  std::cout << "wrote " << json.write() << "\n";

  return overhead_ratio >= 10.0 && pe_identical && ke_identical ? 0 : 1;
}
