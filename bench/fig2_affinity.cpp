// Figure 2 reproduction: worker-thread-to-core affinity without pinning.
//
// The paper plotted one worker thread of the Al-1000 run wandering across
// all four cores of the i7, visiting every core in under a second, with
// migrations clustering around synchronization points.  We render the same
// information as a per-core residency timeline for worker thread 0 plus
// aggregate migration statistics, with a pinned run as the contrast case.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

// Prints an ASCII timeline: one row per core, one column per time bucket;
// '#' = heavy residency in that bucket, '+' = some, '.' = none.
void print_timeline(const std::vector<mwx::sim::ResidencySegment>& segments, int thread,
                    int n_cores, int smt, double t0, double t1, int buckets) {
  std::vector<std::vector<double>> occupancy(static_cast<std::size_t>(n_cores),
                                             std::vector<double>(static_cast<std::size_t>(buckets), 0.0));
  const double dt = (t1 - t0) / buckets;
  for (const auto& seg : segments) {
    if (seg.thread != thread) continue;
    const int core = seg.pu / smt;
    for (int b = 0; b < buckets; ++b) {
      const double lo = t0 + b * dt;
      const double hi = lo + dt;
      const double overlap = std::min(seg.end_seconds, hi) - std::max(seg.begin_seconds, lo);
      if (overlap > 0) occupancy[static_cast<std::size_t>(core)][static_cast<std::size_t>(b)] += overlap;
    }
  }
  for (int c = 0; c < n_cores; ++c) {
    std::cout << "  core " << c << " |";
    for (int b = 0; b < buckets; ++b) {
      const double frac = occupancy[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] / dt;
      std::cout << (frac > 0.5 ? '#' : (frac > 0.05 ? '+' : '.'));
    }
    std::cout << "|\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 60;

  std::cout << "Fig. 2 — Worker thread to core affinity without pinning (simulated)\n"
            << "paper observation: \"the thread moves frequently between all four cores\",\n"
            << "visiting every core in less than one second.\n\n";

  auto run = [&](bool pinned) {
    bench::RunOptions opt;
    opt.n_threads = 4;
    opt.steps = steps;
    opt.record_residency = true;
    if (pinned) {
      opt.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2}), topo::CpuSet::of({4}),
                       topo::CpuSet::of({6})};
    }
    return bench::run_simulated("Al-1000", opt);
  };

  const bench::RunResult unpinned = run(false);
  const bench::RunResult pinned = run(true);

  const auto spec = topo::core_i7_920();
  double t1 = 0.0;
  for (const auto& seg : unpinned.residency) t1 = std::max(t1, seg.end_seconds);

  std::cout << "Worker thread 0 residency, unpinned (" << Table::fixed(t1 * 1e3, 1)
            << " ms of simulated time):\n";
  print_timeline(unpinned.residency, 0, spec.n_cores(), spec.smt_per_core, 0.0, t1, 72);

  // Distinct cores visited by each thread, plus time-to-full-coverage.
  Table table({"Thread", "Cores visited (unpinned)", "First full coverage (ms)",
               "Cores visited (pinned)"});
  for (int th = 0; th < 4; ++th) {
    std::vector<char> seen(static_cast<std::size_t>(spec.n_cores()), 0);
    int distinct = 0;
    double covered_at = -1.0;
    for (const auto& seg : unpinned.residency) {
      if (seg.thread != th) continue;
      const int core = seg.pu / spec.smt_per_core;
      if (!seen[static_cast<std::size_t>(core)]) {
        seen[static_cast<std::size_t>(core)] = 1;
        ++distinct;
        if (distinct == spec.n_cores()) covered_at = seg.begin_seconds;
      }
    }
    std::vector<char> seen_pinned(static_cast<std::size_t>(spec.n_cores()), 0);
    int distinct_pinned = 0;
    for (const auto& seg : pinned.residency) {
      if (seg.thread != th) continue;
      const int core = seg.pu / spec.smt_per_core;
      if (!seen_pinned[static_cast<std::size_t>(core)]) {
        seen_pinned[static_cast<std::size_t>(core)] = 1;
        ++distinct_pinned;
      }
    }
    table.row(th, distinct,
              covered_at >= 0 ? Table::fixed(covered_at * 1e3, 2) : std::string("never"),
              distinct_pinned);
  }
  std::cout << '\n';
  table.print(std::cout, "Core coverage per worker thread");

  Table summary({"Configuration", "Migrations", "Migrations/s"});
  summary.row("unpinned", static_cast<long long>(unpinned.counters.migrations),
              Table::fixed(unpinned.counters.migrations / std::max(1e-9, unpinned.seconds), 0));
  summary.row("pinned", static_cast<long long>(pinned.counters.migrations),
              Table::fixed(pinned.counters.migrations / std::max(1e-9, pinned.seconds), 0));
  std::cout << '\n';
  summary.print(std::cout, "Migration summary");
  return 0;
}
