// bench/raw_speed.cpp — the tier-2 raw-speed ablation (wall clock, native
// backend).
//
// Workload: a shuffled LJ+Coulomb gas (workloads::make_lj_coulomb_gas) —
// creation order is scene-file random, so both the LJ neighbor gathers and
// the Coulomb charged-list gathers are irregular, which is the regime the
// paper's Section V is about.  Default 16384 atoms, 1/16 of them carrying
// alternating +-1e charges.
//
// Ablation (cumulative, each variant keeps the previous ones on):
//   baseline        PR-5 path: tiled LJ only; scalar Coulomb, barriered
//                   rebuild schedule, OS page placement
//   tiled_coulomb   + branch-free lane-loop Coulomb kernel
//   overlap         + CSR neighbor-count pass fused with non-LJ forces
//   numa            + first-touch placement of hot arrays and slot buffers
//
// Every variant's total energy after the full run must be BITWISE equal to a
// scalar single-threaded (run_inline) reference with the same slot structure
// — each optimisation is value-preserving by construction, and this bench is
// where that claim meets the wall clock.  Exit status is nonzero on any
// mismatch.
//
// Also times the PME spread/interpolate pair scalar-vs-vectorized (the
// EwaldParams::vectorized switch) on an ionic cluster and checks the two
// paths bitwise against each other.
//
// Writes BENCH_raw_speed.json: one "variant_<name>" group per ablation step
// (order, seconds_per_step, speedup_vs_baseline, energy_bits_match_scalar),
// a "pme" group for the micro timing, and a "run" group with the workload
// parameters.  tools/mwx-report renders these as the speedup-ablation
// section.
//
// Usage: raw_speed [n_atoms] [steps] [threads] [warmup]
//   CI smoke runs a small n; the committed artifact uses the defaults.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "md/engine.hpp"
#include "md/ewald/pme.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

constexpr double kDensity = 0.008;        // atoms/Å^3 — a dense gas
constexpr double kTemperatureK = 300.0;
// A quarter of the atoms carry charge: the all-pairs Coulomb sum then
// dominates the step (as in the paper's salt runs), which is the path this
// bench's vectorization ablation exercises.
constexpr double kChargedFraction = 1.0 / 4.0;
constexpr std::uint64_t kSeed = 1234;

struct Variant {
  const char* name;
  bool tiled_coulomb;
  bool overlap_rebuild;
  bool first_touch;
};

constexpr Variant kVariants[] = {
    {"baseline", false, false, false},
    {"tiled_coulomb", true, false, false},
    {"overlap", true, true, false},
    {"numa", true, true, true},
};

md::EngineConfig make_config(int threads) {
  md::EngineConfig cfg;
  cfg.n_threads = threads;
  cfg.chunks_per_thread = 4;
  cfg.assignment = sim::Assignment::WorkStealing;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 8.0;
  cfg.skin = 0.9;
  cfg.tiled_lj = true;  // PR-5 state; not part of this ablation
  return cfg;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_atoms = argc > 1 ? std::atoi(argv[1]) : 16384;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;
  const int warmup = argc > 4 ? std::atoi(argv[4]) : 10;
  if (n_atoms <= 0 || steps <= 0 || threads <= 0 || warmup < 0) {
    std::cerr << "usage: " << argv[0] << " [n_atoms] [steps] [threads] [warmup]\n";
    return 2;
  }

  std::cout << "raw_speed: " << n_atoms << "-atom shuffled LJ+Coulomb gas, "
            << steps << " measured steps (+" << warmup
            << " warmup, best of 4 segments), " << threads
            << " threads, work stealing\n\n";

  bench::JsonEmitter json("raw_speed");
  json.set_provider("native");
  json.metric("run", "n_atoms", n_atoms);
  json.metric("run", "steps", steps);
  json.metric("run", "warmup_steps", warmup);
  json.metric("run", "threads", threads);
  json.metric("run", "density", kDensity);
  json.metric("run", "charged_fraction", kChargedFraction);

  // Scalar single-threaded reference: same slot structure (accumulation-slot
  // serial chains make per-buffer FP order schedule-independent), every
  // raw-speed switch off.  All four variants must land on these exact bits.
  double ref_energy = 0.0;
  {
    md::EngineConfig cfg = make_config(threads);
    cfg.tiled_lj = false;
    cfg.tiled_coulomb = false;
    cfg.overlap_rebuild = false;
    cfg.first_touch = false;
    md::Engine engine(
        workloads::make_lj_coulomb_gas(n_atoms, kDensity, kTemperatureK,
                                       kChargedFraction, kSeed),
        cfg);
    engine.run_inline(warmup + steps);
    ref_energy = engine.total_energy();
    std::cout << "scalar inline reference energy: " << std::setprecision(17)
              << ref_energy << "\n\n";
  }

  std::cout << "| variant (cumulative) | s/step | speedup | bit-identical |\n"
            << "|---|---|---|---|\n";

  int failures = 0;
  double baseline_per_step = 0.0;
  int order = 0;
  for (const Variant& v : kVariants) {
    md::EngineConfig cfg = make_config(threads);
    cfg.tiled_coulomb = v.tiled_coulomb;
    cfg.overlap_rebuild = v.overlap_rebuild;
    cfg.first_touch = v.first_touch;
    md::Engine engine(
        workloads::make_lj_coulomb_gas(n_atoms, kDensity, kTemperatureK,
                                       kChargedFraction, kSeed),
        cfg);

    parallel::ThreadPoolConfig pc;
    pc.n_threads = threads;
    pc.queue_mode = parallel::QueueMode::WorkStealing;
    double per_step = 0.0;
    {
      parallel::FixedThreadPool pool(pc);
      engine.run_native(pool, warmup);
      // Host clocks drift (frequency scaling, background load), so time the
      // measured window in segments and keep the best one: min-of-K tracks
      // the machine's true speed where one long window averages the drift
      // in.  Every variant still advances warmup + steps total, so the
      // final energies compare at the same step count.
      const int n_segs = std::min(4, steps);
      per_step = 1e300;
      int done = 0;
      for (int s = 0; s < n_segs; ++s) {
        const int len = (steps - done) / (n_segs - s);
        const double t0 = wall_seconds();
        engine.run_native(pool, len);
        per_step = std::min(per_step, (wall_seconds() - t0) / len);
        done += len;
      }
      pool.shutdown();
    }
    if (baseline_per_step == 0.0) baseline_per_step = per_step;
    const double speedup = per_step > 0.0 ? baseline_per_step / per_step : 0.0;
    const bool match = bits_equal(engine.total_energy(), ref_energy);
    if (!match) {
      ++failures;
      std::cerr << "ENERGY MISMATCH: " << v.name << " "
                << std::setprecision(17) << engine.total_energy()
                << " != scalar reference " << ref_energy << "\n";
    }

    std::cout << "| " << v.name << " | " << std::setprecision(6) << per_step
              << " | " << std::setprecision(4) << speedup << "x | "
              << (match ? "yes" : "NO") << " |\n";
    const std::string group = std::string("variant_") + v.name;
    json.metric(group, "order", order++);
    json.metric(group, "seconds_per_step", per_step);
    json.metric(group, "speedup_vs_baseline", speedup);
    json.metric(group, "total_energy", engine.total_energy());
    json.metric(group, "energy_bits_match_scalar", match ? 1.0 : 0.0);
  }

  // --- PME spread/interpolate: scalar vs vectorized lane loops --------------
  {
    const int n_ions = std::min(n_atoms, 2048);
    md::MolecularSystem ions = workloads::make_ionic(n_ions, kSeed);
    std::vector<Vec3> pos(ions.positions().begin(), ions.positions().end());
    std::vector<double> q(static_cast<std::size_t>(ions.n_atoms()));
    for (int i = 0; i < ions.n_atoms(); ++i) q[static_cast<std::size_t>(i)] = ions.charge(i);
    const Vec3 box = ions.box().extent();

    md::ewald::EwaldParams params = md::ewald::suggest_params(box, ions.n_atoms());
    const int reps = std::max(1, 20000 / ions.n_atoms());
    double seconds[2] = {0.0, 0.0};
    md::ewald::EwaldResult results[2];
    for (int pass = 0; pass < 2; ++pass) {
      params.vectorized = pass == 1;
      md::ewald::PmeSolver pme(box, params);
      seconds[pass] = 1e300;  // best-of-reps, same drift logic as above
      for (int r = 0; r < reps; ++r) {
        const double t0 = wall_seconds();
        results[pass] = pme.compute(pos, q);
        seconds[pass] = std::min(seconds[pass], wall_seconds() - t0);
      }
    }
    bool match = bits_equal(results[0].energy, results[1].energy) &&
                 results[0].forces.size() == results[1].forces.size();
    for (std::size_t i = 0; match && i < results[0].forces.size(); ++i) {
      match = bits_equal(results[0].forces[i].x, results[1].forces[i].x) &&
              bits_equal(results[0].forces[i].y, results[1].forces[i].y) &&
              bits_equal(results[0].forces[i].z, results[1].forces[i].z);
    }
    if (!match) {
      ++failures;
      std::cerr << "PME MISMATCH: vectorized spread/interpolate diverged from scalar\n";
    }
    const double pme_speedup = seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;
    std::cout << "\nPME (" << n_ions << " ions, grid-side auto): scalar "
              << std::setprecision(6) << seconds[0] << " s, vectorized "
              << seconds[1] << " s -> " << std::setprecision(4) << pme_speedup
              << "x, bits " << (match ? "identical" : "DIVERGED") << "\n";
    json.metric("pme", "n_ions", n_ions);
    json.metric("pme", "scalar_seconds", seconds[0]);
    json.metric("pme", "vectorized_seconds", seconds[1]);
    json.metric("pme", "speedup", pme_speedup);
    json.metric("pme", "bits_match", match ? 1.0 : 0.0);
  }

  std::cout << "\nwrote " << json.write() << "\n";
  if (failures > 0) {
    std::cerr << failures << " bit-identity failure(s)\n";
    return 1;
  }
  return 0;
}
