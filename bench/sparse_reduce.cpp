// Sparse force reduction: skipping (slot, block) pairs no kernel touched.
//
// Phase 5 historically swept the full n_atoms x n_slots privatized-force
// matrix every step.  With touched-block tracking (ForceBuffers) the sweep
// visits only blocks a slot actually scattered into — a large cut when
// chunks are contiguous (work-stealing assignment) or the interactions are
// index-local (bonded chains).  The result is bit-identical either way;
// this bench measures the time saved, native and simulated.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "perf/scoped_timer.hpp"

namespace {

using namespace mwx;

md::EngineConfig ws_config(const md::EngineConfig& base, bool sparse) {
  md::EngineConfig cfg = base;
  cfg.n_threads = 4;
  cfg.chunks_per_thread = 4;  // 16 slots: a 16x dense sweep without sparsity
  cfg.assignment = sim::Assignment::WorkStealing;
  cfg.temporaries = md::TemporariesMode::InPlace;
  cfg.sparse_reduction = sparse;
  return cfg;
}

struct ReduceCost {
  double reduce_ms_per_step = 0.0;
  double total_ms_per_step = 0.0;
};

// Native: real threads, reduce-phase busy time from the exact event log.
ReduceCost run_native(const workloads::BenchmarkSpec& spec, bool sparse, int steps) {
  md::Engine engine(workloads::BenchmarkSpec(spec).system, ws_config(spec.engine, sparse));
  perf::EventLog log(4);
  engine.attach_event_log(&log);
  parallel::FixedThreadPool pool(
      {.n_threads = 4, .queue_mode = parallel::QueueMode::WorkStealing});
  engine.run_native(pool, 3);  // warmup (first step pays the neighbor build)
  const std::size_t skip = log.total_events();
  perf::StopWatch clock;
  engine.run_native(pool, steps);
  const double total_ms = clock.elapsed_seconds() * 1e3;

  double reduce_s = 0.0;
  std::size_t seen = 0;
  for (int w = 0; w < log.n_threads(); ++w) {
    for (const auto& e : log.events_of(w)) {
      if (seen++ < skip) continue;  // lanes are append-only; skip warmup records
      if (e.tag == md::kPhaseReduce) reduce_s += e.end - e.begin;
    }
  }
  return {reduce_s * 1e3 / steps, total_ms / steps};
}

// Simulated: the same comparison in modelled time on a 4-core i7-920.
ReduceCost run_simulated(const workloads::BenchmarkSpec& spec, bool sparse, int steps) {
  md::Engine engine(workloads::BenchmarkSpec(spec).system, ws_config(spec.engine, sparse));
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = 4;
  sim::Machine machine(mc);
  engine.run_simulated(machine, 3);
  const double t0 = machine.now_seconds();
  const std::size_t skip = machine.event_log().total_events();
  engine.run_simulated(machine, steps);
  const double total_ms = (machine.now_seconds() - t0) * 1e3;

  double reduce_s = 0.0;
  std::size_t seen = 0;
  const auto& log = machine.event_log();
  for (int w = 0; w < log.n_threads(); ++w) {
    for (const auto& e : log.events_of(w)) {
      if (seen++ < skip) continue;
      if (e.tag == md::kPhaseReduce) reduce_s += e.end - e.begin;
    }
  }
  return {reduce_s * 1e3 / steps, total_ms / steps};
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::max(1, std::atoi(argv[1])) : 25;
  bench::JsonEmitter json("sparse_reduce");

  std::cout << "Sparse vs dense privatized-force reduction\n"
               "(4 workers, chunks/thread=4 -> 16 accumulation slots, "
               "work-stealing assignment)\n\n";

  Table out({"Workload", "Backend", "Reduce dense", "Reduce sparse", "Speedup",
             "Total dense", "Total sparse"});
  auto make_spec = [](const std::string& name) -> workloads::BenchmarkSpec {
    if (name == "chain-2000") {
      // Index-local bonded interactions: the best case for block tracking.
      workloads::BenchmarkSpec s{name, workloads::make_chain(2000, 11),
                                 md::EngineConfig{}, "bonded"};
      s.engine.dt_fs = 0.5;
      return s;
    }
    return workloads::make_benchmark(name, 7);
  };
  for (const auto& name : {std::string("salt"), std::string("chain-2000")}) {
    const workloads::BenchmarkSpec spec = make_spec(name);

    const auto nat_dense = run_native(spec, false, steps);
    const auto nat_sparse = run_native(spec, true, steps);
    out.row(name, "native", Table::fixed(nat_dense.reduce_ms_per_step, 3),
            Table::fixed(nat_sparse.reduce_ms_per_step, 3),
            Table::fixed(nat_dense.reduce_ms_per_step /
                             std::max(1e-9, nat_sparse.reduce_ms_per_step),
                         2),
            Table::fixed(nat_dense.total_ms_per_step, 3),
            Table::fixed(nat_sparse.total_ms_per_step, 3));
    json.metric("native_reduce_ms_dense", name, nat_dense.reduce_ms_per_step);
    json.metric("native_reduce_ms_sparse", name, nat_sparse.reduce_ms_per_step);

    const auto sim_dense = run_simulated(spec, false, steps);
    const auto sim_sparse = run_simulated(spec, true, steps);
    out.row(name, "simulated", Table::fixed(sim_dense.reduce_ms_per_step, 3),
            Table::fixed(sim_sparse.reduce_ms_per_step, 3),
            Table::fixed(sim_dense.reduce_ms_per_step /
                             std::max(1e-9, sim_sparse.reduce_ms_per_step),
                         2),
            Table::fixed(sim_dense.total_ms_per_step, 3),
            Table::fixed(sim_sparse.total_ms_per_step, 3));
    json.metric("simulated_reduce_ms_dense", name, sim_dense.reduce_ms_per_step);
    json.metric("simulated_reduce_ms_sparse", name, sim_sparse.reduce_ms_per_step);
  }
  out.print(std::cout);

  std::cout << "\nuntouched entries are exactly +0.0, so the sparse sweep is\n"
               "bit-identical to the dense one (EngineTest.SparseReductionMatchesDenseBitwise).\n";
  std::cout << "wrote " << json.write() << "\n";
  return 0;
}
