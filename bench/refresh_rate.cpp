// Context check from Sections I/VII: "On a quad-core system, MW can now
// sustain refresh rates as high as 32 updates per second on some 1000 atom
// benchmarks" — and the goal that motivated the work: smooth display of
// ~1000 atoms where the serial engine managed only a few hundred.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 60;

  std::cout << "Refresh rate on a quad-core (simulated Core i7), 1 vs 4 threads\n"
            << "paper reference: up to 32 updates/s on some 1000-atom benchmarks\n\n";

  Table table({"Benchmark", "Updates/s (1 thread)", "Updates/s (4 threads)", "Best >= 32?"});
  for (const auto& name : workloads::benchmark_names()) {
    bench::RunOptions opt;
    opt.steps = steps;
    opt.n_threads = 1;
    const auto serial = bench::run_simulated(name, opt);
    opt.n_threads = 4;
    const auto quad = bench::run_simulated(name, opt);
    // A display update happens every simulation step (the engine drives the
    // GUI); per-frame render cost is outside the engine and excluded here.
    table.row(name, Table::fixed(serial.updates_per_second, 1),
              Table::fixed(quad.updates_per_second, 1),
              quad.updates_per_second >= 32.0 ? "yes" : "no");
  }
  table.print(std::cout, "Simulation update rates");
  return 0;
}
