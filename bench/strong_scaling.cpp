// Strong scaling beyond the paper's 4 cores: the Al-1000-class LJ workload,
// scaled to 4000 atoms, on the 32-core Xeon X7560 model from 1 to 32
// threads.  The paper stops at Table III's fixed-topology comparison; this
// bench answers the implied question — where does the irregular workload
// stop scaling on the big machine, and what resource pins it there?
//
// A second, workload-axis section holds thread count at the full machine and
// grows the system through the 1M-atom bulk crystal (the PR 9 generators):
// per-atom cost and the home-controller queue share show whether the
// bandwidth wall moves when the working set dwarfs every cache level.
//
// Usage: strong_scaling [steps=12] [max_atoms=1000000]
// Emits BENCH_strong_scaling.json.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace {

struct Point {
  double seconds_per_step = 0.0;
  double dram_mb_per_step = 0.0;
  double queue_ms = 0.0;
};

Point run_point(const mwx::topo::MachineSpec& spec, int n_atoms, int threads, int warmup,
                int steps) {
  using namespace mwx;
  auto sys = workloads::make_bulk_crystal(n_atoms, 120.0, 42);
  md::EngineConfig cfg;
  cfg.n_threads = threads;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 7.5;
  cfg.skin = 0.8;
  md::Engine engine(std::move(sys), cfg);

  sim::MachineConfig mc;
  mc.spec = spec;
  mc.n_threads = threads;
  // One thread per core, filling sockets in order (the best Table III
  // policy extended).
  for (int i = 0; i < threads; ++i) {
    mc.pin_masks.push_back(topo::CpuSet::of({(i % spec.n_cores()) * spec.smt_per_core}));
  }
  sim::Machine machine(mc);
  engine.run_simulated(machine, warmup);
  machine.reset_counters();
  const double t0 = machine.now_seconds();
  engine.run_simulated(machine, steps);

  Point p;
  p.seconds_per_step = (machine.now_seconds() - t0) / steps;
  p.dram_mb_per_step = machine.counters().dram_bytes(64) / 1e6 / steps;
  p.queue_ms = machine.counters().dram_queue_cycles / (spec.ghz * 1e9) * 1e3;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int max_atoms = argc > 2 ? std::atoi(argv[2]) : 1000000;
  const auto spec = topo::xeon_x7560_4s();

  bench::JsonEmitter json("strong_scaling");
  json.set_provider("sim");
  json.metric("env", "hardware_concurrency",
              static_cast<double>(std::thread::hardware_concurrency()));
  json.metric("env", "steps", steps);
  json.metric("env", "max_atoms", max_atoms);
  json.note("env", "machine", spec.name);

  std::cout << "Strong scaling: 4000-atom LJ solid on the simulated Xeon X7560\n"
            << "(one pinned thread per core, heap home on node 0)\n\n";

  Table table({"Threads", "ms/step", "Speedup", "Efficiency %", "DRAM MB/step",
               "Home-ctrl queue ms"});
  double t1 = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    const Point p = run_point(spec, 4000, threads, 3, steps);
    if (threads == 1) t1 = p.seconds_per_step;
    table.row(threads, Table::fixed(p.seconds_per_step * 1e3, 3),
              Table::fixed(t1 / p.seconds_per_step, 2),
              Table::fixed(100.0 * t1 / p.seconds_per_step / threads, 1),
              Table::fixed(p.dram_mb_per_step, 2), Table::fixed(p.queue_ms, 1));
    const std::string g = "threads.t" + std::to_string(threads);
    json.metric(g, "ms_per_step", p.seconds_per_step * 1e3);
    json.metric(g, "speedup", t1 / p.seconds_per_step);
    json.metric(g, "efficiency_pct", 100.0 * t1 / p.seconds_per_step / threads);
    json.metric(g, "dram_mb_per_step", p.dram_mb_per_step);
    json.metric(g, "home_queue_ms", p.queue_ms);
  }
  table.print(std::cout);
  std::cout << "\n(queueing at the home memory controller grows as threads scale — the\n"
               "single-home-heap bottleneck that caps the irregular workload)\n";

  // --- Workload axis: hold the machine, grow the crystal to 1M atoms --------
  // Fewer steps: the event-driven simulator prices every access, and the
  // 1M-atom point issues ~half a billion of them per step.
  const int wsteps = std::max(1, steps / 6);
  std::cout << "\nWorkload axis: bulk fcc argon at 32 pinned threads, " << wsteps
            << " measured step(s)\n\n";
  Table wtable({"Atoms", "ms/step", "us/atom/step", "DRAM MB/step", "Home-ctrl queue ms"});
  for (int n : {4000, 100000, 1000000}) {
    if (n > max_atoms) {
      std::cout << "(skipping n=" << n << " > max_atoms=" << max_atoms << ")\n";
      continue;
    }
    const Point p = run_point(spec, n, 32, 1, wsteps);
    wtable.row(n, Table::fixed(p.seconds_per_step * 1e3, 3),
               Table::fixed(p.seconds_per_step * 1e6 / n, 4),
               Table::fixed(p.dram_mb_per_step, 2), Table::fixed(p.queue_ms, 1));
    const std::string g = "atoms.n" + std::to_string(n);
    json.metric(g, "ms_per_step", p.seconds_per_step * 1e3);
    json.metric(g, "us_per_atom_step", p.seconds_per_step * 1e6 / n);
    json.metric(g, "dram_mb_per_step", p.dram_mb_per_step);
    json.metric(g, "home_queue_ms", p.queue_ms);
  }
  wtable.print(std::cout);
  std::cout << "\nwrote " << json.write() << "\n";
  return 0;
}
