// Strong scaling beyond the paper's 4 cores: the Al-1000-class LJ workload,
// scaled to 4000 atoms, on the 32-core Xeon X7560 model from 1 to 32
// threads.  The paper stops at Table III's fixed-topology comparison; this
// bench answers the implied question — where does the irregular workload
// stop scaling on the big machine, and what resource pins it there?
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const auto spec = topo::xeon_x7560_4s();

  std::cout << "Strong scaling: 4000-atom LJ solid on the simulated Xeon X7560\n"
            << "(one pinned thread per core, heap home on node 0)\n\n";

  Table table({"Threads", "ms/step", "Speedup", "Efficiency %", "DRAM MB/step",
               "Home-ctrl queue ms"});
  double t1 = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    auto sys = workloads::make_lj_gas(4000, 0.055, 300.0, 5);
    md::EngineConfig cfg;
    cfg.n_threads = threads;
    cfg.dt_fs = 1.0;
    cfg.cutoff = 7.5;
    cfg.skin = 0.8;
    md::Engine engine(std::move(sys), cfg);

    sim::MachineConfig mc;
    mc.spec = spec;
    mc.n_threads = threads;
    // One thread per core, filling sockets in order (the best Table III
    // policy extended).
    for (int i = 0; i < threads; ++i) {
      mc.pin_masks.push_back(topo::CpuSet::of({i * spec.smt_per_core}));
    }
    sim::Machine machine(mc);
    engine.run_simulated(machine, 3);  // warmup
    machine.reset_counters();
    const double t0 = machine.now_seconds();
    engine.run_simulated(machine, steps);
    const double per_step = (machine.now_seconds() - t0) / steps;
    if (threads == 1) t1 = per_step;
    table.row(threads, Table::fixed(per_step * 1e3, 3), Table::fixed(t1 / per_step, 2),
              Table::fixed(100.0 * t1 / per_step / threads, 1),
              Table::fixed(machine.counters().dram_bytes(64) / 1e6 / steps, 2),
              Table::fixed(machine.counters().dram_queue_cycles / (spec.ghz * 1e9) * 1e3, 1));
  }
  table.print(std::cout);
  std::cout << "\n(queueing at the home memory controller grows as threads scale — the\n"
               "single-home-heap bottleneck that caps the irregular workload)\n";
  return 0;
}
