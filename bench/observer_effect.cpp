// Section IV-A reproduction: observer effects of the measurement tools.
//
//  (a) JaMON-style monitors: "synchronized updates to the performance
//      monitors were serializing the overall performance of MW".
//  (b) VisualVM per-method CPU instrumentation: "causes the Molecular
//      Workbench simulation to run at roughly one quarter its normal
//      speed", with tool/TCP threads competing for cores.
//
// We run salt (the well-scaling benchmark, where serialization is most
// visible) on 4 simulated cores with: no instrumentation, JaMON monitors at
// increasing update frequency, a sharded (contention-free) monitor design,
// and VisualVM-style per-call instrumentation with an agent thread.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 40;

  std::cout << "Observer effect (Section IV-A), salt on 4 simulated cores\n"
            << "paper reference: synchronized monitors serialize the app; per-method\n"
            << "instrumentation runs it at ~1/4 speed\n\n";

  auto run = [&](int threads, int monitor_updates, int instr_calls, bool agent,
                 int chunks_per_thread) {
    bench::RunOptions opt;
    opt.n_threads = threads;
    opt.steps = steps;
    opt.chunks_per_thread = chunks_per_thread;
    opt.monitor_updates_per_task = monitor_updates;
    opt.instr_calls_per_task = instr_calls;
    opt.instrumentation_agent = agent;
    return bench::run_simulated("salt", opt);
  };

  // Baselines.
  const auto serial = run(1, 0, 0, false, 1);
  const auto plain = run(4, 0, 0, false, 1);
  const double base_speedup = serial.seconds / plain.seconds;

  Table table({"Configuration", "ms/step", "Speedup vs 1-thread", "Slowdown vs plain",
               "Monitor wait ms"});
  auto add = [&](const std::string& name, const bench::RunResult& r) {
    table.row(name, Table::fixed(r.seconds_per_step * 1e3, 3),
              Table::fixed(serial.seconds / r.seconds, 2),
              Table::fixed(r.seconds / plain.seconds, 2),
              Table::fixed(r.counters.monitor_wait_cycles /
                               (topo::core_i7_920().ghz * 1e9) * 1e3,
                           2));
  };
  add("uninstrumented", plain);
  // JaMON monitors wrap methods: the per-task update count models how deep
  // in the call tree the monitors sit (phase level -> per-atom level).
  add("JaMON on phase methods (5/task)", run(4, 5, 0, false, 1));
  add("JaMON on per-chunk methods (40/task)", run(4, 40, 0, false, 4));
  add("JaMON on per-atom methods (150/task)", run(4, 150, 0, false, 4));
  add("JaMON on inner-loop methods (500/task)", run(4, 500, 0, false, 4));
  add("sharded monitor, inner-loop depth", run(4, 0, 0, false, 4));  // no global lock
  add("VisualVM-style instrumentation", run(4, 0, 15000, true, 1));

  table.print(std::cout);
  std::cout << "\nuninstrumented 4-thread speedup: " << Table::fixed(base_speedup, 2)
            << "x; a JaMON configuration whose speedup approaches 1x has been "
               "serialized by its own measurement.\n";
  return 0;
}
