// Section IV-C reproduction: identifying what code each thread is executing.
//
// "Using VisualVM, we could see no way to determine, for a given moment in
// time, what code a particular thread was executing ... A simple way to see
// what method a thread was executing at a given moment for all threads would
// be tremendously helpful."
//
// We run Al-1000 on 4 simulated cores, then print (a) the exact all-threads
// code timeline from the event log — the wished-for view — and (b) the same
// window as a 10 ms sample-and-hold profiler would have displayed, with the
// disagreement fraction quantifying how misleading the 2010 view was.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "md/engine.hpp"
#include "perf/timeline.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mwx;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 40;

  workloads::BenchmarkSpec spec = workloads::make_benchmark("Al-1000", 7);
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 4;
  md::Engine engine(std::move(spec.system), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 4;
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);

  const perf::EventLog& log = machine.event_log();
  const auto [t0, t1] = log.span();
  const perf::TimelineView view({{md::kPhasePredictor, 'P'},
                                 {md::kPhaseCheck, 'C'},
                                 {md::kPhaseForces, 'F'},
                                 {md::kPhaseReduce, 'R'},
                                 {md::kPhaseCorrector, 'V'}});

  std::cout << "What code is each thread executing? (Section IV-C), Al-1000, 4 cores\n"
            << "P=predictor C=check F=forces R=reduce V=corrector .=idle\n\n";

  // Zoom on a few steps in the middle of the run.
  const double mid = 0.5 * (t0 + t1);
  const double window = (t1 - t0) * 6.0 / steps;  // about six steps wide
  std::cout << "Exact view (" << Table::fixed(window * 1e3, 1) << " ms window):\n"
            << view.render(log, mid, mid + window, 100) << '\n';

  for (double period : {5e-3, 1e-3}) {
    std::cout << "Sample-and-hold view at " << Table::fixed(period * 1e3, 0) << " ms:\n"
              << view.render_sampled(log, mid, mid + window, 100, period);
    std::cout << "  -> disagrees with truth in "
              << Table::fixed(
                     view.sampled_disagreement(log, mid, mid + window, 100, period) * 100.0,
                     1)
              << "% of cells\n\n";
  }

  // The instantaneous query the paper asked for.
  Table table({"Time (ms)", "T0", "T1", "T2", "T3"});
  auto name_of = [](int tag) {
    switch (tag) {
      case md::kPhasePredictor: return "predictor";
      case md::kPhaseCheck: return "check";
      case md::kPhaseForces: return "forces";
      case md::kPhaseReduce: return "reduce";
      case md::kPhaseCorrector: return "corrector";
      default: return "idle";
    }
  };
  for (int k = 0; k < 6; ++k) {
    const double t = mid + k * window / 6.0;
    const auto tags = perf::TimelineView::tags_at(log, t);
    table.row(Table::fixed(t * 1e3, 3), name_of(tags[0]), name_of(tags[1]), name_of(tags[2]),
              name_of(tags[3]));
  }
  table.print(std::cout, "\"What method is thread X in right now?\"");
  return 0;
}
