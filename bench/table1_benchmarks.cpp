// Table I reproduction: representative benchmark characteristics.
#include <iostream>

#include "common/table.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace mwx;
  Table table({"Benchmark", "# of Atoms", "# of Charged Atoms", "# of Bonds",
               "Dominant Computation Type"});
  for (const auto& name : workloads::benchmark_names()) {
    const auto spec = workloads::make_benchmark(name);
    const auto row = workloads::table1_row(spec);
    table.row(row.name, row.n_atoms, row.n_charged, row.n_bonds, row.dominant);
  }
  table.print(std::cout, "Table I — Representative Benchmark Characteristics");
  std::cout << "\npaper reference: nanocar 989/0/2277 Bonds; salt 800/800/0 Ionic; "
               "Al-1000 1000/0/0 Lennard-Jones\n";
  return 0;
}
