// Future-work ablation: direct O(N²) Coulomb (the paper's implementation)
// versus smooth particle-mesh Ewald O(N log N) (the paper's proposed future
// work), measured natively on the host as the ion count scales.
//
// The expected shape: direct wins below a few hundred ions (MW's regime —
// which is why the authors deferred PME), PME wins beyond the crossover and
// the gap widens as N grows.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "md/ewald/pme.hpp"

namespace {

double seconds_of(const std::function<void()>& fn, int repeats) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mwx;
  using namespace mwx::md::ewald;
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 16384;

  std::cout << "Direct O(N^2) Coulomb vs smooth PME O(N log N) — native timings\n\n";

  Table table({"Ions", "Direct ms", "PME ms", "PME/Direct", "Winner"});
  Rng rng(21);
  for (int n = 128; n <= max_n; n *= 2) {
    // Neutral random ionic gas at roughly molten-salt density.
    const double side = std::cbrt(n / 0.02);
    const Vec3 box{side, side, side};
    std::vector<Vec3> pos;
    std::vector<double> q;
    pos.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos.push_back(rng.point_in_box({0, 0, 0}, box));
      q.push_back(i % 2 == 0 ? 1.0 : -1.0);
    }

    const EwaldParams params = suggest_params(box, n);
    PmeSolver pme(box, params);
    const int repeats = n <= 1024 ? 10 : (n <= 4096 ? 3 : 1);
    const double t_direct =
        seconds_of([&] { direct_coulomb_minimum_image(box, pos, q); }, repeats);
    const double t_pme = seconds_of([&] { pme.compute(pos, q); }, repeats);
    table.row(n, Table::fixed(t_direct * 1e3, 2), Table::fixed(t_pme * 1e3, 2),
              Table::fixed(t_pme / t_direct, 2), t_pme < t_direct ? "PME" : "direct");
  }
  table.print(std::cout);
  std::cout << "\n(MW's benchmarks have <= 800 charged atoms — near or below the\n"
               "crossover, consistent with the paper deferring PME as future work)\n";
  return 0;
}
