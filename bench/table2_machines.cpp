// Table II reproduction: test machines and their memory hierarchies, plus
// the hwloc-style resource tree the paper wished its tools had shown
// (Section V-C).
#include <iostream>

#include "common/table.hpp"
#include "topo/topology.hpp"

int main() {
  using namespace mwx;
  Table table({"Processor Type", "Procs x Cores", "L1 Data Cache", "L2 Cache", "L3 Cache",
               "Memory"});
  for (const auto& spec : topo::table2_machines()) {
    const auto* l1 = spec.find_level(1);
    const auto* l2 = spec.find_level(2);
    const auto* l3 = spec.find_level(3);
    const int l3_instances = spec.n_pus() / l3->pus_per_instance;
    const int cores_sharing_l3 = l3->pus_per_instance / spec.smt_per_core;
    table.row(spec.processor,
              std::to_string(spec.packages) + " x " + std::to_string(spec.cores_per_package),
              std::to_string(l1->size_bytes / 1024) + " kB",
              std::to_string(l2->size_bytes / 1024) + " kB",
              std::to_string(l3_instances) + " x (" +
                  std::to_string(l3->size_bytes / (1024 * 1024)) + " MB shared/" +
                  std::to_string(cores_sharing_l3) + " cores)",
              std::to_string(spec.memory.total_bytes / (1024ll * 1024 * 1024)) + " GB");
  }
  table.print(std::cout, "Table II — Test Machines and Their Memory Hierarchies");

  std::cout << "\nResource trees (the topology insight Section V-C calls for):\n\n";
  for (const auto& spec : topo::table2_machines()) {
    topo::Topology topo(spec);
    std::cout << topo.render() << '\n';
  }
  return 0;
}
