#include <gtest/gtest.h>

#include "perf/event_log.hpp"
#include "perf/timeline.hpp"

namespace mwx::perf {
namespace {

// Two threads, two phases: thread 0 runs A [0,1) then B [1,2);
// thread 1 runs A [0,0.5) then idles then B [1.5,2).
EventLog make_log() {
  EventLog log(2);
  log.record(0, 1, 0.0, 1.0);
  log.record(0, 2, 1.0, 2.0);
  log.record(1, 1, 0.0, 0.5);
  log.record(1, 2, 1.5, 2.0);
  return log;
}

TEST(TimelineTest, TagsAtInstant) {
  const EventLog log = make_log();
  const auto at_quarter = TimelineView::tags_at(log, 0.25);
  EXPECT_EQ(at_quarter, (std::vector<int>{1, 1}));
  const auto at_three_quarters = TimelineView::tags_at(log, 0.75);
  EXPECT_EQ(at_three_quarters, (std::vector<int>{1, -1}));  // thread 1 idle
  const auto at_end = TimelineView::tags_at(log, 1.75);
  EXPECT_EQ(at_end, (std::vector<int>{2, 2}));
}

TEST(TimelineTest, RenderShowsDominantTagPerBucket) {
  const EventLog log = make_log();
  const TimelineView view({{1, 'A'}, {2, 'B'}});
  const std::string s = view.render(log, 0.0, 2.0, 4);
  // Thread 0: A A B B; thread 1: A . . B.
  EXPECT_NE(s.find("|AABB|"), std::string::npos);
  EXPECT_NE(s.find("|A..B|"), std::string::npos);
}

TEST(TimelineTest, UnknownTagRendersQuestionMark) {
  EventLog log(1);
  log.record(0, 99, 0.0, 1.0);
  const TimelineView view({{1, 'A'}});
  EXPECT_NE(view.render(log, 0.0, 1.0, 2).find("??"), std::string::npos);
}

TEST(TimelineTest, SampledViewHoldsState) {
  // Thread busy only [0, 0.1) but sampled at t=0 with period 1.0: the whole
  // first period displays busy — the Section IV-B display artifact.
  EventLog log(1);
  log.record(0, 1, 0.0, 0.1);
  const TimelineView view({{1, 'A'}});
  const std::string s = view.render_sampled(log, 0.0, 1.0, 10, 1.0);
  EXPECT_NE(s.find("|AAAAAAAAAA|"), std::string::npos);
  // The exact view shows mostly idle.
  const std::string exact = view.render(log, 0.0, 1.0, 10);
  EXPECT_NE(exact.find("A........."), std::string::npos);
}

TEST(TimelineTest, DisagreementShrinksWithPeriod) {
  // Alternating short tasks: coarse sampling disagrees a lot, fine little.
  EventLog log(1);
  for (int k = 0; k < 100; ++k) {
    log.record(0, 1 + (k % 2), k * 0.01, k * 0.01 + 0.006);
  }
  const TimelineView view({{1, 'A'}, {2, 'B'}});
  // Buckets aligned with the 10 ms task cadence so partial-cell rendering
  // does not dominate the comparison.
  const double coarse = view.sampled_disagreement(log, 0.0, 1.0, 100, 0.25);
  const double fine = view.sampled_disagreement(log, 0.0, 1.0, 100, 0.001);
  EXPECT_GT(coarse, 0.3);
  EXPECT_LT(fine, 0.1);
  EXPECT_LT(fine, coarse);
}

TEST(TimelineTest, ValidatesWindow) {
  const EventLog log = make_log();
  const TimelineView view({});
  EXPECT_THROW(view.render(log, 1.0, 1.0, 10), ContractError);
  EXPECT_THROW(view.render(log, 0.0, 1.0, 0), ContractError);
  EXPECT_THROW(view.render_sampled(log, 0.0, 1.0, 10, 0.0), ContractError);
}

}  // namespace
}  // namespace mwx::perf
