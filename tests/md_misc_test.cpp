// Remaining MD-substrate coverage: LJ parameter tables, force buffers,
// engine idempotence and stride-decomposition coverage properties.
#include <gtest/gtest.h>

#include <set>

#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/force_buffers.hpp"
#include "md/lj_table.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

TEST(LjTableTest, ParametersAndShift) {
  AtomTypeTable types;
  types.add({"A", 1.0, units::ev(0.01), 3.0});
  types.add({"B", 1.0, units::ev(0.04), 4.0});
  MolecularSystem sys(types, {{0, 0, 0}, {10, 10, 10}});
  const double cutoff = 9.0;
  LjTable table(sys, cutoff);
  EXPECT_DOUBLE_EQ(table.cutoff2(), 81.0);
  EXPECT_NEAR(table.epsilon(0, 1), units::ev(0.02), 1e-15);  // sqrt mixing
  EXPECT_DOUBLE_EQ(table.sigma2(0, 1), 3.5 * 3.5);
  // The shift equals V(rc): adding it back makes the potential zero at rc.
  const double sr2 = 3.5 * 3.5 / 81.0;
  const double sr6 = sr2 * sr2 * sr2;
  EXPECT_NEAR(table.shift(0, 1), 4.0 * units::ev(0.02) * (sr6 * sr6 - sr6), 1e-18);
  // Symmetry.
  EXPECT_DOUBLE_EQ(table.epsilon(0, 1), table.epsilon(1, 0));
  EXPECT_DOUBLE_EQ(table.shift(0, 1), table.shift(1, 0));
}

TEST(ForceBuffersTest, AccumulateDrainZero) {
  ForceBuffers buf(3, 5);
  EXPECT_EQ(buf.n_workers(), 3);
  EXPECT_EQ(buf.n_atoms(), 5);
  buf.force(0, 2) += Vec3{1, 0, 0};
  buf.force(2, 2) += Vec3{0, 2, 0};
  buf.add_pe(0, 1.5);
  buf.add_pe(1, 2.5);
  buf.add_ke(2, 4.0);
  EXPECT_DOUBLE_EQ(buf.drain_pe(), 4.0);
  EXPECT_DOUBLE_EQ(buf.drain_pe(), 0.0);  // drained
  EXPECT_DOUBLE_EQ(buf.drain_ke(), 4.0);
  buf.zero_forces();
  EXPECT_EQ(buf.force(0, 2), Vec3(0, 0, 0));
  EXPECT_EQ(buf.force(2, 2), Vec3(0, 0, 0));
}

TEST(ForceBuffersTest, Validation) {
  EXPECT_THROW(ForceBuffers(0, 5), ContractError);
  EXPECT_THROW(ForceBuffers(2, 0), ContractError);
}

TEST(EngineMiscTest, ComputeForcesOnlyIsIdempotent) {
  auto sys = workloads::make_lj_gas(80, 0.012, 150.0, 4);
  EngineConfig cfg;
  cfg.n_threads = 2;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(sys), cfg);
  eng.compute_forces_only();
  const double pe1 = eng.potential_energy();
  const auto acc1 = eng.system().accelerations();
  eng.compute_forces_only();
  EXPECT_EQ(eng.potential_energy(), pe1);
  for (int i = 0; i < eng.system().n_atoms(); ++i) {
    EXPECT_EQ(eng.system().accelerations()[static_cast<std::size_t>(i)],
              acc1[static_cast<std::size_t>(i)]);
  }
}

TEST(EngineMiscTest, StepsAndRebuildCountersAdvance) {
  auto sys = workloads::make_lj_gas(60, 0.012, 250.0, 4);
  EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(sys), cfg);
  EXPECT_EQ(eng.steps_done(), 0);
  eng.run_inline(5);
  EXPECT_EQ(eng.steps_done(), 5);
  EXPECT_GE(eng.rebuild_count(), 1);
}

// Cyclic (strided) decomposition property: across any thread/chunk split,
// every movable atom receives exactly the same total force as the serial
// reference — i.e. the strided chunks tile the triangular domains exactly.
class StrideCoverage : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StrideCoverage, ForcesIndependentOfDecomposition) {
  const auto [threads, chunks] = GetParam();
  auto make = [&](int t, int c) {
    auto sys = workloads::make_salt(5);  // exercises LJ + Coulomb together
    EngineConfig cfg;
    cfg.n_threads = t;
    cfg.chunks_per_thread = c;
    cfg.cutoff = 7.0;
    cfg.skin = 0.9;
    cfg.temporaries = TemporariesMode::InPlace;
    return Engine(std::move(sys.system), cfg);
  };
  Engine reference = make(1, 1);
  reference.compute_forces_only();
  Engine split = make(threads, chunks);
  split.compute_forces_only();
  EXPECT_NEAR(units::to_ev(reference.potential_energy()),
              units::to_ev(split.potential_energy()), 1e-9);
  for (int i = 0; i < reference.system().n_atoms(); ++i) {
    const Vec3 d = reference.system().accelerations()[static_cast<std::size_t>(i)] -
                   split.system().accelerations()[static_cast<std::size_t>(i)];
    EXPECT_LT(d.norm(), 1e-12) << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Decompositions, StrideCoverage,
                         ::testing::Values(std::pair{2, 1}, std::pair{3, 1},
                                           std::pair{4, 2}, std::pair{7, 3},
                                           std::pair{16, 1}));

}  // namespace
}  // namespace mwx::md
