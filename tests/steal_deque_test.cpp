// Chase–Lev deque: owner LIFO / thief FIFO semantics, ring growth, and an
// exactly-once guarantee under concurrent owner pops and multi-thief steals.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/steal_deque.hpp"

namespace mwx::parallel {
namespace {

TEST(StealDequeTest, EmptyPopAndStealReturnNothing) {
  StealDeque d;
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(StealDequeTest, OwnerPopsLifo) {
  StealDeque d;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) d.push([&order, i] { order.push_back(i); });
  EXPECT_EQ(d.size(), 4u);
  while (auto t = d.pop()) (*t)();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(StealDequeTest, ThiefStealsFifo) {
  StealDeque d;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) d.push([&order, i] { order.push_back(i); });
  while (auto t = d.steal()) (*t)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(StealDequeTest, GrowthPreservesEveryTask) {
  // Start at the minimum ring so pushes force several doublings.
  StealDeque d(2);
  constexpr int kN = 1000;
  std::vector<int> hits(kN, 0);
  for (int i = 0; i < kN; ++i) d.push([&hits, i] { ++hits[static_cast<std::size_t>(i)]; });
  int executed = 0;
  while (auto t = d.pop()) {
    (*t)();
    ++executed;
  }
  EXPECT_EQ(executed, kN);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << i;
}

TEST(StealDequeTest, DestructorFreesUnexecutedTasks) {
  // Leak-checked implicitly (ASan builds); here it must simply not crash.
  auto d = std::make_unique<StealDeque>(4);
  for (int i = 0; i < 100; ++i) d->push([] {});
  d.reset();
}

TEST(StealDequeTest, ConcurrentStealsRunEveryTaskExactlyOnce) {
  // The core safety property: with the owner pushing/popping the bottom end
  // while several thieves hammer the top end, every task runs exactly once —
  // none lost, none duplicated — across ring growth and the one-element race.
  constexpr int kTasks = 20000;
  constexpr int kThieves = 3;
  StealDeque d(2);
  std::vector<std::atomic<int>> runs(kTasks);
  std::atomic<int> executed{0};

  auto run = [&](std::optional<Task> t) {
    if (!t) return false;
    (*t)();
    executed.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  std::vector<std::thread> thieves;
  for (int k = 0; k < kThieves; ++k) {
    thieves.emplace_back([&] {
      while (executed.load(std::memory_order_relaxed) < kTasks) {
        if (!run(d.steal())) std::this_thread::yield();
      }
    });
  }

  // Owner: interleave pushes with occasional pops, then drain.
  for (int i = 0; i < kTasks; ++i) {
    d.push([&runs, i] { runs[static_cast<std::size_t>(i)].fetch_add(1); });
    if (i % 3 == 0) run(d.pop());
  }
  while (executed.load(std::memory_order_relaxed) < kTasks) {
    if (!run(d.pop())) std::this_thread::yield();
  }
  for (auto& t : thieves) t.join();

  EXPECT_EQ(executed.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

}  // namespace
}  // namespace mwx::parallel
