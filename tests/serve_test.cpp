// mwx::serve — scene cache, batch scheduler, admission control, fair share.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace mwx::serve {
namespace {

std::string small_scene(std::uint64_t seed = 42) {
  return scene_text(workloads::make_lj_gas(48, 0.005, 300.0, seed));
}

SchedulerConfig small_sched(int threads_per_pool, int max_drivers) {
  SchedulerConfig sc;
  sc.threads_per_pool = threads_per_pool;
  sc.max_drivers = max_drivers;
  return sc;
}

TEST(SceneCacheTest, HashIsStableAndContentSensitive) {
  const std::string a = small_scene(1);
  const std::string b = small_scene(2);
  EXPECT_EQ(SceneCache::content_hash(a), SceneCache::content_hash(a));
  EXPECT_NE(SceneCache::content_hash(a), SceneCache::content_hash(b));
  EXPECT_NE(SceneCache::content_hash(""), SceneCache::content_hash(" "));
}

TEST(SceneCacheTest, DeduplicatesIdenticalText) {
  SceneCache cache(8);
  const std::string text = small_scene();
  const auto first = cache.load(text);
  const auto second = cache.load(text);
  EXPECT_EQ(first.get(), second.get());  // one parse, shared result
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SceneCacheTest, DistinctScenesGetDistinctEntries) {
  SceneCache cache(8);
  const auto a = cache.load(small_scene(1));
  const auto b = cache.load(small_scene(2));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SceneCacheTest, EvictsOldestTouchedAtCapacity) {
  SceneCache cache(2);
  const std::string s1 = small_scene(1), s2 = small_scene(2), s3 = small_scene(3);
  cache.load(s1);
  cache.load(s2);
  cache.load(s1);  // touch s1 so s2 is the eviction victim
  cache.load(s3);
  EXPECT_EQ(cache.size(), 2u);
  cache.load(s1);  // still cached
  EXPECT_EQ(cache.hits(), 2);
  cache.load(s2);  // evicted → reparse
  EXPECT_EQ(cache.misses(), 4);
}

TEST(SceneCacheTest, MalformedSceneThrows) {
  SceneCache cache(4);
  EXPECT_THROW(cache.load("definitely not a scene"), ContractError);
}

TEST(SceneCacheTest, RacerBeatUsCountsAsHit) {
  // Two concurrent first loads of the same text: the loser of the insert
  // race must count a *hit* (the cache resolved its request), not a miss —
  // the pre-fix code charged the miss before re-checking under the lock and
  // under-reported hit rate.  The parse hook runs in the loser's race
  // window, where we let a second load win the insert.
  SceneCache cache(8);
  const std::string text = small_scene();
  std::atomic<bool> raced{false};
  cache.set_parse_hook([&] {
    if (raced.exchange(true)) return;  // the inner load skips the hook body
    cache.load(text);                  // racer: parses and inserts first
  });
  const auto outer = cache.load(text);
  const auto inner = cache.load(text);  // plain hit on the racer's entry
  EXPECT_EQ(outer.get(), inner.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1);  // only the racer's winning parse
  EXPECT_EQ(cache.hits(), 2);    // the outer (beaten) load + the plain hit
}

TEST(ServeTest, JobsMatchDedicatedEngineBitwise) {
  const std::string scene = small_scene();
  constexpr int kSteps = 20;

  // Dedicated reference.
  SceneCache parse(1);
  md::EngineConfig cfg;
  cfg.n_threads = 2;
  md::Engine reference(*parse.load(scene), cfg);
  parallel::FixedThreadPool dedicated({.n_threads = 2});
  reference.run_native(dedicated, kSteps);
  dedicated.shutdown();

  SchedulerConfig sc;
  sc.threads_per_pool = 4;
  sc.max_drivers = 4;
  BatchScheduler scheduler(sc);
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int j = 0; j < 8; ++j) {
    JobRequest req;
    req.tenant = j % 2 == 0 ? "alice" : "bob";
    req.scene_text = scene;
    req.steps = kSteps;
    req.n_threads = 2;
    tickets.push_back(scheduler.submit(req));
  }
  scheduler.drain();
  for (const auto& t : tickets) {
    ASSERT_EQ(t->status(), JobStatus::Done) << t->error();
    EXPECT_EQ(t->potential_energy(), reference.potential_energy());
    EXPECT_EQ(t->kinetic_energy(), reference.kinetic_energy());
    EXPECT_GE(t->latency_seconds(), 0.0);
  }
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.accepted, 8);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServeTest, SamplesStreamAtRequestedCadence) {
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 12;
  req.sample_interval = 4;
  BatchScheduler scheduler(small_sched(2, 1));
  const auto ticket = scheduler.submit(req);
  ticket->wait();
  ASSERT_EQ(ticket->status(), JobStatus::Done) << ticket->error();
  const std::vector<Sample> samples = ticket->samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].step, 4);
  EXPECT_EQ(samples[1].step, 8);
  EXPECT_EQ(samples[2].step, 12);
  EXPECT_EQ(samples.back().pe, ticket->potential_energy());
}

TEST(ServeTest, ReturnSceneIsReproducibleAndResubmittable) {
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 10;
  req.return_scene = true;
  BatchScheduler scheduler(small_sched(2, 2));
  const auto first = scheduler.submit(req);
  const auto repeat = scheduler.submit(req);
  first->wait();
  repeat->wait();
  ASSERT_EQ(first->status(), JobStatus::Done) << first->error();
  ASSERT_EQ(repeat->status(), JobStatus::Done) << repeat->error();
  // Determinism extends to the trajectory endpoint: the same job returns the
  // same scene byte-for-byte (scene_io is byte-stable), so endpoints are
  // themselves valid scene-cache keys.
  ASSERT_FALSE(first->final_scene().empty());
  EXPECT_EQ(first->final_scene(), repeat->final_scene());
  EXPECT_NE(first->final_scene(), req.scene_text);  // atoms actually moved

  // The endpoint is resubmittable — trajectory continuation as a service.
  JobRequest cont = req;
  cont.scene_text = first->final_scene();
  cont.return_scene = false;
  const auto second = scheduler.submit(cont);
  second->wait();
  ASSERT_EQ(second->status(), JobStatus::Done) << second->error();
  EXPECT_NE(second->potential_energy(), first->potential_energy());  // it kept moving
}

TEST(ServeTest, MalformedSceneFailsWithoutPoisoningOthers) {
  BatchScheduler scheduler(small_sched(2, 2));
  JobRequest bad;
  bad.scene_text = "this is not an .mws document";
  bad.steps = 5;
  JobRequest good;
  good.scene_text = small_scene();
  good.steps = 5;
  const auto bad_ticket = scheduler.submit(bad);
  const auto good_ticket = scheduler.submit(good);
  scheduler.drain();
  EXPECT_EQ(bad_ticket->status(), JobStatus::Failed);
  EXPECT_FALSE(bad_ticket->error().empty());
  EXPECT_EQ(good_ticket->status(), JobStatus::Done) << good_ticket->error();
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServeTest, InvalidRequestsRejectImmediatelyWithReason) {
  BatchScheduler scheduler(small_sched(1, 1));
  JobRequest req;
  req.scene_text = small_scene();

  JobRequest empty = req;
  empty.scene_text = "";
  EXPECT_EQ(scheduler.submit(empty)->status(), JobStatus::Rejected);
  JobRequest no_steps = req;
  no_steps.steps = 0;
  EXPECT_EQ(scheduler.submit(no_steps)->status(), JobStatus::Rejected);
  JobRequest bad_width = req;
  bad_width.n_threads = -1;
  const auto t = scheduler.submit(bad_width);
  EXPECT_EQ(t->status(), JobStatus::Rejected);
  EXPECT_FALSE(t->error().empty());
  EXPECT_EQ(scheduler.stats().accepted, 0);
}

TEST(ServeTest, AdmissionCapsRejectOverflow) {
  // Paused scheduler: nothing drains, so the caps are hit deterministically.
  SchedulerConfig sc;
  sc.threads_per_pool = 1;
  sc.max_drivers = 1;
  sc.start_paused = true;
  sc.default_quota.max_queued = 2;
  sc.max_queued_total = 3;
  BatchScheduler scheduler(sc);
  JobRequest req_a;
  req_a.scene_text = small_scene();
  req_a.steps = 1;
  req_a.tenant = "a";
  JobRequest req_b = req_a;
  req_b.tenant = "b";

  EXPECT_NE(scheduler.submit(req_a)->status(), JobStatus::Rejected);
  EXPECT_NE(scheduler.submit(req_a)->status(), JobStatus::Rejected);
  const auto over_tenant = scheduler.submit(req_a);  // tenant cap (2) hit
  EXPECT_EQ(over_tenant->status(), JobStatus::Rejected);
  EXPECT_EQ(over_tenant->error(), "tenant queue full");

  EXPECT_NE(scheduler.submit(req_b)->status(), JobStatus::Rejected);
  const auto over_global = scheduler.submit(req_b);  // global cap (3) hit
  EXPECT_EQ(over_global->status(), JobStatus::Rejected);
  EXPECT_EQ(over_global->error(), "global queue full");

  scheduler.start();
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().completed, 3);
}

TEST(ServeTest, FairShareServesWeightedTenantProportionally) {
  // One driver + paused start → strictly serial, deterministic dispatch.
  // With equal-cost jobs and weights 2:1, start-time fair queueing dispatches
  // a,b,a,a,b,a over the first six decisions — tenant a gets 2× the service.
  SchedulerConfig sc;
  sc.threads_per_pool = 2;
  sc.max_drivers = 1;
  sc.start_paused = true;
  sc.default_quota.max_queued = 16;
  BatchScheduler scheduler(sc);
  scheduler.set_quota("a", {.weight = 2.0, .max_queued = 16});
  scheduler.set_quota("b", {.weight = 1.0, .max_queued = 16});

  // Jobs heavy enough (ms-scale) that serial start times dominate the µs
  // spread between the submit calls below — queue_seconds then recovers the
  // dispatch order exactly.
  JobRequest req_a;
  req_a.scene_text = scene_text(workloads::make_lj_gas(128, 0.006, 300.0, 5));
  req_a.steps = 25;
  req_a.tenant = "a";
  JobRequest req_b = req_a;
  req_b.tenant = "b";
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int j = 0; j < 6; ++j) {
    tickets.push_back(scheduler.submit(req_a));
    tickets.push_back(scheduler.submit(req_b));
  }
  scheduler.start();
  scheduler.drain();

  // Recover dispatch order: with one driver, jobs start strictly serially,
  // so queue delay orders them.
  std::sort(tickets.begin(), tickets.end(),
            [](const auto& x, const auto& y) { return x->queue_seconds() < y->queue_seconds(); });
  int a_in_first_six = 0;
  for (int i = 0; i < 6; ++i) {
    if (tickets[static_cast<std::size_t>(i)]->request().tenant == "a") ++a_in_first_six;
  }
  EXPECT_EQ(a_in_first_six, 4);  // the a,b,a,a,b,a prefix
  for (const auto& t : tickets) EXPECT_EQ(t->status(), JobStatus::Done) << t->error();
}

TEST(ServeTest, StoppedSchedulerRejectsNewWork) {
  BatchScheduler scheduler(small_sched(1, 1));
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 1;
  const auto before = scheduler.submit(req);
  scheduler.stop();
  EXPECT_EQ(before->status(), JobStatus::Done) << before->error();  // stop() drains
  const auto after = scheduler.submit(req);
  EXPECT_EQ(after->status(), JobStatus::Rejected);
  EXPECT_EQ(after->error(), "scheduler is stopping");
}

TEST(ServeTest, SceneCacheDedupesAcrossJobs) {
  const std::string scene = small_scene();
  BatchScheduler scheduler(small_sched(2, 1));
  JobRequest req;
  req.scene_text = scene;
  req.steps = 2;
  // Serial submissions (wait each) so every load after the first is a
  // deterministic cache hit.
  scheduler.submit(req)->wait();
  scheduler.submit(req)->wait();
  scheduler.submit(req)->wait();
  EXPECT_EQ(scheduler.scene_cache().misses(), 1);
  EXPECT_EQ(scheduler.scene_cache().hits(), 2);
}

TEST(ServeTest, DrainReleasesPausedScheduler) {
  // Regression: drain() on a paused scheduler with queued jobs used to wait
  // forever on queued_total_ == 0 while the paused drivers never picked
  // work.  drain() promises completion, so it must release the drivers.
  SchedulerConfig sc = small_sched(2, 1);
  sc.start_paused = true;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 3;
  const auto a = scheduler.submit(req);
  const auto b = scheduler.submit(req);
  scheduler.drain();  // no start() — pre-fix this deadlocked
  EXPECT_EQ(a->status(), JobStatus::Done) << a->error();
  EXPECT_EQ(b->status(), JobStatus::Done) << b->error();
}

TEST(ServeTest, SampleRingCapsRetainedSamples) {
  // A long job with sample_interval=1 must not grow its ticket without
  // bound: the ring keeps the newest max_samples_per_job samples and counts
  // the evictions.
  SchedulerConfig sc = small_sched(2, 1);
  sc.max_samples_per_job = 5;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 20;
  req.sample_interval = 1;
  const auto ticket = scheduler.submit(req);
  ticket->wait();
  ASSERT_EQ(ticket->status(), JobStatus::Done) << ticket->error();
  EXPECT_EQ(ticket->samples_dropped(), 15);
  const std::vector<Sample> samples = ticket->samples();
  ASSERT_EQ(samples.size(), 5u);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    EXPECT_EQ(samples[k].step, 16 + static_cast<long long>(k));
  }
  EXPECT_EQ(samples.back().pe, ticket->potential_energy());
}

TEST(ServeTest, ShardSelectionBalancesOnCost) {
  // One oversized job + three small ones over two shards and four drivers.
  // Balancing on outstanding *cost* keeps every small job off the oversized
  // job's shard; the pre-fix running-job *count* balance tie-broke the
  // second small job onto shard 0 alongside the giant.
  SchedulerConfig sc;
  sc.n_pools = 2;
  sc.threads_per_pool = 2;
  sc.max_drivers = 4;
  sc.start_paused = true;
  BatchScheduler scheduler(sc);

  JobRequest big;
  big.tenant = "bulk";
  big.scene_text = scene_text(workloads::make_lj_gas(1024, 0.006, 300.0, 17));
  big.steps = 60;
  JobRequest small;
  small.tenant = "bulk";
  small.scene_text = scene_text(workloads::make_lj_gas(128, 0.006, 300.0, 18));
  small.steps = 60;

  const auto big_ticket = scheduler.submit(big);
  std::vector<std::shared_ptr<JobTicket>> smalls;
  for (int j = 0; j < 3; ++j) smalls.push_back(scheduler.submit(small));
  scheduler.start();
  scheduler.drain();

  ASSERT_EQ(big_ticket->status(), JobStatus::Done) << big_ticket->error();
  for (const auto& t : smalls) {
    ASSERT_EQ(t->status(), JobStatus::Done) << t->error();
    EXPECT_NE(t->shard(), big_ticket->shard());
  }
}

TEST(ServePreemptTest, PreemptedJobBitwiseMatchesUninterrupted) {
  // The tentpole discipline on the hardest anchor we know: salt with 3
  // decomposition slots, preempted every 11 steps of 40 — each continuation
  // restores mid-neighbor-window, where a naive restart diverges.  Energies
  // and sample cadence must be indistinguishable from the uninterrupted run.
  auto spec = workloads::make_benchmark("salt", 7);
  JobRequest req;
  req.scene_text = scene_text(spec.system);
  req.steps = 40;
  req.n_threads = 3;
  req.sample_interval = 8;
  req.dt_fs = spec.engine.dt_fs;
  req.cutoff = spec.engine.cutoff;
  req.skin = spec.engine.skin;

  std::shared_ptr<JobTicket> plain;
  {
    BatchScheduler scheduler(small_sched(3, 1));
    plain = scheduler.submit(req);
    scheduler.drain();
  }
  ASSERT_EQ(plain->status(), JobStatus::Done) << plain->error();
  EXPECT_EQ(plain->preemptions(), 0);

  SchedulerConfig sc = small_sched(3, 1);
  sc.preempt_slice_steps = 11;
  BatchScheduler scheduler(sc);
  const auto preempted = scheduler.submit(req);
  scheduler.drain();
  ASSERT_EQ(preempted->status(), JobStatus::Done) << preempted->error();
  EXPECT_EQ(preempted->preemptions(), 3);  // dispatched 11+11+11+7
  EXPECT_EQ(preempted->steps_completed(), 40);
  EXPECT_EQ(preempted->potential_energy(), plain->potential_energy());
  EXPECT_EQ(preempted->kinetic_energy(), plain->kinetic_energy());

  const auto a = plain->samples();
  const auto b = preempted->samples();
  ASSERT_EQ(a.size(), b.size());  // 8,16,24,32,40 — quantum edges add none
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].step, b[k].step);
    EXPECT_EQ(a[k].pe, b[k].pe);
    EXPECT_EQ(a[k].ke, b[k].ke);
  }
  EXPECT_EQ(scheduler.stats().preemptions, 3);
  EXPECT_EQ(scheduler.stats().completed, 1);
}

TEST(ServePreemptTest, FinalSceneUnchangedByPreemption) {
  JobRequest req;
  req.scene_text = small_scene(9);
  req.steps = 30;
  req.return_scene = true;
  std::shared_ptr<JobTicket> plain;
  {
    BatchScheduler scheduler(small_sched(2, 1));
    plain = scheduler.submit(req);
    scheduler.drain();
  }
  SchedulerConfig sc = small_sched(2, 1);
  sc.preempt_slice_steps = 7;
  BatchScheduler scheduler(sc);
  const auto preempted = scheduler.submit(req);
  scheduler.drain();
  ASSERT_EQ(preempted->status(), JobStatus::Done) << preempted->error();
  EXPECT_EQ(preempted->preemptions(), 4);  // 7+7+7+7+2
  // Byte-identical endpoint: the continuation chain is the same trajectory.
  EXPECT_EQ(preempted->final_scene(), plain->final_scene());
}

TEST(ServePreemptTest, PreemptDuringDrainCompletesJob) {
  // drain() must ride out preemptions: the continuation re-enters the queue
  // atomically with the running count dropping, so drain can never observe
  // the job as idle mid-requeue.
  SchedulerConfig sc = small_sched(2, 2);
  sc.preempt_slice_steps = 5;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 55;
  const auto ticket = scheduler.submit(req);
  scheduler.drain();
  EXPECT_EQ(ticket->status(), JobStatus::Done) << ticket->error();
  EXPECT_EQ(ticket->preemptions(), 10);
  EXPECT_EQ(scheduler.stats().preemptions, 10);
}

TEST(ServePreemptTest, QueueDelayMeasuredToFirstStartOnly) {
  SchedulerConfig sc = small_sched(2, 1);
  sc.preempt_slice_steps = 3;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 12;
  const auto ticket = scheduler.submit(req);
  scheduler.drain();
  ASSERT_EQ(ticket->status(), JobStatus::Done) << ticket->error();
  EXPECT_GT(ticket->preemptions(), 0);
  // Queue delay cannot exceed total latency, and preemption re-queues must
  // not have reset it to a later window.
  EXPECT_LE(ticket->queue_seconds(), ticket->latency_seconds());
}

TEST(ServeDeadlineTest, DeadlineModePrefersEarliestDeadline) {
  // Paused single-driver scheduler: dispatch order is exactly the pick
  // order.  EDF serves the 5s deadline before the 10s one; the deadline-less
  // job goes last via the fair-share fallback.
  SchedulerConfig sc;
  sc.threads_per_pool = 2;
  sc.max_drivers = 1;
  sc.start_paused = true;
  sc.mode = SchedMode::Deadline;
  BatchScheduler scheduler(sc);

  JobRequest req;
  req.scene_text = scene_text(workloads::make_lj_gas(128, 0.006, 300.0, 5));
  req.steps = 25;
  JobRequest none = req;
  none.tenant = "batch";
  JobRequest loose = req;
  loose.tenant = "loose";
  loose.deadline_ms = 10000.0;
  JobRequest tight = req;
  tight.tenant = "tight";
  tight.deadline_ms = 5000.0;

  // Submit in anti-EDF order so FIFO cannot masquerade as the fix.
  const auto t_none = scheduler.submit(none);
  const auto t_loose = scheduler.submit(loose);
  const auto t_tight = scheduler.submit(tight);
  scheduler.start();
  scheduler.drain();
  for (const auto& t : {t_none, t_loose, t_tight}) {
    ASSERT_EQ(t->status(), JobStatus::Done) << t->error();
  }
  EXPECT_LT(t_tight->queue_seconds(), t_loose->queue_seconds());
  EXPECT_LT(t_loose->queue_seconds(), t_none->queue_seconds());
  EXPECT_FALSE(t_tight->deadline_missed());
  EXPECT_FALSE(t_loose->deadline_missed());
  EXPECT_FALSE(t_none->deadline_missed());  // no deadline, never "missed"
}

TEST(ServeDeadlineTest, MissedDeadlineFlagged) {
  SchedulerConfig sc = small_sched(2, 1);
  sc.start_paused = true;  // hold the job queued past its microscopic SLO
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 10;
  req.deadline_ms = 0.001;
  const auto ticket = scheduler.submit(req);
  scheduler.drain();
  ASSERT_EQ(ticket->status(), JobStatus::Done) << ticket->error();
  EXPECT_TRUE(ticket->deadline_missed());
}

TEST(ServeDeadlineTest, NegativeDeadlineRejected) {
  BatchScheduler scheduler(small_sched(1, 1));
  JobRequest req;
  req.scene_text = small_scene();
  req.deadline_ms = -1.0;
  const auto ticket = scheduler.submit(req);
  EXPECT_EQ(ticket->status(), JobStatus::Rejected);
  EXPECT_EQ(ticket->error(), "deadline_ms must be non-negative");
}

TEST(ServeLifecycleTest, StopWhilePausedCompletesAcceptedJobs) {
  SchedulerConfig sc = small_sched(2, 1);
  sc.start_paused = true;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 3;
  const auto a = scheduler.submit(req);
  const auto b = scheduler.submit(req);
  scheduler.stop();  // never start()ed — stop still owes the accepted jobs
  EXPECT_EQ(a->status(), JobStatus::Done) << a->error();
  EXPECT_EQ(b->status(), JobStatus::Done) << b->error();
}

TEST(ServeLifecycleTest, ConcurrentDoubleStopIsSafe) {
  SchedulerConfig sc = small_sched(2, 2);
  sc.preempt_slice_steps = 4;
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 20;
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int j = 0; j < 4; ++j) tickets.push_back(scheduler.submit(req));
  std::thread other([&] { scheduler.stop(); });
  scheduler.stop();
  other.join();
  // Both callers returned only after full teardown: every accepted job is
  // terminal and the books balance.
  for (const auto& t : tickets) {
    EXPECT_EQ(t->status(), JobStatus::Done) << t->error();
  }
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
}

TEST(ServeLifecycleTest, SubmitRacingStopNeverLosesATicket) {
  SchedulerConfig sc = small_sched(2, 2);
  BatchScheduler scheduler(sc);
  JobRequest req;
  req.scene_text = small_scene();
  req.steps = 2;
  std::vector<std::shared_ptr<JobTicket>> tickets;
  std::atomic<bool> go{false};
  std::thread submitter([&] {
    while (!go.load()) {}
    for (int j = 0; j < 32; ++j) tickets.push_back(scheduler.submit(req));
  });
  go.store(true);
  scheduler.stop();
  submitter.join();
  // Every ticket reached a terminal state: accepted ones completed before
  // stop() returned, later ones were rejected with the stopping reason —
  // none hang in Queued/Running.
  long long done = 0, rejected = 0;
  for (const auto& t : tickets) {
    t->wait();
    const JobStatus s = t->status();
    EXPECT_TRUE(s == JobStatus::Done || s == JobStatus::Rejected) << to_string(s);
    if (s == JobStatus::Done) ++done;
    if (s == JobStatus::Rejected) ++rejected;
  }
  EXPECT_EQ(done + rejected, 32);
  const BatchScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
}

}  // namespace
}  // namespace mwx::serve
