// Tests of the unified PMU layer: CounterSet/PmuReport vocabulary, the sim
// provider's per-core/per-phase attribution and its conservation law, the
// native perf_event/fallback provider, the engine/pool wiring (including the
// "counters must not perturb physics" guarantee), and the SamplingProfiler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/native_pmu.hpp"
#include "perf/pmu.hpp"
#include "perf/sampling_profiler.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::perf {
namespace {

// --- CounterSet / PmuReport vocabulary ---------------------------------------

TEST(CounterSetTest, ArithmeticAndZeroCheck) {
  CounterSet a, b;
  EXPECT_TRUE(a.all_zero());
  a[Counter::kL1Misses] = 3.0;
  a[Counter::kCycles] = 10.0;
  b[Counter::kL1Misses] = 2.0;
  EXPECT_FALSE(a.all_zero());

  const CounterSet sum = a + b;
  EXPECT_DOUBLE_EQ(sum[Counter::kL1Misses], 5.0);
  EXPECT_DOUBLE_EQ(sum[Counter::kCycles], 10.0);

  const CounterSet delta = sum - a;
  EXPECT_DOUBLE_EQ(delta[Counter::kL1Misses], 2.0);
  EXPECT_DOUBLE_EQ(delta[Counter::kCycles], 0.0);
}

TEST(CounterSetTest, MissRate) {
  CounterSet c;
  EXPECT_DOUBLE_EQ(c.miss_rate(Counter::kL2Hits, Counter::kL2Misses), 0.0);
  c[Counter::kL2Hits] = 75.0;
  c[Counter::kL2Misses] = 25.0;
  EXPECT_DOUBLE_EQ(c.miss_rate(Counter::kL2Hits, Counter::kL2Misses), 0.25);
}

TEST(CounterSetTest, EveryCounterHasAStableName) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_STRNE(counter_name(static_cast<Counter>(i)), "unknown") << "counter " << i;
  }
}

TEST(PmuReportTest, TotalsAcrossAxes) {
  PmuReport r;
  r.provider = "sim";
  r.lane_kind = "core";
  r.n_lanes = 2;
  r.at(1, 0)[Counter::kTasks] = 3.0;
  r.at(1, 1)[Counter::kTasks] = 5.0;
  r.at(4, 0)[Counter::kTasks] = 7.0;

  EXPECT_EQ(r.phases(), (std::vector<int>{1, 4}));
  EXPECT_DOUBLE_EQ(r.phase_total(1)[Counter::kTasks], 8.0);
  EXPECT_DOUBLE_EQ(r.phase_total(4)[Counter::kTasks], 7.0);
  EXPECT_DOUBLE_EQ(r.lane_total(0)[Counter::kTasks], 10.0);
  EXPECT_DOUBLE_EQ(r.lane_total(1)[Counter::kTasks], 5.0);
  EXPECT_DOUBLE_EQ(r.total()[Counter::kTasks], 15.0);

  EXPECT_NE(r.find(1, 0), nullptr);
  EXPECT_EQ(r.find(2, 0), nullptr);  // untouched phase
  EXPECT_EQ(r.find(1, 5), nullptr);  // lane out of range
  EXPECT_DOUBLE_EQ(r.phase_total(99)[Counter::kTasks], 0.0);
}

TEST(PmuReportTest, JsonCarriesIdentityAndConservationAggregate) {
  PmuReport r;
  r.provider = "sim";
  r.lane_kind = "core";
  r.n_lanes = 1;
  r.at(4, 0)[Counter::kL2Misses] = 42.0;
  CounterSet machine_total;
  machine_total[Counter::kL2Misses] = 42.0;

  std::ostringstream out;
  r.write_json(out, "unit", "abc123", &machine_total);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"kind\": \"pmu\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": \"abc123\""), std::string::npos);
  EXPECT_NE(json.find("\"provider\": \"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"lane_kind\": \"core\""), std::string::npos);
  EXPECT_NE(json.find("\"machine_total\""), std::string::npos);
  EXPECT_NE(json.find("\"l2_misses\": 42"), std::string::npos);
  // Zero suppression: untouched counters stay out of the cells.
  EXPECT_EQ(json.find("\"l1_misses\""), std::string::npos);
}

TEST(PmuTest, BuildShaNeverEmpty) { EXPECT_STRNE(build_git_sha(), ""); }

}  // namespace
}  // namespace mwx::perf

namespace mwx::sim {
namespace {

MachineConfig machine_config(int n_threads, std::uint64_t seed = 1) {
  MachineConfig c;
  c.spec = topo::core_i7_920();
  c.sched.seed = seed;
  c.n_threads = n_threads;
  return c;
}

// A phase mixing compute, streaming accesses and (under the dynamic
// disciplines) steals — enough traffic to touch most counter fields.
PhaseWork busy_phase(int tag, int n_tasks, Assignment a) {
  PhaseWork w;
  w.tag = tag;
  w.assignment = a;
  for (int i = 0; i < n_tasks; ++i) {
    SimTask t;
    t.owner = i % 4;
    t.compute_cycles = 20000.0 * (1 + i % 3);
    t.access_begin = static_cast<std::uint32_t>(w.accesses.size());
    const std::uint64_t base = 0x1000000ull * static_cast<std::uint64_t>(i + 1);
    for (std::uint64_t off = 0; off < 16384; off += 64) {
      w.accesses.push_back({base + off, (off % 256) == 0});
    }
    t.access_end = static_cast<std::uint32_t>(w.accesses.size());
    w.tasks.push_back(t);
  }
  return w;
}

void expect_conserved(const Machine& machine) {
  MachineCounters sum;
  for (int tag : machine.counter_phases()) sum += machine.phase_counters(tag);
  const MachineCounters& g = machine.counters();

  // Event counts are integers: conservation must be exact.
  EXPECT_EQ(g.l1.hits, sum.l1.hits);
  EXPECT_EQ(g.l1.misses, sum.l1.misses);
  EXPECT_EQ(g.l1.dirty_evictions, sum.l1.dirty_evictions);
  EXPECT_EQ(g.l2.hits, sum.l2.hits);
  EXPECT_EQ(g.l2.misses, sum.l2.misses);
  EXPECT_EQ(g.l2.dirty_evictions, sum.l2.dirty_evictions);
  EXPECT_EQ(g.l3.hits, sum.l3.hits);
  EXPECT_EQ(g.l3.misses, sum.l3.misses);
  EXPECT_EQ(g.l3.dirty_evictions, sum.l3.dirty_evictions);
  EXPECT_EQ(g.dram_line_fetches, sum.dram_line_fetches);
  EXPECT_EQ(g.dram_writebacks, sum.dram_writebacks);
  EXPECT_EQ(g.migrations, sum.migrations);
  EXPECT_EQ(g.steals, sum.steals);
  // Cycle-valued fields accumulate in a different order globally than summed
  // by domain; only floating-point association error is tolerated.
  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  EXPECT_PRED2(near, g.dram_queue_cycles, sum.dram_queue_cycles);
  EXPECT_PRED2(near, g.steal_overhead_cycles, sum.steal_overhead_cycles);
  EXPECT_PRED2(near, g.noise_stall_cycles, sum.noise_stall_cycles);
  EXPECT_PRED2(near, g.queue_wait_cycles, sum.queue_wait_cycles);
  EXPECT_PRED2(near, g.monitor_wait_cycles, sum.monitor_wait_cycles);
  EXPECT_PRED2(near, g.barrier_wait_cycles, sum.barrier_wait_cycles);
}

TEST(SimPmuTest, ConservationHoldsAcrossDisciplines) {
  for (const Assignment a :
       {Assignment::Static, Assignment::SharedQueue, Assignment::WorkStealing}) {
    MachineConfig c = machine_config(4);
    // Noisy scheduler: bursts, migrations and stalls must all stay conserved.
    c.sched.noise_bursts_per_second = 500.0;
    c.sched.noise_burst_seconds = 100e-6;
    Machine m(c);
    for (int rep = 0; rep < 3; ++rep) {
      m.run_phase(busy_phase(1, 16, a));
      m.run_phase(busy_phase(4, 32, a));
    }
    expect_conserved(m);
    SCOPED_TRACE(static_cast<int>(a));
    EXPECT_GT(m.counters().l1.accesses(), 0);
  }
}

TEST(SimPmuTest, ConservationHoldsWithMonitorContention) {
  Machine m(machine_config(4));
  PhaseWork w = busy_phase(1, 16, Assignment::SharedQueue);
  for (auto& t : w.tasks) t.monitor_updates = 8;
  m.run_phase(w);
  EXPECT_GT(m.counters().monitor_wait_cycles, 0.0);
  expect_conserved(m);
}

TEST(SimPmuTest, PerPhaseAttribution) {
  Machine m(machine_config(2));
  m.run_phase(busy_phase(3, 8, Assignment::Static));
  m.run_phase(busy_phase(7, 8, Assignment::Static));

  EXPECT_EQ(m.counter_phases(), (std::vector<int>{3, 7}));
  const MachineCounters p3 = m.phase_counters(3);
  const MachineCounters p7 = m.phase_counters(7);
  EXPECT_GT(p3.l1.accesses(), 0);
  EXPECT_GT(p7.l1.accesses(), 0);
  // An unknown tag reads as all-zero, not as an error.
  EXPECT_EQ(m.phase_counters(42).l1.accesses(), 0);
  EXPECT_EQ(m.phase_core_counters(42, 0).l1.accesses(), 0);
}

TEST(SimPmuTest, PerCoreAttributionFollowsPinning) {
  MachineConfig c = machine_config(2);
  c.sched.stay_probability = 1.0;
  // Pin thread 0 to core 0's first PU and thread 1 to core 2's first PU.
  const int pu_core0 = 0;
  const int pu_core2 = [&] {
    for (int pu = 0; pu < c.spec.n_pus(); ++pu) {
      if (c.spec.pu_to_core(pu) == 2) return pu;
    }
    return -1;
  }();
  ASSERT_GE(pu_core2, 0);
  c.pin_masks = {topo::CpuSet::of({pu_core0}), topo::CpuSet::of({pu_core2})};
  Machine m(c);
  m.run_phase(busy_phase(1, 2, Assignment::Static));

  EXPECT_GT(m.phase_core_counters(1, 0).l1.accesses(), 0);
  EXPECT_GT(m.phase_core_counters(1, 2).l1.accesses(), 0);
  EXPECT_EQ(m.phase_core_counters(1, 1).l1.accesses(), 0);
  EXPECT_EQ(m.phase_core_counters(1, 3).l1.accesses(), 0);
  EXPECT_EQ(m.phase_core_counters(1, 0).migrations +
                m.phase_core_counters(1, 2).migrations,
            m.counters().migrations);
}

// Satellite: reset_counters() must clear every per-instance CacheStats and
// the attribution domains — two identical reps from a reset must snapshot
// identically (the cache contents carry over, but the third rep sees the
// same steady state the second did).
TEST(SimPmuTest, ResetRegressionTwoIdenticalReps) {
  MachineConfig c = machine_config(1);
  c.sched.stay_probability = 1.0;
  c.pin_masks = {topo::CpuSet::of({0})};
  Machine m(c);

  const auto rep = [&m] { m.run_phase(busy_phase(2, 4, Assignment::Static)); };
  rep();  // warm the caches to steady state

  m.reset_counters();
  EXPECT_TRUE(m.counter_phases().empty());
  rep();
  const MachineCounters s1 = m.counters();
  const MachineCounters d1 = m.phase_counters(2);

  m.reset_counters();
  rep();
  const MachineCounters s2 = m.counters();
  const MachineCounters d2 = m.phase_counters(2);

  // Any stale per-instance CacheStats (or stale domain cell) would break
  // this equality.
  const auto expect_identical = [](const MachineCounters& a, const MachineCounters& b) {
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.dirty_evictions, b.l1.dirty_evictions);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l3.hits, b.l3.hits);
    EXPECT_EQ(a.l3.misses, b.l3.misses);
    EXPECT_EQ(a.dram_line_fetches, b.dram_line_fetches);
    EXPECT_EQ(a.dram_writebacks, b.dram_writebacks);
    EXPECT_EQ(a.migrations, b.migrations);
  };
  expect_identical(s1, s2);
  expect_identical(d1, d2);
}

TEST(SimPmuTest, PmuReportMirrorsDomainsAndEventLog) {
  Machine m(machine_config(2));
  m.run_phase(busy_phase(4, 8, Assignment::Static));
  const perf::PmuReport r = m.pmu_report();

  EXPECT_EQ(r.provider, "sim");
  EXPECT_EQ(r.lane_kind, "core");
  EXPECT_EQ(r.n_lanes, m.config().spec.n_cores());
  EXPECT_EQ(r.phases(), (std::vector<int>{4}));
  const perf::CounterSet total = r.total();
  EXPECT_DOUBLE_EQ(total[perf::Counter::kL1Misses],
                   static_cast<double>(m.counters().l1.misses));
  // record_events is on by default: 8 tasks ran, each attributed to a core.
  EXPECT_DOUBLE_EQ(total[perf::Counter::kTasks], 8.0);
  EXPECT_GT(total[perf::Counter::kBusyCycles], 0.0);
}

TEST(SimPmuTest, ToCounterSetMapsLastLevelToGenericPair) {
  MachineCounters m;
  m.l3.hits = 30;
  m.l3.misses = 10;
  const perf::CounterSet c = to_counter_set(m);
  EXPECT_DOUBLE_EQ(c[perf::Counter::kCacheReferences], 40.0);
  EXPECT_DOUBLE_EQ(c[perf::Counter::kCacheMisses], 10.0);
}

}  // namespace
}  // namespace mwx::sim

namespace mwx::perf {
namespace {

// --- Native provider ---------------------------------------------------------

TEST(ThreadPmuTest, ReadsAreMonotonicAndLabelled) {
  ThreadPmu& pmu = ThreadPmu::calling_thread();
  const CounterSet a = pmu.read();
  // Burn some CPU so every live counter advances.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const CounterSet b = pmu.read();

  EXPECT_GT(b[Counter::kCpuNanos], a[Counter::kCpuNanos]);
  if (pmu.hardware()) {
    EXPECT_GT(b[Counter::kCycles], a[Counter::kCycles]);
  } else {
    EXPECT_DOUBLE_EQ(b[Counter::kCycles], 0.0);
  }
}

TEST(PmuAccumulatorTest, ValidatesConstruction) {
  EXPECT_THROW(PmuAccumulator(0), ContractError);
  EXPECT_THROW(PmuAccumulator(-2), ContractError);
}

TEST(PmuAccumulatorTest, AttributesToWorkerAndPhase) {
  PmuAccumulator acc(2);
  acc.task_begin();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  acc.task_end(/*worker=*/1, /*phase_tag=*/4, /*tasks=*/3.0);

  const PmuReport r = acc.report();
  EXPECT_EQ(r.lane_kind, "worker");
  EXPECT_EQ(r.n_lanes, 2);
  EXPECT_EQ(r.phases(), (std::vector<int>{4}));
  ASSERT_NE(r.find(4, 1), nullptr);
  EXPECT_DOUBLE_EQ((*r.find(4, 1))[Counter::kTasks], 3.0);
  EXPECT_GT((*r.find(4, 1))[Counter::kBusyCycles], 0.0);
  EXPECT_TRUE(r.find(4, 0) == nullptr || r.find(4, 0)->all_zero());

  // The provider label is honest either way, never empty or mixed.
  EXPECT_TRUE(acc.provider() == "perf_event" || acc.provider() == "fallback");
  EXPECT_EQ(r.provider, acc.provider());

  acc.reset();
  EXPECT_TRUE(acc.report().phases().empty());
  EXPECT_EQ(acc.provider(), "fallback");  // nothing ran since reset
}

TEST(PmuAccumulatorTest, OutOfRangePhaseTagsFoldIntoLastSlot) {
  PmuAccumulator acc(1);
  acc.task_begin();
  acc.task_end(0, PmuAccumulator::kMaxPhaseTag + 7);
  acc.task_begin();
  acc.task_end(0, -3);
  const auto phases = acc.report().phases();
  EXPECT_EQ(phases, (std::vector<int>{0, PmuAccumulator::kMaxPhaseTag - 1}));
  EXPECT_THROW(acc.task_end(5, 0), ContractError);
}

TEST(PoolPmuTest, BracketsEveryTask) {
  PmuAccumulator acc(2);
  parallel::FixedThreadPool pool({.n_threads = 2});
  pool.attach_pmu(&acc);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.quiesce();
  pool.attach_pmu(nullptr);
  EXPECT_EQ(ran.load(), 20);
  // Pool tasks are untagged (phase 0) and must all be counted.
  EXPECT_DOUBLE_EQ(acc.report().phase_total(0)[Counter::kTasks], 20.0);

  parallel::FixedThreadPool small({.n_threads = 3});
  PmuAccumulator narrow(2);
  EXPECT_THROW(small.attach_pmu(&narrow), ContractError);
}

}  // namespace
}  // namespace mwx::perf

namespace mwx::md {
namespace {

EngineConfig engine_config(int threads) {
  EngineConfig cfg;
  cfg.n_threads = threads;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 7.0;
  cfg.skin = 1.0;
  return cfg;
}

// The acceptance criterion: attaching the PMU must not change a single bit
// of the physics — counter reads happen strictly outside run_task().
TEST(EnginePmuTest, EnergiesBitIdenticalWithAndWithoutCounters) {
  const auto run = [](perf::PmuAccumulator* acc) {
    auto sys = workloads::make_lj_gas(150, 0.012, 120.0, 17);
    Engine eng(std::move(sys), engine_config(4));
    if (acc != nullptr) eng.attach_pmu(acc);
    parallel::FixedThreadPool pool(
        {.n_threads = 4, .queue_mode = parallel::QueueMode::WorkStealing});
    eng.run_native(pool, 15);
    return std::pair{eng.potential_energy(), eng.kinetic_energy()};
  };

  const auto [pe_plain, ke_plain] = run(nullptr);
  perf::PmuAccumulator acc(4);
  const auto [pe_counted, ke_counted] = run(&acc);

  EXPECT_EQ(pe_plain, pe_counted);  // bit-identical, not just close
  EXPECT_EQ(ke_plain, ke_counted);

  // And the counters actually attributed work to the engine's phase tags.
  const perf::PmuReport r = acc.report();
  const auto phases = r.phases();
  for (const int tag : {kPhasePredictor, kPhaseForces, kPhaseCorrector}) {
    EXPECT_NE(std::find(phases.begin(), phases.end(), tag), phases.end())
        << "phase " << tag << " missing from native report";
  }
  EXPECT_GT(r.phase_total(kPhaseForces)[perf::Counter::kTasks], 0.0);
  EXPECT_GT(r.total()[perf::Counter::kCpuNanos], 0.0);
}

TEST(EnginePmuTest, RejectsUndersizedAccumulator) {
  auto sys = workloads::make_lj_gas(50, 0.01, 100.0, 1);
  Engine eng(std::move(sys), engine_config(4));
  perf::PmuAccumulator narrow(2);
  EXPECT_THROW(eng.attach_pmu(&narrow), ContractError);
  eng.attach_pmu(nullptr);  // detaching is always fine
}

}  // namespace
}  // namespace mwx::md

namespace mwx::perf {
namespace {

// --- SamplingProfiler edge cases ---------------------------------------------

TEST(SamplingProfilerTest, RejectsBadConstruction) {
  const auto probe = [] { return 1.0; };
  EXPECT_THROW(SamplingProfiler(probe, 0.0), ContractError);
  EXPECT_THROW(SamplingProfiler(probe, -0.5), ContractError);
  EXPECT_THROW(SamplingProfiler(nullptr, 0.01), ContractError);
}

TEST(SamplingProfilerTest, StopBeforeStartIsHarmless) {
  SamplingProfiler p([] { return 0.0; }, 0.01);
  p.stop();
  p.stop();
  EXPECT_FALSE(p.running());
  EXPECT_TRUE(p.samples().empty());
}

TEST(SamplingProfilerTest, DoubleStartRejectedRestartSupported) {
  std::atomic<int> calls{0};
  SamplingProfiler p([&calls] { return static_cast<double>(calls.fetch_add(1)); }, 0.001);
  p.start();
  EXPECT_TRUE(p.running());
  EXPECT_THROW(p.start(), ContractError);
  while (calls.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  p.stop();
  EXPECT_FALSE(p.running());
  const std::size_t first_run = p.samples().size();
  EXPECT_GE(first_run, 3u);

  p.start();  // restart appends
  while (calls.load() < static_cast<int>(first_run) + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.stop();
  EXPECT_GT(p.samples().size(), first_run);

  p.clear();
  EXPECT_TRUE(p.samples().empty());
}

TEST(SamplingProfilerTest, SamplesCarryMonotonicTimestamps) {
  SamplingProfiler p([] { return 42.0; }, 0.001);
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  p.stop();
  const auto samples = p.samples();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
    EXPECT_DOUBLE_EQ(samples[i].value, 42.0);
  }
}

TEST(SamplingProfilerTest, SurvivesPoolShutdownMidWindow) {
  // The sampled subject dies under the sampler: the pool shuts down while
  // the profiler keeps probing its (still-valid) statistics accessors.
  auto pool = std::make_unique<parallel::FixedThreadPool>(parallel::ThreadPoolConfig{
      .n_threads = 2, .queue_mode = parallel::QueueMode::WorkStealing});
  parallel::FixedThreadPool* raw = pool.get();
  SamplingProfiler p([raw] { return static_cast<double>(raw->steals()); }, 0.001);
  p.start();
  for (int i = 0; i < 64; ++i) {
    pool->submit([] {
      volatile int x = 0;
      for (int j = 0; j < 10000; ++j) x += j;
    });
  }
  pool->quiesce();
  pool->shutdown();  // mid-window: the profiler is still running
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(p.running());
  p.stop();
  EXPECT_FALSE(p.samples().empty());
  pool.reset();
}

}  // namespace
}  // namespace mwx::perf
