// Property tests of the neighbor-finding machinery against brute force:
// for random systems across densities and seeds, the engine's half neighbor
// list must contain exactly the pairs within reach (minus the exclusion and
// fixed-pair rules), and the machine-simulator phase must execute empty and
// degenerate workloads gracefully.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

using PairSet = std::set<std::pair<int, int>>;

PairSet brute_force_pairs(const MolecularSystem& sys, double reach) {
  PairSet pairs;
  const auto& pos = sys.positions();
  for (int i = 0; i < sys.n_atoms(); ++i) {
    for (int j = i + 1; j < sys.n_atoms(); ++j) {
      if (!sys.movable(i) && !sys.movable(j)) continue;
      if (sys.excluded(i, j)) continue;
      if (distance(pos[static_cast<std::size_t>(i)], pos[static_cast<std::size_t>(j)]) <=
          reach) {
        pairs.emplace(i, j);
      }
    }
  }
  return pairs;
}

PairSet engine_pairs(Engine& eng) {
  eng.compute_forces_only();  // unconditional rebuild
  PairSet pairs;
  const NeighborList& nl = eng.neighbor_list();
  for (int i = 0; i < eng.system().n_atoms(); ++i) {
    for (const int* it = nl.begin(i); it != nl.end(i); ++it) {
      EXPECT_GT(*it, i) << "half list must store only higher indices";
      pairs.emplace(i, *it);
    }
  }
  return pairs;
}

class NeighborSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(NeighborSweep, ListMatchesBruteForce) {
  const auto [density, seed] = GetParam();
  auto sys = workloads::make_lj_gas(200, density, 200.0, seed);
  // Jitter positions off the seed lattice so geometry is irregular.
  Rng rng(seed * 7 + 1);
  const Box& box = sys.box();
  for (auto& p : sys.positions()) {
    p += Vec3{rng.uniform(-0.8, 0.8), rng.uniform(-0.8, 0.8), rng.uniform(-0.8, 0.8)};
    p.x = std::clamp(p.x, box.lo.x, box.hi.x);
    p.y = std::clamp(p.y, box.lo.y, box.hi.y);
    p.z = std::clamp(p.z, box.lo.z, box.hi.z);
  }
  EngineConfig cfg;
  cfg.n_threads = 2;
  cfg.cutoff = 6.0;
  cfg.skin = 1.0;
  cfg.temporaries = TemporariesMode::InPlace;
  const double reach = cfg.cutoff + cfg.skin;
  const PairSet expected = brute_force_pairs(sys, reach);
  Engine eng(std::move(sys), cfg);
  const PairSet actual = engine_pairs(eng);
  EXPECT_EQ(actual, expected) << "density " << density << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Densities, NeighborSweep,
                         ::testing::Combine(::testing::Values(0.002, 0.01, 0.03),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(NeighborPropertyTest, BondedSystemExcludesBondedPairs) {
  auto sys = workloads::make_chain(20, 9);
  EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.cutoff = 6.0;
  cfg.skin = 1.0;
  cfg.temporaries = TemporariesMode::InPlace;
  const PairSet expected = brute_force_pairs(sys, cfg.cutoff + cfg.skin);
  Engine eng(std::move(sys), cfg);
  const PairSet actual = engine_pairs(eng);
  EXPECT_EQ(actual, expected);
  // Direct bonds must be absent even though they are within reach.
  for (const auto& [i, j] : actual) {
    EXPECT_FALSE(eng.system().excluded(i, j));
  }
}

TEST(NeighborPropertyTest, NanocarPlatformPairsAbsent) {
  auto spec = workloads::make_nanocar(11);
  const auto& sys_ref = spec.system;
  std::vector<char> movable(static_cast<std::size_t>(sys_ref.n_atoms()));
  for (int i = 0; i < sys_ref.n_atoms(); ++i) movable[static_cast<std::size_t>(i)] =
      sys_ref.movable(i) ? 1 : 0;
  auto cfg = spec.engine;
  cfg.n_threads = 2;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(spec.system), cfg);
  const PairSet pairs = engine_pairs(eng);
  for (const auto& [i, j] : pairs) {
    EXPECT_TRUE(movable[static_cast<std::size_t>(i)] || movable[static_cast<std::size_t>(j)])
        << "fixed platform atoms must not pair with one another";
  }
}

TEST(MachineEdgeTest, EmptyPhaseCompletesImmediately) {
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = 4;
  sim::Machine machine(mc);
  sim::PhaseWork empty;
  empty.tag = 1;
  const auto r = machine.run_phase(empty);
  EXPECT_GT(r.end_seconds, r.begin_seconds);  // wake + barrier only
  EXPECT_LT(r.duration_seconds(), 1e-4);
  for (double b : r.busy_seconds) EXPECT_EQ(b, 0.0);
}

TEST(MachineEdgeTest, SingleTaskManyThreads) {
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = 8;
  sim::Machine machine(mc);
  sim::PhaseWork w;
  w.tag = 1;
  w.tasks.push_back({0, 1e6, 0, 0, 0});
  const auto r = machine.run_phase(w);
  // One thread works; seven wait at the barrier.
  int busy_threads = 0;
  for (double b : r.busy_seconds) busy_threads += b > 0 ? 1 : 0;
  EXPECT_EQ(busy_threads, 1);
  EXPECT_GT(machine.counters().barrier_wait_cycles, 6e6);
}

}  // namespace
}  // namespace mwx::md

namespace mwx::parallel {
namespace {

TEST(ThreadPoolExceptionTest, ThrowingTaskDoesNotKillWorker) {
  FixedThreadPool pool({.n_threads = 2});
  std::atomic<int> after{0};
  pool.submit([] { throw std::runtime_error("task failure"); });
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++after; });
  pool.quiesce();
  EXPECT_EQ(after.load(), 10) << "pool must keep serving after a task throws";
  EXPECT_EQ(pool.failed_tasks(), 1);
}

TEST(ThreadPoolExceptionTest, NoFailuresByDefault) {
  FixedThreadPool pool({.n_threads = 1});
  pool.submit([] {});
  pool.quiesce();
  EXPECT_EQ(pool.failed_tasks(), 0);
}

}  // namespace
}  // namespace mwx::parallel
