// Tests for the MD substrate: system container, heap-layout model, linked
// cells, neighbor lists.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "md/cell_grid.hpp"
#include "md/layout.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace mwx::md {
namespace {

AtomTypeTable one_type() {
  AtomTypeTable t;
  t.add({"Ar", 39.95, units::ev(0.0104), 3.4});
  return t;
}

TEST(SystemTest, AddAtomBasics) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  const int i = sys.add_atom(0, {1, 2, 3}, {0.1, 0, 0}, 0.5);
  EXPECT_EQ(i, 0);
  EXPECT_EQ(sys.n_atoms(), 1);
  EXPECT_EQ(sys.n_charged(), 1);
  EXPECT_EQ(sys.positions()[0], Vec3(1, 2, 3));
  EXPECT_DOUBLE_EQ(sys.charge(0), 0.5);
  EXPECT_TRUE(sys.movable(0));
  EXPECT_DOUBLE_EQ(sys.mass(0), 39.95);
  EXPECT_DOUBLE_EQ(sys.inv_mass(0), 1.0 / 39.95);
}

TEST(SystemTest, RejectsBadAtoms) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  EXPECT_THROW(sys.add_atom(5, {1, 1, 1}), ContractError);     // unknown type
  EXPECT_THROW(sys.add_atom(0, {11, 1, 1}), ContractError);    // outside box
  EXPECT_THROW(sys.add_atom(0, {-1, 1, 1}), ContractError);
}

TEST(SystemTest, ImmovableAtomHasNoVelocity) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  const int i = sys.add_atom(0, {5, 5, 5}, {1, 1, 1}, 0.0, /*movable=*/false);
  EXPECT_EQ(sys.velocities()[static_cast<std::size_t>(i)], Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(sys.inv_mass(i), 0.0);
  EXPECT_EQ(sys.n_movable(), 0);
}

TEST(SystemTest, ChargedIndicesTrackChargedAtoms) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  sys.add_atom(0, {1, 1, 1}, {}, 0.0);
  sys.add_atom(0, {2, 2, 2}, {}, 1.0);
  sys.add_atom(0, {3, 3, 3}, {}, -1.0);
  EXPECT_EQ(sys.charged_indices(), (std::vector<int>{1, 2}));
}

TEST(SystemTest, BondValidation) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  sys.add_atom(0, {1, 1, 1});
  sys.add_atom(0, {2, 2, 2});
  sys.add_atom(0, {3, 3, 3});
  EXPECT_THROW(sys.add_radial_bond({0, 0, 1.0, 1.0}), ContractError);
  EXPECT_THROW(sys.add_radial_bond({0, 9, 1.0, 1.0}), ContractError);
  EXPECT_THROW(sys.add_angular_bond({0, 1, 1, 1.0, 1.0}), ContractError);
  sys.add_radial_bond({0, 1, 1.0, 1.0});
  sys.add_angular_bond({0, 1, 2, 1.0, 1.5});
  sys.add_torsion_bond({0, 1, 2, 0, 1.0, 1, 0.0});
  EXPECT_EQ(sys.n_bonds_total(), 3);
}

TEST(SystemTest, ExclusionsFollowRadialBonds) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  sys.add_atom(0, {1, 1, 1});
  sys.add_atom(0, {2, 2, 2});
  sys.add_atom(0, {3, 3, 3});
  EXPECT_FALSE(sys.excluded(0, 1));
  sys.add_radial_bond({0, 1, 1.0, 1.0});
  EXPECT_TRUE(sys.excluded(0, 1));
  EXPECT_TRUE(sys.excluded(1, 0));  // symmetric
  EXPECT_FALSE(sys.excluded(0, 2));
}

TEST(SystemTest, MixingRules) {
  AtomTypeTable types;
  types.add({"A", 1.0, 4.0, 2.0});
  types.add({"B", 1.0, 9.0, 4.0});
  MolecularSystem sys(types, {{0, 0, 0}, {10, 10, 10}});
  EXPECT_DOUBLE_EQ(sys.lj_epsilon(0, 1), 6.0);  // sqrt(4*9)
  EXPECT_DOUBLE_EQ(sys.lj_sigma(0, 1), 3.0);    // (2+4)/2
  EXPECT_DOUBLE_EQ(sys.lj_epsilon(0, 0), 4.0);
}

TEST(SystemTest, MomentumAndKineticEnergy) {
  MolecularSystem sys(one_type(), {{0, 0, 0}, {10, 10, 10}});
  sys.add_atom(0, {1, 1, 1}, {1, 0, 0});
  sys.add_atom(0, {2, 2, 2}, {-1, 0, 0});
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(sys.kinetic_energy(), 39.95, 1e-12);  // 2 * (1/2 m v^2)
}

// --- Heap layout -------------------------------------------------------------

TEST(HeapModelTest, FieldsHaveDistinctAddresses) {
  HeapModel h({.layout = Layout::JavaObjects}, 100);
  std::set<std::uint64_t> addrs;
  for (int i = 0; i < 100; ++i) {
    addrs.insert(h.pos_addr(i));
    addrs.insert(h.vel_addr(i));
    addrs.insert(h.acc_addr(i));
    addrs.insert(h.force_addr(i));
    addrs.insert(h.meta_addr(i));
  }
  EXPECT_EQ(addrs.size(), 500u);
}

TEST(HeapModelTest, JavaObjectsClusterPerAtom) {
  HeapModel h({.layout = Layout::JavaObjects}, 10);
  // Each atom's fields live within one object cluster (atom + 4 Vec3s).
  const std::uint64_t stride = h.meta_addr(1) - h.meta_addr(0);
  EXPECT_EQ(stride, 64u + 4u * 32u);
  EXPECT_LT(h.force_addr(0), h.meta_addr(1));
}

TEST(HeapModelTest, PackedSoAIsContiguousPerField) {
  HeapModel h({.layout = Layout::PackedSoA}, 10);
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_EQ(h.pos_addr(i + 1) - h.pos_addr(i), 24u);
    EXPECT_EQ(h.vel_addr(i + 1) - h.vel_addr(i), 24u);
  }
  // Different fields live in different array lanes.
  EXPECT_GE(h.vel_addr(0), h.pos_addr(9) + 24);
}

TEST(HeapModelTest, ReorderMovesObjectsOnlyWhenAllowed) {
  const int n = 8;
  std::vector<int> reversed(n);
  for (int i = 0; i < n; ++i) reversed[static_cast<std::size_t>(i)] = n - 1 - i;

  HeapModel java({.layout = Layout::JavaObjects}, n);
  const std::uint64_t before = java.pos_addr(0);
  java.reorder(reversed);
  EXPECT_EQ(java.pos_addr(0), before) << "the Java memory manager ignores the request";

  HeapModel re({.layout = Layout::ReorderedObjects}, n);
  const std::uint64_t first_slot = re.pos_addr(0);
  re.reorder(reversed);
  EXPECT_EQ(re.pos_addr(n - 1), first_slot) << "atom n-1 now occupies slot 0";
}

TEST(HeapModelTest, ReorderValidatesPermutation) {
  HeapModel h({.layout = Layout::ReorderedObjects}, 4);
  EXPECT_THROW(h.reorder({0, 1}), ContractError);
  EXPECT_THROW(h.reorder({0, 1, 2, 9}), ContractError);
}

TEST(HeapModelTest, TempAllocationBumpsAndWraps) {
  HeapConfig cfg;
  cfg.heap_bytes = 1;  // forces the minimum 1 MiB young region
  HeapModel h(cfg, 4);
  const std::uint64_t a0 = h.alloc_temp();
  const std::uint64_t a1 = h.alloc_temp();
  EXPECT_EQ(a1 - a0, 32u);
  // Wrap the 1 MiB region: 32768 allocations per wrap.
  for (int i = 0; i < 40000; ++i) h.alloc_temp();
  EXPECT_GE(h.gc_count(), 1);
  EXPECT_EQ(h.temp_allocations(), 2 + 40000);
  EXPECT_EQ(h.take_new_gcs(), h.gc_count());
  EXPECT_EQ(h.take_new_gcs(), 0);
}

TEST(HeapModelTest, NeighborAndPrivateRegionsDisjointFromObjects) {
  HeapModel h({.layout = Layout::JavaObjects}, 50);
  const std::uint64_t last_obj = h.force_addr(49);
  EXPECT_GT(h.neighbor_entry_addr(0), last_obj);
  EXPECT_GT(h.private_force_addr(0, 0), h.neighbor_entry_addr(0));
}

// --- Cell grid ---------------------------------------------------------------

TEST(CellGridTest, GeometryFromReach) {
  CellGrid g({0, 0, 0}, {30, 20, 10}, 5.0);
  EXPECT_EQ(g.nx(), 6);
  EXPECT_EQ(g.ny(), 4);
  EXPECT_EQ(g.nz(), 2);
  EXPECT_EQ(g.n_cells(), 48);
}

TEST(CellGridTest, DegenerateInputsRejected) {
  EXPECT_THROW(CellGrid({0, 0, 0}, {10, 10, 10}, 0.0), ContractError);
  EXPECT_THROW(CellGrid({0, 0, 0}, {0, 10, 10}, 2.0), ContractError);
}

TEST(CellGridTest, EveryAtomBinnedToItsCell) {
  Rng rng(5);
  std::vector<Vec3> pos;
  for (int i = 0; i < 500; ++i) pos.push_back(rng.point_in_box({0, 0, 0}, {30, 30, 30}));
  CellGrid g({0, 0, 0}, {30, 30, 30}, 6.0);
  g.bin(pos);
  EXPECT_EQ(g.n_binned(), 500u);
  int found = 0;
  for (int c = 0; c < g.n_cells(); ++c) {
    for (const int* it = g.cell_begin(c); it != g.cell_end(c); ++it) {
      EXPECT_EQ(g.cell_of(pos[static_cast<std::size_t>(*it)]), c);
      ++found;
    }
  }
  EXPECT_EQ(found, 500);
}

TEST(CellGridTest, NeighborCellCounts) {
  CellGrid g({0, 0, 0}, {30, 30, 30}, 6.0);  // 5x5x5 cells
  int out[27];
  // Corner cell: 2x2x2 neighborhood.
  EXPECT_EQ(g.neighbor_cells(g.cell_of({0.1, 0.1, 0.1}), out), 8);
  // Center cell: full 27.
  EXPECT_EQ(g.neighbor_cells(g.cell_of({15, 15, 15}), out), 27);
  // Face center: 3x3x2 = 18.
  EXPECT_EQ(g.neighbor_cells(g.cell_of({15, 15, 0.1}), out), 18);
}

TEST(CellGridTest, PairsWithinReachAreInAdjacentCells) {
  // The linked-cell invariant behind the whole O(N) scheme.
  Rng rng(7);
  std::vector<Vec3> pos;
  for (int i = 0; i < 300; ++i) pos.push_back(rng.point_in_box({0, 0, 0}, {25, 25, 25}));
  const double reach = 5.0;
  CellGrid g({0, 0, 0}, {25, 25, 25}, reach);
  g.bin(pos);
  int out[27];
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const int ci = g.cell_of(pos[i]);
    const int nc = g.neighbor_cells(ci, out);
    std::set<int> adjacent(out, out + nc);
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (i == j) continue;
      if (distance(pos[i], pos[j]) <= reach) {
        EXPECT_TRUE(adjacent.count(g.cell_of(pos[j])) > 0)
            << "atoms " << i << "," << j << " within reach but not in adjacent cells";
      }
    }
  }
}

TEST(CellGridTest, OutOfBoxPositionsClampToEdgeCells) {
  CellGrid g({0, 0, 0}, {10, 10, 10}, 5.0);
  EXPECT_EQ(g.cell_of({-3, -3, -3}), g.cell_of({0.1, 0.1, 0.1}));
  EXPECT_EQ(g.cell_of({13, 13, 13}), g.cell_of({9.9, 9.9, 9.9}));
}

// --- Neighbor list -----------------------------------------------------------

TEST(NeighborListTest, Validation) {
  EXPECT_THROW(NeighborList(0, 2.0, 0.5), ContractError);
  EXPECT_THROW(NeighborList(10, -1.0, 0.5), ContractError);
  NeighborList nl(10, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(nl.reach(), 2.5);
  EXPECT_EQ(nl.total_entries(), 0u);
}

TEST(NeighborListTest, FillBeyondDeclaredCountThrows) {
  // CSR rows are sized by the count pass; a fill that appends more than the
  // declared count would overrun the next atom's row.
  NeighborList nl(4, 2.0, 0.5);
  const std::vector<Vec3> pos{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  nl.begin_rebuild(pos);
  nl.set_count(0, 2);
  nl.finalize_offsets();
  nl.add_neighbor(0, 1);
  nl.add_neighbor(0, 2);
  EXPECT_THROW(nl.add_neighbor(0, 3), ContractError);
}

TEST(NeighborListTest, SkinTriggerOnAxisDrift) {
  NeighborList nl(2, 3.0, 1.0);
  std::vector<Vec3> pos{{5, 5, 5}, {7, 5, 5}};
  nl.begin_rebuild(pos);
  nl.end_rebuild();
  EXPECT_FALSE(nl.chunk_exceeds_skin(pos, 0, 2));
  // Move one atom by 0.4 in y: under the skin/2 = 0.5 displacement bound.
  pos[1].y += 0.4;
  EXPECT_FALSE(nl.chunk_exceeds_skin(pos, 0, 2));
  pos[1].y += 0.2;  // total 0.6 > 0.5
  EXPECT_TRUE(nl.chunk_exceeds_skin(pos, 0, 2));
  // Chunk that excludes the moved atom stays valid.
  EXPECT_FALSE(nl.chunk_exceeds_skin(pos, 0, 1));
}

TEST(NeighborListTest, SkinTriggerOnDiagonalDrift) {
  // Regression: the check used to compare max |component| against skin/2 (a
  // Chebyshev bound), so a diagonal drift of up to (sqrt(3)/2)*skin — here
  // |(0.35, 0.35, 0.35)| ~= 0.606 > 0.5 — slipped past and the stale list
  // silently dropped pair interactions.  The criterion is Euclidean.
  NeighborList nl(2, 3.0, 1.0);
  std::vector<Vec3> pos{{5, 5, 5}, {7, 5, 5}};
  nl.begin_rebuild(pos);
  nl.end_rebuild();
  pos[1] += Vec3(0.35, 0.35, 0.35);
  EXPECT_TRUE(nl.chunk_exceeds_skin(pos, 0, 2));
  // A diagonal drift inside the Euclidean ball stays valid: |d| ~= 0.43.
  pos[1] = Vec3(7, 5, 5) + Vec3(0.25, 0.25, 0.25);
  EXPECT_FALSE(nl.chunk_exceeds_skin(pos, 0, 2));
}

TEST(NeighborListTest, NeverBuiltAlwaysInvalid) {
  NeighborList nl(2, 3.0, 1.0);
  const std::vector<Vec3> pos{{0, 0, 0}, {1, 0, 0}};
  EXPECT_TRUE(nl.chunk_exceeds_skin(pos, 0, 2));
  EXPECT_FALSE(nl.ever_built());
}

TEST(NeighborListTest, EntryIndexFollowsCsrOffsets) {
  NeighborList nl(3, 2.0, 0.5);
  const std::vector<Vec3> pos{{0, 0, 0}, {0.5, 0, 0}, {1, 0, 0}};
  nl.begin_rebuild(pos);
  nl.set_count(0, 2);
  nl.set_count(1, 3);
  nl.set_count(2, 1);
  nl.finalize_offsets();
  EXPECT_EQ(nl.entry_index(0, 0), 0u);
  EXPECT_EQ(nl.entry_index(0, 1), 1u);
  EXPECT_EQ(nl.entry_index(1, 0), 2u);
  EXPECT_EQ(nl.entry_index(1, 2), 4u);
  EXPECT_EQ(nl.entry_index(2, 0), 5u);
  EXPECT_EQ(nl.total_entries(), 6u);
}

TEST(NeighborListTest, TotalEntriesIsFinalizedDuringBuild) {
  NeighborList nl(2, 2.0, 0.5);
  const std::vector<Vec3> pos{{0, 0, 0}, {1, 0, 0}};
  nl.begin_rebuild(pos);
  nl.set_count(0, 1);
  nl.set_count(1, 0);
  nl.finalize_offsets();
  nl.add_neighbor(0, 1);
  nl.end_rebuild();
  EXPECT_EQ(nl.total_entries(), 1u);
  EXPECT_EQ(nl.count(0), 1);
  EXPECT_EQ(*nl.begin(0), 1);
  // A later, emptier rebuild shrinks the total (grow-only storage, exact
  // accounting).
  const std::vector<Vec3> pos2{{0, 0, 0}, {5, 5, 5}};
  nl.begin_rebuild(pos2);
  nl.set_count(0, 0);
  nl.set_count(1, 0);
  nl.finalize_offsets();
  nl.end_rebuild();
  EXPECT_EQ(nl.total_entries(), 0u);
}

}  // namespace
}  // namespace mwx::md
