// Tests of the trace capture layer: the access streams TraceMem emits, the
// task bracketing, layout-dependent addresses, and the traced-backend
// property sweep (traced == inline physics across thread counts, chunk
// granularities and layouts).
#include <gtest/gtest.h>

#include <set>

#include "md/engine.hpp"
#include "md/layout.hpp"
#include "md/mem_model.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

TEST(TraceMemTest, TaskBracketingRecordsRanges) {
  HeapModel heap({}, 4);
  sim::PhaseWork phase;
  CostTable costs;
  TraceMem mem(costs, heap, phase, TemporariesMode::InPlace);
  mem.open_task(2, /*monitor_updates=*/3);
  mem.read_pos(0);
  mem.write_force(1);
  mem.compute(100.0);
  mem.close_task();
  mem.open_task(0);
  mem.read_vel(3);
  mem.close_task();

  ASSERT_EQ(phase.tasks.size(), 2u);
  EXPECT_EQ(phase.tasks[0].owner, 2);
  EXPECT_EQ(phase.tasks[0].monitor_updates, 3);
  EXPECT_EQ(phase.tasks[0].access_begin, 0u);
  EXPECT_EQ(phase.tasks[0].access_end, 2u);
  EXPECT_DOUBLE_EQ(phase.tasks[0].compute_cycles, 100.0);
  EXPECT_EQ(phase.tasks[1].access_begin, 2u);
  EXPECT_EQ(phase.tasks[1].access_end, 3u);
  ASSERT_EQ(phase.accesses.size(), 3u);
  EXPECT_EQ(phase.accesses[0].addr, heap.pos_addr(0));
  EXPECT_FALSE(phase.accesses[0].write);
  EXPECT_EQ(phase.accesses[1].addr, heap.force_addr(1));
  EXPECT_TRUE(phase.accesses[1].write);
  EXPECT_EQ(phase.accesses[2].addr, heap.vel_addr(3));
}

TEST(TraceMemTest, TempsOnlyInJavaStyle) {
  HeapModel heap_a({}, 4);
  sim::PhaseWork phase_a;
  CostTable costs;
  TraceMem java(costs, heap_a, phase_a, TemporariesMode::JavaStyle);
  java.open_task(0);
  java.temps(5);
  java.close_task();
  EXPECT_EQ(phase_a.accesses.size(), 5u);
  EXPECT_EQ(heap_a.temp_allocations(), 5);
  // Temp allocation cost is charged as compute.
  EXPECT_DOUBLE_EQ(phase_a.tasks[0].compute_cycles, 5 * costs.temp_alloc_cycles);

  HeapModel heap_b({}, 4);
  sim::PhaseWork phase_b;
  TraceMem inplace(costs, heap_b, phase_b, TemporariesMode::InPlace);
  inplace.open_task(0);
  inplace.temps(5);
  inplace.close_task();
  EXPECT_EQ(phase_b.accesses.size(), 0u);
  EXPECT_EQ(heap_b.temp_allocations(), 0);
}

TEST(TraceMemTest, LayoutsProduceDifferentAddressStreams) {
  CostTable costs;
  auto addresses_for = [&](Layout layout) {
    HeapModel heap({.layout = layout}, 8);
    sim::PhaseWork phase;
    TraceMem mem(costs, heap, phase, TemporariesMode::InPlace);
    mem.open_task(0);
    for (int i = 0; i < 8; ++i) mem.read_pos(i);
    mem.close_task();
    std::vector<std::uint64_t> addrs;
    for (const auto& a : phase.accesses) addrs.push_back(a.addr);
    return addrs;
  };
  const auto java = addresses_for(Layout::JavaObjects);
  const auto soa = addresses_for(Layout::PackedSoA);
  ASSERT_EQ(java.size(), soa.size());
  EXPECT_NE(java, soa);
  // SoA positions are 24 bytes apart; JavaObjects are an object cluster apart.
  EXPECT_EQ(soa[1] - soa[0], 24u);
  EXPECT_EQ(java[1] - java[0], 64u + 4u * 32u);
}

TEST(TraceMemTest, AllocationTrackerSeesTemps) {
  HeapModel heap({}, 4);
  sim::PhaseWork phase;
  CostTable costs;
  perf::AllocationTracker tracker(2);
  const int vec3 = tracker.register_type("Vec3", 32);
  TraceMem mem(costs, heap, phase, TemporariesMode::JavaStyle, &tracker, vec3);
  mem.open_task(1);
  mem.temps(4);
  mem.close_task();
  EXPECT_EQ(tracker.report(vec3).total_allocated, 4);
  EXPECT_EQ(tracker.live_by_thread(vec3, 1), 4);  // attributed to the owner
}

// --- Traced-vs-inline property sweep ----------------------------------------

struct SweepParam {
  int threads;
  int chunks;
  Layout layout;
  sim::Assignment assignment;
};

class BackendSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BackendSweep, TracedPhysicsEqualsInline) {
  const SweepParam p = GetParam();

  auto make = [&](int threads) {
    auto sys = workloads::make_lj_gas(120, 0.012, 140.0, 31);
    EngineConfig cfg;
    cfg.n_threads = threads;
    cfg.chunks_per_thread = p.chunks;
    cfg.assignment = p.assignment;
    cfg.heap.layout = p.layout;
    cfg.dt_fs = 1.0;
    return Engine(std::move(sys), cfg);
  };

  // Same decomposition for both backends: chunk boundaries fix the FP
  // summation order, so inline and traced must agree bitwise.
  Engine reference = make(p.threads);
  reference.run_inline(8);

  Engine traced = make(p.threads);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = p.threads;
  sim::Machine machine(mc);
  traced.run_simulated(machine, 8);

  for (int i = 0; i < reference.system().n_atoms(); ++i) {
    ASSERT_EQ(reference.system().positions()[static_cast<std::size_t>(i)],
              traced.system().positions()[static_cast<std::size_t>(i)])
        << "atom " << i << " differs (threads=" << p.threads << " chunks=" << p.chunks
        << ")";
  }
  EXPECT_EQ(reference.total_energy(), traced.total_energy());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendSweep,
    ::testing::Values(SweepParam{1, 1, Layout::JavaObjects, sim::Assignment::Static},
                      SweepParam{2, 1, Layout::JavaObjects, sim::Assignment::Static},
                      SweepParam{4, 1, Layout::PackedSoA, sim::Assignment::Static},
                      SweepParam{4, 4, Layout::JavaObjects, sim::Assignment::Static},
                      SweepParam{3, 2, Layout::ReorderedObjects, sim::Assignment::Static},
                      SweepParam{4, 2, Layout::JavaObjects, sim::Assignment::SharedQueue},
                      SweepParam{8, 1, Layout::JavaObjects, sim::Assignment::Static}));

TEST(TracedMachineTest, MonitorUpdatesReachTheMachine) {
  auto sys = workloads::make_lj_gas(60, 0.012, 140.0, 3);
  EngineConfig cfg;
  cfg.n_threads = 4;
  cfg.monitor_updates_per_task = 20;
  Engine eng(std::move(sys), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 4;
  sim::Machine machine(mc);
  eng.run_simulated(machine, 3);
  EXPECT_GT(machine.counters().monitor_wait_cycles, 0.0);
}

TEST(TracedMachineTest, ReorderOnRebuildRunsWithoutChangingPhysics) {
  auto run_with = [&](bool reorder) {
    auto sys = workloads::make_lj_gas(100, 0.012, 200.0, 5);
    EngineConfig cfg;
    cfg.n_threads = 2;
    cfg.heap.layout = Layout::ReorderedObjects;
    cfg.reorder_on_rebuild = reorder;
    Engine eng(std::move(sys), cfg);
    sim::MachineConfig mc;
    mc.spec = topo::core_i7_920();
    mc.sched.noise_bursts_per_second = 0.0;
    mc.n_threads = 2;
    sim::Machine machine(mc);
    eng.run_simulated(machine, 10);
    return eng.total_energy();
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST(TracedMachineTest, EventLogTagsMatchPhases) {
  auto sys = workloads::make_lj_gas(60, 0.012, 140.0, 3);
  EngineConfig cfg;
  cfg.n_threads = 2;
  Engine eng(std::move(sys), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 2;
  sim::Machine machine(mc);
  eng.run_simulated(machine, 2);
  std::set<int> tags;
  for (int t = 0; t < 2; ++t) {
    for (const auto& e : machine.event_log().events_of(t)) tags.insert(e.tag);
  }
  EXPECT_TRUE(tags.count(kPhasePredictor));
  EXPECT_TRUE(tags.count(kPhaseCheck));
  EXPECT_TRUE(tags.count(kPhaseForces));
  EXPECT_TRUE(tags.count(kPhaseReduce));
  EXPECT_TRUE(tags.count(kPhaseCorrector));
}

}  // namespace
}  // namespace mwx::md
