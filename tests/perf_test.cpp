#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "perf/alloc_tracker.hpp"
#include "perf/event_log.hpp"
#include "perf/monitor.hpp"
#include "perf/sampling_profiler.hpp"
#include "perf/scoped_timer.hpp"

namespace mwx::perf {
namespace {

TEST(JamonMonitorTest, AggregatesPerKey) {
  JamonMonitor m;
  m.add("phase.1", 0.5);
  m.add("phase.1", 1.5);
  m.add("phase.2", 2.0);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].key, "phase.1");
  EXPECT_EQ(snap[0].hits, 2);
  EXPECT_DOUBLE_EQ(snap[0].total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(snap[0].mean_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(snap[0].min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(snap[0].max_seconds, 1.5);
  EXPECT_EQ(m.total_hits(), 3);
}

TEST(JamonMonitorTest, ThreadSafeUnderContention) {
  JamonMonitor m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) m.add("hot", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.total_hits(), 4000);
}

TEST(ShardedMonitorTest, MergesShardsOnSnapshot) {
  ShardedMonitor m(3);
  m.add(0, "k", 1.0);
  m.add(1, "k", 2.0);
  m.add(2, "k", 3.0);
  m.add(1, "other", 5.0);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].key, "k");
  EXPECT_EQ(snap[0].hits, 3);
  EXPECT_DOUBLE_EQ(snap[0].total_seconds, 6.0);
  EXPECT_DOUBLE_EQ(snap[0].min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].max_seconds, 3.0);
}

TEST(ShardedMonitorTest, MatchesJamonTotals) {
  JamonMonitor jamon;
  ShardedMonitor sharded(2);
  for (int i = 0; i < 50; ++i) {
    const double v = 0.01 * i;
    jamon.add("x", v);
    sharded.add(i % 2, "x", v);
  }
  const auto a = jamon.snapshot();
  const auto b = sharded.snapshot();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].hits, b[0].hits);
  EXPECT_NEAR(a[0].total_seconds, b[0].total_seconds, 1e-12);
}

TEST(EventLogTest, RecordsAndSpans) {
  EventLog log(2);
  log.record(0, 1, 0.0, 1.0);
  log.record(0, 2, 2.0, 3.0);
  log.record(1, 1, 0.5, 2.5);
  EXPECT_EQ(log.total_events(), 3u);
  const auto [lo, hi] = log.span();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(EventLogTest, BusyInWindow) {
  EventLog log(1);
  log.record(0, 1, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(log.busy_in(0, 0.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(log.busy_in(0, 2.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(log.busy_in(0, 3.5, 4.0), 0.0);
}

TEST(EventLogTest, StateAtTime) {
  EventLog log(1);
  log.record(0, 7, 1.0, 2.0);
  log.record(0, 8, 3.0, 4.0);
  EXPECT_EQ(log.at(0, 0.5), nullptr);
  ASSERT_NE(log.at(0, 1.5), nullptr);
  EXPECT_EQ(log.at(0, 1.5)->tag, 7);
  EXPECT_EQ(log.at(0, 2.5), nullptr);
  ASSERT_NE(log.at(0, 3.0), nullptr);
  EXPECT_EQ(log.at(0, 3.0)->tag, 8);
  EXPECT_EQ(log.at(0, 4.0), nullptr);  // end is exclusive
}

TEST(EventLogTest, BusyPerThread) {
  EventLog log(3);
  log.record(0, 1, 0.0, 1.0);
  log.record(2, 1, 0.0, 4.0);
  const auto busy = log.busy_per_thread();
  ASSERT_EQ(busy.size(), 3u);
  EXPECT_DOUBLE_EQ(busy[0], 1.0);
  EXPECT_DOUBLE_EQ(busy[1], 0.0);
  EXPECT_DOUBLE_EQ(busy[2], 4.0);
}

TEST(EventLogTest, ClearResets) {
  EventLog log(1);
  log.record(0, 1, 0.0, 1.0);
  log.clear();
  EXPECT_EQ(log.total_events(), 0u);
}

// --- Sampling profiler: the Section IV-B granularity study in miniature ----

// Ground truth: thread 0 busy [0,10), thread 1 busy [0,5) — 2x imbalance.
EventLog make_imbalanced_log() {
  EventLog log(2);
  log.record(0, 1, 0.0, 10.0);
  log.record(1, 1, 0.0, 5.0);
  return log;
}

TEST(SamplingTest, FinePeriodRecoversTruth) {
  const EventLog log = make_imbalanced_log();
  const SamplingReport r = sample(log, 0.01);
  EXPECT_NEAR(r.threads[0].displayed_busy_seconds, 10.0, 0.1);
  EXPECT_NEAR(r.threads[1].displayed_busy_seconds, 5.0, 0.1);
  EXPECT_NEAR(r.displayed_imbalance(), r.true_imbalance(), 0.05);
}

TEST(SamplingTest, CoarsePeriodDistortsImbalance) {
  // Many short alternating tasks; a 1 s sampler cannot resolve them.
  EventLog log(2);
  // Thread 0: busy 80 µs every 200 µs;  thread 1: busy 120 µs every 200 µs.
  for (int k = 0; k < 5000; ++k) {
    const double t = k * 200e-6;
    log.record(0, 1, t, t + 80e-6);
    log.record(1, 1, t, t + 120e-6);
  }
  const SamplingReport fine = sample(log, 5e-6);
  const SamplingReport coarse = sample(log, 1.0);
  // Fine sampling sees the 1.2:0.8 imbalance; the 1 s sampler takes exactly
  // one sample over the whole 1 s run and reports garbage.
  EXPECT_NEAR(fine.true_imbalance(), 1.2, 0.01);
  EXPECT_NEAR(fine.displayed_imbalance(), 1.2, 0.05);
  EXPECT_LE(coarse.threads[0].samples_total, 2);
  EXPECT_GT(coarse.worst_relative_error(), 0.5);
}

TEST(SamplingTest, SamplePeriodValidation) {
  const EventLog log = make_imbalanced_log();
  EXPECT_THROW(sample(log, 0.0), ContractError);
  EXPECT_THROW(sample(log, 0.1, 0.2), ContractError);
}

TEST(SamplingTest, DisplayedBusySecondsClampToLogSpan) {
  // One thread busy for exactly [0, 1) sampled at 0.4 s: samples at 0, 0.4
  // and 0.8 are all busy.  Sample-and-hold used to credit a full period to
  // the final window (3 * 0.4 = 1.2 displayed busy seconds out of a 1.0 s
  // log); the last window must be clamped to the span.
  EventLog log(1);
  log.record(0, 1, 0.0, 1.0);
  const SamplingReport r = sample(log, 0.4);
  EXPECT_EQ(r.threads[0].samples_busy, 3);
  EXPECT_DOUBLE_EQ(r.threads[0].displayed_busy_seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.threads[0].true_busy_seconds, 1.0);
}

TEST(SamplingTest, CountFalseWindowsValidatesOffset) {
  // sample() rejects offsets outside [0, period); count_false_windows used
  // to skip the check — an offset >= period silently skipped whole windows
  // and an offset below zero sampled before the log began.
  const EventLog log = make_imbalanced_log();
  EXPECT_THROW(count_false_windows(log, 0, 0.1, 0.5, 0.1), ContractError);
  EXPECT_THROW(count_false_windows(log, 0, 0.1, 0.5, -0.05), ContractError);
  EXPECT_NO_THROW(count_false_windows(log, 0, 0.1, 0.5, 0.05));
}

TEST(SamplingTest, FalseWindowsAppearAtCoarsePeriods) {
  // Thread busy only 10% of each 10 ms interval, right at the sample point:
  // sample-and-hold displays "busy" for windows that are 90% idle.
  EventLog log(1);
  for (int k = 0; k < 100; ++k) {
    const double t = k * 10e-3;
    log.record(0, 1, t, t + 1e-3);
  }
  const auto [t0, t1] = log.span();
  const long long false_coarse = count_false_windows(log, 0, 10e-3);
  const long long windows_coarse = static_cast<long long>((t1 - t0) / 10e-3);
  EXPECT_GT(false_coarse, windows_coarse / 2);
  // At a fine period false windows still occur (every busy/idle transition
  // clips one window — the artifact never fully disappears) but their
  // *fraction* collapses.
  const long long false_fine = count_false_windows(log, 0, 50e-6);
  const long long windows_fine = static_cast<long long>((t1 - t0) / 50e-6);
  EXPECT_LT(static_cast<double>(false_fine) / static_cast<double>(windows_fine), 0.05);
  EXPECT_GT(static_cast<double>(false_coarse) / static_cast<double>(windows_coarse),
            static_cast<double>(false_fine) / static_cast<double>(windows_fine));
}

TEST(AllocTrackerTest, CountsLiveAndTotal) {
  AllocationTracker t(2);
  const int vec3 = t.register_type("Vec3", 32);
  t.on_alloc(vec3, 0);
  t.on_alloc(vec3, 1);
  t.on_alloc(vec3, 1);
  t.on_free(vec3, 1);
  const auto r = t.report(vec3);
  EXPECT_EQ(r.live_count, 2);
  EXPECT_EQ(r.total_allocated, 3);
  EXPECT_EQ(r.live_bytes(), 64);
}

TEST(AllocTrackerTest, PerThreadAttribution) {
  AllocationTracker t(2);
  const int vec3 = t.register_type("Vec3", 32);
  t.on_alloc(vec3, 0);
  t.on_alloc(vec3, 1);
  t.on_alloc(vec3, 1);
  EXPECT_EQ(t.live_by_thread(vec3, 0), 1);
  EXPECT_EQ(t.live_by_thread(vec3, 1), 2);
}

TEST(AllocTrackerTest, GarbageCollectionZerosLive) {
  AllocationTracker t(1);
  const int vec3 = t.register_type("Vec3", 32);
  for (int i = 0; i < 10; ++i) t.on_alloc(vec3, 0);
  t.collect_garbage();
  EXPECT_EQ(t.report(vec3).live_count, 0);
  EXPECT_EQ(t.report(vec3).total_allocated, 10);
}

TEST(AllocTrackerTest, LiveBytesFraction) {
  AllocationTracker t(1);
  const int vec3 = t.register_type("Vec3", 32);
  const int atom = t.register_type("Atom", 160);
  for (int i = 0; i < 100; ++i) t.on_alloc(vec3, 0);  // 3200 bytes
  for (int i = 0; i < 10; ++i) t.on_alloc(atom, 0);   // 1600 bytes
  EXPECT_NEAR(t.live_bytes_fraction(vec3), 3200.0 / 4800.0, 1e-12);
  t.collect_garbage();
  EXPECT_DOUBLE_EQ(t.live_bytes_fraction(vec3), 0.0);
}

TEST(AllocTrackerTest, UnknownThreadMapsToLaneZero) {
  AllocationTracker t(2);
  const int id = t.register_type("X", 8);
  t.on_alloc(id, -1);
  EXPECT_EQ(t.live_by_thread(id, 0), 1);
}

TEST(ScopedTimerTest, ReportsElapsed) {
  double seen = -1.0;
  {
    ScopedTimer timer([&](double s) { seen = s; });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(seen, 0.001);
  EXPECT_LT(seen, 1.0);
}

TEST(StopWatchTest, MonotonicAndResets) {
  StopWatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double a = w.elapsed_seconds();
  EXPECT_GT(a, 0.0);
  w.reset();
  EXPECT_LT(w.elapsed_seconds(), a);
}

}  // namespace
}  // namespace mwx::perf
