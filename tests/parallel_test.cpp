#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/affinity.hpp"
#include "parallel/barrier.hpp"
#include "parallel/latch.hpp"
#include "parallel/task_queue.hpp"
#include "parallel/thread_pool.hpp"

namespace mwx::parallel {
namespace {

TEST(LatchTest, CountsDownToZero) {
  CountDownLatch latch(3);
  EXPECT_EQ(latch.count(), 3);
  latch.count_down();
  latch.count_down();
  EXPECT_EQ(latch.count(), 1);
  latch.count_down();
  EXPECT_EQ(latch.count(), 0);
  latch.await();  // returns immediately at zero
}

TEST(LatchTest, ZeroLatchAwaitsImmediately) {
  CountDownLatch latch(0);
  latch.await();
}

TEST(LatchTest, BelowZeroThrows) {
  CountDownLatch latch(1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), ContractError);
}

TEST(LatchTest, NegativeCountRejected) { EXPECT_THROW(CountDownLatch{-1}, ContractError); }

TEST(LatchTest, CrossThreadRelease) {
  CountDownLatch latch(2);
  std::atomic<int> done{0};
  std::thread t1([&] {
    ++done;
    latch.count_down();
  });
  std::thread t2([&] {
    ++done;
    latch.count_down();
  });
  latch.await();
  EXPECT_EQ(done.load(), 2);
  t1.join();
  t2.join();
}

TEST(BarrierTest, SinglePartyPassesThrough) {
  CyclicBarrier b(1);
  EXPECT_EQ(b.arrive_and_wait(), 0);
  EXPECT_EQ(b.generation(), 1u);
  EXPECT_EQ(b.arrive_and_wait(), 0);
  EXPECT_EQ(b.generation(), 2u);
}

TEST(BarrierTest, InvalidPartiesRejected) { EXPECT_THROW(CyclicBarrier{0}, ContractError); }

TEST(BarrierTest, ReleasesAllParties) {
  constexpr int kThreads = 4;
  CyclicBarrier barrier(kThreads);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ++before;
      barrier.arrive_and_wait();
      ++after;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(before.load(), kThreads);
  EXPECT_EQ(after.load(), kThreads);
  EXPECT_EQ(barrier.generation(), 1u);
}

TEST(BarrierTest, OnTripRunsOncePerGeneration) {
  constexpr int kThreads = 3;
  constexpr int kRounds = 5;
  std::atomic<int> trips{0};
  CyclicBarrier barrier(kThreads, [&] { ++trips; });
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) barrier.arrive_and_wait();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trips.load(), kRounds);
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kRounds));
}

TEST(BarrierTest, ReusableAcrossManyGenerations) {
  CyclicBarrier barrier(2);
  std::thread partner([&] {
    for (int r = 0; r < 100; ++r) barrier.arrive_and_wait();
  });
  for (int r = 0; r < 100; ++r) barrier.arrive_and_wait();
  partner.join();
  EXPECT_EQ(barrier.generation(), 100u);
}

TEST(TaskQueueTest, FifoOrder) {
  TaskQueue q;
  std::vector<int> order;
  q.push([&] { order.push_back(1); });
  q.push([&] { order.push_back(2); });
  q.push([&] { order.push_back(3); });
  EXPECT_EQ(q.size(), 3u);
  while (auto t = q.try_pop()) (*t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TaskQueueTest, CloseDrainsThenSignals) {
  TaskQueue q;
  q.push([] {});
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push([] {}));  // rejected after close
  EXPECT_TRUE(q.pop().has_value());   // pending task still drains
  EXPECT_FALSE(q.pop().has_value());  // then empty-closed
}

TEST(TaskQueueTest, PopBlocksUntilPush) {
  TaskQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto t = q.pop();
    got = t.has_value();
  });
  q.push([] {});
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(TaskQueueTest, MpmcStress) {
  TaskQueue q;
  constexpr int kProducers = 4, kPerProducer = 500;
  std::atomic<int> executed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.push([&] { ++executed; });
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto t = q.pop()) (*t)();
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(executed.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(FixedThreadPool({.n_threads = 0}), ContractError);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  FixedThreadPool pool({.n_threads = 3});
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.quiesce();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, PerThreadQueuesRouteToOwner) {
  FixedThreadPool pool({.n_threads = 4, .queue_mode = QueueMode::PerThread});
  std::atomic<int> wrong{0};
  CountDownLatch latch(4);
  for (int w = 0; w < 4; ++w) {
    pool.submit_to(w, [&, w] {
      if (FixedThreadPool::current_worker() != w) ++wrong;
      latch.count_down();
    });
  }
  latch.await();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(ThreadPoolTest, CurrentWorkerOutsidePoolIsMinusOne) {
  EXPECT_EQ(FixedThreadPool::current_worker(), -1);
}

TEST(ThreadPoolTest, RunChunkedCoversRangeExactlyOnce) {
  FixedThreadPool pool({.n_threads = 4});
  constexpr int kN = 1003;
  std::vector<std::atomic<int>> hits(kN);
  pool.run_chunked(kN, [&](int b, int e, int) {
    for (int i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ThreadPoolTest, RunChunkedPassesWorkerIds) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = QueueMode::PerThread});
  std::vector<int> worker_of_chunk(3, -1);
  pool.run_chunked(3, [&](int b, int, int w) { worker_of_chunk[static_cast<std::size_t>(b)] = w; });
  // With 3 items and 3 workers each worker gets exactly one unit chunk.
  std::vector<int> sorted = worker_of_chunk;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, SubmitToOutOfRangeThrows) {
  FixedThreadPool pool({.n_threads = 2});
  EXPECT_THROW(pool.submit_to(5, [] {}), ContractError);
  EXPECT_THROW(pool.submit_to(-1, [] {}), ContractError);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  FixedThreadPool pool({.n_threads = 2});
  pool.submit([] {});
  pool.shutdown();
  pool.shutdown();
}

TEST(ThreadPoolTest, QuiesceWaitsForAllWork) {
  FixedThreadPool pool({.n_threads = 2});
  std::atomic<int> slow_done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++slow_done;
    });
  }
  pool.quiesce();
  EXPECT_EQ(slow_done.load(), 8);
}

TEST(ThreadPoolTest, WorkStealingExecutesAllTasks) {
  FixedThreadPool pool({.n_threads = 4, .queue_mode = QueueMode::WorkStealing});
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&] { ++count; });
  pool.quiesce();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.failed_tasks(), 0);
}

TEST(ThreadPoolTest, WorkStealingSubmitToIsAPreference) {
  // Everything lands in worker 0's inbox; idle peers must steal the backlog
  // rather than let it strand — the whole point of the third discipline.
  FixedThreadPool pool({.n_threads = 4, .queue_mode = QueueMode::WorkStealing});
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit_to(0, [&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++count;
    });
  }
  pool.quiesce();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GT(pool.steals(), 0);
}

TEST(ThreadPoolTest, WorkStealingNestedSubmitRuns) {
  // A worker submitting from inside a task pushes onto its own deque.
  FixedThreadPool pool({.n_threads = 2, .queue_mode = QueueMode::WorkStealing});
  std::atomic<int> count{0};
  pool.submit([&] {
    ++count;
    pool.submit([&] { ++count; });
  });
  pool.quiesce();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, WorkStealingShutdownDrainsQueuedWork) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = QueueMode::WorkStealing});
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ConcurrentShutdownJoinsExactlyOnce) {
  // shutdown() used to check-and-set a plain bool: two concurrent callers
  // (e.g. an explicit shutdown racing the destructor) could both run the
  // teardown and double-join the workers.  The atomic exchange makes one
  // caller win, and every caller must block until the workers are joined.
  for (int round = 0; round < 20; ++round) {
    FixedThreadPool pool({.n_threads = 4, .queue_mode = QueueMode::WorkStealing});
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) callers.emplace_back([&pool] { pool.shutdown(); });
    for (auto& t : callers) t.join();
    // Every caller returned only after the drain: queued work is complete.
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, WorkStealingSubmitRacingShutdownNeverLosesTasks) {
  // Workers respawning work through the lock-free owner-push path while an
  // external thread shuts the pool down: every submission must either run
  // (owner pushes land on an open deque and are drained) or throw (inbox
  // closed) — a task that silently vanishes would corrupt the
  // submitted_/taken_ accounting and hang a later quiesce or shutdown.
  for (int round = 0; round < 10; ++round) {
    FixedThreadPool pool({.n_threads = 4, .queue_mode = QueueMode::WorkStealing});
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::atomic<int> budget{2000};
    std::function<void()> task = [&] {
      ++executed;
      if (budget.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
      // Mix owner pushes (own index) with inbox routes (peer index).
      const int self = FixedThreadPool::current_worker();
      const int target = executed.load(std::memory_order_relaxed) % 2 == 0
                             ? self
                             : (self + 1) % 4;
      try {
        pool.submit_to(target, task);
        ++accepted;
      } catch (const ContractError&) {
        ++rejected;
      }
    };
    int seeded = 0;
    for (int i = 0; i < 16; ++i) {
      try {
        pool.submit(task);
        ++seeded;
      } catch (const ContractError&) {
      }
    }
    pool.shutdown();  // races the in-flight respawns
    // shutdown() returns only after the workers drained and joined, so every
    // accepted submission has executed: run-or-throw, nothing vanished.
    EXPECT_EQ(executed.load(), seeded + accepted.load());
    EXPECT_GE(rejected.load(), 0);
  }
}

class QueueModes : public ::testing::TestWithParam<QueueMode> {};

TEST_P(QueueModes, SubmitAfterShutdownThrows) {
  // A silently dropped task would leave a later quiesce() waiting forever,
  // so a rejected submission must be loud.
  FixedThreadPool pool({.n_threads = 2, .queue_mode = GetParam()});
  pool.submit([] {});
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), ContractError);
  EXPECT_THROW(pool.submit_to(1, [] {}), ContractError);
  // The failed submissions must not be counted as pending work.
  pool.quiesce();
}

TEST_P(QueueModes, AllModesExecuteSubmitTo) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = GetParam()});
  std::atomic<int> count{0};
  for (int i = 0; i < 90; ++i) pool.submit_to(i % 3, [&] { ++count; });
  pool.quiesce();
  EXPECT_EQ(count.load(), 90);
}

INSTANTIATE_TEST_SUITE_P(AllQueueModes, QueueModes,
                         ::testing::Values(QueueMode::Single, QueueMode::PerThread,
                                           QueueMode::WorkStealing));

TEST(ThreadPoolTest, PinnedPoolStillExecutes) {
  // Pinning may fail on restricted hosts; work must complete regardless.
  FixedThreadPool pool({.n_threads = 2,
                        .queue_mode = QueueMode::Single,
                        .pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({0})}});
  std::atomic<int> n{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++n; });
  pool.quiesce();
  EXPECT_EQ(n.load(), 10);
}

TEST(AffinityTest, OnlinePusPositive) { EXPECT_GE(online_pus(), 1); }

TEST(AffinityTest, CurrentCpuWithinRange) {
  const int cpu = current_cpu();
#if defined(__linux__)
  EXPECT_GE(cpu, 0);
#else
  EXPECT_EQ(cpu, -1);
#endif
}

TEST(AffinityTest, PinToCpuZero) {
#if defined(__linux__)
  const topo::CpuSet before = current_affinity();
  EXPECT_TRUE(pin_current_thread_to(0));
  EXPECT_TRUE(current_affinity().test(0));
  EXPECT_EQ(current_affinity().count(), 1);
  // Restore.
  if (!before.empty()) pin_current_thread(before);
#endif
}

TEST(AffinityTest, EmptyMaskFails) { EXPECT_FALSE(pin_current_thread(topo::CpuSet{})); }

TEST(AffinityTest, NonexistentPuFails) {
  EXPECT_FALSE(pin_current_thread(topo::CpuSet::of({200})));
}

// --- round-robin wraparound regressions --------------------------------------
// The cursor was std::atomic<int>: after 2^31 submissions fetch_add wrapped
// negative, `% n_threads` went non-positive, and submit_to's range check
// killed the pool mid-run.  seed_round_robin() plants the cursor just short
// of the old wrap point so a handful of submissions crosses it.

TEST(ThreadPoolTest, RoundRobinSurvivesInt32Wrap) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = QueueMode::PerThread});
  pool.seed_round_robin((1ull << 31) - 2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  pool.quiesce();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.failed_tasks(), 0);
}

TEST(ThreadPoolTest, RoundRobinSurvivesUint64Wrap) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = QueueMode::WorkStealing});
  pool.seed_round_robin(std::numeric_limits<std::uint64_t>::max() - 2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  pool.quiesce();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.failed_tasks(), 0);
}

// --- failure diagnostics ------------------------------------------------------

TEST(ThreadPoolTest, LastErrorKeepsFirstFailureMessage) {
  FixedThreadPool pool({.n_threads = 1});
  EXPECT_EQ(pool.last_error(), "");
  pool.submit([] { throw std::runtime_error("root cause"); });
  pool.quiesce();
  pool.submit([] { throw std::runtime_error("cascade"); });
  pool.quiesce();
  EXPECT_EQ(pool.failed_tasks(), 2);
  EXPECT_EQ(pool.last_error(), "root cause");
}

TEST(ThreadPoolTest, NonStdExceptionFailureIsRecorded) {
  FixedThreadPool pool({.n_threads = 1});
  pool.submit([] { throw 42; });
  pool.quiesce();
  EXPECT_EQ(pool.failed_tasks(), 1);
  EXPECT_EQ(pool.last_error(), "unknown exception");
}

// --- JobHandle: per-job completion, errors, isolation -------------------------

TEST(JobHandleTest, TracksOwnSubmissionsOnly) {
  FixedThreadPool pool({.n_threads = 2, .queue_mode = QueueMode::WorkStealing});
  JobHandle job;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++ran; }, job);
  job.wait();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(job.submitted(), 10);
  EXPECT_EQ(job.completed(), 10);
  EXPECT_EQ(job.failed(), 0);
  EXPECT_TRUE(job.ok());
  EXPECT_EQ(job.error(), "");
}

TEST(JobHandleTest, FailurePropagatesFirstMessage) {
  FixedThreadPool pool({.n_threads = 2});
  JobHandle job;
  pool.submit([] { throw std::runtime_error("job-level failure"); }, job);
  pool.submit([] {}, job);
  job.wait();
  EXPECT_FALSE(job.ok());
  EXPECT_EQ(job.failed(), 1);
  EXPECT_EQ(job.completed(), 2);  // failed tasks still complete the job
  EXPECT_EQ(job.error(), "job-level failure");
  // The pool-wide backstop sees it too.
  pool.quiesce();
  EXPECT_EQ(pool.failed_tasks(), 1);
  EXPECT_EQ(pool.last_error(), "job-level failure");
}

// The quiesce() starvation fix: one client's wait must terminate while a
// second client keeps the shared pool continuously busy.  (JobHandle.wait()
// counts only its own tasks; pool.quiesce() counts everyone's and would spin
// here until the churner stops.)
TEST(JobHandleTest, WaitTerminatesWhileAnotherClientKeepsSubmitting) {
  FixedThreadPool pool({.n_threads = 2, .queue_mode = QueueMode::WorkStealing});
  std::atomic<bool> churn{true};
  std::thread churner([&] {
    JobHandle background;
    while (churn.load(std::memory_order_relaxed)) {
      pool.submit([] { std::this_thread::yield(); }, background);
      std::this_thread::yield();
    }
    background.wait();
  });

  // The foreground tenant's job must finish despite the endless background
  // stream — this deadlocked by construction when phases used quiesce().
  for (int round = 0; round < 20; ++round) {
    JobHandle job;
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; }, job);
    job.wait();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_TRUE(job.ok());
  }
  churn.store(false);
  churner.join();
  pool.quiesce();
}

TEST(JobHandleTest, RunChunkedJobOverloadCoversRange) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = QueueMode::PerThread});
  JobHandle job;
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunked(
      100, [&](int begin, int end, int) {
        for (int i = begin; i < end; ++i) ++hits[static_cast<std::size_t>(i)];
      },
      job);
  EXPECT_TRUE(job.ok());
  EXPECT_EQ(job.completed(), 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Pools compose: a worker of pool A submitting a job to pool B and waiting
// on it must not deadlock (B's workers are independent of A's).
TEST(JobHandleTest, NestedCrossPoolSubmissionCompletes) {
  FixedThreadPool pool_a({.n_threads = 2, .queue_mode = QueueMode::WorkStealing});
  FixedThreadPool pool_b({.n_threads = 2, .queue_mode = QueueMode::WorkStealing});
  JobHandle outer;
  std::atomic<int> inner_ran{0};
  pool_a.submit(
      [&] {
        JobHandle inner;
        for (int i = 0; i < 4; ++i) pool_b.submit([&] { ++inner_ran; }, inner);
        inner.wait();
        EXPECT_TRUE(inner.ok());
      },
      outer);
  outer.wait();
  EXPECT_TRUE(outer.ok());
  EXPECT_EQ(inner_ran.load(), 4);
}

TEST_P(QueueModes, JobScopedSubmitToRunsEverywhere) {
  FixedThreadPool pool({.n_threads = 3, .queue_mode = GetParam()});
  JobHandle job;
  std::atomic<int> ran{0};
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 5; ++i) pool.submit_to(w, [&] { ++ran; }, job);
  }
  job.wait();
  EXPECT_EQ(ran.load(), 15);
  EXPECT_TRUE(job.ok());
}

}  // namespace
}  // namespace mwx::parallel
