// Analytical expectations for the machine model: configurations simple
// enough that the correct timing can be computed by hand, pinning down the
// simulator's arithmetic (not just its qualitative behaviour).
#include <gtest/gtest.h>

#include "md/engine.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::sim {
namespace {

MachineConfig quiet(int threads) {
  MachineConfig c;
  c.spec = topo::core_i7_920();
  c.sched.noise_bursts_per_second = 0.0;
  c.n_threads = threads;
  return c;
}

TEST(MachineAnalyticTest, PureComputePhaseDuration) {
  // One thread, one task of exactly C cycles: duration must be
  // wake + dispatch + pop + C + barrier, all known constants.
  MachineConfig c = quiet(1);
  Machine m(c);
  PhaseWork w;
  w.tag = 1;
  const double compute = 5e5;
  w.tasks.push_back({0, compute, 0, 0, 0});
  const auto r = m.run_phase(w);
  // Dispatch (60 cycles for one task) overlaps the worker's wake latency
  // (3000 cycles), so it does not appear in the critical path.
  const double expected_cycles = c.cost.wake_latency_cycles +
                                 c.cost.queue_uncontended_cycles + compute +
                                 c.cost.barrier_cycles;
  EXPECT_NEAR(r.duration_seconds() * c.spec.ghz * 1e9, expected_cycles,
              expected_cycles * 1e-9);
}

TEST(MachineAnalyticTest, CacheHitLatencyAccounting) {
  // Touch one line twice: first access pays L1+L2+L3 latency plus DRAM
  // stall; second pays exactly the L1 hit latency.
  MachineConfig c = quiet(1);
  Machine m(c);
  PhaseWork w;
  w.tag = 1;
  SimTask t;
  t.owner = 0;
  t.access_begin = 0;
  w.accesses.push_back({0x1000, false});
  w.accesses.push_back({0x1000, false});
  t.access_end = 2;
  w.tasks.push_back(t);
  const auto r = m.run_phase(w);
  const auto* l1 = c.spec.find_level(1);
  const auto* l2 = c.spec.find_level(2);
  const auto* l3 = c.spec.find_level(3);
  const double miss_cost = l1->hit_latency_cycles + l2->hit_latency_cycles +
                           l3->hit_latency_cycles +
                           c.spec.memory.dram_latency_cycles / c.cost.mlp;
  const double expected_busy = miss_cost + l1->hit_latency_cycles;
  EXPECT_NEAR(r.busy_seconds[0] * c.spec.ghz * 1e9, expected_busy, 1e-6);
  EXPECT_EQ(m.counters().l1.hits, 1);
  EXPECT_EQ(m.counters().l1.misses, 1);
  EXPECT_EQ(m.counters().dram_line_fetches, 1);
}

TEST(MachineAnalyticTest, MonitorSerializationExactLowerBound) {
  // N threads each doing U monitor updates with hold time H: the global
  // lock is held for exactly N*U*H cycles, so the phase cannot complete
  // faster than that.
  MachineConfig c = quiet(4);
  Machine m(c);
  PhaseWork w;
  w.tag = 1;
  const int updates = 200;
  for (int i = 0; i < 4; ++i) w.tasks.push_back({i, 0.0, 0, 0, updates});
  const auto r = m.run_phase(w);
  const double lock_cycles = 4.0 * updates * c.cost.monitor_lock_hold_cycles;
  EXPECT_GE(r.duration_seconds() * c.spec.ghz * 1e9, lock_cycles);
}

TEST(MachineAnalyticTest, ControllerSerializesConcurrentMisses) {
  // Two threads streaming disjoint regions: total DRAM occupancy is
  // (lines * occupancy); the phase cannot beat that bound.
  MachineConfig c = quiet(2);
  Machine m(c);
  PhaseWork w;
  w.tag = 1;
  const int lines = 4000;
  for (int t = 0; t < 2; ++t) {
    SimTask task;
    task.owner = t;
    task.access_begin = static_cast<std::uint32_t>(w.accesses.size());
    for (int k = 0; k < lines; ++k) {
      w.accesses.push_back({0x40000000ull * (t + 1) + 64ull * k, false});
    }
    task.access_end = static_cast<std::uint32_t>(w.accesses.size());
    w.tasks.push_back(task);
  }
  const auto r = m.run_phase(w);
  const double occupancy =
      2.0 * lines * std::max(64.0 / c.spec.memory.bytes_per_cycle_per_controller,
                             c.spec.memory.random_line_occupancy_cycles);
  EXPECT_GE(r.duration_seconds() * c.spec.ghz * 1e9, occupancy);
  EXPECT_EQ(m.counters().dram_line_fetches, 2 * lines);
}

TEST(MachineAnalyticTest, GcPausesExtendSimulatedTime) {
  // Same workload with and without Java temporaries: the churn variant must
  // accumulate GC pauses as extra serial time (and allocate temps at all).
  auto run = [&](md::TemporariesMode temps) {
    auto sys = workloads::make_lj_gas(150, 0.02, 200.0, 3);
    md::EngineConfig cfg;
    cfg.n_threads = 1;
    cfg.temporaries = temps;
    cfg.heap.heap_bytes = 1;  // minimum young region: frequent GCs
    md::Engine eng(std::move(sys), cfg);
    Machine m(quiet(1));
    eng.run_simulated(m, 40);
    return std::pair{m.now_seconds(), eng.heap().gc_count()};
  };
  const auto [t_churn, gcs] = run(md::TemporariesMode::JavaStyle);
  const auto [t_clean, gcs_clean] = run(md::TemporariesMode::InPlace);
  EXPECT_GT(gcs, 0);
  EXPECT_EQ(gcs_clean, 0);
  EXPECT_GT(t_churn, t_clean);
}

TEST(MachineAnalyticTest, RemoteAccessCostsMoreThanLocal) {
  // On the NUMA X7560 model, a thread pinned to the home socket streams a
  // region faster than one pinned to a remote socket.
  auto run = [&](int pu) {
    MachineConfig c;
    c.spec = topo::xeon_x7560_4s();
    c.sched.noise_bursts_per_second = 0.0;
    c.n_threads = 1;
    c.pin_masks = {topo::CpuSet::of({pu})};
    Machine m(c);
    PhaseWork w;
    w.tag = 1;
    SimTask t;
    t.owner = 0;
    t.access_begin = 0;
    for (int k = 0; k < 20000; ++k) w.accesses.push_back({0x10000000ull + 64ull * k, false});
    t.access_end = static_cast<std::uint32_t>(w.accesses.size());
    w.tasks.push_back(t);
    return m.run_phase(w).duration_seconds();
  };
  const double local = run(0);    // package 0 = heap home
  const double remote = run(32);  // package 2
  EXPECT_GT(remote, local * 1.1);
}

}  // namespace
}  // namespace mwx::sim
