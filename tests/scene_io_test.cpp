#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hpp"
#include "md/engine.hpp"
#include "md/scene_io.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

void expect_systems_equal(const MolecularSystem& a, const MolecularSystem& b) {
  ASSERT_EQ(a.n_atoms(), b.n_atoms());
  ASSERT_EQ(a.types().n(), b.types().n());
  for (int t = 0; t < a.types().n(); ++t) {
    EXPECT_EQ(a.types().at(t).name, b.types().at(t).name);
    EXPECT_EQ(a.types().at(t).mass, b.types().at(t).mass);
    EXPECT_EQ(a.types().at(t).lj_epsilon, b.types().at(t).lj_epsilon);
    EXPECT_EQ(a.types().at(t).lj_sigma, b.types().at(t).lj_sigma);
  }
  EXPECT_EQ(a.box().lo, b.box().lo);
  EXPECT_EQ(a.box().hi, b.box().hi);
  for (int i = 0; i < a.n_atoms(); ++i) {
    EXPECT_EQ(a.positions()[static_cast<std::size_t>(i)],
              b.positions()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.velocities()[static_cast<std::size_t>(i)],
              b.velocities()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.charge(i), b.charge(i));
    EXPECT_EQ(a.type_of(i), b.type_of(i));
    EXPECT_EQ(a.movable(i), b.movable(i));
  }
  ASSERT_EQ(a.radial_bonds().size(), b.radial_bonds().size());
  ASSERT_EQ(a.angular_bonds().size(), b.angular_bonds().size());
  ASSERT_EQ(a.torsion_bonds().size(), b.torsion_bonds().size());
  for (std::size_t k = 0; k < a.radial_bonds().size(); ++k) {
    EXPECT_EQ(a.radial_bonds()[k].a, b.radial_bonds()[k].a);
    EXPECT_EQ(a.radial_bonds()[k].b, b.radial_bonds()[k].b);
    EXPECT_EQ(a.radial_bonds()[k].k, b.radial_bonds()[k].k);
    EXPECT_EQ(a.radial_bonds()[k].r0, b.radial_bonds()[k].r0);
  }
}

class SceneRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SceneRoundTrip, ExactForAllBenchmarks) {
  const auto spec = workloads::make_benchmark(GetParam(), 13);
  std::stringstream ss;
  save_scene(ss, spec.system);
  const MolecularSystem loaded = load_scene(ss);
  expect_systems_equal(spec.system, loaded);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SceneRoundTrip,
                         ::testing::Values("nanocar", "salt", "Al-1000"));

TEST(SceneIoTest, RoundTripPreservesDynamics) {
  // Loading a saved scene must produce bit-identical trajectories.
  auto spec = workloads::make_benchmark("salt", 5);
  std::stringstream ss;
  save_scene(ss, spec.system);
  MolecularSystem loaded = load_scene(ss);

  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine a(std::move(spec.system), cfg);
  Engine b(std::move(loaded), cfg);
  a.run_inline(10);
  b.run_inline(10);
  EXPECT_EQ(a.total_energy(), b.total_energy());
  for (int i = 0; i < a.system().n_atoms(); ++i) {
    EXPECT_EQ(a.system().positions()[static_cast<std::size_t>(i)],
              b.system().positions()[static_cast<std::size_t>(i)]);
  }
}

TEST(SceneIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a scene\nmws 1\n\nbox 0 0 0 10 10 10\ntype Ar 39.95 0.0001 3.4\n"
     << "# the atom:\natom 0 5 5 5 0 0 0 0 1\n";
  const MolecularSystem sys = load_scene(ss);
  EXPECT_EQ(sys.n_atoms(), 1);
  EXPECT_EQ(sys.types().at(0).name, "Ar");
}

TEST(SceneIoTest, MalformedInputsRejectedWithLineNumbers) {
  auto expect_fail = [](const std::string& text, const std::string& needle) {
    std::stringstream ss(text);
    try {
      load_scene(ss);
      FAIL() << "expected failure for: " << text;
    } catch (const ContractError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_fail("box 0 0 0 10 10 10\n", "missing 'mws 1' header");
  expect_fail("mws 3\n", "unsupported scene version");
  expect_fail("mws 0\n", "unsupported scene version");
  expect_fail("mws 1\nbox 0 0 0 9 9 9\ntype A 1 0 1\natom 0 1 1 1 0 0 0 0 1\nacc 0 0 0\n",
              "version-1 scene");
  expect_fail("mws 1\nbox 0 0 0 9 9 9\ntype A 1 0 1\natom 0 1 1 1 0 0 0 0 1\nnref 1 1 1\n",
              "version-1 scene");
  expect_fail(
      "mws 2\nbox 0 0 0 9 9 9\ntype A 1 0 1\natom 0 1 1 1 0 0 0 0 1\nacc 0 0 0\nacc 0 0 0\n",
      "more acc records than atoms");
  expect_fail("mws 1\nfrobnicate 3\n", "unknown record");
  expect_fail("mws 1\nbox 0 0 0\n", "malformed box");
  expect_fail("mws 1\natom 0 1 1 1 0 0 0 0 1\n", "atom before box");
  expect_fail("mws 1\nbox 0 0 0 10 10 10\natom 0 1 1 1 0 0 0 0 1\n", "atom before any type");
  expect_fail("mws 1\nbox 0 0 0 10 10 10\ntype A 1 0 1\natom 7 1 1 1 0 0 0 0 1\n",
              "unknown atom type");
  expect_fail("mws 1\nbox 0 0 0 5 5 5\ntype A 1 0 1\n", "no atoms");
}

TEST(SceneIoTest, CheckpointRoundTripCarriesAccAndRefs) {
  auto spec = workloads::make_benchmark("salt", 5);
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  Engine engine(spec.system, cfg);
  engine.run_inline(9);

  std::stringstream ss;
  save_checkpoint_scene(ss, engine.system(), engine.neighbor_list().reference_positions());
  std::vector<Vec3> refs;
  const MolecularSystem loaded = load_scene(ss, &refs);
  expect_systems_equal(engine.system(), loaded);

  const MolecularSystem& orig = engine.system();
  ASSERT_EQ(static_cast<int>(refs.size()), orig.n_atoms());
  for (int ext = 0; ext < orig.n_atoms(); ++ext) {
    const auto i = static_cast<std::size_t>(orig.index_of_external(ext));
    // load_scene assigns external ID == index, so the loaded arrays are in
    // external order.
    EXPECT_EQ(orig.accelerations()[i], loaded.accelerations()[static_cast<std::size_t>(ext)]);
    EXPECT_EQ(engine.neighbor_list().reference_positions()[i],
              refs[static_cast<std::size_t>(ext)]);
  }
}

TEST(SceneIoTest, CheckpointLoadsAsPlainScene) {
  // A v2 checkpoint consumed without an nref receiver is a valid ordinary
  // starting scene (accelerations applied, snapshot dropped).
  auto spec = workloads::make_benchmark("nanocar", 3);
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  Engine engine(spec.system, cfg);
  engine.run_inline(4);
  std::stringstream ss;
  save_checkpoint_scene(ss, engine.system(), engine.neighbor_list().reference_positions());
  const MolecularSystem loaded = load_scene(ss);
  expect_systems_equal(engine.system(), loaded);
}

TEST(SceneIoTest, CheckpointRefCountMismatchRejected) {
  auto spec = workloads::make_benchmark("nanocar", 3);
  Engine engine(spec.system, {.n_threads = 1});
  engine.compute_forces_only();
  std::vector<Vec3> short_refs(static_cast<std::size_t>(spec.system.n_atoms()) - 1);
  std::stringstream ss;
  EXPECT_THROW(save_checkpoint_scene(ss, engine.system(), short_refs), ContractError);
}

// The tentpole correctness discipline: run `split` steps, checkpoint through
// the v2 text form, restore into a fresh engine, run the remainder — final
// energies and positions must be bitwise identical to the uninterrupted run.
void expect_restore_bit_exact(const MolecularSystem& sys, EngineConfig cfg, int total,
                              int split) {
  parallel::FixedThreadPool pool({.n_threads = cfg.n_threads});

  Engine uninterrupted(sys, cfg);
  uninterrupted.run_native(pool, total);

  Engine first(sys, cfg);
  first.run_native(pool, split);
  std::stringstream ss;
  save_checkpoint_scene(ss, first.system(), first.neighbor_list().reference_positions());

  std::vector<Vec3> refs;
  MolecularSystem loaded = load_scene(ss, &refs);
  Engine second(std::move(loaded), cfg);
  second.restore_continuation(refs);
  second.run_native(pool, total - split);

  EXPECT_EQ(uninterrupted.potential_energy(), second.potential_energy());
  EXPECT_EQ(uninterrupted.kinetic_energy(), second.kinetic_energy());
  const MolecularSystem& a = uninterrupted.system();
  const MolecularSystem& b = second.system();
  for (int ext = 0; ext < a.n_atoms(); ++ext) {
    EXPECT_EQ(a.positions()[static_cast<std::size_t>(a.index_of_external(ext))],
              b.positions()[static_cast<std::size_t>(b.index_of_external(ext))]);
  }
  pool.shutdown();
}

TEST(SceneIoTest, RestoreContinuationBitExactGas) {
  const auto sys = workloads::make_lj_gas(256, 0.006, 300.0, 91);
  for (int split : {1, 13, 41}) {
    expect_restore_bit_exact(sys, {.n_threads = 2}, 60, split);
  }
}

TEST(SceneIoTest, RestoreContinuationBitExactSaltMidRebuildWindow) {
  // Regression anchor: split=11 on salt with 3 decomposition slots lands the
  // checkpoint mid-way through a neighbor-list validity window.  Restoring
  // without the reference snapshot (rebuilding the list from *current*
  // positions) reorders force accumulation and diverges here — the nref
  // records are load-bearing, not belt-and-braces.
  auto spec = workloads::make_benchmark("salt", 7);
  auto cfg = spec.engine;
  cfg.n_threads = 3;
  expect_restore_bit_exact(spec.system, cfg, 40, 11);
}

TEST(SceneIoTest, RestoreContinuationBitExactAcrossWorkloads) {
  {
    auto spec = workloads::make_benchmark("nanocar", 3);
    auto cfg = spec.engine;
    cfg.n_threads = 2;
    expect_restore_bit_exact(spec.system, cfg, 30, 9);
  }
  {
    auto spec = workloads::make_benchmark("Al-1000", 4);
    auto cfg = spec.engine;
    cfg.n_threads = 4;
    expect_restore_bit_exact(spec.system, cfg, 24, 7);
  }
}

TEST(SceneIoTest, RestoreContinuationGuards) {
  const auto sys = workloads::make_lj_gas(64, 0.004, 200.0, 7);
  std::vector<Vec3> refs(static_cast<std::size_t>(sys.n_atoms()));
  {
    Engine engine(sys, {.n_threads = 1});
    engine.run_inline(1);  // list already built: too late to restore
    EXPECT_THROW(engine.restore_continuation(refs), ContractError);
  }
  {
    Engine engine(sys, {.n_threads = 1});
    std::vector<Vec3> wrong(refs.size() - 1);
    EXPECT_THROW(engine.restore_continuation(wrong), ContractError);
  }
  {
    EngineConfig cfg{.n_threads = 1};
    cfg.reorder_interval = 4;  // Morton pass cannot be replayed from a checkpoint
    Engine engine(sys, cfg);
    EXPECT_THROW(engine.restore_continuation(refs), ContractError);
  }
}

TEST(SceneIoTest, FileRoundTrip) {
  const auto spec = workloads::make_benchmark("nanocar", 3);
  const std::string path = "/tmp/mwx_scene_test.mws";
  save_scene_file(path, spec.system);
  const MolecularSystem loaded = load_scene_file(path);
  expect_systems_equal(spec.system, loaded);
  EXPECT_THROW(load_scene_file("/nonexistent/nope.mws"), ContractError);
}

}  // namespace
}  // namespace mwx::md

namespace mwx {
namespace {

TEST(ArgsTest, ParsesAllForms) {
  // Note: a bare --flag greedily consumes a following non-flag token as its
  // value, so positionals must not directly follow boolean flags.
  const char* argv[] = {"prog",        "--steps=50", "positional", "--threads",
                        "4",           "--ratio=0.5", "--flag"};
  Args args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("steps", 0), 50);
  EXPECT_EQ(args.get_int("threads", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 9), 9);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgsTest, BadNumbersThrow) {
  const char* argv[] = {"prog", "--steps=abc"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get_int("steps", 0), ContractError);
  EXPECT_THROW(args.get_double("steps", 0), ContractError);
}

}  // namespace
}  // namespace mwx
