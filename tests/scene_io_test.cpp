#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hpp"
#include "md/engine.hpp"
#include "md/scene_io.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

void expect_systems_equal(const MolecularSystem& a, const MolecularSystem& b) {
  ASSERT_EQ(a.n_atoms(), b.n_atoms());
  ASSERT_EQ(a.types().n(), b.types().n());
  for (int t = 0; t < a.types().n(); ++t) {
    EXPECT_EQ(a.types().at(t).name, b.types().at(t).name);
    EXPECT_EQ(a.types().at(t).mass, b.types().at(t).mass);
    EXPECT_EQ(a.types().at(t).lj_epsilon, b.types().at(t).lj_epsilon);
    EXPECT_EQ(a.types().at(t).lj_sigma, b.types().at(t).lj_sigma);
  }
  EXPECT_EQ(a.box().lo, b.box().lo);
  EXPECT_EQ(a.box().hi, b.box().hi);
  for (int i = 0; i < a.n_atoms(); ++i) {
    EXPECT_EQ(a.positions()[static_cast<std::size_t>(i)],
              b.positions()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.velocities()[static_cast<std::size_t>(i)],
              b.velocities()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(a.charge(i), b.charge(i));
    EXPECT_EQ(a.type_of(i), b.type_of(i));
    EXPECT_EQ(a.movable(i), b.movable(i));
  }
  ASSERT_EQ(a.radial_bonds().size(), b.radial_bonds().size());
  ASSERT_EQ(a.angular_bonds().size(), b.angular_bonds().size());
  ASSERT_EQ(a.torsion_bonds().size(), b.torsion_bonds().size());
  for (std::size_t k = 0; k < a.radial_bonds().size(); ++k) {
    EXPECT_EQ(a.radial_bonds()[k].a, b.radial_bonds()[k].a);
    EXPECT_EQ(a.radial_bonds()[k].b, b.radial_bonds()[k].b);
    EXPECT_EQ(a.radial_bonds()[k].k, b.radial_bonds()[k].k);
    EXPECT_EQ(a.radial_bonds()[k].r0, b.radial_bonds()[k].r0);
  }
}

class SceneRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SceneRoundTrip, ExactForAllBenchmarks) {
  const auto spec = workloads::make_benchmark(GetParam(), 13);
  std::stringstream ss;
  save_scene(ss, spec.system);
  const MolecularSystem loaded = load_scene(ss);
  expect_systems_equal(spec.system, loaded);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SceneRoundTrip,
                         ::testing::Values("nanocar", "salt", "Al-1000"));

TEST(SceneIoTest, RoundTripPreservesDynamics) {
  // Loading a saved scene must produce bit-identical trajectories.
  auto spec = workloads::make_benchmark("salt", 5);
  std::stringstream ss;
  save_scene(ss, spec.system);
  MolecularSystem loaded = load_scene(ss);

  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine a(std::move(spec.system), cfg);
  Engine b(std::move(loaded), cfg);
  a.run_inline(10);
  b.run_inline(10);
  EXPECT_EQ(a.total_energy(), b.total_energy());
  for (int i = 0; i < a.system().n_atoms(); ++i) {
    EXPECT_EQ(a.system().positions()[static_cast<std::size_t>(i)],
              b.system().positions()[static_cast<std::size_t>(i)]);
  }
}

TEST(SceneIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a scene\nmws 1\n\nbox 0 0 0 10 10 10\ntype Ar 39.95 0.0001 3.4\n"
     << "# the atom:\natom 0 5 5 5 0 0 0 0 1\n";
  const MolecularSystem sys = load_scene(ss);
  EXPECT_EQ(sys.n_atoms(), 1);
  EXPECT_EQ(sys.types().at(0).name, "Ar");
}

TEST(SceneIoTest, MalformedInputsRejectedWithLineNumbers) {
  auto expect_fail = [](const std::string& text, const std::string& needle) {
    std::stringstream ss(text);
    try {
      load_scene(ss);
      FAIL() << "expected failure for: " << text;
    } catch (const ContractError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_fail("box 0 0 0 10 10 10\n", "missing 'mws 1' header");
  expect_fail("mws 2\n", "unsupported scene version");
  expect_fail("mws 1\nfrobnicate 3\n", "unknown record");
  expect_fail("mws 1\nbox 0 0 0\n", "malformed box");
  expect_fail("mws 1\natom 0 1 1 1 0 0 0 0 1\n", "atom before box");
  expect_fail("mws 1\nbox 0 0 0 10 10 10\natom 0 1 1 1 0 0 0 0 1\n", "atom before any type");
  expect_fail("mws 1\nbox 0 0 0 10 10 10\ntype A 1 0 1\natom 7 1 1 1 0 0 0 0 1\n",
              "unknown atom type");
  expect_fail("mws 1\nbox 0 0 0 5 5 5\ntype A 1 0 1\n", "no atoms");
}

TEST(SceneIoTest, FileRoundTrip) {
  const auto spec = workloads::make_benchmark("nanocar", 3);
  const std::string path = "/tmp/mwx_scene_test.mws";
  save_scene_file(path, spec.system);
  const MolecularSystem loaded = load_scene_file(path);
  expect_systems_equal(spec.system, loaded);
  EXPECT_THROW(load_scene_file("/nonexistent/nope.mws"), ContractError);
}

}  // namespace
}  // namespace mwx::md

namespace mwx {
namespace {

TEST(ArgsTest, ParsesAllForms) {
  // Note: a bare --flag greedily consumes a following non-flag token as its
  // value, so positionals must not directly follow boolean flags.
  const char* argv[] = {"prog",        "--steps=50", "positional", "--threads",
                        "4",           "--ratio=0.5", "--flag"};
  Args args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("steps", 0), 50);
  EXPECT_EQ(args.get_int("threads", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 9), 9);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgsTest, BadNumbersThrow) {
  const char* argv[] = {"prog", "--steps=abc"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get_int("steps", 0), ContractError);
  EXPECT_THROW(args.get_double("steps", 0), ContractError);
}

}  // namespace
}  // namespace mwx
