// Engine/pool re-entrancy: N engines sharing one FixedThreadPool must
// produce exactly the energies each would produce on a dedicated pool.
//
// This is the determinism contract the serve layer is built on: an engine's
// floating-point order is fixed by its own config.n_threads (accumulation-
// slot serial chains), never by the pool's size or by who else is running —
// so the assertions here are bitwise EXPECT_EQ on doubles, not tolerances.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace mwx {
namespace {

struct EnergyPair {
  double pe = 0.0;
  double ke = 0.0;
};

md::EngineConfig small_config() {
  md::EngineConfig cfg;
  cfg.n_threads = 2;
  return cfg;
}

// Reference: the scene run to `steps` on its own dedicated pool.
EnergyPair dedicated_run(const md::MolecularSystem& sys, const md::EngineConfig& cfg,
                         int steps, parallel::QueueMode mode) {
  md::Engine engine(sys, cfg);
  parallel::FixedThreadPool pool({.n_threads = cfg.n_threads, .queue_mode = mode});
  engine.run_native(pool, steps);
  return {engine.potential_energy(), engine.kinetic_energy()};
}

class ReentrancyModes : public ::testing::TestWithParam<parallel::QueueMode> {};

// Two engines interleaved on one shared pool, driven from two client
// threads at once, vs each on a dedicated pool.
TEST_P(ReentrancyModes, TwoEnginesSharingOnePoolAreBitIdentical) {
  const parallel::QueueMode mode = GetParam();
  const md::MolecularSystem sys_a = workloads::make_lj_gas(64, 0.006, 300.0, 123);
  const md::MolecularSystem sys_b = workloads::make_lj_coulomb_gas(48, 0.005, 250.0, 0.25, 321);
  const md::EngineConfig cfg = small_config();
  constexpr int kSteps = 25;

  const EnergyPair ref_a = dedicated_run(sys_a, cfg, kSteps, mode);
  const EnergyPair ref_b = dedicated_run(sys_b, cfg, kSteps, mode);

  // Shared pool larger than either engine's decomposition width — the
  // pre-refactor code required pool size == n_threads and would throw here.
  parallel::FixedThreadPool shared({.n_threads = 4, .queue_mode = mode});
  md::Engine engine_a(sys_a, cfg);
  md::Engine engine_b(sys_b, cfg);
  std::thread client_a([&] {
    for (int s = 0; s < kSteps; ++s) engine_a.run_native(shared, 1);
  });
  std::thread client_b([&] {
    for (int s = 0; s < kSteps; ++s) engine_b.run_native(shared, 1);
  });
  client_a.join();
  client_b.join();

  EXPECT_EQ(engine_a.potential_energy(), ref_a.pe);
  EXPECT_EQ(engine_a.kinetic_energy(), ref_a.ke);
  EXPECT_EQ(engine_b.potential_energy(), ref_b.pe);
  EXPECT_EQ(engine_b.kinetic_energy(), ref_b.ke);
}

// Same engine config run back-to-back on a shared pool must also reproduce
// itself — re-entrancy includes sequential reuse without pool state leaking
// from the previous tenant.
TEST_P(ReentrancyModes, SequentialReuseLeaksNoState) {
  const parallel::QueueMode mode = GetParam();
  const md::MolecularSystem sys = workloads::make_lj_gas(64, 0.006, 300.0, 99);
  const md::EngineConfig cfg = small_config();
  constexpr int kSteps = 20;

  parallel::FixedThreadPool shared({.n_threads = 3, .queue_mode = mode});
  EnergyPair first;
  {
    md::Engine engine(sys, cfg);
    engine.run_native(shared, kSteps);
    first = {engine.potential_energy(), engine.kinetic_energy()};
  }
  // A different tenant dirties the pool in between.
  {
    md::Engine other(workloads::make_lj_gas(32, 0.004, 200.0, 7), cfg);
    other.run_native(shared, 10);
  }
  md::Engine engine(sys, cfg);
  engine.run_native(shared, kSteps);
  EXPECT_EQ(engine.potential_energy(), first.pe);
  EXPECT_EQ(engine.kinetic_energy(), first.ke);
}

// The stress shape the scheduler creates: more concurrent engines than pool
// workers, all stepping at once.
TEST_P(ReentrancyModes, ManyEnginesOversubscribeOnePool) {
  const parallel::QueueMode mode = GetParam();
  const md::MolecularSystem sys = workloads::make_lj_gas(48, 0.005, 300.0, 55);
  const md::EngineConfig cfg = small_config();
  constexpr int kSteps = 15;
  constexpr int kEngines = 6;

  const EnergyPair ref = dedicated_run(sys, cfg, kSteps, mode);

  parallel::FixedThreadPool shared({.n_threads = 2, .queue_mode = mode});
  std::vector<std::unique_ptr<md::Engine>> engines;
  for (int e = 0; e < kEngines; ++e) engines.push_back(std::make_unique<md::Engine>(sys, cfg));
  std::vector<std::thread> clients;
  for (int e = 0; e < kEngines; ++e) {
    clients.emplace_back([&, e] { engines[static_cast<std::size_t>(e)]->run_native(shared, kSteps); });
  }
  for (auto& c : clients) c.join();
  for (const auto& engine : engines) {
    EXPECT_EQ(engine->potential_energy(), ref.pe);
    EXPECT_EQ(engine->kinetic_energy(), ref.ke);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueueModes, ReentrancyModes,
                         ::testing::Values(parallel::QueueMode::Single,
                                           parallel::QueueMode::PerThread,
                                           parallel::QueueMode::WorkStealing));

}  // namespace
}  // namespace mwx
