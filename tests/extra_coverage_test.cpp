// Final coverage batch: SMT throughput ordering in the machine model,
// native single-queue equivalence, workload determinism, and PME on a
// non-cubic box.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/ewald/pme.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx {
namespace {

TEST(SmtOrderingTest, MoreCoResidentThreadsRunSlower) {
  // Same total work on an i7 core: 1 thread alone < 2 SMT siblings < 3
  // threads timesharing one core.
  auto run = [&](int threads, std::vector<topo::CpuSet> masks) {
    sim::MachineConfig c;
    c.spec = topo::core_i7_920();
    c.sched.noise_bursts_per_second = 0.0;
    c.n_threads = threads;
    c.pin_masks = std::move(masks);
    sim::Machine m(c);
    sim::PhaseWork w;
    w.tag = 1;
    for (int i = 0; i < threads; ++i) w.tasks.push_back({i, 6e5, 0, 0, 0});
    return m.run_phase(w).duration_seconds();
  };
  const double alone = run(1, {topo::CpuSet::of({0})});
  const double smt_pair = run(2, {topo::CpuSet::of({0}), topo::CpuSet::of({1})});
  const double triple =
      run(3, {topo::CpuSet::of({0}), topo::CpuSet::of({1}), topo::CpuSet::of({0})});
  EXPECT_LT(alone, smt_pair);
  EXPECT_LT(smt_pair, triple);
}

TEST(NativeSingleQueueTest, StaticAssignmentThroughSharedPoolMatches) {
  // Static task list submitted through a single-queue pool: any worker may
  // run any task (buffer = executing worker), so only tolerance equality is
  // guaranteed.
  auto make = [] {
    auto sys = workloads::make_lj_gas(150, 0.012, 150.0, 21);
    md::EngineConfig cfg;
    cfg.n_threads = 3;
    cfg.temporaries = md::TemporariesMode::InPlace;
    return md::Engine(std::move(sys), cfg);
  };
  md::Engine reference = make();
  reference.run_inline(15);
  md::Engine native = make();
  parallel::FixedThreadPool pool({.n_threads = 3});  // Single queue mode
  native.run_native(pool, 15);
  EXPECT_NEAR(units::to_ev(reference.total_energy()), units::to_ev(native.total_energy()),
              1e-6);
}

TEST(WorkloadDeterminismTest, SameSeedSameSystem) {
  for (const auto& name : workloads::benchmark_names()) {
    const auto a = workloads::make_benchmark(name, 42);
    const auto b = workloads::make_benchmark(name, 42);
    ASSERT_EQ(a.system.n_atoms(), b.system.n_atoms());
    for (int i = 0; i < a.system.n_atoms(); ++i) {
      EXPECT_EQ(a.system.positions()[static_cast<std::size_t>(i)],
                b.system.positions()[static_cast<std::size_t>(i)])
          << name;
      EXPECT_EQ(a.system.velocities()[static_cast<std::size_t>(i)],
                b.system.velocities()[static_cast<std::size_t>(i)])
          << name;
    }
  }
}

TEST(SimDeterminismTest, SameSeedSameTimeline) {
  auto run = [] {
    auto spec = workloads::make_benchmark("Al-1000", 7);
    auto cfg = spec.engine;
    cfg.n_threads = 4;
    md::Engine eng(std::move(spec.system), cfg);
    sim::MachineConfig mc;
    mc.spec = topo::core_i7_920();
    mc.sched.seed = 1234;
    mc.n_threads = 4;
    sim::Machine machine(mc);
    eng.run_simulated(machine, 5);
    return machine.now_seconds();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(PmeNonCubicTest, MatchesDirectEwaldOnOrthorhombicBox) {
  // 2x2x1 NaCl cells: box 11.28 x 11.28 x 5.64 — exercises per-dimension
  // k-vectors and fractional coordinates.
  using namespace md::ewald;
  const double a = 2.82;
  const Vec3 box{4 * a, 4 * a, 2 * a};
  std::vector<Vec3> pos;
  std::vector<double> q;
  Rng rng(31);
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        pos.push_back(Vec3{(x + 0.5) * a, (y + 0.5) * a, (z + 0.5) * a} +
                      Vec3{rng.uniform(-.2, .2), rng.uniform(-.2, .2), rng.uniform(-.2, .2)});
        q.push_back((x + y + z) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
  EwaldParams p;
  p.alpha = 0.8;
  p.r_cutoff = 0.45 * 2 * a;  // limited by the short box edge
  p.kmax = 14;
  p.grid = 32;
  const double e_ref = DirectEwald(box, p).compute(pos, q).energy;
  const EwaldResult pme = PmeSolver(box, p).compute(pos, q);
  EXPECT_NEAR(pme.energy, e_ref, std::fabs(e_ref) * 5e-3);
}

TEST(EngineBackToBackTest, NativeThenSimulatedContinuesConsistently) {
  // A user can mix backends on one engine: run natively, then hand the same
  // engine to a simulated machine; physics continues from the same state.
  auto spec = workloads::make_benchmark("salt", 5);
  auto cfg = spec.engine;
  cfg.n_threads = 2;
  md::Engine eng(std::move(spec.system), cfg);
  parallel::FixedThreadPool pool(
      {.n_threads = 2, .queue_mode = parallel::QueueMode::PerThread});
  eng.run_native(pool, 5);
  const double e_mid = eng.total_energy();
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 2;
  sim::Machine machine(mc);
  eng.run_simulated(machine, 5);
  EXPECT_EQ(eng.steps_done(), 10);
  EXPECT_NE(eng.total_energy(), e_mid);  // time advanced
  EXPECT_TRUE(std::isfinite(eng.total_energy()));
}

}  // namespace
}  // namespace mwx
