#include <gtest/gtest.h>

#include <sstream>

#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/observables.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

TEST(ObservablesTest, TemperatureMatchesKineticEnergy) {
  auto sys = workloads::make_lj_gas(200, 0.01, 250.0, 3);
  const double t = temperature_kelvin(sys);
  // Maxwell-Boltzmann sampling at 250 K: instantaneous T close to target.
  EXPECT_NEAR(t, 250.0, 40.0);
}

TEST(ObservablesTest, RescaleHitsTargetExactly) {
  auto sys = workloads::make_lj_gas(100, 0.01, 300.0, 4);
  rescale_to_temperature(sys, 150.0);
  EXPECT_NEAR(temperature_kelvin(sys), 150.0, 1e-9);
  rescale_to_temperature(sys, 0.0);
  EXPECT_NEAR(sys.kinetic_energy(), 0.0, 1e-15);
}

TEST(ObservablesTest, BerendsenDrivesTowardTarget) {
  auto sys = workloads::make_lj_gas(100, 0.01, 400.0, 4);
  const double t0 = temperature_kelvin(sys);
  double lambda_last = 1.0;
  for (int i = 0; i < 600; ++i) lambda_last = berendsen_step(sys, 100.0, 1.0, 50.0);
  EXPECT_LT(temperature_kelvin(sys), t0);
  EXPECT_NEAR(temperature_kelvin(sys), 100.0, 5.0);
  EXPECT_NEAR(lambda_last, 1.0, 0.05);  // converged: scale ~1
}

TEST(ObservablesTest, BerendsenValidatesArguments) {
  auto sys = workloads::make_lj_gas(10, 0.01, 300.0, 1);
  EXPECT_THROW(berendsen_step(sys, 100.0, 1.0, 0.0), ContractError);
  EXPECT_THROW(berendsen_step(sys, 100.0, 0.0, 10.0), ContractError);
}

TEST(ObservablesTest, RdfOfLatticePeaksAtShellDistances) {
  // fcc-like Al block: strong first peak near the nearest-neighbor distance
  // (2.86 Å), depleted below it.
  auto spec = workloads::make_al1000(3);
  const auto g = radial_distribution(spec.system, 10.0, 100);  // 0.1 Å bins
  // Hard core: nothing below 2 Å.
  for (int b = 0; b < 20; ++b) EXPECT_EQ(g[static_cast<std::size_t>(b)], 0.0);
  // First shell: bins around 2.8-2.9 Å well above background.
  double peak = 0.0;
  for (int b = 26; b <= 31; ++b) peak = std::max(peak, g[static_cast<std::size_t>(b)]);
  EXPECT_GT(peak, 3.0);
}

TEST(ObservablesTest, RdfValidation) {
  auto sys = workloads::make_lj_gas(20, 0.01, 100.0, 1);
  EXPECT_THROW(radial_distribution(sys, -1.0, 10), ContractError);
  EXPECT_THROW(radial_distribution(sys, 5.0, 0), ContractError);
}

TEST(ObservablesTest, MsdZeroAtReferenceGrowsAfterMotion) {
  auto spec = workloads::make_al1000(3);
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(spec.system), cfg);
  const std::vector<Vec3> ref = eng.system().positions();
  EXPECT_DOUBLE_EQ(mean_squared_displacement(eng.system(), ref), 0.0);
  eng.run_inline(50);
  EXPECT_GT(mean_squared_displacement(eng.system(), ref), 1e-4);
}

TEST(ObservablesTest, MsdIgnoresImmovableAtoms) {
  auto spec = workloads::make_nanocar(11);
  const std::vector<Vec3> ref = spec.system.positions();
  // Shift only the platform (immovable) in the reference: MSD must stay 0.
  std::vector<Vec3> shifted = ref;
  for (int i = 0; i < spec.system.n_atoms(); ++i) {
    if (!spec.system.movable(i)) shifted[static_cast<std::size_t>(i)] += Vec3{5, 5, 5};
  }
  EXPECT_DOUBLE_EQ(mean_squared_displacement(spec.system, shifted), 0.0);
}

TEST(ObservablesTest, XyzFrameFormat) {
  AtomTypeTable types;
  types.add({"Ar", 39.95, 0.0, 3.4});
  MolecularSystem sys(types, {{0, 0, 0}, {10, 10, 10}});
  sys.add_atom(0, {1, 2, 3});
  sys.add_atom(0, {4, 5, 6});
  std::ostringstream os;
  write_xyz_frame(os, sys, "frame 0");
  std::istringstream in(os.str());
  int n;
  in >> n;
  EXPECT_EQ(n, 2);
  std::string comment;
  std::getline(in, comment);  // rest of count line
  std::getline(in, comment);
  EXPECT_EQ(comment, "frame 0");
  std::string el;
  double x, y, z;
  in >> el >> x >> y >> z;
  EXPECT_EQ(el, "Ar");
  EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_DOUBLE_EQ(z, 3.0);
}

TEST(ObservablesTest, ThermostattedRunHoldsTemperature) {
  // Berendsen-coupled engine run: temperature stays near target while the
  // system evolves (the equilibration workflow the examples use).
  auto sys = workloads::make_lj_gas(125, 0.012, 150.0, 7);
  EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.dt_fs = 2.0;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(sys), cfg);
  for (int burst = 0; burst < 20; ++burst) {
    eng.run_inline(10);
    berendsen_step(eng.system(), 150.0, 20.0, 100.0);
  }
  EXPECT_NEAR(temperature_kelvin(eng.system()), 150.0, 50.0);
}

}  // namespace
}  // namespace mwx::md
