// Tests for the FFT and Ewald/PME electrostatics (the paper's future-work
// extension).  The strongest checks: the FFT round-trips and satisfies
// Parseval; DirectEwald reproduces the NaCl Madelung constant; PME matches
// DirectEwald in energy and forces; forces equal the negative numerical
// gradient of the energy.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "md/ewald/fft.hpp"
#include "md/ewald/pme.hpp"

namespace mwx::md::ewald {
namespace {

TEST(FftTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(33), 64);
}

TEST(FftTest, RoundTrip1D) {
  Rng rng(3);
  std::vector<Complex> data(64);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft_1d(data.data(), 64, false);
  fft_1d(data.data(), 64, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(FftTest, DeltaTransformsToFlat) {
  std::vector<Complex> data(16, Complex{0, 0});
  data[0] = {1.0, 0.0};
  fft_1d(data.data(), 16, false);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SinglePureFrequencyPeaks) {
  constexpr int kN = 32;
  std::vector<Complex> data(kN);
  const int freq = 5;
  for (int i = 0; i < kN; ++i) {
    data[static_cast<std::size_t>(i)] = {std::cos(2.0 * 3.14159265358979 * freq * i / kN),
                                         0.0};
  }
  fft_1d(data.data(), kN, false);
  // Energy concentrated at +-freq bins.
  EXPECT_NEAR(std::abs(data[freq]), kN / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[kN - freq]), kN / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[0]), 0.0, 1e-9);
}

TEST(FftTest, Parseval) {
  Rng rng(9);
  std::vector<Complex> data(128);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(c);
  }
  fft_1d(data.data(), 128, false);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8);
}

TEST(FftTest, RoundTrip3D) {
  Fft3D fft(8, 8, 8);
  Rng rng(5);
  std::vector<Complex> grid(fft.size());
  for (auto& c : grid) c = {rng.uniform(-1, 1), 0.0};
  const auto original = grid;
  fft.forward(grid);
  fft.inverse(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(grid[i].imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, RejectsNonPow2) { EXPECT_THROW(Fft3D(8, 12, 8), ContractError); }

TEST(BsplineTest, PartitionOfUnity) {
  // Sum of M_p over the integer-shifted copies covering x is 1.
  for (int order : {3, 4, 5}) {
    for (double frac : {0.0, 0.21, 0.5, 0.77}) {
      double sum = 0.0;
      for (int j = 0; j < order; ++j) sum += bspline(order, frac + j);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order << " frac " << frac;
    }
  }
}

TEST(BsplineTest, SupportAndSymmetry) {
  EXPECT_EQ(bspline(4, -0.1), 0.0);
  EXPECT_EQ(bspline(4, 4.1), 0.0);
  EXPECT_NEAR(bspline(4, 1.3), bspline(4, 4.0 - 1.3), 1e-12);
  EXPECT_GT(bspline(4, 2.0), bspline(4, 1.0));
}

TEST(BsplineTest, DerivativeMatchesNumerical) {
  for (double x : {0.5, 1.2, 2.0, 3.4}) {
    const double h = 1e-6;
    const double numeric = (bspline(4, x + h) - bspline(4, x - h)) / (2 * h);
    EXPECT_NEAR(bspline_derivative(4, x), numeric, 1e-6);
  }
}

// --- Physics ----------------------------------------------------------------

// NaCl rock-salt supercell with unit charges and spacing a.
void make_nacl(int cells_per_side, double a, std::vector<Vec3>* pos,
               std::vector<double>* q, Vec3* box) {
  const int n_side = 2 * cells_per_side;
  *box = Vec3{a * n_side, a * n_side, a * n_side};
  pos->clear();
  q->clear();
  for (int z = 0; z < n_side; ++z) {
    for (int y = 0; y < n_side; ++y) {
      for (int x = 0; x < n_side; ++x) {
        pos->push_back({(x + 0.5) * a, (y + 0.5) * a, (z + 0.5) * a});
        q->push_back((x + y + z) % 2 == 0 ? 1.0 : -1.0);
      }
    }
  }
}

TEST(DirectEwaldTest, MadelungConstantNaCl) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box;
  const double a = 2.82;
  make_nacl(2, a, &pos, &q, &box);  // 64 ions
  EwaldParams p;
  p.alpha = 0.45;
  p.r_cutoff = 0.45 * box.x;
  p.kmax = 10;
  DirectEwald ewald(box, p);
  const EwaldResult r = ewald.compute(pos, q);
  // Lattice energy = -(N/2) alpha_M k_e / a (the 1/2 avoids double counting
  // pairs), so per ion it is -alpha_M/2 k_e/a;  alpha_M(NaCl) = 1.747565.
  const double per_ion = r.energy / static_cast<double>(pos.size());
  const double madelung = -2.0 * per_ion * a / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 1e-3);
  // Perfect lattice: forces vanish by symmetry.
  for (const Vec3& f : r.forces) EXPECT_LT(f.norm(), 1e-8);
}

TEST(DirectEwaldTest, AlphaIndependence) {
  // The total Ewald energy must not depend on the splitting parameter.
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box;
  make_nacl(2, 2.82, &pos, &q, &box);
  // Perturb so forces are non-trivial too.
  Rng rng(4);
  for (auto& r : pos) r += Vec3{rng.uniform(-.2, .2), rng.uniform(-.2, .2),
                                rng.uniform(-.2, .2)};
  EwaldParams p1;
  p1.alpha = 0.40;
  p1.r_cutoff = 0.45 * box.x;
  p1.kmax = 12;
  EwaldParams p2 = p1;
  p2.alpha = 0.55;
  const double e1 = DirectEwald(box, p1).compute(pos, q).energy;
  const double e2 = DirectEwald(box, p2).compute(pos, q).energy;
  // Agreement is limited by the finite cutoff/kmax truncation.
  EXPECT_NEAR(e1, e2, std::fabs(e1) * 5e-4);
}

TEST(DirectEwaldTest, ForcesAreNegativeGradient) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box{12, 12, 12};
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    pos.push_back(rng.point_in_box({1, 1, 1}, {11, 11, 11}));
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EwaldParams p;
  p.alpha = 0.5;
  p.r_cutoff = 5.5;
  p.kmax = 9;
  DirectEwald ewald(box, p);
  const EwaldResult base = ewald.compute(pos, q);
  const double h = 1e-5;
  for (int i = 0; i < 4; ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      Vec3& r = pos[static_cast<std::size_t>(i)];
      const double orig = r[static_cast<std::size_t>(axis)];
      r[static_cast<std::size_t>(axis)] = orig + h;
      const double ep = ewald.compute(pos, q).energy;
      r[static_cast<std::size_t>(axis)] = orig - h;
      const double em = ewald.compute(pos, q).energy;
      r[static_cast<std::size_t>(axis)] = orig;
      const double numeric = -(ep - em) / (2 * h);
      EXPECT_NEAR(base.forces[static_cast<std::size_t>(i)][static_cast<std::size_t>(axis)],
                  numeric, 1e-5 + std::fabs(numeric) * 1e-3);
    }
  }
}

TEST(PmeTest, MatchesDirectEwaldEnergy) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box;
  make_nacl(2, 2.82, &pos, &q, &box);
  Rng rng(6);
  for (auto& r : pos) r += Vec3{rng.uniform(-.3, .3), rng.uniform(-.3, .3),
                                rng.uniform(-.3, .3)};
  EwaldParams p;
  p.alpha = 0.45;
  p.r_cutoff = 0.45 * box.x;
  p.kmax = 12;
  p.grid = 32;
  const double e_ref = DirectEwald(box, p).compute(pos, q).energy;
  const EwaldResult pme = PmeSolver(box, p).compute(pos, q);
  EXPECT_NEAR(pme.energy, e_ref, std::fabs(e_ref) * 2e-3);
}

TEST(PmeTest, MatchesDirectEwaldForces) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box;
  make_nacl(2, 2.82, &pos, &q, &box);
  Rng rng(8);
  for (auto& r : pos) r += Vec3{rng.uniform(-.3, .3), rng.uniform(-.3, .3),
                                rng.uniform(-.3, .3)};
  EwaldParams p;
  p.alpha = 0.45;
  p.r_cutoff = 0.45 * box.x;
  p.kmax = 12;
  p.grid = 32;
  const EwaldResult ref = DirectEwald(box, p).compute(pos, q);
  const EwaldResult pme = PmeSolver(box, p).compute(pos, q);
  double fmax = 1e-12;
  for (const auto& f : ref.forces) fmax = std::max(fmax, f.norm());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_LT((ref.forces[i] - pme.forces[i]).norm(), 0.02 * fmax) << "atom " << i;
  }
}

TEST(PmeTest, ForcesAreNegativeGradient) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box{16, 16, 16};
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    pos.push_back(rng.point_in_box({1, 1, 1}, {15, 15, 15}));
    q.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EwaldParams p;
  p.alpha = 0.45;
  p.r_cutoff = 7.0;
  p.grid = 32;
  PmeSolver pme(box, p);
  const EwaldResult base = pme.compute(pos, q);
  const double h = 2e-5;
  for (int i = 0; i < 3; ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      Vec3& r = pos[static_cast<std::size_t>(i)];
      const double orig = r[static_cast<std::size_t>(axis)];
      r[static_cast<std::size_t>(axis)] = orig + h;
      const double ep = pme.compute(pos, q).energy;
      r[static_cast<std::size_t>(axis)] = orig - h;
      const double em = pme.compute(pos, q).energy;
      r[static_cast<std::size_t>(axis)] = orig;
      const double numeric = -(ep - em) / (2 * h);
      const double analytic =
          base.forces[static_cast<std::size_t>(i)][static_cast<std::size_t>(axis)];
      EXPECT_NEAR(analytic, numeric, 1e-5 + std::fabs(numeric) * 5e-3);
    }
  }
}

TEST(PmeTest, NewtonsThirdLaw) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  Vec3 box;
  make_nacl(2, 2.82, &pos, &q, &box);
  Rng rng(17);
  for (auto& r : pos) r += Vec3{rng.uniform(-.2, .2), rng.uniform(-.2, .2),
                                rng.uniform(-.2, .2)};
  const EwaldParams p = suggest_params(box, static_cast<int>(pos.size()));
  const EwaldResult r = PmeSolver(box, p).compute(pos, q);
  Vec3 total{};
  for (const auto& f : r.forces) total += f;
  double fmax = 1e-12;
  for (const auto& f : r.forces) fmax = std::max(fmax, f.norm());
  // Smooth PME does not conserve net force exactly (a known artifact of the
  // non-symmetric B-spline interpolation); the residual must just be small
  // relative to the physical forces.
  EXPECT_LT(total.norm() / static_cast<double>(pos.size()), 2e-3 * fmax);
}

TEST(PmeTest, ParameterValidation) {
  EwaldParams p;
  p.grid = 24;  // not a power of two
  EXPECT_THROW(PmeSolver(Vec3{10, 10, 10}, p), ContractError);
  EwaldParams p2;
  p2.r_cutoff = 8.0;
  EXPECT_THROW(PmeSolver(Vec3{10, 10, 10}, p2), ContractError);
}

TEST(PmeTest, SuggestParamsAreValid) {
  const Vec3 box{30, 30, 30};
  const EwaldParams p = suggest_params(box, 500);
  EXPECT_LT(p.r_cutoff, 15.0);
  EXPECT_TRUE(is_pow2(p.grid));
  EXPECT_NO_THROW(PmeSolver(box, p));
}

TEST(DirectMinImageTest, TwoChargesSimple) {
  const Vec3 box{20, 20, 20};
  const std::vector<Vec3> pos{{5, 10, 10}, {9, 10, 10}};
  const std::vector<double> q{1.0, -1.0};
  const EwaldResult r = direct_coulomb_minimum_image(box, pos, q);
  EXPECT_NEAR(r.energy, -units::kCoulomb / 4.0, 1e-12);
  EXPECT_GT(r.forces[0].x, 0.0);
}

TEST(DirectMinImageTest, WrapsAroundBox) {
  const Vec3 box{20, 20, 20};
  // 19 apart directly, but 1 apart through the boundary.
  const std::vector<Vec3> pos{{0.5, 10, 10}, {19.5, 10, 10}};
  const std::vector<double> q{1.0, 1.0};
  const EwaldResult r = direct_coulomb_minimum_image(box, pos, q);
  EXPECT_NEAR(r.energy, units::kCoulomb / 1.0, 1e-9);
}

}  // namespace
}  // namespace mwx::md::ewald
