// Integration tests of the full timestep engine: conservation laws, backend
// equivalence (inline / native threads / traced+simulated), neighbor-list
// lifecycle, and instrumentation hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

EngineConfig base_config(int threads = 1) {
  EngineConfig cfg;
  cfg.n_threads = threads;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 7.0;
  cfg.skin = 1.0;
  cfg.temporaries = TemporariesMode::InPlace;
  return cfg;
}

sim::Machine make_machine(int threads) {
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.sched.noise_bursts_per_second = 0.0;
  mc.n_threads = threads;
  return sim::Machine(mc);
}

TEST(EngineTest, EnergyConservedLjGas) {
  auto sys = workloads::make_lj_gas(125, 0.012, 120.0, 3);
  EngineConfig cfg = base_config();
  cfg.dt_fs = 2.0;
  Engine eng(std::move(sys), cfg);
  eng.run_inline(1);
  const double e0 = eng.total_energy();
  eng.run_inline(400);
  const double e1 = eng.total_energy();
  const double scale = std::max(std::fabs(e0), eng.kinetic_energy());
  EXPECT_LT(std::fabs(e1 - e0) / scale, 0.02)
      << "e0=" << units::to_ev(e0) << " eV, e1=" << units::to_ev(e1) << " eV";
}

TEST(EngineTest, EnergyConservedBondedChain) {
  auto sys = workloads::make_chain(24, 5);
  EngineConfig cfg = base_config();
  cfg.dt_fs = 0.5;
  Engine eng(std::move(sys), cfg);
  eng.run_inline(1);
  const double e0 = eng.total_energy();
  eng.run_inline(800);
  const double e1 = eng.total_energy();
  const double scale = std::max(std::fabs(e0), eng.kinetic_energy());
  EXPECT_LT(std::fabs(e1 - e0) / scale, 0.02);
}

class DtSweep : public ::testing::TestWithParam<double> {};

TEST_P(DtSweep, DriftShrinksWithTimestep) {
  auto sys = workloads::make_lj_gas(64, 0.010, 100.0, 9);
  EngineConfig cfg = base_config();
  cfg.dt_fs = GetParam();
  Engine eng(std::move(sys), cfg);
  const int steps = static_cast<int>(200.0 / GetParam());
  eng.run_inline(1);
  const double e0 = eng.total_energy();
  eng.run_inline(steps);
  const double drift = std::fabs(eng.total_energy() - e0) /
                       std::max(std::fabs(e0), eng.kinetic_energy());
  // Velocity Verlet: drift must stay small for all sane timesteps.
  EXPECT_LT(drift, 0.05) << "dt=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Timesteps, DtSweep, ::testing::Values(0.5, 1.0, 2.0));

TEST(EngineTest, MomentumConservedWithoutWallContact) {
  // A compact warm cluster in a huge box: no wall reflections for a while.
  auto sys = workloads::make_lj_gas(64, 0.008, 60.0, 4);
  Engine eng(std::move(sys), base_config());
  // Zero net momentum initially (subtract drift).
  Vec3 p0 = eng.system().total_momentum();
  const int n = eng.system().n_atoms();
  for (int i = 0; i < n; ++i) {
    eng.system().velocities()[static_cast<std::size_t>(i)] -=
        p0 / (eng.system().mass(i) * n);
  }
  eng.run_inline(100);
  const Vec3 p1 = eng.system().total_momentum();
  EXPECT_NEAR(p1.norm(), 0.0, 1e-9);
}

TEST(EngineTest, ImmovableAtomsStayPut) {
  auto spec = workloads::make_nanocar(17);
  Engine eng(std::move(spec.system), [&] {
    auto c = spec.engine;
    c.n_threads = 1;
    c.temporaries = TemporariesMode::InPlace;
    return c;
  }());
  std::vector<Vec3> before;
  for (int i = 0; i < eng.system().n_atoms(); ++i) {
    if (!eng.system().movable(i)) before.push_back(eng.system().positions()[i]);
  }
  eng.run_inline(25);
  std::size_t k = 0;
  for (int i = 0; i < eng.system().n_atoms(); ++i) {
    if (!eng.system().movable(i)) {
      EXPECT_EQ(eng.system().positions()[static_cast<std::size_t>(i)], before[k++]);
    }
  }
}

TEST(EngineTest, AtomsStayInsideBox) {
  auto spec = workloads::make_al1000(3);
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(spec.system), cfg);
  eng.run_inline(120);
  const Box& box = eng.system().box();
  for (const Vec3& p : eng.system().positions()) {
    EXPECT_GE(p.x, box.lo.x);
    EXPECT_LE(p.x, box.hi.x);
    EXPECT_GE(p.y, box.lo.y);
    EXPECT_LE(p.y, box.hi.y);
    EXPECT_GE(p.z, box.lo.z);
    EXPECT_LE(p.z, box.hi.z);
  }
}

TEST(EngineTest, NeighborListRebuildsWhenAtomsMove) {
  auto spec = workloads::make_al1000(3);
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(spec.system), cfg);
  eng.run_inline(1);
  EXPECT_EQ(eng.rebuild_count(), 1);  // first step always builds
  eng.run_inline(100);
  // The projectile forces frequent updates (the Al-1000 signature).
  EXPECT_GT(eng.rebuild_count(), 5);
}

TEST(EngineTest, StaticLjLatticeRarelyRebuilds) {
  // A cold lattice barely moves: after the initial build, few rebuilds.
  auto sys = workloads::make_lj_gas(125, 0.010, 5.0, 6);
  Engine eng(std::move(sys), base_config());
  eng.run_inline(100);
  EXPECT_LE(eng.rebuild_count(), 3);
}

// --- Backend equivalence ------------------------------------------------------

TEST(EngineTest, NativeMatchesInlineBitwise) {
  // Static assignment with per-thread queues: every FP operation happens in
  // the same buffer in the same order as inline execution.
  auto make = [] {
    auto sys = workloads::make_lj_gas(200, 0.011, 150.0, 8);
    EngineConfig cfg = base_config(4);
    return Engine(std::move(sys), cfg);
  };
  Engine inline_eng = make();
  inline_eng.run_inline(30);

  Engine native_eng = make();
  parallel::FixedThreadPool pool(
      {.n_threads = 4, .queue_mode = parallel::QueueMode::PerThread});
  native_eng.run_native(pool, 30);

  for (int i = 0; i < inline_eng.system().n_atoms(); ++i) {
    EXPECT_EQ(inline_eng.system().positions()[static_cast<std::size_t>(i)],
              native_eng.system().positions()[static_cast<std::size_t>(i)])
        << "atom " << i;
  }
  EXPECT_EQ(inline_eng.total_energy(), native_eng.total_energy());
}

TEST(EngineTest, SharedQueueNativeMatchesWithinTolerance) {
  auto make = [] {
    auto sys = workloads::make_lj_gas(200, 0.011, 150.0, 8);
    EngineConfig cfg = base_config(4);
    cfg.assignment = sim::Assignment::SharedQueue;
    return Engine(std::move(sys), cfg);
  };
  Engine inline_eng = make();
  inline_eng.run_inline(20);
  Engine native_eng = make();
  parallel::FixedThreadPool pool({.n_threads = 4});
  native_eng.run_native(pool, 20);
  EXPECT_NEAR(units::to_ev(inline_eng.total_energy()),
              units::to_ev(native_eng.total_energy()), 1e-6);
}

TEST(EngineTest, AllQueueModesMatchInlineBitwise) {
  // The strong determinism claim: with accumulation slots, every queue
  // discipline — including work stealing, where chunk-to-worker placement
  // changes run to run — reproduces the inline trajectory bit for bit.
  // Salt exercises LJ + Coulomb together; chunks_per_thread > 1 gives more
  // slots than workers so chains genuinely migrate.
  auto make = [] {
    auto spec = workloads::make_salt(4);
    auto cfg = spec.engine;
    cfg.n_threads = 4;
    cfg.chunks_per_thread = 2;
    cfg.assignment = sim::Assignment::WorkStealing;
    cfg.temporaries = TemporariesMode::InPlace;
    return Engine(std::move(spec.system), cfg);
  };
  Engine inline_eng = make();
  inline_eng.run_inline(12);

  for (const auto mode : {parallel::QueueMode::Single, parallel::QueueMode::PerThread,
                          parallel::QueueMode::WorkStealing}) {
    Engine native_eng = make();
    parallel::FixedThreadPool pool({.n_threads = 4, .queue_mode = mode});
    native_eng.run_native(pool, 12);
    EXPECT_EQ(inline_eng.total_energy(), native_eng.total_energy())
        << "queue mode " << static_cast<int>(mode);
    for (int i = 0; i < inline_eng.system().n_atoms(); ++i) {
      ASSERT_EQ(inline_eng.system().positions()[static_cast<std::size_t>(i)],
                native_eng.system().positions()[static_cast<std::size_t>(i)])
          << "atom " << i << " queue mode " << static_cast<int>(mode);
    }
  }
}

TEST(EngineTest, SparseReductionMatchesDenseBitwise) {
  // Untouched entries are exactly +0.0 and adding +0.0 is a bitwise no-op,
  // so skipping untouched (slot, block) pairs must not change one bit.
  auto make = [](bool sparse) {
    auto spec = workloads::make_salt(4);
    auto cfg = spec.engine;
    cfg.n_threads = 4;
    cfg.chunks_per_thread = 2;
    cfg.assignment = sim::Assignment::WorkStealing;
    cfg.temporaries = TemporariesMode::InPlace;
    cfg.sparse_reduction = sparse;
    return Engine(std::move(spec.system), cfg);
  };
  Engine dense = make(false);
  dense.run_inline(12);
  Engine sparse = make(true);
  sparse.run_inline(12);
  EXPECT_EQ(dense.total_energy(), sparse.total_energy());
  for (int i = 0; i < dense.system().n_atoms(); ++i) {
    ASSERT_EQ(dense.system().positions()[static_cast<std::size_t>(i)],
              sparse.system().positions()[static_cast<std::size_t>(i)])
        << "atom " << i;
  }
}

TEST(EngineTest, WorkStealingAssignmentSimulates) {
  // The simulated backend's deque model must run the same physics and
  // account every task (busy time > 0, steal counters consistent).
  auto spec = workloads::make_salt(4);
  auto cfg = spec.engine;
  cfg.n_threads = 4;
  cfg.chunks_per_thread = 2;
  cfg.assignment = sim::Assignment::WorkStealing;
  cfg.temporaries = TemporariesMode::InPlace;
  Engine inline_eng = [&] {
    auto s2 = workloads::make_salt(4);
    return Engine(std::move(s2.system), cfg);
  }();
  inline_eng.run_inline(8);

  Engine traced(std::move(spec.system), cfg);
  sim::Machine machine = make_machine(4);
  traced.run_simulated(machine, 8);

  EXPECT_EQ(inline_eng.total_energy(), traced.total_energy());
  EXPECT_GT(machine.now_seconds(), 0.0);
  EXPECT_GE(machine.counters().steals, 0);
  if (machine.counters().steals > 0) {
    EXPECT_GT(machine.counters().steal_overhead_cycles, 0.0);
  }
}

TEST(EngineTest, TracedMatchesInlineBitwise) {
  auto make = [](TemporariesMode temps) {
    auto sys = workloads::make_lj_gas(150, 0.011, 150.0, 12);
    EngineConfig cfg = base_config(4);
    cfg.temporaries = temps;
    return Engine(std::move(sys), cfg);
  };
  Engine inline_eng = make(TemporariesMode::InPlace);
  inline_eng.run_inline(15);

  Engine traced = make(TemporariesMode::JavaStyle);
  sim::Machine machine = make_machine(4);
  traced.run_simulated(machine, 15);

  for (int i = 0; i < inline_eng.system().n_atoms(); ++i) {
    EXPECT_EQ(inline_eng.system().positions()[static_cast<std::size_t>(i)],
              traced.system().positions()[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(machine.now_seconds(), 0.0);
}

TEST(EngineTest, LayoutDoesNotChangePhysics) {
  auto run_with = [](Layout layout) {
    auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
    EngineConfig cfg = base_config(2);
    cfg.heap.layout = layout;
    Engine eng(std::move(sys), cfg);
    sim::Machine machine = make_machine(2);
    eng.run_simulated(machine, 10);
    return eng.total_energy();
  };
  const double a = run_with(Layout::JavaObjects);
  const double b = run_with(Layout::PackedSoA);
  const double c = run_with(Layout::ReorderedObjects);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(EngineTest, ChunkCountDoesNotChangeTraceRuntimeMuch) {
  // More chunks = finer tasks, same total work.
  auto run_with = [](int chunks) {
    auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
    EngineConfig cfg = base_config(2);
    cfg.chunks_per_thread = chunks;
    Engine eng(std::move(sys), cfg);
    sim::Machine machine = make_machine(2);
    eng.run_simulated(machine, 10);
    return machine.now_seconds();
  };
  const double coarse = run_with(1);
  const double fine = run_with(4);
  EXPECT_NEAR(coarse, fine, coarse * 0.25);
}

TEST(EngineTest, PoolSizeMismatchAcceptedNatively) {
  // The re-entrancy contract: run_native takes a pool of ANY size (shared
  // pools are the point) and the energy bits depend only on config.n_threads.
  auto sys = workloads::make_lj_gas(50, 0.01, 100.0, 1);
  Engine matched(sys, base_config(2));
  parallel::FixedThreadPool dedicated({.n_threads = 2});
  matched.run_native(dedicated, 3);

  Engine eng(sys, base_config(2));
  parallel::FixedThreadPool pool({.n_threads = 3});
  eng.run_native(pool, 3);
  EXPECT_EQ(eng.potential_energy(), matched.potential_energy());
  EXPECT_EQ(eng.kinetic_energy(), matched.kinetic_energy());

  // The simulated path still models a machine of exactly n_threads cores.
  sim::Machine machine = make_machine(4);
  EXPECT_THROW(eng.run_simulated(machine, 1), ContractError);
}

TEST(EngineTest, SimulatedTimeAdvancesMonotonically) {
  auto spec = workloads::make_salt(5);
  auto cfg = spec.engine;
  cfg.n_threads = 2;
  Engine eng(std::move(spec.system), cfg);
  sim::Machine machine = make_machine(2);
  double prev = 0.0;
  for (int s = 0; s < 5; ++s) {
    eng.run_simulated(machine, 1);
    EXPECT_GT(machine.now_seconds(), prev);
    prev = machine.now_seconds();
  }
}

TEST(EngineTest, JavaTemporariesTrackedAndCollected) {
  auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
  EngineConfig cfg = base_config(1);
  cfg.temporaries = TemporariesMode::JavaStyle;
  cfg.heap.heap_bytes = 1;  // clamps to the minimum young region: forces GCs
  Engine eng(std::move(sys), cfg);
  sim::Machine machine = make_machine(1);
  eng.run_simulated(machine, 120);
  EXPECT_GT(eng.heap().temp_allocations(), 1000);
  EXPECT_GT(eng.heap().gc_count(), 0);
  // The temporary Vec3 class dominates total allocations (Section V-B).
  const auto report = eng.tracker().report(eng.temp_vec3_type());
  EXPECT_GT(report.total_allocated, 1000);
}

TEST(EngineTest, InPlaceModeAllocatesNoTemporaries) {
  auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
  EngineConfig cfg = base_config(1);
  cfg.temporaries = TemporariesMode::InPlace;
  Engine eng(std::move(sys), cfg);
  sim::Machine machine = make_machine(1);
  eng.run_simulated(machine, 10);
  EXPECT_EQ(eng.heap().temp_allocations(), 0);
}

TEST(EngineTest, NativeEventLogCapturesPhases) {
  auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
  Engine eng(std::move(sys), base_config(2));
  perf::EventLog log(2);
  eng.attach_event_log(&log);
  parallel::FixedThreadPool pool(
      {.n_threads = 2, .queue_mode = parallel::QueueMode::PerThread});
  eng.run_native(pool, 3);
  EXPECT_GE(log.total_events(), 3u * 5u);  // >= phases x steps
  bool saw_forces = false;
  for (int t = 0; t < 2; ++t) {
    for (const auto& e : log.events_of(t)) {
      if (e.tag == kPhaseForces) saw_forces = true;
    }
  }
  EXPECT_TRUE(saw_forces);
}

TEST(EngineTest, NativeMonitorCollectsPhaseTimings) {
  auto sys = workloads::make_lj_gas(100, 0.011, 150.0, 2);
  Engine eng(std::move(sys), base_config(1));
  perf::JamonMonitor monitor;
  eng.attach_monitor(&monitor);
  eng.run_inline(0);  // attach is independent of backend
  parallel::FixedThreadPool pool({.n_threads = 1});
  eng.run_native(pool, 2);
  EXPECT_GT(monitor.total_hits(), 0);
}

TEST(EngineTest, ValidatesConfiguration) {
  auto sys = workloads::make_lj_gas(10, 0.01, 100.0, 1);
  EngineConfig cfg = base_config(0);
  EXPECT_THROW(Engine(std::move(sys), cfg), ContractError);
  auto sys2 = workloads::make_lj_gas(10, 0.01, 100.0, 1);
  EngineConfig cfg2 = base_config(1);
  cfg2.dt_fs = 0.0;
  EXPECT_THROW(Engine(std::move(sys2), cfg2), ContractError);
}

}  // namespace
}  // namespace mwx::md
