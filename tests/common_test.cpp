#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "common/vec3.hpp"

namespace mwx {
namespace {

TEST(Vec3Test, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(b / 2.0, Vec3(2, 2.5, 3));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
  v /= 3.0;
  EXPECT_EQ(v, Vec3(1, 2, 3));
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(dot(x, y), 0.0);
  EXPECT_EQ(dot(x, x), 1.0);
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  EXPECT_EQ(cross(x, x), Vec3(0, 0, 0));
}

TEST(Vec3Test, NormAndDistance) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{1, 1, 1}, Vec3{1, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(distance2(Vec3{0, 0, 0}, Vec3{1, 2, 2}), 9.0);
}

TEST(Vec3Test, MaxAbsComponent) {
  EXPECT_DOUBLE_EQ(Vec3(-5, 2, 3).max_abs_component(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(1, -7, 3).max_abs_component(), 7.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 2, -9).max_abs_component(), 9.0);
}

TEST(Vec3Test, IndexAccess) {
  Vec3 v{1, 2, 3};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 9.0;
  EXPECT_EQ(v.y, 9.0);
}

TEST(Vec3Test, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1, 2, 3};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngTest, MaxwellBoltzmannIsotropic) {
  Rng rng(5);
  RunningStats sx, sy, sz;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 v = rng.maxwell_boltzmann(2.0);
    sx.add(v.x);
    sy.add(v.y);
    sz.add(v.z);
  }
  EXPECT_NEAR(sx.stddev(), std::sqrt(2.0), 0.05);
  EXPECT_NEAR(sy.stddev(), std::sqrt(2.0), 0.05);
  EXPECT_NEAR(sz.stddev(), std::sqrt(2.0), 0.05);
}

TEST(RngTest, PointInBox) {
  Rng rng(9);
  const Vec3 lo{-1, 0, 2}, hi{1, 3, 4};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p = rng.point_in_box(lo, hi);
    EXPECT_GE(p.x, lo.x);
    EXPECT_LT(p.x, hi.x);
    EXPECT_GE(p.y, lo.y);
    EXPECT_LT(p.y, hi.y);
    EXPECT_GE(p.z, lo.z);
    EXPECT_LT(p.z, hi.z);
  }
}

TEST(UnitsTest, EnergyRoundTrip) {
  EXPECT_NEAR(units::to_ev(units::ev(3.7)), 3.7, 1e-12);
}

TEST(UnitsTest, InternalEnergyUnitMagnitude) {
  // 1 amu·Å²/fs² ≈ 103.64 eV.
  EXPECT_NEAR(units::to_ev(1.0), 103.64, 0.01);
}

TEST(UnitsTest, KineticToKelvin) {
  // 3/2 N kB T of kinetic energy must invert to T.
  const int n = 100;
  const double t = 300.0;
  const double ke = 1.5 * n * units::kBoltzmann * t;
  EXPECT_NEAR(units::kinetic_to_kelvin(ke, n), t, 1e-9);
  EXPECT_EQ(units::kinetic_to_kelvin(1.0, 0), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StatsTest, ImbalanceRatioBalanced) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({1.0, 1.0, 1.0, 1.0}), 1.0);
}

TEST(StatsTest, ImbalanceRatioSkewed) {
  // max 4, mean 2.5 -> 1.6
  EXPECT_DOUBLE_EQ(imbalance_ratio({1.0, 2.0, 3.0, 4.0}), 1.6);
}

TEST(StatsTest, ImbalanceEmptyThrows) {
  EXPECT_THROW(imbalance_ratio({}), ContractError);
}

TEST(StatsTest, BarrierWasteFraction) {
  // One thread works 4s, three idle after 2s: waste = (2+2+2)/(4*4) = 0.375.
  EXPECT_DOUBLE_EQ(barrier_waste_fraction({4.0, 2.0, 2.0, 2.0}), 0.375);
  EXPECT_DOUBLE_EQ(barrier_waste_fraction({3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(barrier_waste_fraction({0.0, 0.0}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_THROW(percentile({}, 50), ContractError);
  EXPECT_THROW(percentile(v, 101), ContractError);
}

TEST(TableTest, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
  t.row("x", 1);
  EXPECT_EQ(t.n_rows(), 1u);
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::cell(3), "3");
  EXPECT_EQ(Table::cell("s"), "s");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(0.0), "0");
}

TEST(TableTest, PrintContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.row("alpha", 42);
  std::ostringstream os;
  t.print(os, "My Table");
  const std::string s = os.str();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.row(1, 2);
  t.row(3, 4);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(RequireTest, ThrowsWithMessage) {
  try {
    require(false, "broken invariant");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"), std::string::npos);
  }
  EXPECT_NO_THROW(require(true, "fine"));
}

}  // namespace
}  // namespace mwx
