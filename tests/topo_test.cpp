#include <gtest/gtest.h>

#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"
#include "topo/topology.hpp"

namespace mwx::topo {
namespace {

TEST(CpuSetTest, EmptyByDefault) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.first(), -1);
}

TEST(CpuSetTest, SetTestClear) {
  CpuSet s;
  s.set(3);
  s.set(64);  // crosses the word boundary
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(64));
  EXPECT_FALSE(s.test(4));
  EXPECT_EQ(s.count(), 2);
  s.clear(3);
  EXPECT_FALSE(s.test(3));
  EXPECT_EQ(s.count(), 1);
}

TEST(CpuSetTest, OutOfRangeThrows) {
  CpuSet s;
  EXPECT_THROW(s.set(-1), ContractError);
  EXPECT_THROW(s.set(CpuSet::kMaxPus), ContractError);
  EXPECT_FALSE(s.test(-1));
  EXPECT_FALSE(s.test(CpuSet::kMaxPus + 5));
}

TEST(CpuSetTest, FactoryHelpers) {
  EXPECT_EQ(CpuSet::all(8).count(), 8);
  EXPECT_EQ(CpuSet::of({1, 5, 9}).count(), 3);
  const CpuSet r = CpuSet::range(4, 8);
  EXPECT_EQ(r.count(), 4);
  EXPECT_TRUE(r.test(4));
  EXPECT_TRUE(r.test(7));
  EXPECT_FALSE(r.test(8));
}

TEST(CpuSetTest, FirstAndNextIterate) {
  const CpuSet s = CpuSet::of({2, 70, 130});
  EXPECT_EQ(s.first(), 2);
  EXPECT_EQ(s.next(2), 70);
  EXPECT_EQ(s.next(70), 130);
  EXPECT_EQ(s.next(130), -1);
}

TEST(CpuSetTest, SetOperations) {
  const CpuSet a = CpuSet::of({1, 2, 3});
  const CpuSet b = CpuSet::of({2, 3, 4});
  EXPECT_EQ((a & b).count(), 2);
  EXPECT_EQ((a | b).count(), 4);
  EXPECT_TRUE(a == CpuSet::of({3, 2, 1}));
  EXPECT_FALSE(a == b);
}

TEST(CpuSetTest, ToStringRanges) {
  EXPECT_EQ(CpuSet::of({0, 1, 2, 3}).to_string(), "0-3");
  EXPECT_EQ(CpuSet::of({0, 2, 3, 8}).to_string(), "0,2-3,8");
  EXPECT_EQ(CpuSet().to_string(), "(empty)");
}

// --- Table II presets --------------------------------------------------------

TEST(MachineSpecTest, CoreI7MatchesTable2) {
  const MachineSpec m = core_i7_920();
  EXPECT_EQ(m.packages, 1);
  EXPECT_EQ(m.cores_per_package, 4);
  EXPECT_EQ(m.n_cores(), 4);
  EXPECT_EQ(m.n_pus(), 8);  // HyperThreading
  ASSERT_NE(m.find_level(1), nullptr);
  EXPECT_EQ(m.find_level(1)->size_bytes, 32 * 1024);
  EXPECT_EQ(m.find_level(2)->size_bytes, 256 * 1024);
  EXPECT_EQ(m.find_level(3)->size_bytes, 8 * 1024 * 1024);
  // One L3 shared by all 4 cores (8 PUs).
  EXPECT_EQ(m.find_level(3)->pus_per_instance, 8);
  EXPECT_EQ(m.memory.total_bytes, 6ll * 1024 * 1024 * 1024);
}

TEST(MachineSpecTest, XeonE5450MatchesTable2) {
  const MachineSpec m = xeon_e5450_2s();
  EXPECT_EQ(m.packages, 2);
  EXPECT_EQ(m.n_cores(), 8);
  EXPECT_EQ(m.n_pus(), 8);  // no SMT
  // 6 MB LLC per core pair -> 4 instances machine-wide.
  EXPECT_EQ(m.find_level(3)->size_bytes, 6 * 1024 * 1024);
  EXPECT_EQ(m.find_level(3)->pus_per_instance, 2);
  EXPECT_EQ(m.memory.total_bytes, 16ll * 1024 * 1024 * 1024);
}

TEST(MachineSpecTest, XeonX7560MatchesTable2) {
  const MachineSpec m = xeon_x7560_4s();
  EXPECT_EQ(m.packages, 4);
  EXPECT_EQ(m.cores_per_package, 8);
  EXPECT_EQ(m.n_cores(), 32);
  EXPECT_EQ(m.n_pus(), 64);
  EXPECT_EQ(m.find_level(3)->size_bytes, 24 * 1024 * 1024);
  EXPECT_EQ(m.find_level(3)->pus_per_instance, 16);  // 8 cores x 2 SMT
  EXPECT_EQ(m.memory.total_bytes, 192ll * 1024 * 1024 * 1024);
}

TEST(MachineSpecTest, PuMapping) {
  const MachineSpec m = xeon_x7560_4s();
  EXPECT_EQ(m.pu_to_core(0), 0);
  EXPECT_EQ(m.pu_to_core(1), 0);  // SMT sibling
  EXPECT_EQ(m.pu_to_core(2), 1);
  EXPECT_EQ(m.pu_to_package(0), 0);
  EXPECT_EQ(m.pu_to_package(16), 1);
  EXPECT_EQ(m.core_to_package(7), 0);
  EXPECT_EQ(m.core_to_package(8), 1);
}

TEST(MachineSpecTest, CacheInstanceIndexing) {
  const MachineSpec m = core_i7_920();
  // L1 per core (2 PUs): PUs 0,1 -> instance 0; PUs 2,3 -> instance 1.
  EXPECT_EQ(m.cache_instance(1, 0), 0);
  EXPECT_EQ(m.cache_instance(1, 1), 0);
  EXPECT_EQ(m.cache_instance(1, 2), 1);
  // L3 shared by all -> instance 0 for everyone.
  EXPECT_EQ(m.cache_instance(3, 7), 0);
  // Missing level.
  EXPECT_EQ(m.cache_instance(4, 0), -1);
}

TEST(MachineSpecTest, Table2HasThreeMachines) {
  const auto machines = table2_machines();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0].processor, "Intel Core i7 920");
  EXPECT_EQ(machines[1].processor, "Intel Xeon E5450");
  EXPECT_EQ(machines[2].processor, "Intel Xeon X7560");
}

// --- Topology tree -----------------------------------------------------------

TEST(TopologyTest, TreeShapeForI7) {
  const Topology topo(core_i7_920());
  const Node& root = topo.root();
  EXPECT_EQ(root.type, NodeType::Machine);
  ASSERT_EQ(root.children.size(), 1u);  // one package
  const Node& pkg = *root.children[0];
  EXPECT_EQ(pkg.type, NodeType::Package);
  // Package children: one L3 cache node + 4 cores.
  int cores = 0, caches = 0;
  for (const auto& c : pkg.children) {
    if (c->type == NodeType::Core) ++cores;
    if (c->type == NodeType::Cache) ++caches;
  }
  EXPECT_EQ(cores, 4);
  EXPECT_EQ(caches, 1);
}

TEST(TopologyTest, SmtSiblings) {
  const Topology topo(core_i7_920());
  EXPECT_EQ(topo.smt_siblings(0), CpuSet::of({0, 1}));
  EXPECT_EQ(topo.smt_siblings(5), CpuSet::of({4, 5}));
}

TEST(TopologyTest, PusSharingCache) {
  const Topology e5450(xeon_e5450_2s());
  // Core pairs share the LLC.
  EXPECT_EQ(e5450.pus_sharing_cache(3, 0), CpuSet::of({0, 1}));
  EXPECT_EQ(e5450.pus_sharing_cache(3, 5), CpuSet::of({4, 5}));
  // L1 is private.
  EXPECT_EQ(e5450.pus_sharing_cache(1, 3), CpuSet::of({3}));
}

TEST(TopologyTest, OnePuPerCoreAvoidsSmtSiblings) {
  const Topology topo(xeon_x7560_4s());
  const auto pus = topo.one_pu_per_core();
  ASSERT_EQ(pus.size(), 32u);
  for (std::size_t i = 0; i < pus.size(); ++i) {
    EXPECT_EQ(pus[i] % 2, 0) << "must pick the primary SMT thread";
  }
}

TEST(TopologyTest, PusOfPackage) {
  const Topology topo(xeon_e5450_2s());
  const auto p1 = topo.pus_of_package(1);
  ASSERT_EQ(p1.size(), 4u);
  EXPECT_EQ(p1.front(), 4);
  EXPECT_EQ(p1.back(), 7);
  EXPECT_THROW(topo.pus_of_package(2), ContractError);
}

TEST(TopologyTest, DistanceClasses) {
  const Topology topo(xeon_x7560_4s());
  EXPECT_EQ(topo.distance_class(0, 0), 0);   // same PU
  EXPECT_EQ(topo.distance_class(0, 1), 1);   // SMT siblings
  EXPECT_EQ(topo.distance_class(0, 2), 2);   // same LLC
  EXPECT_EQ(topo.distance_class(0, 16), 4);  // cross package
}

TEST(TopologyTest, DistanceClassSamePackageNoSharedLlc) {
  // On E5450 the LLC covers a core pair; cores 0 and 3 share a package only.
  const Topology topo(xeon_e5450_2s());
  EXPECT_EQ(topo.distance_class(0, 1), 2);  // same LLC pair
  EXPECT_EQ(topo.distance_class(0, 3), 3);  // same package, different LLC
  EXPECT_EQ(topo.distance_class(0, 4), 4);  // other package
}

TEST(TopologyTest, RenderMentionsResources) {
  const Topology topo(core_i7_920());
  const std::string s = topo.render();
  EXPECT_NE(s.find("Machine"), std::string::npos);
  EXPECT_NE(s.find("Package"), std::string::npos);
  EXPECT_NE(s.find("Core"), std::string::npos);
  EXPECT_NE(s.find("PU"), std::string::npos);
  EXPECT_NE(s.find("L3"), std::string::npos);
}

TEST(TopologyTest, InvalidSpecRejected) {
  MachineSpec bad = core_i7_920();
  bad.packages = 0;
  EXPECT_THROW(Topology{bad}, ContractError);
}

TEST(TopologyTest, DiscoverHostIsSane) {
  const MachineSpec host = discover_host();
  EXPECT_GE(host.n_pus(), 1);
  EXPECT_FALSE(host.caches.empty());
  // The tree must build without throwing.
  const Topology topo(host);
  EXPECT_GE(topo.n_pus(), 1);
}

}  // namespace
}  // namespace mwx::topo
