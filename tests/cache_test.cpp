#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace mwx::sim {
namespace {

TEST(CacheTest, GeometryValidation) {
  EXPECT_THROW(SetAssocCache(0, 64, 8), ContractError);
  EXPECT_THROW(SetAssocCache(64, 64, 8), ContractError);  // smaller than one set
  const SetAssocCache c(32 * 1024, 64, 8);
  EXPECT_EQ(c.n_sets(), 64);
  EXPECT_EQ(c.ways(), 8);
  EXPECT_EQ(c.line_bytes(), 64);
}

TEST(CacheTest, FirstAccessMissesThenHits) {
  SetAssocCache c(4 * 1024, 64, 4);
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1010, false).hit);  // same line
  EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
  EXPECT_EQ(c.stats().hits, 2);
  EXPECT_EQ(c.stats().misses, 2);
}

TEST(CacheTest, ContainsReflectsContents) {
  SetAssocCache c(4 * 1024, 64, 4);
  EXPECT_FALSE(c.contains(0x2000));
  c.access(0x2000, false);
  EXPECT_TRUE(c.contains(0x2000));
  EXPECT_TRUE(c.contains(0x203f));  // same line
}

TEST(CacheTest, InvalidateRemovesLine) {
  SetAssocCache c(4 * 1024, 64, 4);
  c.access(0x2000, true);
  c.invalidate_line(0x2000 / 64);
  EXPECT_FALSE(c.contains(0x2000));
}

TEST(CacheTest, FlushEmptiesCacheKeepsStats) {
  SetAssocCache c(4 * 1024, 64, 4);
  c.access(0x100, false);
  c.access(0x100, false);
  c.flush();
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_EQ(c.stats().hits, 1);
  c.reset_stats();
  EXPECT_EQ(c.stats().hits, 0);
}

TEST(CacheTest, DirtyEvictionReported) {
  // Direct-mapped single-set cache to force deterministic eviction: pick a
  // cache with 1 way so any new line evicts the old one.
  SetAssocCache c(64, 64, 1);
  c.access(0x0, true);  // dirty line
  const auto r = c.access(0x40000, false);  // evicts whatever set it maps to
  // With one set, the second access must evict the first, which was dirty.
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1);
}

TEST(CacheTest, CleanEvictionNotDirty) {
  SetAssocCache c(64, 64, 1);
  c.access(0x0, false);
  const auto r = c.access(0x40000, false);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_FALSE(r.evicted_dirty);
}

TEST(CacheTest, WriteToResidentLineMarksDirty) {
  SetAssocCache c(64, 64, 1);
  c.access(0x0, false);   // clean install
  c.access(0x8, true);    // write hit marks dirty
  const auto r = c.access(0x40000, false);
  EXPECT_TRUE(r.evicted_dirty);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // One set, 2 ways: touch A, B, re-touch A, then C must evict B.
  SetAssocCache c(128, 64, 2);
  // Find three distinct lines mapping to the same (only) set: with one set,
  // every line maps there.
  c.access(0x000, false);  // A
  c.access(0x100, false);  // B
  c.access(0x000, false);  // A again (B is now LRU)
  c.access(0x200, false);  // C evicts B
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x200));
}

TEST(CacheTest, WorkingSetSmallerThanCacheEventuallyAllHits) {
  SetAssocCache c(32 * 1024, 64, 8);
  // 16 KiB working set in a 32 KiB cache: after the first sweep, hits only.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 16 * 1024; a += 64) c.access(a, false);
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.misses, 256);      // one cold miss per line
  EXPECT_EQ(s.hits, 512);        // two further full sweeps
}

TEST(CacheTest, StreamingLargerThanCacheKeepsMissing) {
  SetAssocCache c(4 * 1024, 64, 4);
  // 64 KiB stream through a 4 KiB cache: every pass misses everywhere.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) c.access(a, false);
  }
  EXPECT_GT(c.stats().miss_rate(), 0.95);
}

TEST(CacheStatsTest, Accumulation) {
  CacheStats a{10, 5, 2}, b{1, 1, 1};
  a += b;
  EXPECT_EQ(a.hits, 11);
  EXPECT_EQ(a.misses, 6);
  EXPECT_EQ(a.dirty_evictions, 3);
  EXPECT_EQ(a.accesses(), 17);
  EXPECT_NEAR(a.miss_rate(), 6.0 / 17.0, 1e-12);
  EXPECT_EQ(CacheStats{}.miss_rate(), 0.0);
}

// Geometry sweep: associativity 1..16, sizes 4..64 KiB — the full working
// set must always fit when small enough and always thrash when 16x larger.
class CacheGeometry : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometry, SmallSetFitsLargeSetThrashes) {
  const auto [size_kib, ways] = GetParam();
  SetAssocCache c(size_kib * 1024, 64, ways);
  const std::uint64_t small_set = static_cast<std::uint64_t>(size_kib) * 1024 / 4;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < small_set; a += 64) c.access(a, false);
  }
  // Quarter-size working set: at most the cold misses plus a small number of
  // conflict misses (hashed index spreads lines imperfectly).
  EXPECT_LT(c.stats().miss_rate(), 0.35);
  c.reset_stats();
  const std::uint64_t big_set = static_cast<std::uint64_t>(size_kib) * 1024 * 16;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < big_set; a += 64) c.access(a, false);
  }
  EXPECT_GT(c.stats().miss_rate(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Combine(::testing::Values(4, 8, 32, 64),
                                            ::testing::Values(1, 2, 4, 8, 16)));

}  // namespace
}  // namespace mwx::sim
