// TraceRing: lock-free recording, merge-at-read snapshots, wrap/drop
// accounting, the chrome://tracing exporter, and the wiring through the
// thread pool, the native engine and the simulated machine backend.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/trace_ring.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::perf {
namespace {

TEST(TraceRingTest, RecordsAndSnapshotsInTimeOrder) {
  TraceRing ring(2, 16);
  ring.record(0, TraceKind::Task, 4, 2.0, 3.0, 7);
  ring.record(1, TraceKind::Steal, 0, 0.5, 0.5, 0);
  ring.record(0, TraceKind::Phase, 1, 1.0, 4.0);

  const TraceSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.total_records, 3u);
  EXPECT_EQ(snap.dropped, 0u);
  // Merged order is by begin time, regardless of lane or record order.
  EXPECT_EQ(snap.events[0].event.kind, TraceKind::Steal);
  EXPECT_EQ(snap.events[0].lane, 1);
  EXPECT_EQ(snap.events[1].event.kind, TraceKind::Phase);
  EXPECT_EQ(snap.events[2].event.kind, TraceKind::Task);
  EXPECT_EQ(snap.events[2].event.tag, 4);
  EXPECT_EQ(snap.events[2].event.arg, 7);
  EXPECT_DOUBLE_EQ(snap.events[2].event.begin, 2.0);
  EXPECT_DOUBLE_EQ(snap.events[2].event.end, 3.0);
  EXPECT_EQ(snap.events[2].seq, 0u);  // first record on lane 0
  EXPECT_EQ(snap.events[1].seq, 1u);  // second record on lane 0
}

TEST(TraceRingTest, WrapKeepsNewestEventsAndCountsDropped) {
  TraceRing ring(1, 8);
  for (int i = 0; i < 20; ++i) {
    ring.record(0, TraceKind::Task, i, static_cast<double>(i), static_cast<double>(i) + 0.5);
  }
  const TraceSnapshot snap = ring.snapshot();
  EXPECT_EQ(snap.total_records, 20u);
  // The slot the writer would overwrite next is excluded, so a full lane
  // yields capacity - 1 events; everything older is counted as dropped.
  ASSERT_EQ(snap.events.size(), 7u);
  EXPECT_EQ(snap.dropped, 13u);
  for (std::size_t k = 0; k < snap.events.size(); ++k) {
    EXPECT_EQ(snap.events[k].event.tag, 13 + static_cast<int>(k));
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(1, 9);
  EXPECT_EQ(ring.capacity_per_lane(), 16u);
  EXPECT_THROW(TraceRing(0), ContractError);
}

TEST(TraceRingTest, ClearResetsLanes) {
  TraceRing ring(2, 8);
  ring.record(0, TraceKind::Task, 0, 0.0, 1.0);
  ring.clear();
  EXPECT_EQ(ring.total_records(), 0u);
  EXPECT_TRUE(ring.snapshot().events.empty());
}

// The observer-effect contract: concurrent writers on distinct lanes plus a
// concurrent snapshotting reader, with no locks anywhere.  Under the tsan
// preset this validates that merge-at-read is race-free by construction.
TEST(TraceRingTest, ConcurrentWritersAndSnapshotsAreRaceFree) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  TraceRing ring(kWriters, 256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.record(w, TraceKind::Task, i, static_cast<double>(i),
                    static_cast<double>(i) + 1.0, w);
      }
    });
  }
  std::thread reader([&ring, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const TraceSnapshot snap = ring.snapshot();
      for (const auto& m : snap.events) {
        // Every surviving event must be fully-formed, never torn.
        ASSERT_GE(m.event.end, m.event.begin);
        ASSERT_EQ(m.event.arg, m.lane);
        ASSERT_EQ(m.event.tag, static_cast<int>(m.event.begin));
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const TraceSnapshot final_snap = ring.snapshot();
  EXPECT_EQ(final_snap.total_records,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  // After writers quiesce nothing can be torn: kept + dropped == written.
  EXPECT_EQ(final_snap.events.size() + final_snap.dropped, final_snap.total_records);
}

TEST(TraceRingTest, ChromeExportEmitsCompleteEvents) {
  TraceRing ring(2, 8);
  ring.record(0, TraceKind::Phase, 4, 0.001, 0.002);
  ring.record(1, TraceKind::Steal, 0, 0.0015, 0.0015, 0);
  std::ostringstream os;
  write_chrome_trace(ring.snapshot(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"steal\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceRingTest, PoolRecordsTaskStealAndQuiesceEvents) {
  parallel::FixedThreadPool pool(
      {.n_threads = 3, .queue_mode = parallel::QueueMode::WorkStealing});
  TraceRing ring(4, 1 << 12);
  pool.attach_trace(&ring);
  std::atomic<int> count{0};
  for (int i = 0; i < 300; ++i) {
    pool.submit_to(0, [&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++count;
    });
  }
  pool.quiesce();
  pool.shutdown();
  EXPECT_EQ(count.load(), 300);

  const TraceSnapshot snap = ring.snapshot();
  long long tasks = 0, steals = 0, quiesces = 0;
  for (const auto& m : snap.events) {
    if (m.event.kind == TraceKind::Task) ++tasks;
    if (m.event.kind == TraceKind::Steal) ++steals;
    if (m.event.kind == TraceKind::Quiesce) ++quiesces;
  }
  EXPECT_EQ(snap.dropped, 0u);  // 4096-deep lanes never wrap here
  EXPECT_EQ(tasks, 300);
  EXPECT_EQ(steals, pool.steals());
  EXPECT_EQ(quiesces, 1);
}

TEST(TraceRingTest, PoolRejectsUndersizedRing) {
  parallel::FixedThreadPool pool({.n_threads = 4});
  TraceRing small(4);  // needs 4 workers + 1 external
  EXPECT_THROW(pool.attach_trace(&small), ContractError);
}

TEST(TraceRingTest, NativeEngineEmitsPhaseBracketsAndTasks) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 2;
  md::Engine engine(std::move(spec.system), cfg);
  parallel::FixedThreadPool pool({.n_threads = 2});
  TraceRing ring(3, 1 << 14);
  engine.attach_trace(&ring);
  engine.run_native(pool, 2);
  pool.shutdown();

  const TraceSnapshot snap = ring.snapshot();
  long long phases = 0, tasks = 0;
  for (const auto& m : snap.events) {
    if (m.event.kind == TraceKind::Phase) {
      ++phases;
      EXPECT_EQ(m.lane, ring.external_lane());
    }
    if (m.event.kind == TraceKind::Task) {
      ++tasks;
      EXPECT_LT(m.lane, 2);
    }
  }
  // Five dispatched phases per step (predictor, check, fused forces, reduce,
  // corrector) plus one CSR neighbor-count phase per rebuild step, each
  // bracketing at least one task per worker chain.
  EXPECT_EQ(phases, 2 * 5 + engine.rebuild_count());
  EXPECT_GT(tasks, phases);
}

TEST(TraceRingTest, SimulatedBackendEmitsComparableTrace) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 2;
  md::Engine engine(std::move(spec.system), cfg);

  TraceRing ring(3, 1 << 14);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 2;
  mc.trace = &ring;
  sim::Machine machine(mc);
  engine.run_simulated(machine, 2);

  const TraceSnapshot snap = ring.snapshot();
  long long phases = 0, tasks = 0, steps = 0;
  double last_step_end = 0.0;
  for (const auto& m : snap.events) {
    if (m.event.kind == TraceKind::Phase) ++phases;
    if (m.event.kind == TraceKind::Task) ++tasks;
    if (m.event.kind == TraceKind::SimStep) {
      ++steps;
      EXPECT_EQ(m.lane, ring.external_lane());
      EXPECT_GE(m.event.begin, last_step_end);
      last_step_end = m.event.end;
    }
  }
  EXPECT_EQ(steps, 2);
  // Five dispatched phases per step, plus three per rebuild step: the CSR
  // count phase and — with parallel_rebuild (the default) — the bin and
  // prefix-scan phases the simulator now times as parallel work.
  EXPECT_EQ(phases, 2 * 5 + 3 * engine.rebuild_count());
  EXPECT_GT(tasks, 0);
  // Simulated timestamps line up with the machine clock.
  EXPECT_NEAR(last_step_end, machine.now_seconds(), 1e-12);
}

// The PR 9 parallel-rebuild pipeline added three phases (bin, prefix scan,
// Morton sort) per rebuild step, each bracketing one task per worker: a
// rebuild-heavy run now writes enough events per step to lap an undersized
// ring many times over.  Merge-at-read must degrade by *forgetting counted
// history* — never by corrupting survivors or losing the newest events.
TEST(TraceRingTest, RebuildPhasesLapSmallRingWithoutCorruption) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 2;
  cfg.reorder_interval = 1;  // every rebuild runs bin + prefix + Morton sort
  md::Engine engine(std::move(spec.system), cfg);

  // 8 slots per lane vs ~10 phase/step events on the external lane alone:
  // every lane wraps every step.
  TraceRing ring(3, 8);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 2;
  mc.trace = &ring;
  sim::Machine machine(mc);
  engine.run_simulated(machine, 8);
  ASSERT_GT(engine.rebuild_count(), 0);

  const TraceSnapshot snap = ring.snapshot();
  EXPECT_GT(snap.dropped, 0u);
  // Writers are quiescent, so the accounting must balance exactly.
  EXPECT_EQ(snap.events.size() + snap.dropped, snap.total_records);
  // Each lane keeps at most capacity - 1 survivors (the writer's next slot
  // is excluded).
  EXPECT_LE(snap.events.size(), 3u * (ring.capacity_per_lane() - 1));

  double newest_end = 0.0;
  for (const auto& m : snap.events) {
    // Survivors are fully-formed: valid kind, causal interval, known lane.
    EXPECT_LE(static_cast<int>(m.event.kind), static_cast<int>(TraceKind::SimStep));
    EXPECT_GE(m.event.end, m.event.begin);
    EXPECT_GE(m.event.begin, 0.0);
    EXPECT_LT(m.lane, 3);
    newest_end = std::max(newest_end, m.event.end);
  }
  // Lapping drops the *oldest* history: the newest event must still land at
  // the machine's final clock reading.
  EXPECT_NEAR(newest_end, machine.now_seconds(), 1e-12);
}

TEST(TraceRingTest, ChromeExportEmbedsPhaseNameTable) {
  TraceRing ring(1, 8);
  ring.record(0, TraceKind::Phase, 4, 0.001, 0.002);
  std::ostringstream os;
  write_chrome_trace(ring.snapshot(), os, {{4, "forces"}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"phase_names\":{\"4\":\"forces\"}"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceRingTest, TracingLeavesEngineObservablesBitIdentical) {
  auto run = [](bool traced) {
    workloads::BenchmarkSpec spec = workloads::make_al1000();
    md::EngineConfig cfg = spec.engine;
    cfg.n_threads = 2;
    md::Engine engine(std::move(spec.system), cfg);
    parallel::FixedThreadPool pool({.n_threads = 2});
    TraceRing ring(3, 1 << 12);
    if (traced) {
      engine.attach_trace(&ring);
      pool.attach_trace(&ring);
    }
    engine.run_native(pool, 3);
    pool.shutdown();
    return std::pair{engine.potential_energy(), engine.kinetic_energy()};
  };
  const auto [pe_plain, ke_plain] = run(false);
  const auto [pe_traced, ke_traced] = run(true);
  EXPECT_EQ(std::memcmp(&pe_plain, &pe_traced, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&ke_plain, &ke_traced, sizeof(double)), 0);
}

}  // namespace
}  // namespace mwx::perf
