// Tier-2 raw-speed guarantees: every switch in the speed ablation is
// value-preserving.
//
//  * PME spread/interpolate lane loops vs the recursive scalar path —
//    bitwise, across spline orders, tail atom counts, and mostly-empty grids;
//  * tiled Coulomb kernel vs the scalar pair loop — bitwise, including
//    non-multiple-of-kLjTile tails and the coincident-charge skip;
//  * the overlapped rebuild schedule vs the barriered one — bitwise across
//    worker counts and queue disciplines (accumulation-slot serial chains);
//  * first-touch placement — pure page movement, energies unchanged;
//  * density-derived neighbor capacity — covers the measured max CSR row on
//    both a sparse gas and a dense bulk crystal, and the heap-model regions
//    sized from it do not alias;
//  * HeapModel's NUMA directory — region-correct homes, tiling, and the
//    single-home (master-init) mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "md/engine.hpp"
#include "md/ewald/pme.hpp"
#include "md/kernels.hpp"
#include "md/layout.hpp"
#include "md/mem_model.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;

bool bits_eq(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

bool bits_eq(const Vec3& a, const Vec3& b) {
  return bits_eq(a.x, b.x) && bits_eq(a.y, b.y) && bits_eq(a.z, b.z);
}

// --- PME ---------------------------------------------------------------------

// Deterministic scattered positions (no RNG: failures must be reproducible
// from the test source alone).
std::vector<Vec3> scatter_positions(int n, const Vec3& box, double scale = 1.0) {
  std::vector<Vec3> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos.push_back({std::fmod(3.7 * i + 1.3, box.x * scale),
                   std::fmod(5.1 * i + 0.7, box.y * scale),
                   std::fmod(2.9 * i + 2.1, box.z * scale)});
  }
  return pos;
}

std::vector<double> alternating_charges(int n) {
  std::vector<double> q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] = i % 2 == 0 ? 1.0 : -1.0;
  return q;
}

void expect_pme_bitwise(const Vec3& box, std::span<const Vec3> pos,
                        std::span<const double> q, int spline_order) {
  md::ewald::EwaldParams params;
  params.alpha = 0.35;
  params.r_cutoff = 6.0;
  params.grid = 16;
  params.spline_order = spline_order;

  params.vectorized = false;
  const md::ewald::EwaldResult scalar = md::ewald::PmeSolver(box, params).compute(pos, q);
  params.vectorized = true;
  const md::ewald::EwaldResult vec = md::ewald::PmeSolver(box, params).compute(pos, q);

  EXPECT_TRUE(bits_eq(scalar.energy, vec.energy))
      << "order " << spline_order << " n " << pos.size() << ": energy "
      << scalar.energy << " vs " << vec.energy;
  ASSERT_EQ(scalar.forces.size(), vec.forces.size());
  for (std::size_t i = 0; i < scalar.forces.size(); ++i) {
    ASSERT_TRUE(bits_eq(scalar.forces[i], vec.forces[i]))
        << "order " << spline_order << " n " << pos.size() << " atom " << i;
  }
}

TEST(PmeVectorized, BitIdenticalAcrossOrdersAndTails) {
  const Vec3 box{20.0, 20.0, 20.0};
  // 1, 5, 33: tails shorter than, equal to, and longer than any lane width;
  // 64: whole tiles only.
  for (int n : {1, 5, 33, 64}) {
    const std::vector<Vec3> pos = scatter_positions(n, box);
    const std::vector<double> q = alternating_charges(n);
    for (int order = 3; order <= 6; ++order) {
      expect_pme_bitwise(box, pos, q, order);
    }
  }
}

TEST(PmeVectorized, BitIdenticalOnMostlyEmptyGrid) {
  // All atoms clustered in one corner octant: most grid cells carry zero
  // charge, and several atoms sit within a spline support of the wrap seam.
  const Vec3 box{20.0, 20.0, 20.0};
  const std::vector<Vec3> pos = scatter_positions(17, box, 0.15);
  const std::vector<double> q = alternating_charges(17);
  for (int order = 3; order <= 6; ++order) {
    expect_pme_bitwise(box, pos, q, order);
  }
}

TEST(PmeVectorized, BitIdenticalWithNoAtoms) {
  const Vec3 box{20.0, 20.0, 20.0};
  expect_pme_bitwise(box, {}, {}, 4);
}

// --- Coulomb kernel ----------------------------------------------------------

// Runs coulomb_chunk over the whole charged list into one slot and returns
// (forces, pe).
std::pair<std::vector<Vec3>, double> coulomb_all(const md::MolecularSystem& sys,
                                                 bool tiled) {
  md::CostTable costs;
  md::ForceBuffers buf(1, sys.n_atoms());
  md::NullMem mem;
  md::PackedCharges packed;
  packed.pack(sys);
  md::coulomb_chunk(sys, costs, buf, 0, 0, sys.n_charged(), 1, mem, tiled, &packed);
  std::vector<Vec3> forces(static_cast<std::size_t>(sys.n_atoms()));
  for (int i = 0; i < sys.n_atoms(); ++i) {
    forces[static_cast<std::size_t>(i)] = buf.force_raw(0, i);
  }
  return {forces, buf.drain_pe()};
}

void expect_coulomb_bitwise(const md::MolecularSystem& sys) {
  const auto [fs, pes] = coulomb_all(sys, /*tiled=*/false);
  const auto [ft, pet] = coulomb_all(sys, /*tiled=*/true);
  EXPECT_TRUE(bits_eq(pes, pet)) << pes << " vs " << pet;
  for (int i = 0; i < sys.n_atoms(); ++i) {
    ASSERT_TRUE(bits_eq(fs[static_cast<std::size_t>(i)], ft[static_cast<std::size_t>(i)]))
        << "atom " << i;
  }
}

TEST(CoulombTiled, BitIdenticalWithPartialTail) {
  // 37 atoms, all charged -> 36 charges (net-neutral rounding): rows end in
  // every tail length mod kLjTile as the triangle shrinks.
  expect_coulomb_bitwise(workloads::make_lj_coulomb_gas(37, 0.002, 300.0, 1.0, 99));
}

TEST(CoulombTiled, BitIdenticalWithCoincidentCharges) {
  md::AtomTypeTable types;
  const int kX = types.add({"X", 20.0, 0.0, 3.0});
  md::Box box{{0, 0, 0}, {30, 30, 30}};
  md::MolecularSystem sys(types, box);
  // Two exactly coincident charges (the r2 <= 0 skip) among a dozen others.
  sys.add_atom(kX, {5.0, 5.0, 5.0}, {}, +1.0);
  sys.add_atom(kX, {5.0, 5.0, 5.0}, {}, -1.0);
  for (int i = 0; i < 12; ++i) {
    sys.add_atom(kX, {8.0 + 1.3 * i, 9.0 + 0.7 * i, 10.0 + 0.4 * i}, {},
                 i % 2 == 0 ? +1.0 : -1.0);
  }
  expect_coulomb_bitwise(sys);
}

// --- Overlapped rebuild schedule --------------------------------------------

md::EngineConfig overlap_config(int threads, sim::Assignment assignment) {
  md::EngineConfig cfg;
  cfg.n_threads = threads;
  cfg.chunks_per_thread = assignment == sim::Assignment::Static ? 1 : 2;
  cfg.assignment = assignment;
  cfg.dt_fs = 4.0;
  cfg.cutoff = 6.0;
  cfg.skin = 0.5;
  return cfg;
}

md::MolecularSystem overlap_workload() {
  // Shuffled gas, half LJ-only and a charged subset: the overlap phase must
  // interleave Coulomb chunks with neighbor counting.  Hot enough (with the
  // 4 fs step above) that the skin/2 displacement bound trips every few
  // steps, so the run re-enters the overlap phase repeatedly.
  return workloads::make_lj_coulomb_gas(256, 0.004, 3000.0, 0.25, 7);
}

double run_native_energy(const md::EngineConfig& cfg, int steps, long long* rebuilds) {
  md::Engine engine(overlap_workload(), cfg);
  parallel::ThreadPoolConfig pc;
  pc.n_threads = cfg.n_threads;
  pc.queue_mode = cfg.assignment == sim::Assignment::SharedQueue
                      ? parallel::QueueMode::Single
                      : (cfg.assignment == sim::Assignment::WorkStealing
                             ? parallel::QueueMode::WorkStealing
                             : parallel::QueueMode::PerThread);
  parallel::FixedThreadPool pool(pc);
  engine.run_native(pool, steps);
  pool.shutdown();
  if (rebuilds != nullptr) *rebuilds = engine.rebuild_count();
  return engine.total_energy();
}

TEST(OverlapRebuild, BitIdenticalAcrossWorkersAndDisciplines) {
  const int steps = 25;
  for (sim::Assignment assignment :
       {sim::Assignment::Static, sim::Assignment::SharedQueue,
        sim::Assignment::WorkStealing}) {
    for (int threads : {1, 2, 4, 8}) {
      md::EngineConfig cfg = overlap_config(threads, assignment);

      cfg.overlap_rebuild = false;
      const double barriered = run_native_energy(cfg, steps, nullptr);

      cfg.overlap_rebuild = true;
      long long rebuilds = 0;
      const double overlapped = run_native_energy(cfg, steps, &rebuilds);
      // A deterministic repeat, and the inline reference of the same config.
      const double overlapped2 = run_native_energy(cfg, steps, nullptr);
      md::Engine inline_engine(overlap_workload(), cfg);
      inline_engine.run_inline(steps);

      EXPECT_GT(rebuilds, 1) << "workload never exercised the overlap phase";
      EXPECT_TRUE(bits_eq(barriered, overlapped))
          << threads << " threads, assignment " << static_cast<int>(assignment);
      EXPECT_TRUE(bits_eq(overlapped, overlapped2)) << "nondeterministic schedule";
      EXPECT_TRUE(bits_eq(overlapped, inline_engine.total_energy()))
          << "native diverged from inline";
    }
  }
}

TEST(FirstTouch, PlacementPreservesBits) {
  const int steps = 12;
  md::EngineConfig cfg = overlap_config(4, sim::Assignment::WorkStealing);
  cfg.first_touch = false;
  const double before = run_native_energy(cfg, steps, nullptr);
  cfg.first_touch = true;
  const double after = run_native_energy(cfg, steps, nullptr);
  EXPECT_TRUE(bits_eq(before, after));
}

// --- Density-derived neighbor capacity --------------------------------------

int max_row_count(const md::Engine& engine) {
  int mx = 0;
  for (int i = 0; i < engine.system().n_atoms(); ++i) {
    mx = std::max(mx, engine.neighbor_list().count(i));
  }
  return mx;
}

TEST(NeighborCapacity, DerivedWidthCoversSparseGas) {
  md::EngineConfig cfg;
  cfg.cutoff = 8.0;
  cfg.skin = 0.9;
  md::Engine engine(workloads::make_lj_gas(512, 0.002, 120.0, 5), cfg);
  engine.compute_forces_only();
  // Sparse gas: far fewer than the old fixed 384 slots, but still a safe
  // margin over the measured maximum row.
  EXPECT_GE(engine.neighbor_capacity(), max_row_count(engine));
  EXPECT_LT(engine.neighbor_capacity(), 384);
}

TEST(NeighborCapacity, DerivedWidthCoversDenseBulkCrystal) {
  // A bulk crystal far denser than the benchmark gases: the O(n*384)-era
  // fixed width would truncate the modelled table here.
  md::EngineConfig cfg;
  cfg.cutoff = 9.0;
  cfg.skin = 1.0;
  md::Engine engine(workloads::make_lj_gas(512, 0.12, 80.0, 5), cfg);
  engine.compute_forces_only();
  EXPECT_GT(engine.neighbor_capacity(), 384);
  EXPECT_LE(engine.neighbor_capacity(), 2048);
  EXPECT_GE(engine.neighbor_capacity(), max_row_count(engine));

  // The heap-model regions planned from the derived width must not alias:
  // the last modelled neighbor entry ends before the cell region begins.
  const auto& heap = const_cast<md::Engine&>(engine).heap();
  const std::uint64_t n_entries =
      static_cast<std::uint64_t>(engine.system().n_atoms()) *
      static_cast<std::uint64_t>(heap.neighbor_entries_per_atom());
  EXPECT_LE(heap.neighbor_entry_addr(n_entries - 1) + 4, heap.cell_entry_addr(0));
}

TEST(NeighborCapacity, ExplicitOverrideStillWins) {
  md::EngineConfig cfg;
  cfg.neighbor_capacity = 200;
  md::Engine engine(workloads::make_lj_gas(64, 0.002, 120.0, 5), cfg);
  EXPECT_EQ(engine.neighbor_capacity(), 200);
}

// --- HeapModel NUMA directory ------------------------------------------------

TEST(NumaDirectory, InactiveAndSingleHomeModes) {
  md::HeapModel heap(md::HeapConfig{}, 128, 64);
  // No directory configured: no opinion, machine falls back to the spec.
  EXPECT_EQ(heap.domain_of(heap.pos_addr(0)), -1);

  // Master-init (no first touch): everything on domain 0 — the single-home
  // pathology the spec's home_package also models.
  heap.configure_numa(4, 4, /*first_touch=*/false);
  EXPECT_EQ(heap.domain_of(heap.pos_addr(0)), 0);
  EXPECT_EQ(heap.domain_of(heap.pos_addr(127)), 0);
  EXPECT_EQ(heap.domain_of(heap.private_force_addr(3, 100)), 0);
}

TEST(NumaDirectory, FirstTouchTilesRegionsByOwner) {
  const int n_atoms = 128, n_domains = 4, n_workers = 4;
  md::HeapModel heap(md::HeapConfig{}, n_atoms, 64);
  heap.configure_numa(n_domains, n_workers, /*first_touch=*/true);

  // Per-atom data: block-mapped by atom index, each domain getting an equal
  // contiguous span.
  std::vector<int> per_domain(static_cast<std::size_t>(n_domains), 0);
  for (int i = 0; i < n_atoms; ++i) {
    const int d = heap.domain_of(heap.pos_addr(i));
    ASSERT_GE(d, 0);
    ASSERT_LT(d, n_domains);
    ++per_domain[static_cast<std::size_t>(d)];
    EXPECT_EQ(d, i * n_domains / n_atoms) << "atom " << i;
  }
  for (int d = 0; d < n_domains; ++d) {
    EXPECT_EQ(per_domain[static_cast<std::size_t>(d)], n_atoms / n_domains);
  }

  // Private force slots: homed with their owning worker.
  for (int w = 0; w < n_workers; ++w) {
    EXPECT_EQ(heap.domain_of(heap.private_force_addr(w, 0)), w * n_domains / n_workers);
    EXPECT_EQ(heap.domain_of(heap.private_force_addr(w, n_atoms - 1)),
              w * n_domains / n_workers);
  }

  // CSR neighbor store: block-mapped across the region, first entry on the
  // first domain, last entry on the last.
  const std::uint64_t last_entry =
      static_cast<std::uint64_t>(n_atoms) *
          static_cast<std::uint64_t>(heap.neighbor_entries_per_atom()) -
      1;
  EXPECT_EQ(heap.domain_of(heap.neighbor_entry_addr(0)), 0);
  EXPECT_EQ(heap.domain_of(heap.neighbor_entry_addr(last_entry)), n_domains - 1);
}

}  // namespace
