// perf::Planner — the what-if layer: phase-DAG reconstruction (work, span,
// self-parallelism) from one instrumented run, cross-machine prediction, and
// the PLAN_*.json artifact.  The acceptance gate of the planner PR lives
// here: from a single instrumented Al-1000 run the planner must rank the
// full (machine x discipline x pinning) grid and hit the measured wall time
// of the best- and worst-ranked configs within 15%.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "md/cost_table.hpp"
#include "md/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/native_pmu.hpp"
#include "perf/planner.hpp"
#include "perf/trace_ring.hpp"
#include "sim/machine.hpp"
#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace mwx::perf {
namespace {

struct InstrumentedRun {
  TraceSnapshot trace;
  PmuReport pmu;
  RunMeta meta;
};

md::Engine make_engine(const PlanConfig& c, int reorder_interval = 0) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = c.n_threads;
  cfg.assignment = c.assignment;
  cfg.chunks_per_thread = c.chunks_per_thread;
  cfg.reorder_interval = reorder_interval;
  return md::Engine(std::move(spec.system), cfg);
}

// One instrumented simulated run on the reference machine (the mwx_run
// convention: core i7, OS-scheduled, work stealing).
InstrumentedRun instrumented_run(int steps, int threads, int reorder_interval = 0,
                                 std::size_t ring_capacity = std::size_t{1} << 14) {
  PlanConfig ref;
  ref.spec = topo::core_i7_920();
  ref.assignment = sim::Assignment::WorkStealing;
  ref.n_threads = threads;
  ref.chunks_per_thread = 4;
  md::Engine engine = make_engine(ref, reorder_interval);

  TraceRing ring(threads + 1, ring_capacity);
  sim::MachineConfig mc;
  mc.spec = ref.spec;
  mc.n_threads = threads;
  mc.trace = &ring;
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);

  InstrumentedRun run;
  run.trace = ring.snapshot();
  run.pmu = machine.pmu_report();
  run.meta.benchmark = "Al-1000";
  run.meta.steps = steps;
  run.meta.n_threads = threads;
  run.meta.slots = engine.n_slots();
  run.meta.measured_seconds = machine.now_seconds();
  run.meta.spec = ref.spec;
  run.meta.assignment = ref.assignment;
  return run;
}

double run_config(const PlanConfig& c, int steps) {
  md::Engine engine = make_engine(c);
  sim::MachineConfig mc;
  mc.spec = c.spec;
  mc.n_threads = c.n_threads;
  mc.record_events = false;
  if (c.pinned) {
    for (int i = 0; i < c.n_threads; ++i) {
      mc.pin_masks.push_back(topo::CpuSet::of({(i % c.spec.n_cores()) * c.spec.smt_per_core}));
    }
  }
  sim::Machine machine(mc);
  engine.run_simulated(machine, steps);
  return machine.now_seconds();
}

TEST(PlannerTest, ProfileReconstructsPhaseDag) {
  const int steps = 40;
  InstrumentedRun run = instrumented_run(steps, 2);
  const RunProfile profile = Planner::profile_from(run.trace, run.pmu, run.meta);

  EXPECT_EQ(profile.observed_steps, steps);
  EXPECT_GT(profile.total_work_cycles, 0.0);
  EXPECT_GT(profile.critical_path_cycles, 0.0);
  EXPECT_GT(profile.serial_cycles, 0.0);  // master rebuild residue + GC
  // Work strictly exceeds the critical path: the run had real parallelism.
  EXPECT_GT(profile.self_parallelism(), 1.0);

  // The per-step pipeline phases, split by step class where both occur.
  for (int tag : {md::kPhasePredictor, md::kPhaseForces, md::kPhaseReduce,
                  md::kPhaseCorrector}) {
    EXPECT_NE(profile.find(tag, false), nullptr) << "tag " << tag;
  }
  // The PR 6 overlap phase and PR 9 parallel-rebuild phases only exist on
  // rebuild steps.
  for (int tag : {md::kPhaseOverlap, md::kPhaseBin, md::kPhaseNbrPrefix}) {
    const PhaseProfile* p = profile.find(tag, true);
    ASSERT_NE(p, nullptr) << "tag " << tag;
    EXPECT_EQ(profile.find(tag, false), nullptr) << "tag " << tag;
    EXPECT_GT(p->occurrences, 0);
    EXPECT_GT(p->work_cycles, 0.0);
    EXPECT_GE(p->self_parallelism(), 1.0);
  }
  // Rebuild phases run exactly one task per worker.
  const PhaseProfile* bin = profile.find(md::kPhaseBin, true);
  EXPECT_NEAR(bin->tasks / double(bin->occurrences), 2.0, 0.2);

  // The forces classes together dominate the run, and their measured
  // self-parallelism is real but bounded by the slot count.
  const PhaseProfile* forces = profile.find(md::kPhaseForces, false);
  const PhaseProfile* forces_rb = profile.find(md::kPhaseForces, true);
  ASSERT_NE(forces, nullptr);
  ASSERT_NE(forces_rb, nullptr);
  EXPECT_GT(forces->work_cycles + forces_rb->work_cycles, 0.5 * profile.total_work_cycles);
  // Every task found its bracket despite the concurrent overlap phase:
  // exactly slots tasks per forces occurrence.
  EXPECT_NEAR(forces->tasks / double(forces->occurrences), double(run.meta.slots), 0.5);
  EXPECT_GT(forces->self_parallelism(), 1.0);
  EXPECT_LE(forces->self_parallelism(), double(run.meta.slots) + 1.0);
}

TEST(PlannerTest, MortonPhaseAppearsWithReorderInterval) {
  InstrumentedRun run = instrumented_run(40, 2, /*reorder_interval=*/1);
  const RunProfile profile = Planner::profile_from(run.trace, run.pmu, run.meta);
  const PhaseProfile* morton = profile.find(md::kPhaseMortonSort, true);
  ASSERT_NE(morton, nullptr);
  EXPECT_GT(morton->occurrences, 0);
  EXPECT_GT(morton->work_cycles, 0.0);
}

TEST(PlannerTest, LappedTraceStillProfilesFromPmuTotals) {
  const int steps = 40;
  // 64 slots per lane: laps many times over 40 steps; totals must come from
  // the (always complete) PMU matrix, shapes from the surviving window.
  InstrumentedRun run = instrumented_run(steps, 2, 0, /*ring_capacity=*/64);
  ASSERT_GT(run.trace.dropped, 0u);
  const RunProfile profile = Planner::profile_from(run.trace, run.pmu, run.meta);
  EXPECT_GT(profile.trace_dropped, 0u);
  EXPECT_LT(profile.observed_steps, steps);
  EXPECT_GT(profile.observed_steps, 0);

  const PhaseProfile* forces = profile.find(md::kPhaseForces, false);
  ASSERT_NE(forces, nullptr);
  // Occurrence counts are scaled from the observed window to the full run.
  EXPECT_GE(forces->occurrences, steps / 2);
  EXPECT_LE(forces->occurrences, 2 * steps);
  // Work totals come from the PMU (exact); only the split between the
  // rebuild/non-rebuild classes leans on the surviving window's bracket
  // durations, so the class totals track the unlapped profile's within the
  // window's rebuild-cadence wobble — not within float noise, but nowhere
  // near the multiples a naively rescaled trace would produce.
  InstrumentedRun full = instrumented_run(steps, 2);
  const RunProfile full_profile = Planner::profile_from(full.trace, full.pmu, full.meta);
  EXPECT_NEAR(profile.total_work_cycles / full_profile.total_work_cycles, 1.0, 1e-9);
  const PhaseProfile* full_forces = full_profile.find(md::kPhaseForces, false);
  ASSERT_NE(full_forces, nullptr);
  EXPECT_NEAR(forces->work_cycles / full_forces->work_cycles, 1.0, 0.25);
}

TEST(PlannerTest, NativeTraceDegradesToInferredSteps) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 2;
  md::Engine engine(std::move(spec.system), cfg);
  parallel::FixedThreadPool pool({.n_threads = 2});
  PmuAccumulator pmu(2);
  TraceRing ring(3, 1 << 14);
  engine.attach_pmu(&pmu);
  engine.attach_trace(&ring);
  const int steps = 10;
  engine.run_native(pool, steps);
  pool.shutdown();

  RunMeta meta;
  meta.benchmark = "Al-1000";
  meta.steps = 0;  // force inference from the predictor phase brackets
  meta.n_threads = 2;
  meta.slots = engine.n_slots();
  meta.spec = topo::core_i7_920();
  const RunProfile profile = Planner::profile_from(ring.snapshot(), pmu.report(), meta);
  // No SimStep events natively: step windows are synthesized from tag-1.
  EXPECT_EQ(profile.observed_steps, steps);
  EXPECT_EQ(profile.meta.steps, steps);
  EXPECT_NE(profile.find(md::kPhaseForces, false), nullptr);
  EXPECT_GT(profile.total_work_cycles, 0.0);

  // Either provider (perf_event or the fallback) must yield a usable
  // profile: prediction still runs end to end.
  Planner planner(profile);
  const Prediction p = planner.predict(Planner::default_grid(2).front());
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.speedup, 0.0);
}

TEST(PlannerTest, PhaseTagNamesAreSingleSourced) {
  // The md-layer table is the single source of truth...
  EXPECT_STREQ(md::phase_tag_name(md::kPhaseForces), "forces");
  EXPECT_STREQ(md::phase_tag_name(md::kPhaseMortonSort), "morton-sort");
  EXPECT_EQ(md::phase_tag_name(md::kNumPhaseTags), nullptr);
  const auto names = md::phase_tag_name_map();
  EXPECT_EQ(names.size(), std::size_t(md::kNumPhaseTags));
  EXPECT_EQ(names.at(md::kPhaseBin), "bin");

  // ...and it rides inside the emitted artifacts.
  PmuReport report;
  report.provider = "sim";
  report.lane_kind = "core";
  report.n_lanes = 1;
  report.at(md::kPhaseForces, 0)[Counter::kBusyCycles] = 1.0;
  report.phase_names = names;
  std::ostringstream os;
  report.write_json(os, "t", "sha");
  EXPECT_NE(os.str().find("\"phase_names\""), std::string::npos);
  EXPECT_NE(os.str().find("\"4\": \"forces\""), std::string::npos);
}

TEST(PlannerTest, DefaultGridCoversTableTwoCrossDisciplinesCrossPinning) {
  const auto grid = Planner::default_grid(4);
  EXPECT_GE(grid.size(), 12u);
  int pinned = 0, machines = 0, disciplines = 0;
  std::string last_machine;
  for (const auto& c : grid) {
    if (c.pinned) ++pinned;
    if (c.spec.name != last_machine) {
      ++machines;
      last_machine = c.spec.name;
    }
    EXPECT_EQ(c.n_threads, 4);
  }
  (void)disciplines;
  EXPECT_EQ(pinned, int(grid.size()) / 2);
  EXPECT_EQ(machines, 3);
  // Labels are unique keys.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = i + 1; j < grid.size(); ++j) {
      EXPECT_NE(grid[i].label(), grid[j].label());
    }
  }
}

// The PR acceptance gate: >= 12 ranked configs from ONE instrumented run;
// predicted wall time of the best- and worst-ranked configs within 15% of
// the actual simulated wall time.
TEST(PlannerTest, AcceptanceBestAndWorstPredictionsWithin15Pct) {
  const int steps = 60;
  const int threads = 4;
  InstrumentedRun run = instrumented_run(steps, threads);
  Planner planner(Planner::profile_from(run.trace, run.pmu, run.meta));
  auto ranked = planner.rank(Planner::default_grid(threads));
  ASSERT_GE(ranked.size(), 12u);

  // Self-consistency: the reference config's prediction vs its own run.
  for (const auto& pr : ranked) {
    if (pr.config.spec.name == run.meta.spec.name &&
        pr.config.assignment == run.meta.assignment && !pr.config.pinned) {
      const double err =
          100.0 * (pr.seconds - run.meta.measured_seconds) / run.meta.measured_seconds;
      EXPECT_LT(std::fabs(err), 15.0) << "self-prediction error " << err << "%";
    }
  }

  for (const Prediction* pr : {&ranked.front(), &ranked.back()}) {
    const double measured = run_config(pr->config, steps);
    const double err = 100.0 * (pr->seconds - measured) / measured;
    EXPECT_LT(std::fabs(err), 15.0)
        << pr->config.label() << " predicted " << pr->seconds << "s measured " << measured
        << "s (" << err << "%)";
  }

  // Ranking is sorted, speedups are sane, and the plan artifact carries the
  // schema-versioned structure the CI smoke stage asserts.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].seconds, ranked[i].seconds);
  }
  for (const auto& pr : ranked) {
    EXPECT_GT(pr.speedup, 0.5);
    EXPECT_LT(pr.speedup, double(2 * pr.config.n_threads));
  }
  std::ostringstream os;
  write_plan_json(os, "t", "sha", planner.profile(), ranked, 15.0,
                  md::phase_tag_name_map());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"kind\": \"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"phase_names\""), std::string::npos);
  EXPECT_NE(json.find("\"self_parallelism\""), std::string::npos);
  EXPECT_NE(json.find("\"best\""), std::string::npos);
}

}  // namespace
}  // namespace mwx::perf
