#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "md/engine.hpp"
#include "workloads/workloads.hpp"

namespace mwx::workloads {
namespace {

TEST(Table1Test, NanocarCharacteristics) {
  const BenchmarkSpec spec = make_nanocar();
  const TableRow row = table1_row(spec);
  EXPECT_EQ(row.n_atoms, 989);
  EXPECT_EQ(row.n_charged, 0);
  EXPECT_EQ(row.n_bonds, 2277);
  EXPECT_EQ(row.dominant, "Bonds");
  // Roughly half the atoms form the immovable platform.
  EXPECT_EQ(spec.system.n_atoms() - spec.system.n_movable(), 495);
}

TEST(Table1Test, SaltCharacteristics) {
  const BenchmarkSpec spec = make_salt();
  const TableRow row = table1_row(spec);
  EXPECT_EQ(row.n_atoms, 800);
  EXPECT_EQ(row.n_charged, 800);
  EXPECT_EQ(row.n_bonds, 0);
  EXPECT_EQ(row.dominant, "Ionic");
  // Net neutral: 400 each.
  double net = 0.0;
  int positive = 0;
  for (int i = 0; i < spec.system.n_atoms(); ++i) {
    net += spec.system.charge(i);
    if (spec.system.charge(i) > 0) ++positive;
  }
  EXPECT_DOUBLE_EQ(net, 0.0);
  EXPECT_EQ(positive, 400);
}

TEST(Table1Test, Al1000Characteristics) {
  const BenchmarkSpec spec = make_al1000();
  const TableRow row = table1_row(spec);
  EXPECT_EQ(row.n_atoms, 1000);
  EXPECT_EQ(row.n_charged, 0);
  EXPECT_EQ(row.n_bonds, 0);
  EXPECT_EQ(row.dominant, "Lennard-Jones");
}

TEST(Table1Test, Al1000HasOneFastProjectile) {
  const BenchmarkSpec spec = make_al1000();
  int fast = 0;
  for (int i = 0; i < spec.system.n_atoms(); ++i) {
    if (spec.system.velocities()[static_cast<std::size_t>(i)].norm() > 0.05) ++fast;
  }
  EXPECT_EQ(fast, 1);
}

TEST(Table1Test, RegistryRoundTrip) {
  for (const auto& name : benchmark_names()) {
    const BenchmarkSpec spec = make_benchmark(name);
    EXPECT_EQ(spec.name, name);
  }
  EXPECT_THROW(make_benchmark("nope"), ContractError);
}

TEST(Table1Test, SeedsChangeCreationOrderNotComposition) {
  const BenchmarkSpec a = make_salt(1);
  const BenchmarkSpec b = make_salt(2);
  EXPECT_EQ(a.system.n_atoms(), b.system.n_atoms());
  // Same multiset of positions, different order for at least one index.
  bool any_different = false;
  for (int i = 0; i < a.system.n_atoms(); ++i) {
    if (!(a.system.positions()[static_cast<std::size_t>(i)] ==
          b.system.positions()[static_cast<std::size_t>(i)])) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

class BenchmarkStability : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkStability, ShortRunStaysFinite) {
  BenchmarkSpec spec = make_benchmark(GetParam());
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = md::TemporariesMode::InPlace;
  md::Engine eng(std::move(spec.system), cfg);
  eng.run_inline(50);
  EXPECT_TRUE(std::isfinite(eng.total_energy()));
  for (const Vec3& v : eng.system().velocities()) {
    EXPECT_TRUE(std::isfinite(v.x));
    EXPECT_LT(v.norm(), 10.0) << "no atom should reach absurd speed";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkStability,
                         ::testing::Values("nanocar", "salt", "Al-1000"));

TEST(GeneratorsTest, LjGasRespectsCountAndBox) {
  const auto sys = make_lj_gas(100, 0.012, 150.0, 4);
  EXPECT_EQ(sys.n_atoms(), 100);
  const double volume = sys.box().extent().x * sys.box().extent().y * sys.box().extent().z;
  EXPECT_NEAR(100.0 / volume, 0.012, 0.012 * 0.2);
}

TEST(GeneratorsTest, ChainHasAllBondOrders) {
  const auto sys = make_chain(10, 1);
  EXPECT_EQ(sys.radial_bonds().size(), 9u);
  EXPECT_EQ(sys.angular_bonds().size(), 8u);
  EXPECT_EQ(sys.torsion_bonds().size(), 7u);
}

TEST(GeneratorsTest, IonicIsNeutralAndEven) {
  const auto sys = make_ionic(64, 3);
  EXPECT_EQ(sys.n_atoms(), 64);
  double net = 0.0;
  for (int i = 0; i < 64; ++i) net += sys.charge(i);
  EXPECT_DOUBLE_EQ(net, 0.0);
  EXPECT_THROW(make_ionic(7, 1), ContractError);
}

TEST(GeneratorsTest, SaltTemperatureNearTarget) {
  const BenchmarkSpec spec = make_salt();
  const double t = units::kinetic_to_kelvin(spec.system.kinetic_energy(),
                                            spec.system.n_atoms());
  EXPECT_NEAR(t, 300.0, 40.0);
}

}  // namespace
}  // namespace mwx::workloads
