#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"

namespace mwx::sim {
namespace {

// Quiet scheduler: no background noise, deterministic-ish placement.
SchedulerParams quiet_sched(std::uint64_t seed = 1) {
  SchedulerParams s;
  s.noise_bursts_per_second = 0.0;
  s.seed = seed;
  return s;
}

MachineConfig base_config(int n_threads) {
  MachineConfig c;
  c.spec = topo::core_i7_920();
  c.sched = quiet_sched();
  c.n_threads = n_threads;
  c.record_residency = true;
  return c;
}

PhaseWork compute_phase(int n_tasks, double cycles_each, Assignment a = Assignment::Static) {
  PhaseWork w;
  w.tag = 1;
  w.assignment = a;
  for (int i = 0; i < n_tasks; ++i) {
    w.tasks.push_back({i, cycles_each, 0, 0, 0});
  }
  return w;
}

// A phase whose tasks stream over disjoint address ranges.
PhaseWork streaming_phase(int n_tasks, std::uint64_t bytes_per_task) {
  PhaseWork w;
  w.tag = 2;
  for (int i = 0; i < n_tasks; ++i) {
    SimTask t;
    t.owner = i;
    t.access_begin = static_cast<std::uint32_t>(w.accesses.size());
    const std::uint64_t base = 0x10000000ull * static_cast<std::uint64_t>(i + 1);
    for (std::uint64_t a = 0; a < bytes_per_task; a += 64) {
      w.accesses.push_back({base + a, false});
    }
    t.access_end = static_cast<std::uint32_t>(w.accesses.size());
    t.compute_cycles = 0.0;
    w.tasks.push_back(t);
  }
  return w;
}

TEST(MachineTest, ValidatesConfig) {
  MachineConfig c = base_config(0);
  EXPECT_THROW(Machine{c}, ContractError);
  c = base_config(1);
  c.pin_masks = {topo::CpuSet::of({200})};  // not on this machine
  EXPECT_THROW(Machine{c}, ContractError);
}

TEST(MachineTest, SingleThreadComputeTimeMatchesCost) {
  Machine m(base_config(1));
  const double cycles = 1e6;
  const auto r = m.run_phase(compute_phase(1, cycles));
  // Duration = wake + dispatch + queue pop + compute + barrier, all small
  // except compute.
  const double duration_cycles = r.duration_seconds() * m.config().spec.ghz * 1e9;
  EXPECT_GT(duration_cycles, cycles);
  EXPECT_LT(duration_cycles, cycles * 1.02);
}

TEST(MachineTest, FourThreadsNearLinearOnPureCompute) {
  const double cycles = 2e6;
  Machine m1(base_config(1));
  const double t1 = m1.run_phase(compute_phase(4, cycles)).duration_seconds();
  Machine m4(base_config(4));
  const double t4 = m4.run_phase(compute_phase(4, cycles)).duration_seconds();
  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 4.1);
}

TEST(MachineTest, GlobalClockAdvancesAcrossPhases) {
  Machine m(base_config(2));
  EXPECT_DOUBLE_EQ(m.now_seconds(), 0.0);
  m.run_phase(compute_phase(2, 1e5));
  const double t1 = m.now_seconds();
  EXPECT_GT(t1, 0.0);
  m.run_phase(compute_phase(2, 1e5));
  EXPECT_GT(m.now_seconds(), t1);
}

TEST(MachineTest, RunSerialAdvancesClock) {
  Machine m(base_config(1));
  m.run_serial(2.66e9);  // one second at 2.66 GHz
  EXPECT_NEAR(m.now_seconds(), 1.0, 1e-9);
  EXPECT_THROW(m.run_serial(-1.0), ContractError);
}

TEST(MachineTest, BarrierWaitsForSlowestTask) {
  Machine m(base_config(4));
  PhaseWork w = compute_phase(4, 1e5);
  w.tasks[2].compute_cycles = 2e6;  // one straggler
  const auto r = m.run_phase(w);
  // Phase end is bounded below by the straggler's work.
  EXPECT_GT(r.duration_seconds(), m.to_seconds(2e6));
  // Everyone's arrival is at most the phase end.
  for (double a : r.arrival_seconds) EXPECT_LE(a, r.end_seconds);
  // Barrier wait accumulates for the three fast threads.
  EXPECT_GT(m.counters().barrier_wait_cycles, 3 * 1.5e6);
}

TEST(MachineTest, EventLogRecordsTasksPerThread) {
  Machine m(base_config(2));
  m.run_phase(compute_phase(4, 1e5));
  EXPECT_EQ(m.event_log().total_events(), 4u);
  for (int t = 0; t < 2; ++t) {
    for (const auto& e : m.event_log().events_of(t)) {
      EXPECT_EQ(e.tag, 1);
      EXPECT_GE(e.core, 0);
      EXPECT_LT(e.begin, e.end);
    }
  }
}

TEST(MachineTest, BusySecondsSumMatchesWork) {
  Machine m(base_config(2));
  const auto r = m.run_phase(compute_phase(2, 1e6));
  const double total_busy = r.busy_seconds[0] + r.busy_seconds[1];
  EXPECT_NEAR(total_busy, m.to_seconds(2e6), m.to_seconds(2e6) * 0.05);
}

TEST(MachineTest, SharedQueueSerializesTinyTasks) {
  // 4 threads fighting over a queue of 4000 near-empty tasks: lock wait must
  // dominate; with private queues it must be zero.
  MachineConfig c = base_config(4);
  Machine shared(c);
  shared.run_phase(compute_phase(4000, 10.0, Assignment::SharedQueue));
  EXPECT_GT(shared.counters().queue_wait_cycles, 1e5);

  Machine priv(base_config(4));
  priv.run_phase(compute_phase(4000, 10.0, Assignment::Static));
  EXPECT_DOUBLE_EQ(priv.counters().queue_wait_cycles, 0.0);
}

TEST(MachineTest, MonitorUpdatesSerializeThreads) {
  // Tasks that do nothing but synchronized monitor updates: total time must
  // be at least (total updates x hold time) regardless of thread count —
  // the Section IV-A observer effect.
  MachineConfig c = base_config(4);
  Machine m(c);
  PhaseWork w = compute_phase(4, 1000.0);
  const int updates = 500;
  for (auto& t : w.tasks) t.monitor_updates = updates;
  const auto r = m.run_phase(w);
  const double serialized_cycles = 4.0 * updates * c.cost.monitor_lock_hold_cycles;
  EXPECT_GE(r.duration_seconds() * c.spec.ghz * 1e9, serialized_cycles * 0.95);
  EXPECT_GT(m.counters().monitor_wait_cycles, 0.0);
}

TEST(MachineTest, MemoryBandwidthLimitsStreamingSpeedup) {
  // 16 MiB per task streamed cold from DRAM: compute-free, so scaling is
  // bounded by the single memory controller, not by core count.
  const std::uint64_t bytes = 16ull << 20;
  Machine m1(base_config(1));
  const double t1 = m1.run_phase(streaming_phase(4, bytes / 4)).duration_seconds();
  Machine m4(base_config(4));
  const double t4 = m4.run_phase(streaming_phase(4, bytes / 4)).duration_seconds();
  const double speedup = t1 / t4;
  EXPECT_LT(speedup, 2.5);
  EXPECT_GT(m4.counters().dram_queue_cycles, 0.0);
  EXPECT_GT(m4.counters().dram_line_fetches, 100000);
}

TEST(MachineTest, CacheResidentWorkloadDoesNotTouchDram) {
  Machine m(base_config(1));
  // 8 KiB working set touched repeatedly: only cold misses reach DRAM.
  PhaseWork w;
  w.tag = 3;
  SimTask t;
  t.owner = 0;
  t.access_begin = 0;
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t a = 0; a < 8192; a += 64) w.accesses.push_back({0x5000000 + a, false});
  }
  t.access_end = static_cast<std::uint32_t>(w.accesses.size());
  w.tasks.push_back(t);
  m.run_phase(w);
  EXPECT_EQ(m.counters().dram_line_fetches, 128);  // 8 KiB / 64 B, cold only
  EXPECT_GT(m.counters().l1.hits, 1000);
}

TEST(MachineTest, DirtyLinesWriteBack) {
  Machine m(base_config(1));
  // Write a multi-MB stream twice the L3 size so dirty lines must be evicted.
  PhaseWork w;
  w.tag = 4;
  SimTask t;
  t.owner = 0;
  t.access_begin = 0;
  for (std::uint64_t a = 0; a < (20ull << 20); a += 64) w.accesses.push_back({a, true});
  t.access_end = static_cast<std::uint32_t>(w.accesses.size());
  w.tasks.push_back(t);
  m.run_phase(w);
  EXPECT_GT(m.counters().dram_writebacks, 100000);
}

TEST(MachineTest, AffinityMaskRespected) {
  MachineConfig c = base_config(2);
  c.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2})};
  Machine m(c);
  m.run_phase(compute_phase(2, 1e6));
  for (const auto& seg : m.residency()) {
    EXPECT_EQ(seg.pu, seg.thread == 0 ? 0 : 2);
  }
}

TEST(MachineTest, UnpinnedThreadsMigrate) {
  MachineConfig c = base_config(4);
  c.sched.stay_probability = 0.0;
  Machine m(c);
  for (int phase = 0; phase < 50; ++phase) m.run_phase(compute_phase(4, 1e4));
  EXPECT_GT(m.counters().migrations, 20);
}

TEST(MachineTest, PinnedThreadsNeverMigrate) {
  MachineConfig c = base_config(4);
  c.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2}), topo::CpuSet::of({4}),
                 topo::CpuSet::of({6})};
  Machine m(c);
  for (int phase = 0; phase < 50; ++phase) m.run_phase(compute_phase(4, 1e4));
  EXPECT_EQ(m.counters().migrations, 0);
}

TEST(MachineTest, SmtSiblingsShareCoreThroughput) {
  // Two threads on SMT siblings of one core vs on two separate cores.
  MachineConfig shared_core = base_config(2);
  shared_core.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({1})};
  Machine ms(shared_core);
  const double t_shared = ms.run_phase(compute_phase(2, 2e6)).duration_seconds();

  MachineConfig split = base_config(2);
  split.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2})};
  Machine mp(split);
  const double t_split = mp.run_phase(compute_phase(2, 2e6)).duration_seconds();

  EXPECT_GT(t_shared, t_split * 1.3);
}

TEST(MachineTest, NoiseStallsPinnedThreads) {
  MachineConfig c = base_config(1);
  c.pin_masks = {topo::CpuSet::of({0})};
  c.sched.noise_bursts_per_second = 2000.0;
  c.sched.noise_burst_seconds = 300e-6;
  Machine m(c);
  for (int phase = 0; phase < 20; ++phase) m.run_phase(compute_phase(1, 3e6));
  EXPECT_GT(m.counters().noise_stall_cycles, 0.0);
}

TEST(MachineTest, UnpinnedThreadsDodgeNoise) {
  // With spare cores available, the woken thread migrates instead of
  // stalling; stall cycles should be much lower than in the pinned case.
  MachineConfig pinned = base_config(1);
  pinned.pin_masks = {topo::CpuSet::of({0})};
  pinned.sched.noise_bursts_per_second = 2000.0;
  pinned.sched.noise_burst_seconds = 300e-6;
  Machine mp(pinned);
  for (int phase = 0; phase < 20; ++phase) mp.run_phase(compute_phase(1, 3e6));

  MachineConfig free_cfg = base_config(1);
  free_cfg.sched.noise_bursts_per_second = 2000.0;
  free_cfg.sched.noise_burst_seconds = 300e-6;
  Machine mf(free_cfg);
  for (int phase = 0; phase < 20; ++phase) mf.run_phase(compute_phase(1, 3e6));

  EXPECT_LT(mf.counters().noise_stall_cycles, mp.counters().noise_stall_cycles * 0.5);
}

TEST(MachineTest, InstrumentationAgentSlowsPhase) {
  Machine plain(base_config(4));
  const double t_plain = plain.run_phase(compute_phase(4, 1e6)).duration_seconds();

  MachineConfig with_agent = base_config(4);
  with_agent.instrumentation_agent = true;
  Machine agent(with_agent);
  PhaseWork w = compute_phase(4, 1e6);
  const double t_agent = agent.run_phase(w, /*instr_calls_per_task=*/2000).duration_seconds();
  EXPECT_GT(t_agent, t_plain * 1.2);
}

TEST(MachineTest, DeterministicForFixedSeed) {
  auto run_once = [] {
    MachineConfig c = base_config(4);
    c.sched.seed = 99;
    c.sched.noise_bursts_per_second = 100.0;
    Machine m(c);
    double sum = 0.0;
    for (int phase = 0; phase < 10; ++phase) {
      sum += m.run_phase(compute_phase(8, 5e5)).duration_seconds();
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(MachineTest, ResetCountersClears) {
  Machine m(base_config(1));
  m.run_phase(streaming_phase(1, 1 << 20));
  EXPECT_GT(m.counters().dram_line_fetches, 0);
  m.reset_counters();
  EXPECT_EQ(m.counters().dram_line_fetches, 0);
  EXPECT_EQ(m.counters().l1.misses, 0);
}

TEST(MachineTest, SetAffinityRestrictsFuturePlacement) {
  Machine m(base_config(1));
  m.set_affinity(0, topo::CpuSet::of({6}));
  m.run_phase(compute_phase(1, 1e5));
  ASSERT_FALSE(m.residency().empty());
  EXPECT_EQ(m.residency().back().pu, 6);
  EXPECT_THROW(m.set_affinity(0, topo::CpuSet::of({100})), ContractError);
  EXPECT_THROW(m.set_affinity(5, topo::CpuSet::of({0})), ContractError);
}

TEST(MachineTest, MoreTasksThanThreadsAllExecute) {
  Machine m(base_config(3));
  const auto r = m.run_phase(compute_phase(10, 1e5));
  EXPECT_EQ(m.event_log().total_events(), 10u);
  double busy = 0.0;
  for (double b : r.busy_seconds) busy += b;
  EXPECT_NEAR(busy, m.to_seconds(1e6), m.to_seconds(1e6) * 0.1);
}

TEST(MachineTest, LlcSharingVisibleAcrossThreads) {
  // Thread 0 loads a block; thread 1 (same package, different core) then
  // reads it: L3 hits, not DRAM fetches.
  MachineConfig c = base_config(2);
  c.pin_masks = {topo::CpuSet::of({0}), topo::CpuSet::of({2})};
  Machine m(c);
  PhaseWork warm;
  warm.tag = 1;
  SimTask t0;
  t0.owner = 0;
  t0.access_begin = 0;
  for (std::uint64_t a = 0; a < (1 << 20); a += 64) warm.accesses.push_back({a, false});
  t0.access_end = static_cast<std::uint32_t>(warm.accesses.size());
  warm.tasks.push_back(t0);
  m.run_phase(warm);
  const long long fetches_after_warm = m.counters().dram_line_fetches;

  PhaseWork reuse;
  reuse.tag = 2;
  SimTask t1;
  t1.owner = 1;
  t1.access_begin = 0;
  for (std::uint64_t a = 0; a < (1 << 20); a += 64) reuse.accesses.push_back({a, false});
  t1.access_end = static_cast<std::uint32_t>(reuse.accesses.size());
  reuse.tasks.push_back(t1);
  m.run_phase(reuse);
  // The second pass must be nearly free of DRAM fetches.
  EXPECT_LT(m.counters().dram_line_fetches - fetches_after_warm, 200);
}

}  // namespace
}  // namespace mwx::sim
