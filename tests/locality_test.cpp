// Tests for the spatial-locality machinery: Morton keys and ordering,
// MolecularSystem permutation behind stable external IDs, heap-model address
// follow-through, scene I/O invariance, CSR build determinism, the tiled LJ
// kernel's bit-identity guarantee, and trajectory invariance under the
// reordering pass.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "md/engine.hpp"
#include "md/force_buffers.hpp"
#include "md/layout.hpp"
#include "md/morton.hpp"
#include "md/scene_io.hpp"
#include "md/system.hpp"
#include "workloads/workloads.hpp"

namespace mwx::md {
namespace {

// --- Morton keys -------------------------------------------------------------

TEST(MortonTest, UnitStepsLandOnInterleavedBits) {
  EXPECT_EQ(morton3(0, 0, 0), 0u);
  EXPECT_EQ(morton3(1, 0, 0), 1u);  // x owns bit 0
  EXPECT_EQ(morton3(0, 1, 0), 2u);  // y owns bit 1
  EXPECT_EQ(morton3(0, 0, 1), 4u);  // z owns bit 2
  EXPECT_EQ(morton3(1, 1, 1), 7u);
  // Second bit of each axis lands three positions up.
  EXPECT_EQ(morton3(2, 0, 0), 8u);
  EXPECT_EQ(morton3(0, 2, 0), 16u);
  EXPECT_EQ(morton3(0, 0, 2), 32u);
}

TEST(MortonTest, KeysAreDistinctAndOrderIsHierarchical) {
  // All 8 corners of a 2x2x2 block have distinct keys below every key in the
  // next block — the property that keeps spatial blocks contiguous.
  std::set<std::uint64_t> low;
  for (std::uint32_t z = 0; z < 2; ++z) {
    for (std::uint32_t y = 0; y < 2; ++y) {
      for (std::uint32_t x = 0; x < 2; ++x) low.insert(morton3(x, y, z));
    }
  }
  EXPECT_EQ(low.size(), 8u);
  EXPECT_EQ(*low.rbegin(), 7u);
  EXPECT_GT(morton3(2, 0, 0), *low.rbegin());
  // Top of the 21-bit range interleaves without overflow.
  const std::uint32_t top = (1u << 21) - 1;
  EXPECT_EQ(morton3(top, top, top), 0x7fffffffffffffffull);
}

TEST(MortonTest, OrderIsAPermutationAndCellMajor) {
  Rng rng(5);
  std::vector<Vec3> pos;
  const Vec3 lo{0, 0, 0}, hi{40, 40, 40};
  for (int i = 0; i < 600; ++i) pos.push_back(rng.point_in_box(lo, hi));
  const double width = 8.0;
  const std::vector<int> order = morton_order(pos, lo, hi, width);
  ASSERT_EQ(order.size(), pos.size());
  // invert_permutation validates range and uniqueness.
  const std::vector<int> inverse = invert_permutation(order);
  for (int k = 0; k < 600; ++k) EXPECT_EQ(order[static_cast<std::size_t>(inverse[static_cast<std::size_t>(k)])], k);

  // Cell-major: atoms sharing a quantized cell occupy one contiguous run.
  auto cell_key = [&](const Vec3& p) {
    const int n = 5;  // floor(40 / 8)
    auto q = [&](double v, double l) {
      int c = static_cast<int>((v - l) * n / 40.0);
      return std::min(n - 1, std::max(0, c));
    };
    return (q(p.x, lo.x) * 8 + q(p.y, lo.y)) * 8 + q(p.z, lo.z);
  };
  std::set<int> seen;
  int current = -1;
  for (int k = 0; k < 600; ++k) {
    const int key = cell_key(pos[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]);
    if (key != current) {
      EXPECT_EQ(seen.count(key), 0u) << "cell revisited at rank " << k;
      seen.insert(key);
      current = key;
    }
  }
}

TEST(MortonTest, OrderIsStableAndIdempotent) {
  Rng rng(9);
  std::vector<Vec3> pos;
  const Vec3 lo{0, 0, 0}, hi{20, 20, 20};
  for (int i = 0; i < 200; ++i) pos.push_back(rng.point_in_box(lo, hi));
  const std::vector<int> first = morton_order(pos, lo, hi, 7.0);
  std::vector<Vec3> sorted;
  sorted.reserve(pos.size());
  for (int o : first) sorted.push_back(pos[static_cast<std::size_t>(o)]);
  // Reordering an already-ordered set is the identity (stable sort).
  const std::vector<int> second = morton_order(sorted, lo, hi, 7.0);
  for (int k = 0; k < 200; ++k) EXPECT_EQ(second[static_cast<std::size_t>(k)], k);
}

TEST(MortonTest, InvertPermutationRejectsNonPermutations) {
  EXPECT_THROW(invert_permutation({0, 2}), ContractError);     // out of range
  EXPECT_THROW(invert_permutation({1, 1}), ContractError);     // repeated
  EXPECT_NO_THROW(invert_permutation({2, 0, 1}));
}

// --- System permutation ------------------------------------------------------

MolecularSystem make_bonded_mix() {
  AtomTypeTable types;
  types.add({"A", 10.0, 0.2, 3.0});
  types.add({"B", 20.0, 0.4, 3.4});
  MolecularSystem sys(types, Box{{0, 0, 0}, {30, 30, 30}});
  Rng rng(13);
  for (int i = 0; i < 24; ++i) {
    sys.add_atom(i % 2, rng.point_in_box({1, 1, 1}, {29, 29, 29}),
                 {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
                 (i % 3 == 0) ? 1.0 : 0.0, i % 5 != 0);
  }
  sys.add_radial_bond({0, 1, 100.0, 2.0});
  sys.add_radial_bond({2, 3, 100.0, 2.0});
  sys.add_angular_bond({0, 1, 2, 50.0, 2.0});
  sys.add_torsion_bond({0, 1, 2, 3, 10.0, 2, 0.5});
  return sys;
}

TEST(SystemPermuteTest, InversePermutationRestoresEverythingBitwise) {
  MolecularSystem sys = make_bonded_mix();
  const MolecularSystem original = sys;

  std::vector<int> perm(static_cast<std::size_t>(sys.n_atoms()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(3);
  std::shuffle(perm.begin(), perm.end(), rng);
  sys.permute(perm);
  sys.permute(invert_permutation(perm));

  ASSERT_EQ(sys.n_atoms(), original.n_atoms());
  for (int i = 0; i < sys.n_atoms(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(std::memcmp(&sys.positions()[idx], &original.positions()[idx], sizeof(Vec3)), 0);
    EXPECT_EQ(std::memcmp(&sys.velocities()[idx], &original.velocities()[idx], sizeof(Vec3)),
              0);
    EXPECT_EQ(sys.type_of(i), original.type_of(i));
    EXPECT_EQ(sys.charge(i), original.charge(i));
    EXPECT_EQ(sys.movable(i), original.movable(i));
    EXPECT_EQ(sys.external_id(i), i);
    EXPECT_EQ(sys.index_of_external(i), i);
  }
  EXPECT_EQ(sys.charged_indices(), original.charged_indices());
  ASSERT_EQ(sys.radial_bonds().size(), original.radial_bonds().size());
  for (std::size_t b = 0; b < sys.radial_bonds().size(); ++b) {
    EXPECT_EQ(sys.radial_bonds()[b].a, original.radial_bonds()[b].a);
    EXPECT_EQ(sys.radial_bonds()[b].b, original.radial_bonds()[b].b);
  }
  EXPECT_TRUE(sys.excluded(0, 1));
  EXPECT_TRUE(sys.excluded(2, 3));
  EXPECT_FALSE(sys.excluded(0, 2));
}

TEST(SystemPermuteTest, PermutationRelabelsButPreservesPhysics) {
  MolecularSystem sys = make_bonded_mix();
  const MolecularSystem original = sys;
  std::vector<int> perm(static_cast<std::size_t>(sys.n_atoms()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(17);
  std::shuffle(perm.begin(), perm.end(), rng);
  sys.permute(perm);

  // Every atom is findable by external ID and carries its original state.
  for (int ext = 0; ext < original.n_atoms(); ++ext) {
    const int i = sys.index_of_external(ext);
    EXPECT_EQ(sys.external_id(i), ext);
    EXPECT_EQ(std::memcmp(&sys.positions()[static_cast<std::size_t>(i)],
                          &original.positions()[static_cast<std::size_t>(ext)], sizeof(Vec3)),
              0);
    EXPECT_EQ(sys.mass(i), original.mass(ext));
    EXPECT_EQ(sys.movable(i), original.movable(ext));
  }
  // Charged list stays ascending.
  const auto& charged = sys.charged_indices();
  for (std::size_t k = 1; k < charged.size(); ++k) EXPECT_LT(charged[k - 1], charged[k]);
  EXPECT_EQ(sys.n_charged(), original.n_charged());
  // Bonds still couple the same physical atoms (by external ID), and their
  // endpoints are excluded from LJ.
  for (const RadialBond& b : sys.radial_bonds()) {
    EXPECT_TRUE(sys.excluded(b.a, b.b));
    const std::uint64_t lo = static_cast<std::uint64_t>(
        std::min(sys.external_id(b.a), sys.external_id(b.b)));
    EXPECT_LE(lo, 2u);
  }
  // Conserved quantities are permutation-invariant up to summation order.
  EXPECT_NEAR(sys.kinetic_energy(), original.kinetic_energy(), 1e-12);
}

TEST(SystemPermuteTest, RejectsNonPermutations) {
  MolecularSystem sys = make_bonded_mix();
  std::vector<int> bad(static_cast<std::size_t>(sys.n_atoms()), 0);
  EXPECT_THROW(sys.permute(bad), ContractError);
  bad.pop_back();
  EXPECT_THROW(sys.permute(bad), ContractError);
}

// --- Heap-model follow-through ----------------------------------------------

TEST(HeapPermuteTest, JavaObjectsAddressesFollowAtomsButStayScattered) {
  HeapConfig hc;
  hc.layout = Layout::JavaObjects;
  HeapModel heap(hc, 4);
  std::vector<std::uint64_t> before(4);
  for (int i = 0; i < 4; ++i) before[static_cast<std::size_t>(i)] = heap.pos_addr(i);
  const std::vector<int> order{2, 0, 3, 1};
  heap.permute_objects(order);
  // Index k now denotes old atom order[k]; its object never moved, so its
  // address is old atom order[k]'s — creation-order placement survives the
  // permutation (the paper's observed JVM behaviour).
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(heap.pos_addr(k), before[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]);
  }
}

TEST(HeapPermuteTest, ReorderedObjectsBecomeContiguousInNewOrder) {
  HeapConfig hc;
  hc.layout = Layout::ReorderedObjects;
  HeapModel heap(hc, 4);
  heap.permute_objects({2, 0, 3, 1});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(heap.slot_of(i), static_cast<std::uint32_t>(i));
  EXPECT_LT(heap.pos_addr(0), heap.pos_addr(1));
  EXPECT_LT(heap.pos_addr(1), heap.pos_addr(2));
}

TEST(HeapPermuteTest, PackedSoaAddressesAreIndexOnly) {
  HeapConfig hc;
  hc.layout = Layout::PackedSoA;
  HeapModel heap(hc, 4);
  std::vector<std::uint64_t> before(4);
  for (int i = 0; i < 4; ++i) before[static_cast<std::size_t>(i)] = heap.pos_addr(i);
  heap.permute_objects({2, 0, 3, 1});
  // SoA entries are addressed by index; the engine physically moved the data
  // into the new index order, so index addresses are already correct.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(heap.pos_addr(i), before[static_cast<std::size_t>(i)]);
}

// --- Scene I/O stability -----------------------------------------------------

TEST(SceneIoPermuteTest, SavedSceneIsByteIdenticalAcrossReorders) {
  MolecularSystem sys = make_bonded_mix();
  std::ostringstream before;
  save_scene(before, sys);

  std::vector<int> perm(static_cast<std::size_t>(sys.n_atoms()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(23);
  std::shuffle(perm.begin(), perm.end(), rng);
  sys.permute(perm);
  std::ostringstream after;
  save_scene(after, sys);
  EXPECT_EQ(before.str(), after.str());

  // And the round trip re-establishes external ID == index.
  std::istringstream in(after.str());
  MolecularSystem loaded = load_scene(in);
  for (int i = 0; i < loaded.n_atoms(); ++i) EXPECT_EQ(loaded.external_id(i), i);
}

// --- Tiled LJ bit-identity ---------------------------------------------------

TEST(TiledLjTest, TiledKernelIsBitIdenticalToScalar) {
  auto run = [](bool tiled) {
    auto sys = workloads::make_lj_gas(400, 0.02, 260.0, 19);
    EngineConfig cfg;
    cfg.n_threads = 2;
    cfg.cutoff = 6.0;
    cfg.skin = 0.8;
    cfg.temporaries = TemporariesMode::InPlace;
    cfg.tiled_lj = tiled;
    auto eng = std::make_unique<Engine>(std::move(sys), cfg);
    eng->run_inline(25);  // crosses several rebuilds
    return eng;
  };
  const auto scalar_p = run(false);
  const auto tiled_p = run(true);
  const Engine& scalar = *scalar_p;
  const Engine& tiled = *tiled_p;
  const double pe_s = scalar.potential_energy(), pe_t = tiled.potential_energy();
  const double ke_s = scalar.kinetic_energy(), ke_t = tiled.kinetic_energy();
  EXPECT_EQ(std::memcmp(&pe_s, &pe_t, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&ke_s, &ke_t, sizeof(double)), 0);
  ASSERT_EQ(scalar.system().n_atoms(), tiled.system().n_atoms());
  EXPECT_EQ(std::memcmp(scalar.system().positions().data(),
                        tiled.system().positions().data(),
                        scalar.system().positions().size() * sizeof(Vec3)),
            0);
  EXPECT_EQ(std::memcmp(scalar.system().velocities().data(),
                        tiled.system().velocities().data(),
                        scalar.system().velocities().size() * sizeof(Vec3)),
            0);
}

// --- CSR determinism across worker counts -----------------------------------

TEST(CsrDeterminismTest, BuildIsIdenticalAcrossWorkerCounts) {
  auto build = [](int n_threads) {
    auto spec = workloads::make_al1000();
    auto cfg = spec.engine;
    cfg.n_threads = n_threads;
    cfg.chunks_per_thread = 2;
    cfg.temporaries = TemporariesMode::InPlace;
    auto eng = std::make_unique<Engine>(std::move(spec.system), cfg);
    eng->compute_forces_only();
    return eng;
  };
  const auto ref_p = build(1);
  const Engine& ref = *ref_p;
  const NeighborList& rl = ref.neighbor_list();
  for (int workers : {2, 4, 8}) {
    const auto other_p = build(workers);
    const Engine& other = *other_p;
    const NeighborList& ol = other.neighbor_list();
    ASSERT_EQ(ol.total_entries(), rl.total_entries()) << workers << " workers";
    for (int i = 0; i < ref.system().n_atoms(); ++i) {
      ASSERT_EQ(ol.count(i), rl.count(i)) << "atom " << i << ", " << workers << " workers";
      ASSERT_EQ(ol.entry_index(i, 0), rl.entry_index(i, 0));
      EXPECT_TRUE(std::equal(ol.begin(i), ol.end(i), rl.begin(i)));
    }
    // PE is summed per accumulation slot, so its low bits legitimately vary
    // with the worker count (different slot partitions reassociate the sum);
    // the interaction set — checked entry-by-entry above — may not.
    EXPECT_NEAR(other.potential_energy(), ref.potential_energy(),
                1e-10 * (std::abs(ref.potential_energy()) + 1.0));
  }
}

// --- Trajectory invariance under reordering ----------------------------------

TEST(ReorderTrajectoryTest, ReorderedRunMatchesBaselineObservables) {
  auto run = [](int reorder_interval, int steps) {
    auto spec = workloads::make_al1000();
    auto cfg = spec.engine;
    cfg.n_threads = 2;
    cfg.temporaries = TemporariesMode::InPlace;
    cfg.reorder_interval = reorder_interval;
    auto eng = std::make_unique<Engine>(std::move(spec.system), cfg);
    eng->run_inline(steps);
    return eng;
  };
  const int steps = 12;
  const auto base_p = run(0, steps);
  const auto reordered_p = run(1, steps);
  const Engine& base = *base_p;
  const Engine& reordered = *reordered_p;

  // The pass really ran and really changed the storage order.
  bool any_moved = false;
  for (int i = 0; i < reordered.system().n_atoms() && !any_moved; ++i) {
    any_moved = reordered.system().external_id(i) != i;
  }
  EXPECT_TRUE(any_moved);

  // Observables agree to reassociation-level tolerance: reordering changes
  // only floating-point accumulation order, never the interaction set.
  const double scale = std::abs(base.total_energy()) + 1.0;
  EXPECT_NEAR(reordered.total_energy(), base.total_energy(), 1e-9 * scale);
  EXPECT_NEAR(reordered.potential_energy(), base.potential_energy(), 1e-9 * scale);

  // Per-atom state, matched through external IDs, stays tightly aligned over
  // a short horizon (chaotic divergence hasn't amplified the low-bit noise).
  double max_dx = 0.0;
  for (int ext = 0; ext < base.system().n_atoms(); ++ext) {
    const int i = reordered.system().index_of_external(ext);
    const Vec3 d = reordered.system().positions()[static_cast<std::size_t>(i)] -
                   base.system().positions()[static_cast<std::size_t>(ext)];
    max_dx = std::max(max_dx, std::sqrt(d.norm2()));
  }
  EXPECT_LT(max_dx, 1e-6);
}

TEST(ReorderTrajectoryTest, DisabledReorderStaysBitIdenticalAndDeterministic) {
  auto run = [] {
    auto spec = workloads::make_al1000();
    auto cfg = spec.engine;
    cfg.n_threads = 2;
    cfg.temporaries = TemporariesMode::InPlace;
    auto eng = std::make_unique<Engine>(std::move(spec.system), cfg);
    eng->run_inline(10);
    return eng;
  };
  const auto a_p = run();
  const auto b_p = run();
  const Engine& a = *a_p;
  const Engine& b = *b_p;
  const double pe_a = a.potential_energy(), pe_b = b.potential_energy();
  const double ke_a = a.kinetic_energy(), ke_b = b.kinetic_energy();
  EXPECT_EQ(std::memcmp(&pe_a, &pe_b, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&ke_a, &ke_b, sizeof(double)), 0);
  // No reorder pass -> storage order untouched.
  for (int i = 0; i < a.system().n_atoms(); ++i) EXPECT_EQ(a.system().external_id(i), i);
}

TEST(ReorderTrajectoryTest, ReorderedRunConservesEnergy) {
  auto spec = workloads::make_al1000();
  auto cfg = spec.engine;
  cfg.n_threads = 1;
  cfg.temporaries = TemporariesMode::InPlace;
  cfg.reorder_interval = 1;
  Engine eng(std::move(spec.system), cfg);
  eng.run_inline(2);
  const double e0 = eng.total_energy();
  eng.run_inline(40);
  const double e1 = eng.total_energy();
  EXPECT_NEAR(e1, e0, 5e-3 * (std::abs(e0) + 1.0));
}

// --- ForceBuffers::zero_forces -----------------------------------------------

TEST(ForceBuffersZeroTest, ZeroForcesClearsMixedUsePatterns) {
  ForceBuffers buf(3, 300);  // spans 3 blocks of 128
  // Worker 0 touches the first block, worker 1 the last, worker 2 nothing.
  buf.force(0, 5) = Vec3{1, 2, 3};
  buf.force(1, 299) = Vec3{4, 5, 6};
  buf.add_pe(0, 1.0);
  buf.zero_forces();
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 300; ++i) {
      const Vec3& f = buf.force_raw(w, i);
      EXPECT_EQ(f.x, 0.0);
      EXPECT_EQ(f.y, 0.0);
      EXPECT_EQ(f.z, 0.0);
    }
    EXPECT_EQ(buf.touched_blocks(w), 0);
  }
  // A second accumulate/zero cycle behaves identically (marks were reset).
  buf.force(2, 130) = Vec3{7, 8, 9};
  EXPECT_EQ(buf.touched_blocks(2), 1);
  buf.zero_forces();
  const Vec3& f = buf.force_raw(2, 130);
  EXPECT_EQ(f.x, 0.0);
  EXPECT_EQ(f.y, 0.0);
  EXPECT_EQ(f.z, 0.0);
}

}  // namespace
}  // namespace mwx::md
