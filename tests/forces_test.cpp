// Force-kernel correctness: every analytic force must equal the negative
// numerical gradient of the potential energy, and internal forces must sum
// to zero (Newton's third law).  These properties pin down sign and formula
// errors in all five interaction kernels at once.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "md/engine.hpp"
#include "md/system.hpp"

namespace mwx::md {
namespace {

using units::ev;

EngineConfig quiet_config() {
  EngineConfig cfg;
  cfg.n_threads = 1;
  cfg.cutoff = 6.0;
  cfg.skin = 1.0;
  cfg.temporaries = TemporariesMode::InPlace;
  return cfg;
}

// Central-difference force on (atom, axis); engine state is restored.
double numerical_force(Engine& eng, int atom, int axis, double h = 1e-5) {
  Vec3& x = eng.system().positions()[static_cast<std::size_t>(atom)];
  const double orig = x[static_cast<std::size_t>(axis)];
  x[static_cast<std::size_t>(axis)] = orig + h;
  eng.compute_forces_only();
  const double pe_plus = eng.potential_energy();
  x[static_cast<std::size_t>(axis)] = orig - h;
  eng.compute_forces_only();
  const double pe_minus = eng.potential_energy();
  x[static_cast<std::size_t>(axis)] = orig;
  return -(pe_plus - pe_minus) / (2.0 * h);
}

void expect_forces_match_gradient(Engine& eng, double rel_tol = 2e-3) {
  eng.compute_forces_only();
  const auto acc = eng.system().accelerations();  // copy: acc = F/m
  const auto& sys = eng.system();
  double max_abs = 1e-9;
  for (int i = 0; i < sys.n_atoms(); ++i) {
    if (!sys.movable(i)) continue;
    max_abs = std::max(max_abs, (acc[static_cast<std::size_t>(i)] * sys.mass(i)).norm());
  }
  for (int i = 0; i < sys.n_atoms(); ++i) {
    if (!sys.movable(i)) continue;
    for (int axis = 0; axis < 3; ++axis) {
      const double analytic =
          acc[static_cast<std::size_t>(i)][static_cast<std::size_t>(axis)] * sys.mass(i);
      const double numeric = numerical_force(eng, i, axis);
      EXPECT_NEAR(analytic, numeric, rel_tol * max_abs + 1e-9)
          << "atom " << i << " axis " << axis;
    }
  }
}

void expect_newtons_third_law(Engine& eng) {
  eng.compute_forces_only();
  const auto& sys = eng.system();
  Vec3 total{};
  for (int i = 0; i < sys.n_atoms(); ++i) {
    total += sys.accelerations()[static_cast<std::size_t>(i)] * sys.mass(i);
  }
  EXPECT_NEAR(total.norm(), 0.0, 1e-10);
}

AtomTypeTable lj_types() {
  AtomTypeTable t;
  t.add({"Ar", 39.95, ev(0.0104), 3.4});
  return t;
}

class LjGradient : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LjGradient, ForceEqualsNegativeGradient) {
  Rng rng(GetParam());
  MolecularSystem sys(lj_types(), {{0, 0, 0}, {24, 24, 24}});
  // Jittered 2x2x2 lattice with ~4 Å spacing: interacting but not overlapping.
  for (int iz = 0; iz < 2; ++iz) {
    for (int iy = 0; iy < 2; ++iy) {
      for (int ix = 0; ix < 2; ++ix) {
        const Vec3 p{8.0 + 4.0 * ix + rng.uniform(-0.4, 0.4),
                     8.0 + 4.0 * iy + rng.uniform(-0.4, 0.4),
                     8.0 + 4.0 * iz + rng.uniform(-0.4, 0.4)};
        sys.add_atom(0, p);
      }
    }
  }
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng);
  expect_newtons_third_law(eng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LjGradient, ::testing::Values(1, 2, 3, 4, 5));

class CoulombGradient : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoulombGradient, ForceEqualsNegativeGradient) {
  Rng rng(GetParam());
  AtomTypeTable types;
  types.add({"Ion", 30.0, 0.0, 3.0});  // no LJ: isolates the Coulomb kernel
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  for (int i = 0; i < 6; ++i) {
    sys.add_atom(0, rng.point_in_box({8, 8, 8}, {22, 22, 22}), {},
                 (i % 2 == 0) ? 1.0 : -1.0);
  }
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng);
  expect_newtons_third_law(eng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoulombGradient, ::testing::Values(10, 11, 12, 13));

class BondGradient : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BondGradient, RadialForceEqualsNegativeGradient) {
  Rng rng(GetParam());
  AtomTypeTable types;
  types.add({"C", 12.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  for (int i = 0; i < 4; ++i) {
    sys.add_atom(0, Vec3{8.0 + 1.6 * i + rng.uniform(-0.2, 0.2),
                         10.0 + rng.uniform(-0.5, 0.5), 10.0 + rng.uniform(-0.5, 0.5)});
  }
  for (int i = 0; i + 1 < 4; ++i) sys.add_radial_bond({i, i + 1, ev(8.0), 1.54});
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng);
  expect_newtons_third_law(eng);
}

TEST_P(BondGradient, AngularForceEqualsNegativeGradient) {
  Rng rng(GetParam() + 100);
  AtomTypeTable types;
  types.add({"C", 12.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  for (int i = 0; i < 3; ++i) {
    sys.add_atom(0, Vec3{8.0 + 1.5 * i, 10.0 + 0.8 * (i % 2), 10.0} +
                        Vec3{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                             rng.uniform(-0.2, 0.2)});
  }
  sys.add_angular_bond({0, 1, 2, ev(2.0), 1.9});
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng);
  expect_newtons_third_law(eng);
}

TEST_P(BondGradient, TorsionForceEqualsNegativeGradient) {
  Rng rng(GetParam() + 200);
  AtomTypeTable types;
  types.add({"C", 12.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  // A non-planar 4-atom chain (planar geometry makes phi singular).
  sys.add_atom(0, Vec3{8, 10, 10} + Vec3{rng.uniform(-0.1, 0.1), 0, 0});
  sys.add_atom(0, Vec3{9.5, 10.6, 10.2} + Vec3{0, rng.uniform(-0.1, 0.1), 0});
  sys.add_atom(0, Vec3{11, 10.1, 10.9} + Vec3{0, 0, rng.uniform(-0.1, 0.1)});
  sys.add_atom(0, Vec3{12.4, 10.9, 11.5} + Vec3{rng.uniform(-0.1, 0.1), 0, 0});
  sys.add_torsion_bond({0, 1, 2, 3, ev(0.4), 2, 0.5});
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng);
  expect_newtons_third_law(eng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BondGradient, ::testing::Values(20, 21, 22));

TEST(MixedGradient, AllKernelsTogether) {
  Rng rng(77);
  AtomTypeTable types;
  types.add({"X", 15.0, ev(0.01), 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  for (int i = 0; i < 5; ++i) {
    sys.add_atom(0, Vec3{8.0 + 1.7 * i, 10.0 + 0.6 * (i % 2), 10.0 + 0.4 * ((i / 2) % 2)},
                 {}, (i % 2 == 0) ? 0.3 : -0.3);
  }
  for (int i = 0; i + 1 < 5; ++i) sys.add_radial_bond({i, i + 1, ev(6.0), 1.8});
  for (int i = 0; i + 2 < 5; ++i) sys.add_angular_bond({i, i + 1, i + 2, ev(1.0), 2.0});
  for (int i = 0; i + 3 < 5; ++i) sys.add_torsion_bond({i, i + 1, i + 2, i + 3, ev(0.2), 3, 0.0});
  Engine eng(std::move(sys), quiet_config());
  expect_forces_match_gradient(eng, 5e-3);
  expect_newtons_third_law(eng);
}

TEST(LjPhysics, MinimumAtTwoToTheSixthSigma) {
  AtomTypeTable types = lj_types();
  const double sigma = 3.4;
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  MolecularSystem sys(types, {{0, 0, 0}, {20, 20, 20}});
  sys.add_atom(0, {5, 10, 10});
  sys.add_atom(0, {5 + rmin, 10, 10});
  EngineConfig cfg = quiet_config();
  cfg.cutoff = 12.0;
  Engine eng(std::move(sys), cfg);
  eng.compute_forces_only();
  // At the minimum the force vanishes.
  EXPECT_NEAR(eng.system().accelerations()[0].norm(), 0.0, 1e-10);
  // And the energy is -epsilon plus the (small) cutoff shift.
  const double eps = ev(0.0104);
  EXPECT_NEAR(eng.potential_energy(), -eps, eps * 0.02);
}

TEST(LjPhysics, RepulsiveInsideAttractiveOutside) {
  AtomTypeTable types = lj_types();
  MolecularSystem sys(types, {{0, 0, 0}, {20, 20, 20}});
  sys.add_atom(0, {5, 10, 10});
  sys.add_atom(0, {8, 10, 10});  // 3.0 < rmin: repulsive
  EngineConfig cfg = quiet_config();
  cfg.cutoff = 12.0;
  Engine eng(std::move(sys), cfg);
  eng.compute_forces_only();
  EXPECT_LT(eng.system().accelerations()[0].x, 0.0) << "pushed apart";

  auto& pos = eng.system().positions();
  pos[1].x = 5.0 + 4.5;  // > rmin: attractive
  eng.compute_forces_only();
  EXPECT_GT(eng.system().accelerations()[0].x, 0.0) << "pulled together";
}

TEST(LjPhysics, NoInteractionBeyondCutoff) {
  AtomTypeTable types = lj_types();
  MolecularSystem sys(types, {{0, 0, 0}, {40, 40, 40}});
  sys.add_atom(0, {5, 20, 20});
  sys.add_atom(0, {25, 20, 20});
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_DOUBLE_EQ(eng.system().accelerations()[0].norm(), 0.0);
  EXPECT_DOUBLE_EQ(eng.potential_energy(), 0.0);
}

TEST(CoulombPhysics, OppositeChargesAttract) {
  AtomTypeTable types;
  types.add({"Ion", 30.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  sys.add_atom(0, {10, 15, 15}, {}, +1.0);
  sys.add_atom(0, {20, 15, 15}, {}, -1.0);
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_GT(eng.system().accelerations()[0].x, 0.0);
  EXPECT_LT(eng.system().accelerations()[1].x, 0.0);
  // V = -k/r at r=10 Å.
  EXPECT_NEAR(eng.potential_energy(), -units::kCoulomb / 10.0, 1e-12);
}

TEST(CoulombPhysics, CoincidentIonsProduceFiniteForces) {
  // Regression: two charges at the same point gave r2 = 0, and the kernel
  // divided by it — NaN forces that then poisoned every later accumulation.
  // The kernel now skips the singular pair exactly like the LJ kernel does.
  AtomTypeTable types;
  types.add({"Ion", 30.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  sys.add_atom(0, {15, 15, 15}, {}, +1.0);
  sys.add_atom(0, {15, 15, 15}, {}, +1.0);  // exactly coincident
  sys.add_atom(0, {20, 15, 15}, {}, +1.0);
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_TRUE(std::isfinite(eng.potential_energy()));
  for (int i = 0; i < eng.system().n_atoms(); ++i) {
    const Vec3 a = eng.system().accelerations()[static_cast<std::size_t>(i)];
    EXPECT_TRUE(std::isfinite(a.x) && std::isfinite(a.y) && std::isfinite(a.z))
        << "atom " << i;
  }
  // The surviving pairs still interact: the third ion feels the other two.
  EXPECT_NE(eng.system().accelerations()[2].x, 0.0);
}

TEST(CoulombPhysics, LikeChargesRepel) {
  AtomTypeTable types;
  types.add({"Ion", 30.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {30, 30, 30}});
  sys.add_atom(0, {10, 15, 15}, {}, +1.0);
  sys.add_atom(0, {20, 15, 15}, {}, +1.0);
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_LT(eng.system().accelerations()[0].x, 0.0);
  EXPECT_GT(eng.potential_energy(), 0.0);
}

TEST(CoulombPhysics, NoCutoff) {
  // Unlike LJ, Coulomb acts at any distance (Section II-B).
  AtomTypeTable types;
  types.add({"Ion", 30.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {100, 100, 100}});
  sys.add_atom(0, {5, 50, 50}, {}, +1.0);
  sys.add_atom(0, {95, 50, 50}, {}, -1.0);  // 90 Å apart, far past any cutoff
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_GT(eng.system().accelerations()[0].x, 0.0);
}

TEST(BondPhysics, StretchedBondPullsBack) {
  AtomTypeTable types;
  types.add({"C", 12.0, 0.0, 3.0});
  MolecularSystem sys(types, {{0, 0, 0}, {20, 20, 20}});
  sys.add_atom(0, {5, 10, 10});
  sys.add_atom(0, {7, 10, 10});  // r = 2.0, r0 = 1.5: stretched
  sys.add_radial_bond({0, 1, ev(5.0), 1.5});
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_GT(eng.system().accelerations()[0].x, 0.0);
  EXPECT_NEAR(eng.potential_energy(), 0.5 * ev(5.0) * 0.25, 1e-12);
}

TEST(BondPhysics, BondedPairExcludedFromLj) {
  AtomTypeTable types = lj_types();
  MolecularSystem a(types, {{0, 0, 0}, {20, 20, 20}});
  a.add_atom(0, {9, 10, 10});
  a.add_atom(0, {11, 10, 10});
  Engine plain(std::move(a), quiet_config());
  plain.compute_forces_only();
  const double pe_lj = plain.potential_energy();
  EXPECT_NE(pe_lj, 0.0);

  MolecularSystem b(types, {{0, 0, 0}, {20, 20, 20}});
  b.add_atom(0, {9, 10, 10});
  b.add_atom(0, {11, 10, 10});
  b.add_radial_bond({0, 1, ev(5.0), 2.0});  // at rest length: zero bond energy
  Engine bonded(std::move(b), quiet_config());
  bonded.compute_forces_only();
  EXPECT_NEAR(bonded.potential_energy(), 0.0, 1e-12) << "LJ must be excluded";
}

TEST(BondPhysics, FixedPairsDoNotInteract) {
  // nanocar's platform: immovable atoms exert no LJ on one another.
  AtomTypeTable types = lj_types();
  MolecularSystem sys(types, {{0, 0, 0}, {20, 20, 20}});
  sys.add_atom(0, {9, 10, 10}, {}, 0.0, /*movable=*/false);
  sys.add_atom(0, {11, 10, 10}, {}, 0.0, /*movable=*/false);
  Engine eng(std::move(sys), quiet_config());
  eng.compute_forces_only();
  EXPECT_DOUBLE_EQ(eng.potential_energy(), 0.0);
}

}  // namespace
}  // namespace mwx::md
