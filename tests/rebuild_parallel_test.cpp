// Determinism proofs for the parallel rebuild pipeline: every parallel
// overload (cell binning, CSR prefix scan, Morton radix sort, chunked scene
// serialization) must be bit/byte-identical to its serial reference at every
// thread/chunk count, under every queue discipline — and the engine's
// energies must not depend on the parallel_rebuild switch at all.  Plus the
// >= 1M-atom integer-overflow guards (OverflowGuardTest — big-index address
// models, no big allocations; deliberately outside the tsan preset filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "md/cell_grid.hpp"
#include "md/engine.hpp"
#include "md/layout.hpp"
#include "md/morton.hpp"
#include "md/neighbor_list.hpp"
#include "md/scene_io.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/scene_cache.hpp"
#include "sim/machine.hpp"
#include "topo/machine_spec.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mwx;
using parallel::FixedThreadPool;
using parallel::QueueMode;

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr QueueMode kModes[] = {QueueMode::Single, QueueMode::PerThread,
                                QueueMode::WorkStealing};

// A droplet-like workload keeps cell occupancy irregular: dense core, sparse
// halo — the stress case for per-chunk histograms.
md::MolecularSystem irregular_system(int n) {
  return workloads::make_droplet(n, 110.0, 7);
}

void expect_grids_equal(const md::CellGrid& a, const md::CellGrid& b) {
  ASSERT_EQ(a.n_cells(), b.n_cells());
  ASSERT_EQ(a.n_binned(), b.n_binned());
  for (int c = 0; c < a.n_cells(); ++c) {
    ASSERT_EQ(a.cell_count(c), b.cell_count(c)) << "cell " << c;
    ASSERT_TRUE(std::equal(a.cell_begin(c), a.cell_end(c), b.cell_begin(c)))
        << "cell " << c;
  }
}

TEST(RebuildParallelTest, BinningMatchesSerialAcrossThreadsAndModes) {
  md::MolecularSystem sys = irregular_system(3000);
  const double reach = 8.9;
  md::CellGrid ref(sys.box().lo, sys.box().hi, reach);
  ref.bin(sys.positions());
  for (QueueMode mode : kModes) {
    for (int t : kThreadCounts) {
      FixedThreadPool pool({.n_threads = t, .queue_mode = mode});
      md::CellGrid par(sys.box().lo, sys.box().hi, reach);
      // Chunk counts both below and above the worker count.
      for (int chunks : {1, 2, t, 3 * t}) {
        par.bin(sys.positions(), &pool, chunks);
        expect_grids_equal(ref, par);
      }
    }
  }
}

TEST(RebuildParallelTest, BinningReusesHoistedCursorAcrossRebuilds) {
  // Serial path regression for the hoisted cursor: repeated bins (with
  // motion in between) stay correct — every atom lands in exactly one cell.
  md::MolecularSystem sys = irregular_system(500);
  md::CellGrid grid(sys.box().lo, sys.box().hi, 8.9);
  Rng rng(3);
  for (int pass = 0; pass < 3; ++pass) {
    grid.bin(sys.positions());
    ASSERT_EQ(grid.n_binned(), static_cast<std::size_t>(sys.n_atoms()));
    std::vector<bool> seen(static_cast<std::size_t>(sys.n_atoms()), false);
    for (int c = 0; c < grid.n_cells(); ++c) {
      for (const int* it = grid.cell_begin(c); it != grid.cell_end(c); ++it) {
        ASSERT_FALSE(seen[static_cast<std::size_t>(*it)]);
        seen[static_cast<std::size_t>(*it)] = true;
      }
    }
    for (auto& p : sys.positions()) {
      p.x += rng.uniform(-0.5, 0.5);
      p.y += rng.uniform(-0.5, 0.5);
    }
  }
}

TEST(RebuildParallelTest, PrefixScanMatchesSerialAcrossThreadsAndModes) {
  const int n = 5000;
  md::MolecularSystem sys = irregular_system(n);
  md::NeighborList ref(n, 8.0, 0.9);
  ref.begin_rebuild(sys.positions());
  // Irregular counts, including long zero runs (empty vapor rows).
  auto set_counts = [n](md::NeighborList& nl) {
    for (int i = 0; i < n; ++i) {
      nl.set_count(i, i % 5 == 0 ? 0 : static_cast<int>((i * 13 + 5) % 97));
    }
  };
  set_counts(ref);
  ref.finalize_offsets();
  for (QueueMode mode : kModes) {
    for (int t : kThreadCounts) {
      FixedThreadPool pool({.n_threads = t, .queue_mode = mode});
      md::NeighborList par(n, 8.0, 0.9);
      for (int chunks : {1, 2, t, 3 * t}) {
        par.begin_rebuild(sys.positions());
        set_counts(par);
        par.finalize_offsets(&pool, chunks);
        ASSERT_EQ(ref.total_entries(), par.total_entries());
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(ref.entry_index(i, 0), par.entry_index(i, 0)) << "row " << i;
        }
      }
    }
  }
}

TEST(RebuildParallelTest, MortonRadixMatchesStableSortAcrossThreadsAndModes) {
  md::MolecularSystem sys = irregular_system(4000);
  const double reach = 8.9;
  const std::vector<int> ref =
      md::morton_order(sys.positions(), sys.box().lo, sys.box().hi, reach);
  for (QueueMode mode : kModes) {
    for (int t : kThreadCounts) {
      FixedThreadPool pool({.n_threads = t, .queue_mode = mode});
      for (int chunks : {1, 2, t, 3 * t}) {
        EXPECT_EQ(ref, md::morton_order(sys.positions(), sys.box().lo, sys.box().hi,
                                        reach, &pool, chunks));
      }
    }
  }
}

TEST(RebuildParallelTest, SceneTextByteIdenticalAcrossThreadsAndModes) {
  md::MolecularSystem sys = irregular_system(2000);
  const std::string ref = serve::scene_text(sys);
  const std::uint64_t ref_hash = serve::SceneCache::content_hash(ref);
  for (QueueMode mode : kModes) {
    for (int t : kThreadCounts) {
      FixedThreadPool pool({.n_threads = t, .queue_mode = mode});
      for (int chunks : {1, 2, t, 3 * t}) {
        const std::string par = serve::scene_text(sys, &pool, chunks);
        ASSERT_EQ(ref, par);
        ASSERT_EQ(ref_hash, serve::SceneCache::content_hash(par));
      }
    }
  }
}

TEST(RebuildParallelTest, EngineEnergiesIndependentOfParallelRebuild) {
  // The full pipeline through the engine: every (backend x queue mode x
  // parallel_rebuild) combination must report bitwise-equal energies, with
  // the Morton pass on every rebuild (reorder_interval = 1).
  auto energies = [](bool parallel_rebuild, int pool_threads,
                     QueueMode mode) -> std::vector<double> {
    workloads::BenchmarkSpec spec = workloads::make_al1000();
    md::EngineConfig cfg = spec.engine;
    cfg.n_threads = 4;
    cfg.reorder_interval = 1;
    cfg.parallel_rebuild = parallel_rebuild;
    md::Engine engine(std::move(spec.system), cfg);
    std::vector<double> out;
    if (pool_threads == 0) {
      for (int s = 0; s < 6; ++s) {
        engine.run_inline(1);
        out.push_back(engine.total_energy());
        out.push_back(engine.potential_energy());
      }
    } else {
      FixedThreadPool pool({.n_threads = pool_threads, .queue_mode = mode});
      for (int s = 0; s < 6; ++s) {
        engine.run_native(pool, 1);
        out.push_back(engine.total_energy());
        out.push_back(engine.potential_energy());
      }
    }
    return out;
  };
  const std::vector<double> ref = energies(false, 0, QueueMode::Single);
  ASSERT_EQ(ref.size(), 12u);
  EXPECT_EQ(ref, energies(true, 0, QueueMode::Single));  // inline, no pool
  for (QueueMode mode : kModes) {
    for (int t : {1, 2, 4, 8}) {
      EXPECT_EQ(ref, energies(false, t, mode));
      EXPECT_EQ(ref, energies(true, t, mode));
    }
  }
}

TEST(RebuildParallelTest, CheckpointRoundTripThroughParallelSerializer) {
  // A checkpoint written by the chunked serializer must hash identically to
  // the serial text AND restore bit-exactly.
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 4;
  md::Engine engine(std::move(spec.system), cfg);
  FixedThreadPool pool({.n_threads = 4});
  engine.run_native(pool, 4);

  const std::string serial_text = serve::checkpoint_text(engine);
  const std::string par_text = serve::checkpoint_text(engine, &pool);
  ASSERT_EQ(serial_text, par_text);
  ASSERT_EQ(serve::SceneCache::content_hash(serial_text),
            serve::SceneCache::content_hash(par_text));

  std::istringstream is(par_text);
  std::vector<Vec3> refs;
  md::MolecularSystem restored = md::load_scene(is, &refs);
  md::Engine resumed(std::move(restored), cfg);
  resumed.restore_continuation(refs);

  engine.run_native(pool, 3);
  resumed.run_native(pool, 3);
  EXPECT_EQ(engine.total_energy(), resumed.total_energy());
  EXPECT_EQ(engine.potential_energy(), resumed.potential_energy());
}

TEST(RebuildParallelTest, SimulatedBackendChargesParallelRebuildPhases) {
  workloads::BenchmarkSpec spec = workloads::make_al1000();
  md::EngineConfig cfg = spec.engine;
  cfg.n_threads = 4;
  cfg.reorder_interval = 1;
  cfg.parallel_rebuild = true;
  md::Engine engine(std::move(spec.system), cfg);
  sim::MachineConfig mc;
  mc.spec = topo::core_i7_920();
  mc.n_threads = 4;
  sim::Machine machine(mc);
  engine.run_simulated(machine, 3);
  ASSERT_GE(engine.rebuild_count(), 1);

  // The new phase tags show up in the counter domains...
  const std::vector<int> phases = machine.counter_phases();
  auto has = [&phases](int tag) {
    return std::find(phases.begin(), phases.end(), tag) != phases.end();
  };
  EXPECT_TRUE(has(md::kPhaseBin));
  EXPECT_TRUE(has(md::kPhaseNbrPrefix));
  EXPECT_TRUE(has(md::kPhaseMortonSort));

  // ...and counter conservation holds across all domains (integer event
  // counts must sum exactly to the global counters).
  sim::MachineCounters sum;
  for (int tag : phases) sum += machine.phase_counters(tag);
  const sim::MachineCounters& g = machine.counters();
  EXPECT_EQ(g.l1.hits, sum.l1.hits);
  EXPECT_EQ(g.l1.misses, sum.l1.misses);
  EXPECT_EQ(g.l2.misses, sum.l2.misses);
  EXPECT_EQ(g.l3.misses, sum.l3.misses);
  EXPECT_EQ(g.dram_line_fetches, sum.dram_line_fetches);
  EXPECT_EQ(g.dram_writebacks, sum.dram_writebacks);
}

TEST(RebuildParallelTest, SimulatedEnergiesIndependentOfParallelRebuild) {
  // The cost-model switch changes simulated *time*, never physics.
  auto run = [](bool parallel_rebuild) {
    workloads::BenchmarkSpec spec = workloads::make_al1000();
    md::EngineConfig cfg = spec.engine;
    cfg.n_threads = 2;
    cfg.reorder_interval = 1;
    cfg.parallel_rebuild = parallel_rebuild;
    md::Engine engine(std::move(spec.system), cfg);
    sim::MachineConfig mc;
    mc.spec = topo::core_i7_920();
    mc.n_threads = 2;
    sim::Machine machine(mc);
    engine.run_simulated(machine, 4);
    return std::pair{engine.total_energy(), engine.potential_energy()};
  };
  EXPECT_EQ(run(false), run(true));
}

// --- >= 1M-atom integer-overflow guards -------------------------------------
// Named outside the tsan preset filter on purpose: these exercise address
// models and guard paths, not concurrency.

TEST(OverflowGuardTest, CellGridRejectsAxisCountOverflow) {
  // A huge box with a tiny reach would overflow int cell indexing; the
  // constructor must refuse it rather than wrap.
  EXPECT_THROW(md::CellGrid({0, 0, 0}, {1e9, 1e9, 1e9}, 0.1), ContractError);
  // Axis counts that fit individually but whose product overflows int.
  EXPECT_THROW(md::CellGrid({0, 0, 0}, {2e6, 2e6, 2e6}, 1.0), ContractError);
}

TEST(OverflowGuardTest, CellGridHandlesMillionAtomOccupancy) {
  // 1M synthetic positions on a coarse grid: start_/occupants_ stay
  // consistent (the capacity/total bookkeeping is exercised well past any
  // 16/32k boundary, with cell totals summing to exactly n).
  const int n = 1000000;
  std::vector<Vec3> pos(static_cast<std::size_t>(n));
  Rng rng(11);
  for (auto& p : pos) {
    p = {rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
  }
  md::CellGrid grid({0, 0, 0}, {200, 200, 200}, 10.0);
  grid.bin(pos);
  ASSERT_EQ(grid.n_binned(), static_cast<std::size_t>(n));
  long long total = 0;
  for (int c = 0; c < grid.n_cells(); ++c) total += grid.cell_count(c);
  EXPECT_EQ(total, n);
}

TEST(OverflowGuardTest, NeighborListTotalsUse64BitArithmetic) {
  // Synthetic high-density check: 1.2M rows x 1900 entries/row would
  // overflow a 32-bit total (2.28e9); the CSR offsets must carry it.  No
  // allocation happens before finalize, and we avoid the 9 GB entry array by
  // checking the address model (HeapModel), which shares the same widths.
  static_assert(sizeof(std::size_t) == 8, "CSR offsets must be 64-bit");
  const md::HeapConfig hc;
  md::HeapModel heap(hc, 1100000, 2048);
  const std::uint64_t total =
      1100000ull * static_cast<std::uint64_t>(heap.neighbor_entries_per_atom());
  ASSERT_GT(total, 1ull << 31);
  // Addresses must be strictly monotone through the 2^32-entry region.
  const std::uint64_t a = heap.neighbor_entry_addr(total - 1);
  const std::uint64_t b = heap.neighbor_entry_addr(total / 2);
  const std::uint64_t c = heap.neighbor_entry_addr(0);
  EXPECT_GT(a, b);
  EXPECT_GT(b, c);
  EXPECT_EQ(a - c, (total - 1) * 4);
}

TEST(OverflowGuardTest, EntryIndexIs64BitPerRow) {
  // entry_index must not truncate row offsets in the billions.
  md::NeighborList nl(3, 8.0, 0.9);
  std::vector<Vec3> pos{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  nl.begin_rebuild(pos);
  nl.set_count(0, 7);
  nl.set_count(1, 5);
  nl.set_count(2, 3);
  nl.finalize_offsets();
  static_assert(std::is_same_v<decltype(nl.entry_index(0, 0)), std::uint64_t>,
                "entry_index must be 64-bit");
  static_assert(std::is_same_v<decltype(nl.total_entries()), std::size_t>,
                "total_entries must be 64-bit");
  EXPECT_EQ(nl.entry_index(1, 0), 7u);
  EXPECT_EQ(nl.entry_index(2, 0), 12u);
  EXPECT_EQ(nl.total_entries(), 15u);
}

}  // namespace
