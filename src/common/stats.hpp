// Small online/offline statistics helpers shared by the performance tooling
// and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/require.hpp"

namespace mwx {

// Welford online accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] long long count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Load-imbalance metric used throughout Section IV analysis:
// imbalance = max(t_i) / mean(t_i).  1.0 is perfectly balanced.
inline double imbalance_ratio(const std::vector<double>& per_thread_time) {
  require(!per_thread_time.empty(), "imbalance needs at least one sample");
  double mx = per_thread_time.front();
  double sum = 0.0;
  for (double t : per_thread_time) {
    mx = std::max(mx, t);
    sum += t;
  }
  const double mean = sum / static_cast<double>(per_thread_time.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

// Fraction of aggregate thread-time wasted waiting at the end-of-phase
// barrier: sum(max - t_i) / (n * max).
inline double barrier_waste_fraction(const std::vector<double>& per_thread_time) {
  require(!per_thread_time.empty(), "waste needs at least one sample");
  double mx = 0.0;
  for (double t : per_thread_time) mx = std::max(mx, t);
  if (mx <= 0.0) return 0.0;
  double waste = 0.0;
  for (double t : per_thread_time) waste += mx - t;
  return waste / (mx * static_cast<double>(per_thread_time.size()));
}

inline double percentile(std::vector<double> values, double p) {
  require(!values.empty(), "percentile of empty set");
  require(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace mwx
