// Internal unit system of the MD engine.
//
// Base units: length = ångström (Å), time = femtosecond (fs), mass = atomic
// mass unit (amu).  The derived internal energy unit is therefore
// 1 amu·Å²/fs² ≈ 103.6427 eV; conversion constants below express common
// physical quantities in internal units.  All engine code stores quantities
// in internal units; workload builders and reports convert at the boundary.
#pragma once

namespace mwx::units {

// 1 eV expressed in internal energy units (amu·Å²/fs²).
inline constexpr double kEv = 1.0 / 103.642696;

// Boltzmann constant: 8.617333262e-5 eV/K, in internal units per kelvin.
inline constexpr double kBoltzmann = 8.617333262e-5 * kEv;

// Coulomb constant k_e = 14.399645 eV·Å/e², in internal units (charge in
// elementary charges, distance in Å).
inline constexpr double kCoulomb = 14.399645 * kEv;

// Handy time conversions.
inline constexpr double kFsPerPs = 1000.0;

// Convert a kinetic energy sum (internal units) of `n` atoms into an
// instantaneous temperature in kelvin: T = 2 KE / (3 N kB).
constexpr double kinetic_to_kelvin(double kinetic_internal, int n_atoms) {
  return n_atoms > 0 ? (2.0 * kinetic_internal) / (3.0 * n_atoms * kBoltzmann) : 0.0;
}

constexpr double ev(double value_ev) { return value_ev * kEv; }
constexpr double to_ev(double value_internal) { return value_internal / kEv; }

}  // namespace mwx::units
