#include "common/vec3.hpp"

#include <ostream>

namespace mwx {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace mwx
