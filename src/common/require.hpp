// Precondition / invariant checking.
//
// Following the C++ Core Guidelines (I.6, E.12): preconditions are checked at
// API boundaries and violations throw, so callers can rely on documented
// contracts even in release builds.  Hot inner loops use MWX_ASSERT, which
// compiles out in NDEBUG builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mwx {

class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Throws ContractError when `condition` is false.  Always enabled.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ContractError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": requirement failed: " + message);
  }
}

}  // namespace mwx

#ifdef NDEBUG
#define MWX_ASSERT(cond) ((void)0)
#else
#define MWX_ASSERT(cond) ::mwx::require((cond), #cond)
#endif
