// Minimal command-line flag parser for the examples and bench drivers.
// Supports --name=value, --name value, and bare --flag booleans.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace mwx {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(std::move(a));
        continue;
      }
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        values_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[a] = argv[++i];
      } else {
        values_[a] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }

  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  [[nodiscard]] long get_int(const std::string& name, long fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stol(it->second);
    } catch (...) {
      throw ContractError("flag --" + name + " expects an integer, got '" + it->second + "'");
    }
  }

  [[nodiscard]] double get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      throw ContractError("flag --" + name + " expects a number, got '" + it->second + "'");
    }
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mwx
