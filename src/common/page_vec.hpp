// PageVec<T> — a minimal vector for trivially copyable elements whose
// backing pages stay untouched until first written.
//
// std::vector cannot express first-touch NUMA placement: resize() value-
// initializes every element on the calling (master) thread, so on a
// first-touch kernel every page of a freshly grown array is homed on the
// master's node no matter which worker later owns it.  PageVec allocates
// raw storage with ::operator new and leaves it uninitialized on request
// (resize_uninitialized), so the *first write* — which the engine's
// placement pass issues from the worker that owns the block — is what homes
// each page.  Outside that one difference it behaves like a small subset of
// std::vector (push_back, operator[], data, iteration, copy/move).
//
// Only trivially copyable T are supported: growth and copies use memcpy and
// destruction is a free() — which is also what keeps the container honest
// about never touching pages it was not asked to touch.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace mwx {

template <typename T>
class PageVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "PageVec supports trivially copyable element types only");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  PageVec() = default;
  // Value-initialized construction (std::vector semantics; touches pages).
  explicit PageVec(std::size_t n) { resize(n); }

  PageVec(const PageVec& o) {
    reserve(o.size_);
    if (o.size_ > 0) std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }
  PageVec& operator=(const PageVec& o) {
    if (this != &o) {
      PageVec tmp(o);
      swap(tmp);
    }
    return *this;
  }
  PageVec(PageVec&& o) noexcept { swap(o); }
  PageVec& operator=(PageVec&& o) noexcept {
    swap(o);
    return *this;
  }
  ~PageVec() { ::operator delete(static_cast<void*>(data_)); }

  void swap(PageVec& o) noexcept {
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(cap_, o.cap_);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }

  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }

  // Views/copies for std-container consumers.
  operator std::span<T>() { return {data_, size_}; }                    // NOLINT
  operator std::span<const T>() const { return {data_, size_}; }       // NOLINT
  operator std::vector<T>() const { return {begin(), end()}; }         // NOLINT

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    T* fresh = static_cast<T*>(::operator new(n * sizeof(T)));
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    ::operator delete(static_cast<void*>(data_));
    data_ = fresh;
    cap_ = n;
  }

  // Grows (or shrinks) to n elements without writing the new tail: the pages
  // behind [old_size, n) stay untouched until a caller stores into them.
  void resize_uninitialized(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  // std::vector-style resize: new elements are value-initialized (touched
  // here, on the calling thread).
  void resize(std::size_t n) {
    const std::size_t old = size_;
    resize_uninitialized(n);
    if (n > old) std::memset(static_cast<void*>(data_ + old), 0, (n - old) * sizeof(T));
  }

  void push_back(const T& v) {
    if (size_ == cap_) reserve(cap_ == 0 ? 16 : cap_ * 2);
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace mwx
