#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/require.hpp"

namespace mwx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v) {
  char buf[64];
  if (v == 0.0 || (std::fabs(v) >= 1e-3 && std::fabs(v) < 1e7)) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  }
  return buf;
}

std::string Table::fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t p = cells[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace mwx
