// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the repository (workload generation, the
// simulator's OS-scheduler noise, property-test inputs) flows through these
// generators so that runs are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/vec3.hpp"

namespace mwx {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — fast, high-quality, and deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x6d77785f73656564ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  constexpr double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the small ranges we draw.
    return next() % n;
  }

  // Standard normal via Box–Muller (no cached second value: keeps the
  // generator state a pure function of draw count).
  double gaussian() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  // Maxwell–Boltzmann velocity component sample for temperature T, mass m
  // (kB in the caller's unit system).
  Vec3 maxwell_boltzmann(double kb_t_over_m) {
    const double s = std::sqrt(kb_t_over_m);
    return {gaussian(0.0, s), gaussian(0.0, s), gaussian(0.0, s)};
  }

  // Uniform point inside an axis-aligned box [lo, hi).
  Vec3 point_in_box(const Vec3& lo, const Vec3& hi) {
    return {uniform(lo.x, hi.x), uniform(lo.y, hi.y), uniform(lo.z, hi.z)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace mwx
