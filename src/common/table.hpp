// Lightweight aligned-ASCII / CSV table writer used by the benchmark
// harnesses to print the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mwx {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats arithmetic/string arguments into one row.
  template <typename... Args>
  void row(const Args&... args) {
    add_row({cell(args)...});
  }

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Pretty-prints with a ruled header, columns padded to content width.
  void print(std::ostream& os, const std::string& title = "") const;

  // Comma-separated form (headers first), suitable for plotting.
  void print_csv(std::ostream& os) const;

  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v);
  static std::string cell(float v) { return cell(static_cast<double>(v)); }
  static std::string cell(int v) { return std::to_string(v); }
  static std::string cell(long v) { return std::to_string(v); }
  static std::string cell(long long v) { return std::to_string(v); }
  static std::string cell(unsigned v) { return std::to_string(v); }
  static std::string cell(unsigned long v) { return std::to_string(v); }
  static std::string cell(unsigned long long v) { return std::to_string(v); }

  // Fixed-precision numeric cell.
  static std::string fixed(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mwx
