// Three-component double-precision vector used throughout the MD engine.
//
// The paper's Java application represented 3-D forces, placements and
// velocities with a small convenience class whose heap-allocated instances
// dominated the live heap (Section V-B).  In C++ Vec3 is a trivially
// copyable value type; the "Java temporary object" behaviour is modelled
// separately by mwx::perf::AllocationTracker and the simulator's heap model.
#pragma once

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace mwx {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
  [[nodiscard]] constexpr double max_abs_component() const {
    const double ax = x < 0 ? -x : x;
    const double ay = y < 0 ? -y : y;
    const double az = z < 0 ? -z : z;
    return ax > ay ? (ax > az ? ax : az) : (ay > az ? ay : az);
  }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

constexpr double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
constexpr double distance2(const Vec3& a, const Vec3& b) { return (a - b).norm2(); }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace mwx
