// Privatized per-worker force accumulation (phase 5's reduction input).
//
// "perform a reduction across all copies of the privatized force array"
// (Section II-A, phase 5).  Each worker owns a full-length force array plus
// scalar tallies; pair kernels write only their worker's copy, so no
// synchronization is needed inside a phase, and the reduction phase sums the
// copies in fixed worker order — making the parallel result deterministic.
#pragma once

#include <vector>

#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::md {

class ForceBuffers {
 public:
  ForceBuffers(int n_workers, int n_atoms)
      : n_workers_(n_workers), n_atoms_(n_atoms),
        force_(static_cast<std::size_t>(n_workers),
               std::vector<Vec3>(static_cast<std::size_t>(n_atoms))),
        pe_(static_cast<std::size_t>(n_workers), 0.0),
        ke_(static_cast<std::size_t>(n_workers), 0.0) {
    require(n_workers > 0 && n_atoms > 0, "buffers need workers and atoms");
  }

  [[nodiscard]] int n_workers() const { return n_workers_; }
  [[nodiscard]] int n_atoms() const { return n_atoms_; }

  [[nodiscard]] Vec3& force(int worker, int atom) {
    return force_[static_cast<std::size_t>(worker)][static_cast<std::size_t>(atom)];
  }
  [[nodiscard]] const Vec3& force(int worker, int atom) const {
    return force_[static_cast<std::size_t>(worker)][static_cast<std::size_t>(atom)];
  }

  void add_pe(int worker, double v) { pe_[static_cast<std::size_t>(worker)] += v; }
  void add_ke(int worker, double v) { ke_[static_cast<std::size_t>(worker)] += v; }

  // Sums and clears the per-worker scalar tallies.
  double drain_pe() {
    double s = 0.0;
    for (auto& v : pe_) {
      s += v;
      v = 0.0;
    }
    return s;
  }
  double drain_ke() {
    double s = 0.0;
    for (auto& v : ke_) {
      s += v;
      v = 0.0;
    }
    return s;
  }

  void zero_forces() {
    for (auto& w : force_) {
      for (auto& f : w) f = Vec3{};
    }
  }

 private:
  int n_workers_;
  int n_atoms_;
  std::vector<std::vector<Vec3>> force_;
  std::vector<double> pe_;
  std::vector<double> ke_;
};

}  // namespace mwx::md
