// Privatized per-worker force accumulation (phase 5's reduction input).
//
// "perform a reduction across all copies of the privatized force array"
// (Section II-A, phase 5).  Each accumulation slot owns a full-length force
// array plus scalar tallies; pair kernels write only their slot's copy, so no
// synchronization is needed inside a phase, and the reduction phase sums the
// slots in fixed order — making the parallel result deterministic.
//
// Two performance refinements over the paper's dense design:
//   * The scalar pe/ke tallies are padded to one cache line per slot.  As
//     contiguous doubles, eight adjacent workers' running sums shared one
//     line and every add ping-ponged it between cores (the false-sharing
//     pathology bench/false_sharing.cpp demonstrates).
//   * Every slot tracks which fixed-size blocks of atoms it scattered into
//     (a byte per block, set on the force() store path).  The reduction can
//     then skip (slot, block) pairs nobody touched instead of sweeping the
//     full O(n_atoms x n_slots) matrix — the dominant phase-5 cost at high
//     slot counts.  Untouched entries are exactly +0.0, so skipping them
//     leaves the reduced sum bit-identical to the dense sweep.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/page_vec.hpp"
#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::md {

class ForceBuffers {
 public:
  // Atoms per touched-tracking block.  128 atoms x 24 bytes = 3 KB of force
  // data per (slot, block) skipped — coarse enough that the bitmap stays a
  // few bytes per slot, fine enough that bonded/contiguous chunks leave most
  // of a big system's blocks untouched.
  static constexpr int kBlockShift = 7;
  static constexpr int kBlockAtoms = 1 << kBlockShift;

  ForceBuffers(int n_workers, int n_atoms)
      : n_workers_(n_workers), n_atoms_(n_atoms),
        n_blocks_((n_atoms + kBlockAtoms - 1) / kBlockAtoms),
        // Pad each slot's bitmap row to a full cache line so two slots never
        // share one (the marks themselves must not false-share).
        touched_stride_(((static_cast<std::size_t>(n_blocks_) + 63) / 64) * 64),
        force_(static_cast<std::size_t>(n_workers),
               PageVec<Vec3>(static_cast<std::size_t>(n_atoms))),
        touched_(static_cast<std::size_t>(n_workers) * touched_stride_, 0),
        pe_(static_cast<std::size_t>(n_workers)),
        ke_(static_cast<std::size_t>(n_workers)) {
    require(n_workers > 0 && n_atoms > 0, "buffers need workers and atoms");
  }

  [[nodiscard]] int n_workers() const { return n_workers_; }
  [[nodiscard]] int n_atoms() const { return n_atoms_; }
  [[nodiscard]] int n_blocks() const { return n_blocks_; }

  // Kernel-facing accumulation access: marks the containing block as touched
  // so the sparse reduction knows this slot scattered here.
  [[nodiscard]] Vec3& force(int worker, int atom) {
    touched_[static_cast<std::size_t>(worker) * touched_stride_ +
             static_cast<std::size_t>(atom >> kBlockShift)] = 1;
    return force_[static_cast<std::size_t>(worker)][static_cast<std::size_t>(atom)];
  }
  [[nodiscard]] const Vec3& force(int worker, int atom) const {
    return force_[static_cast<std::size_t>(worker)][static_cast<std::size_t>(atom)];
  }

  // Reduction-facing access: reads/zeroes without setting marks.
  [[nodiscard]] Vec3& force_raw(int worker, int atom) {
    return force_[static_cast<std::size_t>(worker)][static_cast<std::size_t>(atom)];
  }

  // Whole-slot access for the first-touch placement pass, which replaces a
  // slot's backing pages with ones homed on the owning worker's node.  Only
  // valid between steps, when every entry is +0.0 and no marks are set.
  [[nodiscard]] PageVec<Vec3>& slot_array(int worker) {
    return force_[static_cast<std::size_t>(worker)];
  }

  [[nodiscard]] bool block_touched(int worker, int block) const {
    return touched_[static_cast<std::size_t>(worker) * touched_stride_ +
                    static_cast<std::size_t>(block)] != 0;
  }

  // Blocks this slot scattered into (diagnostics/benches).
  [[nodiscard]] int touched_blocks(int worker) const {
    int count = 0;
    for (int b = 0; b < n_blocks_; ++b) count += block_touched(worker, b) ? 1 : 0;
    return count;
  }

  // Forgets all touch marks.  Called after the reduction phase, which leaves
  // every touched entry zeroed — so marks and data agree again.
  void clear_touched() { std::fill(touched_.begin(), touched_.end(), std::uint8_t{0}); }

  void add_pe(int worker, double v) { pe_[static_cast<std::size_t>(worker)].value += v; }
  void add_ke(int worker, double v) { ke_[static_cast<std::size_t>(worker)].value += v; }

  // Sums and clears the per-slot scalar tallies.
  double drain_pe() {
    double s = 0.0;
    for (auto& v : pe_) {
      s += v.value;
      v.value = 0.0;
    }
    return s;
  }
  double drain_ke() {
    double s = 0.0;
    for (auto& v : ke_) {
      s += v.value;
      v.value = 0.0;
    }
    return s;
  }

  // Resets every accumulator to exactly +0.0.  Only touched blocks are
  // swept: an untouched entry has never been written since the last sweep,
  // so it is already +0.0 — the same invariant the sparse reduction relies
  // on.  (Writes through force_raw() bypass the touch marks by design; such
  // callers — the reduction, which always zeroes behind itself — must leave
  // entries at +0.0.)
  void zero_forces() {
    for (int w = 0; w < n_workers_; ++w) {
      auto& slot = force_[static_cast<std::size_t>(w)];
      for (int b = 0; b < n_blocks_; ++b) {
        if (!block_touched(w, b)) continue;
        const std::size_t begin = static_cast<std::size_t>(b) << kBlockShift;
        const std::size_t end =
            std::min(slot.size(), begin + static_cast<std::size_t>(kBlockAtoms));
        std::fill(slot.begin() + static_cast<std::ptrdiff_t>(begin),
                  slot.begin() + static_cast<std::ptrdiff_t>(end), Vec3{});
      }
    }
    clear_touched();
  }

 private:
  // One running scalar per slot, alone on its cache line: adjacent slots'
  // per-pair adds must not invalidate each other.
  struct alignas(64) PaddedTally {
    double value = 0.0;
  };

  int n_workers_;
  int n_atoms_;
  int n_blocks_;
  std::size_t touched_stride_;
  // One PageVec per slot (not vector<vector>) so the placement pass can swap
  // in freshly homed pages per slot without disturbing the others.
  std::vector<PageVec<Vec3>> force_;
  std::vector<std::uint8_t> touched_;
  std::vector<PaddedTally> pe_;
  std::vector<PaddedTally> ke_;
};

}  // namespace mwx::md
