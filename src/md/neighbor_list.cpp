#include "md/neighbor_list.hpp"

#include <algorithm>

#include "parallel/chunked.hpp"

namespace mwx::md {

NeighborList::NeighborList(int n_atoms, double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  require(n_atoms > 0, "neighbor list needs atoms");
  require(cutoff > 0.0 && skin >= 0.0, "cutoff/skin must be sane");
  counts_.assign(static_cast<std::size_t>(n_atoms), 0);
  cursor_.assign(static_cast<std::size_t>(n_atoms), 0);
  offsets_.assign(static_cast<std::size_t>(n_atoms) + 1, 0);
}

void NeighborList::begin_rebuild(std::span<const Vec3> positions) {
  require(positions.size() == counts_.size(), "atom count changed");
  ref_pos_.assign(positions.begin(), positions.end());
  std::fill(counts_.begin(), counts_.end(), 0);
}

void NeighborList::finalize_offsets() {
  std::size_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    offsets_[i] = running;
    running += static_cast<std::size_t>(counts_[i]);
  }
  offsets_[counts_.size()] = running;
  total_ = running;
  // Grow-only: steady-state rebuilds reuse the high-water allocation instead
  // of churning the allocator every few steps.  The grown tail stays
  // untouched here — the fill pass writes every live entry before any reader
  // sees it, and writing from the filling worker is what places the pages.
  if (entries_.size() < total_) entries_.resize_uninitialized(total_);
  std::fill(cursor_.begin(), cursor_.end(), 0);
}

void NeighborList::finalize_offsets(parallel::FixedThreadPool* pool, int n_chunks) {
  const std::size_t n = counts_.size();
  if (pool == nullptr || n_chunks <= 1 || n < 2) {
    finalize_offsets();
    return;
  }
  const int chunks = static_cast<int>(
      std::min(static_cast<long long>(n_chunks), static_cast<long long>(n)));
  scan_bases_.assign(static_cast<std::size_t>(chunks) + 1, 0);
  // Pass 1: chunk-local exclusive prefixes + chunk totals.
  parallel::for_chunks(pool, chunks, static_cast<long long>(n),
                       [&](int k, long long b, long long e) {
    std::size_t running = 0;
    for (long long i = b; i < e; ++i) {
      offsets_[static_cast<std::size_t>(i)] = running;
      running += static_cast<std::size_t>(counts_[static_cast<std::size_t>(i)]);
    }
    scan_bases_[static_cast<std::size_t>(k) + 1] = running;
  });
  // Serial anchor: O(chunks), not O(n_atoms) — the whole point.
  for (int k = 0; k < chunks; ++k) {
    scan_bases_[static_cast<std::size_t>(k) + 1] += scan_bases_[static_cast<std::size_t>(k)];
  }
  // Pass 2: add the chunk base back and reset this chunk's fill cursors.
  parallel::for_chunks(pool, chunks, static_cast<long long>(n),
                       [&](int k, long long b, long long e) {
    const std::size_t base = scan_bases_[static_cast<std::size_t>(k)];
    for (long long i = b; i < e; ++i) {
      offsets_[static_cast<std::size_t>(i)] += base;
      cursor_[static_cast<std::size_t>(i)] = 0;
    }
  });
  total_ = scan_bases_[static_cast<std::size_t>(chunks)];
  offsets_[n] = total_;
  // Same grow-only discipline as the serial path: the grown tail stays
  // untouched here so the parallel fill pass still first-touches the pages.
  if (entries_.size() < total_) entries_.resize_uninitialized(total_);
}

bool NeighborList::chunk_exceeds_skin(std::span<const Vec3> positions, int begin,
                                      int end) const {
  if (!ever_built()) return true;
  // Euclidean displacement against skin/2: the list guarantees correctness
  // while every atom stays within skin/2 *of distance* of its reference
  // position (two atoms approaching each other close the skin gap at up to
  // skin/2 each).  The per-component (Chebyshev) check used previously let a
  // diagonal drift of up to (sqrt(3)/2)*skin slip through, silently dropping
  // pair interactions between rebuilds.
  const double limit2 = 0.25 * skin_ * skin_;
  for (int i = begin; i < end; ++i) {
    const Vec3 d = positions[static_cast<std::size_t>(i)] - ref_pos_[static_cast<std::size_t>(i)];
    if (d.norm2() > limit2) return true;
  }
  return false;
}

}  // namespace mwx::md
