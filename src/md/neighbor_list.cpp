#include "md/neighbor_list.hpp"

#include <algorithm>

namespace mwx::md {

NeighborList::NeighborList(int n_atoms, double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  require(n_atoms > 0, "neighbor list needs atoms");
  require(cutoff > 0.0 && skin >= 0.0, "cutoff/skin must be sane");
  counts_.assign(static_cast<std::size_t>(n_atoms), 0);
  cursor_.assign(static_cast<std::size_t>(n_atoms), 0);
  offsets_.assign(static_cast<std::size_t>(n_atoms) + 1, 0);
}

void NeighborList::begin_rebuild(std::span<const Vec3> positions) {
  require(positions.size() == counts_.size(), "atom count changed");
  ref_pos_.assign(positions.begin(), positions.end());
  std::fill(counts_.begin(), counts_.end(), 0);
}

void NeighborList::finalize_offsets() {
  std::size_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    offsets_[i] = running;
    running += static_cast<std::size_t>(counts_[i]);
  }
  offsets_[counts_.size()] = running;
  total_ = running;
  // Grow-only: steady-state rebuilds reuse the high-water allocation instead
  // of churning the allocator every few steps.  The grown tail stays
  // untouched here — the fill pass writes every live entry before any reader
  // sees it, and writing from the filling worker is what places the pages.
  if (entries_.size() < total_) entries_.resize_uninitialized(total_);
  std::fill(cursor_.begin(), cursor_.end(), 0);
}

bool NeighborList::chunk_exceeds_skin(std::span<const Vec3> positions, int begin,
                                      int end) const {
  if (!ever_built()) return true;
  // Euclidean displacement against skin/2: the list guarantees correctness
  // while every atom stays within skin/2 *of distance* of its reference
  // position (two atoms approaching each other close the skin gap at up to
  // skin/2 each).  The per-component (Chebyshev) check used previously let a
  // diagonal drift of up to (sqrt(3)/2)*skin slip through, silently dropping
  // pair interactions between rebuilds.
  const double limit2 = 0.25 * skin_ * skin_;
  for (int i = begin; i < end; ++i) {
    const Vec3 d = positions[static_cast<std::size_t>(i)] - ref_pos_[static_cast<std::size_t>(i)];
    if (d.norm2() > limit2) return true;
  }
  return false;
}

}  // namespace mwx::md
