#include "md/neighbor_list.hpp"

namespace mwx::md {

NeighborList::NeighborList(int n_atoms, double cutoff, double skin, int capacity_per_atom)
    : cutoff_(cutoff), skin_(skin), capacity_(capacity_per_atom) {
  require(n_atoms > 0, "neighbor list needs atoms");
  require(cutoff > 0.0 && skin >= 0.0, "cutoff/skin must be sane");
  require(capacity_per_atom > 0, "capacity must be positive");
  counts_.assign(static_cast<std::size_t>(n_atoms), 0);
  entries_.assign(static_cast<std::size_t>(n_atoms) * static_cast<std::size_t>(capacity_), 0);
}

void NeighborList::begin_rebuild(const std::vector<Vec3>& positions) {
  require(positions.size() == counts_.size(), "atom count changed");
  ref_pos_ = positions;
}

bool NeighborList::chunk_exceeds_skin(const std::vector<Vec3>& positions, int begin,
                                      int end) const {
  if (!ever_built()) return true;
  const double limit = 0.5 * skin_;
  for (int i = begin; i < end; ++i) {
    const Vec3 d = positions[static_cast<std::size_t>(i)] - ref_pos_[static_cast<std::size_t>(i)];
    if (d.max_abs_component() > limit) return true;
  }
  return false;
}

}  // namespace mwx::md
