// Linked-cell grid — the O(N) neighbor-finding substrate (Hockney &
// Eastwood), Section II-B: "the linked-cell approach superimposes a
// three-dimensional grid over the simulation space ... sized such that the
// neighbors of any given atom must fall within the grid box containing the
// atom or in one of the grid boxes adjacent to that box."
#pragma once

#include <span>
#include <vector>

#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::md {

class CellGrid {
 public:
  // `reach` is the interaction radius the grid must cover (cutoff + skin);
  // cells are at least that wide in every dimension.
  CellGrid(const Vec3& lo, const Vec3& hi, double reach);

  // Rebuilds the cell contents from scratch (classic head/next linked
  // lists, flattened into a CSR-style occupancy table for fast scanning).
  void bin(std::span<const Vec3> positions);

  [[nodiscard]] int n_cells() const { return nx_ * ny_ * nz_; }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }

  [[nodiscard]] int cell_of(const Vec3& p) const;

  // Occupants of cell c (valid until the next bin()).
  [[nodiscard]] const int* cell_begin(int c) const {
    return occupants_.data() + start_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const int* cell_end(int c) const {
    return occupants_.data() + start_[static_cast<std::size_t>(c) + 1];
  }
  [[nodiscard]] int cell_count(int c) const {
    return start_[static_cast<std::size_t>(c) + 1] - start_[static_cast<std::size_t>(c)];
  }

  // The (up to 27) cell ids adjacent to cell c, including c itself, written
  // into `out`; returns how many.
  int neighbor_cells(int c, int out[27]) const;

  // Total occupant entries (== number of binned atoms).
  [[nodiscard]] std::size_t n_binned() const { return occupants_.size(); }

 private:
  [[nodiscard]] int clamp_axis(double v, double lo, double inv_w, int n) const;

  Vec3 lo_, hi_;
  double inv_wx_, inv_wy_, inv_wz_;
  int nx_, ny_, nz_;
  std::vector<int> start_;      // n_cells + 1
  std::vector<int> occupants_;  // atom ids grouped by cell
  std::vector<int> scratch_;
};

}  // namespace mwx::md
