// Linked-cell grid — the O(N) neighbor-finding substrate (Hockney &
// Eastwood), Section II-B: "the linked-cell approach superimposes a
// three-dimensional grid over the simulation space ... sized such that the
// neighbors of any given atom must fall within the grid box containing the
// atom or in one of the grid boxes adjacent to that box."
#pragma once

#include <span>
#include <vector>

#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::parallel {
class FixedThreadPool;
}  // namespace mwx::parallel

namespace mwx::md {

class CellGrid {
 public:
  // `reach` is the interaction radius the grid must cover (cutoff + skin);
  // cells are at least that wide in every dimension.
  CellGrid(const Vec3& lo, const Vec3& hi, double reach);

  // Rebuilds the cell contents from scratch (classic head/next linked
  // lists, flattened into a CSR-style occupancy table for fast scanning).
  // This serial counting sort is the reference the parallel overload must
  // reproduce byte-for-byte.
  void bin(std::span<const Vec3> positions);

  // Deterministic parallel rebuild: per-chunk per-cell count arrays over
  // index-contiguous atom chunks, a block-wise prefix merge over the cells,
  // then a stable in-order scatter.  Within every cell the occupants are
  // chunk 0's atoms (in index order), then chunk 1's, ... — which IS
  // ascending atom index, i.e. exactly the serial counting sort's order — so
  // start_/occupants_ are byte-identical to bin(positions) for ANY pool
  // width or chunk count.  Falls back to the serial path when `pool` is null
  // or the fan-out degenerates.
  void bin(std::span<const Vec3> positions, parallel::FixedThreadPool* pool, int n_chunks);

  [[nodiscard]] int n_cells() const { return nx_ * ny_ * nz_; }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }

  [[nodiscard]] int cell_of(const Vec3& p) const;

  // Occupants of cell c (valid until the next bin()).
  [[nodiscard]] const int* cell_begin(int c) const {
    return occupants_.data() + start_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const int* cell_end(int c) const {
    return occupants_.data() + start_[static_cast<std::size_t>(c) + 1];
  }
  [[nodiscard]] int cell_count(int c) const {
    return start_[static_cast<std::size_t>(c) + 1] - start_[static_cast<std::size_t>(c)];
  }

  // The (up to 27) cell ids adjacent to cell c, including c itself, written
  // into `out`; returns how many.
  int neighbor_cells(int c, int out[27]) const;

  // Total occupant entries (== number of binned atoms).
  [[nodiscard]] std::size_t n_binned() const { return occupants_.size(); }

 private:
  [[nodiscard]] int clamp_axis(double v, double lo, double inv_w, int n) const;

  Vec3 lo_, hi_;
  double inv_wx_, inv_wy_, inv_wz_;
  int nx_, ny_, nz_;
  std::vector<int> start_;      // n_cells + 1
  std::vector<int> occupants_;  // atom ids grouped by cell
  std::vector<int> scratch_;    // per-atom cell id of the current bin pass
  std::vector<int> cursor_;     // serial scatter cursors (reused across rebuilds)
  std::vector<int> chunk_counts_;  // parallel bin: per-(chunk, cell) counts/bases
  std::vector<int> block_base_;    // parallel bin: per-cell-block scan bases
};

}  // namespace mwx::md
