#include "md/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "md/morton.hpp"
#include "parallel/latch.hpp"

namespace mwx::md {

Engine::Engine(MolecularSystem sys, EngineConfig config)
    : sys_(std::move(sys)),
      config_(config),
      n_slots_(compute_slots(config)),
      neighbor_capacity_(compute_neighbor_capacity(sys_, config)),
      heap_(config.heap, std::max(1, sys_.n_atoms()), neighbor_capacity_),
      grid_(sys_.box().lo, sys_.box().hi, config.cutoff + config.skin),
      nlist_(std::max(1, sys_.n_atoms()), config.cutoff, config.skin),
      lj_(sys_, config.cutoff),
      buffers_(n_slots_, std::max(1, sys_.n_atoms())),
      tracker_(n_slots_) {
  require(config_.n_threads > 0, "engine needs at least one worker");
  require(config_.chunks_per_thread > 0, "chunks_per_thread must be positive");
  require(sys_.n_atoms() > 0, "system has no atoms");
  require(config_.dt_fs > 0.0, "timestep must be positive");
  // The temporary Vec3 convenience class of Section V-B, plus the long-lived
  // types so live-byte fractions are meaningful.
  temp_type_ = tracker_.register_type("Vec3 (temporary)", config_.heap.vec3_object_bytes,
                                      /*transient_type=*/true);
  const int atom_type = tracker_.register_type(
      "Atom", config_.heap.atom_object_bytes + 4 * config_.heap.vec3_object_bytes,
      /*transient_type=*/false);
  for (int i = 0; i < sys_.n_atoms(); ++i) tracker_.on_alloc(atom_type, 0);
  require(config_.reorder_interval >= 0, "reorder_interval must be non-negative");
  // Other long-lived structures, so live-heap fractions are meaningful.  The
  // neighbor table is accounted at the modelled Java fixed width; the CSR
  // store the engine actually uses is a fraction of this.
  const int nbr_type = tracker_.register_type(
      "neighbor lists (int[])",
      static_cast<std::size_t>(sys_.n_atoms()) *
          static_cast<std::size_t>(neighbor_capacity_) * 4,
      /*transient_type=*/false);
  tracker_.on_alloc(nbr_type, 0);
  const int priv_type = tracker_.register_type(
      "privatized force arrays",
      static_cast<std::size_t>(n_slots_) *
          static_cast<std::size_t>(sys_.n_atoms()) * 24,
      /*transient_type=*/false);
  tracker_.on_alloc(priv_type, 0);
}

int Engine::compute_neighbor_capacity(const MolecularSystem& sys, const EngineConfig& config) {
  if (config.neighbor_capacity > 0) return config.neighbor_capacity;
  // Expected half-list row count: atoms inside the list-radius sphere at the
  // system's mean density, halved because a pair is stored on its lower
  // index.  Doubled for local density fluctuations (surfaces, clusters), then
  // clamped — the floor keeps tiny/sparse systems from degenerate widths, the
  // ceiling bounds the modelled footprint for pathological densities.
  const Vec3 ext = sys.box().extent();
  const double volume = ext.x * ext.y * ext.z;
  const double density = volume > 0.0 ? static_cast<double>(sys.n_atoms()) / volume : 0.0;
  const double reach = config.cutoff + config.skin;
  const double expected = 4.0 / 3.0 * 3.14159265358979323846 * reach * reach * reach *
                          density * 0.5;
  const int cap = static_cast<int>(std::ceil(expected * 2.0));
  return std::clamp(cap, 64, 2048);
}

int Engine::compute_slots(const EngineConfig& config) {
  // Static assignment keeps the paper's exact one-buffer-per-thread design.
  // The dynamic disciplines give every chunk its own accumulation slot so
  // chunks move between workers independently; the heap model reserves 64
  // private force regions, which caps the count.
  if (config.assignment == sim::Assignment::Static) return config.n_threads;
  return std::min(64, config.n_threads * config.chunks_per_thread);
}

void Engine::chunk_range(int n, int n_chunks, std::vector<std::pair<int, int>>& out) {
  out.clear();
  if (n <= 0 || n_chunks <= 0) return;
  for (int c = 0; c < n_chunks; ++c) {
    const int b = static_cast<int>((static_cast<long long>(n) * c) / n_chunks);
    const int e = static_cast<int>((static_cast<long long>(n) * (c + 1)) / n_chunks);
    if (e > b) out.emplace_back(b, e);
  }
}

std::vector<Engine::TaskDesc> Engine::atom_phase_tasks(Kind kind) const {
  std::vector<TaskDesc> tasks;
  std::vector<std::pair<int, int>> ranges;
  chunk_range(sys_.n_atoms(), config_.n_threads * config_.chunks_per_thread, ranges);
  tasks.reserve(ranges.size());
  int idx = 0;
  for (auto [b, e] : ranges) tasks.push_back({kind, b, e, idx++ % n_slots_});
  return tasks;
}

std::vector<Engine::TaskDesc> Engine::neighbor_count_tasks() const {
  // Mirrors the FusedLj decomposition so the count pass sees the same
  // per-chunk balance as the fill it precedes.
  std::vector<TaskDesc> tasks;
  const int n_chunks = config_.n_threads * config_.chunks_per_thread;
  if (config_.assignment == sim::Assignment::WorkStealing) {
    std::vector<std::pair<int, int>> ranges;
    chunk_range(sys_.n_atoms(), n_chunks, ranges);
    int c = 0;
    for (auto [b, e] : ranges)
      tasks.push_back({Kind::NeighborCount, b, e, c++ % n_slots_, 1});
  } else {
    const int k = std::min(n_chunks, sys_.n_atoms());
    for (int c = 0; c < k; ++c) {
      tasks.push_back({Kind::NeighborCount, c, sys_.n_atoms(), c % n_slots_, k});
    }
  }
  return tasks;
}

std::vector<Engine::TaskDesc> Engine::forces_lj_tasks() const {
  // LJ and Coulomb domains have index-correlated (triangular) per-item cost
  // because the lower-indexed atom of a pair does the work.  Under the
  // static disciplines a cyclic decomposition gives each chunk the same
  // expected load.  Under work stealing the scheduler rebalances the
  // triangle dynamically, so we use contiguous chunks instead: their scatter
  // footprint is block-local, which is what makes the sparse reduction skip
  // most (slot, block) pairs.
  std::vector<TaskDesc> tasks;
  const int n_chunks = config_.n_threads * config_.chunks_per_thread;
  if (sys_.n_atoms() > 0) {
    if (config_.assignment == sim::Assignment::WorkStealing) {
      std::vector<std::pair<int, int>> ranges;
      chunk_range(sys_.n_atoms(), n_chunks, ranges);
      int c = 0;
      for (auto [b, e] : ranges)
        tasks.push_back({Kind::FusedLj, b, e, c++ % n_slots_, 1});
    } else {
      const int k = std::min(n_chunks, sys_.n_atoms());
      for (int c = 0; c < k; ++c) {
        tasks.push_back({Kind::FusedLj, c, sys_.n_atoms(), c % n_slots_, k});
      }
    }
  }
  return tasks;
}

std::vector<Engine::TaskDesc> Engine::forces_aux_tasks() const {
  // Everything in phase 4 except LJ: Coulomb chunks over the charged list
  // and bonded chunks over each bond list.  Owners round-robin within each
  // kind so every thread gets a slice of every force type (the paper's
  // per-phase 1/N split).  None of these touch the neighbor list, which is
  // what lets the overlapped schedule run them during the CSR count pass.
  std::vector<TaskDesc> tasks;
  std::vector<std::pair<int, int>> ranges;
  const int n_chunks = config_.n_threads * config_.chunks_per_thread;

  if (sys_.n_charged() > 0) {
    if (config_.assignment == sim::Assignment::WorkStealing) {
      chunk_range(sys_.n_charged(), n_chunks, ranges);
      int c = 0;
      for (auto [b, e] : ranges)
        tasks.push_back({Kind::Coulomb, b, e, c++ % n_slots_, 1});
    } else {
      const int k = std::min(n_chunks, sys_.n_charged());
      for (int c = 0; c < k; ++c) {
        tasks.push_back({Kind::Coulomb, c, sys_.n_charged(), c % n_slots_, k});
      }
    }
  }

  chunk_range(static_cast<int>(sys_.radial_bonds().size()), n_chunks, ranges);
  int idx = 0;
  for (auto [b, e] : ranges)
    tasks.push_back({Kind::RadialBonds, b, e, idx++ % n_slots_});

  chunk_range(static_cast<int>(sys_.angular_bonds().size()), n_chunks, ranges);
  idx = 0;
  for (auto [b, e] : ranges)
    tasks.push_back({Kind::AngularBonds, b, e, idx++ % n_slots_});

  chunk_range(static_cast<int>(sys_.torsion_bonds().size()), n_chunks, ranges);
  idx = 0;
  for (auto [b, e] : ranges)
    tasks.push_back({Kind::TorsionBonds, b, e, idx++ % n_slots_});
  return tasks;
}

std::vector<Engine::TaskDesc> Engine::forces_phase_tasks() const {
  // Canonical phase-4 order: aux kinds first, LJ last.  Per accumulation
  // slot this is the exact serial-chain order the overlapped rebuild
  // schedule reproduces (aux in kPhaseOverlap, LJ in kPhaseForces), so both
  // schedules accumulate every buffer in the same floating-point order.
  std::vector<TaskDesc> tasks = forces_aux_tasks();
  const std::vector<TaskDesc> lj = forces_lj_tasks();
  tasks.insert(tasks.end(), lj.begin(), lj.end());
  return tasks;
}

template <typename Mem>
void Engine::run_task(const TaskDesc& t, int buffer, Mem& mem) {
  switch (t.kind) {
    case Kind::Predictor:
      predictor_chunk(sys_, config_.dt_fs, config_.costs, t.begin, t.end, mem);
      break;
    case Kind::Check:
      if (check_chunk(sys_, nlist_, config_.costs, t.begin, t.end, mem)) {
        rebuild_flag_.store(true, std::memory_order_relaxed);
      }
      break;
    case Kind::NeighborCount:
      neighbor_count_chunk(sys_, grid_, nlist_, config_.costs, t.begin, t.end, t.stride, mem);
      break;
    case Kind::FusedLj:
      fused_neighbors_lj_chunk(sys_, grid_, nlist_, lj_, config_.costs, rebuild_now_,
                               buffers_, buffer, t.begin, t.end, t.stride, mem,
                               config_.tiled_lj);
      break;
    case Kind::Coulomb:
      coulomb_chunk(sys_, config_.costs, buffers_, buffer, t.begin, t.end, t.stride, mem,
                    config_.tiled_coulomb, &packed_charges_);
      break;
    case Kind::RadialBonds:
      radial_bond_chunk(sys_, config_.costs, buffers_, buffer, t.begin, t.end, mem);
      break;
    case Kind::AngularBonds:
      angular_bond_chunk(sys_, config_.costs, buffers_, buffer, t.begin, t.end, mem);
      break;
    case Kind::TorsionBonds:
      torsion_bond_chunk(sys_, config_.costs, buffers_, buffer, t.begin, t.end, mem);
      break;
    case Kind::Reduce:
      reduce_chunk(sys_, config_.costs, buffers_, t.begin, t.end, mem,
                   config_.sparse_reduction);
      break;
    case Kind::Corrector:
      corrector_chunk(sys_, config_.dt_fs, config_.costs, buffers_, buffer, t.begin, t.end,
                      mem);
      break;
  }
}

void Engine::exec_phase(parallel::FixedThreadPool* pool, sim::Machine* machine, int tag,
                        const std::vector<TaskDesc>& tasks) {
  if (tasks.empty()) return;

  if (machine != nullptr) {
    // Traced backend: execute the physics inline while recording each task's
    // access stream, then let the simulated machine schedule and time it.
    phase_work_.clear();
    phase_work_.tag = tag;
    phase_work_.assignment = config_.assignment;
    TraceMem mem(config_.costs, heap_, phase_work_, config_.temporaries, &tracker_,
                 temp_type_, 0);
    for (const TaskDesc& t : tasks) {
      mem.open_task(t.owner, config_.monitor_updates_per_task);
      run_task(t, t.owner, mem);
      mem.close_task();
    }
    machine->run_phase(phase_work_, config_.instr_calls_per_task);
    return;
  }

  if (pool == nullptr) {
    // Inline single-threaded reference.
    NullMem mem;
    for (const TaskDesc& t : tasks) run_task(t, t.owner, mem);
    return;
  }

  const double phase_trace0 = native_trace_ != nullptr ? native_trace_->now() : 0.0;

  // Native threaded backend.  Tasks sharing an accumulation slot form a
  // chain that executes serially in submission order; only that slot's
  // privatized buffers are written.  Whichever worker runs the chain — and
  // under WorkStealing, or on a pool shared with other engines, that changes
  // run to run — each buffer sees the same floating-point addition order, so
  // every queue discipline and every pool size reproduces the inline result
  // bit for bit.  Phase completion is tracked by a JobHandle, not the pool's
  // global counters: other tenants' traffic can neither starve this barrier
  // nor be waited on by it, and a chain that throws surfaces here (with its
  // message) instead of hanging the phase.
  std::vector<std::vector<TaskDesc>> chains(static_cast<std::size_t>(n_slots_));
  for (const TaskDesc& t : tasks) {
    chains[static_cast<std::size_t>(t.owner)].push_back(t);
  }
  int n_chains = 0;
  for (const auto& chain : chains) n_chains += chain.empty() ? 0 : 1;
  parallel::JobHandle phase_job;
  const int pool_workers = pool->n_threads();
  // Single mode has one queue, so a placement hint is meaningless; under
  // SharedQueue assignment the engine models exactly that executor.  All
  // other combinations seed chain i at worker i % pool size — PerThread runs
  // it there (the static split), WorkStealing treats it as a preference that
  // idle peers may override.
  const bool place = pool->config().queue_mode != parallel::QueueMode::Single &&
                     config_.assignment != sim::Assignment::SharedQueue;
  for (int slot = 0; slot < n_slots_; ++slot) {
    const auto& chain = chains[static_cast<std::size_t>(slot)];
    if (chain.empty()) continue;
    auto body = [this, chain, slot, tag] {
      const int worker = std::max(0, parallel::FixedThreadPool::current_worker());
      // Phase bracket: one counter-read pair per chain (a chain runs
      // unbroken on one worker), charged to (worker, phase tag).
      if (native_pmu_ != nullptr) native_pmu_->task_begin();
      NullMem mem;
      for (const TaskDesc& t : chain) {
        const double t0 = native_clock_.elapsed_seconds();
        const double trace0 = native_trace_ != nullptr ? native_trace_->now() : 0.0;
        run_task(t, slot, mem);
        const double t1 = native_clock_.elapsed_seconds();
        if (native_trace_ != nullptr) {
          // Same per-task repetition knob as the JaMON path below, so the
          // observer-effect self-audit compares the two layers at equal
          // event rates; an untouched config records one event per task.
          const double trace1 = native_trace_->now();
          for (int m = 0; m < std::max(1, config_.monitor_updates_per_task); ++m) {
            native_trace_->record(worker, perf::TraceKind::Task, tag, trace0, trace1, slot);
          }
        }
        if (native_log_ != nullptr) {
          native_log_->record(worker, tag, t0, t1, parallel::current_cpu());
        }
        if (native_monitor_ != nullptr) {
          for (int m = 0; m < std::max(1, config_.monitor_updates_per_task); ++m) {
            native_monitor_->add("phase." + std::to_string(tag), t1 - t0);
          }
        }
      }
      if (native_pmu_ != nullptr) {
        native_pmu_->task_end(worker, tag, static_cast<double>(chain.size()));
      }
    };
    if (place) {
      pool->submit_to(slot % pool_workers, std::move(body), phase_job);
    } else {
      pool->submit(std::move(body), phase_job);
    }
  }
  phase_job.wait();
  require(phase_job.ok(), "engine phase " + std::to_string(tag) +
                              " task failed: " + phase_job.error());
  if (native_trace_ != nullptr) {
    // Phase bracket on the master's lane: dispatch to barrier release.
    native_trace_->record(native_trace_->external_lane(), perf::TraceKind::Phase, tag,
                          phase_trace0, native_trace_->now(), n_chains);
  }
}

void Engine::charge_rebuild_phase(sim::Machine* machine, int tag, double per_item,
                                  long long n_items, double per_item2,
                                  long long n_items2) {
  if (machine == nullptr) return;
  // One compute-only task per modelled worker, each carrying its contiguous
  // 1/N share of the item count(s) — mirroring the native fan-out, where the
  // engine decomposes the rebuild into n_threads chunks.  Compute-only tasks
  // (no accesses) are legal phase citizens: the machine times them and the
  // per-(phase, core) counter domains still conserve.
  const int nt = config_.n_threads;
  auto share = [nt](long long m, int w) {
    return static_cast<double>(m * (w + 1) / nt - m * w / nt);
  };
  phase_work_.clear();
  phase_work_.tag = tag;
  phase_work_.assignment = config_.assignment;
  phase_work_.tasks.reserve(static_cast<std::size_t>(nt));
  for (int w = 0; w < nt; ++w) {
    sim::SimTask t;
    t.owner = w;
    t.compute_cycles = per_item * share(n_items, w) + per_item2 * share(n_items2, w);
    phase_work_.tasks.push_back(t);
  }
  machine->run_phase(phase_work_, 0);
  // The serial residue every two-level scan keeps: the O(chunks) anchor
  // merge on the master.
  machine->run_serial(config_.costs.rebuild_merge_residue * nt);
}

void Engine::master_rebuild_prologue(parallel::FixedThreadPool* pool,
                                     sim::Machine* machine) {
  // parallel_rebuild routes the housekeeping passes through the worker pool;
  // every parallel overload is bit/byte-identical to its serial reference
  // (see cell_grid/morton/neighbor_list), so the trajectory cannot depend on
  // this switch.  The traced backend has no pool — it executes the serial
  // path — but charges the machine as if the fan-out ran, mirroring how the
  // traced force phases execute inline yet are timed as parallel work.
  parallel::FixedThreadPool* rebuild_pool = config_.parallel_rebuild ? pool : nullptr;
  const int chunks = config_.n_threads;
  const long long n = sys_.n_atoms();

  // Morton pass: physically permute the atom arrays into Z-order before the
  // grid/list rebuild, so the fresh cells, reference snapshot and CSR rows
  // are all built against the new storage order.  This point in the step is
  // the one place a permutation is safe: the private force buffers are all
  // zero (the previous reduction drained them) and nothing downstream holds
  // raw indices across the rebuild.
  if (config_.reorder_interval > 0 &&
      nlist_.rebuild_count() % config_.reorder_interval == 0) {
    const std::vector<int> order =
        rebuild_pool != nullptr
            ? morton_order(sys_.positions(), sys_.box().lo, sys_.box().hi,
                           config_.cutoff + config_.skin, rebuild_pool, chunks)
            : morton_order(sys_.positions(), sys_.box().lo, sys_.box().hi,
                           config_.cutoff + config_.skin);
    sys_.permute(order);
    heap_.permute_objects(order);
    if (machine != nullptr) {
      if (config_.parallel_rebuild) {
        // Key build + radix passes fan out; the state permutation itself
        // stays a serial master gather (it is in the native path too).
        charge_rebuild_phase(machine, kPhaseMortonSort, config_.costs.morton_sort_atom, n);
        machine->run_serial(config_.costs.reorder_atom * sys_.n_atoms());
      } else {
        machine->run_serial(config_.costs.reorder_atom * sys_.n_atoms());
      }
    }
  }

  // Repopulate the linked cells (parallel counting sort under
  // parallel_rebuild, the serial reference otherwise), snapshot reference
  // positions, and (for the data-packing experiment) request an object
  // reorder in cell-traversal order.
  grid_.bin(sys_.positions(), rebuild_pool, chunks);
  nlist_.begin_rebuild(sys_.positions());
  if (config_.reorder_on_rebuild) {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(sys_.n_atoms()));
    for (int c = 0; c < grid_.n_cells(); ++c) {
      for (const int* it = grid_.cell_begin(c); it != grid_.cell_end(c); ++it) {
        order.push_back(*it);
      }
    }
    heap_.reorder(order);
  }
  if (machine != nullptr) {
    if (config_.parallel_rebuild) {
      charge_rebuild_phase(machine, kPhaseBin,
                           config_.costs.bin_count_atom + config_.costs.bin_scatter_atom,
                           n, config_.costs.bin_merge_cell, grid_.n_cells());
    } else {
      machine->run_serial(config_.costs.bin_atom * sys_.n_atoms());
    }
  }
}

void Engine::pack_charges() {
  if (!config_.tiled_coulomb || sys_.n_charged() == 0) return;
  // Serial master work: refresh the charged-atom SoA snapshot the lane loop
  // streams.  Bits are copied verbatim, so the vector path subtracts the
  // same values the scalar path reads through the index list.  Runs after
  // the predictor (positions moved) and after any rebuild reorder (indices
  // permuted), before the force dispatch.
  packed_charges_.pack(sys_);
}

void Engine::step(parallel::FixedThreadPool* pool, sim::Machine* machine) {
  const double sim_step_begin = machine != nullptr ? machine->now_seconds() : 0.0;

  // Phase 1: predictor.
  exec_phase(pool, machine, kPhasePredictor, atom_phase_tasks(Kind::Predictor));

  // Phase 2: neighbor-list validity check.
  rebuild_flag_.store(!nlist_.ever_built(), std::memory_order_relaxed);
  exec_phase(pool, machine, kPhaseCheck, atom_phase_tasks(Kind::Check));
  rebuild_now_ = rebuild_flag_.load(std::memory_order_relaxed);

  // Phases 3+4 (fused): optional rebuild + all force computations.  The CSR
  // rebuild inserts a parallel count pass and a serial prefix sum between
  // the master prologue and the fill-and-compute phase.  With overlap_rebuild
  // the count pass shares one dispatch with the aux force kinds (which never
  // read the neighbor list) and only LJ waits behind the prefix sum; the
  // fallback keeps count and forces as separate phases.  Either way each
  // accumulation slot's serial chain sees aux-then-LJ, so the schedules are
  // bit-identical.
  if (rebuild_now_) {
    master_rebuild_prologue(pool, machine);
    pack_charges();
    // CSR prefix sum: the two-level parallel block scan under
    // parallel_rebuild (exact integer arithmetic — identical offsets), the
    // serial reference scan otherwise.  This is the serial barrier the
    // overlapped schedule used to leave between the count pass and the LJ
    // fill; parallelizing it removes the last O(n) master-side stretch.
    auto finalize = [&] {
      nlist_.finalize_offsets(config_.parallel_rebuild ? pool : nullptr,
                              config_.n_threads);
      if (machine != nullptr) {
        if (config_.parallel_rebuild) {
          charge_rebuild_phase(machine, kPhaseNbrPrefix,
                               config_.costs.nbr_prefix_atom, sys_.n_atoms());
        } else {
          machine->run_serial(config_.costs.nbr_prefix_atom * sys_.n_atoms());
        }
      }
    };
    if (config_.overlap_rebuild) {
      std::vector<TaskDesc> fused = neighbor_count_tasks();
      const std::vector<TaskDesc> aux = forces_aux_tasks();
      fused.insert(fused.end(), aux.begin(), aux.end());
      exec_phase(pool, machine, kPhaseOverlap, fused);
      finalize();
      exec_phase(pool, machine, kPhaseForces, forces_lj_tasks());
    } else {
      exec_phase(pool, machine, kPhaseNeighborCount, neighbor_count_tasks());
      finalize();
      exec_phase(pool, machine, kPhaseForces, forces_phase_tasks());
    }
  } else {
    pack_charges();
    exec_phase(pool, machine, kPhaseForces, forces_phase_tasks());
  }
  if (rebuild_now_) nlist_.end_rebuild();

  // Phase 5: reduction of privatized force arrays.  The sweep zeroes every
  // touched entry, so dropping the touch marks afterwards keeps marks and
  // data consistent for the next step's force phase.
  exec_phase(pool, machine, kPhaseReduce, atom_phase_tasks(Kind::Reduce));
  buffers_.clear_touched();
  last_pe_ = buffers_.drain_pe();

  // Phase 6: corrector.
  exec_phase(pool, machine, kPhaseCorrector, atom_phase_tasks(Kind::Corrector));
  last_ke_ = buffers_.drain_ke();

  // Garbage collections triggered by this step's temporary churn appear as
  // serial stop-the-world pauses on the simulated machine.
  if (machine != nullptr) {
    const long long gcs = heap_.take_new_gcs();
    if (gcs > 0) {
      machine->run_serial(static_cast<double>(gcs) * config_.heap.gc_pause_seconds *
                          machine->config().spec.ghz * 1e9);
      tracker_.collect_garbage();
    }
  }
  if (machine != nullptr && machine->config().trace != nullptr) {
    perf::TraceRing* trace = machine->config().trace;
    trace->record(trace->external_lane(), perf::TraceKind::SimStep,
                  static_cast<int>(steps_done_), sim_step_begin, machine->now_seconds());
  }
  ++steps_done_;
}

void Engine::place_first_touch(parallel::FixedThreadPool& pool) {
  // Re-home the hot arrays by first touch: allocate fresh (untouched) pages
  // and have each worker write the block it will own during the run, so a
  // first-touch kernel homes those pages on the worker's node.  Values are
  // copied bit-for-bit — the trajectory cannot change.  Placement is
  // best-effort: under work stealing a task (and later the chunks
  // themselves) may migrate, which only costs locality, never correctness.
  const int n = sys_.n_atoms();
  const int nt = config_.n_threads;
  // On a shared pool the engine's logical workers fold onto the pool's
  // actual workers; placement quality degrades gracefully, correctness
  // (a bit-for-bit copy) never depends on the mapping.
  const int pw = pool.n_threads();

  // Per-atom state: worker w rewrites the same contiguous 1/N block the
  // static atom-phase split assigns it.
  auto repack = [&](PageVec<Vec3>& v) {
    PageVec<Vec3> fresh;
    fresh.resize_uninitialized(v.size());
    parallel::JobHandle job;
    for (int w = 0; w < nt; ++w) {
      pool.submit_to(w % pw, [&, w] {
        const int b = static_cast<int>((static_cast<long long>(n) * w) / nt);
        const int e = static_cast<int>((static_cast<long long>(n) * (w + 1)) / nt);
        if (e > b) {
          std::memcpy(fresh.data() + b, v.data() + b,
                      static_cast<std::size_t>(e - b) * sizeof(Vec3));
        }
      }, job);
    }
    job.wait();
    v = std::move(fresh);
  };
  repack(sys_.positions());
  repack(sys_.velocities());
  repack(sys_.accelerations());

  // Private force buffers: each slot's full-length array is rewritten (to
  // its required all-+0.0 state) by the worker that seeds that slot's task
  // chains.  Only valid between steps, when the buffers are drained.
  std::vector<PageVec<Vec3>> slots(static_cast<std::size_t>(n_slots_));
  parallel::JobHandle slot_job;
  for (int slot = 0; slot < n_slots_; ++slot) {
    slots[static_cast<std::size_t>(slot)].resize_uninitialized(static_cast<std::size_t>(n));
    pool.submit_to(slot % pw, [&slots, slot, n] {
      std::memset(slots[static_cast<std::size_t>(slot)].data(), 0,
                  static_cast<std::size_t>(n) * sizeof(Vec3));
    }, slot_job);
  }
  slot_job.wait();
  for (int slot = 0; slot < n_slots_; ++slot) {
    buffers_.slot_array(slot) = std::move(slots[static_cast<std::size_t>(slot)]);
  }
}

void Engine::run_native(parallel::FixedThreadPool& pool, int n_steps) {
  // Any pool size works (the decomposition and the energy bits are fixed by
  // config.n_threads, not by the executor) — but per-engine instrumentation
  // records into lane == executing *pool* worker, so attached rings and
  // accumulators must cover the pool actually used, which the attach-time
  // check against config.n_threads cannot see.
  require(native_trace_ == nullptr || native_trace_->n_lanes() >= pool.n_threads() + 1,
          "trace ring needs a lane per pool worker plus one external lane");
  require(native_pmu_ == nullptr || native_pmu_->n_workers() >= pool.n_threads(),
          "PMU accumulator needs a lane per pool worker");
  require(native_log_ == nullptr || native_log_->n_threads() >= pool.n_threads(),
          "event log needs a lane per pool worker");
  if (config_.first_touch && !placed_) {
    place_first_touch(pool);
    placed_ = true;
  }
  for (int s = 0; s < n_steps; ++s) step(&pool, nullptr);
}

void Engine::run_inline(int n_steps) {
  for (int s = 0; s < n_steps; ++s) step(nullptr, nullptr);
}

void Engine::run_simulated(sim::Machine& machine, int n_steps) {
  require(machine.n_threads() == config_.n_threads,
          "machine worker count must match engine's configured worker count");
  for (int s = 0; s < n_steps; ++s) step(nullptr, &machine);
}

void Engine::compute_forces_only() {
  rebuild_now_ = true;
  master_rebuild_prologue(nullptr, nullptr);
  pack_charges();
  NullMem mem;
  for (const TaskDesc& t : neighbor_count_tasks()) run_task(t, t.owner, mem);
  nlist_.finalize_offsets();
  for (const TaskDesc& t : forces_phase_tasks()) run_task(t, t.owner, mem);
  nlist_.end_rebuild();
  for (const TaskDesc& t : atom_phase_tasks(Kind::Reduce)) run_task(t, t.owner, mem);
  buffers_.clear_touched();
  last_pe_ = buffers_.drain_pe();
}

void Engine::restore_continuation(std::span<const Vec3> ref_positions) {
  require(static_cast<int>(ref_positions.size()) == sys_.n_atoms(),
          "restore_continuation needs one reference position per atom");
  require(config_.reorder_interval == 0,
          "restore_continuation requires reorder_interval == 0");
  require(!nlist_.ever_built(), "restore_continuation must run before any step");

  // Snapshot the checkpointed per-atom state, rebuild the neighbor list at
  // the reference positions (compute_forces_only clobbers accelerations and
  // last_pe_ as a side effect), then put the checkpointed state back.
  const std::size_t n = static_cast<std::size_t>(sys_.n_atoms());
  std::vector<Vec3> pos(n), acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = sys_.positions()[i];
    acc[i] = sys_.accelerations()[i];
  }
  const double pe = last_pe_;
  const double ke = last_ke_;

  for (std::size_t i = 0; i < n; ++i) sys_.positions()[i] = ref_positions[i];
  compute_forces_only();

  for (std::size_t i = 0; i < n; ++i) {
    sys_.positions()[i] = pos[i];
    sys_.accelerations()[i] = acc[i];
  }
  last_pe_ = pe;
  last_ke_ = ke;
}

}  // namespace mwx::md
