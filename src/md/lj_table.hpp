// Precomputed Lennard-Jones pair parameters (Lorentz–Berthelot mixing) with
// a cutoff-shifted potential so energy is continuous at the cutoff.
#pragma once

#include <vector>

#include "md/system.hpp"

namespace mwx::md {

class LjTable {
 public:
  LjTable(const MolecularSystem& sys, double cutoff) : n_types_(sys.types().n()),
                                                       cutoff2_(cutoff * cutoff) {
    eps_.resize(static_cast<std::size_t>(n_types_ * n_types_));
    sigma2_.resize(eps_.size());
    shift_.resize(eps_.size());
    for (int a = 0; a < n_types_; ++a) {
      for (int b = 0; b < n_types_; ++b) {
        const double eps = sys.lj_epsilon(a, b);
        const double sig = sys.lj_sigma(a, b);
        const std::size_t k = static_cast<std::size_t>(a * n_types_ + b);
        eps_[k] = eps;
        sigma2_[k] = sig * sig;
        // V(rc): subtracted from every pair energy.
        const double sr2 = sig * sig / cutoff2_;
        const double sr6 = sr2 * sr2 * sr2;
        shift_[k] = 4.0 * eps * (sr6 * sr6 - sr6);
      }
    }
  }

  [[nodiscard]] double cutoff2() const { return cutoff2_; }
  [[nodiscard]] double epsilon(int ta, int tb) const {
    return eps_[static_cast<std::size_t>(ta * n_types_ + tb)];
  }
  [[nodiscard]] double sigma2(int ta, int tb) const {
    return sigma2_[static_cast<std::size_t>(ta * n_types_ + tb)];
  }
  [[nodiscard]] double shift(int ta, int tb) const {
    return shift_[static_cast<std::size_t>(ta * n_types_ + tb)];
  }

 private:
  int n_types_;
  double cutoff2_;
  std::vector<double> eps_, sigma2_, shift_;
};

}  // namespace mwx::md
