// Memory-model policies for the templated kernels.
//
// Every kernel is a template over a `Mem` policy.  NullMem compiles to
// nothing — the native threaded engine runs pure physics.  TraceMem records
// the address stream a given heap layout would generate, charges arithmetic
// costs from the CostTable, and models the Java temporary-object churn; its
// output feeds the machine simulator.  This is how one set of kernels serves
// both execution backends with bit-identical physics.
#pragma once

#include <cstdint>

#include "md/cost_table.hpp"
#include "md/layout.hpp"
#include "perf/alloc_tracker.hpp"
#include "sim/access.hpp"

namespace mwx::md {

enum class TemporariesMode {
  JavaStyle,  // pair/atom operations allocate short-lived Vec3 objects
  InPlace,    // arithmetic in locals; no heap churn (the tuned variant)
};

struct NullMem {
  static constexpr bool tracing = false;
  void read_pos(int) {}
  void read_vel(int) {}
  void read_acc(int) {}
  void read_force(int) {}
  void read_meta(int) {}
  void write_pos(int) {}
  void write_vel(int) {}
  void write_acc(int) {}
  void write_force(int) {}
  void read_private_force(int, int) {}
  void write_private_force(int, int) {}
  void read_neighbor_entry(std::uint64_t) {}
  void write_neighbor_entry(std::uint64_t) {}
  void read_cell_entry(std::uint64_t) {}
  void compute(double) {}
  void temps(int) {}
};

class TraceMem {
 public:
  static constexpr bool tracing = true;

  TraceMem(const CostTable& costs, HeapModel& heap, sim::PhaseWork& phase,
           TemporariesMode temporaries, perf::AllocationTracker* tracker = nullptr,
           int tracker_type = -1, int worker = 0)
      : costs_(&costs),
        heap_(&heap),
        phase_(&phase),
        temporaries_(temporaries),
        tracker_(tracker),
        tracker_type_(tracker_type),
        worker_(worker) {}

  // --- Task bracketing -------------------------------------------------------
  // Opens a SimTask whose accesses accumulate until close_task().
  void open_task(int owner, int monitor_updates = 0) {
    task_ = sim::SimTask{};
    task_.owner = owner;
    task_.monitor_updates = monitor_updates;
    task_.access_begin = static_cast<std::uint32_t>(phase_->accesses.size());
    compute_ = 0.0;
    worker_ = owner;
  }
  void close_task() {
    task_.access_end = static_cast<std::uint32_t>(phase_->accesses.size());
    task_.compute_cycles = compute_;
    phase_->tasks.push_back(task_);
  }

  // --- Field traffic ----------------------------------------------------------
  void read_pos(int i) { touch(heap_->pos_addr(i), false); }
  void read_vel(int i) { touch(heap_->vel_addr(i), false); }
  void read_acc(int i) { touch(heap_->acc_addr(i), false); }
  void read_force(int i) { touch(heap_->force_addr(i), false); }
  void read_meta(int i) { touch(heap_->meta_addr(i), false); }
  void write_pos(int i) { touch(heap_->pos_addr(i), true); }
  void write_vel(int i) { touch(heap_->vel_addr(i), true); }
  void write_acc(int i) { touch(heap_->acc_addr(i), true); }
  void write_force(int i) { touch(heap_->force_addr(i), true); }
  void read_private_force(int w, int i) { touch(heap_->private_force_addr(w, i), false); }
  void write_private_force(int w, int i) { touch(heap_->private_force_addr(w, i), true); }
  void read_neighbor_entry(std::uint64_t k) { touch(heap_->neighbor_entry_addr(k), false); }
  void write_neighbor_entry(std::uint64_t k) { touch(heap_->neighbor_entry_addr(k), true); }
  void read_cell_entry(std::uint64_t k) { touch(heap_->cell_entry_addr(k), false); }

  void compute(double cycles) { compute_ += cycles; }

  // `n` temporaries at this program point (no-op for the in-place variant).
  void temps(int n) {
    if (temporaries_ != TemporariesMode::JavaStyle) return;
    for (int k = 0; k < n; ++k) {
      touch(heap_->alloc_temp(), true);
      compute_ += costs_->temp_alloc_cycles;
      if (tracker_ != nullptr && tracker_type_ >= 0) tracker_->on_alloc(tracker_type_, worker_);
    }
  }

 private:
  void touch(std::uint64_t addr, bool write) { phase_->accesses.push_back({addr, write}); }

  const CostTable* costs_;
  HeapModel* heap_;
  sim::PhaseWork* phase_;
  TemporariesMode temporaries_;
  perf::AllocationTracker* tracker_;
  int tracker_type_;
  int worker_;
  sim::SimTask task_{};
  double compute_ = 0.0;
};

}  // namespace mwx::md
