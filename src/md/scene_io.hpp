// Scene (de)serialization — the role of MW's scene files.
//
// Molecular Workbench loads its simulations from scene documents; this
// module provides the equivalent for the reproduction: a small line-based
// text format (".mws") that round-trips a MolecularSystem exactly —
// species, box, atoms (position/velocity/charge/mobility) and all three
// bond orders.
//
//   mws 1
//   box <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
//   type <name> <mass> <lj_epsilon_internal> <lj_sigma>
//   atom <type_id> <x> <y> <z> <vx> <vy> <vz> <charge> <movable>
//   rbond <a> <b> <k> <r0>
//   abond <a> <b> <c> <k> <theta0>
//   tbond <a> <b> <c> <d> <k> <n> <phi0>
//
// Lines beginning with '#' are comments.  Numbers are written with full
// round-trip precision.
#pragma once

#include <iosfwd>
#include <string>

#include "md/system.hpp"

namespace mwx::md {

// Writes `sys` in .mws form.
void save_scene(std::ostream& os, const MolecularSystem& sys);

// Parses an .mws stream; throws ContractError with a line number on
// malformed input.
MolecularSystem load_scene(std::istream& is);

// File-path conveniences.
void save_scene_file(const std::string& path, const MolecularSystem& sys);
MolecularSystem load_scene_file(const std::string& path);

}  // namespace mwx::md
