// Scene (de)serialization — the role of MW's scene files.
//
// Molecular Workbench loads its simulations from scene documents; this
// module provides the equivalent for the reproduction: a small line-based
// text format (".mws") that round-trips a MolecularSystem exactly —
// species, box, atoms (position/velocity/charge/mobility) and all three
// bond orders.
//
//   mws 1
//   box <lo.x> <lo.y> <lo.z> <hi.x> <hi.y> <hi.z>
//   type <name> <mass> <lj_epsilon_internal> <lj_sigma>
//   atom <type_id> <x> <y> <z> <vx> <vy> <vz> <charge> <movable>
//   rbond <a> <b> <k> <r0>
//   abond <a> <b> <c> <k> <theta0>
//   tbond <a> <b> <c> <d> <k> <n> <phi0>
//
// Lines beginning with '#' are comments.  Numbers are written with full
// round-trip precision.
//
// Version 2 ("mws 2") is the *checkpoint* form: the same records plus one
// `acc <ax> <ay> <az>` and one `nref <x> <y> <z>` line per atom (in atom
// order).  `acc` carries the velocity-Verlet acceleration state — the
// predictor of the step after a restart consumes a(t), so restarting from
// positions and velocities alone is never bit-exact — and `nref` carries the
// neighbor list's reference-position snapshot, from which a restarted engine
// rebuilds the *exact* list (contents and row order) the checkpointed engine
// was using; rebuilding from current positions instead reorders force
// accumulation and diverges the trajectory (see Engine::restore_continuation).
// A v2 scene loaded as a plain scene (no nref receiver) is a valid ordinary
// starting point: accelerations are applied, the nref snapshot is dropped.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "md/system.hpp"

namespace mwx::parallel {
class FixedThreadPool;
}  // namespace mwx::parallel

namespace mwx::md {

// Writes `sys` in .mws form (version 1 — no checkpoint records; byte-stable).
void save_scene(std::ostream& os, const MolecularSystem& sys);

// Chunked parallel serializer: the per-atom records fan out over
// index-contiguous external-ID ranges, each chunk formatting into a private
// buffer seeded with the output stream's formatting state (the same
// setprecision(17) discipline), and the buffers are concatenated in chunk
// order.  Record text depends only on the stream state and the record's own
// fields, so the output is byte-identical to the serial overload — SceneCache
// FNV hashes and checkpoint round-trips are unaffected.  Null pool falls
// back to the serial path.
void save_scene(std::ostream& os, const MolecularSystem& sys,
                parallel::FixedThreadPool* pool, int n_chunks);

// Writes `sys` as an "mws 2" checkpoint: version-1 records plus per-atom
// acc/nref lines.  `nlist_ref` is the neighbor list's reference-position
// snapshot in *internal* index order (NeighborList::reference_positions());
// like every per-atom record it is written in external-ID order, so the
// checkpoint text is byte-stable across Morton reorders.
void save_checkpoint_scene(std::ostream& os, const MolecularSystem& sys,
                           std::span<const Vec3> nlist_ref);

// Chunked parallel checkpoint serializer (atom, acc and nref records all fan
// out; byte-identical to the serial overload — see save_scene above).
void save_checkpoint_scene(std::ostream& os, const MolecularSystem& sys,
                           std::span<const Vec3> nlist_ref,
                           parallel::FixedThreadPool* pool, int n_chunks);

// Parses an .mws stream (version 1 or 2); throws ContractError with a line
// number on malformed input.  When `nlist_ref` is non-null it receives the
// v2 nref snapshot (empty for v1 / plain v2 scenes); checkpoints written by
// save_checkpoint_scene always carry exactly one acc and one nref per atom.
MolecularSystem load_scene(std::istream& is, std::vector<Vec3>* nlist_ref = nullptr);

// File-path conveniences.
void save_scene_file(const std::string& path, const MolecularSystem& sys);
MolecularSystem load_scene_file(const std::string& path);

}  // namespace mwx::md
