#include "md/ewald/fft.hpp"

#include <cmath>

namespace mwx::md::ewald {

void fft_1d(Complex* data, int n, bool inverse) {
  MWX_ASSERT(is_pow2(n));
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson–Lanczos butterflies.
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * 3.14159265358979323846 / len;
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (int i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / n;
    for (int i = 0; i < n; ++i) data[i] *= scale;
  }
}

Fft3D::Fft3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  require(is_pow2(nx) && is_pow2(ny) && is_pow2(nz),
          "FFT grid dimensions must be powers of two");
}

void Fft3D::transform(std::vector<Complex>& grid, bool inverse) const {
  require(grid.size() == size(), "grid size mismatch");
  // X lines (contiguous).
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      fft_1d(grid.data() + (static_cast<std::size_t>(z) * ny_ + y) * nx_, nx_, inverse);
    }
  }
  // Y lines (gather/scatter through a scratch buffer).
  std::vector<Complex> line(static_cast<std::size_t>(std::max(ny_, nz_)));
  for (int z = 0; z < nz_; ++z) {
    for (int x = 0; x < nx_; ++x) {
      for (int y = 0; y < ny_; ++y) {
        line[static_cast<std::size_t>(y)] =
            grid[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
      }
      fft_1d(line.data(), ny_, inverse);
      for (int y = 0; y < ny_; ++y) {
        grid[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x] =
            line[static_cast<std::size_t>(y)];
      }
    }
  }
  // Z lines.
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      for (int z = 0; z < nz_; ++z) {
        line[static_cast<std::size_t>(z)] =
            grid[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
      }
      fft_1d(line.data(), nz_, inverse);
      for (int z = 0; z < nz_; ++z) {
        grid[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x] =
            line[static_cast<std::size_t>(z)];
      }
    }
  }
}

}  // namespace mwx::md::ewald
