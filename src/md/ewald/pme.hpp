// Ewald / smooth Particle-Mesh-Ewald electrostatics for periodic systems.
//
// The paper computed Coulomb forces with a direct O(N²) double loop and
// noted: "A particle-mesh-Ewald method would have lower algorithmic
// complexity at O(N log N), but its use is a future work direction due to
// its implementation complexity."  This module implements that future work:
//
//   * DirectEwald — the classical Ewald sum (real-space erfc + explicit
//     k-space lattice sum), the accuracy reference;
//   * PmeSolver  — smooth PME (Essmann et al.): cardinal-B-spline charge
//     spreading onto a power-of-two grid, in-house 3-D FFT, reciprocal-space
//     convolution, analytic B-spline force interpolation, plus the same
//     real-space short-range part accelerated with periodic linked cells.
//
// Conventions: orthorhombic periodic box with edge lengths `box`; charges in
// elementary charges; distances in Å; energies in the engine's internal
// units (units::kCoulomb folds in Coulomb's constant).  Systems should be
// net neutral (a non-neutral system gets the uniform-background correction).
#pragma once

#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "md/ewald/fft.hpp"

namespace mwx::md::ewald {

struct EwaldResult {
  double energy = 0.0;
  std::vector<Vec3> forces;
};

struct EwaldParams {
  double alpha = 0.35;     // splitting parameter (1/Å)
  double r_cutoff = 9.0;   // real-space cutoff (Å); must be < min(box)/2
  int kmax = 8;            // DirectEwald: max |m| per dimension
  int grid = 32;           // PME: grid points per dimension (power of two)
  int spline_order = 4;    // PME: cardinal B-spline order (4 = cubic)
  // PME spread/interpolate evaluate each dimension's B-spline weights once
  // into stack arrays and run the p^3 stencil as branch-free lane loops over
  // them, instead of re-entering the recursive bspline() inside the triple
  // loop.  Same expressions, same association, same order — bit-identical to
  // the scalar path (enforced by tests); off switch exists for the
  // bench/raw_speed ablation.
  bool vectorized = true;
};

// Chooses reasonable parameters for a given box and accuracy-ish target.
EwaldParams suggest_params(const Vec3& box, int n_atoms);

// Classical Ewald summation (O(N^2) real part here for reference use,
// O(N * kmax^3) reciprocal part).
class DirectEwald {
 public:
  DirectEwald(Vec3 box, EwaldParams params);
  [[nodiscard]] EwaldResult compute(std::span<const Vec3> pos,
                                    std::span<const double> q) const;

 private:
  Vec3 box_;
  EwaldParams params_;
};

// Smooth particle-mesh Ewald, O(N log N).
class PmeSolver {
 public:
  PmeSolver(Vec3 box, EwaldParams params);

  [[nodiscard]] EwaldResult compute(std::span<const Vec3> pos,
                                    std::span<const double> q) const;

  [[nodiscard]] const EwaldParams& params() const { return params_; }

 private:
  void real_space(std::span<const Vec3> pos, std::span<const double> q,
                  EwaldResult& out) const;
  void reciprocal_space(std::span<const Vec3> pos, std::span<const double> q,
                        EwaldResult& out) const;

  Vec3 box_;
  EwaldParams params_;
  Fft3D fft_;
  std::vector<double> influence_;  // D(m): per-mode reciprocal factor
};

// Plain O(N^2) minimum-image Coulomb sum (no Ewald screening) — the direct
// method the paper used, for the complexity-crossover ablation.  Note this
// computes a *different* (non-converged) periodic energy; it is a timing
// baseline, not an accuracy reference.
EwaldResult direct_coulomb_minimum_image(const Vec3& box, std::span<const Vec3> pos,
                                         std::span<const double> q);

// Cardinal B-spline M_n(x) (support (0, n)) and its derivative; exposed for
// tests.
double bspline(int order, double x);
double bspline_derivative(int order, double x);

}  // namespace mwx::md::ewald
