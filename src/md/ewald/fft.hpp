// In-house iterative radix-2 complex FFT (1-D and 3-D), the substrate for
// the smooth particle-mesh Ewald solver — the paper's stated future-work
// direction ("a particle-mesh-Ewald method would have lower algorithmic
// complexity at O(N log N), but its use is a future work direction").
#pragma once

#include <complex>
#include <vector>

#include "common/require.hpp"

namespace mwx::md::ewald {

using Complex = std::complex<double>;

// True when n is a power of two (and > 0).
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

// Smallest power of two >= n.
constexpr int next_pow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// In-place 1-D FFT over `n` (power of two) elements with stride 1.
// `inverse` applies the conjugate transform and divides by n.
void fft_1d(Complex* data, int n, bool inverse);

// 3-D FFT over an nx*ny*nz grid stored x-fastest (index = (z*ny + y)*nx + x).
class Fft3D {
 public:
  Fft3D(int nx, int ny, int nz);

  void forward(std::vector<Complex>& grid) const { transform(grid, false); }
  void inverse(std::vector<Complex>& grid) const { transform(grid, true); }

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_);
  }

 private:
  void transform(std::vector<Complex>& grid, bool inverse) const;
  int nx_, ny_, nz_;
};

}  // namespace mwx::md::ewald
