#include "md/ewald/pme.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"

namespace mwx::md::ewald {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoOverSqrtPi = 1.1283791670955126;

// Minimum-image displacement for an orthorhombic box.
Vec3 min_image(Vec3 d, const Vec3& box) {
  d.x -= box.x * std::round(d.x / box.x);
  d.y -= box.y * std::round(d.y / box.y);
  d.z -= box.z * std::round(d.z / box.z);
  return d;
}

// Self-energy and (for non-neutral systems) uniform-background correction.
double self_and_background(std::span<const double> q, double alpha, double volume) {
  double sum_q = 0.0, sum_q2 = 0.0;
  for (double qi : q) {
    sum_q += qi;
    sum_q2 += qi * qi;
  }
  double e = -units::kCoulomb * alpha / std::sqrt(kPi) * sum_q2;
  e -= units::kCoulomb * kPi / (2.0 * alpha * alpha * volume) * sum_q * sum_q;
  return e;
}

// Shared real-space pair term: returns energy, accumulates forces.
inline double real_pair(const Vec3& dr, double qq, double alpha, Vec3* f) {
  const double r2 = dr.norm2();
  const double r = std::sqrt(r2);
  const double e = units::kCoulomb * qq * std::erfc(alpha * r) / r;
  const double fscale =
      units::kCoulomb * qq *
      (std::erfc(alpha * r) / r + kTwoOverSqrtPi * alpha * std::exp(-alpha * alpha * r2)) /
      r2;
  *f = dr * fscale;
  return e;
}

}  // namespace

double bspline(int order, double x) {
  if (x <= 0.0 || x >= order) return 0.0;
  if (order == 2) return 1.0 - std::fabs(x - 1.0);
  const double n = order;
  return (x / (n - 1.0)) * bspline(order - 1, x) +
         ((n - x) / (n - 1.0)) * bspline(order - 1, x - 1.0);
}

double bspline_derivative(int order, double x) {
  return bspline(order - 1, x) - bspline(order - 1, x - 1.0);
}

EwaldParams suggest_params(const Vec3& box, int n_atoms) {
  EwaldParams p;
  const double lmin = std::min({box.x, box.y, box.z});
  p.r_cutoff = std::min(9.0, 0.45 * lmin);
  p.alpha = 3.2 / p.r_cutoff;
  const double lmax = std::max({box.x, box.y, box.z});
  p.grid = std::clamp(next_pow2(static_cast<int>(1.2 * p.alpha * lmax)), 16, 128);
  p.kmax = std::max(8, static_cast<int>(p.alpha * lmax * 1.2 / kPi) + 1);
  (void)n_atoms;
  return p;
}

// ---------------------------------------------------------------------------
// DirectEwald
// ---------------------------------------------------------------------------
DirectEwald::DirectEwald(Vec3 box, EwaldParams params) : box_(box), params_(params) {
  require(box.x > 0 && box.y > 0 && box.z > 0, "box must be positive");
  require(params.r_cutoff < 0.5 * std::min({box.x, box.y, box.z}),
          "real-space cutoff must be below half the box");
}

EwaldResult DirectEwald::compute(std::span<const Vec3> pos, std::span<const double> q) const {
  require(pos.size() == q.size(), "positions/charges size mismatch");
  const int n = static_cast<int>(pos.size());
  EwaldResult out;
  out.forces.assign(pos.size(), Vec3{});
  const double volume = box_.x * box_.y * box_.z;
  const double alpha = params_.alpha;

  // Real space (reference implementation: plain pair loop).
  const double rc2 = params_.r_cutoff * params_.r_cutoff;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Vec3 dr = min_image(pos[static_cast<std::size_t>(i)] -
                                    pos[static_cast<std::size_t>(j)],
                                box_);
      if (dr.norm2() > rc2) continue;
      Vec3 f;
      out.energy += real_pair(dr, q[static_cast<std::size_t>(i)] *
                                      q[static_cast<std::size_t>(j)],
                              alpha, &f);
      out.forces[static_cast<std::size_t>(i)] += f;
      out.forces[static_cast<std::size_t>(j)] -= f;
    }
  }

  // Reciprocal space: explicit lattice sum.
  const double kfac = 2.0 * kPi * units::kCoulomb / volume;
  for (int mx = -params_.kmax; mx <= params_.kmax; ++mx) {
    for (int my = -params_.kmax; my <= params_.kmax; ++my) {
      for (int mz = -params_.kmax; mz <= params_.kmax; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        const Vec3 k{2.0 * kPi * mx / box_.x, 2.0 * kPi * my / box_.y,
                     2.0 * kPi * mz / box_.z};
        const double k2 = k.norm2();
        const double c = kfac * std::exp(-k2 / (4.0 * alpha * alpha)) / k2;
        double re = 0.0, im = 0.0;
        for (int i = 0; i < n; ++i) {
          const double phase = dot(k, pos[static_cast<std::size_t>(i)]);
          re += q[static_cast<std::size_t>(i)] * std::cos(phase);
          im += q[static_cast<std::size_t>(i)] * std::sin(phase);
        }
        out.energy += c * (re * re + im * im);
        for (int i = 0; i < n; ++i) {
          const double phase = dot(k, pos[static_cast<std::size_t>(i)]);
          // F_i = 2 c q_i k (Re(S) sin(phase) - Im(S) cos(phase)).
          const double im_term = std::sin(phase) * re - std::cos(phase) * im;
          out.forces[static_cast<std::size_t>(i)] +=
              k * (2.0 * c * q[static_cast<std::size_t>(i)] * im_term);
        }
      }
    }
  }

  out.energy += self_and_background(q, alpha, volume);
  return out;
}

// ---------------------------------------------------------------------------
// PmeSolver
// ---------------------------------------------------------------------------
PmeSolver::PmeSolver(Vec3 box, EwaldParams params)
    : box_(box), params_(params), fft_(params.grid, params.grid, params.grid) {
  require(box.x > 0 && box.y > 0 && box.z > 0, "box must be positive");
  require(is_pow2(params.grid), "PME grid must be a power of two");
  require(params.spline_order >= 3 && params.spline_order <= 6,
          "spline order must be in [3, 6]");
  require(params.r_cutoff < 0.5 * std::min({box.x, box.y, box.z}),
          "real-space cutoff must be below half the box");

  // Precompute the influence function D(m) = (2 pi k_e / V) e^{-k^2/4a^2}/k^2
  // * |B(m)|^2, with B the Euler-spline factor of smooth PME.
  const int kk = params_.grid;
  const double volume = box_.x * box_.y * box_.z;
  const double kfac = 2.0 * kPi * units::kCoulomb / volume;
  const int p = params_.spline_order;

  // |b(m)|^2 per dimension-index (same for all dims since grid is cubic and
  // the factor depends only on m/K).
  std::vector<double> b2(static_cast<std::size_t>(kk));
  for (int m = 0; m < kk; ++m) {
    double re = 0.0, im = 0.0;
    for (int j = 0; j <= p - 2; ++j) {
      const double ang = 2.0 * kPi * m * j / kk;
      const double w = bspline(p, j + 1.0);
      re += w * std::cos(ang);
      im += w * std::sin(ang);
    }
    const double denom = re * re + im * im;
    // Odd spline orders have zeros at m = K/2; clamp to kill those modes.
    b2[static_cast<std::size_t>(m)] = denom > 1e-10 ? 1.0 / denom : 0.0;
  }

  influence_.assign(fft_.size(), 0.0);
  const double alpha = params_.alpha;
  for (int mz = 0; mz < kk; ++mz) {
    const int fz = mz <= kk / 2 ? mz : mz - kk;
    for (int my = 0; my < kk; ++my) {
      const int fy = my <= kk / 2 ? my : my - kk;
      for (int mx = 0; mx < kk; ++mx) {
        const int fx = mx <= kk / 2 ? mx : mx - kk;
        if (fx == 0 && fy == 0 && fz == 0) continue;
        const Vec3 k{2.0 * kPi * fx / box_.x, 2.0 * kPi * fy / box_.y,
                     2.0 * kPi * fz / box_.z};
        const double k2 = k.norm2();
        influence_[(static_cast<std::size_t>(mz) * kk + my) * kk + mx] =
            kfac * std::exp(-k2 / (4.0 * alpha * alpha)) / k2 *
            b2[static_cast<std::size_t>(mx)] * b2[static_cast<std::size_t>(my)] *
            b2[static_cast<std::size_t>(mz)];
      }
    }
  }
}

void PmeSolver::real_space(std::span<const Vec3> pos, std::span<const double> q,
                           EwaldResult& out) const {
  // Periodic linked cells sized >= cutoff.
  const int n = static_cast<int>(pos.size());
  const double rc = params_.r_cutoff;
  const double rc2 = rc * rc;
  const int cx = std::max(3, static_cast<int>(box_.x / rc));
  const int cy = std::max(3, static_cast<int>(box_.y / rc));
  const int cz = std::max(3, static_cast<int>(box_.z / rc));
  const int n_cells = cx * cy * cz;
  auto cell_of = [&](const Vec3& r) {
    auto wrap = [](double v, double l) {
      double f = v / l;
      f -= std::floor(f);
      return f;
    };
    const int ix = std::min(cx - 1, static_cast<int>(wrap(r.x, box_.x) * cx));
    const int iy = std::min(cy - 1, static_cast<int>(wrap(r.y, box_.y) * cy));
    const int iz = std::min(cz - 1, static_cast<int>(wrap(r.z, box_.z) * cz));
    return (iz * cy + iy) * cx + ix;
  };
  std::vector<int> head(static_cast<std::size_t>(n_cells), -1);
  std::vector<int> next(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int c = cell_of(pos[static_cast<std::size_t>(i)]);
    next[static_cast<std::size_t>(i)] = head[static_cast<std::size_t>(c)];
    head[static_cast<std::size_t>(c)] = i;
  }

  const double alpha = params_.alpha;
  for (int iz = 0; iz < cz; ++iz) {
    for (int iy = 0; iy < cy; ++iy) {
      for (int ix = 0; ix < cx; ++ix) {
        const int c = (iz * cy + iy) * cx + ix;
        for (int i = head[static_cast<std::size_t>(c)]; i >= 0;
             i = next[static_cast<std::size_t>(i)]) {
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const int jx = (ix + dx + cx) % cx;
                const int jy = (iy + dy + cy) % cy;
                const int jz = (iz + dz + cz) % cz;
                const int c2 = (jz * cy + jy) * cx + jx;
                for (int j = head[static_cast<std::size_t>(c2)]; j >= 0;
                     j = next[static_cast<std::size_t>(j)]) {
                  if (j <= i) continue;
                  const Vec3 dr = min_image(pos[static_cast<std::size_t>(i)] -
                                                pos[static_cast<std::size_t>(j)],
                                            box_);
                  if (dr.norm2() > rc2) continue;
                  Vec3 f;
                  out.energy += real_pair(
                      dr,
                      q[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(j)],
                      alpha, &f);
                  out.forces[static_cast<std::size_t>(i)] += f;
                  out.forces[static_cast<std::size_t>(j)] -= f;
                }
              }
            }
          }
        }
      }
    }
  }
}

void PmeSolver::reciprocal_space(std::span<const Vec3> pos, std::span<const double> q,
                                 EwaldResult& out) const {
  const int n = static_cast<int>(pos.size());
  const int kk = params_.grid;
  const int p = params_.spline_order;
  const std::size_t grid_n = fft_.size();

  // --- Spread charges with B-splines.
  std::vector<Complex> grid(grid_n, Complex{0.0, 0.0});
  auto frac_coord = [&](double v, double l) {
    double f = v / l;
    f -= std::floor(f);
    return f * kk;
  };
  if (!params_.vectorized) {
    // Scalar reference: the recursive B-spline is re-evaluated at every
    // stencil point — p + p^2 + p^3 recursive calls per atom.
    for (int i = 0; i < n; ++i) {
      const double ux = frac_coord(pos[static_cast<std::size_t>(i)].x, box_.x);
      const double uy = frac_coord(pos[static_cast<std::size_t>(i)].y, box_.y);
      const double uz = frac_coord(pos[static_cast<std::size_t>(i)].z, box_.z);
      const int bx = static_cast<int>(std::floor(ux));
      const int by = static_cast<int>(std::floor(uy));
      const int bz = static_cast<int>(std::floor(uz));
      for (int jz = 0; jz < p; ++jz) {
        const double wz = bspline(p, uz - (bz - jz));
        const int gz = ((bz - jz) % kk + kk) % kk;
        for (int jy = 0; jy < p; ++jy) {
          const double wyz = wz * bspline(p, uy - (by - jy));
          const int gy = ((by - jy) % kk + kk) % kk;
          for (int jx = 0; jx < p; ++jx) {
            const double w = wyz * bspline(p, ux - (bx - jx));
            const int gx = ((bx - jx) % kk + kk) % kk;
            grid[(static_cast<std::size_t>(gz) * kk + gy) * kk + gx] +=
                q[static_cast<std::size_t>(i)] * w;
          }
        }
      }
    }
  } else {
    // Lane-loop form: each dimension's weights and wrapped indices are
    // evaluated once per atom into stack arrays (3p recursive calls instead
    // of p + p^2 + p^3), and the stencil body is a branch-free loop over
    // them.  Every product keeps the scalar form's operands, association
    // and accumulation order, so the grid is bit-identical.
    constexpr int kMaxP = 6;  // ctor enforces spline_order <= 6
    double wxs[kMaxP], wys[kMaxP], wzs[kMaxP];
    int gxs[kMaxP], gys[kMaxP], gzs[kMaxP];
    for (int i = 0; i < n; ++i) {
      const double ux = frac_coord(pos[static_cast<std::size_t>(i)].x, box_.x);
      const double uy = frac_coord(pos[static_cast<std::size_t>(i)].y, box_.y);
      const double uz = frac_coord(pos[static_cast<std::size_t>(i)].z, box_.z);
      const int bx = static_cast<int>(std::floor(ux));
      const int by = static_cast<int>(std::floor(uy));
      const int bz = static_cast<int>(std::floor(uz));
      for (int j = 0; j < p; ++j) {
        wxs[j] = bspline(p, ux - (bx - j));
        wys[j] = bspline(p, uy - (by - j));
        wzs[j] = bspline(p, uz - (bz - j));
        gxs[j] = ((bx - j) % kk + kk) % kk;
        gys[j] = ((by - j) % kk + kk) % kk;
        gzs[j] = ((bz - j) % kk + kk) % kk;
      }
      const double qi = q[static_cast<std::size_t>(i)];
      for (int jz = 0; jz < p; ++jz) {
        const double wz = wzs[jz];
        const std::size_t rz = static_cast<std::size_t>(gzs[jz]) * kk;
        for (int jy = 0; jy < p; ++jy) {
          const double wyz = wz * wys[jy];
          const std::size_t ryz = (rz + static_cast<std::size_t>(gys[jy])) * kk;
          for (int jx = 0; jx < p; ++jx) {
            const double w = wyz * wxs[jx];
            grid[ryz + static_cast<std::size_t>(gxs[jx])] += qi * w;
          }
        }
      }
    }
  }

  // --- Convolve with the influence function.
  fft_.forward(grid);
  double e_rec = 0.0;
  for (std::size_t m = 0; m < grid_n; ++m) {
    e_rec += influence_[m] * std::norm(grid[m]);
    grid[m] *= influence_[m];
  }
  out.energy += e_rec;
  fft_.inverse(grid);
  // grid now holds phi/N_total; the force formula needs N * IFFT(D*Qhat).
  const double nfac = static_cast<double>(grid_n);

  // --- Interpolate forces: F_i = -2 q_i sum_g phi(g) grad W_i(g).
  if (!params_.vectorized) {
    for (int i = 0; i < n; ++i) {
      const double ux = frac_coord(pos[static_cast<std::size_t>(i)].x, box_.x);
      const double uy = frac_coord(pos[static_cast<std::size_t>(i)].y, box_.y);
      const double uz = frac_coord(pos[static_cast<std::size_t>(i)].z, box_.z);
      const int bx = static_cast<int>(std::floor(ux));
      const int by = static_cast<int>(std::floor(uy));
      const int bz = static_cast<int>(std::floor(uz));
      Vec3 f{};
      for (int jz = 0; jz < p; ++jz) {
        const double xz = uz - (bz - jz);
        const double wz = bspline(p, xz);
        const double dz = bspline_derivative(p, xz);
        const int gz = ((bz - jz) % kk + kk) % kk;
        for (int jy = 0; jy < p; ++jy) {
          const double xy = uy - (by - jy);
          const double wy = bspline(p, xy);
          const double dy = bspline_derivative(p, xy);
          const int gy = ((by - jy) % kk + kk) % kk;
          for (int jx = 0; jx < p; ++jx) {
            const double xx = ux - (bx - jx);
            const double wx = bspline(p, xx);
            const double dxv = bspline_derivative(p, xx);
            const int gx = ((bx - jx) % kk + kk) % kk;
            const double phi =
                nfac * grid[(static_cast<std::size_t>(gz) * kk + gy) * kk + gx].real();
            f.x += phi * dxv * wy * wz;
            f.y += phi * wx * dy * wz;
            f.z += phi * wx * wy * dz;
          }
        }
      }
      const double qi = q[static_cast<std::size_t>(i)];
      out.forces[static_cast<std::size_t>(i)] -=
          Vec3{f.x * kk / box_.x, f.y * kk / box_.y, f.z * kk / box_.z} * (2.0 * qi);
    }
  } else {
    // Lane-loop form: per-dimension weight + derivative arrays evaluated
    // once (6p recursive calls instead of 2(p + p^2 + p^3)); the stencil
    // accumulates the same left-associated products in the same order as
    // the scalar loop, so forces are bit-identical.
    constexpr int kMaxP = 6;
    double wxs[kMaxP], wys[kMaxP], wzs[kMaxP];
    double dxs[kMaxP], dys[kMaxP], dzs[kMaxP];
    int gxs[kMaxP], gys[kMaxP], gzs[kMaxP];
    for (int i = 0; i < n; ++i) {
      const double ux = frac_coord(pos[static_cast<std::size_t>(i)].x, box_.x);
      const double uy = frac_coord(pos[static_cast<std::size_t>(i)].y, box_.y);
      const double uz = frac_coord(pos[static_cast<std::size_t>(i)].z, box_.z);
      const int bx = static_cast<int>(std::floor(ux));
      const int by = static_cast<int>(std::floor(uy));
      const int bz = static_cast<int>(std::floor(uz));
      for (int j = 0; j < p; ++j) {
        const double xx = ux - (bx - j);
        const double xy = uy - (by - j);
        const double xz = uz - (bz - j);
        wxs[j] = bspline(p, xx);
        dxs[j] = bspline_derivative(p, xx);
        wys[j] = bspline(p, xy);
        dys[j] = bspline_derivative(p, xy);
        wzs[j] = bspline(p, xz);
        dzs[j] = bspline_derivative(p, xz);
        gxs[j] = ((bx - j) % kk + kk) % kk;
        gys[j] = ((by - j) % kk + kk) % kk;
        gzs[j] = ((bz - j) % kk + kk) % kk;
      }
      Vec3 f{};
      for (int jz = 0; jz < p; ++jz) {
        const double wz = wzs[jz];
        const double dz = dzs[jz];
        const std::size_t rz = static_cast<std::size_t>(gzs[jz]) * kk;
        for (int jy = 0; jy < p; ++jy) {
          const double wy = wys[jy];
          const double dy = dys[jy];
          const std::size_t ryz = (rz + static_cast<std::size_t>(gys[jy])) * kk;
          for (int jx = 0; jx < p; ++jx) {
            const double phi =
                nfac * grid[ryz + static_cast<std::size_t>(gxs[jx])].real();
            f.x += phi * dxs[jx] * wy * wz;
            f.y += phi * wxs[jx] * dy * wz;
            f.z += phi * wxs[jx] * wy * dz;
          }
        }
      }
      const double qi = q[static_cast<std::size_t>(i)];
      out.forces[static_cast<std::size_t>(i)] -=
          Vec3{f.x * kk / box_.x, f.y * kk / box_.y, f.z * kk / box_.z} * (2.0 * qi);
    }
  }
}

EwaldResult PmeSolver::compute(std::span<const Vec3> pos, std::span<const double> q) const {
  require(pos.size() == q.size(), "positions/charges size mismatch");
  EwaldResult out;
  out.forces.assign(pos.size(), Vec3{});
  real_space(pos, q, out);
  reciprocal_space(pos, q, out);
  out.energy += self_and_background(q, params_.alpha, box_.x * box_.y * box_.z);
  return out;
}

// ---------------------------------------------------------------------------
EwaldResult direct_coulomb_minimum_image(const Vec3& box, std::span<const Vec3> pos,
                                         std::span<const double> q) {
  require(pos.size() == q.size(), "positions/charges size mismatch");
  const int n = static_cast<int>(pos.size());
  EwaldResult out;
  out.forces.assign(pos.size(), Vec3{});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Vec3 dr = min_image(pos[static_cast<std::size_t>(i)] -
                                    pos[static_cast<std::size_t>(j)],
                                box);
      const double r2 = dr.norm2();
      const double r = std::sqrt(r2);
      const double e = units::kCoulomb * q[static_cast<std::size_t>(i)] *
                       q[static_cast<std::size_t>(j)] / r;
      out.energy += e;
      const Vec3 f = dr * (e / r2);
      out.forces[static_cast<std::size_t>(i)] += f;
      out.forces[static_cast<std::size_t>(j)] -= f;
    }
  }
  return out;
}

}  // namespace mwx::md::ewald
