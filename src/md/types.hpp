// Atom species table and bonded-interaction records.
//
// Bond records hold *indices* into the atom store — the indirect (A[B[i]])
// indexing that makes the application irregular (paper abstract, §II-B:
// bond force equations "exhibit indirect and therefore irregular indexing
// into the atom array" and "can involve up to four atoms").
#pragma once

#include <string>
#include <vector>

#include "common/require.hpp"

namespace mwx::md {

struct AtomType {
  std::string name;
  double mass = 1.0;        // amu
  double lj_epsilon = 0.0;  // internal energy units
  double lj_sigma = 1.0;    // Å
};

class AtomTypeTable {
 public:
  int add(AtomType t) {
    types_.push_back(std::move(t));
    return static_cast<int>(types_.size()) - 1;
  }
  [[nodiscard]] const AtomType& at(int id) const {
    require(id >= 0 && id < n(), "atom type id out of range");
    return types_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int n() const { return static_cast<int>(types_.size()); }

 private:
  std::vector<AtomType> types_;
};

// Harmonic two-body bond: V = 1/2 k (r - r0)^2.
struct RadialBond {
  int a = 0, b = 0;
  double k = 0.0;   // internal energy / Å^2
  double r0 = 0.0;  // Å
};

// Harmonic three-body angle at vertex b: V = 1/2 k (theta - theta0)^2.
struct AngularBond {
  int a = 0, b = 0, c = 0;
  double k = 0.0;       // internal energy / rad^2
  double theta0 = 0.0;  // rad
};

// Cosine four-body torsion around b-c: V = k (1 + cos(n*phi - phi0)).
struct TorsionBond {
  int a = 0, b = 0, c = 0, d = 0;
  double k = 0.0;
  int n = 1;
  double phi0 = 0.0;
};

}  // namespace mwx::md
