// Physical observables and simple thermostats for analysis and examples:
// instantaneous temperature, radial distribution function, mean-squared
// displacement, kinetic-energy control (velocity rescaling and Berendsen
// coupling), and XYZ trajectory output.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace mwx::md {

// Instantaneous temperature in kelvin from the movable atoms' kinetic energy.
double temperature_kelvin(const MolecularSystem& sys);

// Radial distribution function g(r) over all atom pairs, histogrammed into
// `bins` shells up to r_max, normalized by the ideal-gas shell expectation
// for the system's box volume.  g -> 1 for an uncorrelated gas; peaks mark
// coordination shells.
std::vector<double> radial_distribution(const MolecularSystem& sys, double r_max, int bins);

// Mean-squared displacement (Å²) of movable atoms relative to reference
// positions (typically a snapshot taken at t0).
double mean_squared_displacement(const MolecularSystem& sys,
                                 std::span<const Vec3> reference);

// Multiplies all movable-atom velocities so the temperature becomes exactly
// `target_kelvin` (hard rescale).
void rescale_to_temperature(MolecularSystem& sys, double target_kelvin);

// One Berendsen weak-coupling step: velocities scaled by
// sqrt(1 + dt/tau (T0/T - 1)).  Returns the scale factor applied.
double berendsen_step(MolecularSystem& sys, double target_kelvin, double dt_fs,
                      double tau_fs);

// Writes one XYZ frame (element names from the type table).
void write_xyz_frame(std::ostream& os, const MolecularSystem& sys,
                     const std::string& comment = "");

}  // namespace mwx::md
