// Heap-layout model: where atom state *would* live in a managed heap.
//
// Section V-A's data-packing study hinged on the fact that a Java programmer
// cannot control object placement: "the Java memory manager prevents direct
// user control over locating objects in adjacent locations in memory", and
// existing tools could not even reveal the addresses.  Here the layout is an
// explicit model that assigns a pseudo-address to every atom field, so the
// simulator sees exactly the stream a given layout would produce:
//
//  * JavaObjects      — one Atom object per atom holding references to four
//                       separate Vec3 sub-objects (position, velocity,
//                       acceleration, force), allocated in creation order.
//  * ReorderedObjects — same object structure, addresses re-assigned by a
//                       caller-supplied permutation (what the authors *tried*
//                       to achieve with rapidly successive new() calls).
//  * PackedSoA        — contiguous per-field arrays (the C/Fortran layout
//                       Java cannot express).
//
// The model also owns the temporary-object allocator: a bump pointer over a
// young region that wraps with a "garbage collection", reproducing the
// cache-pollution mechanism of Section V-B.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "sim/numa.hpp"

namespace mwx::md {

enum class Layout { JavaObjects, ReorderedObjects, PackedSoA };

const char* to_string(Layout l);

struct HeapConfig {
  Layout layout = Layout::JavaObjects;
  // Total modelled working set (the paper reports ~25 MB per benchmark).
  std::uint64_t heap_bytes = 25ull << 20;
  // Modelled Java object sizes: header + fields.
  std::uint32_t atom_object_bytes = 64;   // Atom object: header + refs + scalars
  std::uint32_t vec3_object_bytes = 32;   // header + 3 doubles
  // Fraction of the heap given to the young (allocation) region — the part
  // short-lived temporaries churn through between collections.
  double young_fraction = 0.6;
  // Serial stop-the-world cost charged when the young region wraps.
  double gc_pause_seconds = 150e-6;
};

class HeapModel : public sim::NumaDirectory {
 public:
  // nbr_entries_per_atom sizes the modelled neighbor-table region (the Java
  // int[n][cap] width).  The engine passes its density-derived capacity; the
  // default matches the old fixed plan for direct construction in tests.
  HeapModel(HeapConfig config, int n_atoms, int nbr_entries_per_atom = 512);

  [[nodiscard]] const HeapConfig& config() const { return config_; }
  [[nodiscard]] int neighbor_entries_per_atom() const { return nbr_entries_per_atom_; }

  // --- Atom field addresses -------------------------------------------------
  [[nodiscard]] std::uint64_t pos_addr(int i) const { return field_addr(i, 0); }
  [[nodiscard]] std::uint64_t vel_addr(int i) const { return field_addr(i, 1); }
  [[nodiscard]] std::uint64_t acc_addr(int i) const { return field_addr(i, 2); }
  [[nodiscard]] std::uint64_t force_addr(int i) const { return field_addr(i, 3); }
  // The Atom object itself (type, charge, flags — read on nearly every use).
  [[nodiscard]] std::uint64_t meta_addr(int i) const;

  // --- Auxiliary engine arrays (int/flat data even in Java) -----------------
  [[nodiscard]] std::uint64_t neighbor_entry_addr(std::uint64_t k) const {
    return nbr_base_ + k * 4;
  }
  [[nodiscard]] std::uint64_t cell_entry_addr(std::uint64_t k) const {
    return cell_base_ + k * 4;
  }
  // Per-worker privatized force array entry (contiguous per worker).
  [[nodiscard]] std::uint64_t private_force_addr(int worker, int i) const {
    return priv_base_ + (static_cast<std::uint64_t>(worker) * n_atoms_ +
                         static_cast<std::uint64_t>(i)) *
                            24;
  }

  // --- Temporary objects -----------------------------------------------------
  // Bump-allocates one short-lived Vec3-style object; wrapping the young
  // region counts as one garbage collection.
  std::uint64_t alloc_temp();
  [[nodiscard]] long long temp_allocations() const { return temp_allocations_; }
  [[nodiscard]] long long gc_count() const { return gc_count_; }
  // GCs that occurred since the last call (for charging pauses).
  long long take_new_gcs();

  // Applies a permutation (new_order[k] = old index placed k-th) to the
  // object addresses.  Under JavaObjects this is a *no-op* — the memory
  // manager ignores the programmer's intent, which is precisely what the
  // paper observed ("a strong indicator that the objects were not being
  // reordered").  Under ReorderedObjects the addresses really move.
  void reorder(const std::vector<int>& new_order);

  // Companion to MolecularSystem::permute(): the engine has just moved atom
  // data so index k holds what old index new_order[k] held.  Modelled objects
  // follow their atoms — each keeps whatever address it already had — and
  // then, where the layout permits (ReorderedObjects), the heap re-lays the
  // objects contiguously in the new storage order.  Under JavaObjects the
  // objects stay at their creation-order addresses, now *scattered* relative
  // to the new index order: exactly what permuting a Java reference array
  // does, and why the paper's packing attempt showed no effect.  PackedSoA is
  // index-addressed, so the (physically moved) array elements are already
  // contiguous in the new order.
  void permute_objects(const std::vector<int>& new_order);

  [[nodiscard]] int n_atoms() const { return static_cast<int>(n_atoms_); }
  // Allocation rank backing atom i's modelled address (tests/diagnostics).
  [[nodiscard]] std::uint32_t slot_of(int i) const { return slot_[static_cast<std::size_t>(i)]; }

  // --- NUMA directory --------------------------------------------------------
  // Activates the per-address home mapping.  With first_touch, each region is
  // homed the way the engine's placement pass would write it: per-atom data
  // (objects/SoA) block-mapped by atom index over the domains, the CSR
  // neighbor store block-mapped by region offset (rows are filled by the
  // worker that owns the atom), private force arrays by owning slot, and the
  // shared cell/young regions page-interleaved.  Without first_touch every
  // address is homed on domain 0 — the single-node pathology of a master
  // thread value-initializing the whole heap.
  void configure_numa(int n_domains, int n_workers, bool first_touch);
  [[nodiscard]] int domain_of(std::uint64_t addr) const override;
  [[nodiscard]] int numa_domains() const { return numa_domains_; }

 private:
  [[nodiscard]] std::uint64_t field_addr(int i, int field) const;

  HeapConfig config_;
  std::uint64_t n_atoms_;
  int nbr_entries_per_atom_;
  // slot_[i] = allocation-order rank of atom i's object cluster.
  std::vector<std::uint32_t> slot_;
  std::uint64_t object_base_ = 0;
  std::uint64_t stride_ = 0;      // bytes per atom object cluster
  std::uint64_t soa_base_ = 0;
  std::uint64_t nbr_base_ = 0;
  std::uint64_t nbr_bytes_ = 0;
  std::uint64_t cell_base_ = 0;
  std::uint64_t priv_base_ = 0;
  std::uint64_t young_base_ = 0;
  int numa_domains_ = 0;   // 0 = directory inactive (domain_of returns -1)
  int numa_workers_ = 1;
  bool numa_first_touch_ = false;
  std::uint64_t young_bytes_ = 0;
  std::uint64_t young_bump_ = 0;
  long long temp_allocations_ = 0;
  long long gc_count_ = 0;
  long long reported_gcs_ = 0;
};

}  // namespace mwx::md
