// The MD kernels, templated on a memory-model policy (md/mem_model.hpp).
//
// Each function processes a contiguous chunk of its domain (atoms, charged
// atoms, or bonds) — the unit the executor schedules — and writes forces
// only into the given worker's private buffer, so chunks are race-free by
// construction.  With Mem = NullMem these compile to pure physics; with
// Mem = TraceMem they additionally emit the heap-layout-dependent address
// stream and arithmetic costs consumed by the machine simulator.
#pragma once

#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/units.hpp"
#include "md/cell_grid.hpp"
#include "md/cost_table.hpp"
#include "md/force_buffers.hpp"
#include "md/lj_table.hpp"
#include "md/mem_model.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"

namespace mwx::md {

// ---------------------------------------------------------------------------
// Phase 1: predictor — second-order Taylor step of position plus the first
// half velocity kick; reflective walls keep atoms inside the box.
// ---------------------------------------------------------------------------
template <typename Mem>
void predictor_chunk(MolecularSystem& sys, double dt, const CostTable& costs, int begin,
                     int end, Mem& mem) {
  auto& pos = sys.positions();
  auto& vel = sys.velocities();
  auto& acc = sys.accelerations();
  const Box& box = sys.box();
  for (int i = begin; i < end; ++i) {
    mem.read_meta(i);
    if (!sys.movable(i)) continue;
    mem.read_pos(i);
    mem.read_vel(i);
    mem.read_acc(i);
    Vec3& x = pos[static_cast<std::size_t>(i)];
    Vec3& v = vel[static_cast<std::size_t>(i)];
    const Vec3& a = acc[static_cast<std::size_t>(i)];
    x += v * dt + a * (0.5 * dt * dt);
    v += a * (0.5 * dt);
    // Reflective walls.
    for (int d = 0; d < 3; ++d) {
      if (x[static_cast<std::size_t>(d)] < box.lo[static_cast<std::size_t>(d)]) {
        x[static_cast<std::size_t>(d)] =
            2.0 * box.lo[static_cast<std::size_t>(d)] - x[static_cast<std::size_t>(d)];
        v[static_cast<std::size_t>(d)] = -v[static_cast<std::size_t>(d)];
      } else if (x[static_cast<std::size_t>(d)] > box.hi[static_cast<std::size_t>(d)]) {
        x[static_cast<std::size_t>(d)] =
            2.0 * box.hi[static_cast<std::size_t>(d)] - x[static_cast<std::size_t>(d)];
        v[static_cast<std::size_t>(d)] = -v[static_cast<std::size_t>(d)];
      }
    }
    mem.write_pos(i);
    mem.write_vel(i);
    mem.temps(costs.temps_predictor_atom);
    mem.compute(costs.predictor_atom + costs.wall_check_atom);
  }
}

// ---------------------------------------------------------------------------
// Phase 2: neighbor-list validity check for a chunk.
// ---------------------------------------------------------------------------
template <typename Mem>
bool check_chunk(const MolecularSystem& sys, const NeighborList& nlist, const CostTable& costs,
                 int begin, int end, Mem& mem) {
  for (int i = begin; i < end; ++i) {
    mem.read_pos(i);
    mem.compute(costs.check_atom);
  }
  return nlist.chunk_exceeds_skin(sys.positions(), begin, end);
}

// ---------------------------------------------------------------------------
// Phase 3a: neighbor counting — the first step of the compacted CSR rebuild.
// Each chunk scans its atoms' candidate cells with exactly the acceptance
// test the fill pass will apply and records only the count; the serial
// prefix sum (NeighborList::finalize_offsets) then sizes each row exactly.
// The count depends only on the position snapshot and cell contents, so the
// resulting offsets are identical for any chunking/worker count.  The scan
// is modelled as an in-place distance test (no boxed temporaries): counting
// allocates nothing even in the Java-temporaries mode.
// ---------------------------------------------------------------------------
template <typename Mem>
void neighbor_count_chunk(const MolecularSystem& sys, const CellGrid& grid,
                          NeighborList& nlist, const CostTable& costs, int begin, int end,
                          int stride, Mem& mem) {
  const auto& pos = sys.positions();
  const double reach2 = nlist.reach() * nlist.reach();
  for (int i = begin; i < end; i += stride) {
    mem.read_pos(i);
    mem.read_meta(i);
    const Vec3 xi = pos[static_cast<std::size_t>(i)];
    const bool mi = sys.movable(i);
    int count = 0;
    int cells[27];
    const int nc = grid.neighbor_cells(grid.cell_of(xi), cells);
    for (int c = 0; c < nc; ++c) {
      const int* it = grid.cell_begin(cells[c]);
      const int* last = grid.cell_end(cells[c]);
      for (; it != last; ++it) {
        const int j = *it;
        if (j <= i) continue;  // half list, stored on the lower index
        mem.read_cell_entry(static_cast<std::uint64_t>(it - grid.cell_begin(0)));
        if (!mi && !sys.movable(j)) continue;
        if (sys.excluded(i, j)) continue;
        mem.read_pos(j);
        mem.compute(costs.nbr_candidate);
        if (distance2(xi, pos[static_cast<std::size_t>(j)]) <= reach2) ++count;
      }
    }
    nlist.set_count(i, count);
    mem.compute(costs.nbr_count_store);
  }
}

// ---------------------------------------------------------------------------
// Phases 3+4 (fused): per atom, optionally fill its (pre-counted, pre-sized)
// CSR neighbor row from the linked cells, then compute Lennard-Jones forces
// over the list.  Pair (i, j) is processed by the lower index i — the
// paper's convention — with j's share written into this worker's private
// buffer.
//
// The LJ loop has two forms selected by `tiled`.  The scalar form is the
// paper's per-pair loop.  The tiled form gathers up to kLjTile accepted
// neighbors' dr components and pair parameters into stack arrays, evaluates
// r2 -> sr6 -> fscale across the tile in a branch-free lane loop the
// compiler can vectorize *without* fast-math, then scatters forces and
// accumulates pe in the original neighbor order.  Every lane computes the
// same IEEE double expressions as the scalar form and the accumulators see
// the same values in the same order, so the two forms are bit-identical —
// a guarantee the test suite enforces.
// ---------------------------------------------------------------------------
inline constexpr int kLjTile = 8;

template <typename Mem>
void fused_neighbors_lj_chunk(const MolecularSystem& sys, const CellGrid& grid,
                              NeighborList& nlist, const LjTable& lj, const CostTable& costs,
                              bool rebuild, ForceBuffers& buf, int worker, int begin, int end,
                              int stride, Mem& mem, bool tiled = false) {
  const auto& pos = sys.positions();
  const double reach2 = nlist.reach() * nlist.reach();
  const double cutoff2 = lj.cutoff2();

  for (int i = begin; i < end; i += stride) {
    mem.read_pos(i);
    mem.read_meta(i);
    const Vec3 xi = pos[static_cast<std::size_t>(i)];
    const int ti = sys.type_of(i);
    const bool mi = sys.movable(i);

    if (rebuild) {
      int k = 0;
      int cells[27];
      const int nc = grid.neighbor_cells(grid.cell_of(xi), cells);
      for (int c = 0; c < nc; ++c) {
        const int* it = grid.cell_begin(cells[c]);
        const int* last = grid.cell_end(cells[c]);
        for (; it != last; ++it) {
          const int j = *it;
          if (j <= i) continue;  // half list, stored on the lower index
          mem.read_cell_entry(static_cast<std::uint64_t>(it - grid.cell_begin(0)));

          // Two fixed atoms never interact (nanocar's platform), and
          // directly bonded pairs are excluded from LJ.
          if (!mi && !sys.movable(j)) continue;
          if (sys.excluded(i, j)) continue;
          mem.read_pos(j);
          mem.temps(costs.temps_nbr_candidate);
          mem.compute(costs.nbr_candidate);
          if (distance2(xi, pos[static_cast<std::size_t>(j)]) <= reach2) {
            nlist.add_neighbor(i, j);
            mem.write_neighbor_entry(nlist.entry_index(i, k));
            mem.compute(costs.nbr_accept);
            ++k;
          }
        }
      }
    }

    Vec3 fi{};
    double pe = 0.0;
    const int* it = nlist.begin(i);
    const int* last = nlist.end(i);

    if (!tiled) {
      for (int k = 0; it != last; ++it, ++k) {
        const int j = *it;
        mem.read_neighbor_entry(nlist.entry_index(i, k));
        mem.read_pos(j);
        mem.read_meta(j);
        const Vec3 dr = xi - pos[static_cast<std::size_t>(j)];
        const double r2 = dr.norm2();
        if (r2 > cutoff2 || r2 <= 0.0) continue;
        const int tj = sys.type_of(j);
        const double eps = lj.epsilon(ti, tj);
        if (eps == 0.0) continue;
        const double sr2 = lj.sigma2(ti, tj) / r2;
        const double sr6 = sr2 * sr2 * sr2;
        const double sr12 = sr6 * sr6;
        const double fscale = 24.0 * eps * (2.0 * sr12 - sr6) / r2;
        const Vec3 f = dr * fscale;
        fi += f;
        buf.force(worker, j) -= f;
        mem.write_private_force(worker, j);
        pe += 4.0 * eps * (sr12 - sr6) - lj.shift(ti, tj);
        mem.temps(costs.temps_lj_pair);
        mem.compute(costs.lj_pair);
      }
    } else {
      // Tile buffers: accepted pairs only, in list order.  dr is not
      // buffered — the scatter recomputes xi - pos[j] (an identical IEEE
      // expression on positions that cannot change mid-phase) from lines
      // the gather just touched, which is cheaper than six extra stack
      // arrays' worth of stores and reloads per tile.
      int tj_[kLjTile];
      double tr2[kLjTile];
      double teps[kLjTile], tsig2[kLjTile], tshift[kLjTile];
      double tfs[kLjTile], tpe[kLjTile];
      int m = 0;

      // `count` is kLjTile (a compile-time constant after inlining) at every
      // full-tile flush, so the lane loop below gets a fixed trip count the
      // vectorizer can unroll; only the final partial flush runs with a
      // runtime bound.
      auto flush = [&](const int count) {
        // Lane loop: pure per-lane IEEE arithmetic, no branches, no
        // cross-lane dependency — vectorizable as-is.
        for (int t = 0; t < count; ++t) {
          const double sr2 = tsig2[t] / tr2[t];
          const double sr6 = sr2 * sr2 * sr2;
          const double sr12 = sr6 * sr6;
          tfs[t] = 24.0 * teps[t] * (2.0 * sr12 - sr6) / tr2[t];
          tpe[t] = 4.0 * teps[t] * (sr12 - sr6) - tshift[t];
        }
        // Scatter/accumulate in original neighbor order: fi, the private
        // buffer entries and pe receive exactly the scalar form's values in
        // exactly the scalar form's order.
        for (int t = 0; t < count; ++t) {
          const Vec3 f = (xi - pos[static_cast<std::size_t>(tj_[t])]) * tfs[t];
          fi += f;
          buf.force(worker, tj_[t]) -= f;
          mem.write_private_force(worker, tj_[t]);
          pe += tpe[t];
          mem.temps(costs.temps_lj_pair);
          mem.compute(costs.lj_pair);
        }
        m = 0;
      };

      for (int k = 0; it != last; ++it, ++k) {
        const int j = *it;
        mem.read_neighbor_entry(nlist.entry_index(i, k));
        mem.read_pos(j);
        mem.read_meta(j);
        const Vec3 dr = xi - pos[static_cast<std::size_t>(j)];
        const double r2 = dr.norm2();
        if (r2 > cutoff2 || r2 <= 0.0) continue;
        const int tj = sys.type_of(j);
        const double eps = lj.epsilon(ti, tj);
        if (eps == 0.0) continue;
        tj_[m] = j;
        tr2[m] = r2;
        teps[m] = eps;
        tsig2[m] = lj.sigma2(ti, tj);
        tshift[m] = lj.shift(ti, tj);
        if (++m == kLjTile) flush(kLjTile);
      }
      flush(m);
    }

    buf.force(worker, i) += fi;
    buf.add_pe(worker, pe);
    mem.write_private_force(worker, i);
  }
}

// ---------------------------------------------------------------------------
// Phase 4 (continued): Coulomb forces between every pair of charged atoms,
// no distance cutoff (Section II-B).  The chunk ranges over positions in the
// charged-atom index list; the triangular inner loop gives lower-ranked
// chunks more work — the deliberate index-correlated imbalance.
//
// Like the LJ kernel this has a scalar and a tiled form.  Unlike LJ, the
// all-pairs loop rejects (almost) nothing, so a tile that merely regroups
// the sqrt/divide chain cannot amortize its gather cost against skipped
// pairs.  The tiled form therefore reads from a PackedCharges snapshot —
// the charged atoms' positions and charges copied bit-for-bit into four
// contiguous arrays once per step — which turns the inner loop's three
// gathered position loads plus one gathered charge load into streaming
// loads, and buffers dr in the tile so nothing is fetched twice.  The lane
// loop runs sqrt/divide/multiply across the tile branch-free — it
// vectorizes to vsqrtpd/vdivpd, both IEEE-correctly-rounded, so each lane
// computes the scalar form's exact bits — then forces and pe accumulate in
// the original pair order.  kCoulomb * qi is hoisted as
// (kCoulomb * qi) * qj / r, which is precisely the association the scalar
// expression already has.
// ---------------------------------------------------------------------------

// Per-step SoA snapshot of the charged atoms.  pack() copies values
// verbatim (no arithmetic), so kernels reading it see exactly the bits in
// the master arrays.  The engine repacks after every phase that moves atoms
// or permutes storage order; standalone callers pack right before the call.
struct PackedCharges {
  std::vector<double> x, y, z, q;

  void pack(const MolecularSystem& sys) {
    const auto& charged = sys.charged_indices();
    const auto& pos = sys.positions();
    const std::size_t n = charged.size();
    x.resize(n);
    y.resize(n);
    z.resize(n);
    q.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      const int j = charged[c];
      const Vec3& p = pos[static_cast<std::size_t>(j)];
      x[c] = p.x;
      y[c] = p.y;
      z[c] = p.z;
      q[c] = sys.charge(j);
    }
  }
};

template <typename Mem>
void coulomb_chunk(const MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                   int worker, int cbegin, int cend, int stride, Mem& mem,
                   bool tiled = false, const PackedCharges* packed = nullptr) {
  const auto& pos = sys.positions();
  const auto& charged = sys.charged_indices();
  const int n_charged = static_cast<int>(charged.size());
  for (int ci = cbegin; ci < cend; ci += stride) {
    const int i = charged[static_cast<std::size_t>(ci)];
    mem.read_pos(i);
    mem.read_meta(i);
    mem.temps(costs.temps_coulomb_outer);
    const Vec3 xi = pos[static_cast<std::size_t>(i)];
    const double qi = sys.charge(i);
    Vec3 fi{};
    double pe = 0.0;

    if (!tiled) {
      for (int cj = ci + 1; cj < n_charged; ++cj) {
        const int j = charged[static_cast<std::size_t>(cj)];
        mem.read_pos(j);
        mem.read_meta(j);
        const Vec3 dr = xi - pos[static_cast<std::size_t>(j)];
        const double r2 = dr.norm2();
        // Coincident charges have no defined pair direction; dividing through
        // r = 0 would seed inf/NaN forces that corrupt every later step (the
        // LJ kernel already skips this case).
        if (r2 <= 0.0) continue;
        const double r = std::sqrt(r2);
        const double e = units::kCoulomb * qi * sys.charge(j) / r;
        const Vec3 f = dr * (e / r2);
        fi += f;
        buf.force(worker, j) -= f;
        mem.write_private_force(worker, j);
        pe += e;
        mem.temps(costs.temps_coulomb_pair);
        mem.compute(costs.coulomb_pair);
      }
    } else {
      MWX_ASSERT(packed != nullptr);
      const double kqi = units::kCoulomb * qi;
      const double* __restrict px = packed->x.data();
      const double* __restrict py = packed->y.data();
      const double* __restrict pz = packed->z.data();
      const double* __restrict pq = packed->q.data();
      // Full blocks of kLjTile consecutive cj.  The all-pairs loop accepts
      // every pair except exact coincidence (r2 == 0), so unlike LJ there is
      // nothing to compact: pass 1 computes dr and r2 for the whole block
      // branch-free from the packed arrays (contiguous vector loads), the
      // lane loop runs the sqrt/divide chain, and the ordered scatter
      // accumulates in pair order.  A block containing a coincident pair
      // (vanishingly rare) falls back to the scalar body, preserving the
      // skip semantics bit for bit.
      //
      // The hot block uses AVX2 intrinsics where available: GCC's
      // autovectorizer fully unrolls these fixed-trip loops and then
      // declines to SLP-vectorize the result, so spelling out the ymm ops
      // is what actually lights up the vector units.  vsubpd/vmulpd/vaddpd/
      // vsqrtpd/vdivpd are all IEEE correctly-rounded, and the expressions
      // keep the scalar association — (kqi * qj) / r, e / r2, dr * fs — so
      // each lane computes the scalar form's exact bits.
      int cj = ci + 1;
#if defined(__AVX2__)
      static_assert(kLjTile == 8, "AVX2 Coulomb block assumes two 4-lane halves");
      const __m256d vxix = _mm256_set1_pd(xi.x);
      const __m256d vxiy = _mm256_set1_pd(xi.y);
      const __m256d vxiz = _mm256_set1_pd(xi.z);
      const __m256d vkqi = _mm256_set1_pd(kqi);
      const __m256d vzero = _mm256_setzero_pd();
      // [fi.x, fi.y] accumulator: one addpd per pair runs both serial
      // chains, and each lane folds in exactly the scalar order.  fi.x/fi.y
      // stay zero until the chain is folded out below, so the lanes ARE the
      // scalar chains, not partial sums glued on.  fi.z and pe accumulate
      // as plain scalars — four independent 4-cycle chains either way.
      __m128d fixy = _mm_setzero_pd();
      for (; cj + kLjTile <= n_charged; cj += kLjTile) {
        for (int t = 0; t < kLjTile; ++t) {
          mem.read_pos(charged[static_cast<std::size_t>(cj + t)]);
          mem.read_meta(charged[static_cast<std::size_t>(cj + t)]);
        }
        // a_xy holds per-pair [fx, fy] interleaved so the scatter can load,
        // subtract and store fj.x/fj.y with single 128-bit ops — the store
        // port is this loop's tightest resource.
        double a_xy[2 * kLjTile], a_fz[kLjTile], a_e[kLjTile];
        bool ok = true;
        for (int h = 0; h < 2; ++h) {
          const int o = cj + 4 * h;
          const __m256d dx = _mm256_sub_pd(vxix, _mm256_loadu_pd(px + o));
          const __m256d dy = _mm256_sub_pd(vxiy, _mm256_loadu_pd(py + o));
          const __m256d dz = _mm256_sub_pd(vxiz, _mm256_loadu_pd(pz + o));
          const __m256d r2 = _mm256_add_pd(
              _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
              _mm256_mul_pd(dz, dz));
          ok &= _mm256_movemask_pd(_mm256_cmp_pd(r2, vzero, _CMP_GT_OQ)) == 0xF;
          const __m256d r = _mm256_sqrt_pd(r2);
          const __m256d e =
              _mm256_div_pd(_mm256_mul_pd(vkqi, _mm256_loadu_pd(pq + o)), r);
          const __m256d fs = _mm256_div_pd(e, r2);
          const __m256d fx = _mm256_mul_pd(dx, fs);
          const __m256d fy = _mm256_mul_pd(dy, fs);
          // Interleave to [fx0,fy0,fx1,fy1 | fx2,fy2,fx3,fy3].
          const __m256d u0 = _mm256_unpacklo_pd(fx, fy);
          const __m256d u1 = _mm256_unpackhi_pd(fx, fy);
          _mm256_storeu_pd(a_xy + 8 * h, _mm256_permute2f128_pd(u0, u1, 0x20));
          _mm256_storeu_pd(a_xy + 8 * h + 4, _mm256_permute2f128_pd(u0, u1, 0x31));
          _mm256_storeu_pd(a_fz + 4 * h, _mm256_mul_pd(dz, fs));
          _mm256_storeu_pd(a_e + 4 * h, e);
        }
        // A lane hit r2 == 0 (exact coincidence): stop the vector pipeline
        // here — nothing from this block is committed yet — and let the
        // scalar remainder below redo it with the scalar path's exact skip
        // semantics.  Resuming vector accumulation after a scalar stretch
        // would reassociate the fi/pe chains, so the rest of the row stays
        // scalar; coincident pairs never occur in practice.
        if (!ok) break;
        for (int t = 0; t < kLjTile; ++t) {
          const __m128d f2 = _mm_loadu_pd(a_xy + 2 * t);
          fixy = _mm_add_pd(fixy, f2);
          fi.z += a_fz[t];
          const int j = charged[static_cast<std::size_t>(cj + t)];
          Vec3& fj = buf.force(worker, j);
          _mm_storeu_pd(&fj.x, _mm_sub_pd(_mm_loadu_pd(&fj.x), f2));
          fj.z -= a_fz[t];
          mem.write_private_force(worker, j);
          pe += a_e[t];
          mem.temps(costs.temps_coulomb_pair);
          mem.compute(costs.coulomb_pair);
        }
      }
      // Fold the vector chain out.  fi.x/fi.y are untouched zeros up to
      // here, so lane assignment (not addition) reproduces the scalar
      // accumulation exactly; the scalar remainder continues the fold for
      // the row tail and any coincident block.
      {
        alignas(16) double lanes[2];
        _mm_store_pd(lanes, fixy);
        fi.x = lanes[0];
        fi.y = lanes[1];
      }
#else
      // Guarded scalar fallback: the same block structure in plain C++.
      // Bit-identical to the AVX2 path (and to the scalar kernel) because
      // every expression keeps the same association.
      double bdx[kLjTile], bdy[kLjTile], bdz[kLjTile], br2[kLjTile];
      double bfs[kLjTile], be[kLjTile];
      for (; cj + kLjTile <= n_charged; cj += kLjTile) {
        for (int t = 0; t < kLjTile; ++t) {
          mem.read_pos(charged[static_cast<std::size_t>(cj + t)]);
          mem.read_meta(charged[static_cast<std::size_t>(cj + t)]);
          const double dx = xi.x - px[cj + t];
          const double dy = xi.y - py[cj + t];
          const double dz = xi.z - pz[cj + t];
          bdx[t] = dx;
          bdy[t] = dy;
          bdz[t] = dz;
          br2[t] = dx * dx + dy * dy + dz * dz;
        }
        double min_r2 = br2[0];
        for (int t = 1; t < kLjTile; ++t) min_r2 = std::min(min_r2, br2[t]);
        if (min_r2 > 0.0) {
          for (int t = 0; t < kLjTile; ++t) {
            const double r = std::sqrt(br2[t]);
            const double e = kqi * pq[cj + t] / r;
            be[t] = e;
            bfs[t] = e / br2[t];
          }
          for (int t = 0; t < kLjTile; ++t) {
            const double fx = bdx[t] * bfs[t];
            const double fy = bdy[t] * bfs[t];
            const double fz = bdz[t] * bfs[t];
            fi.x += fx;
            fi.y += fy;
            fi.z += fz;
            const int j = charged[static_cast<std::size_t>(cj + t)];
            Vec3& fj = buf.force(worker, j);
            fj.x -= fx;
            fj.y -= fy;
            fj.z -= fz;
            mem.write_private_force(worker, j);
            pe += be[t];
            mem.temps(costs.temps_coulomb_pair);
            mem.compute(costs.coulomb_pair);
          }
        } else {
          for (int t = 0; t < kLjTile; ++t) {
            if (br2[t] <= 0.0) continue;
            const double r = std::sqrt(br2[t]);
            const double e = kqi * pq[cj + t] / r;
            const double fs = e / br2[t];
            const double fx = bdx[t] * fs;
            const double fy = bdy[t] * fs;
            const double fz = bdz[t] * fs;
            fi.x += fx;
            fi.y += fy;
            fi.z += fz;
            const int j = charged[static_cast<std::size_t>(cj + t)];
            Vec3& fj = buf.force(worker, j);
            fj.x -= fx;
            fj.y -= fy;
            fj.z -= fz;
            mem.write_private_force(worker, j);
            pe += e;
            mem.temps(costs.temps_coulomb_pair);
            mem.compute(costs.coulomb_pair);
          }
        }
      }
#endif
      // Row tail (< kLjTile pairs): the scalar body against the packed
      // arrays.
      for (; cj < n_charged; ++cj) {
        const int j = charged[static_cast<std::size_t>(cj)];
        mem.read_pos(j);
        mem.read_meta(j);
        const double dx = xi.x - px[cj];
        const double dy = xi.y - py[cj];
        const double dz = xi.z - pz[cj];
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 <= 0.0) continue;
        const double r = std::sqrt(r2);
        const double e = kqi * pq[cj] / r;
        const double fs = e / r2;
        const double fx = dx * fs;
        const double fy = dy * fs;
        const double fz = dz * fs;
        fi.x += fx;
        fi.y += fy;
        fi.z += fz;
        Vec3& fj = buf.force(worker, j);
        fj.x -= fx;
        fj.y -= fy;
        fj.z -= fz;
        mem.write_private_force(worker, j);
        pe += e;
        mem.temps(costs.temps_coulomb_pair);
        mem.compute(costs.coulomb_pair);
      }
    }

    buf.force(worker, i) += fi;
    buf.add_pe(worker, pe);
    mem.write_private_force(worker, i);
  }
}

// ---------------------------------------------------------------------------
// Phase 4 (continued): bonded forces, iterated in bond-list order with
// indirect indexing into the atom array (Section II-B).
// ---------------------------------------------------------------------------
template <typename Mem>
void radial_bond_chunk(const MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                       int worker, int bbegin, int bend, Mem& mem) {
  const auto& pos = sys.positions();
  const auto& bonds = sys.radial_bonds();
  for (int b = bbegin; b < bend; ++b) {
    const RadialBond& bond = bonds[static_cast<std::size_t>(b)];
    mem.read_pos(bond.a);
    mem.read_pos(bond.b);
    mem.read_meta(bond.a);
    mem.read_meta(bond.b);
    const Vec3 dr = pos[static_cast<std::size_t>(bond.a)] - pos[static_cast<std::size_t>(bond.b)];
    const double r = dr.norm();
    if (r <= 1e-12) continue;
    const double stretch = r - bond.r0;
    const Vec3 f = dr * (-bond.k * stretch / r);
    buf.force(worker, bond.a) += f;
    buf.force(worker, bond.b) -= f;
    buf.add_pe(worker, 0.5 * bond.k * stretch * stretch);
    mem.write_private_force(worker, bond.a);
    mem.write_private_force(worker, bond.b);
    mem.temps(costs.temps_radial_bond);
    mem.compute(costs.radial_bond);
  }
}

template <typename Mem>
void angular_bond_chunk(const MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                        int worker, int bbegin, int bend, Mem& mem) {
  const auto& pos = sys.positions();
  const auto& bonds = sys.angular_bonds();
  for (int b = bbegin; b < bend; ++b) {
    const AngularBond& bond = bonds[static_cast<std::size_t>(b)];
    mem.read_pos(bond.a);
    mem.read_pos(bond.b);
    mem.read_pos(bond.c);
    mem.read_meta(bond.b);
    const Vec3 d1 = pos[static_cast<std::size_t>(bond.a)] - pos[static_cast<std::size_t>(bond.b)];
    const Vec3 d2 = pos[static_cast<std::size_t>(bond.c)] - pos[static_cast<std::size_t>(bond.b)];
    const double r1 = d1.norm();
    const double r2 = d2.norm();
    if (r1 <= 1e-12 || r2 <= 1e-12) continue;
    double cos_t = dot(d1, d2) / (r1 * r2);
    cos_t = std::min(1.0, std::max(-1.0, cos_t));
    const double theta = std::acos(cos_t);
    const double sin_t = std::max(1e-8, std::sqrt(1.0 - cos_t * cos_t));
    const double dv = bond.k * (theta - bond.theta0);
    // F_a = (dV/dθ / sinθ) ∇_a cosθ ; ∇_a cosθ = (d2/r2 − cosθ d1/r1)/r1.
    const double coef = dv / sin_t;
    const Vec3 fa = (d2 / r2 - d1 * (cos_t / r1)) * (coef / r1);
    const Vec3 fc = (d1 / r1 - d2 * (cos_t / r2)) * (coef / r2);
    buf.force(worker, bond.a) += fa;
    buf.force(worker, bond.c) += fc;
    buf.force(worker, bond.b) -= fa + fc;
    buf.add_pe(worker, 0.5 * bond.k * (theta - bond.theta0) * (theta - bond.theta0));
    mem.write_private_force(worker, bond.a);
    mem.write_private_force(worker, bond.b);
    mem.write_private_force(worker, bond.c);
    mem.temps(costs.temps_angular_bond);
    mem.compute(costs.angular_bond);
  }
}

template <typename Mem>
void torsion_bond_chunk(const MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                        int worker, int bbegin, int bend, Mem& mem) {
  const auto& pos = sys.positions();
  const auto& bonds = sys.torsion_bonds();
  for (int t = bbegin; t < bend; ++t) {
    const TorsionBond& bond = bonds[static_cast<std::size_t>(t)];
    mem.read_pos(bond.a);
    mem.read_pos(bond.b);
    mem.read_pos(bond.c);
    mem.read_pos(bond.d);
    const Vec3 b1 = pos[static_cast<std::size_t>(bond.b)] - pos[static_cast<std::size_t>(bond.a)];
    const Vec3 b2 = pos[static_cast<std::size_t>(bond.c)] - pos[static_cast<std::size_t>(bond.b)];
    const Vec3 b3 = pos[static_cast<std::size_t>(bond.d)] - pos[static_cast<std::size_t>(bond.c)];
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double n1sq = n1.norm2();
    const double n2sq = n2.norm2();
    const double b2len = b2.norm();
    // The dihedral is undefined (and its force singular, ~1/|n|²) when
    // either atom triple is near-collinear; skip such geometries as real MD
    // codes do.  The threshold is relative: sin² of the bend angle ≳ 1e-3.
    if (b2len <= 1e-12 || n1sq <= 1e-3 * b1.norm2() * b2.norm2() ||
        n2sq <= 1e-3 * b2.norm2() * b3.norm2()) {
      continue;
    }
    const double phi = std::atan2(dot(cross(n1, n2), b2) / b2len, dot(n1, n2));
    const double arg = bond.n * phi - bond.phi0;
    const double dvdphi = -bond.k * bond.n * std::sin(arg);
    // ∂φ/∂r_a = −(b2len / |n1|²) n1 ;  ∂φ/∂r_d = (b2len / |n2|²) n2.
    const Vec3 fa = n1 * (dvdphi * b2len / n1sq);
    const Vec3 fd = n2 * (-dvdphi * b2len / n2sq);
    // Blondel–Karplus chain rule: ∇_bφ = (−p−1)∇_aφ + q∇_dφ with
    // p = (b1·b2)/|b2|², q = (b3·b2)/|b2|² (validated against numerical
    // gradients in forces_test).
    const double p = dot(b1, b2) / (b2len * b2len);
    const double q = dot(b3, b2) / (b2len * b2len);
    const Vec3 fb = fa * (-p - 1.0) + fd * q;
    const Vec3 fc = -(fa + fb + fd);
    buf.force(worker, bond.a) += fa;
    buf.force(worker, bond.b) += fb;
    buf.force(worker, bond.c) += fc;
    buf.force(worker, bond.d) += fd;
    buf.add_pe(worker, bond.k * (1.0 + std::cos(arg)));
    mem.write_private_force(worker, bond.a);
    mem.write_private_force(worker, bond.b);
    mem.write_private_force(worker, bond.c);
    mem.write_private_force(worker, bond.d);
    mem.temps(costs.temps_torsion_bond);
    mem.compute(costs.torsion_bond);
  }
}

// ---------------------------------------------------------------------------
// Phase 5: reduction across the privatized force arrays; the summed force
// becomes the new acceleration (and each private copy is zeroed for the next
// step).
//
// The dense variant is the paper's O(n_atoms x n_slots) sweep.  The sparse
// variant consults the per-slot touched-block marks and sums only slots that
// actually scattered into the block containing atom i: a skipped entry is
// exactly +0.0 (never written since the last reduction), and x + (+0.0) is a
// bitwise no-op for every value the accumulator can hold here, so both
// variants produce bit-identical accelerations.
// ---------------------------------------------------------------------------
template <typename Mem>
void reduce_chunk_dense(MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                        int begin, int end, Mem& mem) {
  auto& acc = sys.accelerations();
  const int workers = buf.n_workers();
  for (int i = begin; i < end; ++i) {
    Vec3 total{};
    for (int w = 0; w < workers; ++w) {
      mem.read_private_force(w, i);
      total += buf.force_raw(w, i);
      buf.force_raw(w, i) = Vec3{};
      mem.write_private_force(w, i);
    }
    acc[static_cast<std::size_t>(i)] = total * sys.inv_mass(i);
    mem.write_acc(i);
    mem.compute(costs.reduce_atom_per_worker * workers);
  }
}

template <typename Mem>
void reduce_chunk_sparse(MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf,
                         int begin, int end, Mem& mem) {
  auto& acc = sys.accelerations();
  const int workers = buf.n_workers();
  // Touched-slot lists are per block, not per atom: one bitmap scan covers
  // kBlockAtoms atoms.  Slot counts beyond the list capacity fall back to
  // the dense sweep (the engine never exceeds it; direct kernel users might).
  constexpr int kMaxSlots = 256;
  if (workers > kMaxSlots) {
    reduce_chunk_dense(sys, costs, buf, begin, end, mem);
    return;
  }
  int touched[kMaxSlots];
  int i = begin;
  while (i < end) {
    const int block = i >> ForceBuffers::kBlockShift;
    const int block_end = std::min(end, (block + 1) << ForceBuffers::kBlockShift);
    int n_touched = 0;
    for (int w = 0; w < workers; ++w) {
      if (buf.block_touched(w, block)) touched[n_touched++] = w;
    }
    for (; i < block_end; ++i) {
      Vec3 total{};
      for (int k = 0; k < n_touched; ++k) {
        const int w = touched[k];
        mem.read_private_force(w, i);
        total += buf.force_raw(w, i);
        buf.force_raw(w, i) = Vec3{};
        mem.write_private_force(w, i);
      }
      acc[static_cast<std::size_t>(i)] = total * sys.inv_mass(i);
      mem.write_acc(i);
      mem.compute(costs.reduce_atom_per_worker * n_touched);
    }
  }
}

template <typename Mem>
void reduce_chunk(MolecularSystem& sys, const CostTable& costs, ForceBuffers& buf, int begin,
                  int end, Mem& mem, bool sparse = false) {
  if (sparse) {
    reduce_chunk_sparse(sys, costs, buf, begin, end, mem);
  } else {
    reduce_chunk_dense(sys, costs, buf, begin, end, mem);
  }
}

// ---------------------------------------------------------------------------
// Phase 6: corrector — the second half velocity kick with the new
// accelerations; tallies kinetic energy for the observables.
// ---------------------------------------------------------------------------
template <typename Mem>
void corrector_chunk(MolecularSystem& sys, double dt, const CostTable& costs, ForceBuffers& buf,
                     int worker, int begin, int end, Mem& mem) {
  auto& vel = sys.velocities();
  const auto& acc = sys.accelerations();
  for (int i = begin; i < end; ++i) {
    mem.read_meta(i);
    if (!sys.movable(i)) continue;
    mem.read_vel(i);
    mem.read_acc(i);
    Vec3& v = vel[static_cast<std::size_t>(i)];
    v += acc[static_cast<std::size_t>(i)] * (0.5 * dt);
    buf.add_ke(worker, 0.5 * sys.mass(i) * v.norm2());
    mem.write_vel(i);
    mem.temps(costs.temps_corrector_atom);
    mem.compute(costs.corrector_atom);
  }
}

}  // namespace mwx::md
