#include "md/layout.hpp"

#include <algorithm>

namespace mwx::md {

const char* to_string(Layout l) {
  switch (l) {
    case Layout::JavaObjects: return "java-objects";
    case Layout::ReorderedObjects: return "reordered-objects";
    case Layout::PackedSoA: return "packed-soa";
  }
  return "?";
}

HeapModel::HeapModel(HeapConfig config, int n_atoms, int nbr_entries_per_atom)
    : config_(config),
      n_atoms_(static_cast<std::uint64_t>(n_atoms)),
      nbr_entries_per_atom_(nbr_entries_per_atom) {
  require(n_atoms > 0, "heap model needs at least one atom");
  require(nbr_entries_per_atom > 0, "neighbor capacity must be positive");

  // Region plan (addresses are model-space, 4 KiB aligned regions):
  //   [objects][SoA arrays][neighbor lists][cell lists][private forces][young]
  stride_ = config_.atom_object_bytes + 4ull * config_.vec3_object_bytes;
  const std::uint64_t page = 4096;
  auto align = [&](std::uint64_t v) { return (v + page - 1) / page * page; };

  object_base_ = page;  // keep 0 invalid
  const std::uint64_t objects_end = object_base_ + n_atoms_ * stride_;
  soa_base_ = align(objects_end);
  const std::uint64_t soa_end = soa_base_ + n_atoms_ * 24 * 5;  // 5 Vec3-ish arrays
  nbr_base_ = align(soa_end);
  nbr_bytes_ = n_atoms_ * static_cast<std::uint64_t>(nbr_entries_per_atom_) * 4;
  const std::uint64_t nbr_end = nbr_base_ + nbr_bytes_;
  cell_base_ = align(nbr_end);
  const std::uint64_t cell_end = cell_base_ + n_atoms_ * 8 + (1u << 16);
  priv_base_ = align(cell_end);
  // Up to 64 workers' private force arrays.
  const std::uint64_t priv_end = priv_base_ + 64ull * n_atoms_ * 24;
  young_base_ = align(priv_end);

  // The young (temporary) region: a JVM-like fraction of the modelled heap,
  // at least 1 MiB so the model stays sane for tiny heaps.
  const auto young = static_cast<std::uint64_t>(config_.young_fraction *
                                                static_cast<double>(config_.heap_bytes));
  young_bytes_ = std::max<std::uint64_t>(young, 1ull << 20);

  slot_.resize(static_cast<std::size_t>(n_atoms_));
  for (std::uint32_t i = 0; i < n_atoms_; ++i) slot_[i] = i;  // creation order
}

std::uint64_t HeapModel::field_addr(int i, int field) const {
  MWX_ASSERT(i >= 0 && static_cast<std::uint64_t>(i) < n_atoms_);
  if (config_.layout == Layout::PackedSoA) {
    return soa_base_ + (static_cast<std::uint64_t>(field) * n_atoms_ +
                        static_cast<std::uint64_t>(i)) *
                           24;
  }
  const std::uint64_t base =
      object_base_ + static_cast<std::uint64_t>(slot_[static_cast<std::size_t>(i)]) * stride_;
  return base + config_.atom_object_bytes +
         static_cast<std::uint64_t>(field) * config_.vec3_object_bytes;
}

std::uint64_t HeapModel::meta_addr(int i) const {
  MWX_ASSERT(i >= 0 && static_cast<std::uint64_t>(i) < n_atoms_);
  if (config_.layout == Layout::PackedSoA) {
    // Scalars live in a packed fifth array lane.
    return soa_base_ + (4ull * n_atoms_ + static_cast<std::uint64_t>(i)) * 24;
  }
  return object_base_ +
         static_cast<std::uint64_t>(slot_[static_cast<std::size_t>(i)]) * stride_;
}

std::uint64_t HeapModel::alloc_temp() {
  ++temp_allocations_;
  const std::uint64_t addr = young_base_ + young_bump_;
  young_bump_ += config_.vec3_object_bytes;
  if (young_bump_ + config_.vec3_object_bytes > young_bytes_) {
    young_bump_ = 0;
    ++gc_count_;
  }
  return addr;
}

long long HeapModel::take_new_gcs() {
  const long long fresh = gc_count_ - reported_gcs_;
  reported_gcs_ = gc_count_;
  return fresh;
}

void HeapModel::configure_numa(int n_domains, int n_workers, bool first_touch) {
  require(n_domains > 0 && n_workers > 0, "NUMA directory needs domains and workers");
  numa_domains_ = n_domains;
  numa_workers_ = n_workers;
  numa_first_touch_ = first_touch;
}

int HeapModel::domain_of(std::uint64_t addr) const {
  if (numa_domains_ == 0) return -1;
  if (numa_domains_ == 1 || !numa_first_touch_) {
    // Single-home mode: the master touched every page at initialization, so
    // the whole modelled heap lives on domain 0.
    return 0;
  }
  const auto nd = static_cast<std::uint64_t>(numa_domains_);
  if (addr >= priv_base_ && addr < priv_base_ + 64ull * n_atoms_ * 24) {
    // Private force arrays: homed with the worker that seeds the slot's
    // chains (slot % n_workers, workers block-mapped over domains).
    const std::uint64_t slot = (addr - priv_base_) / (n_atoms_ * 24);
    const std::uint64_t worker = slot % static_cast<std::uint64_t>(numa_workers_);
    return static_cast<int>(worker * nd / static_cast<std::uint64_t>(numa_workers_));
  }
  if (addr >= soa_base_ && addr < soa_base_ + n_atoms_ * 24 * 5) {
    // SoA lanes: atom i's entries are written by the worker owning the
    // contiguous 1/N block containing i.
    const std::uint64_t atom = ((addr - soa_base_) / 24) % n_atoms_;
    return static_cast<int>(atom * nd / n_atoms_);
  }
  if (addr >= object_base_ && addr < object_base_ + n_atoms_ * stride_) {
    // Object clusters: same block map, by allocation rank.
    const std::uint64_t rank = (addr - object_base_) / stride_;
    return static_cast<int>(rank * nd / n_atoms_);
  }
  if (addr >= nbr_base_ && addr < nbr_base_ + nbr_bytes_) {
    // CSR neighbor rows are filled by the worker that owns the row's atom;
    // rows are laid out in atom order, so a proportional block map over the
    // region approximates the per-row first touch.
    return static_cast<int>((addr - nbr_base_) * nd / nbr_bytes_);
  }
  // Shared structures (cell lists, young region, anything else): written by
  // whichever thread got there first — modelled as page interleave.
  return static_cast<int>((addr / 4096) % nd);
}

void HeapModel::reorder(const std::vector<int>& new_order) {
  require(new_order.size() == slot_.size(), "permutation size mismatch");
  if (config_.layout != Layout::ReorderedObjects) {
    // JavaObjects: the memory manager ignores the request (the paper's
    // observed behaviour).  PackedSoA: arrays are index-addressed; moving
    // array elements would change physics indices, which reordering of
    // *objects* does not — so it is also a no-op here.
    return;
  }
  for (std::uint32_t rank = 0; rank < new_order.size(); ++rank) {
    const int atom = new_order[rank];
    require(atom >= 0 && static_cast<std::uint64_t>(atom) < n_atoms_, "bad permutation entry");
    slot_[static_cast<std::size_t>(atom)] = rank;
  }
}

void HeapModel::permute_objects(const std::vector<int>& new_order) {
  require(new_order.size() == slot_.size(), "permutation size mismatch");
  // Objects follow their atoms: index k now denotes the atom that was at
  // new_order[k], so it inherits that atom's existing slot.
  std::vector<std::uint32_t> moved(slot_.size());
  for (std::size_t k = 0; k < new_order.size(); ++k) {
    const int old = new_order[k];
    require(old >= 0 && static_cast<std::uint64_t>(old) < n_atoms_, "bad permutation entry");
    moved[k] = slot_[static_cast<std::size_t>(old)];
  }
  slot_ = std::move(moved);
  if (config_.layout == Layout::ReorderedObjects) {
    // The cooperative memory manager re-lays objects in traversal order.
    for (std::uint32_t i = 0; i < slot_.size(); ++i) slot_[i] = i;
  }
}

}  // namespace mwx::md
