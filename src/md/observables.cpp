#include "md/observables.hpp"

#include <cmath>
#include <ostream>

#include "common/require.hpp"
#include "common/units.hpp"

namespace mwx::md {

double temperature_kelvin(const MolecularSystem& sys) {
  return units::kinetic_to_kelvin(sys.kinetic_energy(), sys.n_movable());
}

std::vector<double> radial_distribution(const MolecularSystem& sys, double r_max, int bins) {
  require(r_max > 0.0 && bins > 0, "rdf needs a positive range and bin count");
  std::vector<double> histogram(static_cast<std::size_t>(bins), 0.0);
  const auto& pos = sys.positions();
  const int n = sys.n_atoms();
  const double dr = r_max / bins;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double r = distance(pos[static_cast<std::size_t>(i)],
                                pos[static_cast<std::size_t>(j)]);
      if (r < r_max) histogram[static_cast<std::size_t>(r / dr)] += 2.0;  // both directions
    }
  }
  // Normalize by the ideal-gas expectation: rho * 4 pi r^2 dr per atom.
  const Vec3 ext = sys.box().extent();
  const double volume = ext.x * ext.y * ext.z;
  const double rho = static_cast<double>(n) / volume;
  std::vector<double> g(static_cast<std::size_t>(bins), 0.0);
  for (int b = 0; b < bins; ++b) {
    const double r_lo = b * dr;
    const double r_hi = r_lo + dr;
    const double shell = 4.0 / 3.0 * 3.14159265358979323846 *
                         (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double expected = rho * shell * n;
    g[static_cast<std::size_t>(b)] =
        expected > 0 ? histogram[static_cast<std::size_t>(b)] / expected : 0.0;
  }
  return g;
}

double mean_squared_displacement(const MolecularSystem& sys,
                                 std::span<const Vec3> reference) {
  require(reference.size() == sys.positions().size(), "reference size mismatch");
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < sys.n_atoms(); ++i) {
    if (!sys.movable(i)) continue;
    sum += (sys.positions()[static_cast<std::size_t>(i)] -
            reference[static_cast<std::size_t>(i)])
               .norm2();
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

void rescale_to_temperature(MolecularSystem& sys, double target_kelvin) {
  require(target_kelvin >= 0.0, "temperature must be non-negative");
  const double current = temperature_kelvin(sys);
  if (current <= 0.0) return;
  const double scale = std::sqrt(target_kelvin / current);
  for (int i = 0; i < sys.n_atoms(); ++i) {
    if (sys.movable(i)) sys.velocities()[static_cast<std::size_t>(i)] *= scale;
  }
}

double berendsen_step(MolecularSystem& sys, double target_kelvin, double dt_fs,
                      double tau_fs) {
  require(tau_fs > 0.0 && dt_fs > 0.0, "coupling times must be positive");
  const double current = temperature_kelvin(sys);
  if (current <= 0.0) return 1.0;
  const double lambda =
      std::sqrt(std::max(0.0, 1.0 + dt_fs / tau_fs * (target_kelvin / current - 1.0)));
  for (int i = 0; i < sys.n_atoms(); ++i) {
    if (sys.movable(i)) sys.velocities()[static_cast<std::size_t>(i)] *= lambda;
  }
  return lambda;
}

void write_xyz_frame(std::ostream& os, const MolecularSystem& sys,
                     const std::string& comment) {
  os << sys.n_atoms() << '\n' << comment << '\n';
  for (int i = 0; i < sys.n_atoms(); ++i) {
    const Vec3& p = sys.positions()[static_cast<std::size_t>(i)];
    os << sys.types().at(sys.type_of(i)).name << ' ' << p.x << ' ' << p.y << ' ' << p.z
       << '\n';
  }
}

}  // namespace mwx::md
