// Arithmetic-cost model of the MD kernels, in core cycles.
//
// The traced execution charges these per-operation costs to the machine
// simulator.  Values approximate an unvectorized JIT-compiled Java kernel on
// a Nehalem-class core (the paper's reference hardware); EXPERIMENTS.md
// records the calibration.  Only ratios matter for the reproduced shapes:
// Coulomb pairs are several times costlier than LJ pairs (sqrt + divides),
// bonded terms costlier still (trig, up to four atoms).
#pragma once

#include <map>
#include <string>

namespace mwx::md {

// --- Phase-tag vocabulary ------------------------------------------------------
// The single source of truth for engine phase-tag names (md::PhaseId values).
// Every artifact emitter (PMU_*, TRACE_*, PLAN_*) embeds this table so
// consumers (tools/mwx-report) never carry their own copy.  Tag 0 is untagged
// pool work; engine.cpp static_asserts the PhaseId enum against these indices.
inline constexpr const char* kPhaseTagNames[] = {
    "untagged",        // 0
    "predictor",       // 1  kPhasePredictor
    "nlist-check",     // 2  kPhaseCheck
    "neighbor-count",  // 3  kPhaseNeighborCount
    "forces",          // 4  kPhaseForces
    "reduce",          // 5  kPhaseReduce
    "corrector",       // 6  kPhaseCorrector
    "overlap",         // 7  kPhaseOverlap
    "bin",             // 8  kPhaseBin
    "nbr-prefix",      // 9  kPhaseNbrPrefix
    "morton-sort",     // 10 kPhaseMortonSort
};
inline constexpr int kNumPhaseTags = sizeof(kPhaseTagNames) / sizeof(kPhaseTagNames[0]);

// Stable name for a tag, or nullptr for tags outside the engine vocabulary
// (consumers fall back to "phase-<tag>").
[[nodiscard]] inline const char* phase_tag_name(int tag) {
  return tag >= 0 && tag < kNumPhaseTags ? kPhaseTagNames[tag] : nullptr;
}

// The table as a map, in the shape the JSON emitters consume.
[[nodiscard]] inline std::map<int, std::string> phase_tag_name_map() {
  std::map<int, std::string> out;
  for (int t = 0; t < kNumPhaseTags; ++t) out.emplace(t, kPhaseTagNames[t]);
  return out;
}

struct CostTable {
  double predictor_atom = 28.0;
  double check_atom = 9.0;
  double bin_atom = 45.0;           // serial linked-cell repopulation
  double nbr_candidate = 11.0;      // distance test against a cell occupant
  double nbr_accept = 7.0;          // appending one neighbor entry
  double nbr_count_store = 4.0;     // storing one atom's CSR row count
  double nbr_prefix_atom = 2.5;     // serial prefix-sum step per atom
  double reorder_atom = 95.0;       // moving one atom's state in a Morton pass
  double lj_pair = 55.0;
  double coulomb_pair = 115.0;
  double radial_bond = 450.0;
  double angular_bond = 800.0;
  double torsion_bond = 1100.0;
  double reduce_atom_per_worker = 7.0;
  double corrector_atom = 22.0;
  double wall_check_atom = 6.0;

  // --- Parallel rebuild pipeline ---------------------------------------------
  // Charged instead of the serial bin/prefix lump sums when
  // EngineConfig::parallel_rebuild is set: the simulator then runs the
  // rebuild as real parallel phases (kPhaseBin / kPhaseNbrPrefix /
  // kPhaseMortonSort), so the modelled serial fraction tracks the native
  // pipeline's instead of the paper's all-serial housekeeping.
  double bin_count_atom = 25.0;    // cell id + per-chunk histogram (parallel)
  double bin_scatter_atom = 20.0;  // stable in-order scatter; count + scatter == bin_atom
  double bin_merge_cell = 6.0;     // per-cell block-prefix merge (parallel over cell blocks)
  double morton_sort_atom = 52.0;  // key build + LSD radix passes, per atom (parallel)
  double scene_format_atom = 900.0;  // formatting one atom record in the chunked serializer
  double rebuild_merge_residue = 260.0;  // serial block-scan anchor, per chunk, per scan

  // Short-lived Vec3 temporaries allocated per operation when the engine is
  // in Java-temporaries mode (Section V-B's convenience class).  The LJ
  // inner loop allocates per pair (the dominant churn); the Coulomb kernel
  // allocates its scratch vectors once per outer atom.
  int temps_lj_pair = 1;
  int temps_nbr_candidate = 2;  // dr vector + boxed distance of the test
  int temps_coulomb_pair = 0;
  int temps_coulomb_outer = 2;
  int temps_radial_bond = 1;
  int temps_angular_bond = 2;
  int temps_torsion_bond = 3;
  int temps_predictor_atom = 1;
  int temps_corrector_atom = 1;
  double temp_alloc_cycles = 14.0;  // bump-pointer allocation + header init
};

}  // namespace mwx::md
