// Morton/Z-order spatial keys and the cell-major reordering pass.
//
// Section V-A's data-packing experiment failed because Java gave the authors
// no handle on object placement.  In C++ we can actually move the data: the
// engine periodically permutes the MolecularSystem's hot arrays so atoms that
// are close in space become close in memory.  The ordering key interleaves
// the bits of each atom's quantized cell coordinate (Z-order), which keeps
// every 2x2x2 block of cells contiguous at every scale — so the pair loop's
// gather of neighbor positions walks a nearly linear address stream instead
// of the creation-order scatter the paper measured.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace mwx::parallel {
class FixedThreadPool;
}  // namespace mwx::parallel

namespace mwx::md {

// Interleaves the low 21 bits of x, y, z into a 63-bit Z-order key
// (x owns bit 0, y bit 1, z bit 2 of each triple).
[[nodiscard]] std::uint64_t morton3(std::uint32_t x, std::uint32_t y, std::uint32_t z);

// Cell-major ordering of `positions` inside the box [lo, hi]: each atom is
// quantized to a cell of width >= cell_width per axis (the same floor-based
// cell count CellGrid uses, so "same Morton cell" implies "same grid cell"),
// keyed by morton3 of its cell coordinate, and stably sorted.  Returns
// new_order with new_order[k] = old index of the atom placed k-th.  The sort
// is stable, so atoms sharing a cell keep their relative order and the result
// is deterministic for a given input regardless of worker count.
[[nodiscard]] std::vector<int> morton_order(std::span<const Vec3> positions, const Vec3& lo,
                                            const Vec3& hi, double cell_width);

// Parallel variant: the key build fans out over index-contiguous chunks
// (identical expressions — identical key bits) and std::stable_sort is
// replaced by a stable LSD radix sort on the packed 64-bit keys: per-chunk
// digit histograms, one digit-major/chunk-minor exclusive scan, and a stable
// per-chunk scatter per 8-bit pass.  A stable sort's permutation is unique,
// so the result equals the serial overload's std::stable_sort output exactly,
// for any pool width or chunk count.  Null pool falls back to the serial
// reference.
[[nodiscard]] std::vector<int> morton_order(std::span<const Vec3> positions, const Vec3& lo,
                                            const Vec3& hi, double cell_width,
                                            parallel::FixedThreadPool* pool, int n_chunks);

// Inverse permutation: inverse[new_order[k]] = k.  Validates that new_order
// is a permutation of [0, n).
[[nodiscard]] std::vector<int> invert_permutation(const std::vector<int>& new_order);

}  // namespace mwx::md
