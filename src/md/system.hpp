// MolecularSystem — atoms, species, bonds and the simulation box.
//
// Atom state is stored SoA for the C++ engine; how the *modelled Java heap*
// lays the same state out is a separate concern (md/layout.hpp), so the
// physics is identical across layout experiments.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/page_vec.hpp"
#include "common/require.hpp"
#include "common/vec3.hpp"
#include "md/types.hpp"

namespace mwx::md {

// Axis-aligned box with reflective walls (Molecular Workbench confines its
// scene to a box; we reflect rather than wrap).
struct Box {
  Vec3 lo{0, 0, 0};
  Vec3 hi{10, 10, 10};
  [[nodiscard]] Vec3 extent() const { return hi - lo; }
};

class MolecularSystem {
 public:
  MolecularSystem(AtomTypeTable types, Box box) : types_(std::move(types)), box_(box) {}

  // Appends an atom; returns its index.  `movable=false` marks fixed
  // scaffolding like nanocar's gold platform (excluded from integration and
  // from platform-platform force pairs).
  int add_atom(int type, const Vec3& position, const Vec3& velocity = {}, double charge = 0.0,
               bool movable = true);

  void add_radial_bond(RadialBond b);
  void add_angular_bond(AngularBond b);
  void add_torsion_bond(TorsionBond b);

  [[nodiscard]] int n_atoms() const { return static_cast<int>(pos_.size()); }
  [[nodiscard]] int n_charged() const { return static_cast<int>(charged_.size()); }
  [[nodiscard]] int n_movable() const { return n_movable_; }

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] const AtomTypeTable& types() const { return types_; }

  // Hot per-atom state lives in PageVec so a NUMA placement pass can re-home
  // the backing pages by first touch (see Engine::place_first_touch).
  [[nodiscard]] const PageVec<Vec3>& positions() const { return pos_; }
  [[nodiscard]] PageVec<Vec3>& positions() { return pos_; }
  [[nodiscard]] const PageVec<Vec3>& velocities() const { return vel_; }
  [[nodiscard]] PageVec<Vec3>& velocities() { return vel_; }
  [[nodiscard]] const PageVec<Vec3>& accelerations() const { return acc_; }
  [[nodiscard]] PageVec<Vec3>& accelerations() { return acc_; }

  [[nodiscard]] double mass(int i) const { return mass_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] double inv_mass(int i) const { return inv_mass_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] double charge(int i) const { return charge_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int type_of(int i) const { return type_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] bool movable(int i) const { return movable_[static_cast<std::size_t>(i)] != 0; }

  // Indices of charged atoms, ascending — the Coulomb loop's working list.
  [[nodiscard]] const std::vector<int>& charged_indices() const { return charged_; }

  // --- Stable identity across reordering -------------------------------------
  // Every atom keeps the external ID it was created with (its creation
  // index), no matter how often permute() shuffles the storage order.  Scene
  // I/O and observables that must survive a reorder address atoms by
  // external ID; the hot loops keep using raw indices.
  [[nodiscard]] int external_id(int i) const { return ext_id_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int index_of_external(int ext) const {
    return index_of_ext_[static_cast<std::size_t>(ext)];
  }

  // Applies a storage-order permutation: new_order[k] = current index of the
  // atom to be placed k-th.  All per-atom arrays move together, bond records
  // and the charged list are remapped, and exclusions are rebuilt, so the
  // physics is invariant — only the memory order (and thus every raw index)
  // changes.  Throws if new_order is not a permutation of [0, n_atoms).
  void permute(const std::vector<int>& new_order);

  [[nodiscard]] const std::vector<RadialBond>& radial_bonds() const { return radial_; }
  [[nodiscard]] const std::vector<AngularBond>& angular_bonds() const { return angular_; }
  [[nodiscard]] const std::vector<TorsionBond>& torsion_bonds() const { return torsion_; }
  [[nodiscard]] int n_bonds_total() const {
    return static_cast<int>(radial_.size() + angular_.size() + torsion_.size());
  }

  // True when (i, j) are directly bonded and therefore excluded from the
  // non-bonded LJ interaction (standard MD exclusion rule; keeps bonded
  // systems like nanocar genuinely bond-dominated).
  [[nodiscard]] bool excluded(int i, int j) const {
    return !exclusions_.empty() && exclusions_.count(pair_key(i, j)) > 0;
  }

  // Combined LJ parameters for a type pair (Lorentz–Berthelot mixing).
  [[nodiscard]] double lj_epsilon(int ti, int tj) const;
  [[nodiscard]] double lj_sigma(int ti, int tj) const;

  // Total momentum (movable atoms) — a conserved quantity in a wall-free run.
  [[nodiscard]] Vec3 total_momentum() const;
  [[nodiscard]] double kinetic_energy() const;

 private:
  static std::uint64_t pair_key(int i, int j) {
    const std::uint64_t lo = static_cast<std::uint64_t>(i < j ? i : j);
    const std::uint64_t hi = static_cast<std::uint64_t>(i < j ? j : i);
    return (lo << 32) | hi;
  }

  AtomTypeTable types_;
  Box box_;
  std::unordered_set<std::uint64_t> exclusions_;
  PageVec<Vec3> pos_, vel_, acc_;
  std::vector<double> mass_, inv_mass_, charge_;
  std::vector<int> type_;
  std::vector<char> movable_;
  std::vector<int> charged_;
  std::vector<int> ext_id_;        // ext_id_[index] = creation index
  std::vector<int> index_of_ext_;  // inverse of ext_id_
  std::vector<RadialBond> radial_;
  std::vector<AngularBond> angular_;
  std::vector<TorsionBond> torsion_;
  int n_movable_ = 0;
};

}  // namespace mwx::md
