// Verlet neighbor list with a displacement-triggered rebuild.
//
// Half-list convention per the paper (Section II-B): a pair (i, j) is stored
// on the *lower-indexed* atom, which computes the force once and stores it
// for both — the source of the index-correlated load variation the paper
// analyzes.  The list radius is cutoff + skin; the list is invalidated when
// any atom has moved more than skin/2 in any single dimension since the last
// rebuild ("when any atom moves in any dimension by more than a threshold
// value") — measured as Euclidean displacement, since a diagonal drift closes
// the skin gap just as surely as an axis-aligned one.
//
// Storage is compacted CSR.  The original fixed-capacity design (384 slots
// per atom, modelled on MW's int[n][cap] table) held ~40 live entries per
// atom at the benchmark densities — >10x padding that both wasted footprint
// and broke the phase-4 traversal into strided islands.  A rebuild now runs
// a three-step protocol that concurrent chunks can execute without locks:
//
//   1. count   — each chunk scans its atoms' candidate cells and records the
//                accepted-neighbor count via set_count(i, c);
//   2. prefix  — finalize_offsets() (serial, O(n_atoms)) turns the counts
//                into row offsets and sizes the entry array exactly;
//   3. fill    — each chunk re-scans and appends via add_neighbor(i, j).
//
// Per-atom counts depend only on the snapshot of positions and the cell
// contents, never on chunk boundaries, so the resulting offsets — and the
// fill, which writes each row in the same cell-scan order the count used —
// are byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/page_vec.hpp"
#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::parallel {
class FixedThreadPool;
}  // namespace mwx::parallel

namespace mwx::md {

class NeighborList {
 public:
  NeighborList(int n_atoms, double cutoff, double skin);

  [[nodiscard]] double reach() const { return cutoff_ + skin_; }
  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }
  [[nodiscard]] int n_atoms() const { return static_cast<int>(counts_.size()); }

  // --- Build (count -> prefix -> fill) ---------------------------------------
  // Snapshots reference positions and zeroes all row counts.  Chunks may then
  // count disjoint atoms concurrently via set_count.
  void begin_rebuild(std::span<const Vec3> positions);
  void set_count(int i, int c) {
    MWX_ASSERT(c >= 0);
    counts_[static_cast<std::size_t>(i)] = c;
  }
  // Serial barrier between count and fill: prefix-sums the counts into row
  // offsets, sizes the entry array to the exact total, and resets the fill
  // cursors.  total_entries() is finalized here — O(1) to read ever after.
  // This serial scan is the reference the parallel overload must match.
  void finalize_offsets();
  // Two-level parallel block scan: chunks compute local exclusive prefixes
  // and totals, a tiny serial scan anchors the chunk bases, chunks add their
  // base back (and reset their fill cursors) in a second sweep.  Exact
  // integer arithmetic — offsets_/total_ are identical to the serial scan
  // for any pool width or chunk count.  This removes the O(n_atoms) serial
  // barrier from the overlap schedule (engine.cpp, kPhaseOverlap).
  void finalize_offsets(parallel::FixedThreadPool* pool, int n_chunks);
  void add_neighbor(int i, int j) {
    auto& cur = cursor_[static_cast<std::size_t>(i)];
    require(cur < counts_[static_cast<std::size_t>(i)],
            "neighbor fill exceeded this atom's declared count");
    entries_[offsets_[static_cast<std::size_t>(i)] + static_cast<std::size_t>(cur)] = j;
    ++cur;
  }
  void end_rebuild() { ++rebuild_count_; }

  // --- Query ----------------------------------------------------------------
  [[nodiscard]] const int* begin(int i) const {
    return entries_.data() + offsets_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const int* end(int i) const { return begin(i) + count(i); }
  [[nodiscard]] int count(int i) const { return counts_[static_cast<std::size_t>(i)]; }
  // Global slot index of atom i's k-th neighbor entry (for the layout model).
  // CSR rows are dense, so consecutive entries of consecutive atoms are
  // consecutive slots — the linear stream the simulator now replays.
  [[nodiscard]] std::uint64_t entry_index(int i, int k) const {
    return static_cast<std::uint64_t>(offsets_[static_cast<std::size_t>(i)]) +
           static_cast<std::uint64_t>(k);
  }
  [[nodiscard]] std::size_t total_entries() const { return total_; }

  // True when some atom in [begin, end) has drifted more than skin/2 (by
  // Euclidean distance) since the last rebuild — the per-chunk validity
  // check of phase 2.
  [[nodiscard]] bool chunk_exceeds_skin(std::span<const Vec3> positions, int begin,
                                        int end) const;

  [[nodiscard]] long long rebuild_count() const { return rebuild_count_; }
  [[nodiscard]] bool ever_built() const { return rebuild_count_ > 0; }
  [[nodiscard]] const std::vector<Vec3>& reference_positions() const { return ref_pos_; }

 private:
  double cutoff_;
  double skin_;
  std::vector<int> counts_;
  std::vector<int> cursor_;          // per-row fill position (build only)
  std::vector<std::size_t> offsets_;  // n_atoms + 1 row starts
  // Packed entries.  PageVec + resize_uninitialized keeps freshly grown row
  // storage untouched through the serial prefix step, so the parallel fill
  // pass — each worker writing its own rows — is what first-touches (and
  // thereby NUMA-homes) the pages.
  PageVec<int> entries_;              // exactly total_ packed entries
  std::vector<std::size_t> scan_bases_;  // parallel prefix: per-chunk totals/bases
  std::size_t total_ = 0;
  std::vector<Vec3> ref_pos_;
  long long rebuild_count_ = 0;
};

}  // namespace mwx::md
