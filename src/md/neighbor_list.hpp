// Verlet neighbor list with a displacement-triggered rebuild.
//
// Half-list convention per the paper (Section II-B): a pair (i, j) is stored
// on the *lower-indexed* atom, which computes the force once and stores it
// for both — the source of the index-correlated load variation the paper
// analyzes.  The list radius is cutoff + skin; the list is invalidated when
// any atom has moved more than skin/2 in any single dimension since the last
// rebuild ("when any atom moves in any dimension by more than a threshold
// value") — measured as Euclidean displacement, since a diagonal drift closes
// the skin gap just as surely as an axis-aligned one.
//
// Storage is fixed-capacity slots per atom so concurrent chunks can build
// their atoms' lists independently (the fused phase 3+4 runs in parallel).
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/vec3.hpp"

namespace mwx::md {

class NeighborList {
 public:
  NeighborList(int n_atoms, double cutoff, double skin, int capacity_per_atom = 384);

  [[nodiscard]] double reach() const { return cutoff_ + skin_; }
  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }
  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int n_atoms() const { return static_cast<int>(counts_.size()); }

  // --- Build ----------------------------------------------------------------
  // Snapshots reference positions and clears all per-atom lists.  Chunks may
  // then fill disjoint atoms concurrently via set_neighbors/add_neighbor.
  void begin_rebuild(const std::vector<Vec3>& positions);
  void clear_atom(int i) { counts_[static_cast<std::size_t>(i)] = 0; }
  void add_neighbor(int i, int j) {
    auto& cnt = counts_[static_cast<std::size_t>(i)];
    require(cnt < capacity_, "neighbor capacity exceeded; raise capacity_per_atom");
    entries_[static_cast<std::size_t>(i) * static_cast<std::size_t>(capacity_) +
             static_cast<std::size_t>(cnt)] = j;
    ++cnt;
  }
  void end_rebuild() { ++rebuild_count_; }

  // --- Query ----------------------------------------------------------------
  [[nodiscard]] const int* begin(int i) const {
    return entries_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(capacity_);
  }
  [[nodiscard]] const int* end(int i) const { return begin(i) + count(i); }
  [[nodiscard]] int count(int i) const { return counts_[static_cast<std::size_t>(i)]; }
  // Global slot index of atom i's k-th neighbor entry (for the layout model).
  [[nodiscard]] std::uint64_t entry_index(int i, int k) const {
    return static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(capacity_) +
           static_cast<std::uint64_t>(k);
  }
  [[nodiscard]] std::size_t total_entries() const {
    std::size_t n = 0;
    for (int c : counts_) n += static_cast<std::size_t>(c);
    return n;
  }

  // True when some atom in [begin, end) has drifted more than skin/2 (by
  // Euclidean distance) since the last rebuild — the per-chunk validity
  // check of phase 2.
  [[nodiscard]] bool chunk_exceeds_skin(const std::vector<Vec3>& positions, int begin,
                                        int end) const;

  [[nodiscard]] long long rebuild_count() const { return rebuild_count_; }
  [[nodiscard]] bool ever_built() const { return rebuild_count_ > 0; }
  [[nodiscard]] const std::vector<Vec3>& reference_positions() const { return ref_pos_; }

 private:
  double cutoff_;
  double skin_;
  int capacity_;
  std::vector<int> counts_;
  std::vector<int> entries_;  // n_atoms * capacity slots
  std::vector<Vec3> ref_pos_;
  long long rebuild_count_ = 0;
};

}  // namespace mwx::md
