#include "md/scene_io.hpp"

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>

#include "common/require.hpp"
#include "parallel/chunked.hpp"

namespace mwx::md {

namespace {

// Writes the per-record lines for external IDs [0, n) through `emit`, in
// order.  With a pool, index-contiguous chunks format into private streams
// seeded with os's formatting state (copyfmt: flags, precision, locale) and
// the parts are concatenated in chunk order — each record's bytes depend
// only on that state and the record's own fields, so the concatenation is
// exactly the serial byte stream.  (Every caller has already written header
// lines through os, so there is no pending os.width() to replicate.)
template <typename Emit>
void write_records(std::ostream& os, int n, parallel::FixedThreadPool* pool, int n_chunks,
                   const Emit& emit) {
  if (pool == nullptr || n_chunks <= 1 || n < 2) {
    for (int ext = 0; ext < n; ++ext) emit(os, ext);
    return;
  }
  const int chunks = std::min(n_chunks, n);
  std::vector<std::string> parts(static_cast<std::size_t>(chunks));
  parallel::for_chunks(pool, chunks, n, [&](int k, long long b, long long e) {
    std::ostringstream part;
    part.copyfmt(os);
    for (long long ext = b; ext < e; ++ext) emit(part, static_cast<int>(ext));
    parts[static_cast<std::size_t>(k)] = std::move(part).str();
  });
  for (const std::string& part : parts) {
    os.write(part.data(), static_cast<std::streamsize>(part.size()));
  }
}

void save_scene_body(std::ostream& os, const MolecularSystem& sys,
                     parallel::FixedThreadPool* pool, int n_chunks) {
  os << std::setprecision(17);
  const Box& box = sys.box();
  os << "box " << box.lo.x << ' ' << box.lo.y << ' ' << box.lo.z << ' ' << box.hi.x << ' '
     << box.hi.y << ' ' << box.hi.z << '\n';
  for (int t = 0; t < sys.types().n(); ++t) {
    const AtomType& ty = sys.types().at(t);
    os << "type " << ty.name << ' ' << ty.mass << ' ' << ty.lj_epsilon << ' ' << ty.lj_sigma
       << '\n';
  }
  // Atoms are written in external-ID (creation) order and bonds reference
  // external IDs, so a scene saved after any number of Morton reorders is
  // byte-identical to the same scene saved before them.  load_scene assigns
  // external ID == index, closing the round trip.
  write_records(os, sys.n_atoms(), pool, n_chunks, [&sys](std::ostream& out, int ext) {
    const int i = sys.index_of_external(ext);
    const Vec3& p = sys.positions()[static_cast<std::size_t>(i)];
    const Vec3& v = sys.velocities()[static_cast<std::size_t>(i)];
    out << "atom " << sys.type_of(i) << ' ' << p.x << ' ' << p.y << ' ' << p.z << ' ' << v.x
        << ' ' << v.y << ' ' << v.z << ' ' << sys.charge(i) << ' ' << (sys.movable(i) ? 1 : 0)
        << '\n';
  });
  // Bond records stay serial: the bond lists are tiny next to a 100k–1M-atom
  // record block, and their order is list order, not external-ID order.
  for (const RadialBond& b : sys.radial_bonds()) {
    os << "rbond " << sys.external_id(b.a) << ' ' << sys.external_id(b.b) << ' ' << b.k << ' '
       << b.r0 << '\n';
  }
  for (const AngularBond& b : sys.angular_bonds()) {
    os << "abond " << sys.external_id(b.a) << ' ' << sys.external_id(b.b) << ' '
       << sys.external_id(b.c) << ' ' << b.k << ' ' << b.theta0 << '\n';
  }
  for (const TorsionBond& b : sys.torsion_bonds()) {
    os << "tbond " << sys.external_id(b.a) << ' ' << sys.external_id(b.b) << ' '
       << sys.external_id(b.c) << ' ' << sys.external_id(b.d) << ' ' << b.k << ' ' << b.n
       << ' ' << b.phi0 << '\n';
  }
}

}  // namespace

void save_scene(std::ostream& os, const MolecularSystem& sys) {
  save_scene(os, sys, nullptr, 1);
}

void save_scene(std::ostream& os, const MolecularSystem& sys,
                parallel::FixedThreadPool* pool, int n_chunks) {
  os << "mws 1\n";
  save_scene_body(os, sys, pool, n_chunks);
}

void save_checkpoint_scene(std::ostream& os, const MolecularSystem& sys,
                           std::span<const Vec3> nlist_ref) {
  save_checkpoint_scene(os, sys, nlist_ref, nullptr, 1);
}

void save_checkpoint_scene(std::ostream& os, const MolecularSystem& sys,
                           std::span<const Vec3> nlist_ref,
                           parallel::FixedThreadPool* pool, int n_chunks) {
  require(static_cast<int>(nlist_ref.size()) == sys.n_atoms(),
          "checkpoint needs one neighbor reference position per atom");
  os << "mws 2\n";
  save_scene_body(os, sys, pool, n_chunks);
  // Checkpoint records, external-ID order like every per-atom record above.
  write_records(os, sys.n_atoms(), pool, n_chunks, [&sys](std::ostream& out, int ext) {
    const std::size_t i = static_cast<std::size_t>(sys.index_of_external(ext));
    const Vec3& a = sys.accelerations()[i];
    out << "acc " << a.x << ' ' << a.y << ' ' << a.z << '\n';
  });
  write_records(os, sys.n_atoms(), pool, n_chunks,
                [&sys, nlist_ref](std::ostream& out, int ext) {
    const Vec3& r = nlist_ref[static_cast<std::size_t>(sys.index_of_external(ext))];
    out << "nref " << r.x << ' ' << r.y << ' ' << r.z << '\n';
  });
}

MolecularSystem load_scene(std::istream& is, std::vector<Vec3>* nlist_ref) {
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    throw ContractError("scene line " + std::to_string(line_no) + ": " + why);
  };

  // Header.
  std::optional<Box> box;
  AtomTypeTable types;
  std::optional<MolecularSystem> sys;
  bool header_seen = false;
  int version = 0;
  std::size_t n_acc = 0;
  std::vector<Vec3> refs;

  // Atom records must come after box+types; the system is constructed
  // lazily at the first atom/bond line.
  auto ensure_system = [&]() -> MolecularSystem& {
    if (!sys.has_value()) {
      if (!box.has_value()) fail("atom before box line");
      if (types.n() == 0) fail("atom before any type line");
      sys.emplace(types, *box);
    }
    return *sys;
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    if (kind == "mws") {
      if (!(in >> version) || (version != 1 && version != 2)) {
        fail("unsupported scene version");
      }
      header_seen = true;
    } else if (kind == "acc") {
      if (version != 2) fail("checkpoint record 'acc' in a version-1 scene");
      Vec3 a;
      if (!(in >> a.x >> a.y >> a.z)) fail("malformed acc");
      MolecularSystem& s = ensure_system();
      if (n_acc >= static_cast<std::size_t>(s.n_atoms())) fail("more acc records than atoms");
      s.accelerations()[n_acc++] = a;
    } else if (kind == "nref") {
      if (version != 2) fail("checkpoint record 'nref' in a version-1 scene");
      Vec3 r;
      if (!(in >> r.x >> r.y >> r.z)) fail("malformed nref");
      if (refs.size() >= static_cast<std::size_t>(ensure_system().n_atoms())) {
        fail("more nref records than atoms");
      }
      refs.push_back(r);
    } else if (kind == "box") {
      Box b;
      if (!(in >> b.lo.x >> b.lo.y >> b.lo.z >> b.hi.x >> b.hi.y >> b.hi.z)) {
        fail("malformed box");
      }
      box = b;
    } else if (kind == "type") {
      AtomType t;
      if (!(in >> t.name >> t.mass >> t.lj_epsilon >> t.lj_sigma)) fail("malformed type");
      if (sys.has_value()) fail("type after first atom");
      types.add(std::move(t));
    } else if (kind == "atom") {
      int type_id = 0, movable = 1;
      Vec3 p, v;
      double q = 0.0;
      if (!(in >> type_id >> p.x >> p.y >> p.z >> v.x >> v.y >> v.z >> q >> movable)) {
        fail("malformed atom");
      }
      try {
        ensure_system().add_atom(type_id, p, v, q, movable != 0);
      } catch (const ContractError& e) {
        fail(e.what());
      }
    } else if (kind == "rbond") {
      RadialBond b;
      if (!(in >> b.a >> b.b >> b.k >> b.r0)) fail("malformed rbond");
      try {
        ensure_system().add_radial_bond(b);
      } catch (const ContractError& e) {
        fail(e.what());
      }
    } else if (kind == "abond") {
      AngularBond b;
      if (!(in >> b.a >> b.b >> b.c >> b.k >> b.theta0)) fail("malformed abond");
      try {
        ensure_system().add_angular_bond(b);
      } catch (const ContractError& e) {
        fail(e.what());
      }
    } else if (kind == "tbond") {
      TorsionBond b;
      if (!(in >> b.a >> b.b >> b.c >> b.d >> b.k >> b.n >> b.phi0)) fail("malformed tbond");
      try {
        ensure_system().add_torsion_bond(b);
      } catch (const ContractError& e) {
        fail(e.what());
      }
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!header_seen) {
    line_no = 0;
    fail("missing 'mws 1' header");
  }
  if (!sys.has_value()) {
    line_no = 0;
    fail("scene contains no atoms");
  }
  const auto n_atoms = static_cast<std::size_t>(sys->n_atoms());
  if (n_acc != 0 && n_acc != n_atoms) {
    line_no = 0;
    fail("checkpoint has fewer acc records than atoms");
  }
  if (!refs.empty() && refs.size() != n_atoms) {
    line_no = 0;
    fail("checkpoint has fewer nref records than atoms");
  }
  if (nlist_ref != nullptr) *nlist_ref = std::move(refs);
  return std::move(*sys);
}

void save_scene_file(const std::string& path, const MolecularSystem& sys) {
  std::ofstream out(path);
  require(out.good(), "cannot open scene file for writing: " + path);
  save_scene(out, sys);
  require(out.good(), "failed writing scene file: " + path);
}

MolecularSystem load_scene_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open scene file: " + path);
  return load_scene(in);
}

}  // namespace mwx::md
