// SimulationEngine — the parallel Molecular Workbench timestep driver.
//
// Implements the six-phase structure of Section II-A:
//   1. predictor for each atom,
//   2. neighbor-list validity check,
//   3. (if invalid) linked-cell repopulation + neighbor build — FUSED with
//   4. force computation (LJ over neighbor lists, Coulomb over all charged
//      pairs, bonded terms in bond-list order),
//   5. reduction across the privatized per-worker force arrays,
//   6. corrector.
// Within a phase per-atom work is independent; phases are separated by
// barrier semantics.  Work is split into 1/N contiguous chunks (optionally
// finer) and dispatched through either execution backend:
//
//   * run_native(pool, steps)   — real threads (mwx::parallel), pure physics;
//   * run_simulated(machine, …) — the same physics executed once per step
//     while tracing the heap-layout-dependent access stream, which the
//     machine simulator then schedules and times on a modelled multicore.
//
// Physics is identical across backends and layouts by construction: the
// kernels are shared templates and the layout only affects modelled
// addresses.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "md/cell_grid.hpp"
#include "md/cost_table.hpp"
#include "md/force_buffers.hpp"
#include "md/kernels.hpp"
#include "md/layout.hpp"
#include "md/lj_table.hpp"
#include "md/mem_model.hpp"
#include "md/neighbor_list.hpp"
#include "md/system.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/alloc_tracker.hpp"
#include "perf/event_log.hpp"
#include "perf/monitor.hpp"
#include "perf/native_pmu.hpp"
#include "perf/scoped_timer.hpp"
#include "perf/trace_ring.hpp"
#include "sim/machine.hpp"

namespace mwx::md {

struct EngineConfig {
  int n_threads = 1;
  // Chunks per thread per domain; 1 reproduces the paper's "fraction 1/N"
  // static split, larger values enable dynamic balancing via the shared
  // queue.
  int chunks_per_thread = 1;
  sim::Assignment assignment = sim::Assignment::Static;

  double dt_fs = 2.0;
  double cutoff = 8.0;  // Å
  double skin = 0.9;    // Å
  // Width of the modelled Java int[n][cap] neighbor table (allocation-tracker
  // and heap-region accounting only — the engine itself stores neighbors in a
  // compacted CSR list sized to the actual pair count).  0 (the default)
  // derives the width from the system's measured density: twice the expected
  // half-list row count within the list radius, clamped to [64, 2048].  The
  // old fixed 384 both overstated sparse gases ~10x and would understate a
  // dense bulk crystal; a positive value here forces that width.
  int neighbor_capacity = 0;

  HeapConfig heap;  // layout model for the simulated backend
  TemporariesMode temporaries = TemporariesMode::JavaStyle;
  CostTable costs;

  // Observer-effect experiment knobs (Section IV-A).
  int monitor_updates_per_task = 0;  // JaMON-style synchronized updates
  int instr_calls_per_task = 0;      // VisualVM-style instrumented calls

  // Data-packing experiment (Section V-A): on every neighbor rebuild,
  // request that atom objects be re-laid in cell-traversal order.  Whether
  // anything actually moves depends on heap.layout.  This only nudges the
  // *modelled* addresses — the paper's (failed) Java-side attempt.
  bool reorder_on_rebuild = false;

  // Morton reordering pass (the optimization Java could not express): every
  // reorder_interval-th neighbor rebuild, physically permute the system's
  // SoA arrays into Z-order and re-lay the modelled heap to match, so both
  // the native wall clock and the simulated address stream see the packed
  // layout.  0 disables the pass (the seed-identical default).
  int reorder_interval = 0;

  // Evaluate the LJ inner loop with the tiled (vector-friendly) kernel.
  // Bit-identical to the scalar path by construction; the switch exists for
  // the locality bench's before/after comparison.
  bool tiled_lj = true;

  // Evaluate the Coulomb inner loop with the tiled kernel (same lane-loop
  // discipline, same bit-identity guarantee; bench/raw_speed ablates it).
  bool tiled_coulomb = true;

  // On rebuild steps, run the CSR neighbor-count pass concurrently with the
  // non-LJ force work (Coulomb + bonds) in a single fused phase, leaving only
  // the LJ fill+compute behind the serial prefix sum.  One barrier fewer per
  // rebuild and the count pass's imbalance is padded with independent force
  // work.  Bit-identical to the unoverlapped schedule: count tasks write no
  // force buffers, and each accumulation slot still sees aux-then-LJ in the
  // same serial-chain order.
  bool overlap_rebuild = true;

  // First-touch NUMA placement (native backend only): before the first step,
  // re-home the hot per-atom arrays and each accumulation slot's private
  // force buffer by rewriting them from the worker that owns the
  // corresponding static chunk/slot.  Pure page movement — values are copied
  // bit-for-bit, so trajectories are unchanged.
  bool first_touch = false;

  // Phase 5 sweeps only the (slot, block) pairs the force kernels actually
  // scattered into instead of the full O(n_atoms x n_slots) matrix.
  // Bit-identical to the dense sweep (untouched entries are exactly +0.0);
  // off switch exists for the bench/sparse_reduce.cpp comparison.
  bool sparse_reduction = true;

  // Run the rebuild/housekeeping pipeline — cell binning, the CSR prefix
  // sum, and the Morton sort — on the worker pool instead of serially on the
  // master.  Every parallel path is bit/byte-identical to its serial
  // reference by construction (deterministic counting sort, exact integer
  // block scans, stable LSD radix), so this is purely a wall-clock switch;
  // the off position exists for the serial-vs-parallel scaling ablation.
  // The simulated backend mirrors the choice in the cost model: on, the
  // rebuild is charged as parallel phases (kPhaseBin / kPhaseNbrPrefix /
  // kPhaseMortonSort); off, as the paper's serial master-side lump.
  bool parallel_rebuild = true;
};

// Phase identifiers used as event-log tags.
enum PhaseId : int {
  kPhasePredictor = 1,
  kPhaseCheck = 2,
  kPhaseNeighborCount = 3,  // CSR count pass (rebuild steps, overlap off)
  kPhaseForces = 4,         // fused 3+4
  kPhaseReduce = 5,
  kPhaseCorrector = 6,
  kPhaseOverlap = 7,        // CSR count pass fused with non-LJ forces
  kPhaseBin = 8,            // parallel cell binning (parallel_rebuild)
  kPhaseNbrPrefix = 9,      // parallel CSR block scan (parallel_rebuild)
  kPhaseMortonSort = 10,    // parallel Morton key build + radix sort
};

// The name table in cost_table.hpp is indexed by PhaseId; a new phase must
// extend both in the same change.
static_assert(kPhaseMortonSort == kNumPhaseTags - 1,
              "kPhaseTagNames (cost_table.hpp) out of sync with PhaseId");

class Engine {
 public:
  Engine(MolecularSystem sys, EngineConfig config);

  // --- Execution -------------------------------------------------------------
  // Native threads.  The pool may be any size and may be shared with other
  // engines running concurrently: phase completion is tracked per-phase
  // through a JobHandle (never pool-global), and the energy bits depend only
  // on config.n_threads (which fixes the task decomposition and the
  // accumulation-slot serial chains), never on which — or how many — workers
  // execute them.  config.n_threads == pool.n_threads() reproduces the
  // paper's dedicated-pool setup exactly.
  void run_native(parallel::FixedThreadPool& pool, int n_steps);
  // Single-threaded in-process execution (reference / tests).
  void run_inline(int n_steps);
  // Traced execution timed by the machine simulator.  The machine must have
  // config.n_threads worker threads.
  void run_simulated(sim::Machine& machine, int n_steps);

  // Computes forces/energies at the current positions without integrating
  // (rebuilds the neighbor list unconditionally).  Used by tests/examples.
  void compute_forces_only();

  // Resumes a checkpoint bit-exactly.  Call once, on a freshly constructed
  // engine whose system carries checkpointed positions/velocities/
  // accelerations (an "mws 2" scene), with `ref_positions` the checkpointed
  // neighbor list's reference snapshot in internal index order.  The engine
  // rebuilds its cell grid and CSR neighbor list *from the reference
  // snapshot* — the list is a pure function of those positions, so its
  // contents and row order (hence force-accumulation order) match the
  // checkpointed engine's exactly; rebuilding from the current positions
  // instead would reorder the accumulation and diverge the trajectory —
  // then restores the checkpointed per-atom state, leaving the next step's
  // validity check measuring drift against the original reference points.
  // Requires reorder_interval == 0 (a Morton pass would permute state on a
  // rebuild-count schedule the resumed engine cannot replay).
  void restore_continuation(std::span<const Vec3> ref_positions);

  // --- State & observables -----------------------------------------------------
  [[nodiscard]] const MolecularSystem& system() const { return sys_; }
  [[nodiscard]] MolecularSystem& system() { return sys_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] double potential_energy() const { return last_pe_; }
  [[nodiscard]] double kinetic_energy() const { return last_ke_; }
  [[nodiscard]] double total_energy() const { return last_pe_ + last_ke_; }
  [[nodiscard]] long long steps_done() const { return steps_done_; }
  // Accumulation slots (task chains): n_threads under Static assignment,
  // n_threads * chunks_per_thread (capped at the heap model's 64 private
  // force regions) under the dynamic disciplines.  Each slot owns a
  // privatized force buffer, and the tasks that share a slot execute as one
  // serial chain — which is what keeps every backend/queue-mode combination
  // bit-identical: per-buffer floating-point accumulation order never
  // depends on which worker ran the chain.
  [[nodiscard]] int n_slots() const { return n_slots_; }
  // The neighbor-table width actually used for heap/tracker accounting:
  // config.neighbor_capacity if positive, else the density-derived width.
  [[nodiscard]] int neighbor_capacity() const { return neighbor_capacity_; }
  [[nodiscard]] long long rebuild_count() const { return nlist_.rebuild_count(); }
  [[nodiscard]] const NeighborList& neighbor_list() const { return nlist_; }
  [[nodiscard]] HeapModel& heap() { return heap_; }
  [[nodiscard]] perf::AllocationTracker& tracker() { return tracker_; }
  [[nodiscard]] int temp_vec3_type() const { return temp_type_; }

  // Optional native-mode instrumentation.
  void attach_monitor(perf::JamonMonitor* monitor) { native_monitor_ = monitor; }
  void attach_event_log(perf::EventLog* log) { native_log_ = log; }
  // Lock-free trace layer (the corrected Section IV-A design): workers
  // record Task events into lane == worker index, the master records Phase
  // brackets into the external lane.  The ring needs one lane per worker of
  // the pool the engine will run on, plus one external lane — re-checked
  // against the actual pool in run_native(), since a shared pool may be
  // larger than config.n_threads.  Per-engine, so N engines sharing a pool
  // each carry their own ring (the ownership fix: instrumentation is no
  // longer a single pool-global pointer).  When
  // monitor_updates_per_task > 0 the engine emits that many records per task
  // — the same call-tree depth knob the JaMON path uses — so the self-audit
  // bench can compare the two layers at identical event rates.
  void attach_trace(perf::TraceRing* trace) {
    require(trace == nullptr || trace->n_lanes() >= config_.n_threads + 1,
            "trace ring needs a lane per worker plus one external lane");
    native_trace_ = trace;
  }
  // Native hardware-counter provider: each task chain is bracketed with
  // per-thread counter reads and the delta charged to (worker, phase tag) —
  // the native twin of the simulator's per-core per-phase attribution.
  // Counter reads happen strictly outside run_task(), so attaching a PMU
  // cannot perturb the physics (energies stay bit-identical).  Per-engine
  // (needs one lane per worker of the pool, re-checked in run_native());
  // attach either here or at the pool (FixedThreadPool::attach_pmu), not
  // both with the same accumulator: the pool's untagged brackets would
  // double-count the engine's phase-tagged ones.
  void attach_pmu(perf::PmuAccumulator* pmu) {
    require(pmu == nullptr || pmu->n_workers() >= config_.n_threads,
            "PMU accumulator needs a lane per worker");
    native_pmu_ = pmu;
  }

 private:
  enum class Kind { Predictor, Check, NeighborCount, FusedLj, Coulomb, RadialBonds,
                    AngularBonds, TorsionBonds, Reduce, Corrector };
  struct TaskDesc {
    Kind kind;
    int begin;
    int end;
    // Accumulation slot: which privatized buffer this task writes, and which
    // serial chain it belongs to in the native backend.
    int owner;
    // Iteration stride.  Uniform-cost domains use contiguous chunks
    // (stride 1); the triangular LJ/Coulomb domains use a cyclic (strided)
    // decomposition so every chunk carries the same expected work — the
    // balance MW's 1/N split needs to reach the paper's salt speedup.
    int stride = 1;
  };

  [[nodiscard]] std::vector<TaskDesc> atom_phase_tasks(Kind kind) const;
  // The force phase is split in two so the overlapped rebuild schedule can
  // run the aux kinds (Coulomb + bonds) alongside the neighbor count while
  // only the LJ fill waits on the prefix sum.  forces_phase_tasks() is the
  // concatenation aux-then-LJ — the canonical per-slot accumulation order
  // every schedule reproduces.
  [[nodiscard]] std::vector<TaskDesc> forces_aux_tasks() const;
  [[nodiscard]] std::vector<TaskDesc> forces_lj_tasks() const;
  [[nodiscard]] std::vector<TaskDesc> forces_phase_tasks() const;
  [[nodiscard]] std::vector<TaskDesc> neighbor_count_tasks() const;
  static void chunk_range(int n, int n_chunks, std::vector<std::pair<int, int>>& out);
  [[nodiscard]] static int compute_slots(const EngineConfig& config);
  [[nodiscard]] static int compute_neighbor_capacity(const MolecularSystem& sys,
                                                     const EngineConfig& config);

  template <typename Mem>
  void run_task(const TaskDesc& t, int buffer, Mem& mem);

  // Backend-generic single step; `pool` may be null (inline) and `machine`
  // may be null (native/inline).
  void step(parallel::FixedThreadPool* pool, sim::Machine* machine);
  void exec_phase(parallel::FixedThreadPool* pool, sim::Machine* machine, int tag,
                  const std::vector<TaskDesc>& tasks);
  void master_rebuild_prologue(parallel::FixedThreadPool* pool, sim::Machine* machine);
  // Charges one rebuild phase to the simulator as parallel work: one
  // compute-only task per modelled worker carrying its static 1/N share of
  // per_item * n_items (+ an optional second term), followed by the serial
  // block-scan residue.  Counter conservation holds per (phase, core) like
  // every traced phase.
  void charge_rebuild_phase(sim::Machine* machine, int tag, double per_item,
                            long long n_items, double per_item2 = 0.0,
                            long long n_items2 = 0);
  void pack_charges();
  void place_first_touch(parallel::FixedThreadPool& pool);

  MolecularSystem sys_;
  EngineConfig config_;
  int n_slots_;
  int neighbor_capacity_;  // resolved width; initialized before heap_
  HeapModel heap_;
  CellGrid grid_;
  NeighborList nlist_;
  LjTable lj_;
  ForceBuffers buffers_;
  PackedCharges packed_charges_;  // charged-atom SoA for the tiled Coulomb path
  perf::AllocationTracker tracker_;
  int temp_type_ = -1;
  sim::PhaseWork phase_work_;
  std::atomic<bool> rebuild_flag_{false};
  bool rebuild_now_ = false;
  bool placed_ = false;  // first-touch placement pass already ran
  double last_pe_ = 0.0;
  double last_ke_ = 0.0;
  long long steps_done_ = 0;
  perf::JamonMonitor* native_monitor_ = nullptr;
  perf::EventLog* native_log_ = nullptr;
  perf::TraceRing* native_trace_ = nullptr;
  perf::PmuAccumulator* native_pmu_ = nullptr;
  perf::StopWatch native_clock_;
};

}  // namespace mwx::md
