#include "md/morton.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"
#include "parallel/chunked.hpp"

namespace mwx::md {

namespace {

// Spreads the low 21 bits of v so consecutive input bits land three apart
// (the classic magic-mask dilation).
std::uint64_t spread3(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffff;  // 21 bits per axis -> 63-bit key
  x = (x | (x << 32)) & 0x001f00000000ffffull;
  x = (x | (x << 16)) & 0x001f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

int axis_cells(double extent, double cell_width) {
  return std::max(1, static_cast<int>(std::floor(extent / cell_width)));
}

int quantize(double v, double lo, double inv_w, int n) {
  int c = static_cast<int>((v - lo) * inv_w);
  if (c < 0) c = 0;
  if (c >= n) c = n - 1;
  return c;
}

}  // namespace

std::uint64_t morton3(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

std::vector<int> morton_order(std::span<const Vec3> positions, const Vec3& lo,
                              const Vec3& hi, double cell_width) {
  return morton_order(positions, lo, hi, cell_width, nullptr, 1);
}

std::vector<int> morton_order(std::span<const Vec3> positions, const Vec3& lo,
                              const Vec3& hi, double cell_width,
                              parallel::FixedThreadPool* pool, int n_chunks) {
  require(cell_width > 0.0, "cell width must be positive");
  const Vec3 ext = hi - lo;
  const int nx = axis_cells(ext.x, cell_width);
  const int ny = axis_cells(ext.y, cell_width);
  const int nz = axis_cells(ext.z, cell_width);
  const double inv_wx = static_cast<double>(nx) / ext.x;
  const double inv_wy = static_cast<double>(ny) / ext.y;
  const double inv_wz = static_cast<double>(nz) / ext.z;

  const int n = static_cast<int>(positions.size());
  const bool serial = pool == nullptr || n_chunks <= 1 || n < 2;
  const int chunks = serial ? 1 : std::min(n_chunks, n);

  std::vector<std::uint64_t> key(static_cast<std::size_t>(n));
  parallel::for_chunks(serial ? nullptr : pool, chunks, n,
                       [&](int, long long b, long long e) {
    for (long long i = b; i < e; ++i) {
      const Vec3& p = positions[static_cast<std::size_t>(i)];
      key[static_cast<std::size_t>(i)] =
          morton3(static_cast<std::uint32_t>(quantize(p.x, lo.x, inv_wx, nx)),
                  static_cast<std::uint32_t>(quantize(p.y, lo.y, inv_wy, ny)),
                  static_cast<std::uint32_t>(quantize(p.z, lo.z, inv_wz, nz)));
    }
  });

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (serial) {
    // Stable: equal keys (same cell) keep their current relative order, so
    // the pass is idempotent on an already-ordered system and fully
    // deterministic.  This is the reference the radix path must reproduce.
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return key[static_cast<std::size_t>(a)] < key[static_cast<std::size_t>(b)];
    });
    return order;
  }

  // Stable LSD radix over 8-bit digits.  Each pass is a stable partition by
  // one digit (per-chunk histograms; digit-major chunk-minor exclusive scan;
  // per-chunk in-order scatter), so after the last pass the permutation is
  // THE stable sort by key — there is only one — and equals the serial
  // std::stable_sort bit for bit, independent of the chunk count.  The pass
  // count comes from the largest representable key for this cell geometry
  // (not from the data), keeping it deterministic and data-independent.
  const std::uint64_t max_key =
      morton3(static_cast<std::uint32_t>(nx - 1), static_cast<std::uint32_t>(ny - 1),
              static_cast<std::uint32_t>(nz - 1));
  int passes = 1;
  while ((max_key >> (8 * passes)) != 0) ++passes;

  std::vector<int> alt(static_cast<std::size_t>(n));
  std::vector<int>* src = &order;
  std::vector<int>* dst = &alt;
  std::vector<std::size_t> hist(static_cast<std::size_t>(chunks) * 256);
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = 8 * pass;
    std::fill(hist.begin(), hist.end(), 0);
    parallel::for_chunks(pool, chunks, n, [&](int k, long long b, long long e) {
      std::size_t* h = hist.data() + static_cast<std::size_t>(k) * 256;
      for (long long i = b; i < e; ++i) {
        ++h[(key[static_cast<std::size_t>((*src)[static_cast<std::size_t>(i)])] >> shift) &
            255];
      }
    });
    std::size_t run = 0;  // O(256 * chunks) serial residue
    for (int d = 0; d < 256; ++d) {
      for (int k = 0; k < chunks; ++k) {
        std::size_t& h = hist[static_cast<std::size_t>(k) * 256 + static_cast<std::size_t>(d)];
        const std::size_t count = h;
        h = run;
        run += count;
      }
    }
    parallel::for_chunks(pool, chunks, n, [&](int k, long long b, long long e) {
      std::size_t* h = hist.data() + static_cast<std::size_t>(k) * 256;
      for (long long i = b; i < e; ++i) {
        const int a = (*src)[static_cast<std::size_t>(i)];
        (*dst)[h[(key[static_cast<std::size_t>(a)] >> shift) & 255]++] = a;
      }
    });
    std::swap(src, dst);
  }
  if (src != &order) order = std::move(alt);
  return order;
}

std::vector<int> invert_permutation(const std::vector<int>& new_order) {
  const int n = static_cast<int>(new_order.size());
  std::vector<int> inverse(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    const int old = new_order[static_cast<std::size_t>(k)];
    require(old >= 0 && old < n, "permutation entry out of range");
    require(inverse[static_cast<std::size_t>(old)] == -1, "permutation entry repeated");
    inverse[static_cast<std::size_t>(old)] = k;
  }
  return inverse;
}

}  // namespace mwx::md
