#include "md/morton.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace mwx::md {

namespace {

// Spreads the low 21 bits of v so consecutive input bits land three apart
// (the classic magic-mask dilation).
std::uint64_t spread3(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffff;  // 21 bits per axis -> 63-bit key
  x = (x | (x << 32)) & 0x001f00000000ffffull;
  x = (x | (x << 16)) & 0x001f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

int axis_cells(double extent, double cell_width) {
  return std::max(1, static_cast<int>(std::floor(extent / cell_width)));
}

int quantize(double v, double lo, double inv_w, int n) {
  int c = static_cast<int>((v - lo) * inv_w);
  if (c < 0) c = 0;
  if (c >= n) c = n - 1;
  return c;
}

}  // namespace

std::uint64_t morton3(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

std::vector<int> morton_order(std::span<const Vec3> positions, const Vec3& lo,
                              const Vec3& hi, double cell_width) {
  require(cell_width > 0.0, "cell width must be positive");
  const Vec3 ext = hi - lo;
  const int nx = axis_cells(ext.x, cell_width);
  const int ny = axis_cells(ext.y, cell_width);
  const int nz = axis_cells(ext.z, cell_width);
  const double inv_wx = static_cast<double>(nx) / ext.x;
  const double inv_wy = static_cast<double>(ny) / ext.y;
  const double inv_wz = static_cast<double>(nz) / ext.z;

  const int n = static_cast<int>(positions.size());
  std::vector<std::uint64_t> key(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Vec3& p = positions[static_cast<std::size_t>(i)];
    key[static_cast<std::size_t>(i)] =
        morton3(static_cast<std::uint32_t>(quantize(p.x, lo.x, inv_wx, nx)),
                static_cast<std::uint32_t>(quantize(p.y, lo.y, inv_wy, ny)),
                static_cast<std::uint32_t>(quantize(p.z, lo.z, inv_wz, nz)));
  }

  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  // Stable: equal keys (same cell) keep their current relative order, so the
  // pass is idempotent on an already-ordered system and fully deterministic.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return key[static_cast<std::size_t>(a)] < key[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<int> invert_permutation(const std::vector<int>& new_order) {
  const int n = static_cast<int>(new_order.size());
  std::vector<int> inverse(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    const int old = new_order[static_cast<std::size_t>(k)];
    require(old >= 0 && old < n, "permutation entry out of range");
    require(inverse[static_cast<std::size_t>(old)] == -1, "permutation entry repeated");
    inverse[static_cast<std::size_t>(old)] = k;
  }
  return inverse;
}

}  // namespace mwx::md
