#include "md/system.hpp"

#include <cmath>

namespace mwx::md {

int MolecularSystem::add_atom(int type, const Vec3& position, const Vec3& velocity,
                              double charge, bool movable) {
  require(type >= 0 && type < types_.n(), "unknown atom type");
  require(position.x >= box_.lo.x && position.x <= box_.hi.x && position.y >= box_.lo.y &&
              position.y <= box_.hi.y && position.z >= box_.lo.z && position.z <= box_.hi.z,
          "atom placed outside the box");
  const int i = n_atoms();
  pos_.push_back(position);
  vel_.push_back(movable ? velocity : Vec3{});
  acc_.push_back({});
  const double m = types_.at(type).mass;
  mass_.push_back(m);
  inv_mass_.push_back(movable ? 1.0 / m : 0.0);
  charge_.push_back(charge);
  type_.push_back(type);
  movable_.push_back(movable ? 1 : 0);
  if (charge != 0.0) charged_.push_back(i);
  if (movable) ++n_movable_;
  return i;
}

void MolecularSystem::add_radial_bond(RadialBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.a != b.b,
          "radial bond indices invalid");
  exclusions_.insert(pair_key(b.a, b.b));
  radial_.push_back(b);
}

void MolecularSystem::add_angular_bond(AngularBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.c >= 0 &&
              b.c < n_atoms() && b.a != b.b && b.b != b.c && b.a != b.c,
          "angular bond indices invalid");
  angular_.push_back(b);
}

void MolecularSystem::add_torsion_bond(TorsionBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.c >= 0 &&
              b.c < n_atoms() && b.d >= 0 && b.d < n_atoms(),
          "torsion bond indices invalid");
  torsion_.push_back(b);
}

double MolecularSystem::lj_epsilon(int ti, int tj) const {
  return std::sqrt(types_.at(ti).lj_epsilon * types_.at(tj).lj_epsilon);
}

double MolecularSystem::lj_sigma(int ti, int tj) const {
  return 0.5 * (types_.at(ti).lj_sigma + types_.at(tj).lj_sigma);
}

Vec3 MolecularSystem::total_momentum() const {
  Vec3 p;
  for (int i = 0; i < n_atoms(); ++i) {
    if (movable(i)) p += vel_[static_cast<std::size_t>(i)] * mass(i);
  }
  return p;
}

double MolecularSystem::kinetic_energy() const {
  double ke = 0.0;
  for (int i = 0; i < n_atoms(); ++i) {
    if (movable(i)) ke += 0.5 * mass(i) * vel_[static_cast<std::size_t>(i)].norm2();
  }
  return ke;
}

}  // namespace mwx::md
