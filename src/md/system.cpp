#include "md/system.hpp"

#include <algorithm>
#include <cmath>

namespace mwx::md {

namespace {

// Reorders `v` so the result holds v[new_order[k]] at position k.  Works for
// std::vector and PageVec alike (both value-construct from a size and move).
template <typename Container>
void apply_order(Container& v, const std::vector<int>& new_order) {
  Container next(v.size());
  for (std::size_t k = 0; k < new_order.size(); ++k) {
    next[k] = v[static_cast<std::size_t>(new_order[k])];
  }
  v = std::move(next);
}

}  // namespace

int MolecularSystem::add_atom(int type, const Vec3& position, const Vec3& velocity,
                              double charge, bool movable) {
  require(type >= 0 && type < types_.n(), "unknown atom type");
  require(position.x >= box_.lo.x && position.x <= box_.hi.x && position.y >= box_.lo.y &&
              position.y <= box_.hi.y && position.z >= box_.lo.z && position.z <= box_.hi.z,
          "atom placed outside the box");
  const int i = n_atoms();
  pos_.push_back(position);
  vel_.push_back(movable ? velocity : Vec3{});
  acc_.push_back({});
  const double m = types_.at(type).mass;
  mass_.push_back(m);
  inv_mass_.push_back(movable ? 1.0 / m : 0.0);
  charge_.push_back(charge);
  type_.push_back(type);
  movable_.push_back(movable ? 1 : 0);
  if (charge != 0.0) charged_.push_back(i);
  if (movable) ++n_movable_;
  ext_id_.push_back(i);
  index_of_ext_.push_back(i);
  return i;
}

void MolecularSystem::permute(const std::vector<int>& new_order) {
  const int n = n_atoms();
  require(static_cast<int>(new_order.size()) == n, "permutation size mismatch");
  // Build the inverse first — this also validates that new_order is a
  // genuine permutation before anything is moved.
  std::vector<int> inverse(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    const int old = new_order[static_cast<std::size_t>(k)];
    require(old >= 0 && old < n, "permutation entry out of range");
    require(inverse[static_cast<std::size_t>(old)] == -1, "permutation entry repeated");
    inverse[static_cast<std::size_t>(old)] = k;
  }

  apply_order(pos_, new_order);
  apply_order(vel_, new_order);
  apply_order(acc_, new_order);
  apply_order(mass_, new_order);
  apply_order(inv_mass_, new_order);
  apply_order(charge_, new_order);
  apply_order(type_, new_order);
  apply_order(movable_, new_order);
  apply_order(ext_id_, new_order);
  for (int i = 0; i < n; ++i) {
    index_of_ext_[static_cast<std::size_t>(ext_id_[static_cast<std::size_t>(i)])] = i;
  }

  // The charged list must stay ascending — the Coulomb loop's triangular
  // decomposition and its deterministic accumulation order depend on it.
  for (int& c : charged_) c = inverse[static_cast<std::size_t>(c)];
  std::sort(charged_.begin(), charged_.end());

  for (RadialBond& b : radial_) {
    b.a = inverse[static_cast<std::size_t>(b.a)];
    b.b = inverse[static_cast<std::size_t>(b.b)];
  }
  for (AngularBond& b : angular_) {
    b.a = inverse[static_cast<std::size_t>(b.a)];
    b.b = inverse[static_cast<std::size_t>(b.b)];
    b.c = inverse[static_cast<std::size_t>(b.c)];
  }
  for (TorsionBond& b : torsion_) {
    b.a = inverse[static_cast<std::size_t>(b.a)];
    b.b = inverse[static_cast<std::size_t>(b.b)];
    b.c = inverse[static_cast<std::size_t>(b.c)];
    b.d = inverse[static_cast<std::size_t>(b.d)];
  }
  // Exclusions key on raw index pairs; rebuild them from the (only) source
  // of exclusions, the radial bond list.
  exclusions_.clear();
  for (const RadialBond& b : radial_) exclusions_.insert(pair_key(b.a, b.b));
}

void MolecularSystem::add_radial_bond(RadialBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.a != b.b,
          "radial bond indices invalid");
  exclusions_.insert(pair_key(b.a, b.b));
  radial_.push_back(b);
}

void MolecularSystem::add_angular_bond(AngularBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.c >= 0 &&
              b.c < n_atoms() && b.a != b.b && b.b != b.c && b.a != b.c,
          "angular bond indices invalid");
  angular_.push_back(b);
}

void MolecularSystem::add_torsion_bond(TorsionBond b) {
  require(b.a >= 0 && b.a < n_atoms() && b.b >= 0 && b.b < n_atoms() && b.c >= 0 &&
              b.c < n_atoms() && b.d >= 0 && b.d < n_atoms(),
          "torsion bond indices invalid");
  torsion_.push_back(b);
}

double MolecularSystem::lj_epsilon(int ti, int tj) const {
  return std::sqrt(types_.at(ti).lj_epsilon * types_.at(tj).lj_epsilon);
}

double MolecularSystem::lj_sigma(int ti, int tj) const {
  return 0.5 * (types_.at(ti).lj_sigma + types_.at(tj).lj_sigma);
}

Vec3 MolecularSystem::total_momentum() const {
  Vec3 p;
  for (int i = 0; i < n_atoms(); ++i) {
    if (movable(i)) p += vel_[static_cast<std::size_t>(i)] * mass(i);
  }
  return p;
}

double MolecularSystem::kinetic_energy() const {
  double ke = 0.0;
  for (int i = 0; i < n_atoms(); ++i) {
    if (movable(i)) ke += 0.5 * mass(i) * vel_[static_cast<std::size_t>(i)].norm2();
  }
  return ke;
}

}  // namespace mwx::md
