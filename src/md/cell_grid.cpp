#include "md/cell_grid.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/chunked.hpp"

namespace mwx::md {

CellGrid::CellGrid(const Vec3& lo, const Vec3& hi, double reach) : lo_(lo), hi_(hi) {
  require(reach > 0.0, "cell reach must be positive");
  const Vec3 ext = hi - lo;
  require(ext.x > 0 && ext.y > 0 && ext.z > 0, "degenerate box");
  // Axis counts are validated in floating point BEFORE the int casts: a huge
  // box-to-reach ratio must fail the contract, not overflow the cast (UB) or
  // the nx*ny*nz product used for cell indexing.
  auto axis = [&](double extent) {
    const double cells = std::max(1.0, std::floor(extent / reach));
    require(cells <= 2097152.0, "cell grid axis count overflows int indexing");
    return static_cast<int>(cells);
  };
  nx_ = axis(ext.x);
  ny_ = axis(ext.y);
  nz_ = axis(ext.z);
  const long long cells =
      static_cast<long long>(nx_) * static_cast<long long>(ny_) * static_cast<long long>(nz_);
  require(cells < (1ll << 31),
          "cell grid cell count overflows int indexing (shrink the box or grow the reach)");
  inv_wx_ = static_cast<double>(nx_) / ext.x;
  inv_wy_ = static_cast<double>(ny_) / ext.y;
  inv_wz_ = static_cast<double>(nz_) / ext.z;
  start_.assign(static_cast<std::size_t>(n_cells()) + 1, 0);
}

int CellGrid::clamp_axis(double v, double lo, double inv_w, int n) const {
  int c = static_cast<int>((v - lo) * inv_w);
  if (c < 0) c = 0;
  if (c >= n) c = n - 1;
  return c;
}

int CellGrid::cell_of(const Vec3& p) const {
  const int cx = clamp_axis(p.x, lo_.x, inv_wx_, nx_);
  const int cy = clamp_axis(p.y, lo_.y, inv_wy_, ny_);
  const int cz = clamp_axis(p.z, lo_.z, inv_wz_, nz_);
  return (cz * ny_ + cy) * nx_ + cx;
}

void CellGrid::bin(std::span<const Vec3> positions) {
  const std::size_t n = positions.size();
  scratch_.resize(n);
  std::fill(start_.begin(), start_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    scratch_[i] = c;
    ++start_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < start_.size(); ++c) start_[c] += start_[c - 1];
  occupants_.resize(n);
  // Reused member cursors: this is the hottest rebuild loop, and a fresh
  // vector per call was steady-state allocator churn.
  cursor_.assign(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    occupants_[static_cast<std::size_t>(cursor_[static_cast<std::size_t>(scratch_[i])]++)] =
        static_cast<int>(i);
  }
}

void CellGrid::bin(std::span<const Vec3> positions, parallel::FixedThreadPool* pool,
                   int n_chunks) {
  const std::size_t n = positions.size();
  if (pool == nullptr || n_chunks <= 1 || n < 2) {
    bin(positions);
    return;
  }
  const std::size_t nc = static_cast<std::size_t>(n_cells());
  const int chunks = static_cast<int>(
      std::min(static_cast<long long>(n_chunks), static_cast<long long>(n)));
  scratch_.resize(n);
  occupants_.resize(n);
  chunk_counts_.assign(static_cast<std::size_t>(chunks) * nc, 0);

  // Phase A (parallel over atom chunks): cell ids + per-chunk histograms.
  // cell_of is the same expression as the serial pass, so scratch_ bits
  // match; each chunk owns one contiguous count row (no sharing).
  parallel::for_chunks(pool, chunks, static_cast<long long>(n),
                       [&](int k, long long b, long long e) {
    int* counts = chunk_counts_.data() + static_cast<std::size_t>(k) * nc;
    for (long long i = b; i < e; ++i) {
      const int c = cell_of(positions[static_cast<std::size_t>(i)]);
      scratch_[static_cast<std::size_t>(i)] = c;
      ++counts[c];
    }
  });

  // Phase B (two-level block scan over cells): each block rewrites its
  // (cell, chunk) counts — iterated cell-major, chunk-minor, the stable
  // order — into block-local exclusive prefixes and reports a block total;
  // a tiny serial scan over the block totals then anchors the blocks.  All
  // integer arithmetic: the result is the exact serial prefix sum.
  const int n_blocks =
      static_cast<int>(std::min(static_cast<long long>(chunks), static_cast<long long>(nc)));
  block_base_.assign(static_cast<std::size_t>(n_blocks) + 1, 0);
  parallel::for_chunks(pool, n_blocks, static_cast<long long>(nc),
                       [&](int blk, long long cb, long long ce) {
    int run = 0;
    for (long long c = cb; c < ce; ++c) {
      for (int k = 0; k < chunks; ++k) {
        int& cell = chunk_counts_[static_cast<std::size_t>(k) * nc +
                                  static_cast<std::size_t>(c)];
        const int count = cell;
        cell = run;
        run += count;
      }
    }
    block_base_[static_cast<std::size_t>(blk) + 1] = run;
  });
  for (int b = 0; b < n_blocks; ++b) {
    block_base_[static_cast<std::size_t>(b) + 1] += block_base_[static_cast<std::size_t>(b)];
  }
  parallel::for_chunks(pool, n_blocks, static_cast<long long>(nc),
                       [&](int blk, long long cb, long long ce) {
    const int base = block_base_[static_cast<std::size_t>(blk)];
    for (long long c = cb; c < ce; ++c) {
      for (int k = 0; k < chunks; ++k) {
        chunk_counts_[static_cast<std::size_t>(k) * nc + static_cast<std::size_t>(c)] += base;
      }
      // Chunk 0's scatter base for a cell IS the cell's global row start.
      start_[static_cast<std::size_t>(c)] = chunk_counts_[static_cast<std::size_t>(c)];
    }
  });
  start_[nc] = static_cast<int>(n);

  // Phase C (parallel over atom chunks): stable in-order scatter.  Chunk k's
  // cursors live in its own count row; within every cell the chunk bases are
  // ordered k = 0, 1, ... and each chunk scans its atoms in ascending index,
  // so occupants_ comes out in ascending atom index per cell — byte-identical
  // to the serial counting sort.
  parallel::for_chunks(pool, chunks, static_cast<long long>(n),
                       [&](int k, long long b, long long e) {
    int* cursors = chunk_counts_.data() + static_cast<std::size_t>(k) * nc;
    for (long long i = b; i < e; ++i) {
      occupants_[static_cast<std::size_t>(
          cursors[scratch_[static_cast<std::size_t>(i)]]++)] = static_cast<int>(i);
    }
  });
}

int CellGrid::neighbor_cells(int c, int out[27]) const {
  MWX_ASSERT(c >= 0 && c < n_cells());
  const int cx = c % nx_;
  const int cy = (c / nx_) % ny_;
  const int cz = c / (nx_ * ny_);
  int n = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = cz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= nx_) continue;
        out[n++] = (z * ny_ + y) * nx_ + x;
      }
    }
  }
  return n;
}

}  // namespace mwx::md
