#include "md/cell_grid.hpp"

#include <algorithm>
#include <cmath>

namespace mwx::md {

CellGrid::CellGrid(const Vec3& lo, const Vec3& hi, double reach) : lo_(lo), hi_(hi) {
  require(reach > 0.0, "cell reach must be positive");
  const Vec3 ext = hi - lo;
  require(ext.x > 0 && ext.y > 0 && ext.z > 0, "degenerate box");
  nx_ = std::max(1, static_cast<int>(std::floor(ext.x / reach)));
  ny_ = std::max(1, static_cast<int>(std::floor(ext.y / reach)));
  nz_ = std::max(1, static_cast<int>(std::floor(ext.z / reach)));
  inv_wx_ = static_cast<double>(nx_) / ext.x;
  inv_wy_ = static_cast<double>(ny_) / ext.y;
  inv_wz_ = static_cast<double>(nz_) / ext.z;
  start_.assign(static_cast<std::size_t>(n_cells()) + 1, 0);
}

int CellGrid::clamp_axis(double v, double lo, double inv_w, int n) const {
  int c = static_cast<int>((v - lo) * inv_w);
  if (c < 0) c = 0;
  if (c >= n) c = n - 1;
  return c;
}

int CellGrid::cell_of(const Vec3& p) const {
  const int cx = clamp_axis(p.x, lo_.x, inv_wx_, nx_);
  const int cy = clamp_axis(p.y, lo_.y, inv_wy_, ny_);
  const int cz = clamp_axis(p.z, lo_.z, inv_wz_, nz_);
  return (cz * ny_ + cy) * nx_ + cx;
}

void CellGrid::bin(std::span<const Vec3> positions) {
  const std::size_t n = positions.size();
  scratch_.resize(n);
  std::fill(start_.begin(), start_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    scratch_[i] = c;
    ++start_[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c < start_.size(); ++c) start_[c] += start_[c - 1];
  occupants_.resize(n);
  std::vector<int> cursor(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    occupants_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(scratch_[i])]++)] =
        static_cast<int>(i);
  }
}

int CellGrid::neighbor_cells(int c, int out[27]) const {
  MWX_ASSERT(c >= 0 && c < n_cells());
  const int cx = c % nx_;
  const int cy = (c / nx_) % ny_;
  const int cz = c / (nx_ * ny_);
  int n = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = cz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= nx_) continue;
        out[n++] = (z * ny_ + y) * nx_ + x;
      }
    }
  }
  return n;
}

}  // namespace mwx::md
