#include "sim/cache.hpp"

namespace mwx::sim {

SetAssocCache::SetAssocCache(std::int64_t size_bytes, int line_bytes, int associativity)
    : line_bytes_(line_bytes), ways_(associativity) {
  require(size_bytes > 0 && line_bytes > 0 && associativity > 0, "cache geometry must be positive");
  const std::int64_t lines = size_bytes / line_bytes;
  require(lines >= associativity, "cache smaller than one set");
  n_sets_ = static_cast<int>(lines / associativity);
  ways_storage_.resize(static_cast<std::size_t>(n_sets_) * static_cast<std::size_t>(ways_));
}

SetAssocCache::LookupResult SetAssocCache::access(std::uint64_t addr, bool write) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
  ++tick_;

  LookupResult result;
  int lru_way = 0;
  std::uint32_t lru_tick = ~0U;
  for (int w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      way.dirty = way.dirty || write;
      ++stats_.hits;
      result.hit = true;
      return result;
    }
    if (!way.valid) {
      lru_way = w;
      lru_tick = 0;  // prefer invalid ways
    } else if (way.lru < lru_tick) {
      lru_tick = way.lru;
      lru_way = w;
    }
  }

  ++stats_.misses;
  Way& victim = ways_storage_[base + static_cast<std::size_t>(lru_way)];
  if (victim.valid) {
    result.evicted_valid = true;
    result.victim_line = victim.tag;
    if (victim.dirty) {
      result.evicted_dirty = true;
      ++stats_.dirty_evictions;
    }
  }
  victim.valid = true;
  victim.tag = line;
  victim.dirty = write;
  victim.lru = tick_;
  return result;
}

void SetAssocCache::invalidate_line(std::uint64_t line_addr) {
  const std::size_t base = set_index(line_addr) * static_cast<std::size_t>(ways_);
  for (int w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == line_addr) {
      way.valid = false;
      way.dirty = false;
      return;
    }
  }
}

void SetAssocCache::flush() {
  for (auto& w : ways_storage_) w = Way{};
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
  for (int w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.tag == line) return true;
  }
  return false;
}

}  // namespace mwx::sim
