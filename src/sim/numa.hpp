// NumaDirectory — per-address home-domain lookup for the machine simulator.
//
// The baseline memory model has a single knob (MemorySpec::home_package):
// every DRAM line is homed on one package, which models the JVM pathology
// where the master thread touches every page during initialization and all
// of them land on its node.  Real first-touch kernels home each page on the
// node of the thread that first writes it, so remoteness varies per address.
// A NumaDirectory supplies that mapping: the machine consults it (when
// attached via MachineConfig::numa) on every DRAM fetch and writeback to
// decide which package's controller serves the line and whether the access
// pays the remote-latency factor.
//
// The heap-layout model (md::HeapModel) implements this interface, deriving
// each region's home from which worker the engine's placement pass would
// have first-touch it with.
#pragma once

#include <cstdint>

namespace mwx::sim {

class NumaDirectory {
 public:
  virtual ~NumaDirectory() = default;

  // Home package of the line containing `addr`, or -1 when the directory has
  // no opinion (the machine then falls back to MemorySpec::home_package /
  // the accessing core's own package).
  [[nodiscard]] virtual int domain_of(std::uint64_t addr) const = 0;
};

}  // namespace mwx::sim
