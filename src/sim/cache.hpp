// Set-associative LRU cache model.
//
// The simulator's substitute for the hardware performance-monitoring unit:
// where the paper read mid-level and last-level miss rates out of VTune
// (Section V-A), we model the caches directly and expose exact hit/miss
// counters per level and per instance.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace mwx::sim {

struct CacheStats {
  long long hits = 0;
  long long misses = 0;
  long long dirty_evictions = 0;
  [[nodiscard]] long long accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    const long long a = accesses();
    return a > 0 ? static_cast<double>(misses) / static_cast<double>(a) : 0.0;
  }
  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    dirty_evictions += o.dirty_evictions;
    return *this;
  }
};

class SetAssocCache {
 public:
  struct LookupResult {
    bool hit = false;
    bool evicted_dirty = false;     // a dirty victim must be written back
    std::uint64_t victim_line = 0;  // line address of the victim, if any
    bool evicted_valid = false;
  };

  SetAssocCache(std::int64_t size_bytes, int line_bytes, int associativity);

  // Looks up the line containing `addr`; on miss, installs it (evicting the
  // LRU way).  `write` marks the installed/It line dirty.
  LookupResult access(std::uint64_t addr, bool write);

  // Removes a specific line if present (used for invalidations).
  void invalidate_line(std::uint64_t line_addr);

  // Drops all contents (e.g. to model a context-switch worth of pollution in
  // coarse experiments).  Statistics are preserved.
  void flush();

  [[nodiscard]] bool contains(std::uint64_t addr) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] int n_sets() const { return n_sets_; }
  [[nodiscard]] int ways() const { return ways_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint32_t lru = 0;  // larger = more recently used
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t line) const {
    // Multiplicative hash decorrelates strided Java-heap addresses from set
    // conflicts, like physical-address interleaving does on real parts.
    return static_cast<std::size_t>((line * 0x9e3779b97f4a7c15ULL) >> 32) %
           static_cast<std::size_t>(n_sets_);
  }

  int line_bytes_;
  int n_sets_;
  int ways_;
  std::uint32_t tick_ = 0;
  std::vector<Way> ways_storage_;  // n_sets * ways, row-major by set
  CacheStats stats_;
};

}  // namespace mwx::sim
