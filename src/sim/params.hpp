// Tunable cost and scheduler parameters of the machine simulator.
//
// Defaults are calibrated (see EXPERIMENTS.md) so the reproduction's curves
// take the shape the paper reports; none of the experiments depend on exact
// values, only on the architectural mechanisms the parameters scale.
#pragma once

#include <cstdint>

namespace mwx::sim {

struct CostParams {
  // Out-of-order/prefetch overlap: the effective stall charged per DRAM miss
  // is dram_latency / mlp.  Nehalem-class cores overlap enough misses that a
  // single core can draw most of a socket's bandwidth — the precondition for
  // the paper's flat Al-1000 scaling.
  double mlp = 9.0;

  // Work-queue costs (Section II-B's single-queue contention).
  double queue_pop_cycles = 90.0;        // critical section length of a pop
  double queue_uncontended_cycles = 35.0;  // per-thread private queue pop
  double dispatch_cycles_per_task = 60.0;  // master pushing one task

  // Work-stealing deque costs.  An owner pop is a lock-free bottom-end
  // operation on a cache-hot line; a steal pays a CAS on the victim's top
  // index plus the coherence transfer of the task's cache line; probing an
  // empty victim still reads its (remote) top/bottom line.
  double deque_pop_cycles = 25.0;
  double steal_cycles = 250.0;
  double steal_probe_cycles = 30.0;

  // Barrier trip and park/unpark.
  double barrier_cycles = 600.0;
  double wake_latency_cycles = 3000.0;

  // Placement change (migration): pipeline refill + kernel bookkeeping.  The
  // dominant cost — cold caches — emerges from the cache model itself.
  double migration_cycles = 9000.0;

  // Compute-throughput factor when both SMT siblings of a core are busy.
  double smt_slowdown = 1.55;

  // JaMON-style synchronized monitor update: global-lock hold time.
  double monitor_lock_hold_cycles = 220.0;

  // VisualVM-style per-method instrumentation: extra cycles per instrumented
  // call plus one core consumed by the tool's TCP/agent thread.
  double instrumentation_call_cycles = 260.0;
};

struct SchedulerParams {
  // Probability the scheduler keeps a woken thread on its previous PU when
  // that PU is free.  Low values reproduce Fig. 2's heavy migration; 1.0
  // with a singleton affinity mask is equivalent to pinning.
  double stay_probability = 0.25;

  // Background OS/daemon load: per-core burst arrival rate (bursts per
  // cycle) and mean burst length.  "OS scheduled" placements can dodge these
  // bursts; pinned threads must wait them out — the mechanism behind
  // Table III's low-core-count rows.
  double noise_bursts_per_second = 40.0;
  double noise_burst_seconds = 450e-6;

  std::uint64_t seed = 0x5eedULL;
};

}  // namespace mwx::sim
