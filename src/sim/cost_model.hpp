// Analytical view of the simulator's pricing rules.
//
// The discrete-event Machine charges memory and scheduling costs access by
// access (machine.cpp); the what-if planner (perf::Planner) needs the same
// prices in closed form so it can re-price a measured phase on a machine it
// never ran on.  This header derives, from a topo::MachineSpec and the
// CostParams the simulator itself uses, the per-event constants that
// machine.cpp applies:
//
//   * per-level hit latencies and per-thread-visible capacities,
//   * the effective DRAM stall per missing line (dram_latency / mlp, with the
//     remote-home factor),
//   * the memory-controller occupancy per line (max of streaming and
//     random-access figures) — the bandwidth ceiling of a phase,
//   * the per-task acquisition cost of each queue discipline.
//
// Header-only and dependency-light on purpose: the planner links mwx_perf +
// mwx_topo but not the simulator; everything here is a pure function of the
// already-public parameter structs.
#pragma once

#include <algorithm>
#include <vector>

#include "sim/access.hpp"
#include "sim/params.hpp"
#include "topo/machine_spec.hpp"

namespace mwx::sim {

// One cache level as the planner prices it.
struct LevelPricing {
  int level = 1;
  double capacity_bytes = 0.0;     // per instance
  double hit_latency_cycles = 0.0;
};

// Everything the planner needs to re-price a phase on one machine.
struct MachinePricing {
  std::vector<LevelPricing> levels;   // ordered L1..Ln
  double ghz = 0.0;
  int packages = 1;
  int cores = 1;
  int pus = 1;
  int smt_per_core = 1;
  int line_bytes = 64;

  // Effective stall charged to the issuing thread per line that misses the
  // whole hierarchy, before queueing: dram_latency / mlp (out-of-order
  // overlap), times remote_latency_factor when the line's home controller
  // sits on another package.
  double dram_stall_local_cycles = 0.0;
  double dram_stall_remote_cycles = 0.0;

  // Controller occupancy per line with poor locality: the planner's
  // bandwidth ceiling is (lines / controllers) * this.
  double line_occupancy_cycles = 0.0;

  // MemorySpec::home_package: >= 0 pins every transfer to one controller
  // (the single-home-heap JVM behaviour); -1 lets each package's controller
  // serve its own threads.
  int home_package = -1;
  double remote_latency_factor = 1.0;

  [[nodiscard]] double to_seconds(double cycles) const { return cycles / (ghz * 1e9); }
};

[[nodiscard]] inline MachinePricing make_pricing(const topo::MachineSpec& spec,
                                                 const CostParams& cost) {
  MachinePricing p;
  p.ghz = spec.ghz;
  p.packages = spec.packages;
  p.cores = spec.n_cores();
  p.pus = spec.n_pus();
  p.smt_per_core = spec.smt_per_core;
  for (const auto& c : spec.caches) {
    p.levels.push_back({c.level, static_cast<double>(c.size_bytes), c.hit_latency_cycles});
    p.line_bytes = c.line_bytes;
  }
  p.dram_stall_local_cycles = spec.memory.dram_latency_cycles / cost.mlp;
  p.dram_stall_remote_cycles =
      p.dram_stall_local_cycles * spec.memory.remote_latency_factor;
  p.line_occupancy_cycles =
      std::max(static_cast<double>(p.line_bytes) / spec.memory.bytes_per_cycle_per_controller,
               spec.memory.random_line_occupancy_cycles);
  p.home_package = spec.memory.home_package;
  p.remote_latency_factor = spec.memory.remote_latency_factor;
  return p;
}

// Per-task acquisition cost a worker pays under `a` (machine.cpp's claim
// paths: private-queue pop, contended shared-queue pop, own-deque pop).
[[nodiscard]] inline double acquisition_cycles(Assignment a, const CostParams& cost) {
  switch (a) {
    case Assignment::Static: return cost.queue_uncontended_cycles;
    case Assignment::SharedQueue: return cost.queue_pop_cycles;
    case Assignment::WorkStealing: return cost.deque_pop_cycles;
  }
  return cost.queue_uncontended_cycles;
}

[[nodiscard]] inline const char* assignment_name(Assignment a) {
  switch (a) {
    case Assignment::Static: return "static";
    case Assignment::SharedQueue: return "queue";
    case Assignment::WorkStealing: return "steal";
  }
  return "unknown";
}

}  // namespace mwx::sim
