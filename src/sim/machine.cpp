#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/require.hpp"

namespace mwx::sim {

namespace {
// Accesses executed between event-loop turns of one thread.  Small enough to
// keep cross-thread interleaving (and thus memory-controller queueing)
// honest, large enough to keep the event loop cheap.
constexpr std::uint32_t kAccessBatch = 8;
}  // namespace

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      rng_(config_.sched.seed),
      event_log_(std::max(1, config_.n_threads)) {
  const auto& spec = config_.spec;
  require(config_.n_threads > 0, "machine needs at least one worker thread");
  require(spec.n_pus() > 0, "machine spec has no PUs");

  for (const auto& c : spec.caches) {
    Level lvl;
    lvl.spec = c;
    const int instances = (spec.n_pus() + c.pus_per_instance - 1) / c.pus_per_instance;
    lvl.instances.reserve(static_cast<std::size_t>(instances));
    for (int i = 0; i < instances; ++i) {
      lvl.instances.emplace_back(c.size_bytes, c.line_bytes, c.associativity);
    }
    levels_.push_back(std::move(lvl));
  }
  std::sort(levels_.begin(), levels_.end(),
            [](const Level& a, const Level& b) { return a.spec.level < b.spec.level; });

  controller_free_.assign(static_cast<std::size_t>(spec.packages), 0.0);
  occupancy_.assign(static_cast<std::size_t>(spec.n_cores()), 0);

  const double hz = spec.ghz * 1e9;
  noise_rate_cycles_ = config_.sched.noise_bursts_per_second > 0
                           ? hz / config_.sched.noise_bursts_per_second
                           : 0.0;
  noise_len_cycles_ = config_.sched.noise_burst_seconds * hz;
  noise_next_.assign(static_cast<std::size_t>(spec.n_cores()), 0.0);
  for (auto& t : noise_next_) {
    t = noise_rate_cycles_ > 0 ? exp_sample(noise_rate_cycles_) : 1e300;
  }

  if (config_.instrumentation_agent) agent_core_ = spec.n_cores() - 1;

  require(config_.trace == nullptr || config_.trace->n_lanes() >= config_.n_threads + 1,
          "trace ring needs a lane per worker thread plus one external lane");

  threads_.resize(static_cast<std::size_t>(config_.n_threads));
  for (int i = 0; i < config_.n_threads; ++i) {
    ThreadState& ts = threads_[static_cast<std::size_t>(i)];
    ts.time = 0.0;
    if (!config_.pin_masks.empty()) {
      ts.affinity = config_.pin_masks[static_cast<std::size_t>(i) % config_.pin_masks.size()];
    } else {
      ts.affinity = topo::CpuSet::all(spec.n_pus());
    }
    require(!(ts.affinity & topo::CpuSet::all(spec.n_pus())).empty(),
            "thread affinity mask selects no PU on this machine");
  }
}

void Machine::set_affinity(int thread, const topo::CpuSet& mask) {
  require(thread >= 0 && thread < config_.n_threads, "thread index out of range");
  require(!(mask & topo::CpuSet::all(config_.spec.n_pus())).empty(),
          "affinity mask selects no PU on this machine");
  threads_[static_cast<std::size_t>(thread)].affinity = mask;
}

double Machine::exp_sample(double mean) {
  double u = rng_.uniform();
  while (u <= 1e-300) u = rng_.uniform();
  return -std::log(u) * mean;
}

double Machine::compute_factor(int pu) const {
  const int core = config_.spec.pu_to_core(pu);
  int occ = occupancy_[static_cast<std::size_t>(core)];
  if (core == agent_core_) ++occ;
  if (occ <= 1) return 1.0;
  const int effective = std::min(occ, config_.spec.smt_per_core);
  const double smt = effective > 1 ? config_.cost.smt_slowdown : 1.0;
  return (static_cast<double>(occ) / static_cast<double>(effective)) * smt;
}

void Machine::note_residency(int tid, double now) {
  if (!config_.record_residency) return;
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  if (ts.pu >= 0 && now > ts.seg_begin) {
    residency_.push_back({tid, ts.pu, to_seconds(ts.seg_begin), to_seconds(now)});
  }
}

double Machine::place_thread(int tid, double now) {
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  const auto& spec = config_.spec;
  const topo::CpuSet allowed = ts.affinity & topo::CpuSet::all(spec.n_pus());
  MWX_ASSERT(!allowed.empty());

  int chosen = -1;
  // Affinity tendency: sometimes the scheduler keeps the thread where it ran
  // last (if that PU's core is currently free of other threads).
  if (ts.last_pu >= 0 && allowed.test(ts.last_pu) &&
      occupancy_[static_cast<std::size_t>(spec.pu_to_core(ts.last_pu))] == 0 &&
      rng_.uniform() < config_.sched.stay_probability) {
    chosen = ts.last_pu;
  }
  if (chosen < 0) {
    // Least-loaded core among allowed PUs; the agent core counts as loaded.
    int best_score = 1 << 28;
    int n_best = 0;
    for (int pu = allowed.first(); pu >= 0; pu = allowed.next(pu)) {
      const int core = spec.pu_to_core(pu);
      int score = occupancy_[static_cast<std::size_t>(core)] * 4;
      if (core == agent_core_) score += 4;
      if (pu % spec.smt_per_core != 0) score += 1;  // prefer primary SMT threads
      if (score < best_score) {
        best_score = score;
        chosen = pu;
        n_best = 1;
      } else if (score == best_score) {
        // Reservoir-sample among ties so placement is not deterministic.
        ++n_best;
        if (rng_.below(static_cast<std::uint64_t>(n_best)) == 0) chosen = pu;
      }
    }
  }
  MWX_ASSERT(chosen >= 0);

  if (ts.last_pu >= 0 && chosen != ts.last_pu) {
    ++counters_.migrations;
    ++dom(chosen).migrations;
    now += config_.cost.migration_cycles;
  }
  ts.pu = chosen;
  ts.seg_begin = now;
  ++occupancy_[static_cast<std::size_t>(spec.pu_to_core(chosen))];
  // Bursts that fired while the core was idle are uninteresting history.
  auto& nb = noise_next_[static_cast<std::size_t>(spec.pu_to_core(chosen))];
  if (noise_rate_cycles_ > 0 && nb < now) nb = now + exp_sample(noise_rate_cycles_);
  return now;
}

void Machine::park_thread(int tid, double now) {
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  if (ts.pu < 0) return;
  note_residency(tid, now);
  --occupancy_[static_cast<std::size_t>(config_.spec.pu_to_core(ts.pu))];
  ts.last_pu = ts.pu;
  ts.pu = -1;
}

double Machine::consume_noise(int tid, double now) {
  if (noise_rate_cycles_ <= 0) return now;
  ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
  const auto& spec = config_.spec;
  int core = spec.pu_to_core(ts.pu);
  auto& nb = noise_next_[static_cast<std::size_t>(core)];
  while (nb <= now) {
    const double burst = exp_sample(noise_len_cycles_);
    // Can the thread dodge the burst?  Preferably to a free core; failing
    // that, to an idle SMT sibling PU of a busy core (it then runs at the
    // SMT-shared rate, which still beats losing the whole burst).
    int alternative = -1;
    int smt_alternative = -1;
    const topo::CpuSet allowed = ts.affinity & topo::CpuSet::all(spec.n_pus());
    for (int pu = allowed.first(); pu >= 0; pu = allowed.next(pu)) {
      const int c = spec.pu_to_core(pu);
      if (c == core || c == agent_core_) continue;
      const int occ = occupancy_[static_cast<std::size_t>(c)];
      if (occ == 0) {
        alternative = pu;
        break;
      }
      if (smt_alternative < 0 && occ < spec.smt_per_core) smt_alternative = pu;
    }
    if (alternative < 0) alternative = smt_alternative;
    nb = std::max(nb + burst, now) + exp_sample(noise_rate_cycles_);
    if (alternative >= 0) {
      // OS moves the thread away; the burst is someone else's problem.
      note_residency(tid, now);
      --occupancy_[static_cast<std::size_t>(core)];
      ts.last_pu = ts.pu;
      ts.pu = alternative;
      ts.seg_begin = now + config_.cost.migration_cycles;
      core = spec.pu_to_core(alternative);
      ++occupancy_[static_cast<std::size_t>(core)];
      ++counters_.migrations;
      ++dom(alternative).migrations;
      now += config_.cost.migration_cycles;
    } else {
      // No free core to flee to: the thread timeshares the core with the
      // interloper for the burst instead of losing it outright.
      const double stall = 0.5 * burst;
      counters_.noise_stall_cycles += stall;
      dom(ts.pu).noise_stall_cycles += stall;
      now += stall;
    }
  }
  return now;
}

namespace {
// The per-domain mirror of a level's CacheStats; levels beyond 3 have no
// counter slot (the machine-global view folds exactly levels 1-3 too).
CacheStats* level_stats(MachineCounters& c, int level) {
  if (level == 1) return &c.l1;
  if (level == 2) return &c.l2;
  if (level == 3) return &c.l3;
  return nullptr;
}
}  // namespace

double Machine::charge_access(int pu, const Access& a, double t) {
  double cost = 0.0;
  MachineCounters& d = dom(pu);
  // Home package of this line: the NUMA directory's per-address answer when
  // one is attached (modulo the package count, so a directory configured
  // with more domains than the machine has packages still maps sanely),
  // falling back to the global home_package knob, falling back to "local".
  int home = config_.spec.memory.home_package;
  if (config_.numa != nullptr) {
    const int h = config_.numa->domain_of(a.addr);
    if (h >= 0) home = h % config_.spec.packages;
  }
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    Level& lvl = levels_[li];
    const int inst = pu / lvl.spec.pus_per_instance;
    SetAssocCache& cache = lvl.instances[static_cast<std::size_t>(inst)];
    const auto r = cache.access(a.addr, a.write);
    // Mirror this lookup's stat increments into the (phase, core) domain —
    // the machine-global l1/l2/l3 views aggregate the cache instances
    // directly, so the mirror is what makes per-domain sums conserve them.
    if (CacheStats* ls = level_stats(d, lvl.spec.level)) {
      if (r.hit) {
        ++ls->hits;
      } else {
        ++ls->misses;
        if (r.evicted_dirty) ++ls->dirty_evictions;
      }
    }
    cost += lvl.spec.hit_latency_cycles;
    const bool last_level = li + 1 == levels_.size();
    if (a.write && lvl.instances.size() > 1) {
      // Coherence: gaining write ownership invalidates copies in every other
      // instance of this level.
      const std::uint64_t line = a.addr / static_cast<std::uint64_t>(lvl.spec.line_bytes);
      for (std::size_t other = 0; other < lvl.instances.size(); ++other) {
        if (other != static_cast<std::size_t>(inst)) {
          lvl.instances[other].invalidate_line(line);
        }
      }
    }
    if (last_level && r.evicted_dirty) {
      // Write-back occupies the memory controller but does not stall the
      // thread.  (The evicted line's own home may differ from the fetched
      // line's; charging the fetch's home keeps the model one-lookup cheap
      // and is exact whenever eviction victim and fetch target share a
      // region, the common case for the engine's streaming phases.)
      const int pkg = home >= 0 ? home : config_.spec.pu_to_package(pu);
      const double transfer =
          std::max(lvl.spec.line_bytes / config_.spec.memory.bytes_per_cycle_per_controller,
                   config_.spec.memory.random_line_occupancy_cycles);
      controller_free_[static_cast<std::size_t>(pkg)] =
          std::max(controller_free_[static_cast<std::size_t>(pkg)], t) + transfer;
      ++counters_.dram_writebacks;
      ++d.dram_writebacks;
    }
    if (r.hit) return cost;
  }
  // Miss in every level: fetch from DRAM through the serving controller
  // (the line's home node when one is modelled).
  const int this_pkg = config_.spec.pu_to_package(pu);
  const int pkg = home >= 0 ? home : this_pkg;
  const bool remote = home >= 0 && this_pkg != home;
  const int line_bytes = levels_.empty() ? 64 : levels_.back().spec.line_bytes;
  const double transfer =
      std::max(line_bytes / config_.spec.memory.bytes_per_cycle_per_controller,
               config_.spec.memory.random_line_occupancy_cycles);
  double& free_at = controller_free_[static_cast<std::size_t>(pkg)];
  const double start = std::max(t + cost, free_at);
  const double queue_delay = start - (t + cost);
  free_at = start + transfer;
  ++counters_.dram_line_fetches;
  counters_.dram_queue_cycles += queue_delay;
  ++d.dram_line_fetches;
  d.dram_queue_cycles += queue_delay;
  if (remote) {
    ++counters_.dram_remote_fetches;
    ++d.dram_remote_fetches;
  }
  // The data transfer itself overlaps with the access latency for the
  // requesting thread; only the overlapped latency and any queueing behind
  // earlier transfers stall it.
  const double latency = config_.spec.memory.dram_latency_cycles *
                         (remote ? config_.spec.memory.remote_latency_factor : 1.0);
  cost += latency / config_.cost.mlp + queue_delay;
  return cost;
}

PhaseResult Machine::run_phase(const PhaseWork& work, int instr_calls_per_task) {
  const int n = config_.n_threads;
  const double phase_start = global_cycles_;

  // Per-core attribution row for this phase tag.  Repeated phases with the
  // same tag (one per timestep) accumulate into the same row; map nodes are
  // stable, so the hot-path pointer survives later insertions.
  auto& phase_row = phase_core_[work.tag];
  if (phase_row.empty()) {
    phase_row.resize(static_cast<std::size_t>(config_.spec.n_cores()));
  }
  cur_phase_ = &phase_row;

  // --- Dispatch: the master pushes tasks into the queue(s). Task i becomes
  // available once pushed, which staggers thread start times (launch skew,
  // Section IV-B).
  std::vector<double> available(work.tasks.size());
  for (std::size_t i = 0; i < work.tasks.size(); ++i) {
    available[i] = phase_start + static_cast<double>(i + 1) * config_.cost.dispatch_cycles_per_task;
  }

  // Static assignment: per-thread FIFO of task indices.  WorkStealing starts
  // from the same owner placement but lets idle threads raid the back end of
  // a busy peer's deque.
  std::vector<std::vector<std::uint32_t>> static_queues(static_cast<std::size_t>(n));
  std::vector<std::size_t> static_next(static_cast<std::size_t>(n), 0);
  std::vector<std::deque<std::uint32_t>> ws_queues(static_cast<std::size_t>(n));
  if (work.assignment == Assignment::Static || work.assignment == Assignment::WorkStealing) {
    for (std::uint32_t i = 0; i < work.tasks.size(); ++i) {
      const int owner = work.tasks[i].owner;
      const int w = owner >= 0 ? owner % n : static_cast<int>(i) % n;
      if (work.assignment == Assignment::Static) {
        static_queues[static_cast<std::size_t>(w)].push_back(i);
      } else {
        ws_queues[static_cast<std::size_t>(w)].push_back(i);
      }
    }
  }
  std::size_t shared_next = 0;
  double shared_queue_free = phase_start;

  // --- Wake the pool.
  using HeapItem = std::pair<double, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (int tid = 0; tid < n; ++tid) {
    ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
    ts.state = 0;
    ts.task = nullptr;
    ts.busy_cycles = 0.0;
    double t = std::max(ts.time, phase_start) + config_.cost.wake_latency_cycles;
    t = place_thread(tid, t);
    ts.time = t;
    heap.emplace(t, tid);
  }

  PhaseResult result;
  result.begin_seconds = to_seconds(phase_start);
  result.busy_seconds.assign(static_cast<std::size_t>(n), 0.0);
  result.arrival_seconds.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> arrival(static_cast<std::size_t>(n), phase_start);

  // --- Event loop: always advance the thread with the smallest local time.
  while (!heap.empty()) {
    auto [t, tid] = heap.top();
    heap.pop();
    ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
    MWX_ASSERT(ts.state != 2);
    t = consume_noise(tid, t);

    if (ts.state == 0) {
      // Acquire the next task.
      std::uint32_t idx = 0;
      bool got = false;
      if (work.assignment == Assignment::Static) {
        auto& q = static_queues[static_cast<std::size_t>(tid)];
        auto& next = static_next[static_cast<std::size_t>(tid)];
        if (next < q.size()) {
          idx = q[next++];
          got = true;
          t += config_.cost.queue_uncontended_cycles;
          t = std::max(t, available[idx]);
        }
      } else if (work.assignment == Assignment::WorkStealing) {
        auto& own = ws_queues[static_cast<std::size_t>(tid)];
        if (!own.empty()) {
          // Owner pop: lock-free bottom-end (newest) take — Chase–Lev LIFO.
          idx = own.back();
          own.pop_back();
          got = true;
          t += config_.cost.deque_pop_cycles;
          t = std::max(t, available[idx]);
        } else {
          // Probe peers round-robin; steal the top end (oldest task) of the
          // first busy deque — under a contiguous triangular split that is
          // the victim's heaviest pending chunk, which is exactly what an
          // idle thread should relieve it of.
          for (int k = 1; k < n; ++k) {
            auto& victim = ws_queues[static_cast<std::size_t>((tid + k) % n)];
            t += config_.cost.steal_probe_cycles;
            counters_.steal_overhead_cycles += config_.cost.steal_probe_cycles;
            dom(ts.pu).steal_overhead_cycles += config_.cost.steal_probe_cycles;
            if (!victim.empty()) {
              idx = victim.front();
              victim.pop_front();
              got = true;
              ++counters_.steals;
              ++dom(ts.pu).steals;
              t += config_.cost.steal_cycles;
              counters_.steal_overhead_cycles += config_.cost.steal_cycles;
              dom(ts.pu).steal_overhead_cycles += config_.cost.steal_cycles;
              t = std::max(t, available[idx]);
              if (config_.trace != nullptr) {
                config_.trace->record(tid, perf::TraceKind::Steal, work.tag, to_seconds(t),
                                      to_seconds(t), (tid + k) % n);
              }
              break;
            }
          }
        }
      } else {
        if (shared_next < work.tasks.size()) {
          const double lock_start = std::max(t, shared_queue_free);
          counters_.queue_wait_cycles += lock_start - t;
          dom(ts.pu).queue_wait_cycles += lock_start - t;
          shared_queue_free = lock_start + config_.cost.queue_pop_cycles;
          idx = static_cast<std::uint32_t>(shared_next++);
          got = true;
          t = std::max(lock_start + config_.cost.queue_pop_cycles, available[idx]);
        }
      }
      if (!got) {
        // Nothing left: arrive at the barrier.
        ts.state = 2;
        ts.time = t;
        arrival[static_cast<std::size_t>(tid)] = t;
        park_thread(tid, t);
        continue;
      }
      const SimTask& task = work.tasks[idx];
      ts.task = &task;
      ts.state = 1;
      ts.next_access = task.access_begin;
      ts.compute_left = task.compute_cycles;
      if (config_.instrumentation_agent && instr_calls_per_task > 0) {
        ts.compute_left +=
            static_cast<double>(instr_calls_per_task) * config_.cost.instrumentation_call_cycles;
      }
      const std::uint32_t n_acc = task.access_end - task.access_begin;
      ts.compute_per_access = n_acc > 0 ? task.compute_cycles / static_cast<double>(n_acc) : 0.0;
      ts.task_begin = t;
      ts.time = t;
      heap.emplace(t, tid);
      continue;
    }

    // Executing: run one batch of accesses (with their share of compute), or
    // the remaining pure compute.
    const SimTask& task = *ts.task;
    const double factor = compute_factor(ts.pu);
    if (ts.next_access < task.access_end) {
      const std::uint32_t end = std::min(task.access_end, ts.next_access + kAccessBatch);
      for (; ts.next_access < end; ++ts.next_access) {
        const double comp = ts.compute_per_access * factor;
        ts.compute_left -= ts.compute_per_access;
        t += comp + charge_access(ts.pu, work.accesses[ts.next_access], t + comp);
      }
      if (ts.next_access < task.access_end) {
        ts.time = t;
        heap.emplace(t, tid);
        continue;
      }
      // fall through to finish the task with any residual compute
    }
    if (ts.compute_left > 0.0) {
      t += ts.compute_left * factor;
      ts.compute_left = 0.0;
    }
    // JaMON-style synchronized monitor updates at task end.
    for (int m = 0; m < task.monitor_updates; ++m) {
      const double lock_start = std::max(t, monitor_lock_free_);
      counters_.monitor_wait_cycles += lock_start - t;
      dom(ts.pu).monitor_wait_cycles += lock_start - t;
      monitor_lock_free_ = lock_start + config_.cost.monitor_lock_hold_cycles;
      t = lock_start + config_.cost.monitor_lock_hold_cycles;
    }
    ts.busy_cycles += t - ts.task_begin;
    if (config_.record_events) {
      event_log_.record(tid, work.tag, to_seconds(ts.task_begin), to_seconds(t),
                        ts.pu >= 0 ? config_.spec.pu_to_core(ts.pu) : -1);
    }
    if (config_.trace != nullptr) {
      config_.trace->record(tid, perf::TraceKind::Task, work.tag, to_seconds(ts.task_begin),
                            to_seconds(t), task.owner);
    }
    ts.task = nullptr;
    ts.state = 0;
    ts.time = t;
    heap.emplace(t, tid);
  }

  // --- Barrier: release at last arrival + trip cost.
  double release = phase_start;
  for (int tid = 0; tid < n; ++tid) {
    release = std::max(release, arrival[static_cast<std::size_t>(tid)]);
  }
  release += config_.cost.barrier_cycles;
  for (int tid = 0; tid < n; ++tid) {
    ThreadState& ts = threads_[static_cast<std::size_t>(tid)];
    counters_.barrier_wait_cycles += release - arrival[static_cast<std::size_t>(tid)];
    // The thread is parked at the barrier; charge the wait to the core it
    // arrived from (park_thread recorded it as last_pu).
    dom(ts.last_pu).barrier_wait_cycles += release - arrival[static_cast<std::size_t>(tid)];
    ts.time = release;
    result.busy_seconds[static_cast<std::size_t>(tid)] = to_seconds(ts.busy_cycles);
    result.arrival_seconds[static_cast<std::size_t>(tid)] =
        to_seconds(arrival[static_cast<std::size_t>(tid)]);
  }
  global_cycles_ = release;
  result.end_seconds = to_seconds(release);
  if (config_.trace != nullptr) {
    config_.trace->record(config_.trace->external_lane(), perf::TraceKind::Phase, work.tag,
                          result.begin_seconds, result.end_seconds,
                          static_cast<int>(work.tasks.size()));
  }
  cur_phase_ = nullptr;
  return result;
}

void Machine::run_serial(double compute_cycles) {
  require(compute_cycles >= 0.0, "serial section cannot run backwards");
  global_cycles_ += compute_cycles;
}

void Machine::reset_counters() {
  // Clears the machine-global aggregate, every per-instance CacheStats (all
  // L1/L2/L3 domains — the lazily-folded counters() view reads them, so a
  // survivor would resurrect in the next snapshot), and the per-phase
  // per-core attribution matrix.
  counters_ = {};
  for (auto& lvl : levels_) {
    for (auto& c : lvl.instances) c.reset_stats();
  }
  phase_core_.clear();
  cur_phase_ = nullptr;
}

namespace {
CacheStats aggregate(const std::vector<SetAssocCache>& instances) {
  CacheStats s;
  for (const auto& c : instances) s += c.stats();
  return s;
}
}  // namespace

const MachineCounters& Machine::counters() const {
  // Cache-level stats live in the cache objects; fold them in lazily.
  auto* self = const_cast<Machine*>(this);
  self->counters_.l1 = {};
  self->counters_.l2 = {};
  self->counters_.l3 = {};
  for (const auto& lvl : levels_) {
    if (lvl.spec.level == 1) self->counters_.l1 = aggregate(lvl.instances);
    if (lvl.spec.level == 2) self->counters_.l2 = aggregate(lvl.instances);
    if (lvl.spec.level == 3) self->counters_.l3 = aggregate(lvl.instances);
  }
  return counters_;
}

std::vector<int> Machine::counter_phases() const {
  std::vector<int> out;
  out.reserve(phase_core_.size());
  for (const auto& [tag, row] : phase_core_) out.push_back(tag);
  return out;
}

MachineCounters Machine::phase_core_counters(int phase_tag, int core) const {
  require(core >= 0 && core < config_.spec.n_cores(), "core index out of range");
  const auto it = phase_core_.find(phase_tag);
  if (it == phase_core_.end()) return {};
  return it->second[static_cast<std::size_t>(core)];
}

MachineCounters Machine::phase_counters(int phase_tag) const {
  MachineCounters sum;
  const auto it = phase_core_.find(phase_tag);
  if (it == phase_core_.end()) return sum;
  for (const auto& cell : it->second) sum += cell;
  return sum;
}

MachineCounters Machine::core_counters(int core) const {
  require(core >= 0 && core < config_.spec.n_cores(), "core index out of range");
  MachineCounters sum;
  for (const auto& [tag, row] : phase_core_) sum += row[static_cast<std::size_t>(core)];
  return sum;
}

perf::CounterSet to_counter_set(const MachineCounters& m) {
  using perf::Counter;
  perf::CounterSet c;
  c[Counter::kL1Hits] = static_cast<double>(m.l1.hits);
  c[Counter::kL1Misses] = static_cast<double>(m.l1.misses);
  c[Counter::kL1DirtyEvictions] = static_cast<double>(m.l1.dirty_evictions);
  c[Counter::kL2Hits] = static_cast<double>(m.l2.hits);
  c[Counter::kL2Misses] = static_cast<double>(m.l2.misses);
  c[Counter::kL2DirtyEvictions] = static_cast<double>(m.l2.dirty_evictions);
  c[Counter::kL3Hits] = static_cast<double>(m.l3.hits);
  c[Counter::kL3Misses] = static_cast<double>(m.l3.misses);
  c[Counter::kL3DirtyEvictions] = static_cast<double>(m.l3.dirty_evictions);
  // The VTune-style generic pair maps to the last-level view, so sim and
  // native reports render on the same Table II columns.
  c[Counter::kCacheReferences] = static_cast<double>(m.l3.accesses());
  c[Counter::kCacheMisses] = static_cast<double>(m.l3.misses);
  c[Counter::kDramLineFetches] = static_cast<double>(m.dram_line_fetches);
  c[Counter::kDramRemoteFetches] = static_cast<double>(m.dram_remote_fetches);
  c[Counter::kDramWritebacks] = static_cast<double>(m.dram_writebacks);
  c[Counter::kDramQueueCycles] = m.dram_queue_cycles;
  c[Counter::kMigrations] = static_cast<double>(m.migrations);
  c[Counter::kSteals] = static_cast<double>(m.steals);
  c[Counter::kStealOverheadCycles] = m.steal_overhead_cycles;
  c[Counter::kNoiseStallCycles] = m.noise_stall_cycles;
  c[Counter::kQueueWaitCycles] = m.queue_wait_cycles;
  c[Counter::kMonitorWaitCycles] = m.monitor_wait_cycles;
  c[Counter::kBarrierWaitCycles] = m.barrier_wait_cycles;
  return c;
}

perf::PmuReport Machine::pmu_report() const {
  perf::PmuReport r;
  r.provider = "sim";
  r.lane_kind = "core";
  r.n_lanes = config_.spec.n_cores();
  for (const auto& [tag, row] : phase_core_) {
    for (int core = 0; core < r.n_lanes; ++core) {
      r.at(tag, core) = to_counter_set(row[static_cast<std::size_t>(core)]);
    }
  }
  // Ground-truth busy time and task counts come from the event log (which
  // records the executing core per task).  Note the log spans the machine's
  // whole lifetime: it is not windowed by reset_counters().
  if (config_.record_events) {
    const double hz = config_.spec.ghz * 1e9;
    for (int th = 0; th < event_log_.n_threads(); ++th) {
      for (const auto& e : event_log_.events_of(th)) {
        if (e.core < 0 || e.core >= r.n_lanes) continue;
        perf::CounterSet& cell = r.at(e.tag, e.core);
        cell[perf::Counter::kBusyCycles] += (e.end - e.begin) * hz;
        cell[perf::Counter::kTasks] += 1.0;
      }
    }
  }
  return r;
}

}  // namespace mwx::sim
