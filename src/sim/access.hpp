// Memory-access vocabulary shared between the MD engine's trace capture and
// the machine simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mwx::sim {

// One cache-line-granular touch.  The engine emits at most one Access per
// logical field read/write; addresses come from the heap-layout model, so a
// "Java objects" layout and a packed SoA layout produce different streams
// for identical physics.
struct Access {
  std::uint64_t addr = 0;
  bool write = false;
};

// A schedulable unit of work: a contiguous slice of a phase's access stream
// plus the arithmetic cost interleaved with it.  One SimTask corresponds to
// one work-queue entry in the paper's executor (a 1/N chunk of atoms by
// default, finer when dynamic balancing is being studied).
struct SimTask {
  int owner = -1;              // static-assignment hint; -1 = round-robin
  double compute_cycles = 0.0;
  std::uint32_t access_begin = 0;  // range into the phase access pool
  std::uint32_t access_end = 0;
  int monitor_updates = 0;     // JaMON-style synchronized updates to charge
};

enum class Assignment {
  Static,        // task i pre-assigned to its owner's private queue
  SharedQueue,   // threads pull the next task from one contended queue
  WorkStealing,  // per-thread deques; idle threads steal from the back of a
                 // busy peer's queue (modelled CAS + line-transfer cost)
};

// A phase ready for simulation: tasks plus their shared access pool.
struct PhaseWork {
  int tag = 0;                 // phase id for the event log
  Assignment assignment = Assignment::Static;
  std::vector<SimTask> tasks;
  std::vector<Access> accesses;

  void clear() {
    tasks.clear();
    accesses.clear();
  }
};

}  // namespace mwx::sim
