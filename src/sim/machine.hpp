// Discrete-event multicore machine simulator.
//
// The reproduction's substitute for the paper's physical testbeds (Table II)
// and for VTune's hardware-counter views.  A Machine instantiates, from a
// topo::MachineSpec, a set of cores with private L1/L2 caches, shared-domain
// L3 caches, one bandwidth-limited memory controller per package, and an
// OS-scheduler model with thread migration, affinity masks and background
// noise bursts.  The MD engine hands it one PhaseWork per timestep phase;
// the simulator plays the phase through the thread pool model (static 1/N
// chunks or a contended shared queue), interleaving all threads' memory
// accesses in simulated-time order, and advances a global clock separated by
// barrier synchronization — the exact structure of parallel MW
// (Section II).  Everything observable in the paper's experiments comes out
// of the counters, the event log and the core-residency timeline.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "perf/event_log.hpp"
#include "perf/pmu.hpp"
#include "perf/trace_ring.hpp"
#include "sim/access.hpp"
#include "sim/cache.hpp"
#include "sim/numa.hpp"
#include "sim/params.hpp"
#include "topo/cpuset.hpp"
#include "topo/machine_spec.hpp"

namespace mwx::sim {

struct MachineCounters {
  CacheStats l1, l2, l3;
  long long dram_line_fetches = 0;
  // Fetches served by a controller on a different package than the
  // requesting core — each paid remote_latency_factor.  A subset of
  // dram_line_fetches.
  long long dram_remote_fetches = 0;
  long long dram_writebacks = 0;
  double dram_queue_cycles = 0.0;     // aggregate queueing delay at controllers
  long long migrations = 0;
  long long steals = 0;               // successful WorkStealing task claims
  double steal_overhead_cycles = 0.0; // probe + CAS + line-transfer cost paid
  double noise_stall_cycles = 0.0;    // pinned threads waiting out noise bursts
  double queue_wait_cycles = 0.0;     // contention on the shared work queue
  double monitor_wait_cycles = 0.0;   // contention on the JaMON global lock
  double barrier_wait_cycles = 0.0;   // sum over threads of (release - arrival)

  [[nodiscard]] double dram_bytes(int line_bytes) const {
    return static_cast<double>(dram_line_fetches + dram_writebacks) * line_bytes;
  }

  MachineCounters& operator+=(const MachineCounters& o) {
    l1 += o.l1;
    l2 += o.l2;
    l3 += o.l3;
    dram_line_fetches += o.dram_line_fetches;
    dram_remote_fetches += o.dram_remote_fetches;
    dram_writebacks += o.dram_writebacks;
    dram_queue_cycles += o.dram_queue_cycles;
    migrations += o.migrations;
    steals += o.steals;
    steal_overhead_cycles += o.steal_overhead_cycles;
    noise_stall_cycles += o.noise_stall_cycles;
    queue_wait_cycles += o.queue_wait_cycles;
    monitor_wait_cycles += o.monitor_wait_cycles;
    barrier_wait_cycles += o.barrier_wait_cycles;
    return *this;
  }
};

// Maps a MachineCounters bundle onto the unified counter vocabulary.  The
// VTune-style generic cache_references/cache_misses pair maps to the
// last-level (L3) view so sim and native reports render on the same
// Table II columns.
[[nodiscard]] perf::CounterSet to_counter_set(const MachineCounters& m);

// One span of a worker thread residing on a PU — rows of Fig. 2.
struct ResidencySegment {
  int thread = 0;
  int pu = 0;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
};

struct PhaseResult {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;                // barrier release time
  std::vector<double> busy_seconds;        // per-thread time spent in tasks
  std::vector<double> arrival_seconds;     // per-thread barrier arrival
  [[nodiscard]] double duration_seconds() const { return end_seconds - begin_seconds; }
};

struct MachineConfig {
  topo::MachineSpec spec;
  CostParams cost;
  SchedulerParams sched;
  int n_threads = 1;
  // Worker i is restricted to pin_masks[i % size]; empty = all PUs allowed.
  std::vector<topo::CpuSet> pin_masks;
  bool record_events = true;      // per-task records into the event log
  bool record_residency = false;  // core-residency timeline (Fig. 2)
  // VisualVM-style agent: one core permanently busy with tool traffic, and
  // PhaseWork.instr_calls charge instrumentation_call_cycles each.
  bool instrumentation_agent = false;
  // Optional lock-free trace sink (n_threads + 1 lanes): per-task Task
  // events, Steal events and Phase brackets are recorded in *simulated*
  // seconds, so native and simulated traces of the same workload are
  // directly comparable in the chrome://tracing view.
  perf::TraceRing* trace = nullptr;
  // Optional per-address NUMA home directory.  When set, each DRAM fetch and
  // writeback is served by the controller of domain_of(addr) % packages
  // (directory answers of -1 fall back to MemorySpec::home_package), instead
  // of one global home for the whole heap.  Not owned.
  const NumaDirectory* numa = nullptr;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Executes one phase through the thread-pool model and the trailing
  // barrier.  Accesses of concurrent threads interleave in simulated time.
  // `instr_calls_per_task` models per-method instrumentation when the
  // machine was configured with an instrumentation agent.
  PhaseResult run_phase(const PhaseWork& work, int instr_calls_per_task = 0);

  // A serial master-thread section (GC pause, display update): advances the
  // global clock; worker threads stay parked.
  void run_serial(double compute_cycles);

  [[nodiscard]] double now_seconds() const { return to_seconds(global_cycles_); }
  [[nodiscard]] double to_seconds(double cycles) const {
    return cycles / (config_.spec.ghz * 1e9);
  }

  [[nodiscard]] int n_threads() const { return config_.n_threads; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }
  // Counter view (cache-level stats are folded in from the cache instances).
  [[nodiscard]] const MachineCounters& counters() const;
  void reset_counters();

  // --- Per-core, per-phase attribution (the VTune per-core view) ------------
  // Every counter mutation inside run_phase is additionally charged to the
  // (phase tag, executing core) domain, so cache misses, DRAM queueing,
  // steals and barrier waits can be attributed to "which core, during which
  // engine phase".  By construction the domains tile the machine-global
  // counters: summing any field over all tags and cores reproduces
  // counters() (cache-level stats up to floating-point accumulation order
  // for the cycle-valued fields) — the conservation law the counters-smoke
  // CI stage enforces.
  // Phase tags seen since the last reset_counters(), ascending.
  [[nodiscard]] std::vector<int> counter_phases() const;
  // One domain cell; zeroes when (tag, core) was never touched.
  [[nodiscard]] MachineCounters phase_core_counters(int phase_tag, int core) const;
  [[nodiscard]] MachineCounters phase_counters(int phase_tag) const;  // sum over cores
  [[nodiscard]] MachineCounters core_counters(int core) const;        // sum over phases
  // The full matrix as a provider-"sim" PmuReport (lane = core).  Busy
  // cycles and task counts are folded in from the event log when
  // record_events is on.
  [[nodiscard]] perf::PmuReport pmu_report() const;

  [[nodiscard]] const perf::EventLog& event_log() const { return event_log_; }
  [[nodiscard]] const std::vector<ResidencySegment>& residency() const { return residency_; }

  // Re-restricts a worker thread's affinity between phases.
  void set_affinity(int thread, const topo::CpuSet& mask);

 private:
  struct Level {
    topo::CacheLevelSpec spec;
    std::vector<SetAssocCache> instances;
  };

  struct ThreadState {
    double time = 0.0;
    int pu = -1;
    int last_pu = -1;
    topo::CpuSet affinity;
    // Phase-local progress:
    int state = 0;  // 0 = needs task, 1 = executing, 2 = done
    const SimTask* task = nullptr;
    std::uint32_t next_access = 0;
    double compute_left = 0.0;
    double compute_per_access = 0.0;
    double busy_cycles = 0.0;
    double task_begin = 0.0;
    double seg_begin = 0.0;
  };

  // Places `t` on a PU at time `now` per the scheduler model; returns the
  // (possibly adjusted) time after any migration cost.
  double place_thread(int tid, double now);
  void park_thread(int tid, double now);
  void note_residency(int tid, double now);

  // Charges one cache-hierarchy access from `pu` at thread-time `t`;
  // returns the stall cycles.
  double charge_access(int pu, const Access& a, double t);

  // Consumes any noise burst that has arrived on `t`'s core; may stall or
  // migrate the thread.  Returns adjusted thread time.
  double consume_noise(int tid, double now);

  [[nodiscard]] double exp_sample(double mean);
  [[nodiscard]] double compute_factor(int pu) const;

  // The (current phase, core) domain cell for an access from `pu`.  Valid
  // only inside run_phase (cur_phase_ is set there).
  [[nodiscard]] MachineCounters& dom(int pu) {
    MWX_ASSERT(cur_phase_ != nullptr && pu >= 0);
    return (*cur_phase_)[static_cast<std::size_t>(config_.spec.pu_to_core(pu))];
  }

  MachineConfig config_;
  std::vector<Level> levels_;
  std::vector<double> controller_free_;   // per package, cycles
  std::vector<double> noise_next_;        // per core: next burst start, cycles
  std::vector<int> occupancy_;            // running threads per core
  std::vector<ThreadState> threads_;
  double global_cycles_ = 0.0;
  double monitor_lock_free_ = 0.0;        // global JaMON lock
  double noise_rate_cycles_ = 0.0;        // mean cycles between bursts per core
  double noise_len_cycles_ = 0.0;
  int agent_core_ = -1;
  Rng rng_;
  MachineCounters counters_;
  // Per-phase-tag, per-core counter domains (the attribution matrix), plus
  // the hot pointer into the row of the phase currently being simulated.
  std::map<int, std::vector<MachineCounters>> phase_core_;
  std::vector<MachineCounters>* cur_phase_ = nullptr;
  perf::EventLog event_log_;
  std::vector<ResidencySegment> residency_;
};

}  // namespace mwx::sim
