#include "workloads/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace mwx::workloads {

using md::AtomType;
using md::AtomTypeTable;
using md::Box;
using md::MolecularSystem;
using units::ev;

namespace {

// Shuffles `items` with the workload RNG (Fisher–Yates), modelling the
// arbitrary creation order of objects loaded from a scene file.
template <typename T>
void shuffle(std::vector<T>& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::swap(items[i - 1], items[static_cast<std::size_t>(rng.below(i))]);
  }
}

// Adds atoms in (shuffled) creation order; returns creation index per site.
struct Site {
  Vec3 pos;
  Vec3 vel;
  int type;
  double charge;
  bool movable;
};

std::vector<int> add_sites(MolecularSystem& sys, std::vector<Site>& sites, Rng& rng,
                           bool shuffle_order) {
  std::vector<int> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  if (shuffle_order) shuffle(order, rng);
  std::vector<int> index_of_site(sites.size());
  for (int k : order) {
    const Site& s = sites[static_cast<std::size_t>(k)];
    index_of_site[static_cast<std::size_t>(k)] =
        sys.add_atom(s.type, s.pos, s.vel, s.charge, s.movable);
  }
  return index_of_site;
}

Vec3 thermal_velocity(Rng& rng, double mass, double temperature_k) {
  return rng.maxwell_boltzmann(units::kBoltzmann * temperature_k / mass);
}

}  // namespace

// ---------------------------------------------------------------------------
// nanocar: 989 atoms, 2277 bonds, no charges; ~half the atoms form an
// immovable gold platform.  Bond-force dominated.
// ---------------------------------------------------------------------------
BenchmarkSpec make_nanocar(std::uint64_t seed) {
  Rng rng(seed);
  AtomTypeTable types;
  const int kCarbon = types.add({"C", 12.011, ev(0.0048), 3.4});
  const int kGold = types.add({"Au", 196.97, ev(0.039), 2.63});

  Box box{{0, 0, 0}, {120, 120, 60}};
  MolecularSystem sys(types, box);

  // Platform: 495 immovable gold atoms in a 33 x 15 sheet at z = 6.
  const double a = 2.88;  // Au nearest-neighbor spacing
  std::vector<Site> platform;
  platform.reserve(495);
  for (int iy = 0; iy < 15; ++iy) {
    for (int ix = 0; ix < 33; ++ix) {
      const Vec3 p{12.0 + a * ix + (iy % 2) * (a / 2), 35.0 + a * 0.866 * iy, 6.0};
      platform.push_back({p, {}, kGold, 0.0, /*movable=*/false});
    }
  }

  // Car: 494 carbon atoms in a 13 x 19 x 2 lattice hovering above the
  // platform.  (13*19*2 = 494.)
  const int nx = 13, ny = 19, nz = 2;
  const double bond_len = 2.8;
  std::vector<Site> car;
  car.reserve(static_cast<std::size_t>(nx * ny * nz));
  const Vec3 car_origin{45.0, 42.0, 6.0 + 3.6};
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const Vec3 p = car_origin + Vec3{bond_len * ix, bond_len * iy, bond_len * iz};
        car.push_back({p, thermal_velocity(rng, 12.011, 50.0), kCarbon, 0.0, true});
      }
    }
  }

  // Create atoms: platform first, then car, both in shuffled order as a
  // whole (file-load order).
  std::vector<Site> all;
  all.reserve(platform.size() + car.size());
  for (auto& s : platform) all.push_back(s);
  for (auto& s : car) all.push_back(s);
  const std::vector<int> idx = add_sites(sys, all, rng, /*shuffle_order=*/true);
  const auto car_idx = [&](int ix, int iy, int iz) {
    return idx[platform.size() +
               static_cast<std::size_t>((iz * ny + iy) * nx + ix)];
  };

  // Bonds: nearest-neighbor radial bonds, straight-line angle bonds, and
  // torsions along x — trimmed/extended to exactly 2277 total (Table I).
  const double kr = ev(10.0);   // eV/Å^2
  const double ka = ev(1.5);    // eV/rad^2
  const double kt = ev(0.12);
  int budget = 2277;
  auto radial = [&](int p, int q) {
    if (budget <= 0) return;
    sys.add_radial_bond({p, q, kr, bond_len});
    --budget;
  };
  auto angular = [&](int p, int q, int r) {
    if (budget <= 0) return;
    sys.add_angular_bond({p, q, r, ka, 3.14159265358979323846});
    --budget;
  };
  auto torsion = [&](int p, int q, int r, int s) {
    if (budget <= 0) return;
    sys.add_torsion_bond({p, q, r, s, kt, 1, 0.0});
    --budget;
  };
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        if (ix + 1 < nx) radial(car_idx(ix, iy, iz), car_idx(ix + 1, iy, iz));
        if (iy + 1 < ny) radial(car_idx(ix, iy, iz), car_idx(ix, iy + 1, iz));
        if (iz + 1 < nz) radial(car_idx(ix, iy, iz), car_idx(ix, iy, iz + 1));
      }
    }
  }
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix + 2 < nx; ++ix) {
        angular(car_idx(ix, iy, iz), car_idx(ix + 1, iy, iz), car_idx(ix + 2, iy, iz));
      }
    }
    for (int ix = 0; ix < nx; ++ix) {
      for (int iy = 0; iy + 2 < ny; ++iy) {
        angular(car_idx(ix, iy, iz), car_idx(ix, iy + 1, iz), car_idx(ix, iy + 2, iz));
      }
    }
  }
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix + 3 < nx; ++ix) {
        torsion(car_idx(ix, iy, iz), car_idx(ix + 1, iy, iz), car_idx(ix + 2, iy, iz),
                car_idx(ix + 3, iy, iz));
      }
    }
  }
  // Fill any remaining budget with cross-diagonal stiffeners.
  for (int iy = 0; iy + 1 < ny && budget > 0; ++iy) {
    for (int ix = 0; ix + 1 < nx && budget > 0; ++ix) {
      if (budget <= 0) break;
      sys.add_radial_bond({car_idx(ix, iy, 0), car_idx(ix + 1, iy + 1, 1), kr,
                           bond_len * std::sqrt(3.0)});
      --budget;
    }
  }
  require(sys.n_bonds_total() == 2277, "nanocar bond count must match Table I");
  require(sys.n_atoms() == 989, "nanocar atom count must match Table I");

  md::EngineConfig cfg;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 5.5;
  cfg.skin = 0.9;
  return {"nanocar", std::move(sys), cfg, "Bonds"};
}

// ---------------------------------------------------------------------------
// salt: 400 Na+ and 400 Cl- in a rock-salt arrangement; every atom charged,
// no bonds.  Coulomb dominated.
// ---------------------------------------------------------------------------
BenchmarkSpec make_salt(std::uint64_t seed) {
  Rng rng(seed);
  AtomTypeTable types;
  const int kNa = types.add({"Na", 22.99, ev(0.028), 2.35});
  const int kCl = types.add({"Cl", 35.45, ev(0.028), 4.40});

  const double a = 2.82;  // Na-Cl spacing
  const int nx = 10, ny = 10, nz = 8;  // 800 sites
  Box box{{0, 0, 0}, {nx * a + 24.0, ny * a + 24.0, nz * a + 24.0}};
  MolecularSystem sys(types, box);

  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(nx * ny * nz));
  const Vec3 origin{12.0, 12.0, 12.0};
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const bool sodium = (ix + iy + iz) % 2 == 0;
        const int type = sodium ? kNa : kCl;
        const double mass = sodium ? 22.99 : 35.45;
        sites.push_back({origin + Vec3{a * ix, a * iy, a * iz},
                         thermal_velocity(rng, mass, 300.0), type,
                         sodium ? +1.0 : -1.0, true});
      }
    }
  }
  add_sites(sys, sites, rng, /*shuffle_order=*/true);
  require(sys.n_atoms() == 800 && sys.n_charged() == 800,
          "salt composition must match Table I");

  md::EngineConfig cfg;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 7.0;
  cfg.skin = 0.9;
  return {"salt", std::move(sys), cfg, "Ionic"};
}

// ---------------------------------------------------------------------------
// Al-1000: a densely packed stationary block of 999 aluminium atoms hit by a
// single fast gold atom.  Lennard-Jones dominated; the collision cascade
// forces frequent neighbor-list updates.
// ---------------------------------------------------------------------------
BenchmarkSpec make_al1000(std::uint64_t seed) {
  Rng rng(seed);
  AtomTypeTable types;
  const int kAl = types.add({"Al", 26.98, ev(0.35), 2.55});
  const int kAu = types.add({"Au", 196.97, ev(0.40), 2.58});

  const double a = 4.05;  // fcc lattice constant
  Box box{{0, 0, 0}, {55, 55, 70}};
  MolecularSystem sys(types, box);

  // fcc block: generate lattice sites until 999 atoms.
  std::vector<Site> sites;
  const Vec3 origin{14.0, 14.0, 12.0};
  const Vec3 basis[4] = {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
  for (int iz = 0; iz < 7 && sites.size() < 999; ++iz) {
    for (int iy = 0; iy < 7 && sites.size() < 999; ++iy) {
      for (int ix = 0; ix < 7 && sites.size() < 999; ++ix) {
        for (const Vec3& b : basis) {
          if (sites.size() >= 999) break;
          const Vec3 p = origin + (Vec3{static_cast<double>(ix), static_cast<double>(iy),
                                        static_cast<double>(iz)} +
                                   b) *
                                      a;
          sites.push_back({p, thermal_velocity(rng, 26.98, 300.0), kAl, 0.0, true});
        }
      }
    }
  }
  require(sites.size() == 999, "Al block must have 999 atoms");

  // The projectile: one gold atom above the block, moving down fast
  // (~60 eV of kinetic energy).
  const double speed = 0.12;  // Å/fs ≈ 12 km/s
  sites.push_back({origin + Vec3{3.2 * a, 3.1 * a, 7.4 * a},
                   {0.004, -0.003, -speed}, kAu, 0.0, true});

  add_sites(sys, sites, rng, /*shuffle_order=*/true);
  require(sys.n_atoms() == 1000, "Al-1000 atom count must match Table I");

  md::EngineConfig cfg;
  cfg.dt_fs = 1.0;
  cfg.cutoff = 7.5;
  cfg.skin = 0.8;
  return {"Al-1000", std::move(sys), cfg, "Lennard-Jones"};
}

std::vector<std::string> benchmark_names() { return {"nanocar", "salt", "Al-1000"}; }

BenchmarkSpec make_benchmark(const std::string& name, std::uint64_t seed) {
  if (name == "nanocar") return make_nanocar(seed);
  if (name == "salt") return make_salt(seed);
  if (name == "Al-1000" || name == "al1000") return make_al1000(seed);
  require(false, "unknown benchmark: " + name);
  return make_nanocar(seed);  // unreachable
}

// ---------------------------------------------------------------------------
// Generic generators
// ---------------------------------------------------------------------------
MolecularSystem make_lj_gas(int n, double density, double temperature_k, std::uint64_t seed) {
  require(n > 0 && density > 0.0, "gas needs atoms and a positive density");
  Rng rng(seed);
  AtomTypeTable types;
  const int kAr = types.add({"Ar", 39.95, ev(0.0104), 3.40});
  const double side = std::cbrt(static_cast<double>(n) / density);
  Box box{{0, 0, 0}, {side, side, side}};
  MolecularSystem sys(types, box);
  // Simple-cubic seed lattice (avoids overlaps), thermal velocities.
  const int per_side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n))));
  const double spacing = side / per_side;
  int placed = 0;
  for (int iz = 0; iz < per_side && placed < n; ++iz) {
    for (int iy = 0; iy < per_side && placed < n; ++iy) {
      for (int ix = 0; ix < per_side && placed < n; ++ix) {
        const Vec3 p{(ix + 0.5) * spacing, (iy + 0.5) * spacing, (iz + 0.5) * spacing};
        sys.add_atom(kAr, p, thermal_velocity(rng, 39.95, temperature_k));
        ++placed;
      }
    }
  }
  return sys;
}

MolecularSystem make_lj_coulomb_gas(int n, double density, double temperature_k,
                                    double charged_fraction, std::uint64_t seed) {
  require(n > 0 && density > 0.0, "gas needs atoms and a positive density");
  require(charged_fraction >= 0.0 && charged_fraction <= 1.0,
          "charged_fraction must be in [0, 1]");
  Rng rng(seed);
  AtomTypeTable types;
  const int kAr = types.add({"Ar", 39.95, ev(0.0104), 3.40});
  const double side = std::cbrt(static_cast<double>(n) / density);
  Box box{{0, 0, 0}, {side, side, side}};
  MolecularSystem sys(types, box);
  const int per_side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n))));
  const double spacing = side / per_side;
  // Even count of charges, alternating sign so the system stays net neutral.
  int n_charged = static_cast<int>(std::lround(charged_fraction * n));
  n_charged -= n_charged % 2;
  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(n));
  int placed = 0;
  for (int iz = 0; iz < per_side && placed < n; ++iz) {
    for (int iy = 0; iy < per_side && placed < n; ++iy) {
      for (int ix = 0; ix < per_side && placed < n; ++ix) {
        const Vec3 p{(ix + 0.5) * spacing, (iy + 0.5) * spacing, (iz + 0.5) * spacing};
        const double charge =
            placed < n_charged ? (placed % 2 == 0 ? +1.0 : -1.0) : 0.0;
        sites.push_back({p, thermal_velocity(rng, 39.95, temperature_k), kAr, charge, true});
        ++placed;
      }
    }
  }
  add_sites(sys, sites, rng, /*shuffle_order=*/true);
  return sys;
}

MolecularSystem make_chain(int n, std::uint64_t seed) {
  require(n >= 2, "chain needs at least two atoms");
  Rng rng(seed);
  AtomTypeTable types;
  const int kC = types.add({"C", 12.011, ev(0.0048), 3.4});
  const double b = 1.54;
  Box box{{0, 0, 0}, {b * n + 20.0, 40, 40}};
  MolecularSystem sys(types, box);
  for (int i = 0; i < n; ++i) {
    // Slight zig-zag so angles/torsions are away from singular geometry.
    const Vec3 p{10.0 + b * i, 20.0 + 0.3 * (i % 2), 20.0 + 0.2 * ((i / 2) % 2)};
    sys.add_atom(kC, p, thermal_velocity(rng, 12.011, 80.0));
  }
  for (int i = 0; i + 1 < n; ++i) sys.add_radial_bond({i, i + 1, ev(12.0), b});
  for (int i = 0; i + 2 < n; ++i) {
    sys.add_angular_bond({i, i + 1, i + 2, ev(1.2), 1.9106332362490186});
  }
  for (int i = 0; i + 3 < n; ++i) {
    sys.add_torsion_bond({i, i + 1, i + 2, i + 3, ev(0.08), 3, 0.0});
  }
  return sys;
}

MolecularSystem make_ionic(int n, std::uint64_t seed) {
  require(n >= 2 && n % 2 == 0, "ionic system needs an even atom count");
  Rng rng(seed);
  AtomTypeTable types;
  const int kNa = types.add({"Na", 22.99, ev(0.028), 2.35});
  const int kCl = types.add({"Cl", 35.45, ev(0.028), 4.40});
  const double a = 2.82;
  const int per_side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n))));
  Box box{{0, 0, 0},
          {per_side * a + 24.0, per_side * a + 24.0, per_side * a + 24.0}};
  MolecularSystem sys(types, box);
  int placed = 0;
  for (int iz = 0; iz < per_side && placed < n; ++iz) {
    for (int iy = 0; iy < per_side && placed < n; ++iy) {
      for (int ix = 0; ix < per_side && placed < n; ++ix) {
        const bool sodium = (ix + iy + iz) % 2 == 0;
        sys.add_atom(sodium ? kNa : kCl, Vec3{12.0 + a * ix, 12.0 + a * iy, 12.0 + a * iz},
                     thermal_velocity(rng, sodium ? 22.99 : 35.45, 300.0),
                     sodium ? +1.0 : -1.0);
        ++placed;
      }
    }
  }
  return sys;
}

MolecularSystem make_bulk_crystal(int n, double temperature_k, std::uint64_t seed) {
  require(n > 0, "crystal needs at least one atom");
  Rng rng(seed);
  AtomTypeTable types;
  const int kAr = types.add({"Ar", 39.95, ev(0.0104), 3.40});
  // Smallest u x u x u block of 4-atom fcc unit cells holding >= n sites;
  // we fill cells in lattice order and stop at exactly n atoms.
  const double a = 5.26;  // solid-argon fcc lattice constant, Å
  int u = 1;
  while (4ll * u * u * u < n) ++u;
  const double margin = 6.0;  // keep the free surface off the walls
  const double side = u * a + 2.0 * margin;
  Box box{{0, 0, 0}, {side, side, side}};
  MolecularSystem sys(types, box);
  const Vec3 basis[4] = {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(n));
  for (int iz = 0; iz < u && static_cast<int>(sites.size()) < n; ++iz) {
    for (int iy = 0; iy < u && static_cast<int>(sites.size()) < n; ++iy) {
      for (int ix = 0; ix < u && static_cast<int>(sites.size()) < n; ++ix) {
        for (const Vec3& b : basis) {
          if (static_cast<int>(sites.size()) >= n) break;
          const Vec3 p = Vec3{margin, margin, margin} +
                         (Vec3{static_cast<double>(ix), static_cast<double>(iy),
                               static_cast<double>(iz)} +
                          b) *
                             a;
          sites.push_back({p, thermal_velocity(rng, 39.95, temperature_k), kAr, 0.0, true});
        }
      }
    }
  }
  add_sites(sys, sites, rng, /*shuffle_order=*/true);
  require(sys.n_atoms() == n, "bulk crystal atom count mismatch");
  return sys;
}

MolecularSystem make_droplet(int n, double temperature_k, std::uint64_t seed) {
  require(n >= 8, "droplet needs enough atoms for a core and a vapor shell");
  Rng rng(seed);
  AtomTypeTable types;
  const int kAr = types.add({"Ar", 39.95, ev(0.0104), 3.40});
  const int n_core = n / 2;

  // Liquid core: fcc sites at liquid-argon density (~0.021 atoms/Å^3 ==
  // fcc a ≈ 5.75 Å), kept if inside the sphere that holds ~n_core of them.
  const double a = 5.75;
  const double core_radius = std::cbrt(3.0 * n_core / (4.0 * 3.14159265358979323846 *
                                                       (4.0 / (a * a * a))));
  // Box: core plus a roomy vapor margin on every side.
  const double side = 2.0 * core_radius + 14.0 * a;
  Box box{{0, 0, 0}, {side, side, side}};
  MolecularSystem sys(types, box);
  const Vec3 center{side / 2.0, side / 2.0, side / 2.0};

  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(n));
  const Vec3 basis[4] = {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
  const int u = static_cast<int>(std::ceil(2.0 * core_radius / a)) + 1;
  const Vec3 lattice0 = center - Vec3{u * a / 2.0, u * a / 2.0, u * a / 2.0};
  for (int iz = 0; iz < u && static_cast<int>(sites.size()) < n_core; ++iz) {
    for (int iy = 0; iy < u && static_cast<int>(sites.size()) < n_core; ++iy) {
      for (int ix = 0; ix < u && static_cast<int>(sites.size()) < n_core; ++ix) {
        for (const Vec3& b : basis) {
          if (static_cast<int>(sites.size()) >= n_core) break;
          const Vec3 p = lattice0 + (Vec3{static_cast<double>(ix), static_cast<double>(iy),
                                          static_cast<double>(iz)} +
                                     b) *
                                        a;
          const Vec3 d = p - center;
          if (d.x * d.x + d.y * d.y + d.z * d.z > core_radius * core_radius) continue;
          sites.push_back({p, thermal_velocity(rng, 39.95, temperature_k), kAr, 0.0, true});
        }
      }
    }
  }
  const int core_placed = static_cast<int>(sites.size());

  // Vapor: a sparse cubic lattice over the whole box, skipping sites inside
  // the core sphere (plus one lattice spacing of clearance), until the total
  // reaches n.  Deterministic — same seed, same droplet.
  const int n_vapor = n - core_placed;
  int per_side = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(n_vapor)))) + 1;
  for (;; ++per_side) {
    // Count admissible vapor sites at this granularity before committing.
    const double spacing = side / per_side;
    const double clear2 = (core_radius + a) * (core_radius + a);
    long long ok = 0;
    for (int iz = 0; iz < per_side && ok < n_vapor; ++iz) {
      for (int iy = 0; iy < per_side && ok < n_vapor; ++iy) {
        for (int ix = 0; ix < per_side && ok < n_vapor; ++ix) {
          const Vec3 p{(ix + 0.5) * spacing, (iy + 0.5) * spacing, (iz + 0.5) * spacing};
          const Vec3 d = p - center;
          if (d.x * d.x + d.y * d.y + d.z * d.z <= clear2) continue;
          ++ok;
        }
      }
    }
    if (ok >= n_vapor) break;
  }
  const double spacing = side / per_side;
  const double clear2 = (core_radius + a) * (core_radius + a);
  for (int iz = 0; iz < per_side && static_cast<int>(sites.size()) < n; ++iz) {
    for (int iy = 0; iy < per_side && static_cast<int>(sites.size()) < n; ++iy) {
      for (int ix = 0; ix < per_side && static_cast<int>(sites.size()) < n; ++ix) {
        const Vec3 p{(ix + 0.5) * spacing, (iy + 0.5) * spacing, (iz + 0.5) * spacing};
        const Vec3 d = p - center;
        if (d.x * d.x + d.y * d.y + d.z * d.z <= clear2) continue;
        sites.push_back({p, thermal_velocity(rng, 39.95, temperature_k), kAr, 0.0, true});
      }
    }
  }
  add_sites(sys, sites, rng, /*shuffle_order=*/true);
  require(sys.n_atoms() == n, "droplet atom count mismatch");
  return sys;
}

TableRow table1_row(const BenchmarkSpec& spec) {
  return {spec.name, spec.system.n_atoms(), spec.system.n_charged(),
          spec.system.n_bonds_total(), spec.dominant};
}

}  // namespace mwx::workloads
