// The representative benchmarks of Table I, plus generic generators used by
// tests and examples.
//
//   benchmark  atoms  charged  bonds  dominant computation
//   nanocar      989        0   2277  bonded forces
//   salt         800      800      0  ionic (Coulomb)
//   Al-1000     1000        0      0  Lennard-Jones
//
// The MW repository files are not redistributable, so each benchmark is a
// synthetic construction matched to Table I's characteristics: nanocar is a
// bonded "car" lattice resting on an immovable gold platform (the platform
// atoms do not interact with one another); salt is a rock-salt arrangement
// of 400 Na+ and 400 Cl-; Al-1000 is a dense fcc aluminium block struck by
// one fast gold atom, driving frequent neighbor-list rebuilds.
//
// Atom *creation order* is shuffled (seeded) in salt and Al-1000: a Java
// object array populated from a scene file has no particular spatial order,
// which is what makes Lennard-Jones gathers irregular in memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "md/engine.hpp"
#include "md/system.hpp"

namespace mwx::workloads {

struct BenchmarkSpec {
  std::string name;
  md::MolecularSystem system;
  md::EngineConfig engine;   // recommended dt/cutoff/skin for this system
  std::string dominant;      // Table I's "dominant computation type"
};

// --- Table I benchmarks -----------------------------------------------------
BenchmarkSpec make_nanocar(std::uint64_t seed = 11);
BenchmarkSpec make_salt(std::uint64_t seed = 22);
BenchmarkSpec make_al1000(std::uint64_t seed = 33);

// All three, in Table I order.
std::vector<std::string> benchmark_names();
BenchmarkSpec make_benchmark(const std::string& name, std::uint64_t seed = 7);

// --- Generic generators (tests, examples, ablations) -------------------------
// A cubic LJ gas/liquid of `n` atoms at the given number density (atoms/Å^3)
// and temperature, single species.
md::MolecularSystem make_lj_gas(int n, double density, double temperature_k,
                                std::uint64_t seed);

// Like make_lj_gas, but with atom creation order shuffled (the scene-file
// idiom above) and a net-neutral +-1e charge pattern on ~`charged_fraction`
// of the atoms.  This is the raw_speed ablation workload: irregular gathers
// through both the LJ and Coulomb kernels at once.
md::MolecularSystem make_lj_coulomb_gas(int n, double density, double temperature_k,
                                        double charged_fraction, std::uint64_t seed);

// A bonded linear chain of `n` atoms (radial + angular + torsion terms).
md::MolecularSystem make_chain(int n, std::uint64_t seed);

// A rock-salt ionic cluster of `n` ions (n even), used for scaled Coulomb
// ablations (e.g. the PME crossover bench).
md::MolecularSystem make_ionic(int n, std::uint64_t seed);

// --- Workload-axis generators (the 100k–1M scaling sweep) --------------------
// A bulk fcc argon crystal of ~`n` atoms (rounded up to a whole u x u x u
// block of 4-atom fcc unit cells, a = 5.26 Å) with thermal velocities.
// Homogeneous density — every cell holds the same few atoms, so this is the
// pure workload-axis scaling point: rebuild cost grows O(n) with no
// occupancy skew.  Creation order is shuffled (the scene-file idiom).
md::MolecularSystem make_bulk_crystal(int n, double temperature_k, std::uint64_t seed);

// A solvated droplet: ~half the atoms as a dense fcc liquid sphere at the
// box center, the rest as a sparse vapor lattice around it.  Cell occupancy
// spans dense-liquid to near-empty in one system — the irregular-occupancy
// stress case for the parallel binning/prefix passes (chunk histograms see
// wildly uneven rows; the output must still be byte-identical to serial).
// Creation order is shuffled.
md::MolecularSystem make_droplet(int n, double temperature_k, std::uint64_t seed);

// Table I row data for reporting.
struct TableRow {
  std::string name;
  int n_atoms = 0;
  int n_charged = 0;
  int n_bonds = 0;
  std::string dominant;
};
TableRow table1_row(const BenchmarkSpec& spec);

}  // namespace mwx::workloads
