// Allocation tracker — the VisualVM "live allocated objects" stand-in.
//
// Section V-B used VisualVM's live-objects view to discover that "over 50%
// of our live memory was being used by one type of temporary object, a
// simple convenience class that wraps together three floating point values",
// but the view could not attribute allocations to threads.  This tracker
// records per-type *and per-thread* live/total counts, answering exactly the
// question the paper says the tool could not.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace mwx::perf {

struct TypeReport {
  std::string type_name;
  std::size_t instance_bytes = 0;
  long long live_count = 0;
  long long total_allocated = 0;
  long long peak_live_count = 0;  // high-water mark between collections
  [[nodiscard]] long long live_bytes() const {
    return live_count * static_cast<long long>(instance_bytes);
  }
  [[nodiscard]] long long peak_live_bytes() const {
    return peak_live_count * static_cast<long long>(instance_bytes);
  }
};

class AllocationTracker {
 public:
  // `n_threads` lanes; thread -1 (unknown) maps to lane 0, mirroring the
  // tool limitation only when the caller does not know its worker index.
  explicit AllocationTracker(int n_threads) : n_threads_(n_threads) {
    require(n_threads > 0, "tracker needs at least one thread lane");
  }

  // Registers a tracked type; returns its id.  Not thread-safe (call during
  // setup, before workers run).  `transient_type` marks short-lived objects
  // that a young-generation collection reclaims.
  int register_type(std::string name, std::size_t instance_bytes, bool transient_type = true) {
    types_.push_back({std::move(name), instance_bytes, transient_type});
    counters_.emplace_back(std::make_unique<Lanes>(n_threads_));
    return static_cast<int>(types_.size()) - 1;
  }

  void on_alloc(int type_id, int thread) {
    auto& lane = lane_of(type_id, thread);
    const long long live = lane.live.fetch_add(1, std::memory_order_relaxed) + 1;
    lane.total.fetch_add(1, std::memory_order_relaxed);
    long long peak = lane.peak.load(std::memory_order_relaxed);
    while (live > peak &&
           !lane.peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
    }
  }

  void on_free(int type_id, int thread) {
    lane_of(type_id, thread).live.fetch_sub(1, std::memory_order_relaxed);
  }

  // Models a young-generation collection: transient types' live counts drop
  // to zero (the paper's temporaries "live until the next garbage
  // collection"); long-lived types survive.
  void collect_garbage() {
    for (std::size_t t = 0; t < counters_.size(); ++t) {
      if (!types_[t].transient_type) continue;
      for (auto& lane : counters_[t]->lanes) lane.live.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] int n_types() const { return static_cast<int>(types_.size()); }

  [[nodiscard]] TypeReport report(int type_id) const {
    require(type_id >= 0 && type_id < n_types(), "type id out of range");
    TypeReport r;
    r.type_name = types_[static_cast<std::size_t>(type_id)].name;
    r.instance_bytes = types_[static_cast<std::size_t>(type_id)].bytes;
    for (const auto& lane : counters_[static_cast<std::size_t>(type_id)]->lanes) {
      r.live_count += lane.live.load(std::memory_order_relaxed);
      r.total_allocated += lane.total.load(std::memory_order_relaxed);
      r.peak_live_count += lane.peak.load(std::memory_order_relaxed);
    }
    return r;
  }

  // Live instances of `type_id` allocated by `thread` — the attribution the
  // paper wished VisualVM provided.
  [[nodiscard]] long long live_by_thread(int type_id, int thread) const {
    require(type_id >= 0 && type_id < n_types(), "type id out of range");
    require(thread >= 0 && thread < n_threads_, "thread out of range");
    return counters_[static_cast<std::size_t>(type_id)]
        ->lanes[static_cast<std::size_t>(thread)]
        .live.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<TypeReport> all_reports() const {
    std::vector<TypeReport> out;
    out.reserve(types_.size());
    for (int i = 0; i < n_types(); ++i) out.push_back(report(i));
    return out;
  }

  // Fraction of total live bytes owned by `type_id` (0 when heap is empty).
  [[nodiscard]] double live_bytes_fraction(int type_id) const {
    long long total = 0;
    for (int i = 0; i < n_types(); ++i) total += report(i).live_bytes();
    return total > 0 ? static_cast<double>(report(type_id).live_bytes()) /
                           static_cast<double>(total)
                     : 0.0;
  }

 private:
  struct alignas(64) Lane {
    std::atomic<long long> live{0};
    std::atomic<long long> total{0};
    std::atomic<long long> peak{0};
  };
  struct Lanes {
    explicit Lanes(int n) : lanes(static_cast<std::size_t>(n)) {}
    std::vector<Lane> lanes;
  };
  struct TypeInfo {
    std::string name;
    std::size_t bytes;
    bool transient_type = true;
  };

  Lane& lane_of(int type_id, int thread) {
    MWX_ASSERT(type_id >= 0 && type_id < n_types());
    const int lane = thread >= 0 && thread < n_threads_ ? thread : 0;
    return counters_[static_cast<std::size_t>(type_id)]->lanes[static_cast<std::size_t>(lane)];
  }

  int n_threads_;
  std::vector<TypeInfo> types_;
  std::vector<std::unique_ptr<Lanes>> counters_;
};

}  // namespace mwx::perf
