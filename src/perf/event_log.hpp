// Ground-truth event log.
//
// Section IV showed that sampling profilers (VisualVM at 1 s, VTune at
// 5–10 ms) cannot resolve MW's 80–5000 µs work items.  The repository's
// answer is to make exact begin/end interval records available — from the
// native runtime (steady_clock) and from the simulator (simulated seconds)
// alike — and to treat every profiler view as a *derived* artifact of this
// log, so measurement error can be quantified against truth.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace mwx::perf {

struct Event {
  int thread = 0;   // worker index
  int tag = 0;      // caller-defined label id (e.g. phase number)
  int core = -1;    // executing core if known (simulator always knows)
  double begin = 0.0;  // seconds
  double end = 0.0;
};

class EventLog {
 public:
  explicit EventLog(int n_threads) : per_thread_(static_cast<std::size_t>(n_threads)) {
    require(n_threads > 0, "event log needs at least one thread lane");
  }

  // Records one busy interval for `thread`.  Each thread writes only its own
  // lane, so recording is synchronization-free.
  void record(int thread, int tag, double begin, double end, int core = -1) {
    MWX_ASSERT(thread >= 0 && thread < n_threads());
    MWX_ASSERT(end >= begin);
    per_thread_[static_cast<std::size_t>(thread)].push_back({thread, tag, core, begin, end});
  }

  [[nodiscard]] int n_threads() const { return static_cast<int>(per_thread_.size()); }

  [[nodiscard]] const std::vector<Event>& events_of(int thread) const {
    return per_thread_[static_cast<std::size_t>(thread)];
  }

  [[nodiscard]] std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& v : per_thread_) n += v.size();
    return n;
  }

  // Earliest begin / latest end across all lanes; {0,0} when empty.
  [[nodiscard]] std::pair<double, double> span() const {
    double lo = 0.0, hi = 0.0;
    bool any = false;
    for (const auto& lane : per_thread_) {
      for (const auto& e : lane) {
        if (!any) {
          lo = e.begin;
          hi = e.end;
          any = true;
        } else {
          lo = std::min(lo, e.begin);
          hi = std::max(hi, e.end);
        }
      }
    }
    return {lo, hi};
  }

  // Exact busy seconds of `thread` within [t0, t1).
  [[nodiscard]] double busy_in(int thread, double t0, double t1) const {
    double busy = 0.0;
    for (const auto& e : events_of(thread)) {
      busy += std::max(0.0, std::min(e.end, t1) - std::max(e.begin, t0));
    }
    return busy;
  }

  // The event covering time t on `thread`, or nullptr (idle).  Events within
  // a lane are recorded in time order, so a binary search suffices.
  [[nodiscard]] const Event* at(int thread, double t) const {
    const auto& lane = events_of(thread);
    auto it = std::upper_bound(lane.begin(), lane.end(), t,
                               [](double v, const Event& e) { return v < e.begin; });
    if (it == lane.begin()) return nullptr;
    --it;
    return (t >= it->begin && t < it->end) ? &*it : nullptr;
  }

  // Exact per-thread busy seconds over the whole log.
  [[nodiscard]] std::vector<double> busy_per_thread() const {
    std::vector<double> out(per_thread_.size(), 0.0);
    for (std::size_t i = 0; i < per_thread_.size(); ++i) {
      for (const auto& e : per_thread_[i]) out[i] += e.end - e.begin;
    }
    return out;
  }

  void clear() {
    for (auto& lane : per_thread_) lane.clear();
  }

 private:
  std::vector<std::vector<Event>> per_thread_;
};

}  // namespace mwx::perf
