#include "perf/pmu.hpp"

#include <limits>
#include <ostream>

#include "common/require.hpp"

namespace mwx::perf {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kCycles: return "cycles";
    case Counter::kInstructions: return "instructions";
    case Counter::kCacheReferences: return "cache_references";
    case Counter::kCacheMisses: return "cache_misses";
    case Counter::kL1Hits: return "l1_hits";
    case Counter::kL1Misses: return "l1_misses";
    case Counter::kL1DirtyEvictions: return "l1_dirty_evictions";
    case Counter::kL2Hits: return "l2_hits";
    case Counter::kL2Misses: return "l2_misses";
    case Counter::kL2DirtyEvictions: return "l2_dirty_evictions";
    case Counter::kL3Hits: return "l3_hits";
    case Counter::kL3Misses: return "l3_misses";
    case Counter::kL3DirtyEvictions: return "l3_dirty_evictions";
    case Counter::kDramLineFetches: return "dram_line_fetches";
    case Counter::kDramRemoteFetches: return "dram_remote_fetches";
    case Counter::kDramWritebacks: return "dram_writebacks";
    case Counter::kDramQueueCycles: return "dram_queue_cycles";
    case Counter::kMigrations: return "migrations";
    case Counter::kSteals: return "steals";
    case Counter::kStealOverheadCycles: return "steal_overhead_cycles";
    case Counter::kNoiseStallCycles: return "noise_stall_cycles";
    case Counter::kQueueWaitCycles: return "queue_wait_cycles";
    case Counter::kMonitorWaitCycles: return "monitor_wait_cycles";
    case Counter::kBarrierWaitCycles: return "barrier_wait_cycles";
    case Counter::kBusyCycles: return "busy_cycles";
    case Counter::kTasks: return "tasks";
    case Counter::kCpuNanos: return "cpu_nanos";
    case Counter::kSoftPageFaults: return "soft_page_faults";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* build_git_sha() {
#ifdef MWX_GIT_SHA
  return MWX_GIT_SHA;
#else
  return "unknown";
#endif
}

CounterSet& PmuReport::at(int phase, int lane) {
  require(n_lanes > 0, "PmuReport needs n_lanes set before cells are touched");
  require(lane >= 0 && lane < n_lanes, "lane out of range");
  auto& row = by_phase_[phase];
  if (row.empty()) row.resize(static_cast<std::size_t>(n_lanes));
  return row[static_cast<std::size_t>(lane)];
}

const CounterSet* PmuReport::find(int phase, int lane) const {
  const auto it = by_phase_.find(phase);
  if (it == by_phase_.end()) return nullptr;
  if (lane < 0 || lane >= static_cast<int>(it->second.size())) return nullptr;
  return &it->second[static_cast<std::size_t>(lane)];
}

std::vector<int> PmuReport::phases() const {
  std::vector<int> out;
  out.reserve(by_phase_.size());
  for (const auto& [tag, row] : by_phase_) out.push_back(tag);
  return out;
}

CounterSet PmuReport::phase_total(int phase) const {
  CounterSet sum;
  const auto it = by_phase_.find(phase);
  if (it == by_phase_.end()) return sum;
  for (const auto& cell : it->second) sum += cell;
  return sum;
}

CounterSet PmuReport::lane_total(int lane) const {
  CounterSet sum;
  for (const auto& [tag, row] : by_phase_) {
    if (lane >= 0 && lane < static_cast<int>(row.size())) {
      sum += row[static_cast<std::size_t>(lane)];
    }
  }
  return sum;
}

CounterSet PmuReport::total() const {
  CounterSet sum;
  for (const auto& [tag, row] : by_phase_) {
    for (const auto& cell : row) sum += cell;
  }
  return sum;
}

namespace {
void write_counter_object(std::ostream& out, const CounterSet& c, const char* indent) {
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    // Zero-suppressed: domains touch a small counter subset, and the report
    // joiner treats missing keys as zero.
    if (c.v[i] == 0.0) continue;
    out << (first ? "\n" : ",\n") << indent << "  \""
        << counter_name(static_cast<Counter>(i)) << "\": " << c.v[i];
    first = false;
  }
  if (!first) out << "\n" << indent;
  out << "}";
}
}  // namespace

void PmuReport::write_json(std::ostream& out, const std::string& name,
                           const std::string& git_sha, const CounterSet* machine_total) const {
  // Round-trip precision: the report joiner re-verifies conservation against
  // machine_total, which 6-significant-digit formatting would defeat.
  const auto old_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n"
      << "  \"kind\": \"pmu\",\n"
      << "  \"schema_version\": " << kArtifactSchemaVersion << ",\n"
      << "  \"name\": \"" << name << "\",\n"
      << "  \"git_sha\": \"" << git_sha << "\",\n"
      << "  \"provider\": \"" << provider << "\",\n"
      << "  \"lane_kind\": \"" << lane_kind << "\",\n"
      << "  \"n_lanes\": " << n_lanes << ",\n";
  if (!phase_names.empty()) {
    out << "  \"phase_names\": {";
    bool first = true;
    for (const auto& [tag, pname] : phase_names) {
      out << (first ? "\n" : ",\n") << "    \"" << tag << "\": \"" << pname << "\"";
      first = false;
    }
    out << "\n  },\n";
  }
  out << "  \"phases\": {";
  bool first_phase = true;
  for (const auto& [tag, row] : by_phase_) {
    out << (first_phase ? "\n" : ",\n") << "    \"" << tag << "\": {\n"
        << "      \"lanes\": [";
    first_phase = false;
    for (std::size_t l = 0; l < row.size(); ++l) {
      out << (l == 0 ? "\n        " : ",\n        ");
      write_counter_object(out, row[l], "        ");
    }
    out << "\n      ],\n      \"total\": ";
    write_counter_object(out, phase_total(tag), "      ");
    out << "\n    }";
  }
  out << "\n  },\n  \"total\": ";
  write_counter_object(out, total(), "  ");
  if (machine_total != nullptr) {
    out << ",\n  \"machine_total\": ";
    write_counter_object(out, *machine_total, "  ");
  }
  out << "\n}\n";
  out.precision(old_precision);
}

}  // namespace mwx::perf
