// Native hardware-counter provider (perf_event_open) with a labelled
// software fallback.
//
// The paper read cycles, instructions and cache miss counts out of VTune's
// PMU drivers.  On a stock Linux box the same numbers come from
// perf_event_open(2) scoped to one thread; inside unprivileged containers
// the syscall is commonly denied (perf_event_paranoid, seccomp), so this
// provider degrades to CLOCK_THREAD_CPUTIME_ID + rusage(RUSAGE_THREAD) and
// reports itself as provider "fallback" — measurements are never silently
// fabricated, only relabelled.
//
// Usage shape (mirrors the sim provider's phase attribution):
//   * each worker thread owns one ThreadPmu session (lazily opened,
//     thread_local via ThreadPmu::calling_thread());
//   * PmuAccumulator::task_begin()/task_end(worker, phase) bracket a chain of
//     work on the calling worker and accumulate the counter delta into the
//     (worker, phase) domain — exactly the per-core/per-phase view the sim
//     backend produces, with worker threads standing in for cores.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "perf/pmu.hpp"

namespace mwx::perf {

// One thread's counter session.  Construct (or first use) on the thread to
// be measured; read() reports cumulative values since construction.
class ThreadPmu {
 public:
  ThreadPmu();
  ~ThreadPmu();

  ThreadPmu(const ThreadPmu&) = delete;
  ThreadPmu& operator=(const ThreadPmu&) = delete;

  // True when at least the cycle counter is a real perf_event fd.
  [[nodiscard]] bool hardware() const { return hardware_; }

  // Cumulative counters for the owning thread.  Hardware fields are filled
  // only when hardware(); kCpuNanos/kSoftPageFaults are always filled so the
  // fallback path is exercised (and testable) everywhere.
  [[nodiscard]] CounterSet read() const;

  // The calling thread's session, opened on first use.
  static ThreadPmu& calling_thread();

 private:
  // fd order: cycles, instructions, cache-references, cache-misses.
  std::array<int, 4> fds_{{-1, -1, -1, -1}};
  bool hardware_ = false;
};

// Per-worker, per-phase counter accumulation for the native backend.  Each
// worker writes only its own lane (no synchronization on the hot path);
// report()/provider() must run after the traced pool has quiesced.
class PmuAccumulator {
 public:
  // Engine/pool phase tags must lie in [0, kMaxPhaseTag); larger tags fold
  // into the last slot rather than being dropped.
  static constexpr int kMaxPhaseTag = 32;

  explicit PmuAccumulator(int n_workers);

  PmuAccumulator(const PmuAccumulator&) = delete;
  PmuAccumulator& operator=(const PmuAccumulator&) = delete;

  [[nodiscard]] int n_workers() const { return static_cast<int>(lanes_.size()); }

  // Snapshot the calling thread's counters as the start of a work window.
  void task_begin();
  // Close the window opened by the matching task_begin() on this thread and
  // charge the delta (plus `tasks` executed units) to (worker, phase_tag).
  void task_end(int worker, int phase_tag, double tasks = 1.0);

  // "perf_event" when every touched lane read hardware counters,
  // "fallback" otherwise (including when nothing ran).
  [[nodiscard]] std::string provider() const;

  [[nodiscard]] PmuReport report() const;

  // Not safe against concurrent task_begin/task_end — quiesce first.
  void reset();

 private:
  struct alignas(64) Lane {
    std::array<CounterSet, kMaxPhaseTag> by_phase{};
    bool touched = false;
    bool hardware = false;
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace mwx::perf
