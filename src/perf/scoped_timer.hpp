// Wall-clock timing helpers for the native runtime.
#pragma once

#include <chrono>
#include <functional>

namespace mwx::perf {

class StopWatch {
 public:
  StopWatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Calls `sink(elapsed_seconds)` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::function<void(double)> sink) : sink_(std::move(sink)) {}
  ~ScopedTimer() {
    if (sink_) sink_(watch_.elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::function<void(double)> sink_;
  StopWatch watch_;
};

}  // namespace mwx::perf
