// Thread-code timeline — the view Section IV-C found missing.
//
// "A simple way to see what method a thread was executing at a given moment
// for all threads would be tremendously helpful."  Shark could show either
// all threads on one core or one thread across cores, never all threads'
// code side by side.  Built on the exact EventLog, this view answers both
// the instantaneous query (what is each thread running at time t?) and the
// overview (per-thread rows of dominant activity over time), optionally
// degraded through a sampling period to show what a 2010 tool would have
// displayed instead.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/event_log.hpp"

namespace mwx::perf {

class TimelineView {
 public:
  // Maps event tags to single display characters; unmapped tags render '?'
  // and idle renders '.'.
  explicit TimelineView(std::map<int, char> tag_symbols)
      : tag_symbols_(std::move(tag_symbols)) {}

  // The instantaneous query: tag each thread is executing at time t
  // (-1 = idle).
  [[nodiscard]] static std::vector<int> tags_at(const EventLog& log, double t);

  // Renders one row per thread over [t0, t1) in `buckets` columns.  Each
  // cell shows the tag occupying the largest share of that bucket.
  [[nodiscard]] std::string render(const EventLog& log, double t0, double t1,
                                   int buckets) const;

  // Renders what a sample-and-hold profiler with the given period would
  // display for the same window: the state at each sample instant is held
  // for the whole following period.
  [[nodiscard]] std::string render_sampled(const EventLog& log, double t0, double t1,
                                           int buckets, double period_seconds) const;

  // Fraction of render cells (excluding idle-agreeing ones) where the
  // sampled view differs from the exact view — a scalar "how wrong was the
  // tool" measure.
  [[nodiscard]] double sampled_disagreement(const EventLog& log, double t0, double t1,
                                            int buckets, double period_seconds) const;

 private:
  [[nodiscard]] char symbol_of(int tag) const;
  [[nodiscard]] std::vector<std::string> rows_exact(const EventLog& log, double t0, double t1,
                                                    int buckets) const;
  [[nodiscard]] std::vector<std::string> rows_sampled(const EventLog& log, double t0,
                                                      double t1, int buckets,
                                                      double period_seconds) const;
  static std::string join_rows(const std::vector<std::string>& rows);

  std::map<int, char> tag_symbols_;
};

}  // namespace mwx::perf
