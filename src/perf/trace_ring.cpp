#include "perf/trace_ring.hpp"

#include <algorithm>
#include <ostream>

namespace mwx::perf {

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::Phase: return "phase";
    case TraceKind::Task: return "task";
    case TraceKind::Steal: return "steal";
    case TraceKind::Quiesce: return "quiesce";
    case TraceKind::SimStep: return "sim_step";
  }
  return "unknown";
}

TraceRing::TraceRing(int n_lanes, std::size_t capacity_per_lane)
    : capacity_(round_up_pow2(std::max<std::size_t>(2, capacity_per_lane))),
      mask_(capacity_ - 1) {
  require(n_lanes > 0, "trace ring needs at least one lane");
  lanes_.reserve(static_cast<std::size_t>(n_lanes));
  for (int i = 0; i < n_lanes; ++i) lanes_.push_back(std::make_unique<Lane>(capacity_));
}

std::uint64_t TraceRing::total_records() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->head.load(std::memory_order_acquire);
  return n;
}

TraceSnapshot TraceRing::snapshot() const {
  TraceSnapshot snap;
  for (int li = 0; li < n_lanes(); ++li) {
    const Lane& lane = *lanes_[static_cast<std::size_t>(li)];
    const std::uint64_t head = lane.head.load(std::memory_order_acquire);
    // The writer's next store targets slot `head & mask_`, which aliases
    // sequence `head - capacity`; exclude it so a half-written cell can
    // never be copied even before the head advances.
    const std::uint64_t lo = head > mask_ ? head - mask_ : 0;
    std::vector<MergedTraceEvent> copied;
    copied.reserve(static_cast<std::size_t>(head - lo));
    for (std::uint64_t seq = lo; seq < head; ++seq) {
      const Cell& c = lane.cells[static_cast<std::size_t>(seq) & mask_];
      MergedTraceEvent m;
      m.event.kind = static_cast<TraceKind>(c.kind.load(std::memory_order_relaxed));
      m.event.tag = c.tag.load(std::memory_order_relaxed);
      m.event.arg = c.arg.load(std::memory_order_relaxed);
      m.event.begin = c.begin.load(std::memory_order_relaxed);
      m.event.end = c.end.load(std::memory_order_relaxed);
      m.lane = li;
      m.seq = seq;
      copied.push_back(m);
    }
    // Re-read the head: anything the writer lapped during the copy holds a
    // newer event (or a torn mix) and is discarded, not mis-reported.
    const std::uint64_t head2 = lane.head.load(std::memory_order_acquire);
    const std::uint64_t valid_lo = head2 > mask_ ? head2 - mask_ : 0;
    for (auto& m : copied) {
      if (m.seq >= valid_lo) snap.events.push_back(m);
    }
    snap.total_records += head;
    snap.dropped += std::max(lo, valid_lo);
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const MergedTraceEvent& a, const MergedTraceEvent& b) {
                     return a.event.begin < b.event.begin;
                   });
  return snap;
}

void TraceRing::clear() {
  for (auto& lane : lanes_) lane->head.store(0, std::memory_order_release);
}

void write_chrome_trace(const TraceSnapshot& snapshot, std::ostream& out,
                        const std::map<int, std::string>& phase_names) {
  out << "{";
  if (!phase_names.empty()) {
    // Extra top-level keys are legal in the chrome://tracing object format;
    // mwx-report reads this instead of hard-coding the tag vocabulary.
    out << "\"phase_names\":{";
    bool first = true;
    for (const auto& [tag, name] : phase_names) {
      out << (first ? "" : ",") << "\"" << tag << "\":\"" << name << "\"";
      first = false;
    }
    out << "},\n";
  }
  out << "\"traceEvents\":[";
  bool first = true;
  for (const auto& m : snapshot.events) {
    if (!first) out << ",";
    first = false;
    // chrome://tracing wants microseconds; complete ("X") events carry their
    // own duration so no begin/end pairing is needed.
    out << "\n{\"name\":\"" << trace_kind_name(m.event.kind) << "\",\"ph\":\"X\",\"pid\":0"
        << ",\"tid\":" << m.lane << ",\"ts\":" << m.event.begin * 1e6
        << ",\"dur\":" << (m.event.end - m.event.begin) * 1e6
        << ",\"args\":{\"tag\":" << m.event.tag << ",\"arg\":" << m.event.arg
        << ",\"seq\":" << m.seq << "}}";
  }
  out << "\n]}\n";
}

}  // namespace mwx::perf
