// Application-level performance monitors.
//
// JamonMonitor reproduces the Java Application Monitor's design: named
// start/stop counters whose updates are guarded by one global lock
// ("synchronized sections").  Section IV-A found that these synchronized
// updates *serialized* parallel MW — the first observer effect.  The
// monitor is kept deliberately faithful (one mutex for the whole registry)
// so the effect is measurable; ShardedMonitor is the corrected design with
// per-thread shards that are only merged at read time.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace mwx::perf {

struct MonitorSnapshot {
  std::string key;
  long long hits = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  [[nodiscard]] double mean_seconds() const {
    return hits > 0 ? total_seconds / static_cast<double>(hits) : 0.0;
  }
};

// Faithful JaMON-style monitor: every add() takes the registry lock.
class JamonMonitor {
 public:
  // Records one interval under `key`.  Thread-safe via a single global
  // mutex, exactly the serializing behaviour the paper measured.
  void add(const std::string& key, double seconds) {
    std::lock_guard lock(mutex_);
    auto& s = stats_[key];
    s.add(seconds);
  }

  [[nodiscard]] std::vector<MonitorSnapshot> snapshot() const {
    std::lock_guard lock(mutex_);
    std::vector<MonitorSnapshot> out;
    out.reserve(stats_.size());
    for (const auto& [key, s] : stats_) {
      out.push_back({key, s.count(), s.sum(), s.min(), s.max()});
    }
    return out;
  }

  [[nodiscard]] long long total_hits() const {
    std::lock_guard lock(mutex_);
    long long n = 0;
    for (const auto& [key, s] : stats_) n += s.count();
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RunningStats> stats_;
};

// Contention-free variant: each thread owns a shard keyed by (thread, key);
// shards are merged only when a snapshot is requested.
class ShardedMonitor {
 public:
  explicit ShardedMonitor(int n_threads) : shards_(static_cast<std::size_t>(n_threads)) {}

  // Records one interval from `thread` (0-based worker index).  No
  // synchronization on the hot path.
  void add(int thread, const std::string& key, double seconds) {
    shards_[static_cast<std::size_t>(thread)].stats[key].add(seconds);
  }

  [[nodiscard]] std::vector<MonitorSnapshot> snapshot() const {
    std::map<std::string, MonitorSnapshot> merged;
    for (const auto& shard : shards_) {
      for (const auto& [key, s] : shard.stats) {
        auto& m = merged[key];
        if (m.key.empty()) {
          m = {key, s.count(), s.sum(), s.min(), s.max()};
        } else {
          m.hits += s.count();
          m.total_seconds += s.sum();
          m.min_seconds = std::min(m.min_seconds, s.min());
          m.max_seconds = std::max(m.max_seconds, s.max());
        }
      }
    }
    std::vector<MonitorSnapshot> out;
    out.reserve(merged.size());
    for (auto& [key, m] : merged) out.push_back(std::move(m));
    return out;
  }

 private:
  struct alignas(64) Shard {  // cache-line aligned to avoid false sharing
    std::map<std::string, RunningStats> stats;
  };
  std::vector<Shard> shards_;
};

}  // namespace mwx::perf
