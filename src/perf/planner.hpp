// perf::Planner — Kremlin-style what-if analysis over one instrumented run.
//
// The observability stack so far is descriptive: TraceRing says what each
// worker did and when, the PMU matrix says which phase missed in which cache
// on which core.  The planner makes it prescriptive.  From ONE instrumented
// run (a TraceSnapshot plus the matching PmuReport, either backend) it
// reconstructs the phase DAG the engine actually executed — per phase-class:
// total work, critical-path span (the longest owner chain inside a phase
// bracket), and self-parallelism work/span — and then *predicts* the wall
// time of that workload on every candidate (machine x queue discipline x
// pinning policy) without running it.
//
// A naive work/span projection T(N) = W/N + span is not enough for this
// workload (Acar et al., "Parallel Work Inflation, Memory Effects..."):
// parallel work inflates with memory behaviour.  The planner therefore
// decomposes each phase's measured busy cycles into compute + memory stall
// using the simulator's own pricing rules (sim/cost_model.hpp), remaps the
// measured miss counts onto the target machine's capacities through a
// log-capacity miss curve, re-prices the stalls with the target's latencies,
// and bounds the phase by the target's memory-controller bandwidth — the
// resource that actually pins Al-1000 (Section V).  Prediction per phase is
//
//   T = occurrences * (overheads + max(work_t/N_eff + acquisition,
//                                      span_t, serial_floor, dram_floor))
//
// with discipline-specific acquisition/serialization costs and a pinned-vs-
// OS-scheduled policy split (migration rate measured from the reference run;
// pinned threads instead wait out noise bursts).
//
// The module deliberately links only mwx_perf + mwx_topo: the simulator's
// parameter structs are header-only, so the planner can price machines it
// never instantiates.  Validation (actually running the predicted configs)
// lives in the callers: tools/mwx_run --plan, bench/planner_validation.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "perf/pmu.hpp"
#include "perf/trace_ring.hpp"
#include "sim/cost_model.hpp"
#include "sim/params.hpp"
#include "topo/machine_spec.hpp"

namespace mwx::perf {

// One candidate configuration: where to run and how to schedule.
struct PlanConfig {
  topo::MachineSpec spec;
  sim::Assignment assignment = sim::Assignment::Static;
  bool pinned = false;       // one thread per core vs OS-scheduled
  int n_threads = 1;
  int chunks_per_thread = 1;  // 1 static split; >1 enables dynamic balancing

  // "xeon_x7560_4s/steal/pinned/4t" — stable key used in PLAN json.
  [[nodiscard]] std::string label() const;
};

// Profile of one phase class: one engine phase tag, split by whether the
// occurrence sat on a neighbor-rebuild step (rebuild steps run a different
// schedule — overlap, bin, prefix — and a different force-phase shape).
struct PhaseProfile {
  int tag = 0;
  bool rebuild_step = false;
  long long occurrences = 0;
  double tasks = 0.0;             // total tasks over all occurrences
  double work_cycles = 0.0;       // total busy cycles (PMU, exact)
  double span_cycles = 0.0;       // sum over occurrences of the critical chain
  double max_task_cycles = 0.0;   // longest single task seen (span floor)

  // Memory behaviour, phase-tag totals apportioned to the class by work
  // share (counter domains are per tag, not per occurrence).
  double accesses = 0.0;
  double l1_misses = 0.0;
  double l2_misses = 0.0;
  double l3_misses = 0.0;
  double dram_fetches = 0.0;
  double dram_remote_fetches = 0.0;
  double dram_writebacks = 0.0;
  double dram_queue_cycles = 0.0;
  double queue_wait_cycles = 0.0;
  double steal_overhead_cycles = 0.0;
  double noise_stall_cycles = 0.0;

  // Filled by the profile builder from the stall decomposition.
  double compute_cycles = 0.0;    // work minus re-priced memory stall
  double stall_cycles = 0.0;      // memory stall at the reference machine

  [[nodiscard]] double self_parallelism() const {
    return span_cycles > 0.0 ? work_cycles / span_cycles : 1.0;
  }
};

// Everything profile_from() needs to know about the instrumented run that
// the trace/report cannot carry themselves.
struct RunMeta {
  std::string benchmark;
  int steps = 0;                   // 0 = infer from the trace
  int n_threads = 1;
  int slots = 1;                   // accumulation slots (Engine::n_slots())
  double measured_seconds = 0.0;   // simulated (or wall) seconds of the run
  topo::MachineSpec spec;          // machine the run executed on
  sim::CostParams cost;
  sim::SchedulerParams sched;
  sim::Assignment assignment = sim::Assignment::Static;
};

// The reconstructed DAG profile of one run.
struct RunProfile {
  RunMeta meta;
  std::vector<PhaseProfile> phases;  // ordered by (tag, rebuild_step)
  double serial_cycles = 0.0;        // master-only residue outside phases
  double total_work_cycles = 0.0;
  double critical_path_cycles = 0.0;  // serial + sum of phase spans
  long long observed_steps = 0;       // steps visible in the trace window
  std::uint64_t trace_dropped = 0;    // lapped ring records (profile scaled up)

  [[nodiscard]] double self_parallelism() const {
    return critical_path_cycles > 0.0 ? total_work_cycles / critical_path_cycles : 1.0;
  }
  [[nodiscard]] const PhaseProfile* find(int tag, bool rebuild_step) const;
};

// Predicted cost of one phase class under one config, with the binding
// constraint named so reports can say *why* a config loses.
struct PhasePrediction {
  int tag = 0;
  bool rebuild_step = false;
  double seconds = 0.0;
  const char* bound = "work";  // "work" | "span" | "dram" | "serial-queue" | "dispatch"
};

struct Prediction {
  PlanConfig config;
  double seconds = 0.0;            // predicted wall for the whole run
  double serial_seconds = 0.0;     // serial residue share of it
  double speedup = 0.0;            // vs predicted 1-thread run on same machine
  std::vector<PhasePrediction> phases;

  // Filled by callers that validate against an actual simulated run.
  bool validated = false;
  double measured_seconds = 0.0;
  [[nodiscard]] double error_pct() const {
    return validated && measured_seconds > 0.0
               ? 100.0 * (seconds - measured_seconds) / measured_seconds
               : 0.0;
  }
};

class Planner {
 public:
  // Reconstructs the phase DAG from one instrumented run.  Works with either
  // backend's artifacts: the sim provider gives exact busy cycles and the
  // full modelled memory counters; perf_event gives cycles + LLC misses;
  // the fallback provider gives thread CPU time only (the planner then runs
  // a pure work/span model with no memory correction).  A trace that
  // wrapped (dropped > 0) still profiles: per-occurrence shapes come from
  // the surviving window and totals from the (always complete) PMU matrix.
  [[nodiscard]] static RunProfile profile_from(const TraceSnapshot& trace,
                                               const PmuReport& pmu, const RunMeta& meta);

  explicit Planner(RunProfile profile);

  [[nodiscard]] const RunProfile& profile() const { return profile_; }

  // Predicts the run's wall time under `config` without executing it.
  [[nodiscard]] Prediction predict(const PlanConfig& config) const;

  // Predicts every candidate and returns them sorted fastest-first.
  [[nodiscard]] std::vector<Prediction> rank(const std::vector<PlanConfig>& configs) const;

  // The default search grid: every Table II machine x {static, queue, steal}
  // x {pinned, OS-scheduled} at `n_threads` workers (18 configs).
  [[nodiscard]] static std::vector<PlanConfig> default_grid(int n_threads);

 private:
  [[nodiscard]] double predict_cycles(const PlanConfig& config,
                                      std::vector<PhasePrediction>* out) const;

  RunProfile profile_;
  double migrations_per_phase_thread_ = 0.0;  // measured OS migration rate
};

// PLAN_<name>.json: schema-versioned what-if report — run profile summary,
// ranked configurations with predicted (and, where validated, measured) wall
// times, and the phase-name table.  `tolerance_pct` is the gate the CI
// planner-smoke stage asserts on validated extremes.
void write_plan_json(std::ostream& out, const std::string& name, const std::string& git_sha,
                     const RunProfile& profile, const std::vector<Prediction>& ranked,
                     double tolerance_pct, const std::map<int, std::string>& phase_names);

}  // namespace mwx::perf
