// Sampling-profiler model.
//
// Reconstructs what a periodic thread-state sampler (VisualVM ≈ 1 s, VTune ≈
// 5–10 ms) would have reported for an execution whose ground truth is an
// EventLog, including the display artifact Section IV-B describes: the tool
// "sampled the thread state immediately before it changed, but continued to
// display the sampled state until the next sample" — i.e. sample-and-hold.
#pragma once

#include <vector>

#include "perf/event_log.hpp"

namespace mwx::perf {

struct SampledThreadProfile {
  int thread = 0;
  long long samples_total = 0;
  long long samples_busy = 0;
  // Busy time the tool *displays*: one held period per busy sample
  // (sample-and-hold), with the final window clamped to the log span.
  double displayed_busy_seconds = 0.0;
  // Exact busy time from the event log over the same window.
  double true_busy_seconds = 0.0;
};

struct SamplingReport {
  double period_seconds = 0.0;
  std::vector<SampledThreadProfile> threads;

  // max/mean of displayed busy time — the imbalance a user of the tool sees.
  [[nodiscard]] double displayed_imbalance() const;
  // max/mean of true busy time — the imbalance that actually existed.
  [[nodiscard]] double true_imbalance() const;
  // Largest per-thread relative error of displayed vs true busy time.
  [[nodiscard]] double worst_relative_error() const;
};

// Samples thread states at t0 + k*period (phase offset `offset` in [0,period))
// over the log's span.
SamplingReport sample(const EventLog& log, double period_seconds, double offset = 0.0);

// A "false positive" in the paper's sense: a sampling window displayed as
// fully busy/idle although the underlying state changed almost immediately
// after the sample.  Counts windows whose displayed state matches the true
// state for less than `truth_fraction` of the window.
long long count_false_windows(const EventLog& log, int thread, double period_seconds,
                              double truth_fraction = 0.5, double offset = 0.0);

}  // namespace mwx::perf
