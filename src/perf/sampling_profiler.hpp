// Sampling-profiler model.
//
// Reconstructs what a periodic thread-state sampler (VisualVM ≈ 1 s, VTune ≈
// 5–10 ms) would have reported for an execution whose ground truth is an
// EventLog, including the display artifact Section IV-B describes: the tool
// "sampled the thread state immediately before it changed, but continued to
// display the sampled state until the next sample" — i.e. sample-and-hold.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "perf/event_log.hpp"
#include "perf/scoped_timer.hpp"

namespace mwx::perf {

struct SampledThreadProfile {
  int thread = 0;
  long long samples_total = 0;
  long long samples_busy = 0;
  // Busy time the tool *displays*: one held period per busy sample
  // (sample-and-hold), with the final window clamped to the log span.
  double displayed_busy_seconds = 0.0;
  // Exact busy time from the event log over the same window.
  double true_busy_seconds = 0.0;
};

struct SamplingReport {
  double period_seconds = 0.0;
  std::vector<SampledThreadProfile> threads;

  // max/mean of displayed busy time — the imbalance a user of the tool sees.
  [[nodiscard]] double displayed_imbalance() const;
  // max/mean of true busy time — the imbalance that actually existed.
  [[nodiscard]] double true_imbalance() const;
  // Largest per-thread relative error of displayed vs true busy time.
  [[nodiscard]] double worst_relative_error() const;
};

// Samples thread states at t0 + k*period (phase offset `offset` in [0,period))
// over the log's span.
SamplingReport sample(const EventLog& log, double period_seconds, double offset = 0.0);

// A "false positive" in the paper's sense: a sampling window displayed as
// fully busy/idle although the underlying state changed almost immediately
// after the sample.  Counts windows whose displayed state matches the true
// state for less than `truth_fraction` of the window.
long long count_false_windows(const EventLog& log, int thread, double period_seconds,
                              double truth_fraction = 0.5, double offset = 0.0);

// A real periodic sampler — the runtime companion of the model above.  A
// background thread invokes `probe` every `period_seconds` and stores the
// timestamped result; the PMU layer uses it for mid-run counter snapshots.
// It inherits the paper's Section IV lesson about measurement tools: the
// probe must never block the threads it observes, so probes should read only
// lock-free state (pool statistics, TraceRing heads, the calling thread's
// own ThreadPmu counters) — and the sampled subject is allowed to die under
// the sampler (e.g. a pool shutting down mid-window) as long as the probe
// itself stays callable, which pool statistics accessors are.
class SamplingProfiler {
 public:
  using Probe = std::function<double()>;

  struct Sample {
    double t_seconds = 0.0;  // since profiler construction
    double value = 0.0;
  };

  // Throws ContractError unless period_seconds > 0 and probe is callable.
  SamplingProfiler(Probe probe, double period_seconds);
  // Implies stop().
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  // Launches the sampling thread.  Throws ContractError if already running;
  // restarting after stop() is supported and appends to samples().
  void start();
  // Joins the sampling thread.  Idempotent, and harmless before the first
  // start().
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::vector<Sample> samples() const;
  void clear();

 private:
  void run();

  Probe probe_;
  double period_seconds_;
  StopWatch clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::vector<Sample> samples_;
};

}  // namespace mwx::perf
