#include "perf/timeline.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace mwx::perf {

std::vector<int> TimelineView::tags_at(const EventLog& log, double t) {
  std::vector<int> tags(static_cast<std::size_t>(log.n_threads()), -1);
  for (int th = 0; th < log.n_threads(); ++th) {
    const Event* e = log.at(th, t);
    if (e != nullptr) tags[static_cast<std::size_t>(th)] = e->tag;
  }
  return tags;
}

char TimelineView::symbol_of(int tag) const {
  if (tag < 0) return '.';
  const auto it = tag_symbols_.find(tag);
  return it != tag_symbols_.end() ? it->second : '?';
}

std::vector<std::string> TimelineView::rows_exact(const EventLog& log, double t0, double t1,
                                                  int buckets) const {
  require(buckets > 0 && t1 > t0, "timeline window must be non-empty");
  const double dt = (t1 - t0) / buckets;
  std::vector<std::string> rows;
  for (int th = 0; th < log.n_threads(); ++th) {
    std::string row(static_cast<std::size_t>(buckets), '.');
    // Accumulate per-bucket occupancy per tag.
    std::vector<std::map<int, double>> share(static_cast<std::size_t>(buckets));
    for (const Event& e : log.events_of(th)) {
      if (e.end <= t0 || e.begin >= t1) continue;
      const int b_first = std::max(0, static_cast<int>((e.begin - t0) / dt));
      const int b_last = std::min(buckets - 1, static_cast<int>((e.end - t0) / dt));
      for (int b = b_first; b <= b_last; ++b) {
        const double lo = t0 + b * dt;
        const double overlap = std::min(e.end, lo + dt) - std::max(e.begin, lo);
        if (overlap > 0) share[static_cast<std::size_t>(b)][e.tag] += overlap;
      }
    }
    for (int b = 0; b < buckets; ++b) {
      double best = 0.0;
      int tag = -1;
      for (const auto& [t, s] : share[static_cast<std::size_t>(b)]) {
        if (s > best) {
          best = s;
          tag = t;
        }
      }
      if (best > 0.5 * dt) row[static_cast<std::size_t>(b)] = symbol_of(tag);
      else if (best > 0.0) row[static_cast<std::size_t>(b)] =
          symbol_of(tag) == '.' ? '.' : static_cast<char>(std::tolower(symbol_of(tag)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::string> TimelineView::rows_sampled(const EventLog& log, double t0, double t1,
                                                    int buckets,
                                                    double period_seconds) const {
  require(period_seconds > 0, "sampling period must be positive");
  const double dt = (t1 - t0) / buckets;
  std::vector<std::string> rows;
  for (int th = 0; th < log.n_threads(); ++th) {
    std::string row(static_cast<std::size_t>(buckets), '.');
    for (int b = 0; b < buckets; ++b) {
      // State displayed at bucket center = state sampled at the latest
      // sample instant before it (sample-and-hold).
      const double t = t0 + (b + 0.5) * dt;
      const double sample_t = t0 + std::floor((t - t0) / period_seconds) * period_seconds;
      const Event* e = log.at(th, sample_t);
      row[static_cast<std::size_t>(b)] = e != nullptr ? symbol_of(e->tag) : '.';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string TimelineView::join_rows(const std::vector<std::string>& rows) {
  std::ostringstream os;
  for (std::size_t th = 0; th < rows.size(); ++th) {
    os << "  thread " << th << " |" << rows[th] << "|\n";
  }
  return os.str();
}

std::string TimelineView::render(const EventLog& log, double t0, double t1,
                                 int buckets) const {
  return join_rows(rows_exact(log, t0, t1, buckets));
}

std::string TimelineView::render_sampled(const EventLog& log, double t0, double t1,
                                         int buckets, double period_seconds) const {
  return join_rows(rows_sampled(log, t0, t1, buckets, period_seconds));
}

double TimelineView::sampled_disagreement(const EventLog& log, double t0, double t1,
                                          int buckets, double period_seconds) const {
  const auto exact = rows_exact(log, t0, t1, buckets);
  const auto sampled = rows_sampled(log, t0, t1, buckets, period_seconds);
  long long cells = 0, wrong = 0;
  for (std::size_t th = 0; th < exact.size(); ++th) {
    for (std::size_t b = 0; b < exact[th].size(); ++b) {
      ++cells;
      if (std::toupper(exact[th][b]) != std::toupper(sampled[th][b])) ++wrong;
    }
  }
  return cells > 0 ? static_cast<double>(wrong) / static_cast<double>(cells) : 0.0;
}

}  // namespace mwx::perf
