// TraceRing — the corrected always-on instrumentation layer.
//
// Section IV-A showed both measurement tools distorting the thing they
// measured: JaMON's synchronized monitor updates serialized parallel MW, and
// VisualVM's instrumentation agent stole a core for tool traffic.  TraceRing
// is the design those findings call for:
//
//   * one fixed-capacity ring of trace events per worker lane, written only
//     by that worker — no locks, no shared cache lines on the hot path;
//   * a writer appends with plain (relaxed) stores and publishes with one
//     release store of the lane head; cost is a handful of MOVs;
//   * readers never stop the writers: snapshot() copies each lane, re-reads
//     the head, and discards any slot the writer may have been overwriting
//     mid-copy (merge-at-read, the ShardedMonitor idea applied to events);
//   * bounded memory: when a lane wraps, the oldest events are dropped and
//     *counted* — the layer degrades by forgetting history, never by
//     applying backpressure to the traced code.
//
// Event cells store their fields as relaxed std::atomics so the concurrent
// snapshot copy is race-free by construction (validated under TSan); torn
// values are impossible and stale slots are rejected by the sequence check.
// By convention lane i belongs to worker i and the last lane to the
// master/external thread (phase brackets, quiesce, sim steps).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "perf/scoped_timer.hpp"

namespace mwx::perf {

enum class TraceKind : std::uint8_t {
  Phase = 0,    // one engine phase: begin = dispatch, end = barrier release
  Task = 1,     // one task executed by a worker
  Steal = 2,    // successful steal (zero duration; arg = victim lane)
  Quiesce = 3,  // a quiesce() wait: begin = entry, end = pool drained
  SimStep = 4,  // one simulated-backend timestep (simulated seconds)
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TraceKind kind = TraceKind::Task;
  std::int32_t tag = 0;  // caller label: phase id, step index, ...
  std::int32_t arg = 0;  // kind-specific: steal victim, chain slot, ...
  double begin = 0.0;    // seconds (ring clock or simulated seconds)
  double end = 0.0;
};

// One event with its provenance, as returned by snapshot().
struct MergedTraceEvent {
  TraceEvent event;
  int lane = 0;
  std::uint64_t seq = 0;  // per-lane sequence number (0-based)
};

struct TraceSnapshot {
  std::vector<MergedTraceEvent> events;  // merged, ordered by begin time
  std::uint64_t total_records = 0;       // records ever written (all lanes)
  std::uint64_t dropped = 0;             // overwritten before this snapshot
};

class TraceRing {
 public:
  // `capacity_per_lane` is rounded up to a power of two.  Lane `n_lanes-1`
  // is conventionally the external/master lane (see external_lane()).
  explicit TraceRing(int n_lanes, std::size_t capacity_per_lane = std::size_t{1} << 14);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] int n_lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] std::size_t capacity_per_lane() const { return capacity_; }
  [[nodiscard]] int external_lane() const { return n_lanes() - 1; }

  // Seconds since ring construction (steady clock).  Writers that trace
  // simulated time pass their own timestamps instead.
  [[nodiscard]] double now() const { return clock_.elapsed_seconds(); }

  // Appends one event to `lane`.  Lock-free and wait-free; at most one
  // concurrent writer per lane (each worker owns its lane).  Never blocks
  // and never allocates: a full lane overwrites its oldest event.
  void record(int lane, TraceKind kind, int tag, double begin, double end, int arg = 0) {
    MWX_ASSERT(lane >= 0 && lane < n_lanes());
    Lane& l = *lanes_[static_cast<std::size_t>(lane)];
    const std::uint64_t h = l.head.load(std::memory_order_relaxed);
    Cell& c = l.cells[static_cast<std::size_t>(h) & mask_];
    c.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    c.tag.store(tag, std::memory_order_relaxed);
    c.arg.store(arg, std::memory_order_relaxed);
    c.begin.store(begin, std::memory_order_relaxed);
    c.end.store(end, std::memory_order_relaxed);
    l.head.store(h + 1, std::memory_order_release);
  }

  // Records ever written across all lanes (monotonic; includes overwritten
  // ones).  The self-audit bench divides observed overhead by this.
  [[nodiscard]] std::uint64_t total_records() const;

  // Merge-at-read: copies every lane without stopping writers, drops slots
  // the writer may have been overwriting during the copy, and returns the
  // surviving events ordered by begin time.
  [[nodiscard]] TraceSnapshot snapshot() const;

  // Resets all lanes.  NOT safe against concurrent writers — callers must
  // quiesce the traced pool/engine first.
  void clear();

 private:
  // Fields are individually atomic (relaxed) so a concurrent snapshot copy
  // is data-race-free; validity is decided by the head re-check, not by the
  // values themselves.
  struct Cell {
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::int32_t> tag{0};
    std::atomic<std::int32_t> arg{0};
    std::atomic<double> begin{0.0};
    std::atomic<double> end{0.0};
  };

  struct alignas(64) Lane {
    explicit Lane(std::size_t cap) : cells(cap) {}
    std::vector<Cell> cells;
    std::atomic<std::uint64_t> head{0};  // next sequence number to write
  };

  std::size_t capacity_;
  std::uint64_t mask_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  StopWatch clock_;
};

// Writes a snapshot in the chrome://tracing (about://tracing, Perfetto)
// JSON object format: one complete "X" event per record, tid = lane.  A
// non-empty `phase_names` table is embedded as a top-level "phase_names" key
// (extra keys are legal in the object format) so consumers can render event
// tags without a hard-coded copy of the engine's phase vocabulary.
void write_chrome_trace(const TraceSnapshot& snapshot, std::ostream& out,
                        const std::map<int, std::string>& phase_names = {});

}  // namespace mwx::perf
