#include "perf/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <ostream>

namespace mwx::perf {

namespace {

// Class key: (phase tag, on-a-rebuild-step).
using ClassKey = std::pair<int, bool>;

// Tags that only occur on neighbor-rebuild steps; their presence inside a
// step bracket marks the whole step as a rebuild step.
bool is_rebuild_tag(int tag) { return tag == 3 || tag >= 7; }

// Rebuild pipeline phases charged as exactly one task per worker
// (Engine::charge_rebuild_phase), regardless of chunks_per_thread.
bool is_per_worker_phase(int tag) { return tag >= 8; }

struct Bracket {
  int tag = 0;
  double begin = 0.0;
  double end = 0.0;
  bool rebuild_step = false;
  double task_seconds = 0.0;             // sum of task durations inside
  double task_count = 0.0;
  double max_task_seconds = 0.0;
  std::map<int, double> owner_seconds;   // per accumulation slot (Task.arg)

  [[nodiscard]] double span_seconds() const {
    double s = 0.0;
    for (const auto& [owner, sec] : owner_seconds) s = std::max(s, sec);
    return s;
  }
};

// Effective per-thread capacity of one cache level under the canonical
// "fill cores in order" placement: instance size times the number of
// distinct instances the first N threads touch, divided by N.
double capacity_per_thread(const topo::MachineSpec& spec, const topo::CacheLevelSpec& level,
                           int n_threads) {
  const int n = std::max(1, n_threads);
  std::vector<bool> seen;
  int instances = 0;
  for (int t = 0; t < n; ++t) {
    const int pu = (t % spec.n_cores()) * spec.smt_per_core;
    const std::size_t inst = static_cast<std::size_t>(pu / level.pus_per_instance);
    if (inst >= seen.size()) seen.resize(inst + 1, false);
    if (!seen[inst]) {
      seen[inst] = true;
      ++instances;
    }
  }
  return static_cast<double>(level.size_bytes) * static_cast<double>(std::max(1, instances)) /
         static_cast<double>(n);
}

// Log-capacity interpolation through the reference machine's measured
// (capacity, miss) points; clamped outside the measured range — the profile
// cannot know what a cache bigger than anything measured would still miss.
double misses_at_capacity(const std::vector<std::pair<double, double>>& curve, double cap) {
  if (curve.empty()) return 0.0;
  if (cap <= curve.front().first) return curve.front().second;
  if (cap >= curve.back().first) return curve.back().second;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (cap <= curve[i].first) {
      const auto& [c0, m0] = curve[i - 1];
      const auto& [c1, m1] = curve[i];
      const double f = (std::log(cap) - std::log(c0)) / (std::log(c1) - std::log(c0));
      // Interpolate log-misses so the curve stays positive and geometric.
      const double lm = std::log(std::max(m0, 0.5)) +
                        f * (std::log(std::max(m1, 0.5)) - std::log(std::max(m0, 0.5)));
      const double m = std::exp(lm);
      return m < 1.0 ? std::min(m0, m1) : m;
    }
  }
  return curve.back().second;
}

struct Placement {
  int packages_spanned = 1;
  double remote_fraction = 0.0;  // threads homed on a non-home package
};

Placement canonical_placement(const topo::MachineSpec& spec, int n_threads, bool pinned) {
  Placement p;
  const int n = std::max(1, n_threads);
  if (spec.memory.home_package < 0) {
    // Local/interleaved memory: each package's controller serves its own
    // threads; no remote hops.
    std::vector<bool> seen(static_cast<std::size_t>(spec.packages), false);
    for (int t = 0; t < n; ++t) {
      seen[static_cast<std::size_t>(
          spec.core_to_package((t % spec.n_cores())))] = true;
    }
    p.packages_spanned = 0;
    for (bool s : seen) p.packages_spanned += s ? 1 : 0;
    return p;
  }
  p.packages_spanned = 1;  // single home controller serves every transfer
  if (pinned) {
    int remote = 0;
    for (int t = 0; t < n; ++t) {
      if (spec.core_to_package(t % spec.n_cores()) != spec.memory.home_package) ++remote;
    }
    p.remote_fraction = static_cast<double>(remote) / static_cast<double>(n);
  } else {
    // OS-scheduled threads wander uniformly over the PUs.
    p.remote_fraction =
        static_cast<double>(spec.packages - 1) / static_cast<double>(spec.packages);
  }
  return p;
}

double counter_of(const CounterSet& c, Counter k) { return c[k]; }

}  // namespace

std::string PlanConfig::label() const {
  std::string s = spec.name;
  s += "/";
  s += sim::assignment_name(assignment);
  s += pinned ? "/pinned/" : "/os/";
  s += std::to_string(n_threads) + "t";
  return s;
}

const PhaseProfile* RunProfile::find(int tag, bool rebuild_step) const {
  for (const auto& p : phases) {
    if (p.tag == tag && p.rebuild_step == rebuild_step) return &p;
  }
  return nullptr;
}

RunProfile Planner::profile_from(const TraceSnapshot& trace, const PmuReport& pmu,
                                 const RunMeta& meta) {
  RunProfile rp;
  rp.meta = meta;
  rp.trace_dropped = trace.dropped;
  const double ghz_cycles = meta.spec.ghz * 1e9;

  // --- 1. Phase and step brackets from the trace ----------------------------
  std::vector<Bracket> brackets;
  struct StepWindow {
    double begin, end;
    bool rebuild = false;
  };
  std::vector<StepWindow> steps;
  for (const auto& m : trace.events) {
    if (m.event.kind == TraceKind::Phase) {
      Bracket b;
      b.tag = m.event.tag;
      b.begin = m.event.begin;
      b.end = m.event.end;
      brackets.push_back(b);
    } else if (m.event.kind == TraceKind::SimStep) {
      steps.push_back({m.event.begin, m.event.end, false});
    }
  }
  std::sort(brackets.begin(), brackets.end(),
            [](const Bracket& a, const Bracket& b) { return a.begin < b.begin; });
  if (steps.empty()) {
    // Native traces carry no step events; synthesize step windows from the
    // predictor phase, which opens every step.
    for (std::size_t i = 0; i < brackets.size(); ++i) {
      if (brackets[i].tag != 1) continue;
      const double end = [&] {
        for (std::size_t j = i + 1; j < brackets.size(); ++j) {
          if (brackets[j].tag == 1) return brackets[j].begin;
        }
        return brackets.empty() ? 0.0 : brackets.back().end;
      }();
      steps.push_back({brackets[i].begin, end, false});
    }
  }
  std::sort(steps.begin(), steps.end(),
            [](const StepWindow& a, const StepWindow& b) { return a.begin < b.begin; });

  // Mark rebuild steps and tag each bracket with its step's class.
  const double eps = 1e-12;
  {
    std::size_t si = 0;
    for (auto& b : brackets) {
      while (si + 1 < steps.size() && steps[si].end < b.begin - eps) ++si;
      if (si < steps.size() && is_rebuild_tag(b.tag)) steps[si].rebuild = true;
    }
    si = 0;
    for (auto& b : brackets) {
      while (si + 1 < steps.size() && steps[si].end < b.begin - eps) ++si;
      b.rebuild_step = si < steps.size() && steps[si].rebuild;
    }
  }

  // --- 2. Tasks into brackets ------------------------------------------------
  // Brackets are NOT disjoint: on rebuild steps the overlap phase (tag 7)
  // runs concurrently with the forces phase, so a task can sit inside two
  // brackets at once.  Keep an active set (begin passed, end not yet) and
  // give each task to the *innermost* containing bracket — the one that
  // opened last — which attributes forces tasks to the forces bracket even
  // while the wider overlap bracket is still open.
  {
    std::size_t next = 0;
    std::vector<Bracket*> active;
    for (const auto& m : trace.events) {
      if (m.event.kind != TraceKind::Task) continue;
      while (next < brackets.size() && brackets[next].begin <= m.event.begin + eps) {
        active.push_back(&brackets[next++]);
      }
      std::erase_if(active, [&](const Bracket* b) { return b->end < m.event.begin - eps; });
      Bracket* home = nullptr;
      for (Bracket* b : active) {
        if (m.event.begin >= b->begin - eps && m.event.end <= b->end + eps &&
            (home == nullptr || b->begin >= home->begin)) {
          home = b;
        }
      }
      // A task outside every surviving bracket (lapped ring) has no home;
      // skip it rather than misattribute.
      if (home == nullptr) continue;
      const double dur = m.event.end - m.event.begin;
      home->task_seconds += dur;
      home->task_count += 1.0;
      home->max_task_seconds = std::max(home->max_task_seconds, dur);
      home->owner_seconds[m.event.arg] += dur;
    }
  }

  // --- 3. Aggregate per class, scale the observed window to the full run ----
  rp.observed_steps = static_cast<long long>(steps.size());
  if (rp.meta.steps <= 0) rp.meta.steps = static_cast<int>(rp.observed_steps);
  const double scale =
      rp.observed_steps > 0
          ? static_cast<double>(rp.meta.steps) / static_cast<double>(rp.observed_steps)
          : 1.0;

  struct ClassAgg {
    long long occ = 0;
    double span_seconds = 0.0;
    long long spanned_occ = 0;  // brackets whose tasks survived the ring
    double task_seconds = 0.0;
    double tasks = 0.0;
    double max_task_seconds = 0.0;
    double bracket_seconds = 0.0;
  };
  std::map<ClassKey, ClassAgg> agg;
  std::map<int, double> tag_bracket_seconds;
  for (const auto& b : brackets) {
    ClassAgg& a = agg[{b.tag, b.rebuild_step}];
    a.occ += 1;
    a.span_seconds += b.span_seconds();
    a.spanned_occ += b.task_count > 0.0 ? 1 : 0;
    a.task_seconds += b.task_seconds;
    a.tasks += b.task_count;
    a.max_task_seconds = std::max(a.max_task_seconds, b.max_task_seconds);
    a.bracket_seconds += b.end - b.begin;
    tag_bracket_seconds[b.tag] += b.end - b.begin;
  }

  // Busy-cycle source by provider: sim counts modelled busy cycles exactly;
  // perf_event counts real cycles; the fallback counts thread CPU time.
  const bool sim_provider = pmu.provider == "sim";
  auto busy_cycles_of = [&](const CounterSet& c) {
    const double busy = counter_of(c, Counter::kBusyCycles);
    if (busy > 0.0) return busy;
    const double cycles = counter_of(c, Counter::kCycles);
    if (cycles > 0.0) return cycles;
    return counter_of(c, Counter::kCpuNanos) * 1e-9 * ghz_cycles;
  };

  for (int tag : pmu.phases()) {
    // Untagged domains hold master-serial and pool-idle work; that time is
    // accounted by the serial residue (step window minus phase brackets)
    // below — counting it here too would double-charge it.
    if (tag <= 0) continue;
    const CounterSet tot = pmu.phase_total(tag);
    const double busy = busy_cycles_of(tot);
    // Split the tag's counters over its step classes by observed work share.
    std::vector<ClassKey> keys;
    for (const auto& [key, a] : agg) {
      if (key.first == tag) keys.push_back(key);
    }
    if (keys.empty()) {
      // The trace lost every bracket of this tag (aggressively small ring):
      // profile it as one class with a flat span guess.
      keys.push_back({tag, is_rebuild_tag(tag)});
    }
    // Split the tag's counters over its step classes by the *bracket wall
    // time* each class occupied — not by task time: brackets live on the
    // external lane, tasks on the (smaller-windowed) worker lanes, so after
    // a ring lap a surviving bracket can have lost all its tasks.  Duration
    // shares stay well-defined for every class the bracket window saw.
    const double tag_seconds = tag_bracket_seconds.count(tag) ? tag_bracket_seconds[tag] : 0.0;
    for (const ClassKey& key : keys) {
      const ClassAgg a = agg.count(key) ? agg[key] : ClassAgg{};
      const double share =
          tag_seconds > 0.0 ? a.bracket_seconds / tag_seconds
                            : 1.0 / static_cast<double>(keys.size());
      PhaseProfile p;
      p.tag = tag;
      p.rebuild_step = key.second;
      p.occurrences = a.occ > 0
                          ? static_cast<long long>(std::llround(a.occ * scale))
                          : std::max<long long>(1, rp.meta.steps);
      p.work_cycles = busy * share;
      // Chains come from the trace.  Worker lanes lap faster than the
      // external (bracket) lane, so only brackets whose tasks survived count
      // toward the per-occurrence span; a class that lost every task falls
      // back to an even spread over the accumulation slots.
      p.span_cycles =
          a.spanned_occ > 0
              ? (a.span_seconds / static_cast<double>(a.spanned_occ)) * ghz_cycles *
                    static_cast<double>(p.occurrences)
              : p.work_cycles / std::max(1, meta.slots);
      p.max_task_cycles = a.max_task_seconds * ghz_cycles;
      p.tasks = a.spanned_occ > 0
                    ? (a.tasks / static_cast<double>(a.spanned_occ)) *
                          static_cast<double>(p.occurrences)
                    : counter_of(tot, Counter::kTasks) * share;
      p.accesses = (counter_of(tot, Counter::kL1Hits) + counter_of(tot, Counter::kL1Misses)) *
                   share;
      p.l1_misses = counter_of(tot, Counter::kL1Misses) * share;
      p.l2_misses = counter_of(tot, Counter::kL2Misses) * share;
      p.l3_misses = counter_of(tot, Counter::kL3Misses) * share;
      p.dram_fetches = counter_of(tot, Counter::kDramLineFetches) * share;
      if (p.dram_fetches == 0.0 && !sim_provider) {
        // perf_event's generic LLC misses stand in for line fetches.
        p.dram_fetches = counter_of(tot, Counter::kCacheMisses) * share;
      }
      p.dram_remote_fetches = counter_of(tot, Counter::kDramRemoteFetches) * share;
      p.dram_writebacks = counter_of(tot, Counter::kDramWritebacks) * share;
      p.dram_queue_cycles = counter_of(tot, Counter::kDramQueueCycles) * share;
      p.queue_wait_cycles = counter_of(tot, Counter::kQueueWaitCycles) * share;
      p.steal_overhead_cycles = counter_of(tot, Counter::kStealOverheadCycles) * share;
      p.noise_stall_cycles = counter_of(tot, Counter::kNoiseStallCycles) * share;

      // Stall decomposition at the reference machine's prices: every access
      // pays the L1 latency, every level-l miss additionally pays the next
      // level's, and a full miss pays the (MLP-discounted) DRAM latency —
      // exactly charge_access's cost chain.  What is left of busy after
      // memory stalls and scheduling overheads is machine-invariant compute.
      const sim::MachinePricing ref = sim::make_pricing(meta.spec, meta.cost);
      double stall = 0.0;
      if (!ref.levels.empty() && p.accesses > 0.0) {
        stall += p.accesses * ref.levels[0].hit_latency_cycles;
        const double level_misses[3] = {p.l1_misses, p.l2_misses, p.l3_misses};
        for (std::size_t l = 1; l < ref.levels.size() && l <= 3; ++l) {
          stall += level_misses[l - 1] * ref.levels[l].hit_latency_cycles;
        }
      }
      const double local = p.dram_fetches - p.dram_remote_fetches;
      stall += local * ref.dram_stall_local_cycles +
               p.dram_remote_fetches * ref.dram_stall_remote_cycles;
      p.stall_cycles = stall;
      const double overheads =
          p.dram_queue_cycles + p.queue_wait_cycles + p.steal_overhead_cycles +
          p.noise_stall_cycles;
      p.compute_cycles = std::max(p.work_cycles - stall - overheads, 0.05 * p.work_cycles);

      rp.total_work_cycles += p.work_cycles;
      rp.critical_path_cycles += p.span_cycles;
      rp.phases.push_back(p);
    }
  }
  std::sort(rp.phases.begin(), rp.phases.end(), [](const PhaseProfile& a, const PhaseProfile& b) {
    return a.tag != b.tag ? a.tag < b.tag : a.rebuild_step < b.rebuild_step;
  });

  // --- 4. Serial residue: run window minus the phase brackets ---------------
  if (!steps.empty()) {
    const double window = steps.back().end - steps.front().begin;
    double in_phase = 0.0;
    for (const auto& b : brackets) {
      if (b.begin >= steps.front().begin - eps && b.end <= steps.back().end + eps) {
        in_phase += b.end - b.begin;
      }
    }
    rp.serial_cycles = std::max(0.0, (window - in_phase) * ghz_cycles * scale);
  }
  rp.critical_path_cycles += rp.serial_cycles;
  return rp;
}

Planner::Planner(RunProfile profile) : profile_(std::move(profile)) {
  // OS-scheduled candidates pay migrations at wake time: a woken thread
  // keeps its PU with stay_probability (stay model), otherwise it lands
  // wherever the scheduler points it.  Pinned candidates never migrate.
  const auto& sched = profile_.meta.sched;
  migrations_per_phase_thread_ =
      (1.0 - sched.stay_probability) *
      (1.0 - 1.0 / std::max(1, profile_.meta.spec.n_pus()));
}

std::vector<PlanConfig> Planner::default_grid(int n_threads) {
  std::vector<PlanConfig> grid;
  for (const auto& spec : topo::table2_machines()) {
    for (sim::Assignment a : {sim::Assignment::Static, sim::Assignment::SharedQueue,
                              sim::Assignment::WorkStealing}) {
      for (bool pinned : {true, false}) {
        PlanConfig c;
        c.spec = spec;
        c.assignment = a;
        c.pinned = pinned;
        c.n_threads = n_threads;
        c.chunks_per_thread = a == sim::Assignment::Static ? 1 : 4;
        grid.push_back(c);
      }
    }
  }
  return grid;
}

double Planner::predict_cycles(const PlanConfig& config, std::vector<PhasePrediction>* out) const {
  const RunMeta& ref_meta = profile_.meta;
  const sim::CostParams& cost = ref_meta.cost;
  const sim::MachinePricing ref = sim::make_pricing(ref_meta.spec, cost);
  const sim::MachinePricing tgt = sim::make_pricing(config.spec, cost);

  const int n = std::max(1, config.n_threads);
  // Compute throughput with SMT sharing: a busy sibling pair delivers
  // 2/smt_slowdown core-equivalents.
  double n_eff;
  if (n <= tgt.cores) {
    n_eff = n;
  } else {
    const int on_smt = std::min(n, tgt.pus) - tgt.cores;
    n_eff = tgt.cores + on_smt * (2.0 / cost.smt_slowdown - 1.0);
  }
  const int slots_ref = std::max(1, ref_meta.slots);
  const int slots_cfg =
      config.assignment == sim::Assignment::Static
          ? n
          : std::min(64, n * std::max(1, config.chunks_per_thread));

  const Placement place = canonical_placement(config.spec, n, config.pinned);
  const Placement ref_place =
      canonical_placement(ref_meta.spec, ref_meta.n_threads, /*pinned=*/false);
  const int controllers = std::max(1, place.packages_spanned);
  const int ref_controllers = std::max(1, ref_place.packages_spanned);

  // Contention pressure on the serving controllers: how many threads feed
  // each one beyond the first.  The measured queue-per-fetch at the
  // reference is ported through the ratio of this pressure and of the
  // per-line occupancy — burstiness (the reason simple M/D/1 underestimates
  // the queueing) carries over from the measurement.
  const double g_tgt =
      std::max(0.0, static_cast<double>(n) / controllers - 1.0);
  const double g_ref =
      std::max(0.0, static_cast<double>(ref_meta.n_threads) / ref_controllers - 1.0);

  const double acq = sim::acquisition_cycles(config.assignment, cost);
  const double noise_fraction =
      config.pinned
          ? ref_meta.sched.noise_bursts_per_second * ref_meta.sched.noise_burst_seconds / 2.0
          : 0.0;
  const double mig_overhead =
      config.pinned ? 0.0 : migrations_per_phase_thread_ * cost.migration_cycles;

  double total_cycles = profile_.serial_cycles;
  for (const PhaseProfile& p : profile_.phases) {
    if (p.occurrences <= 0 || p.work_cycles <= 0.0) continue;
    const double occ = static_cast<double>(p.occurrences);

    // --- Memory remap: miss counts at the target's capacities --------------
    std::vector<std::pair<double, double>> curve;
    {
      const double ref_miss[3] = {p.l1_misses, p.l2_misses, p.l3_misses};
      for (std::size_t l = 0; l < ref.levels.size() && l < 3; ++l) {
        const topo::CacheLevelSpec* ls = ref_meta.spec.find_level(ref.levels[l].level);
        if (ls == nullptr) continue;
        curve.push_back({capacity_per_thread(ref_meta.spec, *ls, ref_meta.n_threads),
                         ref_miss[l]});
      }
      std::sort(curve.begin(), curve.end());
    }
    double tgt_miss[3] = {p.l1_misses, p.l2_misses, p.l3_misses};
    if (!curve.empty() && p.accesses > 0.0) {
      for (std::size_t l = 0; l < tgt.levels.size() && l < 3; ++l) {
        const topo::CacheLevelSpec* ls = config.spec.find_level(tgt.levels[l].level);
        if (ls == nullptr) continue;
        tgt_miss[l] = misses_at_capacity(curve, capacity_per_thread(config.spec, *ls, n));
      }
      // Deeper levels cannot miss more than shallower ones.
      for (int l = 1; l < 3; ++l) tgt_miss[l] = std::min(tgt_miss[l], tgt_miss[l - 1]);
    }
    const std::size_t deepest = tgt.levels.empty() ? 0 : tgt.levels.size() - 1;
    const double fetches =
        p.dram_fetches > 0.0
            ? p.dram_fetches * (p.l3_misses > 0.0 ? tgt_miss[std::min<std::size_t>(deepest, 2)] /
                                                        p.l3_misses
                                                  : 1.0)
            : 0.0;
    const double writebacks =
        p.dram_fetches > 0.0 ? p.dram_writebacks * fetches / p.dram_fetches : 0.0;

    // --- Re-priced latency stall + ported queueing -------------------------
    double stall = 0.0;
    if (!tgt.levels.empty() && p.accesses > 0.0) {
      stall += p.accesses * tgt.levels[0].hit_latency_cycles;
      for (std::size_t l = 1; l < tgt.levels.size() && l <= 3; ++l) {
        stall += tgt_miss[l - 1] * tgt.levels[l].hit_latency_cycles;
      }
    }
    const double remote_mix =
        1.0 + place.remote_fraction * (tgt.remote_latency_factor - 1.0);
    stall += fetches * tgt.dram_stall_local_cycles * remote_mix;

    const double qpf_ref = p.dram_fetches > 0.0 ? p.dram_queue_cycles / p.dram_fetches : 0.0;
    const double queue_cycles =
        g_ref > 0.0 ? fetches * qpf_ref *
                          (tgt.line_occupancy_cycles / ref.line_occupancy_cycles) *
                          (g_tgt / g_ref)
                    : fetches * tgt.line_occupancy_cycles * 0.5 * g_tgt;

    // --- Task population under this config ---------------------------------
    const double k_ref = p.tasks > 0.0 ? p.tasks / occ : slots_ref;
    const double k = is_per_worker_phase(p.tag)
                         ? static_cast<double>(n)
                         : std::max(1.0, k_ref * slots_cfg / slots_ref);
    double steal_ovh = 0.0;
    if (config.assignment == sim::Assignment::WorkStealing) {
      steal_ovh = ref_meta.assignment == sim::Assignment::WorkStealing
                      ? (p.steal_overhead_cycles / occ) * (k / std::max(1.0, k_ref))
                      : 0.15 * k * cost.steal_cycles;
    }

    // --- Per-occurrence bound structure ------------------------------------
    const double w = (p.compute_cycles + stall + queue_cycles) / occ;
    const double w_ref_perocc =
        (p.compute_cycles + p.stall_cycles + p.dram_queue_cycles) / occ;
    const double inflation =
        w_ref_perocc > 0.0 ? w / w_ref_perocc : 1.0;

    const double par = p.compute_cycles / occ / n_eff +
                       (stall + queue_cycles) / occ / static_cast<double>(n) +
                       (k * acq + steal_ovh) / static_cast<double>(n);
    // Critical-path floor.  The engine re-chunks per config with a strided
    // (balanced) decomposition, so the measured slot-chain span does NOT
    // scale with the slot-count ratio — merging strided chunks averages
    // imbalance out (validated: Static measures within a few % of
    // WorkStealing at equal N, while the amplified-chain model predicted
    // 2x).  What survives re-chunking is granularity: no occurrence beats
    // its longest indivisible task, and no K-way split beats work/K.  The
    // measured chain span still applies when the task population shrinks
    // below the reference's (chains can only merge, never split).
    const double span_granularity = std::max(p.max_task_cycles * inflation, w / k);
    const double span_meas = (p.span_cycles / occ) * inflation;
    const double span = k < std::max(1.0, k_ref) ? std::max(span_granularity, span_meas)
                                                 : span_granularity;
    const double dram_floor = (fetches + writebacks) / occ * tgt.line_occupancy_cycles /
                              static_cast<double>(controllers);
    const double dispatch_floor = k * cost.dispatch_cycles_per_task;
    const double serial_queue_floor =
        config.assignment == sim::Assignment::SharedQueue ? k * cost.queue_pop_cycles : 0.0;

    double exec = par;
    const char* bound = "work";
    if (span > exec) {
      exec = span;
      bound = "span";
    }
    if (dram_floor > exec) {
      exec = dram_floor;
      bound = "dram";
    }
    if (dispatch_floor > exec) {
      exec = dispatch_floor;
      bound = "dispatch";
    }
    if (serial_queue_floor > exec) {
      exec = serial_queue_floor;
      bound = "serial-queue";
    }
    exec *= 1.0 + noise_fraction;

    const double per_occ = exec + cost.wake_latency_cycles + cost.barrier_cycles + mig_overhead;
    total_cycles += occ * per_occ;
    if (out != nullptr) {
      out->push_back({p.tag, p.rebuild_step, occ * per_occ / (tgt.ghz * 1e9), bound});
    }
  }
  return total_cycles;
}

Prediction Planner::predict(const PlanConfig& config) const {
  Prediction pred;
  pred.config = config;
  const double cycles = predict_cycles(config, &pred.phases);
  pred.seconds = cycles / (config.spec.ghz * 1e9);
  pred.serial_seconds = profile_.serial_cycles / (config.spec.ghz * 1e9);

  PlanConfig serial = config;
  serial.assignment = sim::Assignment::Static;
  serial.pinned = true;
  serial.n_threads = 1;
  serial.chunks_per_thread = 1;
  const double serial_cycles = predict_cycles(serial, nullptr);
  pred.speedup = cycles > 0.0 ? serial_cycles / cycles : 1.0;
  return pred;
}

std::vector<Prediction> Planner::rank(const std::vector<PlanConfig>& configs) const {
  std::vector<Prediction> out;
  out.reserve(configs.size());
  for (const auto& c : configs) out.push_back(predict(c));
  std::stable_sort(out.begin(), out.end(),
                   [](const Prediction& a, const Prediction& b) { return a.seconds < b.seconds; });
  return out;
}

void write_plan_json(std::ostream& out, const std::string& name, const std::string& git_sha,
                     const RunProfile& profile, const std::vector<Prediction>& ranked,
                     double tolerance_pct, const std::map<int, std::string>& phase_names) {
  const auto old_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n"
      << "  \"kind\": \"plan\",\n"
      << "  \"schema_version\": " << kArtifactSchemaVersion << ",\n"
      << "  \"name\": \"" << name << "\",\n"
      << "  \"git_sha\": \"" << git_sha << "\",\n"
      << "  \"provider\": \"planner\",\n";
  if (!phase_names.empty()) {
    out << "  \"phase_names\": {";
    bool first = true;
    for (const auto& [tag, pname] : phase_names) {
      out << (first ? "\n" : ",\n") << "    \"" << tag << "\": \"" << pname << "\"";
      first = false;
    }
    out << "\n  },\n";
  }
  out << "  \"reference\": {\n"
      << "    \"benchmark\": \"" << profile.meta.benchmark << "\",\n"
      << "    \"machine\": \"" << profile.meta.spec.name << "\",\n"
      << "    \"assignment\": \"" << sim::assignment_name(profile.meta.assignment) << "\",\n"
      << "    \"steps\": " << profile.meta.steps << ",\n"
      << "    \"observed_steps\": " << profile.observed_steps << ",\n"
      << "    \"threads\": " << profile.meta.n_threads << ",\n"
      << "    \"slots\": " << profile.meta.slots << ",\n"
      << "    \"measured_seconds\": " << profile.meta.measured_seconds << ",\n"
      << "    \"trace_dropped\": " << profile.trace_dropped << ",\n"
      << "    \"total_work_cycles\": " << profile.total_work_cycles << ",\n"
      << "    \"critical_path_cycles\": " << profile.critical_path_cycles << ",\n"
      << "    \"serial_cycles\": " << profile.serial_cycles << ",\n"
      << "    \"self_parallelism\": " << profile.self_parallelism() << "\n"
      << "  },\n";
  out << "  \"profile\": [";
  bool first = true;
  for (const auto& p : profile.phases) {
    out << (first ? "\n" : ",\n") << "    {\"tag\": " << p.tag
        << ", \"rebuild_step\": " << (p.rebuild_step ? "true" : "false")
        << ", \"occurrences\": " << p.occurrences << ", \"tasks\": " << p.tasks
        << ", \"work_cycles\": " << p.work_cycles << ", \"span_cycles\": " << p.span_cycles
        << ", \"self_parallelism\": " << p.self_parallelism()
        << ", \"compute_cycles\": " << p.compute_cycles
        << ", \"stall_cycles\": " << p.stall_cycles
        << ", \"dram_fetches\": " << p.dram_fetches
        << ", \"dram_queue_cycles\": " << p.dram_queue_cycles << "}";
    first = false;
  }
  out << "\n  ],\n";
  out << "  \"configs\": [";
  first = true;
  int rank = 1;
  for (const auto& pr : ranked) {
    out << (first ? "\n" : ",\n") << "    {\"rank\": " << rank++ << ", \"config\": \""
        << pr.config.label() << "\", \"machine\": \"" << pr.config.spec.name
        << "\", \"assignment\": \"" << sim::assignment_name(pr.config.assignment)
        << "\", \"pinned\": " << (pr.config.pinned ? "true" : "false")
        << ", \"threads\": " << pr.config.n_threads
        << ", \"predicted_seconds\": " << pr.seconds
        << ", \"predicted_speedup\": " << pr.speedup
        << ", \"serial_seconds\": " << pr.serial_seconds
        << ", \"validated\": " << (pr.validated ? "true" : "false");
    if (pr.validated) {
      out << ", \"measured_seconds\": " << pr.measured_seconds
          << ", \"error_pct\": " << pr.error_pct();
    }
    out << "}";
    first = false;
  }
  out << "\n  ],\n";
  int validated = 0;
  for (const auto& pr : ranked) validated += pr.validated ? 1 : 0;
  out << "  \"search\": {\"n_configs\": " << ranked.size() << ", \"validated\": " << validated
      << ", \"tolerance_pct\": " << tolerance_pct << "},\n";
  out << "  \"best\": \"" << (ranked.empty() ? "" : ranked.front().config.label()) << "\"\n";
  out << "}\n";
  out.precision(old_precision);
}

}  // namespace mwx::perf
