#include "perf/native_pmu.hpp"

#include <cstring>
#include <ctime>

#include "common/require.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mwx::perf {

namespace {

#if defined(__linux__)
int open_hw_counter(std::uint64_t hw_config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = hw_config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // lowest-privilege request that paranoid=2 allows
  attr.exclude_hv = 1;
  attr.inherit = 0;
  // pid=0, cpu=-1: this thread, wherever it runs — the per-thread scope the
  // engine's phase brackets need.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, PERF_FLAG_FD_CLOEXEC));
}
#endif

double thread_cpu_nanos() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e9 + static_cast<double>(ts.tv_nsec);
  }
#endif
  return 0.0;
}

double thread_soft_faults() {
#if defined(__linux__) && defined(RUSAGE_THREAD)
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) == 0) return static_cast<double>(ru.ru_minflt);
#endif
  return 0.0;
}

}  // namespace

ThreadPmu::ThreadPmu() {
#if defined(__linux__)
  static constexpr std::uint64_t kConfigs[4] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES};
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    fds_[i] = open_hw_counter(kConfigs[i]);
  }
  // The cycle counter decides the provider label: without it the "hardware"
  // view is too hollow to be called perf_event.  Partial failures of the
  // other three (VMs without cache events) keep whatever did open.
  hardware_ = fds_[0] >= 0;
  if (!hardware_) {
    for (int& fd : fds_) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
  }
#endif
}

ThreadPmu::~ThreadPmu() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

CounterSet ThreadPmu::read() const {
  CounterSet c;
#if defined(__linux__)
  static constexpr Counter kSlots[4] = {Counter::kCycles, Counter::kInstructions,
                                        Counter::kCacheReferences, Counter::kCacheMisses};
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t value = 0;
    if (::read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
      c[kSlots[i]] = static_cast<double>(value);
    }
  }
#endif
  c[Counter::kCpuNanos] = thread_cpu_nanos();
  c[Counter::kSoftPageFaults] = thread_soft_faults();
  return c;
}

ThreadPmu& ThreadPmu::calling_thread() {
  thread_local ThreadPmu session;
  return session;
}

PmuAccumulator::PmuAccumulator(int n_workers) {
  require(n_workers > 0, "accumulator needs at least one worker lane");
  lanes_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) lanes_.push_back(std::make_unique<Lane>());
}

namespace {
// The open window of the calling thread.  One per thread is enough: brackets
// never nest (a worker runs one chain at a time), and a thread feeds at most
// one accumulator per window.
thread_local CounterSet tls_window_begin;
}  // namespace

void PmuAccumulator::task_begin() { tls_window_begin = ThreadPmu::calling_thread().read(); }

void PmuAccumulator::task_end(int worker, int phase_tag, double tasks) {
  require(worker >= 0 && worker < n_workers(), "worker lane out of range");
  ThreadPmu& session = ThreadPmu::calling_thread();
  CounterSet delta = session.read() - tls_window_begin;
  delta[Counter::kTasks] = tasks;
  // Busy time in cycles when hardware gives it, else derived from CPU time
  // so the imbalance view works under the fallback too.
  delta[Counter::kBusyCycles] =
      session.hardware() ? delta[Counter::kCycles] : delta[Counter::kCpuNanos];
  Lane& lane = *lanes_[static_cast<std::size_t>(worker)];
  const int slot = phase_tag < 0 ? 0 : (phase_tag < kMaxPhaseTag ? phase_tag : kMaxPhaseTag - 1);
  lane.by_phase[static_cast<std::size_t>(slot)] += delta;
  lane.hardware = lane.touched ? (lane.hardware && session.hardware()) : session.hardware();
  lane.touched = true;
}

std::string PmuAccumulator::provider() const {
  bool any = false;
  for (const auto& lane : lanes_) {
    if (!lane->touched) continue;
    if (!lane->hardware) return "fallback";
    any = true;
  }
  return any ? "perf_event" : "fallback";
}

PmuReport PmuAccumulator::report() const {
  PmuReport r;
  r.provider = provider();
  r.lane_kind = "worker";
  r.n_lanes = n_workers();
  for (int phase = 0; phase < kMaxPhaseTag; ++phase) {
    bool phase_touched = false;
    for (const auto& lane : lanes_) {
      if (!lane->by_phase[static_cast<std::size_t>(phase)].all_zero()) {
        phase_touched = true;
        break;
      }
    }
    if (!phase_touched) continue;
    for (int w = 0; w < n_workers(); ++w) {
      r.at(phase, w) = lanes_[static_cast<std::size_t>(w)]
                           ->by_phase[static_cast<std::size_t>(phase)];
    }
  }
  return r;
}

void PmuAccumulator::reset() {
  for (auto& lane : lanes_) *lane = Lane{};
}

}  // namespace mwx::perf
