#include "perf/sampling_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace mwx::perf {

double SamplingReport::displayed_imbalance() const {
  std::vector<double> v;
  v.reserve(threads.size());
  for (const auto& t : threads) v.push_back(t.displayed_busy_seconds);
  return v.empty() ? 1.0 : imbalance_ratio(v);
}

double SamplingReport::true_imbalance() const {
  std::vector<double> v;
  v.reserve(threads.size());
  for (const auto& t : threads) v.push_back(t.true_busy_seconds);
  return v.empty() ? 1.0 : imbalance_ratio(v);
}

double SamplingReport::worst_relative_error() const {
  double worst = 0.0;
  for (const auto& t : threads) {
    if (t.true_busy_seconds <= 0.0) continue;
    worst = std::max(worst, std::fabs(t.displayed_busy_seconds - t.true_busy_seconds) /
                                t.true_busy_seconds);
  }
  return worst;
}

SamplingReport sample(const EventLog& log, double period_seconds, double offset) {
  require(period_seconds > 0.0, "sampling period must be positive");
  require(offset >= 0.0 && offset < period_seconds, "offset must be in [0, period)");
  SamplingReport report;
  report.period_seconds = period_seconds;
  const auto [t0, t1] = log.span();
  for (int th = 0; th < log.n_threads(); ++th) {
    SampledThreadProfile p;
    p.thread = th;
    for (double t = t0 + offset; t < t1; t += period_seconds) {
      ++p.samples_total;
      if (log.at(th, t) != nullptr) {
        ++p.samples_busy;
        // Sample-and-hold credits the whole window to the sampled state, but
        // the final window may extend past the log: crediting a full period
        // there displays busy time that cannot exist.  Clamp it to the span.
        p.displayed_busy_seconds += std::min(period_seconds, t1 - t);
      }
    }
    p.true_busy_seconds = log.busy_in(th, t0, t1);
    report.threads.push_back(p);
  }
  return report;
}

long long count_false_windows(const EventLog& log, int thread, double period_seconds,
                              double truth_fraction, double offset) {
  require(period_seconds > 0.0, "sampling period must be positive");
  require(offset >= 0.0 && offset < period_seconds, "offset must be in [0, period)");
  const auto [t0, t1] = log.span();
  long long false_windows = 0;
  for (double t = t0 + offset; t < t1; t += period_seconds) {
    const bool displayed_busy = log.at(thread, t) != nullptr;
    const double window_end = std::min(t + period_seconds, t1);
    const double busy = log.busy_in(thread, t, window_end);
    const double window = window_end - t;
    if (window <= 0.0) break;
    const double agreement = displayed_busy ? busy / window : 1.0 - busy / window;
    if (agreement < truth_fraction) ++false_windows;
  }
  return false_windows;
}

SamplingProfiler::SamplingProfiler(Probe probe, double period_seconds)
    : probe_(std::move(probe)), period_seconds_(period_seconds) {
  require(period_seconds_ > 0.0, "sampling period must be positive");
  require(static_cast<bool>(probe_), "sampling profiler needs a probe");
}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  std::unique_lock<std::mutex> lk(mutex_);
  require(!running_, "sampling profiler already running");
  stop_requested_ = false;
  running_ = true;
  lk.unlock();
  thread_ = std::thread([this] { run(); });
}

void SamplingProfiler::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mutex_);
  running_ = false;
}

bool SamplingProfiler::running() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return running_;
}

std::vector<SamplingProfiler::Sample> SamplingProfiler::samples() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return samples_;
}

void SamplingProfiler::clear() {
  std::lock_guard<std::mutex> lk(mutex_);
  samples_.clear();
}

void SamplingProfiler::run() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_requested_) {
    const auto wait = std::chrono::duration<double>(period_seconds_);
    if (cv_.wait_for(lk, wait, [this] { return stop_requested_; })) break;
    // Probe outside the lock: a slow probe must never block samples() or
    // stop() callers, only delay its own next sample.
    lk.unlock();
    const double value = probe_();
    const double t = clock_.elapsed_seconds();
    lk.lock();
    samples_.push_back({t, value});
  }
}

}  // namespace mwx::perf
