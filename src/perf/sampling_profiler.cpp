#include "perf/sampling_profiler.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace mwx::perf {

double SamplingReport::displayed_imbalance() const {
  std::vector<double> v;
  v.reserve(threads.size());
  for (const auto& t : threads) v.push_back(t.displayed_busy_seconds);
  return v.empty() ? 1.0 : imbalance_ratio(v);
}

double SamplingReport::true_imbalance() const {
  std::vector<double> v;
  v.reserve(threads.size());
  for (const auto& t : threads) v.push_back(t.true_busy_seconds);
  return v.empty() ? 1.0 : imbalance_ratio(v);
}

double SamplingReport::worst_relative_error() const {
  double worst = 0.0;
  for (const auto& t : threads) {
    if (t.true_busy_seconds <= 0.0) continue;
    worst = std::max(worst, std::fabs(t.displayed_busy_seconds - t.true_busy_seconds) /
                                t.true_busy_seconds);
  }
  return worst;
}

SamplingReport sample(const EventLog& log, double period_seconds, double offset) {
  require(period_seconds > 0.0, "sampling period must be positive");
  require(offset >= 0.0 && offset < period_seconds, "offset must be in [0, period)");
  SamplingReport report;
  report.period_seconds = period_seconds;
  const auto [t0, t1] = log.span();
  for (int th = 0; th < log.n_threads(); ++th) {
    SampledThreadProfile p;
    p.thread = th;
    for (double t = t0 + offset; t < t1; t += period_seconds) {
      ++p.samples_total;
      if (log.at(th, t) != nullptr) {
        ++p.samples_busy;
        // Sample-and-hold credits the whole window to the sampled state, but
        // the final window may extend past the log: crediting a full period
        // there displays busy time that cannot exist.  Clamp it to the span.
        p.displayed_busy_seconds += std::min(period_seconds, t1 - t);
      }
    }
    p.true_busy_seconds = log.busy_in(th, t0, t1);
    report.threads.push_back(p);
  }
  return report;
}

long long count_false_windows(const EventLog& log, int thread, double period_seconds,
                              double truth_fraction, double offset) {
  require(period_seconds > 0.0, "sampling period must be positive");
  require(offset >= 0.0 && offset < period_seconds, "offset must be in [0, period)");
  const auto [t0, t1] = log.span();
  long long false_windows = 0;
  for (double t = t0 + offset; t < t1; t += period_seconds) {
    const bool displayed_busy = log.at(thread, t) != nullptr;
    const double window_end = std::min(t + period_seconds, t1);
    const double busy = log.busy_in(thread, t, window_end);
    const double window = window_end - t;
    if (window <= 0.0) break;
    const double agreement = displayed_busy ? busy / window : 1.0 - busy / window;
    if (agreement < truth_fraction) ++false_windows;
  }
  return false_windows;
}

}  // namespace mwx::perf
