// Unified performance-counter vocabulary (the PMU layer).
//
// The paper's memory-behaviour analysis (Section V, Tables II/III) was read
// out of Intel VTune: per-core hardware counters attributed to program
// phases.  This header is the reproduction's common vocabulary for that
// data, with two providers behind one API:
//
//   * "sim"        — sim::Machine attributes its modelled cache/DRAM/steal/
//                    barrier counters to (engine phase, core) domains and
//                    exports them as a PmuReport (Machine::pmu_report());
//   * "perf_event" — perf::PmuAccumulator (native_pmu.hpp) samples real
//                    hardware counters per worker thread with phase brackets
//                    driven by the engine's phase hooks;
//   * "fallback"   — the same accumulator when perf_event_open is denied
//                    (containers, unprivileged CI): thread CPU time and soft
//                    page faults from clock_gettime/rusage, clearly labelled.
//
// A PmuReport is a dense (phase tag x lane) matrix of CounterSets, where a
// lane is a core (sim) or a worker thread (native).  tools/mwx-report joins
// these with TRACE_*.json and BENCH_*.json into the VTune-style run report.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mwx::perf {

// Every counter either provider can fill.  Sim fills the modelled-machine
// fields; native fills the hardware (or fallback) fields.  Values are stored
// as double uniformly: counts stay exactly representable far beyond any
// realistic run length (2^53), and cycle/second-valued entries are naturally
// fractional.
enum class Counter : int {
  kCycles = 0,         // native: PERF_COUNT_HW_CPU_CYCLES
  kInstructions,       // native: PERF_COUNT_HW_INSTRUCTIONS
  kCacheReferences,    // native: PERF_COUNT_HW_CACHE_REFERENCES
  kCacheMisses,        // native: PERF_COUNT_HW_CACHE_MISSES
  kL1Hits,             // sim cache model, per level
  kL1Misses,
  kL1DirtyEvictions,
  kL2Hits,
  kL2Misses,
  kL2DirtyEvictions,
  kL3Hits,
  kL3Misses,
  kL3DirtyEvictions,
  kDramLineFetches,    // sim memory controller
  kDramRemoteFetches,  // subset served by a remote package's controller
  kDramWritebacks,
  kDramQueueCycles,
  kMigrations,         // sim OS-scheduler model
  kSteals,
  kStealOverheadCycles,
  kNoiseStallCycles,
  kQueueWaitCycles,
  kMonitorWaitCycles,
  kBarrierWaitCycles,
  kBusyCycles,         // task-execution time attributed to the domain
  kTasks,              // tasks (or task-chains) executed in the domain
  kCpuNanos,           // fallback: CLOCK_THREAD_CPUTIME_ID delta
  kSoftPageFaults,     // fallback: rusage minor faults
  kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

// Snake-case stable name, used as the JSON key ("l2_misses", ...).
[[nodiscard]] const char* counter_name(Counter c);

// A bundle of counter values for one attribution domain.
struct CounterSet {
  std::array<double, kNumCounters> v{};

  [[nodiscard]] double& operator[](Counter c) { return v[static_cast<std::size_t>(c)]; }
  [[nodiscard]] double operator[](Counter c) const { return v[static_cast<std::size_t>(c)]; }

  CounterSet& operator+=(const CounterSet& o) {
    for (std::size_t i = 0; i < kNumCounters; ++i) v[i] += o.v[i];
    return *this;
  }
  [[nodiscard]] friend CounterSet operator+(CounterSet a, const CounterSet& b) {
    a += b;
    return a;
  }
  // Counter deltas (end-of-window minus start-of-window readings).
  [[nodiscard]] friend CounterSet operator-(CounterSet a, const CounterSet& b) {
    for (std::size_t i = 0; i < kNumCounters; ++i) a.v[i] -= b.v[i];
    return a;
  }

  [[nodiscard]] bool all_zero() const {
    for (double x : v) {
      if (x != 0.0) return false;
    }
    return true;
  }

  // Miss ratios of the modelled hierarchy, for Table II-style views.
  [[nodiscard]] double miss_rate(Counter hits, Counter misses) const {
    const double a = (*this)[hits] + (*this)[misses];
    return a > 0.0 ? (*this)[misses] / a : 0.0;
  }
};

// Attribution key: which lane (core or worker thread), during which engine
// phase.  -1 means "all" on either axis.
struct PmuDomain {
  int lane = -1;
  int phase = -1;
};

// A complete counter matrix from one provider over one run window.
class PmuReport {
 public:
  std::string provider;   // "sim" | "perf_event" | "fallback"
  std::string lane_kind;  // "core" | "worker"
  int n_lanes = 0;
  // Optional tag -> human name table (md::phase_tag_name_map()).  Emitted as
  // "phase_names" when non-empty so report consumers never hard-code the
  // engine's phase vocabulary.  Filled by the layer that knows the tags'
  // meaning (the tools / the planner), not by the providers.
  std::map<int, std::string> phase_names;

  // Mutable cell accessor; creates the phase row on first touch.
  [[nodiscard]] CounterSet& at(int phase, int lane);
  // Read-only cell lookup; nullptr when the domain was never touched.
  [[nodiscard]] const CounterSet* find(int phase, int lane) const;

  // Phase tags present, ascending.
  [[nodiscard]] std::vector<int> phases() const;

  [[nodiscard]] CounterSet phase_total(int phase) const;  // sum over lanes
  [[nodiscard]] CounterSet lane_total(int lane) const;    // sum over phases
  [[nodiscard]] CounterSet total() const;                 // sum over everything

  // PMU_<name>.json: schema_version/git_sha identity header, provider,
  // lane_kind, per-phase per-lane counter objects, per-phase and grand
  // totals, and (when `machine_total` is non-null) the provider's own
  // machine-global aggregate so consumers can re-verify conservation.
  void write_json(std::ostream& out, const std::string& name, const std::string& git_sha,
                  const CounterSet* machine_total = nullptr) const;

 private:
  std::map<int, std::vector<CounterSet>> by_phase_;  // phase tag -> per-lane
};

// JSON schema revision shared by every artifact emitter (PMU_*, BENCH_*,
// REPORT_*).  Bump when a consumer-visible field changes meaning.
inline constexpr int kArtifactSchemaVersion = 2;

// The git SHA baked in at configure time (MWX_GIT_SHA), or "unknown".
[[nodiscard]] const char* build_git_sha();

}  // namespace mwx::perf
