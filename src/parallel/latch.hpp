// CountDownLatch — mirror of java.util.concurrent.CountDownLatch, the
// primitive parallel MW uses for a thread to signal phase-work completion
// (Section II-B: "the thread ... decrements a countdown latch so the program
// knows when all work in the phase is complete").
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/require.hpp"

namespace mwx::parallel {

class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {
    require(count >= 0, "latch count must be non-negative");
  }

  CountDownLatch(const CountDownLatch&) = delete;
  CountDownLatch& operator=(const CountDownLatch&) = delete;

  // Decrements the count; wakes waiters when it reaches zero.  Decrementing
  // below zero is a contract violation.
  void count_down() {
    std::lock_guard lock(mutex_);
    require(count_ > 0, "count_down below zero");
    if (--count_ == 0) cv_.notify_all();
  }

  // Blocks until the count reaches zero.
  void await() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  [[nodiscard]] int count() const {
    std::lock_guard lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace mwx::parallel
