// CyclicBarrier — reusable phase barrier in the java.util.concurrent style.
// The MW parallelization synchronizes "between threads ... by simple
// barriers" (Section I); one barrier separates each of the six timestep
// phases.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/require.hpp"

namespace mwx::parallel {

class CyclicBarrier {
 public:
  // `parties` threads must call arrive_and_wait() before any proceeds.
  // `on_trip`, if provided, runs once per generation in the last-arriving
  // thread before the others are released (like Java's barrierAction).
  explicit CyclicBarrier(int parties, std::function<void()> on_trip = {})
      : parties_(parties), waiting_(0), on_trip_(std::move(on_trip)) {
    require(parties > 0, "barrier needs at least one party");
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  // Returns the arrival index within this generation (parties-1 .. 0), with 0
  // meaning "last to arrive", matching Java's CyclicBarrier#await contract.
  int arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t gen = generation_;
    const int arrival = parties_ - ++waiting_;
    if (waiting_ == parties_) {
      if (on_trip_) on_trip_();
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    return arrival;
  }

  [[nodiscard]] int parties() const { return parties_; }

  [[nodiscard]] std::uint64_t generation() const {
    std::lock_guard lock(mutex_);
    return generation_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_;
  std::uint64_t generation_ = 0;
  std::function<void()> on_trip_;
};

}  // namespace mwx::parallel
