// FixedThreadPool — the ExecutorService analogue.
//
// Parallel MW creates "one or more fixed sized thread pools ... when the
// application starts" and dispatches each phase's work to them
// (Sections I, II-B).  Three queue configurations are supported.  The first
// two match the paper's discussion of their trade-off; the third resolves it:
//   * QueueMode::Single       — one shared queue; any idle worker picks up
//                               waiting work, but all workers contend on it.
//   * QueueMode::PerThread    — one queue per worker; no contention, but work
//                               sits if its designated queue's owner is busy.
//   * QueueMode::WorkStealing — one Chase–Lev deque per worker.  Owners push
//                               and pop lock-free; an idle worker steals the
//                               oldest task from a busy peer, so there is
//                               neither a global contention point nor
//                               stranded work.  External submissions land in
//                               a per-worker inbox (a small mutex queue) that
//                               the owner drains into its deque — and that
//                               thieves may also raid while the owner is busy.
// Workers may optionally be pinned to PUs at startup (the JNI
// sched_setaffinity experiment of Section V-B).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/affinity.hpp"
#include "parallel/latch.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"
#include "perf/native_pmu.hpp"
#include "perf/trace_ring.hpp"
#include "topo/cpuset.hpp"

namespace mwx::parallel {

enum class QueueMode { Single, PerThread, WorkStealing };

struct ThreadPoolConfig {
  int n_threads = 1;
  QueueMode queue_mode = QueueMode::Single;
  // When non-empty, worker i is pinned to pin_masks[i % pin_masks.size()].
  std::vector<topo::CpuSet> pin_masks;
  std::string name_prefix = "mwx-worker";
};

class FixedThreadPool {
 public:
  explicit FixedThreadPool(ThreadPoolConfig config);

  // Joins all workers after draining queued tasks.
  ~FixedThreadPool();

  FixedThreadPool(const FixedThreadPool&) = delete;
  FixedThreadPool& operator=(const FixedThreadPool&) = delete;

  [[nodiscard]] int n_threads() const { return config_.n_threads; }
  [[nodiscard]] const ThreadPoolConfig& config() const { return config_; }

  // Submits to the shared queue (Single mode) or round-robins
  // (PerThread/WorkStealing).  Throws ContractError after shutdown — a
  // silently dropped task would leave quiesce() waiting forever.
  void submit(Task task);

  // Submits to a specific worker's queue.  In Single mode this degrades to
  // submit() since all workers share one queue — same semantics Java gives a
  // single-queue executor.  In WorkStealing mode the target is a preference:
  // the task lands in `worker`'s inbox/deque but may be stolen by an idle
  // peer.  Throws ContractError after shutdown.
  void submit_to(int worker, Task task);

  // Runs body(i) for i in [0, n) split into one contiguous chunk per worker
  // — the paper's "each thread is assigned a fraction 1/N of the total
  // atoms" distribution — and blocks until all chunks finish.
  // `body` must be callable as body(int begin, int end, int worker).
  template <typename Body>
  void run_chunked(int n, Body&& body) {
    const int workers = config_.n_threads;
    CountDownLatch latch(workers);
    for (int w = 0; w < workers; ++w) {
      const int begin = static_cast<int>((static_cast<long long>(n) * w) / workers);
      const int end = static_cast<int>((static_cast<long long>(n) * (w + 1)) / workers);
      submit_to(w, [&, begin, end, w] {
        body(begin, end, w);
        latch.count_down();
      });
    }
    latch.await();
  }

  // Blocks until every queued task has completed (workers stay alive).
  void quiesce();

  // Stops accepting work, drains queues, joins workers.  Idempotent.
  void shutdown();

  // Index of the calling pool worker, or -1 when called from outside.
  static int current_worker();

  // Tasks that terminated with an exception (the worker survives; the task
  // is still counted as completed for quiesce()).
  [[nodiscard]] long long failed_tasks() const {
    return failed_.load(std::memory_order_relaxed);
  }

  // Successful steals performed by pool workers (WorkStealing mode only).
  [[nodiscard]] long long steals() const { return steals_.load(std::memory_order_relaxed); }

  // Attaches a lock-free trace ring: workers record Task events into lane
  // == worker index and Steal/Quiesce events as they happen.  The ring needs
  // n_threads + 1 lanes (the extra one for external callers).  Attach before
  // submitting work; detach (nullptr) only after quiesce().
  void attach_trace(perf::TraceRing* trace) {
    require(trace == nullptr || trace->n_lanes() >= config_.n_threads + 1,
            "trace ring needs a lane per worker plus one external lane");
    trace_ = trace;
  }

  // Attaches a hardware-counter accumulator: every executed task is bracketed
  // with per-thread counter reads and the delta charged to (worker, tag 0) —
  // untagged pool work.  Needs one lane per worker.  For phase-tagged
  // attribution attach the accumulator at the engine instead
  // (Engine::attach_pmu); never both with the same accumulator, or the pool's
  // untagged brackets double-count the engine's phase-tagged ones.  Attach
  // before submitting work; detach (nullptr) only after quiesce().
  void attach_pmu(perf::PmuAccumulator* pmu) {
    require(pmu == nullptr || pmu->n_workers() >= config_.n_threads,
            "PMU accumulator needs a lane per worker");
    pmu_ = pmu;
  }

 private:
  void worker_main(int index);
  void worker_main_stealing(int index);
  void run_one(Task task);
  void enqueue(int worker, Task task);
  TaskQueue& queue_for(int worker);

  ThreadPoolConfig config_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;   // Single/PerThread queues; WS inboxes
  std::vector<std::unique_ptr<StealDeque>> deques_;  // WorkStealing mode only
  std::vector<std::thread> threads_;
  std::atomic<int> round_robin_{0};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> taken_{0};  // tasks claimed by a worker (WS sleep predicate)
  std::atomic<long long> completed_{0};
  std::atomic<long long> failed_{0};
  std::atomic<long long> steals_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  // WorkStealing idle workers park here; submissions wake them.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> closing_{false};
  // shutdown() must be idempotent *and* safe against concurrent callers
  // (explicit shutdown racing the destructor): the atomic flag makes the
  // check-and-set a single operation, and the mutex makes every caller wait
  // until the workers are actually joined before returning.
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;
  perf::TraceRing* trace_ = nullptr;
  perf::PmuAccumulator* pmu_ = nullptr;
};

}  // namespace mwx::parallel
