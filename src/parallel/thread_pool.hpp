// FixedThreadPool — the ExecutorService analogue.
//
// Parallel MW creates "one or more fixed sized thread pools ... when the
// application starts" and dispatches each phase's work to them
// (Sections I, II-B).  Three queue configurations are supported.  The first
// two match the paper's discussion of their trade-off; the third resolves it:
//   * QueueMode::Single       — one shared queue; any idle worker picks up
//                               waiting work, but all workers contend on it.
//   * QueueMode::PerThread    — one queue per worker; no contention, but work
//                               sits if its designated queue's owner is busy.
//   * QueueMode::WorkStealing — one Chase–Lev deque per worker.  Owners push
//                               and pop lock-free; an idle worker steals the
//                               oldest task from a busy peer, so there is
//                               neither a global contention point nor
//                               stranded work.  External submissions land in
//                               a per-worker inbox (a small mutex queue) that
//                               the owner drains into its deque — and that
//                               thieves may also raid while the owner is busy.
// Workers may optionally be pinned to PUs at startup (the JNI
// sched_setaffinity experiment of Section V-B).
//
// The pool is re-entrant: N independent clients (engines, tenants) may
// submit concurrently and each track completion of its own work through a
// JobHandle (parallel/job.hpp) — quiesce() remains the single-owner drain.
// A worker of pool A submitting to pool B is treated as an external caller
// by B (per-pool thread-locals), so pools compose.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/affinity.hpp"
#include "parallel/job.hpp"
#include "parallel/latch.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/task_queue.hpp"
#include "perf/native_pmu.hpp"
#include "perf/trace_ring.hpp"
#include "topo/cpuset.hpp"

namespace mwx::parallel {

enum class QueueMode { Single, PerThread, WorkStealing };

struct ThreadPoolConfig {
  int n_threads = 1;
  QueueMode queue_mode = QueueMode::Single;
  // When non-empty, worker i is pinned to pin_masks[i % pin_masks.size()].
  std::vector<topo::CpuSet> pin_masks;
  std::string name_prefix = "mwx-worker";
};

class FixedThreadPool {
 public:
  explicit FixedThreadPool(ThreadPoolConfig config);

  // Joins all workers after draining queued tasks.
  ~FixedThreadPool();

  FixedThreadPool(const FixedThreadPool&) = delete;
  FixedThreadPool& operator=(const FixedThreadPool&) = delete;

  [[nodiscard]] int n_threads() const { return config_.n_threads; }
  [[nodiscard]] const ThreadPoolConfig& config() const { return config_; }

  // Submits to the shared queue (Single mode) or round-robins
  // (PerThread/WorkStealing).  Throws ContractError after shutdown — a
  // silently dropped task would leave quiesce() waiting forever.
  void submit(Task task);

  // Submits to a specific worker's queue.  In Single mode this degrades to
  // submit() since all workers share one queue — same semantics Java gives a
  // single-queue executor.  In WorkStealing mode the target is a preference:
  // the task lands in `worker`'s inbox/deque but may be stolen by an idle
  // peer.  Throws ContractError after shutdown.
  void submit_to(int worker, Task task);

  // Job-scoped variants: the task is additionally counted against `job`, so
  // job.wait() terminates when that job's tasks are done — even while other
  // clients keep the pool busy — and a task that throws records its message
  // on the handle (and in last_error()) instead of vanishing into a counter.
  // If the job carries instrumentation (JobHandle::attach_trace/attach_pmu)
  // the task brackets itself with it, independent of any pool-level
  // attachment.  These are what make the pool safely shareable between
  // concurrent engines/tenants.
  void submit(Task task, const JobHandle& job);
  void submit_to(int worker, Task task, const JobHandle& job);

  // Runs body(i) for i in [0, n) split into one contiguous chunk per worker
  // — the paper's "each thread is assigned a fraction 1/N of the total
  // atoms" distribution — and blocks until all chunks finish.
  // `body` must be callable as body(int begin, int end, int worker).
  template <typename Body>
  void run_chunked(int n, Body&& body) {
    const int workers = config_.n_threads;
    CountDownLatch latch(workers);
    for (int w = 0; w < workers; ++w) {
      const int begin = static_cast<int>((static_cast<long long>(n) * w) / workers);
      const int end = static_cast<int>((static_cast<long long>(n) * (w + 1)) / workers);
      submit_to(w, [&, begin, end, w] {
        body(begin, end, w);
        latch.count_down();
      });
    }
    latch.await();
  }

  // Job-scoped variant: chunks are tracked by `job` (shared-pool safe, and a
  // throwing chunk is recorded instead of hanging the barrier).  Blocks via
  // job.wait(), so any *other* tasks already pending on the same handle are
  // waited for too.
  template <typename Body>
  void run_chunked(int n, Body&& body, const JobHandle& job) {
    const int workers = config_.n_threads;
    for (int w = 0; w < workers; ++w) {
      const int begin = static_cast<int>((static_cast<long long>(n) * w) / workers);
      const int end = static_cast<int>((static_cast<long long>(n) * (w + 1)) / workers);
      submit_to(w, [&body, begin, end, w] { body(begin, end, w); }, job);
    }
    job.wait();
  }

  // Blocks until every queued task has completed (workers stay alive).
  // Pool-global: this counts *all* clients' submissions, so with another
  // client continuously submitting it may never return.  Single-owner pools
  // (the benches, the original one-app model) use it freely; multi-tenant
  // callers should wait on their own JobHandle instead.
  void quiesce();

  // Stops accepting work, drains queues, joins workers.  Idempotent.
  void shutdown();

  // Index of the calling pool worker, or -1 when called from outside.
  static int current_worker();

  // Tasks that terminated with an exception (the worker survives; the task
  // is still counted as completed for quiesce()).
  [[nodiscard]] long long failed_tasks() const {
    return failed_.load(std::memory_order_relaxed);
  }

  // Message of the first task exception this pool ever swallowed, "" if
  // none.  The first message is kept (not the latest): later failures are
  // usually cascade, the first is the root cause.  Per-job diagnostics live
  // on the JobHandle; this is the pool-wide backstop for tasks submitted
  // without one.
  [[nodiscard]] std::string last_error() const {
    std::lock_guard lock(error_mutex_);
    return last_error_;
  }

  // Test hook: places the round-robin cursor used by submit()'s
  // PerThread/WorkStealing target choice.  Exists so the 2^31/2^64
  // wraparound regression tests can reach the wrap point without issuing
  // billions of submissions (the cursor used to be a signed int whose
  // fetch_add wrapped negative and made `% n_threads` non-positive).
  void seed_round_robin(std::uint64_t value) {
    round_robin_.store(value, std::memory_order_relaxed);
  }

  // Successful steals performed by pool workers (WorkStealing mode only).
  [[nodiscard]] long long steals() const { return steals_.load(std::memory_order_relaxed); }

  // Attaches a pool-wide lock-free trace ring: workers record Task events
  // into lane == worker index and Steal/Quiesce events as they happen.  The
  // ring needs n_threads + 1 lanes (the extra one for external callers).
  // This is a whole-pool audit channel (it sees every client's tasks); a
  // single tenant sharing the pool should attach its ring to its JobHandle
  // (or its Engine) instead.  The pointer is atomic, so attaching/detaching
  // while other clients run is safe — but detach (nullptr) only after *your*
  // submitted work has drained, or your last events are dropped.
  void attach_trace(perf::TraceRing* trace) {
    require(trace == nullptr || trace->n_lanes() >= config_.n_threads + 1,
            "trace ring needs a lane per worker plus one external lane");
    trace_.store(trace, std::memory_order_release);
  }

  // Attaches a pool-wide hardware-counter accumulator: every executed task is
  // bracketed with per-thread counter reads and the delta charged to
  // (worker, tag 0) — untagged pool work, *all* clients included.  Needs one
  // lane per worker.  For phase-tagged or per-tenant attribution attach the
  // accumulator at the engine (Engine::attach_pmu) or the job
  // (JobHandle::attach_pmu) instead; never both levels with the same
  // accumulator, or the pool's untagged brackets double-count the tagged
  // ones.  Atomic pointer — same attach/detach rules as attach_trace().
  void attach_pmu(perf::PmuAccumulator* pmu) {
    require(pmu == nullptr || pmu->n_workers() >= config_.n_threads,
            "PMU accumulator needs a lane per worker");
    pmu_.store(pmu, std::memory_order_release);
  }

 private:
  void worker_main(int index);
  void worker_main_stealing(int index);
  void run_one(Task task);
  void note_failure(const char* what);
  void enqueue(int worker, Task task);
  TaskQueue& queue_for(int worker);

  ThreadPoolConfig config_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;   // Single/PerThread queues; WS inboxes
  std::vector<std::unique_ptr<StealDeque>> deques_;  // WorkStealing mode only
  std::vector<std::thread> threads_;
  // Unsigned so the fetch_add wraps to 0 instead of going negative: the old
  // std::atomic<int> made `% n_threads` non-positive after 2^31 submissions
  // and submit_to()'s range check killed an otherwise-healthy pool.
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> taken_{0};  // tasks claimed by a worker (WS sleep predicate)
  std::atomic<long long> completed_{0};
  std::atomic<long long> failed_{0};
  std::atomic<long long> steals_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  // WorkStealing idle workers park here; submissions wake them.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> closing_{false};
  // shutdown() must be idempotent *and* safe against concurrent callers
  // (explicit shutdown racing the destructor): the atomic flag makes the
  // check-and-set a single operation, and the mutex makes every caller wait
  // until the workers are actually joined before returning.
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;
  // Pool-wide instrumentation.  Atomic: with N clients sharing the pool,
  // attach/detach must not race task execution into UB (per-job channels
  // live on the JobHandle instead).
  std::atomic<perf::TraceRing*> trace_{nullptr};
  std::atomic<perf::PmuAccumulator*> pmu_{nullptr};
  // First task-exception message (see last_error()).
  mutable std::mutex error_mutex_;
  std::string last_error_;
};

}  // namespace mwx::parallel
