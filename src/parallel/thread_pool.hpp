// FixedThreadPool — the ExecutorService analogue.
//
// Parallel MW creates "one or more fixed sized thread pools ... when the
// application starts" and dispatches each phase's work to them
// (Sections I, II-B).  Two queue configurations are supported, matching the
// paper's discussion of their trade-off:
//   * QueueMode::Single   — one shared queue; any idle worker picks up
//                           waiting work, but all workers contend on it.
//   * QueueMode::PerThread — one queue per worker; no contention, but work
//                           sits if its designated queue's owner is busy.
// Workers may optionally be pinned to PUs at startup (the JNI
// sched_setaffinity experiment of Section V-B).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parallel/affinity.hpp"
#include "parallel/latch.hpp"
#include "parallel/task_queue.hpp"
#include "topo/cpuset.hpp"

namespace mwx::parallel {

enum class QueueMode { Single, PerThread };

struct ThreadPoolConfig {
  int n_threads = 1;
  QueueMode queue_mode = QueueMode::Single;
  // When non-empty, worker i is pinned to pin_masks[i % pin_masks.size()].
  std::vector<topo::CpuSet> pin_masks;
  std::string name_prefix = "mwx-worker";
};

class FixedThreadPool {
 public:
  explicit FixedThreadPool(ThreadPoolConfig config);

  // Joins all workers after draining queued tasks.
  ~FixedThreadPool();

  FixedThreadPool(const FixedThreadPool&) = delete;
  FixedThreadPool& operator=(const FixedThreadPool&) = delete;

  [[nodiscard]] int n_threads() const { return config_.n_threads; }
  [[nodiscard]] const ThreadPoolConfig& config() const { return config_; }

  // Submits to the shared queue (Single mode) or round-robins (PerThread).
  void submit(Task task);

  // Submits to a specific worker's queue.  In Single mode this degrades to
  // submit() since all workers share one queue — same semantics Java gives a
  // single-queue executor.
  void submit_to(int worker, Task task);

  // Runs body(i) for i in [0, n) split into one contiguous chunk per worker
  // — the paper's "each thread is assigned a fraction 1/N of the total
  // atoms" distribution — and blocks until all chunks finish.
  // `body` must be callable as body(int begin, int end, int worker).
  template <typename Body>
  void run_chunked(int n, Body&& body) {
    const int workers = config_.n_threads;
    CountDownLatch latch(workers);
    for (int w = 0; w < workers; ++w) {
      const int begin = static_cast<int>((static_cast<long long>(n) * w) / workers);
      const int end = static_cast<int>((static_cast<long long>(n) * (w + 1)) / workers);
      submit_to(w, [&, begin, end, w] {
        body(begin, end, w);
        latch.count_down();
      });
    }
    latch.await();
  }

  // Blocks until every queued task has completed (workers stay alive).
  void quiesce();

  // Stops accepting work, drains queues, joins workers.  Idempotent.
  void shutdown();

  // Index of the calling pool worker, or -1 when called from outside.
  static int current_worker();

  // Tasks that terminated with an exception (the worker survives; the task
  // is still counted as completed for quiesce()).
  [[nodiscard]] long long failed_tasks() const {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_main(int index);
  TaskQueue& queue_for(int worker);

  ThreadPoolConfig config_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<int> round_robin_{0};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> completed_{0};
  std::atomic<long long> failed_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  bool shutdown_ = false;
};

}  // namespace mwx::parallel
