// Thread→core binding.
//
// Pure Java had no pinning API; the paper's authors wrote a C wrapper around
// sched_setaffinity and called it via JNI (Section V-B).  Here the wrapper
// is first-class.  On hosts where affinity control is unavailable (or the
// requested PUs do not exist) the functions report failure rather than
// throwing, because pinning is an optimization, never a correctness need.
#pragma once

#include "topo/cpuset.hpp"

namespace mwx::parallel {

// Binds the calling thread to the PUs in `mask`.  Returns true on success.
bool pin_current_thread(const topo::CpuSet& mask);

// Convenience: bind to a single PU.
bool pin_current_thread_to(int pu);

// Logical CPU currently executing the calling thread, or -1 if unknown.
int current_cpu();

// Affinity mask of the calling thread (empty on failure).
topo::CpuSet current_affinity();

// Number of PUs the OS exposes to this process.
int online_pus();

}  // namespace mwx::parallel
