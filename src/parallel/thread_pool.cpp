#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "common/require.hpp"

namespace mwx::parallel {

namespace {
thread_local int t_worker_index = -1;
// Which pool the current thread belongs to: a worker of pool A submitting to
// pool B must be treated as an external caller by B.
thread_local const FixedThreadPool* t_worker_pool = nullptr;
}  // namespace

FixedThreadPool::FixedThreadPool(ThreadPoolConfig config) : config_(std::move(config)) {
  require(config_.n_threads > 0, "pool needs at least one thread");
  const int n_queues = config_.queue_mode == QueueMode::Single ? 1 : config_.n_threads;
  queues_.reserve(static_cast<std::size_t>(n_queues));
  for (int i = 0; i < n_queues; ++i) queues_.push_back(std::make_unique<TaskQueue>());
  if (config_.queue_mode == QueueMode::WorkStealing) {
    deques_.reserve(static_cast<std::size_t>(config_.n_threads));
    for (int i = 0; i < config_.n_threads; ++i) deques_.push_back(std::make_unique<StealDeque>());
  }
  threads_.reserve(static_cast<std::size_t>(config_.n_threads));
  for (int i = 0; i < config_.n_threads; ++i) {
    threads_.emplace_back([this, i] {
      config_.queue_mode == QueueMode::WorkStealing ? worker_main_stealing(i) : worker_main(i);
    });
  }
}

FixedThreadPool::~FixedThreadPool() { shutdown(); }

TaskQueue& FixedThreadPool::queue_for(int worker) {
  return config_.queue_mode == QueueMode::Single ? *queues_.front()
                                                 : *queues_[static_cast<std::size_t>(worker)];
}

void FixedThreadPool::submit(Task task) {
  int target = 0;
  if (config_.queue_mode != QueueMode::Single) {
    target = t_worker_pool == this
                 ? t_worker_index  // keep locally spawned work on the spawner
                 : static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                                    static_cast<std::uint64_t>(config_.n_threads));
  }
  submit_to(target, std::move(task));
}

namespace {
// Wraps a task so its completion (and any failure, message included) is
// recorded on the job, and so the job's per-job instrumentation brackets the
// execution.  The exception is rethrown after the job is updated, so the
// pool-level accounting in run_one (failed_, last_error_) still sees it.
Task wrap_for_job(std::shared_ptr<detail::JobState> state, Task task) {
  return [state = std::move(state), task = std::move(task)] {
    perf::TraceRing* trace = state->trace;
    const double trace_begin = trace != nullptr ? trace->now() : 0.0;
    if (state->pmu != nullptr) state->pmu->task_begin();
    std::exception_ptr eptr;
    std::string message;
    try {
      task();
    } catch (const std::exception& e) {
      eptr = std::current_exception();
      message = e.what();
    } catch (...) {
      eptr = std::current_exception();
      message = "unknown exception";
    }
    const int worker = FixedThreadPool::current_worker();
    if (trace != nullptr) {
      const int lane = worker >= 0 ? worker : trace->external_lane();
      trace->record(lane, perf::TraceKind::Task, state->tag, trace_begin, trace->now());
    }
    if (state->pmu != nullptr) state->pmu->task_end(std::max(0, worker), state->tag);
    state->finish(eptr ? message.c_str() : nullptr);
    if (eptr) std::rethrow_exception(eptr);
  };
}
}  // namespace

void FixedThreadPool::submit(Task task, const JobHandle& job) {
  int target = 0;
  if (config_.queue_mode != QueueMode::Single) {
    target = t_worker_pool == this
                 ? t_worker_index
                 : static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                                    static_cast<std::uint64_t>(config_.n_threads));
  }
  submit_to(target, std::move(task), job);
}

void FixedThreadPool::submit_to(int worker, Task task, const JobHandle& job) {
  require(job.state_ != nullptr, "job handle is empty");
  // The job's instrumentation runs on whichever worker executes the task, so
  // it must be sized for this pool — same contract as the pool-level attach.
  require(job.state_->trace == nullptr ||
              job.state_->trace->n_lanes() >= config_.n_threads + 1,
          "job trace ring needs a lane per pool worker plus one external lane");
  require(job.state_->pmu == nullptr || job.state_->pmu->n_workers() >= config_.n_threads,
          "job PMU accumulator needs a lane per pool worker");
  job.state_->on_submit();
  try {
    submit_to(worker, wrap_for_job(job.state_, std::move(task)));
  } catch (...) {
    // Rejected push (shutdown race): the task will never run, so it must not
    // leave the job waiting.
    job.state_->on_revoke();
    throw;
  }
}

void FixedThreadPool::submit_to(int worker, Task task) {
  require(worker >= 0 && worker < config_.n_threads, "worker index out of range");
  // Count before enqueueing so completed_ can never overtake submitted_ (a
  // quiescing thread would wake between the two and miss the final notify);
  // undo the count if the push is rejected so quiesce() is not left waiting
  // on a task that never runs.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  enqueue(worker, std::move(task));
}

void FixedThreadPool::enqueue(int worker, Task task) {
  if (config_.queue_mode == QueueMode::WorkStealing) {
    if (t_worker_pool == this && t_worker_index == worker) {
      // Owner push: lock-free bottom push onto the worker's own deque.
      deques_[static_cast<std::size_t>(worker)]->push(std::move(task));
    } else if (!queues_[static_cast<std::size_t>(worker)]->push(std::move(task))) {
      submitted_.fetch_sub(1, std::memory_order_relaxed);
      require(false, "submit after shutdown");
    }
    // Lock-then-notify so a worker between its idle scan and wait() cannot
    // miss the wakeup.
    { std::lock_guard lock(sleep_mutex_); }
    sleep_cv_.notify_all();
    return;
  }
  if (!queue_for(worker).push(std::move(task))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    require(false, "submit after shutdown");
  }
}

void FixedThreadPool::run_one(Task task) {
  perf::TraceRing* trace = trace_.load(std::memory_order_acquire);
  perf::PmuAccumulator* pmu = pmu_.load(std::memory_order_acquire);
  const double trace_begin = trace != nullptr ? trace->now() : 0.0;
  if (pmu != nullptr) pmu->task_begin();
  try {
    task();
  } catch (const std::exception& e) {
    // A throwing task must not kill the worker (the pool outlives any one
    // task, like an ExecutorService).  The failure is counted, the first
    // message is kept for last_error(), and the pool keeps serving.
    note_failure(e.what());
  } catch (...) {
    note_failure("unknown exception");
  }
  if (trace != nullptr) {
    trace->record(t_worker_index, perf::TraceKind::Task, /*tag=*/0, trace_begin,
                  trace->now());
  }
  if (pmu != nullptr) pmu->task_end(t_worker_index, /*phase_tag=*/0);
  completed_.fetch_add(1, std::memory_order_release);
  // Lock-then-notify so a quiescing thread between its predicate check and
  // wait() cannot miss the wakeup.
  { std::lock_guard lock(quiesce_mutex_); }
  quiesce_cv_.notify_all();
}

void FixedThreadPool::note_failure(const char* what) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(error_mutex_);
  if (last_error_.empty()) last_error_ = what;
}

void FixedThreadPool::worker_main(int index) {
  t_worker_index = index;
  t_worker_pool = this;
  if (!config_.pin_masks.empty()) {
    pin_current_thread(config_.pin_masks[static_cast<std::size_t>(index) %
                                         config_.pin_masks.size()]);
  }
  TaskQueue& q = queue_for(index);
  while (auto task = q.pop()) {
    taken_.fetch_add(1, std::memory_order_relaxed);
    run_one(std::move(*task));
  }
}

void FixedThreadPool::worker_main_stealing(int index) {
  t_worker_index = index;
  t_worker_pool = this;
  if (!config_.pin_masks.empty()) {
    pin_current_thread(config_.pin_masks[static_cast<std::size_t>(index) %
                                         config_.pin_masks.size()]);
  }
  StealDeque& own = *deques_[static_cast<std::size_t>(index)];
  TaskQueue& inbox = *queues_[static_cast<std::size_t>(index)];
  const int n = config_.n_threads;

  for (;;) {
    // 1. Own deque (lock-free LIFO pop), refilling it from the inbox.
    std::optional<Task> task = own.pop();
    if (!task) {
      while (auto moved = inbox.try_pop()) own.push(std::move(*moved));
      task = own.pop();
    }
    // 2. Steal: oldest task from a peer's deque, else raid its inbox.
    if (!task) {
      for (int k = 1; k < n && !task; ++k) {
        const std::size_t victim = static_cast<std::size_t>((index + k) % n);
        task = deques_[victim]->steal();
        if (!task) task = queues_[victim]->try_pop();
        if (task) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          if (perf::TraceRing* trace = trace_.load(std::memory_order_acquire)) {
            const double now = trace->now();
            trace->record(index, perf::TraceKind::Steal, /*tag=*/0, now, now,
                          static_cast<int>(victim));
          }
        }
      }
    }
    if (task) {
      taken_.fetch_add(1, std::memory_order_relaxed);
      run_one(std::move(*task));
      continue;
    }
    // 3. Nothing anywhere: exit if draining is done, otherwise park until a
    // submission (or shutdown) arrives.  `submitted_ > taken_` means some
    // task is still sitting in a deque or inbox — rescan rather than sleep.
    std::unique_lock lock(sleep_mutex_);
    if (closing_.load(std::memory_order_acquire) &&
        submitted_.load(std::memory_order_acquire) == taken_.load(std::memory_order_acquire)) {
      return;
    }
    sleep_cv_.wait(lock, [this] {
      return closing_.load(std::memory_order_acquire) ||
             submitted_.load(std::memory_order_acquire) >
                 taken_.load(std::memory_order_acquire);
    });
  }
}

void FixedThreadPool::quiesce() {
  perf::TraceRing* trace = trace_.load(std::memory_order_acquire);
  const double trace_begin = trace != nullptr ? trace->now() : 0.0;
  {
    std::unique_lock lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [this] {
      return completed_.load(std::memory_order_acquire) ==
             submitted_.load(std::memory_order_acquire);
    });
  }
  if (trace != nullptr) {
    const int lane = t_worker_pool == this ? t_worker_index : trace->external_lane();
    trace->record(lane, perf::TraceKind::Quiesce, /*tag=*/0, trace_begin, trace->now());
  }
}

void FixedThreadPool::shutdown() {
  // The exchange makes concurrent shutdown() calls (or shutdown() racing the
  // destructor) claim the teardown exactly once; the mutex makes the losers
  // wait until the winner has joined every worker, so no caller can return
  // and start destroying the pool while threads are still draining.
  std::lock_guard lock(shutdown_mutex_);
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& q : queues_) q->close();
  {
    std::lock_guard sleep_lock(sleep_mutex_);
    closing_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

int FixedThreadPool::current_worker() { return t_worker_index; }

}  // namespace mwx::parallel
