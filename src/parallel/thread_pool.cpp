#include "parallel/thread_pool.hpp"

#include <atomic>

#include "common/require.hpp"

namespace mwx::parallel {

namespace {
thread_local int t_worker_index = -1;
}

FixedThreadPool::FixedThreadPool(ThreadPoolConfig config) : config_(std::move(config)) {
  require(config_.n_threads > 0, "pool needs at least one thread");
  const int n_queues = config_.queue_mode == QueueMode::Single ? 1 : config_.n_threads;
  queues_.reserve(static_cast<std::size_t>(n_queues));
  for (int i = 0; i < n_queues; ++i) queues_.push_back(std::make_unique<TaskQueue>());
  threads_.reserve(static_cast<std::size_t>(config_.n_threads));
  for (int i = 0; i < config_.n_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

FixedThreadPool::~FixedThreadPool() { shutdown(); }

TaskQueue& FixedThreadPool::queue_for(int worker) {
  return config_.queue_mode == QueueMode::Single ? *queues_.front()
                                                 : *queues_[static_cast<std::size_t>(worker)];
}

void FixedThreadPool::submit(Task task) {
  int target = 0;
  if (config_.queue_mode == QueueMode::PerThread) {
    target = round_robin_.fetch_add(1, std::memory_order_relaxed) % config_.n_threads;
  }
  submit_to(target, std::move(task));
}

void FixedThreadPool::submit_to(int worker, Task task) {
  require(worker >= 0 && worker < config_.n_threads, "worker index out of range");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool ok = queue_for(worker).push(std::move(task));
  require(ok, "submit after shutdown");
}

void FixedThreadPool::worker_main(int index) {
  t_worker_index = index;
  if (!config_.pin_masks.empty()) {
    pin_current_thread(config_.pin_masks[static_cast<std::size_t>(index) %
                                         config_.pin_masks.size()]);
  }
  TaskQueue& q = queue_for(index);
  while (auto task = q.pop()) {
    try {
      (*task)();
    } catch (...) {
      // A throwing task must not kill the worker (the pool outlives any one
      // task, like an ExecutorService).  The failure is counted and the
      // pool keeps serving.
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_release);
    // Lock-then-notify so a quiescing thread between its predicate check and
    // wait() cannot miss the wakeup.
    { std::lock_guard lock(quiesce_mutex_); }
    quiesce_cv_.notify_all();
  }
}

void FixedThreadPool::quiesce() {
  std::unique_lock lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) ==
           submitted_.load(std::memory_order_acquire);
  });
}

void FixedThreadPool::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& q : queues_) q->close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

int FixedThreadPool::current_worker() { return t_worker_index; }

}  // namespace mwx::parallel
