// JobHandle — per-job completion groups for a shared FixedThreadPool.
//
// The paper's executor model is one application owning its pools for one
// run, so the original pool tracked completion globally: quiesce() waited
// for *every* submission ever made.  A long-running multi-tenant service
// breaks that in two ways:
//   * starvation — with a second client continuously submitting,
//     `submitted_ == completed_` may never hold, so one tenant's drain
//     blocks forever on another tenant's traffic;
//   * lost diagnostics — a failing task was only a counter bump, with no
//     way to tell *whose* job failed or why.
// A JobHandle scopes both concerns to one logical job: tasks submitted with
// the handle are counted against that job only, wait() terminates as soon
// as *this job's* tasks have finished regardless of other traffic, and the
// first failure (message included) is captured on the handle.
//
// Handles are cheap shared references: copy them freely, submit from any
// thread, wait from any thread.  A handle is reusable — wait() returns when
// everything submitted *so far* has finished, and more work may be
// submitted afterwards.
//
// Instrumentation is per-job rather than pool-global: attach_trace/
// attach_pmu on the handle bracket exactly the tasks submitted with it, so
// N jobs sharing one pool can each carry their own rings/accumulators (the
// pool-level attach remains for whole-pool audits, but is no longer the
// only owner).  Attach before the first submission with the handle.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "perf/native_pmu.hpp"
#include "perf/trace_ring.hpp"

namespace mwx::parallel {

class FixedThreadPool;

namespace detail {

// Shared between every copy of a JobHandle and the wrapped tasks in flight.
// A plain mutex/cv monitor: submission rates are bounded by the task-queue
// mutex anyway, and the monitor keeps the accounting trivially race-free
// (completed_ can never be observed ahead of submitted_).
struct JobState {
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  long long submitted = 0;
  long long completed = 0;
  long long failed = 0;
  std::string first_error;  // message of the first task that threw
  // Per-job instrumentation (optional).  Wrapped tasks bracket themselves
  // with these, independent of any pool-level attachment.
  perf::TraceRing* trace = nullptr;
  perf::PmuAccumulator* pmu = nullptr;
  int tag = 0;  // phase tag charged by the brackets above

  void on_submit() {
    std::lock_guard lock(mutex);
    ++submitted;
  }

  // Undo of on_submit when the pool rejected the push (shutdown race):
  // the task will never run, so it must not count as pending.
  void on_revoke() {
    std::lock_guard lock(mutex);
    --submitted;
    if (completed == submitted) cv.notify_all();
  }

  // `error` is nullptr for success; first failure message wins.
  void finish(const char* error) {
    std::lock_guard lock(mutex);
    ++completed;
    if (error != nullptr) {
      ++failed;
      if (first_error.empty()) first_error = error;
    }
    if (completed == submitted) cv.notify_all();
  }
};

}  // namespace detail

class JobHandle {
 public:
  JobHandle() : state_(std::make_shared<detail::JobState>()) {}

  // Blocks until every task submitted with this handle *so far* has
  // finished (successfully or not).  Unlike FixedThreadPool::quiesce(),
  // this cannot be starved by other clients of the same pool: only the
  // job's own counters are consulted.
  void wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [s = state_.get()] { return s->completed == s->submitted; });
  }

  // True when no task of this job has failed (so far).
  [[nodiscard]] bool ok() const {
    std::lock_guard lock(state_->mutex);
    return state_->failed == 0;
  }

  [[nodiscard]] long long submitted() const {
    std::lock_guard lock(state_->mutex);
    return state_->submitted;
  }

  [[nodiscard]] long long completed() const {
    std::lock_guard lock(state_->mutex);
    return state_->completed;
  }

  [[nodiscard]] long long failed() const {
    std::lock_guard lock(state_->mutex);
    return state_->failed;
  }

  // Message of the first task that terminated with an exception; empty when
  // every task (so far) succeeded.
  [[nodiscard]] std::string error() const {
    std::lock_guard lock(state_->mutex);
    return state_->first_error;
  }

  // Per-job instrumentation: tasks submitted with this handle record Task
  // events into lane == executing worker (external lane when run inline)
  // and/or bracket themselves with PMU counter reads charged to
  // (worker, tag).  The ring/accumulator must be sized for the *pool* the
  // job runs on (n_threads + 1 lanes / n_threads workers) — checked at
  // submission.  Attach before the first submission; detach (nullptr) only
  // after wait().
  void attach_trace(perf::TraceRing* trace, int tag = 0) {
    state_->trace = trace;
    state_->tag = tag;
  }
  void attach_pmu(perf::PmuAccumulator* pmu, int tag = 0) {
    state_->pmu = pmu;
    state_->tag = tag;
  }

 private:
  friend class FixedThreadPool;
  std::shared_ptr<detail::JobState> state_;
};

}  // namespace mwx::parallel
