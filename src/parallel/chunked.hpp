// Deterministic chunked fan-out — the dispatch primitive of the parallel
// rebuild pipeline (cell binning, CSR prefix scan, Morton radix sort, scene
// serialization).
//
// Splits [0, n) into `n_chunks` index-contiguous ranges with the same
// (n * k) / C arithmetic the engine's task decomposition uses, and runs
// body(chunk, begin, end) for every chunk — on `pool` when one is given,
// inline otherwise.  Completion is tracked through a JobHandle, so the
// barrier is shared-pool safe (other tenants' traffic is neither waited on
// nor able to starve it) and a throwing chunk surfaces as ContractError here
// instead of hanging the wait.
//
// The contract callers must honour: the algorithm's OUTPUT must not depend
// on the chunk count.  Every rebuild-pipeline user satisfies it by
// construction — stable counting sort (chunk-major order within a cell is
// ascending-index order), exact integer block scans, stable LSD radix, and
// range-concatenated text formatting are all chunk-count-invariant — which is
// what makes "bit-identical across 1/2/4/8 threads" a theorem rather than a
// test-only observation.
#pragma once

#include <algorithm>
#include <string>
#include <utility>

#include "common/require.hpp"
#include "parallel/thread_pool.hpp"

namespace mwx::parallel {

template <typename Body>
void for_chunks(FixedThreadPool* pool, int n_chunks, long long n, Body&& body) {
  if (n <= 0) return;
  const int chunks = static_cast<int>(
      std::max(1ll, std::min(static_cast<long long>(std::max(1, n_chunks)), n)));
  if (pool == nullptr || chunks == 1) {
    for (int c = 0; c < chunks; ++c) {
      body(c, n * c / chunks, n * (c + 1) / chunks);
    }
    return;
  }
  JobHandle job;
  const int workers = pool->n_threads();
  for (int c = 0; c < chunks; ++c) {
    const long long begin = n * c / chunks;
    const long long end = n * (c + 1) / chunks;
    pool->submit_to(c % workers, [&body, c, begin, end] { body(c, begin, end); }, job);
  }
  job.wait();
  require(job.ok(), "chunked rebuild task failed: " + job.error());
}

}  // namespace mwx::parallel
