#include "parallel/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace mwx::parallel {

bool pin_current_thread(const topo::CpuSet& mask) {
#if defined(__linux__)
  if (mask.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  const int limit = online_pus();
  bool any = false;
  for (int pu = mask.first(); pu >= 0; pu = mask.next(pu)) {
    if (pu < limit) {
      CPU_SET(pu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof set, &set) == 0;
#else
  (void)mask;
  return false;
#endif
}

bool pin_current_thread_to(int pu) { return pin_current_thread(topo::CpuSet::of({pu})); }

int current_cpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

topo::CpuSet current_affinity() {
  topo::CpuSet mask;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    for (int pu = 0; pu < topo::CpuSet::kMaxPus && pu < CPU_SETSIZE; ++pu) {
      if (CPU_ISSET(pu, &set)) mask.set(pu);
    }
  }
#endif
  return mask;
}

int online_pus() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace mwx::parallel
