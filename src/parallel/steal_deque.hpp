// Chase–Lev work-stealing deque — the third queue discipline.
//
// Section II-B frames the executor design space as a single shared queue
// ("all threads are contending for access to that single resource") versus
// one queue per thread (work sits idle while its owner is busy).  A
// work-stealing deque resolves that dilemma: the owning worker pushes and
// pops its own bottom end with no atomic RMW on the fast path, while idle
// thieves CAS-claim tasks from the top end, so there is no global contention
// point and no stranded work.
//
// The algorithm is the classic Chase–Lev circular-array deque with the
// C11/C++11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli ("Correct
// and Efficient Work-Stealing for Weak Memory Models", PPoPP'13).  Tasks are
// boxed (`new Task`) so a slot is a single atomic pointer; the ring grows by
// doubling, and retired rings are kept alive until destruction so a lagging
// thief can never read through a freed array.
//
// Thread-safety contract: push() and pop() may be called ONLY by the owning
// worker thread; steal() may be called by any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "parallel/task_queue.hpp"

namespace mwx::parallel {

class StealDeque {
 public:
  explicit StealDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Frees any tasks never executed.  Must not race with steal().
  ~StealDeque() {
    while (pop()) {
    }
  }

  // Owner only: pushes a task on the bottom end.
  void push(Task task) {
    auto* boxed = new Task(std::move(task));
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) ring = grow(ring, t, b);
    ring->put(b, boxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only: pops from the bottom end (LIFO).  Returns nullopt when the
  // deque is empty or the last task was lost to a concurrent thief.
  std::optional<Task> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Already empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Task* boxed = ring->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        boxed = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    if (boxed == nullptr) return std::nullopt;
    Task out = std::move(*boxed);
    delete boxed;
    return out;
  }

  // Any thread: claims the oldest task from the top end (FIFO).  Returns
  // nullopt when empty or when the CAS is lost to a concurrent claimant —
  // callers are expected to retry or move on to another victim.
  std::optional<Task> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    Ring* ring = ring_.load(std::memory_order_acquire);
    Task* boxed = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    Task out = std::move(*boxed);
    delete boxed;
    return out;
  }

  // Approximate (racy) occupancy; exact when no other thread is active.
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<Task*>[cap]) {}
    // Lê et al. use relaxed slot accesses and rely on the standalone fences
    // for content visibility.  We publish/consume the slot pointer with
    // release/acquire instead: strictly stronger, free on x86, and visible
    // to ThreadSanitizer (which does not model standalone fences).
    [[nodiscard]] Task* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(std::memory_order_acquire);
    }
    void put(std::int64_t i, Task* p) {
      slots[static_cast<std::size_t>(i) & mask].store(p, std::memory_order_release);
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  // Owner only (from push): doubles the ring, copying live slots [t, b).
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    rings_.push_back(std::make_unique<Ring>(old->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  // All rings ever allocated, retired ones included: a thief that loaded an
  // old ring pointer can still safely read from it.
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace mwx::parallel
