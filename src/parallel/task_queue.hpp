// Blocking MPMC work queue backing the thread pool.
//
// Parallel MW used both a single shared queue ("all threads are contending
// for access to that single resource") and one queue per thread
// (Section II-B).  The pool supports both configurations; the queue itself
// is a plain mutex-protected deque, faithful to the Java implementation's
// behaviour rather than a lock-free design.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace mwx::parallel {

using Task = std::function<void()>;

class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueues a task.  Returns false when the queue is closed.
  bool push(Task task) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks for a task; returns nullopt once the queue is closed and drained.
  std::optional<Task> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty()) return std::nullopt;
    Task t = std::move(tasks_.front());
    tasks_.pop_front();
    return t;
  }

  // Non-blocking variant used by work-stealing helpers and tests.
  std::optional<Task> try_pop() {
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) return std::nullopt;
    Task t = std::move(tasks_.front());
    tasks_.pop_front();
    return t;
  }

  // Closes the queue: pending tasks still drain, new pushes fail, blocked
  // poppers wake with nullopt when empty.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return tasks_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

}  // namespace mwx::parallel
