// Content-hash scene cache — dedup of identical submitted scenes.
//
// Traffic against a simulation service is heavily repetitive: many clients
// resubmit the same scene (parameter sweeps, retries, shared templates).
// scene_io's .mws output is byte-stable — the same MolecularSystem always
// serializes to the same bytes — so the scene *text* is a sound dedup key:
// hash the bytes (FNV-1a 64), parse once per distinct content, and hand
// every subsequent submission a shared pointer to the same immutable parsed
// system.  Jobs copy the system into their Engine (the engine integrates in
// place), so cached entries are never mutated.
//
// Collisions are handled, not assumed away: an entry stores the full text
// and a hash hit with different bytes is treated as a miss (parsed fresh,
// not cached — a 2^-64 event not worth a chained map).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "md/system.hpp"

namespace mwx::serve {

// Serializes `sys` to its canonical .mws text (the cache key form).
[[nodiscard]] std::string scene_text(const md::MolecularSystem& sys);

class SceneCache {
 public:
  // `max_entries` bounds the cache; the oldest-touched entry is evicted
  // (0 disables caching entirely — every load parses).
  explicit SceneCache(std::size_t max_entries = 64) : max_entries_(max_entries) {}

  SceneCache(const SceneCache&) = delete;
  SceneCache& operator=(const SceneCache&) = delete;

  // Returns the parsed system for this scene text, parsing at most once per
  // distinct content (thread-safe; concurrent first loads of the same text
  // may both parse, last insert wins — wasted work, never wrong results).
  // Throws ContractError on malformed scene text.
  std::shared_ptr<const md::MolecularSystem> load(const std::string& text);

  // FNV-1a 64-bit over the scene bytes.
  [[nodiscard]] static std::uint64_t content_hash(const std::string& text);

  [[nodiscard]] long long hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] long long misses() const { return misses_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string text;  // full content, for collision verification
    std::shared_ptr<const md::MolecularSystem> system;
    std::uint64_t stamp = 0;  // LRU clock value of the last touch
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t clock_ = 0;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
};

}  // namespace mwx::serve
