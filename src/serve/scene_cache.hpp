// Content-hash scene cache — dedup of identical submitted scenes.
//
// Traffic against a simulation service is heavily repetitive: many clients
// resubmit the same scene (parameter sweeps, retries, shared templates).
// scene_io's .mws output is byte-stable — the same MolecularSystem always
// serializes to the same bytes — so the scene *text* is a sound dedup key:
// hash the bytes (FNV-1a 64), parse once per distinct content, and hand
// every subsequent submission a shared pointer to the same immutable parsed
// system.  Jobs copy the system into their Engine (the engine integrates in
// place), so cached entries are never mutated.
//
// Collisions are handled, not assumed away: an entry stores the full text
// and a hash hit with different bytes is treated as a miss (parsed fresh,
// not cached — a 2^-64 event not worth a chained map).
//
// Stats discipline: hit/miss is resolved where the outcome is *known* — a
// concurrent loader that finds a racer already inserted its entry counts a
// hit (the cache served the parse, even if this thread wasted one), and only
// a genuine collision or a fresh insert counts a miss.  Eviction is O(1) via
// an intrusive LRU list (the cache sits on the serve dispatch hot path).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "md/system.hpp"

namespace mwx::md {
class Engine;
}  // namespace mwx::md

namespace mwx::parallel {
class FixedThreadPool;
}  // namespace mwx::parallel

namespace mwx::serve {

// Serializes `sys` to its canonical .mws text (the cache key form).
[[nodiscard]] std::string scene_text(const md::MolecularSystem& sys);

// Pool-backed variant: formats the per-atom records through scene_io's
// chunked parallel serializer.  Byte-identical to the serial overload — the
// text (and hence content_hash) is the same dedup key either way; at 100k+
// atoms the serialization stops being a serve-dispatch stall.  n_chunks <= 0
// uses the pool's worker count.
[[nodiscard]] std::string scene_text(const md::MolecularSystem& sys,
                                     parallel::FixedThreadPool* pool, int n_chunks = 0);

// Serializes a running engine's full continuation state to "mws 2"
// checkpoint text: scene + accelerations + the neighbor list's
// reference-position snapshot.  Restoring (load_scene with an nref receiver
// + Engine::restore_continuation) resumes the trajectory bit-exactly.
[[nodiscard]] std::string checkpoint_text(const md::Engine& engine);

// Pool-backed variant (byte-identical; see scene_text above).
[[nodiscard]] std::string checkpoint_text(const md::Engine& engine,
                                          parallel::FixedThreadPool* pool,
                                          int n_chunks = 0);

class SceneCache {
 public:
  // `max_entries` bounds the cache; the least-recently-used entry is evicted
  // (0 disables caching entirely — every load parses).
  explicit SceneCache(std::size_t max_entries = 64) : max_entries_(max_entries) {}

  SceneCache(const SceneCache&) = delete;
  SceneCache& operator=(const SceneCache&) = delete;

  // Returns the parsed system for this scene text, parsing at most once per
  // distinct content (thread-safe; concurrent first loads of the same text
  // may both parse, first insert wins — wasted work, never wrong results).
  // Throws ContractError on malformed scene text.
  std::shared_ptr<const md::MolecularSystem> load(const std::string& text);

  // FNV-1a 64-bit over the scene bytes.
  [[nodiscard]] static std::uint64_t content_hash(const std::string& text);

  [[nodiscard]] long long hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] long long misses() const { return misses_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t size() const;

  // Test hook: runs after a miss's parse, before the insert re-locks — the
  // window a concurrent loader can win.  Tests use it to exercise the
  // racer-beat-us path deterministically.
  void set_parse_hook(std::function<void()> hook);

 private:
  struct Entry {
    std::string text;  // full content, for collision verification
    std::shared_ptr<const md::MolecularSystem> system;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent, back = eviction victim
  std::function<void()> parse_hook_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
};

}  // namespace mwx::serve
