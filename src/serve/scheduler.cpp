#include "serve/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "md/engine.hpp"

namespace mwx::serve {

BatchScheduler::BatchScheduler(SchedulerConfig config)
    : config_(config), cache_(config.scene_cache_entries) {
  require(config_.n_pools > 0, "scheduler needs at least one pool");
  require(config_.threads_per_pool > 0, "pools need at least one thread");
  require(config_.max_drivers > 0, "scheduler needs at least one driver");
  require(config_.max_queued_total > 0, "global admission cap must be positive");
  pools_.reserve(static_cast<std::size_t>(config_.n_pools));
  for (int p = 0; p < config_.n_pools; ++p) {
    pools_.push_back(std::make_unique<parallel::FixedThreadPool>(parallel::ThreadPoolConfig{
        .n_threads = config_.threads_per_pool,
        .queue_mode = config_.queue_mode,
        .pin_masks = {},
        .name_prefix = "mwx-serve-" + std::to_string(p)}));
  }
  shard_running_.assign(static_cast<std::size_t>(config_.n_pools), 0);
  paused_ = config_.start_paused;
  drivers_.reserve(static_cast<std::size_t>(config_.max_drivers));
  for (int d = 0; d < config_.max_drivers; ++d) {
    drivers_.emplace_back([this] { driver_main(); });
  }
}

BatchScheduler::~BatchScheduler() { stop(); }

double BatchScheduler::job_cost(const JobRequest& request) {
  // Work proxy: steps × scene bytes.  The .mws text is ~one line per atom,
  // so bytes ∝ atoms and cost ∝ steps × atoms — close enough to true work
  // for fair-share purposes without parsing at admission time.
  return static_cast<double>(request.steps) *
         static_cast<double>(std::max<std::size_t>(1, request.scene_text.size()));
}

std::shared_ptr<JobTicket> BatchScheduler::submit(JobRequest request) {
  auto reject = [this](JobRequest req, const std::string& why) {
    auto ticket = std::make_shared<JobTicket>(std::move(req));
    ticket->mark_submitted();
    ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", why);
    std::lock_guard lock(mutex_);
    ++stats_.rejected;
    return ticket;
  };

  if (request.scene_text.empty()) return reject(std::move(request), "empty scene");
  if (request.steps <= 0) return reject(std::move(request), "steps must be positive");
  if (request.n_threads <= 0 || request.chunks_per_thread <= 0) {
    return reject(std::move(request), "decomposition width must be positive");
  }
  if (request.sample_interval < 0) {
    return reject(std::move(request), "sample_interval must be non-negative");
  }

  auto ticket = std::make_shared<JobTicket>(std::move(request));
  ticket->mark_submitted();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "scheduler is stopping");
      ++stats_.rejected;
      return ticket;
    }
    auto [it, inserted] = tenants_.try_emplace(ticket->request().tenant);
    Tenant& tenant = it->second;
    if (inserted) tenant.quota = config_.default_quota;
    if (queued_total_ >= config_.max_queued_total) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "global queue full");
      ++stats_.rejected;
      return ticket;
    }
    if (static_cast<int>(tenant.queue.size()) >= tenant.quota.max_queued) {
      ticket->finish(JobStatus::Rejected, 0.0, 0.0, "", "tenant queue full");
      ++stats_.rejected;
      return ticket;
    }
    // A tenant going from idle to backlogged joins at the current virtual
    // clock: it competes fairly from now on but cannot spend an idle period
    // as hoarded credit.
    if (tenant.queue.empty()) tenant.vtime = std::max(tenant.vtime, vclock_);
    tenant.queue.push_back(ticket);
    ++queued_total_;
    ++stats_.accepted;
  }
  cv_.notify_one();
  return ticket;
}

void BatchScheduler::set_quota(const std::string& tenant, TenantQuota quota) {
  require(quota.weight > 0.0, "tenant weight must be positive");
  require(quota.max_queued > 0, "tenant admission cap must be positive");
  std::lock_guard lock(mutex_);
  tenants_.try_emplace(tenant).first->second.quota = quota;
}

void BatchScheduler::start() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void BatchScheduler::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_total_ == 0 && running_ == 0; });
}

void BatchScheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && drivers_.empty()) return;
    stopping_ = true;
    paused_ = false;  // a paused scheduler still owes its accepted jobs
  }
  cv_.notify_all();
  {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queued_total_ == 0 && running_ == 0; });
  }
  std::vector<std::thread> drivers;
  {
    std::lock_guard lock(mutex_);
    drivers.swap(drivers_);
  }
  for (auto& d : drivers) {
    if (d.joinable()) d.join();
  }
  for (auto& pool : pools_) pool->shutdown();
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::shared_ptr<JobTicket> BatchScheduler::pick_job_locked(int* shard_out) {
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.queue.empty()) continue;
    if (best == nullptr || tenant.vtime < best->vtime) best = &tenant;
  }
  if (best == nullptr) return nullptr;
  std::shared_ptr<JobTicket> job = std::move(best->queue.front());
  best->queue.pop_front();
  --queued_total_;
  vclock_ = best->vtime;
  best->vtime += job_cost(job->request()) / best->quota.weight;

  int shard = 0;
  for (int p = 1; p < config_.n_pools; ++p) {
    if (shard_running_[static_cast<std::size_t>(p)] <
        shard_running_[static_cast<std::size_t>(shard)]) {
      shard = p;
    }
  }
  ++shard_running_[static_cast<std::size_t>(shard)];
  ++running_;
  *shard_out = shard;
  return job;
}

void BatchScheduler::driver_main() {
  for (;;) {
    std::shared_ptr<JobTicket> job;
    int shard = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return (!paused_ && queued_total_ > 0) || (stopping_ && queued_total_ == 0);
      });
      if (queued_total_ == 0) return;  // stopping and fully drained
      job = pick_job_locked(&shard);
      if (job == nullptr) continue;
      job->mark_running();
    }

    run_job(*job, shard);

    {
      std::lock_guard lock(mutex_);
      --shard_running_[static_cast<std::size_t>(shard)];
      --running_;
      if (job->status() == JobStatus::Done) {
        ++stats_.completed;
      } else {
        ++stats_.failed;
      }
    }
    idle_cv_.notify_all();
    // A queued job may have been waiting for this driver slot.
    cv_.notify_one();
  }
}

void BatchScheduler::run_job(JobTicket& job, int shard) {
  const JobRequest& req = job.request();
  try {
    const std::shared_ptr<const md::MolecularSystem> cached = cache_.load(req.scene_text);

    md::EngineConfig cfg;
    cfg.n_threads = req.n_threads;
    cfg.chunks_per_thread = req.chunks_per_thread;
    cfg.assignment = req.assignment;
    cfg.dt_fs = req.dt_fs;
    cfg.cutoff = req.cutoff;
    cfg.skin = req.skin;
    md::Engine engine(*cached, cfg);  // private copy; the cache stays immutable

    parallel::FixedThreadPool& pool = *pools_[static_cast<std::size_t>(shard)];
    const int interval = req.sample_interval > 0 ? req.sample_interval : req.steps;
    int done = 0;
    while (done < req.steps) {
      const int slice = std::min(interval, req.steps - done);
      engine.run_native(pool, slice);
      done += slice;
      job.push_sample({engine.steps_done(), engine.potential_energy(),
                       engine.kinetic_energy()});
    }
    job.finish(JobStatus::Done, engine.potential_energy(), engine.kinetic_energy(),
               req.return_scene ? scene_text(engine.system()) : "", "");
  } catch (const std::exception& e) {
    job.finish(JobStatus::Failed, 0.0, 0.0, "", e.what());
  } catch (...) {
    job.finish(JobStatus::Failed, 0.0, 0.0, "", "unknown exception");
  }
}

}  // namespace mwx::serve
